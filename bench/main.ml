(* Benchmark harness: regenerates every table and figure of the
   dissertation's evaluation (see DESIGN.md's per-experiment index) and
   times the core algorithms with Bechamel.

   Usage: main.exe [--skip-bechamel] [--only PREFIX] [--json FILE]
                   [--baseline FILE] [--compare FILE] [--reps N]
                   [--noise PCT] [--trace-out FILE]
   e.g. --only ch4 runs only the Chapter 4 experiments; --json FILE skips
   the tables and instead writes one machine-readable record per flow
   (wall time plus solver counters, schema mcs-bench/1) to FILE.

   --baseline FILE measures the paper benchmarks (median-of---reps wall
   times, deterministic solver counters) and writes an
   mcs-bench-baseline/1 file; --compare FILE re-measures and gates
   against a committed baseline: hard metrics (pivots, nodes, pins, pipe
   lengths) fail on any increase, wall times only warn beyond --noise
   (default 25%).  --trace-out FILE records a Chrome trace of the run. *)

open Mcs_cdfg
open Mcs_core
module C = Mcs_connect.Connection
module Sched = Mcs_sched.Schedule

let fmt = Format.std_formatter
let section title = Format.fprintf fmt "@.==== %s ====@.@." title
let only = ref ""
let skip_bechamel = ref false

let want tag =
  !only = ""
  || String.length tag >= String.length !only
     && String.equal (String.sub tag 0 (String.length !only)) !only

let pipe_or sched = string_of_int (Sched.pipe_length sched)

(* A sweep must survive one point raising (e.g. the elliptic filter at
   L=5, expectedly unschedulable per §4.4.2.1): fold the exception into
   an infeasible row and keep regenerating the remaining experiments. *)
let attempt f =
  try f () with
  | Invalid_argument m | Failure m -> Error ("raised: " ^ m)
  | e -> Error ("raised: " ^ Printexc.to_string e)

let verify_or_die tag sched =
  match Sched.verify sched with
  | Ok () -> ()
  | Error m -> failwith (Printf.sprintf "%s: invalid schedule: %s" tag m)

module F = Mcs_flow.Flow
module A = Mcs_flow.Artifact
module Diag = Mcs_flow.Diag

(* Every full-flow experiment goes through the unified checked pipeline:
   one entry point, typed diagnostics, and (with MCS_CHECK=warn/strict)
   the static analyzer auditing each regenerated table.  The direct
   algorithm calls further down (Bechamel, the ILP study) deliberately
   bypass it: they time one algorithm, not a pipeline. *)
let run_flow ?pipe_length flow d ~rate ~mode =
  attempt (fun () ->
      match
        Mcs_check.run flow (F.spec_of_design ?pipe_length ~mode ~flow d ~rate)
      with
      | Ok r -> Ok r
      | Error dg -> Error (Diag.message dg))

(* ---- Chapter 3: Figures 3.6 and 3.7 ---- *)

let ch3 () =
  section "E3.6 - AR filter, simple partitioning (Figs. 3.5-3.7)";
  let d = Benchmarks.ar_simple () in
  match run_flow F.Ch3 d ~rate:2 ~mode:C.Unidir with
  | Error m -> Format.fprintf fmt "FAILED: %s@." m
  | Ok r ->
      verify_or_die "ch3" r.F.schedule;
      Format.fprintf fmt
        "Schedule of the simple-partition AR filter (cf. Fig. 3.6), \
         initiation rate 2:@.%a@."
        Report.schedule r.F.schedule;
      (match r.F.connection with
      | A.Bundles links ->
          Format.fprintf fmt
            "@.Interchip connection per Theorem 3.1 (cf. Fig. 3.7):@.%a@."
            Report.bundles links
      | A.Buses _ | A.Subbuses _ -> ());
      Report.table fmt ~title:"Pins used per chip (budgets 112/48/48/32/32)"
        ~header:[ "P0"; "P1"; "P2"; "P3"; "P4" ]
        [ Report.pins_row r.F.pins ];
      Format.fprintf fmt "@.Pipe length: %s control steps@."
        (pipe_or r.F.schedule)

(* ---- Chapter 4: Tables 4.1-4.19, Figures 4.8-4.28 ---- *)

let ch4_design tag (d : Benchmarks.design) mode rates =
  let mode_name =
    match mode with C.Unidir -> "unidirectional" | C.Bidir -> "bidirectional"
  in
  section
    (Printf.sprintf "E4 - %s, %s I/O ports (cf. Tables %s)" d.Benchmarks.tag
       mode_name tag);
  let parts =
    Mcs_util.Listx.range 0 (Cdfg.n_partitions d.Benchmarks.cdfg + 1)
  in
  let cons_rows =
    List.map
      (fun rate ->
        match
          attempt (fun () ->
              Ok
                (match mode with
                | C.Unidir -> Benchmarks.constraints_for d ~rate
                | C.Bidir -> Benchmarks.constraints_for_bidir d ~rate))
        with
        | Error m -> [ string_of_int rate; "unavailable (" ^ m ^ ")" ]
        | Ok cons ->
        string_of_int rate
        :: List.map
             (fun p ->
               let fus =
                 List.filter_map
                   (fun ty ->
                     let n = Constraints.fu_count cons ~partition:p ~optype:ty in
                     if n > 0 then
                       Some
                         (Printf.sprintf "%d%s" n
                            (match ty with
                            | "add" -> "+"
                            | "mul" -> "*"
                            | t -> t))
                     else None)
                   [ "add"; "mul" ]
               in
               Printf.sprintf "%dP %s" (Constraints.pins cons p)
                 (String.concat " " fus))
             parts)
      rates
  in
  Report.table fmt
    ~title:"Resource constraints (cf. Tables 4.1 / 4.9 / 4.14 / 4.17)"
    ~header:("Rate" :: List.map (fun p -> "P" ^ string_of_int p) parts)
    cons_rows;
  Format.fprintf fmt "@.";
  let summary =
    List.map
      (fun rate ->
        match run_flow F.Ch4 d ~rate ~mode with
        | Error m ->
            Format.fprintf fmt "rate %d: FAILED (%s)@." rate m;
            [ string_of_int rate; "no schedule" ]
        | Ok r ->
            verify_or_die "ch4" r.F.schedule;
            (match r.F.connection with
            | A.Buses { conn; initial; assignment; allocation } ->
                Format.fprintf fmt
                  "-- Initiation rate %d: interchip connection (cf. Figs. \
                   4.8-4.10 / 4.14-4.16 / 4.21-4.26):@.%a@."
                  rate
                  (Report.connection d.Benchmarks.cdfg)
                  conn;
                Format.fprintf fmt "@.";
                Report.bus_assignment d.Benchmarks.cdfg fmt ~initial
                  ~final:assignment;
                Format.fprintf fmt "@.";
                Report.bus_allocation d.Benchmarks.cdfg ~rate fmt allocation
            | A.Bundles _ | A.Subbuses _ -> ());
            Format.fprintf fmt
              "@.Schedule (cf. Figs. 4.11-4.13 / 4.17-4.19 / \
               4.23-4.28):@.%a@.@."
              Report.schedule r.F.schedule;
            string_of_int rate
            :: (Report.pins_row r.F.pins
               @ [
                   pipe_or r.F.schedule;
                   (match r.F.static_pipe_length with
                   | Some n -> string_of_int n
                   | None -> "fail");
                 ]))
      rates
  in
  Report.table fmt
    ~title:
      "Summary (cf. Tables 4.2 / 4.10): pins used and control steps with / \
       without bus reassignment"
    ~header:
      ("Rate"
      :: (List.map (fun p -> "P" ^ string_of_int p) parts
         @ [ "w/ reass."; "w/o reass." ]))
    summary;
  Format.fprintf fmt "@."

let ch4 () =
  let ar = Benchmarks.ar_general () in
  ch4_design "4.1-4.8" ar C.Unidir ar.Benchmarks.rates;
  ch4_design "4.9-4.13" ar C.Bidir ar.Benchmarks.rates;
  let e = Benchmarks.elliptic () in
  ch4_design "4.14-4.16" e C.Unidir e.Benchmarks.rates;
  ch4_design "4.17-4.19" e C.Bidir e.Benchmarks.rates

(* ---- Chapter 5: Tables 5.1-5.4 ---- *)

let ch5_grid tag (d : Benchmarks.design) mode ~rates ~pls =
  section
    (Printf.sprintf "E5 - %s: FDS + clique partitioning (cf. Table %s)"
       d.Benchmarks.tag tag);
  let parts =
    Mcs_util.Listx.range 0 (Cdfg.n_partitions d.Benchmarks.cdfg + 1)
  in
  let rows =
    List.concat_map
      (fun rate ->
        List.map
          (fun pl ->
            match run_flow F.Ch5 d ~rate ~pipe_length:pl ~mode with
            | Error _ ->
                [ string_of_int rate; string_of_int pl; "infeasible" ]
            | Ok r ->
                verify_or_die "ch5" r.F.schedule;
                let fus ty =
                  String.concat "/"
                    (List.map
                       (fun p ->
                         match List.assoc_opt (p, ty) r.F.fus with
                         | Some n -> string_of_int n
                         | None -> "0")
                       (List.tl parts))
                in
                [ string_of_int rate; string_of_int pl ]
                @ Report.pins_row r.F.pins
                @ [ fus "add"; fus "mul" ])
          pls)
      rates
  in
  Report.table fmt
    ~title:"Resources required vs initiation rate and pipe length"
    ~header:
      ([ "Rate"; "PipeLen" ]
      @ List.map (fun p -> "P" ^ string_of_int p) parts
      @ [ "Adders"; "Multipliers" ])
    rows;
  Format.fprintf fmt "@."

let ch5_compare tag (d : Benchmarks.design) mode =
  section
    (Printf.sprintf
       "E5 - %s: Chapter 4 technique on the same points (cf. Table %s)"
       d.Benchmarks.tag tag);
  let parts =
    Mcs_util.Listx.range 0 (Cdfg.n_partitions d.Benchmarks.cdfg + 1)
  in
  let cons_of rate =
    match mode with
    | C.Unidir -> Benchmarks.constraints_for d ~rate
    | C.Bidir -> Benchmarks.constraints_for_bidir d ~rate
  in
  let rows =
    List.map
      (fun rate ->
        match run_flow F.Ch4 d ~rate ~mode with
        | Error m -> [ string_of_int rate; "FAILED: " ^ m ]
        | Ok r ->
            (* The paper's parenthesized figures: the same flow after
               postponement/rerun improvement. *)
            let improved =
              match
                attempt (fun () ->
                    Improve.pre_connect d.Benchmarks.cdfg d.Benchmarks.mlib
                      (cons_of rate) ~rate ~mode ())
              with
              | Ok b ->
                  Printf.sprintf "(%d)"
                    (Sched.pipe_length b.Pre_connect.schedule)
              | Error _ -> "(-)"
            in
            string_of_int rate
            :: (Report.pins_row r.F.pins
               @ [ pipe_or r.F.schedule ^ " " ^ improved ]))
      d.Benchmarks.rates
  in
  Report.table fmt
    ~title:
      "Pipe length under the Chapter 4 flow (parenthesized: after        postponement improvement, cf. the paper's Table 5.2/5.4 notes)"
    ~header:
      ("Rate"
      :: (List.map (fun p -> "P" ^ string_of_int p) parts @ [ "PipeLen" ]))
    rows;
  Format.fprintf fmt "@."

let ch5 () =
  let ar = Benchmarks.ar_general () in
  ch5_grid "5.1" ar C.Bidir ~rates:[ 3; 4; 5 ] ~pls:[ 6; 7; 8; 9; 10 ];
  ch5_compare "5.2" ar C.Bidir;
  let e = Benchmarks.elliptic () in
  ch5_grid "5.3" e C.Unidir ~rates:[ 5; 6; 7 ] ~pls:[ 25; 26; 27; 28 ];
  ch5_compare "5.4" e C.Unidir

(* ---- Chapter 6: Tables 6.1-6.4, Figures 6.2-6.7 ---- *)

let ch6 () =
  section "E6 - sharing buses in a cycle (cf. Tables 6.1-6.4)";
  let d = Benchmarks.ar_general () in
  let comparison =
    List.filter_map
      (fun rate ->
        let nosharing =
          match run_flow F.Ch4 d ~rate ~mode:C.Bidir with
          | Ok r ->
              Some
                (Mcs_util.Listx.sum snd r.F.pins, Sched.pipe_length r.F.schedule)
          | Error _ -> None
        in
        match run_flow F.Ch6 d ~rate ~mode:C.Bidir with
        | Error m ->
            Format.fprintf fmt "rate %d: sharing flow FAILED (%s)@." rate m;
            None
        | Ok t ->
            verify_or_die "ch6" t.F.schedule;
            let buses, assignment =
              match t.F.connection with
              | A.Subbuses { buses; assignment; _ } -> (buses, assignment)
              | A.Bundles _ | A.Buses _ -> ([], [])
            in
            Format.fprintf fmt
              "-- Initiation rate %d: bus structure (cf. Figs. 6.2-6.4; ' \
               and '' mark sub-bus slices):@.%a@."
              rate
              (Report.real_buses d.Benchmarks.cdfg)
              buses;
            (* Bus assignment with slices (cf. Tables 6.1-6.3). *)
            Report.table fmt
              ~title:"I/O operation to bus assignment (cf. Tables 6.1-6.3)"
              ~header:[ "Operation"; "Bus.slice" ]
              (List.map
                 (fun (op, (bus, slice)) ->
                   [
                     Cdfg.name d.Benchmarks.cdfg op;
                     Printf.sprintf "C%d%s" (bus + 1)
                       (match slice with
                       | Subbus.Lo -> "'"
                       | Subbus.Hi -> "''"
                       | Subbus.Whole -> "");
                   ])
                 assignment);
            Format.fprintf fmt "@.Schedule (cf. Figs. 6.5-6.7):@.%a@.@."
              Report.schedule t.F.schedule;
            let sh_pins = Mcs_util.Listx.sum snd t.F.pins in
            Some
              [
                string_of_int rate;
                (match nosharing with
                | Some (p, _) -> string_of_int p
                | None -> "-");
                (match nosharing with
                | Some (_, l) -> string_of_int l
                | None -> "-");
                string_of_int sh_pins;
                pipe_or t.F.schedule;
              ])
      d.Benchmarks.rates
  in
  Report.table fmt
    ~title:
      "Comparison (cf. Table 6.4): total pins and pipe length, bidirectional \
       ports"
    ~header:
      [ "Rate"; "Pins (no shr)"; "Pipe (no shr)"; "Pins (shr)"; "Pipe (shr)" ]
    comparison;
  Format.fprintf fmt "@.";
  let demo = Benchmarks.subbus_demo () in
  let ch4r =
    match run_flow F.Ch4 demo ~rate:3 ~mode:C.Bidir with
    | Ok r ->
        Printf.sprintf "feasible (%d pins)" (Mcs_util.Listx.sum snd r.F.pins)
    | Error _ -> "infeasible"
  in
  match run_flow F.Ch6 demo ~rate:3 ~mode:C.Bidir with
  | Ok t ->
      verify_or_die "ch6-demo" t.F.schedule;
      let buses =
        match t.F.connection with
        | A.Subbuses { buses; _ } -> buses
        | A.Bundles _ | A.Buses _ -> []
      in
      Format.fprintf fmt
        "Sub-bus demo (one 32-bit + four 8-bit transfers, 40-pin budget): \
         without sharing: %s; with sharing: feasible (%d pins, pipe %s)@.%a@."
        ch4r
        (Mcs_util.Listx.sum snd t.F.pins)
        (pipe_or t.F.schedule)
        (Report.real_buses demo.Benchmarks.cdfg)
        buses
  | Error m -> Format.fprintf fmt "sub-bus demo FAILED: %s@." m

(* ---- Chapter 7 ---- *)

let ch7 () =
  section "E7 - extensions (Chapter 7)";
  let yes =
    Extensions.Recursion.theorem71_instance ~tasks:3
      ~precedence:[ (1, 2); (2, 3) ]
      ~machines:1 ~deadline:3
  in
  let no =
    Extensions.Recursion.theorem71_instance ~tasks:4
      ~precedence:[ (1, 2); (2, 3); (3, 4) ]
      ~machines:1 ~deadline:3
  in
  let run (cdfg, cons, mlib, rate) =
    ( Extensions.Recursion.schedulable_sharing_one_bus cdfg cons mlib ~rate,
      Extensions.Recursion.schedulable_with_two_buses cdfg cons mlib ~rate )
  in
  let y1, y2 = run yes and n1, n2 = run no in
  Report.table fmt
    ~title:
      "Theorem 7.1: forcing two I/O operations onto one bus encodes \
       precedence-constrained scheduling"
    ~header:[ "PCS instance"; "one bus"; "two buses" ]
    [
      [ "3-chain, deadline 3 (yes)"; string_of_bool y1; string_of_bool y2 ];
      [ "4-chain, deadline 3 (no)"; string_of_bool n1; string_of_bool n2 ];
    ];
  Format.fprintf fmt "@.";
  let d = Benchmarks.cond_demo () in
  let groups =
    Extensions.Cond_share.run d.cdfg d.mlib ~rate:2 ~pipe_length:8 ()
  in
  Report.table fmt
    ~title:
      "Conditional I/O sharing (Fig. 7.7 heuristic) on the conditional demo"
    ~header:[ "Shared slot group"; "Frame" ]
    (List.map
       (fun (g : Extensions.Cond_share.group) ->
         [
           String.concat " " (List.map (Cdfg.name d.cdfg) g.members);
           Printf.sprintf "[%d, %d]" (fst g.frame) (snd g.frame);
         ])
       groups);
  Format.fprintf fmt "Pins saved by conditional sharing: %d@.@."
    (Extensions.Cond_share.pins_saved d.cdfg groups);
  let ar = Benchmarks.ar_general () in
  let before, after =
    Extensions.Tdm.pin_effect ar.cdfg ~value:"a24" ~dst:3 ~parts:2
  in
  let cdfg' =
    Extensions.Tdm.apply ar.cdfg ~value:"a24" ~dst:3 ~parts:2
      ~split_optype:"split" ~merge_optype:"merge"
  in
  Format.fprintf fmt
    "TDM (Fig. 7.8): splitting the 16-bit transfer X1 into 2 parts: %d -> %d \
     pins on that path; CDFG grows %d -> %d nodes (split/merge glue).@.@."
    before after (Cdfg.n_ops ar.cdfg) (Cdfg.n_ops cdfg');
  let bad, good = Extensions.Multicycle.fragmentation_demo () in
  Format.fprintf fmt
    "Allocation wheel (Fig. 7.10): three 2-cycle ops on one wheel of rate 6 \
     - Eq. 7.5 bound = %d FU; placement at groups {0,3} leaves no two \
     adjacent free cells (third op fits: %b), placement at groups {0,2} does \
     (fits: %b).@.@."
    (Extensions.Multicycle.lower_bound ~ops:3 ~rate:6 ~cycles:2)
    bad good

(* ---- Data-path binding and functional verification ---- *)

let rtl_and_verify () =
  section "E-RTL - data-path binding and functional verification";
  let rows = ref [] in
  let add_design (d : Benchmarks.design) ~rate ~mode =
    match run_flow F.Ch4 d ~rate ~mode with
    | Error m ->
        Format.fprintf fmt "%s rate %d: flow failed (%s)@." d.Benchmarks.tag
          rate m
    | Ok r ->
        let cons =
          match mode with
          | C.Unidir -> Benchmarks.constraints_for d ~rate
          | C.Bidir -> Benchmarks.constraints_for_bidir d ~rate
        in
        let conn, assignment =
          match r.F.connection with
          | A.Buses { conn; assignment; _ } -> (conn, assignment)
          | A.Bundles _ | A.Subbuses _ ->
              failwith "rtl: the Chapter 4 flow produces shared buses"
        in
        let sim =
          match
            Mcs_sim.Simulate.check_equivalent r.F.schedule
              ~bus_of:(fun op -> [ List.assoc op assignment ])
              ~bus_capable:(fun bus op ->
                C.capable conn d.Benchmarks.cdfg ~bus op)
              ~seed:2026 ~instances:8
          with
          | Ok () -> "machine == reference"
          | Error m -> "MISMATCH: " ^ m
        in
        (match Mcs_rtl.Datapath.build r.F.schedule cons with
        | Error m ->
            Format.fprintf fmt "%s rate %d: binding failed (%s)@."
              d.Benchmarks.tag rate m
        | Ok rtl ->
            let parts =
              Mcs_util.Listx.range 1 (Cdfg.n_partitions d.Benchmarks.cdfg + 1)
            in
            rows :=
              !rows
              @ [
                  [
                    d.Benchmarks.tag;
                    string_of_int rate;
                    String.concat "/"
                      (List.map
                         (fun p ->
                           string_of_int (Mcs_rtl.Datapath.register_count rtl p))
                         parts);
                    String.concat "/"
                      (List.map
                         (fun p ->
                           string_of_int (Mcs_rtl.Datapath.mux_input_total rtl p))
                         parts);
                    sim;
                  ];
                ])
  in
  add_design (Benchmarks.ar_general ()) ~rate:3 ~mode:C.Unidir;
  add_design (Benchmarks.ar_general ()) ~rate:4 ~mode:C.Unidir;
  add_design (Benchmarks.ar_general ()) ~rate:5 ~mode:C.Unidir;
  add_design (Benchmarks.elliptic ()) ~rate:6 ~mode:C.Unidir;
  add_design (Benchmarks.elliptic ()) ~rate:7 ~mode:C.Unidir;
  Report.table fmt
    ~title:
      "Registers and multiplexer fan-in per chip (cyclic left-edge binding), \
       plus an 8-instance functional simulation against the CDFG semantics"
    ~header:[ "Design"; "Rate"; "Registers"; "Mux fan-in"; "Simulation" ]
    !rows;
  Format.fprintf fmt "@."

(* ---- Scaling study ---- *)

let scaling () =
  section
    "E-scale - heuristic connection synthesis at sizes beyond the ILP \
     (the paper's motivation for Fig. 4.3)";
  let rows =
    List.map
      (fun (sections, chips) ->
        let d = Benchmarks.ar_scaled ~sections ~chips in
        let rate = List.hd d.Benchmarks.rates in
        let t0 = Unix.gettimeofday () in
        match run_flow F.Ch4 d ~rate ~mode:C.Unidir with
        | Error m ->
            [ d.Benchmarks.tag; "-"; "-"; "-"; "FAILED: " ^ m ]
        | Ok r ->
            verify_or_die "scale" r.F.schedule;
            [
              d.Benchmarks.tag;
              string_of_int (Cdfg.n_ops d.Benchmarks.cdfg);
              string_of_int (Mcs_util.Listx.sum snd r.F.pins);
              pipe_or r.F.schedule;
              Printf.sprintf "%.2f s" (Unix.gettimeofday () -. t0);
            ])
      [ (4, 4); (8, 4); (16, 8); (32, 8); (48, 12) ]
  in
  Report.table fmt
    ~title:
      "Connection-first flow on scaled lattice filters (rate 4): the \
       heuristic stays tractable where \"the run time to solve the ILP ... \
       will grow drastically\" (1.3)"
    ~header:[ "Design"; "Ops"; "Total pins"; "Pipe"; "Wall time" ]
    rows;
  Format.fprintf fmt "@."

(* ---- Warm-started ILP core ---- *)

(* The two fixed pin-ILP instances the pivot budgets of test/budgets.ml
   are pinned to; both searches are deterministic, so the pivot and node
   counts below are exact machine-independent numbers. *)
let ilp_cases () =
  [
    ("ar-general", Benchmarks.ar_general (), 3);
    ("elliptic", Benchmarks.elliptic (), 6);
  ]

let m_pivots = Mcs_obs.Metrics.counter "simplex.pivots"
let m_fpivots = Mcs_obs.Metrics.counter "fsimplex.pivots"
let m_nodes = Mcs_obs.Metrics.counter "bb.nodes"

(* Under the default float-certified arithmetic most pivots land in
   [fsimplex.pivots]; experiments that run whatever arith the flow picks
   (the serve grid) count both so the numbers survive either mode. *)
let all_pivots () = Mcs_obs.Metrics.count m_pivots + Mcs_obs.Metrics.count m_fpivots

let ilp_measure (d : Benchmarks.design) rate =
  let cons = Benchmarks.constraints_for d ~rate in
  let m = Simple_part.Pin_ilp.model d.Benchmarks.cdfg cons ~rate ~fixed:[] in
  let p, integer = Mcs_ilp.Model.to_problem m in
  let counted f =
    let p0 = Mcs_obs.Metrics.count m_pivots
    and n0 = Mcs_obs.Metrics.count m_nodes in
    (* Model building just allocated heavily; flush that GC debt now so
       the timed region pays only for its own work — it otherwise lands
       as a near-constant tax that swamps the fast solver's wall. *)
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let r = f () in
    ( r,
      Mcs_obs.Metrics.count m_pivots - p0,
      Mcs_obs.Metrics.count m_nodes - n0,
      Unix.gettimeofday () -. t0 )
  in
  let warm, wp, wn, wt =
    counted (fun () -> Mcs_ilp.Branch_bound.solve ~integer p)
  in
  let cold, cp, cn, ct =
    counted (fun () -> Mcs_ilp.Branch_bound.solve_cold ~integer p)
  in
  let agree =
    match (warm, cold) with
    | Mcs_ilp.Branch_bound.Optimal a, Mcs_ilp.Branch_bound.Optimal b ->
        Mcs_util.Ratio.equal a.Mcs_ilp.Simplex.value b.Mcs_ilp.Simplex.value
    | Mcs_ilp.Branch_bound.Infeasible, Mcs_ilp.Branch_bound.Infeasible -> true
    | _ -> false
  in
  (wp, wn, wt, cp, cn, ct, agree)

(* ---- Hybrid arithmetic: float-first certified vs exact rational ---- *)

let m_fpivots = Mcs_obs.Metrics.counter "fsimplex.pivots"
let m_certify_ok = Mcs_obs.Metrics.counter "ilp.certify.ok"
let m_certify_fail = Mcs_obs.Metrics.counter "ilp.certify.fail"

(* The same pin-ILP instance down the float-first path: float pivots,
   certification verdicts, wall, and agreement of the (exact, certified)
   objective with the rational reference.  The warm registry is cleared
   on both sides so the measurement stands alone. *)
let ilp_measure_float (d : Benchmarks.design) rate =
  let cons = Benchmarks.constraints_for d ~rate in
  let m = Simple_part.Pin_ilp.model d.Benchmarks.cdfg cons ~rate ~fixed:[] in
  let p, integer = Mcs_ilp.Model.to_problem m in
  Mcs_ilp.Warm.clear ();
  let fp0 = Mcs_obs.Metrics.count m_fpivots
  and ok0 = Mcs_obs.Metrics.count m_certify_ok
  and fail0 = Mcs_obs.Metrics.count m_certify_fail in
  Gc.full_major () (* same timing hygiene as [ilp_measure] *);
  let t0 = Unix.gettimeofday () in
  let fl =
    Mcs_ilp.Branch_bound.solve ~arith:Mcs_ilp.Fsimplex.Float_certified
      ~integer p
  in
  let fwall = Unix.gettimeofday () -. t0 in
  let ra = Mcs_ilp.Branch_bound.solve ~integer p in
  let agree =
    match (fl, ra) with
    | Mcs_ilp.Branch_bound.Optimal a, Mcs_ilp.Branch_bound.Optimal b ->
        Mcs_util.Ratio.equal a.Mcs_ilp.Simplex.value b.Mcs_ilp.Simplex.value
    | Mcs_ilp.Branch_bound.Infeasible, Mcs_ilp.Branch_bound.Infeasible -> true
    | _ -> false
  in
  ( Mcs_obs.Metrics.count m_fpivots - fp0,
    Mcs_obs.Metrics.count m_certify_ok - ok0,
    Mcs_obs.Metrics.count m_certify_fail - fail0,
    fwall,
    agree )

(* Cross-grid warm starts: the pin ILP swept over ascending rates, once
   with the registry cleared before every point (cold) and once letting
   neighboring points chain bases through the rate-independent Warm
   site key. *)
let ilp_grid_rates = [ 3; 4; 5 ]

let ilp_grid_measure (d : Benchmarks.design) ~chained =
  Mcs_ilp.Warm.clear ();
  let fp0 = Mcs_obs.Metrics.count m_fpivots in
  Gc.full_major () (* same timing hygiene as [ilp_measure] *);
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun rate ->
      if not chained then Mcs_ilp.Warm.clear ();
      let cons = Benchmarks.constraints_for d ~rate in
      ignore
        (Simple_part.Pin_ilp.feasible ~arith:Mcs_ilp.Fsimplex.Float_certified
           d.Benchmarks.cdfg cons ~rate ~fixed:[]))
    ilp_grid_rates;
  let r =
    (Mcs_obs.Metrics.count m_fpivots - fp0, Unix.gettimeofday () -. t0)
  in
  Mcs_ilp.Warm.clear ();
  r

let ilp () =
  section "E-ILP - warm-started branch & bound vs cold re-solve (pin ILPs)";
  let rows =
    List.map
      (fun (name, d, rate) ->
        let wp, wn, wt, cp, cn, ct, agree = ilp_measure d rate in
        [
          name;
          string_of_int rate;
          string_of_int cp;
          string_of_int cn;
          Printf.sprintf "%.3f s" ct;
          string_of_int wp;
          string_of_int wn;
          Printf.sprintf "%.3f s" wt;
          Printf.sprintf "%.0fx" (float_of_int cp /. float_of_int (max 1 wp));
          string_of_bool agree;
        ])
      (ilp_cases ())
  in
  Report.table fmt
    ~title:
      "Pivots and nodes to decide the Chapter 3 pin ILP: cold re-solve at \
       every node vs dual-simplex warm start"
    ~header:
      [
        "Design"; "Rate"; "Cold piv"; "Cold nodes"; "Cold wall"; "Warm piv";
        "Warm nodes"; "Warm wall"; "Pivot ratio"; "Agree";
      ]
    rows;
  Format.fprintf fmt "@.";
  let hrows =
    List.map
      (fun (name, d, rate) ->
        let _, _, rwall, _, _, _, _ = ilp_measure d rate in
        let fp, ok, fail, fwall, agree = ilp_measure_float d rate in
        [
          name;
          string_of_int rate;
          Printf.sprintf "%.3f s" rwall;
          string_of_int fp;
          Printf.sprintf "%.3f s" fwall;
          Printf.sprintf "%.1fx" (rwall /. Float.max 1e-9 fwall);
          Printf.sprintf "%d/%d" ok fail;
          string_of_bool agree;
        ])
      (ilp_cases ())
  in
  Report.table fmt
    ~title:
      "Hybrid arithmetic on the same warm search: float64 pivots with \
       exact rational certification of every accepted basis"
    ~header:
      [
        "Design"; "Rate"; "Rational wall"; "Float piv"; "Float wall";
        "Speedup"; "Cert ok/fail"; "Agree";
      ]
    hrows;
  let d = Benchmarks.ar_general () in
  let cold_p, cold_w = ilp_grid_measure d ~chained:false in
  let ch_p, ch_w = ilp_grid_measure d ~chained:true in
  Format.fprintf fmt
    "Cross-grid warm start (ar-general pin ILP, rates %s): cold %d \
     pivots / %.3f s, chained %d pivots / %.3f s@.@."
    (String.concat "," (List.map string_of_int ilp_grid_rates))
    cold_p cold_w ch_p ch_w

(* ---- Design-space exploration through the engine ---- *)

module E_job = Mcs_engine.Job
module E_pool = Mcs_engine.Pool
module E_outcome = Mcs_engine.Outcome

(* The paper's AR-filter table sweeps (Tables 4.2, 4.10, 5.1 and the
   Chapter 6 comparison) as one batch, run sequentially and then on four
   forked workers: same results, measured wall-clock speedup. *)
let dse () =
  section "E-DSE - the paper's table sweeps as engine batch jobs";
  let ar = E_job.Named "ar-general" in
  let jobs =
    E_job.grid ~designs:[ ar ]
      ~flows:[ E_job.Ch4_unidir; E_job.Ch4_bidir ]
      ~rates:[ 3; 4; 5 ] ()
    @ E_job.grid ~designs:[ ar ] ~flows:[ E_job.Ch5 ] ~rates:[ 3; 4; 5 ]
        ~pipe_lengths:[ 6; 7; 8; 9; 10 ] ()
    @ E_job.grid ~designs:[ ar ] ~flows:[ E_job.Ch6 ] ~rates:[ 3; 4; 5 ] ()
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, t_seq = timed (fun () -> E_pool.run ~jobs:1 jobs) in
  let par, t_par = timed (fun () -> E_pool.run ~jobs:4 jobs) in
  let identical = List.for_all2 E_outcome.equal seq par in
  let front = Mcs_engine.Pareto.frontier par in
  Report.table fmt
    ~title:
      "Sweep results (pins / pipe length / functional units per point, * = \
       Pareto-optimal)"
    ~header:[ "Flow"; "Rate"; "PL req"; "Status"; "Pins"; "Pipe"; "FUs"; "" ]
    (List.map
       (fun (o : E_outcome.t) ->
         let j = o.E_outcome.job in
         let feas = E_outcome.is_feasible o in
         [
           E_job.flow_to_string j.E_job.flow;
           string_of_int j.E_job.rate;
           (match j.E_job.pipe_length with
           | Some pl -> string_of_int pl
           | None -> "-");
           E_outcome.status_label o.E_outcome.status;
           (if feas then string_of_int (E_outcome.pins_total o) else "-");
           (if feas then string_of_int o.E_outcome.pipe_length else "-");
           (if feas then string_of_int o.E_outcome.fu_count else "-");
           (if List.memq o front then "*" else "");
         ])
       par);
  Format.fprintf fmt
    "@.%d jobs: sequential %.2f s, 4 workers %.2f s (speedup %.2fx); \
     parallel results identical to sequential: %b@.@."
    (List.length jobs) t_seq t_par
    (t_seq /. Float.max 1e-9 t_par)
    identical

(* ---- Synthesis-as-a-service: warm daemon vs cold CLI ---- *)

module S_server = Mcs_server.Server
module S_client = Mcs_server.Client
module S_proto = Mcs_server.Protocol
module Jx = Mcs_obs.Report_json

(* The 10 unique points of the serve grid; the session submits every
   one twice (20 jobs), the shape of an iterative exploration where the
   second pass is pure rework.  A cold CLI pays for all 20; the warm
   daemon's coalescing and cache pay for each unique point once.  The
   two ch3 points go through the pin ILP, so solver pivots are part of
   what deduplication saves. *)
let serve_uniq () =
  let ar = E_job.Named "ar-general" in
  E_job.grid ~designs:[ ar ] ~flows:[ E_job.Ch4_unidir ] ~rates:[ 3; 4; 5 ] ()
  @ E_job.grid ~designs:[ ar ] ~flows:[ E_job.Ch4_bidir ] ~rates:[ 3; 4 ] ()
  @ E_job.grid ~designs:[ ar ] ~flows:[ E_job.Ch5 ] ~rates:[ 4 ]
      ~pipe_lengths:[ 8; 9 ] ()
  @ E_job.grid ~designs:[ ar ] ~flows:[ E_job.Ch6 ] ~rates:[ 3 ] ()
  @ E_job.grid
      ~designs:
        [
          E_job.Named "ar-simple";
          E_job.Random_simple { seed = 3; n_partitions = 2; ops_per_chip = 4 };
        ]
      ~flows:[ E_job.Ch3 ] ~rates:[ 2 ] ()

let take n l = List.filteri (fun i _ -> i < n) l
let drop n l = List.filteri (fun i _ -> i >= n) l

type serve_numbers = {
  n_jobs : int;
  cold_wall : float;
  warm_wall : float;
  cold_pivots : int;
  warm_pivots : int;
  cache_hits : int;
  cache_misses : int;
  coalesced : int;
  warm_replied : int; (* warm replies that carried an outcome *)
}

let rm_rf dir =
  match Sys.readdir dir with
  | entries ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        entries;
      (try Unix.rmdir dir with Unix.Unix_error _ -> ())
  | exception Sys_error _ -> ()

(* Cold side: each job as its own fresh in-process run (what 20 CLI
   invocations cost, minus process startup — charitable to cold).  Warm
   side: a real forked daemon child with 2 worker domains, a warm cache
   and a batching window; its solver work is read back from the
   mcs-serve/1 stats.  The daemon must be a separate process anyway:
   the parent keeps forking (Bechamel etc.), which OCaml 5 forbids once
   a domain has been spawned. *)
let serve_numbers () =
  let uniq = serve_uniq () in
  (* Wave 1 repeats half the grid while it is still in flight (those
     duplicates coalesce); wave 2 repeats the other half after wave 1
     has settled (those are warm-cache hits).  20 jobs in all. *)
  let wave1 = uniq @ take 5 uniq in
  let wave2 = drop 5 uniq in
  let jobs = wave1 @ wave2 in
  let p0 = all_pivots () in
  let t0 = Unix.gettimeofday () in
  let cold = List.concat_map (fun j -> E_pool.run_local [ j ]) jobs in
  let cold_wall = Unix.gettimeofday () -. t0 in
  let cold_pivots = all_pivots () - p0 in
  assert (List.length cold = List.length jobs);
  let sock =
    Printf.sprintf "%s/mcs-bench-serve-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ())
  in
  let cache_dir =
    Printf.sprintf "%s/mcs-bench-serve-cache-%d"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ())
  in
  (* The child inherits this process's counters; warm solver work is the
     delta the daemon's stats show over the value at fork time. *)
  let p_fork = all_pivots () in
  match Unix.fork () with
  | 0 ->
      let code =
        try
          let config =
            {
              S_server.default_config with
              S_server.socket_path = sock;
              (* One worker domain on purpose: this experiment isolates
                 what the daemon's deduplication (coalescing + warm
                 cache) saves, not SMP scaling.  The historical
                 two-domain slowdown on this grid (4.7 s vs 2.9 s) was
                 diagnosed as stop-the-world minor-GC synchronisation —
                 under the default 256k-word minor heap the
                 allocation-heavy flows barrier every other domain
                 every few ms; with >= 1M words the wall is flat in the
                 domain count.  The mcs-serve binary fixes it by
                 re-exec'ing with OCAMLRUNPARAM=s=4M (see
                 Domain_pool.recommended_minor_heap_words); this
                 in-process child can't re-exec, one more reason to
                 keep domains = 1 here. *)
              domains = 1;
              cache_dir = Some cache_dir;
              window_ms = 25.0;
            }
          in
          let t = S_server.create ~config () in
          S_server.serve t;
          0
        with _ -> 1
      in
      Unix._exit code
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          rm_rf cache_dir)
        (fun () ->
          let rec connect_retry n =
            match S_client.connect_unix sock with
            | c -> c
            | exception Unix.Unix_error _ when n > 0 ->
                Unix.sleepf 0.05;
                connect_retry (n - 1)
          in
          let c = connect_retry 100 in
          let subs js =
            List.map
              (fun j ->
                { S_proto.id = ""; job = j; deadline_ms = None; fallback = true })
              js
          in
          let t1 = Unix.gettimeofday () in
          let wave js =
            match S_client.submit_all c (subs js) with
            | Ok rs -> rs
            | Error m -> failwith ("serve bench: " ^ m)
          in
          let r1 = wave wave1 in
          let r2 = wave wave2 in
          let replies = r1 @ r2 in
          let warm_wall = Unix.gettimeofday () -. t1 in
          let stats =
            match S_client.stats c with
            | Ok j -> j
            | Error m -> failwith ("serve bench stats: " ^ m)
          in
          let stat name =
            Option.value ~default:0
              (Option.bind (Jx.member name stats) Jx.to_int)
          in
          let metric name =
            Option.value ~default:0
              (Option.bind
                 (Option.bind (Jx.member "metrics" stats) (Jx.member name))
                 Jx.to_int)
          in
          let numbers =
            {
              n_jobs = List.length jobs;
              cold_wall;
              warm_wall;
              cold_pivots;
              warm_pivots =
                metric "simplex.pivots" + metric "fsimplex.pivots" - p_fork;
              cache_hits = stat "cache_hits";
              cache_misses = stat "cache_misses";
              coalesced = stat "coalesced";
              warm_replied =
                List.length
                  (List.filter
                     (fun (r : S_proto.reply) -> r.S_proto.outcome <> None)
                     replies);
            }
          in
          (match S_client.shutdown c with
          | Ok _ -> ()
          | Error m -> Format.eprintf "serve bench shutdown: %s@." m);
          S_client.close c;
          numbers)

let serve () =
  section
    "E-serve - warm daemon vs 20 cold CLI runs on a repeated DSE grid";
  let n = serve_numbers () in
  Report.table fmt
    ~title:
      "Same 20-job grid (10 unique points, submitted twice): cold \
       per-job runs vs one daemon with coalescing and a warm cache"
    ~header:
      [ "Mode"; "Jobs"; "Wall"; "Simplex pivots"; "Cache hits"; "Coalesced" ]
    [
      [
        "cold CLI";
        string_of_int n.n_jobs;
        Printf.sprintf "%.2f s" n.cold_wall;
        string_of_int n.cold_pivots;
        "-";
        "-";
      ];
      [
        "warm daemon";
        string_of_int n.n_jobs;
        Printf.sprintf "%.2f s" n.warm_wall;
        string_of_int n.warm_pivots;
        string_of_int n.cache_hits;
        string_of_int n.coalesced;
      ];
    ];
  Format.fprintf fmt
    "@.all %d daemon replies carried outcomes: %b; duplicates deduplicated \
     (coalesced + cache hits): %d; warm pivots %d < cold pivots %d: %b@.@."
    n.n_jobs
    (n.warm_replied = n.n_jobs)
    (n.coalesced + n.cache_hits)
    n.warm_pivots n.cold_pivots
    (n.warm_pivots < n.cold_pivots)

(* ---- E-chaos: crash-safe serving under injected faults ---- *)

module S_wal = Mcs_server.Wal

type chaos_numbers = {
  x_clean_sent : int;  (* clean jobs in the burst *)
  x_clean_answered : int;  (* ... that came back with outcomes *)
  x_poisoned : int;  (* jobs quarantined by the supervisor *)
  x_requeued : int;  (* entries requeued after domain deaths *)
  x_respawns : int;  (* worker domains respawned *)
  x_burst_wall : float;
  x_owed : int;  (* admits journaled before the simulated crash *)
  x_recovered : int;  (* ... replayed by --recover *)
  x_recover_wall : float;  (* daemon start to last owed reply *)
}

let chaos_job seed =
  E_job.make
    ~design:(E_job.Random_simple { seed; n_partitions = 2; ops_per_chip = 3 })
    ~flow:E_job.Ch3 ~rate:2 ()

(* A forked daemon child, like E-serve's (the parent must stay
   domain-free so Bechamel can keep forking), but under a fault
   schedule and with the durable journal on. *)
let chaos_daemon ~fault ~wal ~recover sock =
  match Unix.fork () with
  | 0 ->
      let code =
        try
          if fault <> "" then Unix.putenv "MCS_FAULT" fault;
          let config =
            {
              S_server.default_config with
              S_server.socket_path = sock;
              domains = 2;
              window_ms = 5.0;
              wal_path = Some wal;
              recover;
            }
          in
          let t = S_server.create ~config () in
          S_server.serve t;
          0
        with _ -> 1
      in
      Unix._exit code
  | pid -> pid

let chaos_connect_retry sock =
  let rec go n =
    match S_client.connect_unix sock with
    | c -> c
    | exception Unix.Unix_error _ when n > 0 ->
        Unix.sleepf 0.05;
        go (n - 1)
  in
  go 100

(* Two phases, both with deterministic counters.

   Burst: a daemon under MCS_FAULT=kill-domain:2 gets one victim job
   (both kills land on it — nothing else is in flight — so it takes two
   strikes and is quarantined: poisoned = 1, requeued = 1 after the
   first death, respawns = 2) followed by a clean burst that must all
   be answered by the respawned pool.

   Recovery: a journal owing [x_owed] admits (written directly — the
   "crash" happened before any dispatch) is replayed by a fresh daemon
   with recover = true; the wall from daemon start to the last owed
   reply is the recovery cost a restart pays. *)
let chaos_numbers () =
  let tmp = Filename.get_temp_dir_name () in
  let sock = Printf.sprintf "%s/mcs-bench-chaos-%d.sock" tmp (Unix.getpid ()) in
  let wal = Printf.sprintf "%s/mcs-bench-chaos-%d.wal" tmp (Unix.getpid ()) in
  (try Sys.remove wal with Sys_error _ -> ());
  let stat stats name =
    Option.value ~default:0 (Option.bind (Jx.member name stats) Jx.to_int)
  in
  let stats_of c =
    match S_client.stats c with
    | Ok j -> j
    | Error m -> failwith ("chaos bench stats: " ^ m)
  in
  (* The child inherits this process's counters at fork; everything it
     reports is a delta over the parent's value at that moment. *)
  let parent_count name = Mcs_obs.Metrics.count (Mcs_obs.Metrics.counter name) in
  let with_daemon ~fault ~recover f =
    let pid = chaos_daemon ~fault ~wal ~recover sock in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      (fun () ->
        let c = chaos_connect_retry sock in
        Fun.protect
          ~finally:(fun () ->
            (match S_client.shutdown c with
            | Ok _ -> ()
            | Error m -> Format.eprintf "chaos bench shutdown: %s@." m);
            S_client.close c)
          (fun () -> f c))
  in
  (* Phase 1: the kill-domain burst. *)
  let respawns0 = parent_count "server.respawns" in
  let requeued0 = parent_count "server.requeued" in
  let poisoned0 = parent_count "server.poisoned" in
  let n_clean = 8 in
  let burst =
    with_daemon ~fault:"kill-domain:2" ~recover:false (fun c ->
        let t0 = Unix.gettimeofday () in
        let submit js =
          match
            S_client.submit_all c
              (List.map
                 (fun j ->
                   {
                     S_proto.id = "";
                     job = j;
                     deadline_ms = None;
                     fallback = true;
                   })
                 js)
          with
          | Ok rs -> rs
          | Error m -> failwith ("chaos bench: " ^ m)
        in
        (* The victim rides alone so both kill shots hit it. *)
        let victim_replies = submit [ chaos_job 91 ] in
        let clean_replies =
          submit (List.init n_clean (fun i -> chaos_job (100 + i)))
        in
        let burst_wall = Unix.gettimeofday () -. t0 in
        let poisoned_replies =
          List.length
            (List.filter
               (fun (r : S_proto.reply) ->
                 match r.S_proto.diag with
                 | Some d -> d.S_proto.code = "poisoned"
                 | None -> false)
               victim_replies)
        in
        (* Both deaths respawn shortly after the replies (backoff). *)
        let deadline = Unix.gettimeofday () +. 10.0 in
        let rec settle stats =
          if
            stat stats "respawns" - respawns0 >= 2
            || Unix.gettimeofday () > deadline
          then stats
          else begin
            Unix.sleepf 0.05;
            settle (stats_of c)
          end
        in
        let stats = settle (stats_of c) in
        ( poisoned_replies,
          List.length
            (List.filter
               (fun (r : S_proto.reply) -> r.S_proto.outcome <> None)
               clean_replies),
          burst_wall,
          stat stats "poisoned" - poisoned0,
          stat stats "requeued" - requeued0,
          stat stats "respawns" - respawns0 ))
  in
  let ( poisoned_replies,
        clean_answered,
        burst_wall,
        s_poisoned,
        s_requeued,
        s_respawns ) =
    burst
  in
  assert (poisoned_replies = s_poisoned);
  (* Phase 2: crash-recovery replay.  Write the owed journal directly:
     the simulated daemon died after fsync'ing the admits, before any
     dispatch. *)
  (try Sys.remove wal with Sys_error _ -> ());
  let owed = 6 in
  let w = S_wal.open_ wal in
  List.iter
    (fun i ->
      S_wal.append w
        (S_wal.Admit
           {
             id = Printf.sprintf "owed%d" i;
             job = chaos_job (200 + i);
             deadline_ms = None;
             fallback = true;
           }))
    (List.init owed (fun i -> i));
  S_wal.close w;
  let served0 = parent_count "server.served" in
  let recovered0 = parent_count "server.wal.recovered" in
  let t1 = Unix.gettimeofday () in
  let recovered, recover_wall =
    with_daemon ~fault:"" ~recover:true (fun c ->
        let deadline = Unix.gettimeofday () +. 30.0 in
        let rec settle stats =
          if
            stat stats "served" - served0 >= owed
            || Unix.gettimeofday () > deadline
          then stats
          else begin
            Unix.sleepf 0.05;
            settle (stats_of c)
          end
        in
        let stats = settle (stats_of c) in
        (stat stats "wal_recovered" - recovered0, Unix.gettimeofday () -. t1))
  in
  (try Sys.remove wal with Sys_error _ -> ());
  {
    x_clean_sent = n_clean;
    x_clean_answered = clean_answered;
    x_poisoned = s_poisoned;
    x_requeued = s_requeued;
    x_respawns = s_respawns;
    x_burst_wall = burst_wall;
    x_owed = owed;
    x_recovered = recovered;
    x_recover_wall = recover_wall;
  }

let chaos () =
  section "E-chaos - crash-safe serving: poison quarantine and WAL replay";
  let n = chaos_numbers () in
  Report.table fmt
    ~title:
      "Daemon under injected faults: a lethal job plus a clean burst \
       (MCS_FAULT=kill-domain:2), then journal replay after a \
       simulated crash"
    ~header:
      [ "Phase"; "Requests"; "Answered"; "Respawns"; "Requeued"; "Poisoned"; "Wall" ]
    [
      [
        "kill-domain burst";
        string_of_int (1 + n.x_clean_sent);
        string_of_int (1 + n.x_clean_answered);
        (* the victim's poisoned reply is an answer *)
        string_of_int n.x_respawns;
        string_of_int n.x_requeued;
        string_of_int n.x_poisoned;
        Printf.sprintf "%.2f s" n.x_burst_wall;
      ];
      [
        "WAL recovery";
        string_of_int n.x_owed;
        string_of_int n.x_recovered;
        "-";
        "-";
        "-";
        Printf.sprintf "%.2f s" n.x_recover_wall;
      ];
    ];
  Format.fprintf fmt
    "@.every accepted request answered exactly once: %b; requests lost \
     across the crash: %d@.@."
    (n.x_clean_answered = n.x_clean_sent && n.x_poisoned = 1)
    (n.x_owed - n.x_recovered)

(* ---- E-refine: refinement recovers a forced degradation ---- *)

module Rf = Mcs_refine.Refine

type refine_numbers = {
  obj_exact : int;
  obj_degraded : int;
  obj_refined : int;
  r_iters : int;
  r_accepted : int;
  r_wall : float;
}

(* cond-demo / ch6 / rate 4 under MCS_FAULT=exhaust-heuristic:1: the one
   armed shot kills the sub-bus search at entry, the ladder degrades to
   one dedicated bus per value (objective 88003 = 1000*pins + pipe), and
   the refinement loop's re-climb — re-running the flow ladder-free now
   that the shot is spent — recovers the exact result (48008).  Every
   counter is deterministic: one shot, one accepted iteration. *)
let refine_numbers () =
  let design = Benchmarks.cond_demo () in
  let spec () = F.spec_of_design ~mode:C.Bidir ~flow:F.Ch6 design ~rate:4 in
  let run s =
    match Mcs_check.run F.Ch6 s with
    | Ok r -> r
    | Error d -> failwith (Diag.message d)
  in
  let exact = run (spec ()) in
  let old_fault = Sys.getenv_opt "MCS_FAULT" in
  Unix.putenv "MCS_FAULT" "exhaust-heuristic:1";
  Mcs_resilience.Fault.reset ();
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "MCS_FAULT" (Option.value old_fault ~default:"");
      Mcs_resilience.Fault.reset ())
    (fun () ->
      let degraded = run (spec ()) in
      let t0 = Unix.gettimeofday () in
      let out = Rf.improve ~max_iters:3 (spec ()) degraded in
      {
        obj_exact = Rf.objective exact;
        obj_degraded = Rf.objective degraded;
        obj_refined = Rf.objective out.Rf.result;
        r_iters = List.length out.Rf.iterations;
        r_accepted =
          List.length
            (List.filter
               (fun (it : Rf.iteration) -> it.Rf.accepted)
               out.Rf.iterations);
        r_wall = Unix.gettimeofday () -. t0;
      })

let refine () =
  section "E-refine - feedback-guided refinement vs a forced degradation";
  let n = refine_numbers () in
  Report.table fmt
    ~title:
      "cond-demo, ch6, rate 4: exhaust-heuristic:1 forces the dedicated-bus \
       rung; --refine re-climbs the ladder (objective = 1000*pins + pipe)"
    ~header:[ "Stage"; "Objective"; "Iterations"; "Accepted"; "Wall" ]
    [
      [ "exact (no fault)"; string_of_int n.obj_exact; "-"; "-"; "-" ];
      [ "degraded"; string_of_int n.obj_degraded; "-"; "-"; "-" ];
      [
        "refined";
        string_of_int n.obj_refined;
        string_of_int n.r_iters;
        string_of_int n.r_accepted;
        Printf.sprintf "%.2f s" n.r_wall;
      ];
    ];
  Format.fprintf fmt
    "@.refined objective equals the exact flow's: %b; strictly better than \
     degraded: %b@.@."
    (n.obj_refined = n.obj_exact)
    (n.obj_refined < n.obj_degraded)

(* ---- Bechamel timing ---- *)

let bechamel () =
  section "Timing (Bechamel, monotonic clock)";
  let open Bechamel in
  let ar = Benchmarks.ar_general () in
  let ewf = Benchmarks.elliptic () in
  let simple = Benchmarks.ar_simple () in
  let cons3 = Benchmarks.constraints_for ar ~rate:3 in
  let cons7 = Benchmarks.constraints_for ewf ~rate:7 in
  let cons_s = Benchmarks.constraints_for simple ~rate:2 in
  let tests =
    [
      Test.make ~name:"ch4-heuristic-search(ar,rate3)"
        (Staged.stage (fun () ->
             ignore
               (Mcs_connect.Heuristic.search ar.cdfg cons3 ~rate:3
                  ~mode:C.Unidir ())));
      Test.make ~name:"ch3-pin-ilp-feasibility(ar-simple)"
        (Staged.stage (fun () ->
             ignore
               (Simple_part.Pin_ilp.feasible simple.cdfg cons_s ~rate:2
                  ~fixed:[])));
      Test.make ~name:"ch5-fds(ewf,rate6,pl25)"
        (Staged.stage (fun () ->
             ignore
               (Mcs_sched.Fds.run ewf.cdfg ewf.mlib ~rate:6 ~pipe_length:25 ())));
      Test.make ~name:"list-sched(ewf,rate7)"
        (Staged.stage (fun () ->
             ignore
               (Mcs_sched.List_sched.run ewf.cdfg ewf.mlib cons7 ~rate:7 ())));
      Test.make ~name:"hungarian(40x40)"
        (Staged.stage (fun () ->
             let n = 40 in
             let cost =
               Array.init n (fun i ->
                   Array.init n (fun j -> ((i * 7919) + (j * 104729)) mod 1000))
             in
             ignore (Mcs_graph.Hungarian.assignment cost)));
      Test.make ~name:"ch5-clique-partitioning(ar,rate4,pl9)"
        (Staged.stage (fun () ->
             ignore
               (Post_connect.run_design ar ~rate:4 ~pipe_length:9 ~mode:C.Bidir)));
      Test.make ~name:"simplex(20x40,rational)"
        (Staged.stage (fun () ->
             let module R = Mcs_util.Ratio in
             let n = 40 and m = 20 in
             let rows =
               List.init m (fun i ->
                   ( Array.init n (fun j -> R.of_int (((i + j) mod 7) + 1)),
                     Mcs_ilp.Simplex.Le,
                     R.of_int 100 ))
             in
             let p =
               {
                 Mcs_ilp.Simplex.n_vars = n;
                 objective = Array.init n (fun j -> R.of_int ((j mod 5) + 1));
                 rows;
               }
             in
             ignore (Mcs_ilp.Simplex.solve p)));
    ]
  in
  let grouped = Test.make_grouped ~name:"mcs" tests in
  let cfg = Benchmark.cfg ~limit:60 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
      let time =
        match Analyze.OLS.estimates est with
        | Some (t :: _) ->
            if t > 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
            else if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
            else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
            else Printf.sprintf "%.0f ns" t
        | _ -> "n/a"
      in
      rows := [ name; time ] :: !rows)
    results;
  Report.table fmt ~title:"Estimated execution time per run"
    ~header:[ "Algorithm"; "time" ]
    (List.sort compare !rows)

(* ---- Machine-readable benchmark mode ---- *)

module J = Mcs_obs.Report_json

(* One representative configuration per flow; counters are reset before
   each so every record's metrics are that flow's own. *)
let json_report path =
  let record name design rate run =
    Mcs_obs.Metrics.reset ();
    let t0 = Unix.gettimeofday () in
    let r = attempt run in
    let wall = Unix.gettimeofday () -. t0 in
    let status, fields =
      match r with
      | Ok fields -> ([ ("status", J.Str "ok") ], fields)
      | Error m -> ([ ("status", J.Str "error"); ("error", J.Str m) ], [])
    in
    J.Obj
      ([
         ("flow", J.Str name);
         ("design", J.Str design);
         ("rate", J.Int rate);
       ]
      @ status
      @ [ ("wall_s", J.Float wall) ]
      @ fields
      @ [ ("metrics", J.metrics ()) ])
  in
  let result sched pins =
    [
      ("pins_total", J.Int (Mcs_util.Listx.sum snd pins));
      ("pipe_length", J.Int (Sched.pipe_length sched));
    ]
  in
  let flows =
    (if not (want "ch3") then []
     else
       [
         record "ch3" "ar-simple" 2 (fun () ->
             match
               run_flow F.Ch3 (Benchmarks.ar_simple ()) ~rate:2 ~mode:C.Unidir
             with
             | Error m -> Error m
             | Ok r -> Ok (result r.F.schedule r.F.pins));
       ])
    @ (if not (want "ch4") then []
       else
         [
           record "ch4" "ar-general" 3 (fun () ->
               match
                 run_flow F.Ch4 (Benchmarks.ar_general ()) ~rate:3
                   ~mode:C.Unidir
               with
               | Error m -> Error m
               | Ok r -> Ok (result r.F.schedule r.F.pins));
         ])
    @ (if not (want "ch5") then []
       else
         [
           record "ch5" "ar-general" 4 (fun () ->
               match
                 run_flow F.Ch5
                   (Benchmarks.ar_general ())
                   ~rate:4 ~pipe_length:9 ~mode:C.Bidir
               with
               | Error m -> Error m
               | Ok r -> Ok (result r.F.schedule r.F.pins));
         ])
    @ (if not (want "ch6") then []
       else
         [
           record "ch6" "ar-general" 3 (fun () ->
               match
                 run_flow F.Ch6 (Benchmarks.ar_general ()) ~rate:3
                   ~mode:C.Bidir
               with
               | Error m -> Error m
               | Ok t -> Ok (result t.F.schedule t.F.pins));
         ])
    @ (if not (want "ilp") then []
       else
         List.map
           (fun (name, d, rate) ->
             record "ilp-warm-vs-cold" name rate (fun () ->
                 let wp, wn, wt, cp, cn, ct, agree = ilp_measure d rate in
                 let fp, ok, fail, fwall, fagree = ilp_measure_float d rate in
                 Ok
                   [
                     ("cold_pivots", J.Int cp);
                     ("warm_pivots", J.Int wp);
                     ("cold_nodes", J.Int cn);
                     ("warm_nodes", J.Int wn);
                     ("cold_wall_s", J.Float ct);
                     ("warm_wall_s", J.Float wt);
                     ("agree", J.Bool agree);
                     ("float_pivots", J.Int fp);
                     ("certify_ok", J.Int ok);
                     ("certify_fail", J.Int fail);
                     ("float_wall_s", J.Float fwall);
                     ("float_agree", J.Bool fagree);
                   ]))
           (ilp_cases ())
         @ [
             record "ilp-grid-warm" "ar-general" 0 (fun () ->
                 let d = Benchmarks.ar_general () in
                 let cold_p, cold_w = ilp_grid_measure d ~chained:false in
                 let ch_p, ch_w = ilp_grid_measure d ~chained:true in
                 Ok
                   [
                     ("grid_cold_pivots", J.Int cold_p);
                     ("grid_chained_pivots", J.Int ch_p);
                     ("grid_cold_wall_s", J.Float cold_w);
                     ("grid_chained_wall_s", J.Float ch_w);
                     ("chained_lt_cold", J.Bool (ch_p < cold_p));
                   ]);
           ])
    @
    if not (want "serve") then []
    else
      [
        record "serve-warm-vs-cold" "grid20" 0 (fun () ->
            let n = serve_numbers () in
            Ok
              [
                ("jobs", J.Int n.n_jobs);
                ("cold_wall_s", J.Float n.cold_wall);
                ("warm_wall_s", J.Float n.warm_wall);
                ("cold_pivots", J.Int n.cold_pivots);
                ("warm_pivots", J.Int n.warm_pivots);
                ("cache_hits", J.Int n.cache_hits);
                ("cache_misses", J.Int n.cache_misses);
                ("coalesced", J.Int n.coalesced);
                ( "cache_hit_rate",
                  J.Float
                    (float_of_int n.cache_hits
                    /. float_of_int (max 1 (n.cache_hits + n.cache_misses))) );
                ("warm_lt_cold_pivots", J.Bool (n.warm_pivots < n.cold_pivots));
              ]);
      ]
    @
    if not (want "chaos") then []
    else
      [
        record "chaos-kill-and-recover" "random-burst" 0 (fun () ->
            let n = chaos_numbers () in
            Ok
              [
                ("clean_sent", J.Int n.x_clean_sent);
                ("clean_answered", J.Int n.x_clean_answered);
                ("poisoned", J.Int n.x_poisoned);
                ("requeued", J.Int n.x_requeued);
                ("respawns", J.Int n.x_respawns);
                ("burst_wall_s", J.Float n.x_burst_wall);
                ("owed", J.Int n.x_owed);
                ("recovered", J.Int n.x_recovered);
                ("lost", J.Int (n.x_owed - n.x_recovered));
                ("recover_wall_s", J.Float n.x_recover_wall);
              ]);
      ]
  in
  let report =
    J.Obj [ ("schema", J.Str "mcs-bench/1"); ("flows", J.Arr flows) ]
  in
  match J.write_file path report with
  | Ok () ->
      Format.fprintf fmt "wrote %s@." path;
      0
  | Error m ->
      Format.eprintf "cannot write %s: %s@." path m;
      1

(* ---- Baseline measurement and CI gating (mcs-bench-baseline/1) ---- *)

module B = Mcs_prof.Baseline

let median xs =
  match List.sort Float.compare xs with
  | [] -> 0.0
  | s -> List.nth s (List.length s / 2)

(* The same measurements json_report takes, reduced to baseline records:
   deterministic counters and result metrics are hard gates, wall times
   (median of [reps] repetitions, to shave scheduler noise) are soft. *)
let baseline_records ~reps () =
  let reps = max 1 reps in
  let recs = ref [] in
  let add experiment metric value hard =
    recs := { B.experiment; metric; value; hard } :: !recs
  in
  let flow_case tag design_name rate run =
    if want tag then begin
      let experiment = Printf.sprintf "%s.%s.r%d" tag design_name rate in
      let runs =
        List.init reps (fun _ ->
            Mcs_obs.Metrics.reset ();
            let t0 = Unix.gettimeofday () in
            let r = attempt run in
            (r, Unix.gettimeofday () -. t0))
      in
      match fst (List.hd runs) with
      | Error m -> Format.eprintf "baseline: %s FAILED (%s)@." experiment m
      | Ok (pins, pipe) ->
          add experiment "pins" (float_of_int pins) true;
          add experiment "pipe" (float_of_int pipe) true;
          add experiment "wall_s" (median (List.map snd runs)) false
    end
  in
  let totals (r : F.result) =
    (Mcs_util.Listx.sum snd r.F.pins, Sched.pipe_length r.F.schedule)
  in
  flow_case "ch3" "ar-simple" 2 (fun () ->
      Result.map totals
        (run_flow F.Ch3 (Benchmarks.ar_simple ()) ~rate:2 ~mode:C.Unidir));
  flow_case "ch4" "ar-general" 3 (fun () ->
      Result.map totals
        (run_flow F.Ch4 (Benchmarks.ar_general ()) ~rate:3 ~mode:C.Unidir));
  flow_case "ch5" "ar-general" 4 (fun () ->
      Result.map totals
        (run_flow F.Ch5
           (Benchmarks.ar_general ())
           ~rate:4 ~pipe_length:9 ~mode:C.Bidir));
  flow_case "ch6" "ar-general" 3 (fun () ->
      Result.map totals
        (run_flow F.Ch6 (Benchmarks.ar_general ()) ~rate:3 ~mode:C.Bidir));
  if want "ilp" then begin
    List.iter
      (fun (name, d, rate) ->
        let experiment = Printf.sprintf "ilp.%s.r%d" name rate in
        let runs = List.init reps (fun _ -> ilp_measure d rate) in
        let wp, wn, _, cp, cn, _, _ = List.hd runs in
        add experiment "warm_pivots" (float_of_int wp) true;
        add experiment "warm_nodes" (float_of_int wn) true;
        add experiment "cold_pivots" (float_of_int cp) true;
        add experiment "cold_nodes" (float_of_int cn) true;
        let rational_wall =
          median (List.map (fun (_, _, wt, _, _, _, _) -> wt) runs)
        in
        add experiment "warm_wall_s" rational_wall false;
        add experiment "cold_wall_s"
          (median (List.map (fun (_, _, _, _, _, ct, _) -> ct) runs))
          false;
        (* The float-first path on the same instance.  Pivot and
           certification counts are deterministic (IEEE float64 plus
           Bland's rule pin the pivot sequence), so they gate hard; the
           issue's <= 0.5x-of-rational wall requirement gates through a
           same-run ratio, which cancels machine speed out of the
           comparison.  0 is the good value of the derived booleans —
           hard records fail on any increase. *)
        let fruns = List.init reps (fun _ -> ilp_measure_float d rate) in
        let fp, ok, fail, _, _ = List.hd fruns in
        let float_wall =
          median (List.map (fun (_, _, _, w, _) -> w) fruns)
        in
        add experiment "float_pivots" (float_of_int fp) true;
        add experiment "certify_ok" (float_of_int ok) true;
        add experiment "certify_ok_is_zero" (if ok = 0 then 1.0 else 0.0)
          true;
        add experiment "certify_fail" (float_of_int fail) true;
        add experiment "float_wall_over_half_rational"
          (if float_wall > 0.5 *. rational_wall then 1.0 else 0.0)
          true;
        add experiment "float_pivot_wall_s" float_wall false)
      (ilp_cases ());
    (* Cross-grid warm starts: chained grid solves must never pivot more
       than cold ones. *)
    let d = Benchmarks.ar_general () in
    let cold = List.init reps (fun _ -> ilp_grid_measure d ~chained:false) in
    let chained =
      List.init reps (fun _ -> ilp_grid_measure d ~chained:true)
    in
    let cold_p = fst (List.hd cold)
    and ch_p = fst (List.hd chained) in
    add "ilp.grid-warm" "grid_cold_pivots" (float_of_int cold_p) true;
    add "ilp.grid-warm" "grid_chained_pivots" (float_of_int ch_p) true;
    add "ilp.grid-warm" "chained_exceeds_cold"
      (if ch_p >= cold_p then 1.0 else 0.0)
      true;
    add "ilp.grid-warm" "grid_cold_wall_s" (median (List.map snd cold)) false;
    add "ilp.grid-warm" "grid_chained_wall_s"
      (median (List.map snd chained))
      false
  end;
  (* One measured session, not [reps]: the counters are deterministic
     (every unique point solved exactly once behind the daemon's
     coalescing and cache) and the session itself is the expensive
     part.  Wall times stay soft. *)
  if want "serve" then begin
    let n = serve_numbers () in
    add "serve.grid20" "cold_pivots" (float_of_int n.cold_pivots) true;
    add "serve.grid20" "warm_pivots" (float_of_int n.warm_pivots) true;
    add "serve.grid20" "cache_misses" (float_of_int n.cache_misses) true;
    add "serve.grid20" "cold_wall_s" n.cold_wall false;
    add "serve.grid20" "warm_wall_s" n.warm_wall false
  end;
  (* Hard chaos gates encode their good state as 0 (hard gates fail on
     any increase): a missing quarantine, a lost clean reply or a
     request lost across the crash all flip a 0 to a positive count.
     The raw churn counters (respawns, requeued, poisoned) are hard
     too, so the faults injected can't silently grow either. *)
  if want "chaos" then begin
    let n = chaos_numbers () in
    let e = "chaos.kill2" in
    add e "poisoned" (float_of_int n.x_poisoned) true;
    add e "requeued" (float_of_int n.x_requeued) true;
    add e "respawns" (float_of_int n.x_respawns) true;
    add e "quarantine_missed" (if n.x_poisoned = 1 then 0.0 else 1.0) true;
    add e "clean_unanswered"
      (float_of_int (n.x_clean_sent - n.x_clean_answered))
      true;
    add e "burst_wall_s" n.x_burst_wall false;
    let r = "chaos.recover" in
    add r "recovered" (float_of_int n.x_recovered) true;
    add r "lost" (float_of_int (n.x_owed - n.x_recovered)) true;
    add r "recover_wall_s" n.x_recover_wall false
  end;
  (* Hard gates fail on any increase, so the booleans encode their good
     state as 0: recovery_missed flips to 1 if refinement ever stops
     recovering the exact objective, no_accepted_iteration flips to 1 if
     the re-climb stops being accepted. *)
  if want "refine" then begin
    let n = refine_numbers () in
    let e = "refine.cond-demo.ch6.r4" in
    add e "objective_degraded" (float_of_int n.obj_degraded) true;
    add e "objective_refined" (float_of_int n.obj_refined) true;
    add e "recovery_missed"
      (if n.obj_refined = n.obj_exact then 0.0 else 1.0)
      true;
    add e "refine_iterations" (float_of_int n.r_iters) true;
    add e "no_accepted_iteration" (if n.r_accepted >= 1 then 0.0 else 1.0) true;
    add e "refine_wall_s" n.r_wall false
  end;
  List.rev !recs

let baseline_mode path reps =
  let recs = baseline_records ~reps () in
  if recs = [] then begin
    Format.eprintf "baseline: no experiments selected@.";
    2
  end
  else
    match B.save path recs with
    | Ok () ->
        Format.fprintf fmt "wrote %s (%d records)@." path (List.length recs);
        0
    | Error m ->
        Format.eprintf "cannot write %s: %s@." path m;
        2

let compare_mode path reps noise =
  match B.load path with
  | Error m ->
      Format.eprintf "cannot load baseline %s: %s@." path m;
      2
  | Ok baseline ->
      (* Honour --only symmetrically: gate only the baseline records
         whose experiment the current invocation re-measures. *)
      let baseline = List.filter (fun r -> want r.B.experiment) baseline in
      let current = baseline_records ~reps () in
      let cs = B.compare ~noise ~baseline ~current () in
      List.iter (fun c -> Format.fprintf fmt "%a@." B.pp_comparison c) cs;
      let hard = B.failures cs in
      let soft = B.soft_regressions cs in
      if soft <> [] then
        Format.fprintf fmt
          "warning: %d wall-time regression(s) beyond the %.0f%% noise \
           threshold (soft, not gating)@."
          (List.length soft) (noise *. 100.);
      if hard <> [] then begin
        Format.fprintf fmt
          "FAIL: %d hard regression(s) against %s@."
          (List.length hard) path;
        1
      end
      else begin
        Format.fprintf fmt "baseline OK: %d record(s) compared against %s@."
          (List.length cs) path;
        0
      end

let () =
  let args = Array.to_list Sys.argv in
  let json_file = ref None in
  let baseline_file = ref None in
  let compare_file = ref None in
  let trace_out = ref None in
  let reps = ref 3 in
  let noise = ref 0.25 in
  List.iteri
    (fun i a ->
      let arg_of k = if a = k && i + 1 < List.length args then
          Some (List.nth args (i + 1)) else None in
      (match arg_of "--only" with Some v -> only := v | None -> ());
      (match arg_of "--json" with Some v -> json_file := Some v | None -> ());
      (match arg_of "--baseline" with
      | Some v -> baseline_file := Some v
      | None -> ());
      (match arg_of "--compare" with
      | Some v -> compare_file := Some v
      | None -> ());
      (match arg_of "--trace-out" with
      | Some v -> trace_out := Some v
      | None -> ());
      (match Option.bind (arg_of "--reps") int_of_string_opt with
      | Some n when n > 0 -> reps := n
      | Some _ | None -> ());
      (match Option.bind (arg_of "--noise") float_of_string_opt with
      | Some p when p > 0. -> noise := p /. 100.
      | Some _ | None -> ());
      if a = "--skip-bechamel" then skip_bechamel := true)
    args;
  (match !trace_out with
  | Some _ ->
      Mcs_obs.Events.clear ();
      Mcs_prof.Chrome_trace.start ()
  | None -> ());
  let finish code =
    (match !trace_out with
    | Some path -> (
        match Mcs_prof.Chrome_trace.write path with
        | Ok () -> Format.fprintf fmt "wrote %s@." path
        | Error m -> Format.eprintf "cannot write %s: %s@." path m)
    | None -> ());
    exit code
  in
  match (!json_file, !baseline_file, !compare_file) with
  | None, None, None ->
      if want "ch3" then ch3 ();
      if want "ch4" then ch4 ();
      if want "ch5" then ch5 ();
      if want "ch6" then ch6 ();
      if want "ch7" then ch7 ();
      if want "rtl" then rtl_and_verify ();
      if want "scale" then scaling ();
      if want "ilp" then ilp ();
      if want "dse" then dse ();
      if want "serve" then serve ();
      if want "chaos" then chaos ();
      if want "refine" then refine ();
      if not !skip_bechamel then bechamel ();
      Format.fprintf fmt "@.All experiments completed.@.";
      finish 0
  | _ ->
      let json_code =
        match !json_file with Some p -> json_report p | None -> 0
      in
      let baseline_code =
        match !baseline_file with
        | Some p -> baseline_mode p !reps
        | None -> 0
      in
      let compare_code =
        match !compare_file with
        | Some p -> compare_mode p !reps !noise
        | None -> 0
      in
      finish (max json_code (max baseline_code compare_code))

(* Tests for Mcs_refine: the anytime-improvement loop is monotone (every
   accepted iteration strictly improves the objective and stays
   checker-clean), [--refine=0] is a bit-identical passthrough, forced
   degradation is recovered when a better result exists, armed fault
   counts disarm after firing, and the [List_sched ~fixed] replay used
   for subproblem extraction reproduces schedules verbatim. *)

module F = Mcs_flow.Flow
module Diag = Mcs_flow.Diag
module Pass = Mcs_flow.Pass
module Rf = Mcs_refine.Refine
module Bot = Mcs_check.Bottleneck
module Budget = Mcs_resilience.Budget
module Fault = Mcs_resilience.Fault
module LS = Mcs_sched.List_sched
module Sched = Mcs_sched.Schedule
module C = Mcs_connect.Connection
module Job = Mcs_engine.Job
module Pool = Mcs_engine.Pool
module Outcome = Mcs_engine.Outcome

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let with_env name v f =
  let old = Sys.getenv_opt name in
  Unix.putenv name v;
  Fun.protect
    ~finally:(fun () -> Unix.putenv name (Option.value old ~default:""))
    f

let with_fault v f =
  Fault.reset ();
  with_env "MCS_FAULT" v f

let spec_for ?pipe_length name ~flow ~mode ~rate =
  match Job.resolve (Job.Named name) with
  | Ok d -> F.spec_of_design ?pipe_length ~mode ~flow d ~rate
  | Error m -> Alcotest.fail m

let run_ok ?policy ~level spec flow =
  match Mcs_check.run ~level ?policy flow spec with
  | Ok r -> r
  | Error d -> Alcotest.failf "flow failed: %s" (Diag.message d)

let errors spec r =
  List.filter Diag.is_error
    (Mcs_check.check_result spec.F.cdfg spec.F.mlib spec.F.cons r)

(* --- refine = 0 is a bit-identical passthrough --- *)

let test_refine_zero_passthrough () =
  let spec = spec_for "cond-demo" ~flow:F.Ch4 ~mode:C.Bidir ~rate:4 in
  let r = run_ok ~level:Pass.Strict spec F.Ch4 in
  let out = Rf.improve ~max_iters:0 spec r in
  checkb "same physical result" true (out.Rf.result == r);
  checki "no iterations" 0 (List.length out.Rf.iterations);
  checkb "not improved" false out.Rf.improved;
  (* The engine path: a job with [refine = 0] carries no refine stats
     and is byte-identical to the pre-refinement encoding. *)
  let job =
    Job.make ~design:(Job.Named "cond-demo") ~flow:Job.Ch4_bidir ~rate:4 ()
  in
  let o = Pool.exec job in
  checkb "no refine stats" true (o.Outcome.refine = None);
  checkb "no ref field in job encoding" false
    (contains (Job.to_string job) "|ref")

(* --- forced degradation is recovered --- *)

let test_recovers_forced_degradation () =
  with_fault "exhaust-heuristic:1" @@ fun () ->
  let spec = spec_for "cond-demo" ~flow:F.Ch4 ~mode:C.Bidir ~rate:4 in
  let r0 = run_ok ~level:Pass.Warn spec F.Ch4 in
  checkb "base run degraded" true (r0.F.degraded <> []);
  let out = Rf.improve ~max_iters:3 spec r0 in
  checkb "refinement improved" true out.Rf.improved;
  checkb "objective strictly better" true
    (Rf.objective out.Rf.result < Rf.objective r0);
  checki "incumbent is checker-clean" 0 (List.length (errors spec out.Rf.result));
  checkb "first move is the ladder re-climb" true
    (match out.Rf.iterations with
    | it :: _ -> it.Rf.action = "reclimb" && it.Rf.accepted
    | [] -> false)

(* --- anytime monotonicity (qcheck) --- *)

let scenario_gen =
  QCheck.Gen.oneofl
    [
      ("cond-demo", F.Ch4, C.Bidir, 3);
      ("cond-demo", F.Ch4, C.Bidir, 4);
      ("cond-demo", F.Ch4, C.Unidir, 5);
      ("cond-demo", F.Ch6, C.Bidir, 4);
      ("cond-demo", F.Ch6, C.Bidir, 6);
      ("ar-general", F.Ch4, C.Unidir, 4);
      ("ar-simple", F.Ch3, C.Unidir, 3);
    ]

let prop_monotone_anytime =
  QCheck.Test.make ~name:"refinement is monotone and checker-clean" ~count:14
    (QCheck.make
       ~print:(fun ((d, f, _, r), iters, faulty) ->
         Printf.sprintf "%s/%s/r%d iters=%d fault=%b" d (F.name_to_string f) r
           iters faulty)
       QCheck.Gen.(triple scenario_gen (int_range 1 3) bool))
    (fun ((design, flow, mode, rate), iters, faulty) ->
      let body () =
        let spec = spec_for design ~flow ~mode ~rate in
        match Mcs_check.run ~level:Pass.Warn flow spec with
        | Error _ -> true (* degradation bottomed out: nothing to refine *)
        | Ok r0 ->
            let out = Rf.improve ~max_iters:iters spec r0 in
            let never_worse = Rf.objective out.Rf.result <= Rf.objective r0 in
            let monotone =
              List.for_all
                (fun (it : Rf.iteration) ->
                  (not it.Rf.accepted)
                  ||
                  match it.Rf.objective_after with
                  | Some a -> a < it.Rf.objective_before
                  | None -> false)
                out.Rf.iterations
            in
            let capped = List.length out.Rf.iterations <= iters in
            let clean = errors spec out.Rf.result = [] in
            never_worse && monotone && capped && clean
      in
      if faulty then with_fault "exhaust-heuristic:1" body else body ())

(* --- armed fault counts --- *)

let test_armed_fault_counts () =
  with_fault "exhaust-ilp:2" (fun () ->
      checkb "fires once" true (Fault.exhaust_ilp () <> None);
      checkb "fires twice" true (Fault.exhaust_ilp () <> None);
      checkb "disarmed after the count" true (Fault.exhaust_ilp () = None);
      checkb "stays disarmed" true (Fault.exhaust_ilp () = None));
  with_fault "exhaust-ilp" (fun () ->
      checkb "bare mode never disarms" true
        (List.for_all
           (fun _ -> Fault.exhaust_ilp () <> None)
           [ 1; 2; 3; 4; 5 ]));
  checkb "zero count rejected" true
    (Result.is_error (Fault.parse "exhaust-ilp:0"));
  checkb "junk count rejected" true
    (Result.is_error (Fault.parse "exhaust-ilp:x"));
  checkb "crash-worker count still means workers" true
    (Fault.parse "crash-worker:3" = Ok [ Fault.Crash_worker 3 ]);
  checkb "armed count composes with other faults" true
    (match Fault.parse "exhaust-fds:2,corrupt-cache" with
    | Ok [ Fault.Exhaust_fds; Fault.Corrupt_cache ] -> true
    | _ -> false)

(* --- List_sched ~fixed replay --- *)

let test_fixed_replay_verbatim () =
  let spec = spec_for "ar-simple" ~flow:F.Ch3 ~mode:C.Unidir ~rate:3 in
  let cdfg = spec.F.cdfg in
  let run ?min_cstep ?fixed () =
    match
      LS.run cdfg spec.F.mlib spec.F.cons ~rate:spec.F.rate ?min_cstep ?fixed
        ()
    with
    | Ok sch -> sch
    | Error f -> Alcotest.failf "list scheduling failed: %s" f.LS.reason
  in
  let sch = run () in
  let placements =
    List.map (fun op -> (op, Sched.cstep sch op)) (Mcs_cdfg.Cdfg.ops cdfg)
  in
  (* Fix everything: the replay must reproduce the schedule verbatim. *)
  let sch' = run ~fixed:placements () in
  List.iter
    (fun (op, c) -> checki "replayed cstep" c (Sched.cstep sch' op))
    placements;
  (* Fix a prefix and floor the rest: frozen placements survive, free
     operations land at or after the cut, and the result is legal. *)
  let pl = Sched.pipe_length sch in
  let cut = max 1 (pl - 2) in
  let prefix = List.filter (fun (_, c) -> c < cut) placements in
  let floor = Array.make (Mcs_cdfg.Cdfg.n_ops cdfg) cut in
  let sch2 = run ~fixed:prefix ~min_cstep:floor () in
  List.iter
    (fun (op, c) -> checki "frozen cstep survives" c (Sched.cstep sch2 op))
    prefix;
  List.iter
    (fun op ->
      if not (List.mem_assoc op prefix) then
        checkb "free op floored at the cut" true (Sched.cstep sch2 op >= cut))
    (Mcs_cdfg.Cdfg.ops cdfg);
  checkb "spliced schedule verifies" true
    (match Sched.verify sch2 with Ok () -> true | Error _ -> false);
  (* A fixed operation whose predecessor is free is a contract violation. *)
  checkb "fixed op with free predecessor rejected" true
    (match
       List.find_opt
         (fun (op, _) -> Mcs_cdfg.Cdfg.preds cdfg op <> [])
         placements
     with
    | None -> true
    | Some (op, c) -> (
        match run ~fixed:[ (op, c) ] () with
        | (_ : Sched.t) -> false
        | exception Invalid_argument _ -> true))

(* --- bottleneck extraction --- *)

let test_bottleneck_evidence () =
  let spec, r =
    with_fault "exhaust-heuristic:1" @@ fun () ->
    let spec = spec_for "cond-demo" ~flow:F.Ch4 ~mode:C.Bidir ~rate:4 in
    let r = run_ok ~level:Pass.Warn spec F.Ch4 in
    (spec, r)
  in
  let bots = Bot.analyze spec.F.cdfg spec.F.cons r in
  checkb "evidence found" true (bots <> []);
  checkb "ladder evidence ranks first" true
    (match bots with
    | { Bot.kind = Bot.Ladder _; _ } :: _ -> true
    | _ -> false);
  checkb "describe labels the ladder" true
    (contains (Bot.describe (List.hd bots)) "ladder:");
  (* A full-quality run has no ladder evidence. *)
  let spec' = spec_for "cond-demo" ~flow:F.Ch4 ~mode:C.Bidir ~rate:4 in
  let r' = run_ok ~level:Pass.Warn spec' F.Ch4 in
  checkb "no ladder evidence on a clean run" true
    (List.for_all
       (fun (b : Bot.t) ->
         match b.Bot.kind with Bot.Ladder _ -> false | _ -> true)
       (Bot.analyze spec'.F.cdfg spec'.F.cons r'))

(* --- budget slices --- *)

let test_budget_slice_absorb () =
  let parent = Budget.make ~pivots:100 () in
  for _ = 1 to 10 do
    Budget.spend_pivot parent
  done;
  let slice = Budget.slice ~frac:0.5 parent in
  checkb "slice is limited" true (Budget.is_limited slice);
  (* 45 = ceil((100 - 10) / 2): the slice funds half the remaining. *)
  checkb "slice exhausts at half the remaining" true
    (match
       for _ = 1 to 46 do
         Budget.spend_pivot slice
       done
     with
    | () -> false
    | exception Budget.Out_of_budget e -> e.Budget.limit = 45);
  Budget.absorb parent slice;
  checki "absorb charges the parent" (10 + 46) (Budget.spent_pivots parent);
  checkb "slice of unlimited is unlimited" false
    (Budget.is_limited (Budget.slice Budget.unlimited))

(* --- degraded cross-audit --- *)

let test_degraded_cross_audit () =
  with_fault "exhaust-heuristic:1" @@ fun () ->
  let spec = spec_for "cond-demo" ~flow:F.Ch4 ~mode:C.Bidir ~rate:4 in
  let r = run_ok ~level:Pass.Warn spec F.Ch4 in
  checki "degraded result audits clean" 0 (List.length (errors spec r));
  (* Renaming a step keeps the counts balanced, so the per-step payload
     audit fires and names the orphan. *)
  let renamed =
    { r with F.degraded = List.map (fun _ -> "bogus-step") r.F.degraded }
  in
  checkb "unbacked degradation step is an error" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.code = Diag.Result_mismatch
         && contains (Diag.message d) "bogus-step")
       (errors spec renamed));
  (* Appending one unbalances the step/diagnostic counts. *)
  let appended = { r with F.degraded = r.F.degraded @ [ "bogus-step" ] } in
  checkb "unbalanced step count is an error" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.code = Diag.Result_mismatch)
       (errors spec appended))

(* --- job identity and outcome codec --- *)

let test_refine_job_identity () =
  let j =
    Job.make ~design:(Job.Named "cond-demo") ~flow:Job.Ch6 ~rate:4 ~refine:2 ()
  in
  checkb "refine in the encoding" true (contains (Job.to_string j) "|ref2");
  (match Job.of_string (Job.to_string j) with
  | Ok j' ->
      checkb "refine round-trips" true (Job.equal j j' && j'.Job.refine = 2)
  | Error m -> Alcotest.fail m);
  let j0 = Job.make ~design:(Job.Named "cond-demo") ~flow:Job.Ch6 ~rate:4 () in
  checkb "refine changes job identity" false (Job.equal j j0);
  checkb "negative refine rejected" true
    (match
       Job.make ~design:(Job.Named "x") ~flow:Job.Ch5 ~rate:2 ~refine:(-1) ()
     with
    | (_ : Job.t) -> false
    | exception Invalid_argument _ -> true)

let test_refined_outcome_roundtrip () =
  with_fault "exhaust-heuristic:1" @@ fun () ->
  let job =
    Job.make ~design:(Job.Named "cond-demo") ~flow:Job.Ch4_bidir ~rate:4
      ~refine:2 ()
  in
  let o = with_env "MCS_CHECK" "warn" (fun () -> Pool.exec job) in
  checkb "outcome feasible" true (Outcome.is_feasible o);
  (match o.Outcome.refine with
  | None -> Alcotest.fail "refined job carries no refine stats"
  | Some st ->
      checkb "stage improved the objective" true
        (st.Outcome.objective_end < st.Outcome.objective_start);
      checkb "accepted counted" true (st.Outcome.accepted >= 1);
      checkb "steps recorded" true (st.Outcome.steps <> []));
  match Outcome.of_string (Outcome.to_string o) with
  | Ok o' -> checkb "refined outcome round-trips" true (Outcome.equal o o')
  | Error m -> Alcotest.fail m

let suite =
  ( "refine",
    [
      Alcotest.test_case "refine=0 is a passthrough" `Quick
        test_refine_zero_passthrough;
      Alcotest.test_case "forced degradation recovered" `Quick
        test_recovers_forced_degradation;
      Alcotest.test_case "armed fault counts disarm" `Quick
        test_armed_fault_counts;
      Alcotest.test_case "fixed replay is verbatim" `Quick
        test_fixed_replay_verbatim;
      Alcotest.test_case "bottleneck evidence ranked" `Quick
        test_bottleneck_evidence;
      Alcotest.test_case "budget slice and absorb" `Quick
        test_budget_slice_absorb;
      Alcotest.test_case "degraded cross-audit" `Quick
        test_degraded_cross_audit;
      Alcotest.test_case "refine is part of job identity" `Quick
        test_refine_job_identity;
      Alcotest.test_case "refined outcome round-trips" `Quick
        test_refined_outcome_roundtrip;
    ]
    @ List.map QCheck_alcotest.to_alcotest [ prop_monotone_anytime ] )

(* Unit tests for Mcs_obs: metrics semantics, span nesting, JSON
   round-trips and the Report.table edge cases the library's reports rely
   on. *)

module M = Mcs_obs.Metrics
module T = Mcs_obs.Trace
module J = Mcs_obs.Report_json

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* --- Metrics --- *)

let test_counter () =
  let c = M.counter "test.counter" in
  let before = M.count c in
  M.incr c;
  M.incr c ~n:4;
  check "incr accumulates" (before + 5) (M.count c);
  checkb "same name, same instrument"
    true
    (M.count (M.counter "test.counter") = M.count c)

let test_counter_reset () =
  let c = M.counter "test.reset_counter" in
  M.incr c ~n:7;
  M.reset ();
  check "reset zeroes" 0 (M.count c);
  M.incr c;
  check "still usable after reset" 1 (M.count c)

let test_gauge () =
  let g = M.gauge "test.gauge" in
  M.reset ();
  M.set g 2.5;
  M.set_max g 1.0;
  M.set_max g 9.0;
  match List.assoc "test.gauge" (M.snapshot ()) with
  | M.Gauge v -> Alcotest.(check (float 1e-9)) "set_max keeps peak" 9.0 v
  | _ -> Alcotest.fail "expected a gauge"

let test_histogram () =
  let h = M.histogram "test.hist" ~buckets:[| 1; 10; 100 |] in
  M.reset ();
  M.observe h 0;
  M.observe h 1;
  M.observe h 5;
  M.observe h 100;
  M.observe h 1000;
  match List.assoc "test.hist" (M.snapshot ()) with
  | M.Histogram { bounds; counts; sum; total } ->
      Alcotest.(check (array int)) "bounds" [| 1; 10; 100 |] bounds;
      Alcotest.(check (array int)) "bucket counts" [| 2; 1; 1; 1 |] counts;
      check "sum" 1106 sum;
      check "total" 5 total
  | _ -> Alcotest.fail "expected a histogram"

let test_instrument_type_clash () =
  let (_ : M.counter) = M.counter "test.clash" in
  Alcotest.check_raises "gauge under a counter name"
    (Invalid_argument "Metrics.gauge: test.clash is not a gauge")
    (fun () -> ignore (M.gauge "test.clash"))

let test_histogram_bad_buckets () =
  checkb "non-increasing rejected" true
    (match M.histogram "test.bad_hist" ~buckets:[| 5; 5 |] with
    | (_ : M.histogram) -> false
    | exception Invalid_argument _ -> true)

(* --- Trace --- *)

let test_span_transparent () =
  T.set_sink T.Off;
  T.set_collect false;
  check "with_span returns f's value" 42 (T.with_span "t" (fun () -> 42))

let test_span_nesting_order () =
  (* Tree sink buffers until the root closes, then prints parent before
     children, children in execution order. *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  T.set_sink (T.Tree ppf);
  T.with_span "root" (fun () ->
      T.with_span "first" (fun () -> ());
      T.with_span "second" (fun () -> T.with_span "inner" (fun () -> ())));
  Format.pp_print_flush ppf ();
  T.set_sink T.Off;
  let out = Buffer.contents buf in
  let pos name =
    match String.index_opt out name.[0] with
    | _ -> (
        let rec find i =
          if i + String.length name > String.length out then None
          else if String.sub out i (String.length name) = name then Some i
          else find (i + 1)
        in
        match find 0 with
        | Some i -> i
        | None -> Alcotest.fail (Printf.sprintf "span %S not printed" name))
  in
  checkb "root before first" true (pos "root" < pos "first");
  checkb "first before second" true (pos "first" < pos "second");
  checkb "second before inner" true (pos "second" < pos "inner")

let test_span_collect () =
  T.set_sink T.Off;
  T.reset_collected ();
  T.set_collect true;
  T.with_span "phase.a" (fun () -> ());
  T.with_span "phase.a" (fun () -> ());
  T.with_span "phase.b" (fun () -> ());
  T.set_collect false;
  let totals = T.collected () in
  (match List.assoc_opt "phase.a" totals with
  | Some (n, t) ->
      check "phase.a count" 2 n;
      checkb "nonnegative time" true (t >= 0.0)
  | None -> Alcotest.fail "phase.a not collected");
  check "phase.b count" 1
    (match List.assoc_opt "phase.b" totals with
    | Some (n, _) -> n
    | None -> 0);
  T.reset_collected ();
  check "reset_collected empties" 0 (List.length (T.collected ()))

let test_span_exception_safe () =
  T.set_sink T.Off;
  T.reset_collected ();
  T.set_collect true;
  (try T.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  T.set_collect false;
  checkb "span closed despite raise" true
    (List.mem_assoc "boom" (T.collected ()));
  T.reset_collected ()

(* --- JSON --- *)

let test_json_print () =
  checks "compact object" {|{"a":1,"b":[true,null],"c":"x"}|}
    (J.to_string
       (J.Obj
          [
            ("a", J.Int 1);
            ("b", J.Arr [ J.Bool true; J.Null ]);
            ("c", J.Str "x");
          ]));
  checks "escaping" {|"a\"b\\c\nd"|} (J.to_string (J.Str "a\"b\\c\nd"));
  checks "control chars" {|"\u0001"|} (J.to_string (J.Str "\001"));
  checks "non-finite floats are null" {|[null,null]|}
    (J.to_string (J.Arr [ J.Float nan; J.Float infinity ]))

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("name", J.Str "run \"quoted\"\n");
        ("n", J.Int (-42));
        ("pi", J.Float 3.125);
        ("flags", J.Arr [ J.Bool true; J.Bool false; J.Null ]);
        ("nested", J.Obj [ ("empty_arr", J.Arr []); ("empty_obj", J.Obj []) ]);
      ]
  in
  (match J.of_string (J.to_string v) with
  | Ok v' -> checkb "round-trips" true (v = v')
  | Error m -> Alcotest.fail m);
  (* The indented printer parses back too. *)
  match J.of_string (Format.asprintf "%a" J.pp v) with
  | Ok v' -> checkb "pp round-trips" true (v = v')
  | Error m -> Alcotest.fail m

let test_json_parse_errors () =
  let bad s =
    match J.of_string s with Ok _ -> false | Error _ -> true
  in
  checkb "trailing garbage" true (bad "{} x");
  checkb "unterminated string" true (bad {|"abc|});
  checkb "missing colon" true (bad {|{"a" 1}|});
  checkb "bare word" true (bad "nope");
  checkb "empty input" true (bad "")

let test_json_accessors () =
  let v = J.Obj [ ("a", J.Int 3); ("b", J.Str "s") ] in
  checkb "member hit" true (J.member "a" v = Some (J.Int 3));
  checkb "member miss" true (J.member "z" v = None);
  checkb "to_int" true (J.to_int (J.Int 7) = Some 7);
  checkb "to_float accepts int" true (J.to_float (J.Int 7) = Some 7.0);
  checkb "to_str mismatch" true (J.to_str (J.Int 7) = None)

let test_json_metrics_embed () =
  M.reset ();
  let c = M.counter "test.embed" in
  M.incr c ~n:3;
  let j = J.metrics () in
  match J.member "test.embed" j with
  | Some (J.Int 3) -> ()
  | _ -> Alcotest.fail "counter not embedded as Int 3"

(* --- Report.table edge cases --- *)

let table_str ~title ~header rows =
  Format.asprintf "%a" (fun ppf () -> Mcs_core.Report.table ppf ~title ~header rows) ()

let test_table_empty_header () =
  (* Used to underflow String.make with a negative length. *)
  let s = table_str ~title:"just a title" ~header:[] [] in
  checkb "title survives" true
    (String.length s >= String.length "just a title")

let test_table_ragged_rows () =
  (* Rows longer than the header used to raise Invalid_argument. *)
  let s =
    table_str ~title:"t" ~header:[ "A" ]
      [ [ "1"; "extra"; "more" ]; [ "2" ]; [] ]
  in
  checkb "long row rendered" true
    (let rec has i =
       i + 5 <= String.length s
       && (String.sub s i 5 = "extra" || has (i + 1))
     in
     has 0)

let test_table_regular () =
  let s = table_str ~title:"T" ~header:[ "x"; "yy" ] [ [ "1"; "2" ] ] in
  checkb "has rule" true (String.contains s '-');
  checkb "header present" true
    (let rec has i =
       i + 2 <= String.length s && (String.sub s i 2 = "yy" || has (i + 1))
     in
     has 0)

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter" `Quick test_counter;
      Alcotest.test_case "counter reset" `Quick test_counter_reset;
      Alcotest.test_case "gauge set_max" `Quick test_gauge;
      Alcotest.test_case "histogram buckets" `Quick test_histogram;
      Alcotest.test_case "instrument type clash" `Quick
        test_instrument_type_clash;
      Alcotest.test_case "histogram bad buckets" `Quick
        test_histogram_bad_buckets;
      Alcotest.test_case "span transparent" `Quick test_span_transparent;
      Alcotest.test_case "span nesting order" `Quick test_span_nesting_order;
      Alcotest.test_case "span collection" `Quick test_span_collect;
      Alcotest.test_case "span exception safety" `Quick
        test_span_exception_safe;
      Alcotest.test_case "json printing" `Quick test_json_print;
      Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
      Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
      Alcotest.test_case "json accessors" `Quick test_json_accessors;
      Alcotest.test_case "json metrics embed" `Quick test_json_metrics_embed;
      Alcotest.test_case "table empty header" `Quick test_table_empty_header;
      Alcotest.test_case "table ragged rows" `Quick test_table_ragged_rows;
      Alcotest.test_case "table regular" `Quick test_table_regular;
    ] )

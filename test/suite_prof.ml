(* Tests for Mcs_prof: Chrome-trace well-formedness (parses, spans nest,
   timestamps monotone), the solver event journal under fault injection,
   baseline comparison verdicts and gating, the tracing-is-transparent
   property over all four flows, and the retry-does-not-double-count
   cache-miss regression. *)

module J = Mcs_obs.Report_json
module Events = Mcs_obs.Events
module Chrome_trace = Mcs_prof.Chrome_trace
module Journal = Mcs_prof.Journal
module B = Mcs_prof.Baseline
module F = Mcs_flow.Flow
module C = Mcs_connect.Connection
module Benchmarks = Mcs_cdfg.Benchmarks

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Leave the global observability state the way we found it, whatever
   the test does: other suites assume events are off and no hook is set. *)
let isolated f =
  Fun.protect
    ~finally:(fun () ->
      Chrome_trace.stop ();
      Events.set_enabled false;
      Events.clear ();
      Unix.putenv "MCS_FAULT" "")
    f

let run_ch5 () =
  let d = Benchmarks.ar_general () in
  let spec =
    F.spec_of_design ~pipe_length:9 ~mode:C.Bidir ~flow:F.Ch5 d ~rate:4
  in
  F.run F.Ch5 spec

(* --- Chrome trace --- *)

let trace_entries () =
  match Chrome_trace.to_json () with
  | J.Arr es -> es
  | _ -> Alcotest.fail "trace is not a JSON array"

let f_member name e =
  match Option.bind (J.member name e) J.to_float with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "trace entry lacks %S" name)

let s_member name e =
  match Option.bind (J.member name e) J.to_str with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "trace entry lacks %S" name)

let test_trace_wellformed () =
  isolated @@ fun () ->
  Events.clear ();
  Chrome_trace.start ();
  (match run_ch5 () with
  | Ok _ -> ()
  | Error dg -> Alcotest.fail (Mcs_flow.Diag.message dg));
  Chrome_trace.stop ();
  let es = trace_entries () in
  checkb "has entries" true (es <> []);
  (* Round-trips through the JSON printer/parser. *)
  (match J.of_string (J.to_string (J.Arr es)) with
  | Ok (J.Arr es') -> checki "round-trip preserves count" (List.length es)
                        (List.length es')
  | Ok _ | Error _ -> Alcotest.fail "trace does not round-trip");
  let ts = List.map (f_member "ts") es in
  checkb "ts monotone" true (List.sort Float.compare ts = ts);
  let spans = List.filter (fun e -> s_member "ph" e = "X") es in
  let instants = List.filter (fun e -> s_member "ph" e = "i") es in
  checkb "at least 4 phase spans" true (List.length spans >= 4);
  checkb "has solver event slices" true (instants <> []);
  (* Spans on one tid must nest: any two are disjoint or one contains
     the other (small epsilon for float microseconds). *)
  let eps = 5.0 in
  let intervals =
    List.map (fun e -> (f_member "ts" e, f_member "ts" e +. f_member "dur" e))
      spans
  in
  List.iteri
    (fun i (a0, a1) ->
      List.iteri
        (fun k (b0, b1) ->
          if i < k then
            let disjoint = a1 <= b0 +. eps || b1 <= a0 +. eps in
            let a_in_b = b0 <= a0 +. eps && a1 <= b1 +. eps in
            let b_in_a = a0 <= b0 +. eps && b1 <= a1 +. eps in
            checkb "spans nest" true (disjoint || a_in_b || b_in_a))
        intervals)
    intervals

let test_trace_stop_releases () =
  isolated @@ fun () ->
  Chrome_trace.start ();
  checkb "recording" true (Chrome_trace.recording ());
  checkb "events forced on" true (Events.on ());
  Chrome_trace.stop ();
  checkb "not recording" false (Chrome_trace.recording ());
  checkb "events restored off" false (Events.on ());
  (* Entries survive stop for inspection. *)
  ignore (trace_entries ())

(* --- Journal --- *)

let test_journal_exhausted_names_axis () =
  isolated @@ fun () ->
  Unix.putenv "MCS_FAULT" "exhaust-ilp";
  Events.clear ();
  Events.set_enabled true;
  let d = Benchmarks.ar_simple () in
  let spec = F.spec_of_design ~mode:C.Unidir ~flow:F.Ch3 d ~rate:2 in
  ignore (F.run F.Ch3 spec);
  (match Journal.exhausted_axis () with
  | Some axis -> checks "exhaust-ilp trips the nodes axis" "nodes" axis
  | None -> Alcotest.fail "no exhausted event in the journal");
  (match Journal.summary () with
  | Some s ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      checkb "summary names the axis" true (contains s "nodes")
  | None -> Alcotest.fail "no journal summary");
  match Journal.to_json () with
  | J.Obj fields ->
      checkb "journal has events" true
        (match List.assoc_opt "events" fields with
        | Some (J.Arr (_ :: _)) -> true
        | _ -> false)
  | _ -> Alcotest.fail "journal is not an object"

let test_journal_quiet_without_exhaustion () =
  isolated @@ fun () ->
  Events.clear ();
  Events.set_enabled true;
  ignore (run_ch5 ());
  checkb "no exhausted axis on a clean run" true
    (Journal.exhausted_axis () = None)

(* --- Baseline comparison --- *)

let rec_ ?(hard = true) experiment metric value =
  { B.experiment; metric; value; hard }

let verdict_of cs exp metric =
  match
    List.find_opt
      (fun c -> c.B.record.B.experiment = exp && c.B.record.B.metric = metric)
      cs
  with
  | Some c -> c.B.verdict
  | None -> Alcotest.fail (Printf.sprintf "no comparison for %s/%s" exp metric)

let test_compare_verdicts () =
  let baseline =
    [
      rec_ "ilp.ar.r3" "warm_pivots" 100.;
      rec_ "ilp.ar.r3" "warm_nodes" 20.;
      rec_ ~hard:false "ilp.ar.r3" "warm_wall_s" 0.10;
      rec_ ~hard:false "ilp.ar.r3" "cold_wall_s" 0.50;
      rec_ "ilp.ewf.r6" "warm_pivots" 40.;
    ]
  in
  let current =
    [
      (* seeded 2x pivot regression *)
      rec_ "ilp.ar.r3" "warm_pivots" 200.;
      rec_ "ilp.ar.r3" "warm_nodes" 15.;
      (* +20% wall: inside the 25% noise band *)
      rec_ ~hard:false "ilp.ar.r3" "warm_wall_s" 0.12;
      (* +60% wall: a soft regression, which must not gate *)
      rec_ ~hard:false "ilp.ar.r3" "cold_wall_s" 0.80;
      (* ilp.ewf.r6 absent: Missing *)
    ]
  in
  let cs = B.compare ~noise:0.25 ~baseline ~current () in
  checki "one comparison per baseline record" 5 (List.length cs);
  (match verdict_of cs "ilp.ar.r3" "warm_pivots" with
  | B.Regression _ -> ()
  | v -> Alcotest.fail ("2x pivots: " ^ B.verdict_to_string v));
  (match verdict_of cs "ilp.ar.r3" "warm_nodes" with
  | B.Improvement _ -> ()
  | v -> Alcotest.fail ("fewer nodes: " ^ B.verdict_to_string v));
  (match verdict_of cs "ilp.ar.r3" "warm_wall_s" with
  | B.Within_noise _ -> ()
  | v -> Alcotest.fail ("+20% wall: " ^ B.verdict_to_string v));
  (match verdict_of cs "ilp.ar.r3" "cold_wall_s" with
  | B.Regression _ -> ()
  | v -> Alcotest.fail ("+60% wall: " ^ B.verdict_to_string v));
  (match verdict_of cs "ilp.ewf.r6" "warm_pivots" with
  | B.Missing -> ()
  | v -> Alcotest.fail ("absent record: " ^ B.verdict_to_string v));
  (* Gate: the hard pivot regression and the missing hard record fail;
     the soft regression does not. *)
  checki "hard failures" 2 (List.length (B.failures cs));
  checki "soft regressions" 1 (List.length (B.soft_regressions cs))

let test_compare_hard_is_noise_free () =
  let baseline = [ rec_ "e" "pivots" 100. ] in
  let cs =
    B.compare ~noise:0.5 ~baseline ~current:[ rec_ "e" "pivots" 101. ] ()
  in
  (* One extra pivot fails even under a huge noise allowance. *)
  checki "hard +1 regresses" 1 (List.length (B.failures cs));
  let cs =
    B.compare ~noise:0.5 ~baseline ~current:[ rec_ "e" "pivots" 100. ] ()
  in
  checki "hard equal passes" 0 (List.length (B.failures cs))

let test_baseline_roundtrip () =
  let t =
    [
      rec_ "ilp.ar.r3" "warm_pivots" 123.;
      rec_ ~hard:false "ch5.ar-general.r4" "wall_s" 0.25;
    ]
  in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcs-baseline-%d.json" (Unix.getpid ()))
  in
  (match B.save path t with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match B.load path with
  | Ok t' -> checkb "round-trips" true (t = t')
  | Error m -> Alcotest.fail m);
  Sys.remove path;
  (* Wrong schema is rejected. *)
  match B.of_json (J.Obj [ ("schema", J.Str "mcs-bench/1") ]) with
  | Ok _ -> Alcotest.fail "wrong schema accepted"
  | Error _ -> ()

(* --- Tracing transparency --- *)

let flow_cases =
  [
    (F.Ch3, "ar-simple", 2, C.Unidir, None);
    (F.Ch4, "ar-general", 3, C.Unidir, None);
    (F.Ch5, "ar-general", 4, C.Bidir, Some 9);
    (F.Ch6, "ar-general", 3, C.Bidir, None);
  ]

let design_of = function
  | "ar-simple" -> Benchmarks.ar_simple ()
  | "ar-general" -> Benchmarks.ar_general ()
  | s -> Alcotest.fail ("unknown design " ^ s)

let run_case (flow, name, rate, mode, pipe_length) =
  let spec = F.spec_of_design ?pipe_length ~mode ~flow (design_of name) ~rate in
  match F.run flow spec with
  | Ok r -> Ok (r.F.pins, r.F.pipe_length, r.F.attempts)
  | Error dg -> Error (Mcs_flow.Diag.message dg)

let prop_tracing_transparent =
  QCheck.Test.make ~name:"tracing on/off is result-bit-identical" ~count:8
    (QCheck.make
       ~print:(fun (f, n, r, _, _) ->
         Printf.sprintf "%s %s r%d" (F.name_to_string f) n r)
       (QCheck.Gen.oneofl flow_cases))
    (fun case ->
      isolated @@ fun () ->
      let plain = run_case case in
      Events.clear ();
      Chrome_trace.start ();
      let traced = run_case case in
      Chrome_trace.stop ();
      plain = traced)

(* --- Retry must not double-count cache misses --- *)

let synthetic_worker (j : Mcs_engine.Job.t) =
  {
    Mcs_engine.Outcome.job = j;
    status = Mcs_engine.Outcome.Feasible;
    pins = [ (1, j.Mcs_engine.Job.rate) ];
    pipe_length = j.Mcs_engine.Job.rate;
    fu_count = 1;
    check = None;
    degraded = [];
    solver = None;
    refine = None;
  }

let test_retry_counts_misses_once () =
  isolated @@ fun () ->
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcs-prof-test-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  let c = Mcs_engine.Cache.open_dir dir in
  let jobs =
    List.init 2 (fun i ->
        Mcs_engine.Job.make
          ~design:(Mcs_engine.Job.Named "ar-general")
          ~flow:Mcs_engine.Job.Ch4_unidir ~rate:(i + 1) ())
  in
  let counter name = Mcs_obs.Metrics.(count (counter name)) in
  let misses0 = counter "engine.cache.misses" in
  let retries0 = counter "engine.pool.retries" in
  (* Both workers crash on first fork; with ~retry both jobs re-run and
     succeed.  The cache is consulted once per job, before any fork, so
     the retry pass must not bump the miss counter again. *)
  Unix.putenv "MCS_FAULT" "crash-worker:2";
  let rs =
    Mcs_engine.Pool.run ~jobs:2 ~cache:c ~worker:synthetic_worker ~retry:true
      jobs
  in
  Unix.putenv "MCS_FAULT" "";
  checkb "all feasible after retry" true
    (List.for_all Mcs_engine.Outcome.is_feasible rs);
  checki "retried both jobs" (retries0 + 2) (counter "engine.pool.retries");
  checki "one miss per job, not per attempt" (misses0 + 2)
    (counter "engine.cache.misses")

let suite =
  ( "prof",
    [
      Alcotest.test_case "chrome trace well-formed" `Quick
        test_trace_wellformed;
      Alcotest.test_case "chrome trace stop releases hooks" `Quick
        test_trace_stop_releases;
      Alcotest.test_case "journal names exhausted axis under fault" `Quick
        test_journal_exhausted_names_axis;
      Alcotest.test_case "journal quiet on clean run" `Quick
        test_journal_quiet_without_exhaustion;
      Alcotest.test_case "baseline compare verdicts" `Quick
        test_compare_verdicts;
      Alcotest.test_case "hard gates ignore noise" `Quick
        test_compare_hard_is_noise_free;
      Alcotest.test_case "baseline json round-trip" `Quick
        test_baseline_roundtrip;
      QCheck_alcotest.to_alcotest prop_tracing_transparent;
      Alcotest.test_case "retry counts cache misses once" `Quick
        test_retry_counts_misses_once;
    ] )

(* Unit and property tests for Mcs_graph. *)

module D = Mcs_graph.Digraph
module B = Mcs_graph.Bipartite
module H = Mcs_graph.Hungarian

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Digraph --- *)

let diamond () =
  let g = D.create 4 in
  D.add_edge g ~src:0 ~dst:1;
  D.add_edge g ~src:0 ~dst:2;
  D.add_edge g ~src:1 ~dst:3;
  D.add_edge g ~src:2 ~dst:3;
  g

let test_digraph_basic () =
  let g = diamond () in
  checki "nodes" 4 (D.node_count g);
  checki "edges" 4 (D.edge_count g);
  Alcotest.(check (list int)) "succs 0" [ 1; 2 ] (D.succs g 0);
  Alcotest.(check (list int)) "preds 3" [ 1; 2 ] (D.preds g 3);
  checki "out-degree" 2 (D.out_degree g 0);
  checki "in-degree" 2 (D.in_degree g 3)

let test_digraph_multi_edge () =
  let g = D.create 2 in
  D.add_edge g ~src:0 ~dst:1;
  D.add_edge g ~src:0 ~dst:1;
  Alcotest.(check (list int)) "parallel edges" [ 1; 1 ] (D.succs g 0);
  checki "edge count" 2 (D.edge_count g)

let test_topo () =
  let g = diamond () in
  (match D.topo_sort g with
  | None -> Alcotest.fail "acyclic graph reported cyclic"
  | Some order ->
      checki "all nodes" 4 (List.length order);
      let pos = Array.make 4 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      checkb "0 before 1" true (pos.(0) < pos.(1));
      checkb "1 before 3" true (pos.(1) < pos.(3)));
  let c = D.create 2 in
  D.add_edge c ~src:0 ~dst:1;
  D.add_edge c ~src:1 ~dst:0;
  checkb "cycle detected" true (D.topo_sort c = None);
  checkb "is_acyclic" false (D.is_acyclic c)

let test_longest_path () =
  let g = diamond () in
  let dist = D.longest_path_to g ~weight:(fun _ -> 1) in
  checki "source depth" 1 dist.(0);
  checki "sink depth" 3 dist.(3);
  let from = D.longest_path_from g ~weight:(fun _ -> 1) in
  checki "from source" 3 from.(0);
  checki "from sink" 1 from.(3)

let test_reachable () =
  let g = diamond () in
  let r = D.reachable_from g 1 in
  checkb "1 reaches 3" true r.(3);
  checkb "1 not 2" false r.(2);
  checkb "1 itself" true r.(1)

let random_dag_arb =
  (* Edge presence matrix over 6 nodes, upper triangular => DAG. *)
  QCheck.map
    (fun bits ->
      let n = 6 in
      let g = D.create n in
      let k = ref 0 in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if (bits lsr !k) land 1 = 1 then D.add_edge g ~src:i ~dst:j;
          incr k
        done
      done;
      g)
    (QCheck.int_bound ((1 lsl 15) - 1))

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topo order respects all edges" ~count:200
    random_dag_arb (fun g ->
      match D.topo_sort g with
      | None -> false
      | Some order ->
          let pos = Array.make (D.node_count g) 0 in
          List.iteri (fun i v -> pos.(v) <- i) order;
          List.for_all
            (fun v -> List.for_all (fun w -> pos.(v) < pos.(w)) (D.succs g v))
            (List.init (D.node_count g) Fun.id))

let prop_longest_path_recurrence =
  QCheck.Test.make ~name:"longest_path_to satisfies its recurrence" ~count:200
    random_dag_arb (fun g ->
      let dist = D.longest_path_to g ~weight:(fun _ -> 1) in
      List.for_all
        (fun v ->
          let best =
            List.fold_left (fun acc p -> max acc dist.(p)) 0 (D.preds g v)
          in
          dist.(v) = best + 1)
        (List.init (D.node_count g) Fun.id))

(* --- Bipartite --- *)

let test_bipartite_simple () =
  let b = B.create ~n_left:3 ~n_right:3 in
  B.add_edge b ~left:0 ~right:0;
  B.add_edge b ~left:0 ~right:1;
  B.add_edge b ~left:1 ~right:0;
  B.add_edge b ~left:2 ~right:2;
  checki "perfect matching" 3 (B.max_matching b)

let test_bipartite_augment () =
  let b = B.create ~n_left:2 ~n_right:2 in
  B.add_edge b ~left:0 ~right:0;
  B.add_edge b ~left:0 ~right:1;
  B.add_edge b ~left:1 ~right:0;
  B.force_pair b ~left:0 ~right:0;
  (* 1 can only use right 0; augmenting must reroute 0 to right 1. *)
  checkb "augment reroutes" true (B.try_augment b ~left:1);
  Alcotest.(check (option int)) "0 moved" (Some 1) (B.match_of_left b 0);
  Alcotest.(check (option int)) "1 placed" (Some 0) (B.match_of_left b 1)

let test_bipartite_force_and_remove () =
  let b = B.create ~n_left:2 ~n_right:1 in
  B.add_edge b ~left:0 ~right:0;
  B.add_edge b ~left:1 ~right:0;
  B.force_pair b ~left:0 ~right:0;
  B.force_pair b ~left:1 ~right:0;
  Alcotest.(check (option int)) "displaced" None (B.match_of_left b 0);
  B.remove_edge b ~left:1 ~right:0;
  Alcotest.(check (option int)) "removed unmatches" None (B.match_of_left b 1);
  checki "rematch" 1 (B.max_matching b)

let test_bipartite_pairs () =
  let b = B.create ~n_left:2 ~n_right:2 in
  B.add_edge b ~left:0 ~right:1;
  B.add_edge b ~left:1 ~right:0;
  ignore (B.max_matching b);
  Alcotest.(check (list (pair int int))) "pairs" [ (0, 1); (1, 0) ] (B.pairs b)

(* Brute-force maximum matching for cross-checking. *)
let brute_matching edges n_left n_right =
  let best = ref 0 in
  let used_r = Array.make n_right false in
  let rec go l count =
    if l = n_left then best := max !best count
    else begin
      go (l + 1) count;
      List.iter
        (fun (l', r) ->
          if l' = l && not used_r.(r) then begin
            used_r.(r) <- true;
            go (l + 1) (count + 1);
            used_r.(r) <- false
          end)
        edges
    end
  in
  go 0 0;
  !best

let bip_arb =
  QCheck.map
    (fun bits ->
      let edges = ref [] in
      let k = ref 0 in
      for l = 0 to 3 do
        for r = 0 to 3 do
          if (bits lsr !k) land 1 = 1 then edges := (l, r) :: !edges;
          incr k
        done
      done;
      !edges)
    (QCheck.int_bound ((1 lsl 16) - 1))

let prop_matching_maximum =
  QCheck.Test.make ~name:"Kuhn matching is maximum (vs brute force)"
    ~count:300 bip_arb (fun edges ->
      let b = B.create ~n_left:4 ~n_right:4 in
      List.iter (fun (l, r) -> B.add_edge b ~left:l ~right:r) edges;
      B.max_matching b = brute_matching edges 4 4)

(* --- Hungarian --- *)

let test_hungarian_identity () =
  let cost = [| [| 0; 9; 9 |]; [| 9; 0; 9 |]; [| 9; 9; 0 |] |] in
  Alcotest.(check (array int)) "diagonal" [| 0; 1; 2 |] (H.assignment cost)

let test_hungarian_small () =
  let cost = [| [| 4; 1; 3 |]; [| 2; 0; 5 |]; [| 3; 2; 2 |] |] in
  let a = H.assignment cost in
  let total = cost.(0).(a.(0)) + cost.(1).(a.(1)) + cost.(2).(a.(2)) in
  checki "optimal cost 5" 5 total

let test_hungarian_rect_matching () =
  let w = [| [| 3; 0 |]; [| 0; 4 |]; [| 5; 1 |] |] in
  let pairs =
    H.max_weight_matching ~n_left:3 ~n_right:2 ~weight:(fun l r ->
        Some w.(l).(r)) ()
  in
  let total =
    Mcs_util.Listx.sum (fun (l, r) -> w.(l).(r)) pairs
  in
  checki "max weight 9" 9 total

let test_hungarian_forbidden () =
  let pairs =
    H.max_weight_matching ~n_left:2 ~n_right:2 ~weight:(fun l r ->
        if l = r then Some 1 else None) ()
  in
  Alcotest.(check (list (pair int int))) "only diagonal" [ (0, 0); (1, 1) ] pairs

(* Brute force max-weight assignment for square matrices. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
        l

let prop_hungarian_optimal =
  QCheck.Test.make ~name:"Hungarian optimal vs brute force (4x4)" ~count:200
    (QCheck.array_of_size (QCheck.Gen.return 16) (QCheck.int_bound 50))
    (fun flat ->
      let cost = Array.init 4 (fun i -> Array.init 4 (fun j -> flat.((4 * i) + j))) in
      let a = H.assignment cost in
      let mine =
        Array.to_list (Array.mapi (fun i j -> cost.(i).(j)) a)
        |> List.fold_left ( + ) 0
      in
      let best =
        List.fold_left
          (fun acc p ->
            min acc
              (List.fold_left ( + ) 0 (List.mapi (fun i j -> cost.(i).(j)) p)))
          max_int
          (permutations [ 0; 1; 2; 3 ])
      in
      mine = best)

let suite =
  ( "graph",
    [
      Alcotest.test_case "digraph basics" `Quick test_digraph_basic;
      Alcotest.test_case "digraph multi-edges" `Quick test_digraph_multi_edge;
      Alcotest.test_case "topological sort" `Quick test_topo;
      Alcotest.test_case "longest paths" `Quick test_longest_path;
      Alcotest.test_case "reachability" `Quick test_reachable;
      Alcotest.test_case "bipartite perfect matching" `Quick test_bipartite_simple;
      Alcotest.test_case "bipartite augmenting path" `Quick test_bipartite_augment;
      Alcotest.test_case "bipartite force/remove" `Quick test_bipartite_force_and_remove;
      Alcotest.test_case "bipartite pairs" `Quick test_bipartite_pairs;
      Alcotest.test_case "hungarian identity" `Quick test_hungarian_identity;
      Alcotest.test_case "hungarian small" `Quick test_hungarian_small;
      Alcotest.test_case "hungarian rectangular" `Quick test_hungarian_rect_matching;
      Alcotest.test_case "hungarian forbidden pairs" `Quick test_hungarian_forbidden;
    ]
    @ List.map QCheck_alcotest.to_alcotest
        [
          prop_topo_respects_edges;
          prop_longest_path_recurrence;
          prop_matching_maximum;
          prop_hungarian_optimal;
        ] )

(* The static-analysis layer (Mcs_check) over the unified flows (Mcs_flow):
   mutation tests seed one violation of each family into an otherwise-valid
   result and assert the checker reports it as the right structured
   diagnostic; the property sweep runs all four flows on the paper
   benchmarks at the paper's rates and asserts every result the flows
   produce passes the full checker clean. *)

open Mcs_cdfg
module F = Mcs_flow.Flow
module Diag = Mcs_flow.Diag
module Pass = Mcs_flow.Pass
module A = Mcs_flow.Artifact
module Sched = Mcs_sched.Schedule
module SB = Mcs_core.Subbus

let checkb = Alcotest.(check bool)

let has_error code diags =
  List.exists (fun d -> Diag.is_error d && d.Diag.code = code) diags

let run_ok ?level ?pipe_length flow design ~rate =
  let spec = F.spec_of_design ?pipe_length ~flow design ~rate in
  match Mcs_check.run ?level flow spec with
  | Ok r -> (spec, r)
  | Error d ->
      Alcotest.failf "%s on %s rate %d failed: %s" (F.name_to_string flow)
        design.Benchmarks.tag rate (Diag.message d)

(* ---- seeded violations ---- *)

let test_mutation_precedence_inversion () =
  let d = Benchmarks.ar_simple () in
  let spec, r = run_ok ~level:Pass.Off F.Ch3 d ~rate:2 in
  let sch = r.F.schedule in
  let cdfg = spec.F.cdfg in
  (* Swap the endpoints of a cross-step dependence: the consumer now starts
     before its producer finishes. *)
  let edge =
    List.find_opt
      (fun { Types.e_src; e_dst; degree } ->
        degree = 0
        && Sched.is_scheduled sch e_src
        && Sched.is_scheduled sch e_dst
        && Sched.cstep sch e_src <> Sched.cstep sch e_dst)
      (Cdfg.edges cdfg)
  in
  match edge with
  | None -> Alcotest.fail "no cross-step dependence to invert"
  | Some { Types.e_src; e_dst; _ } ->
      let s_src = Sched.cstep sch e_src
      and s_dst = Sched.cstep sch e_dst
      and f_src = Sched.finish_ns sch e_src
      and f_dst = Sched.finish_ns sch e_dst in
      Sched.set sch e_src ~cstep:s_dst ~finish_ns:f_src;
      Sched.set sch e_dst ~cstep:s_src ~finish_ns:f_dst;
      let diags =
        Mcs_check.schedule_diags spec.F.cons ~phase:"mut.precedence" sch
      in
      checkb "inverted dependence is flagged" true
        (has_error Diag.Precedence_violation diags);
      let named =
        List.find
          (fun dg -> dg.Diag.code = Diag.Precedence_violation)
          diags
      in
      checkb "diagnostic names the offending operations" true
        (List.mem e_src named.Diag.ops && List.mem e_dst named.Diag.ops)

let test_mutation_pin_budget_overflow () =
  let d = Benchmarks.ar_general () in
  let spec, r = run_ok ~level:Pass.Off F.Ch4 d ~rate:3 in
  (* Same connection, partition 1's budget revoked. *)
  let starved = Constraints.with_pins spec.F.cons [ (1, 0) ] in
  let diags =
    Mcs_check.connection_diags spec.F.cdfg starved ~phase:"mut.pins"
      r.F.connection
  in
  checkb "overflow is flagged" true (has_error Diag.Pin_budget_overflow diags);
  let named =
    List.find (fun dg -> dg.Diag.code = Diag.Pin_budget_overflow) diags
  in
  checkb "diagnostic names partition 1" true (List.mem 1 named.Diag.partitions);
  checkb "untouched budgets stay clean" false
    (has_error Diag.Pin_budget_overflow
       (Mcs_check.connection_diags spec.F.cdfg spec.F.cons ~phase:"mut.pins"
          r.F.connection))

let test_mutation_two_values_one_bus () =
  let d = Benchmarks.ar_general () in
  let spec, r = run_ok ~level:Pass.Off F.Ch4 d ~rate:3 in
  let sch = r.F.schedule and cdfg = spec.F.cdfg in
  let conn =
    match r.F.connection with
    | A.Buses { conn; _ } -> conn
    | _ -> Alcotest.fail "Ch4 result is not bus-structured"
  in
  (* Two transfers of different values in one control-step group, forced
     onto the same bus. *)
  let ios = List.filter (Sched.is_scheduled sch) (Cdfg.io_ops cdfg) in
  let clash =
    List.find_map
      (fun a ->
        List.find_map
          (fun b ->
            if
              a <> b
              && Sched.group sch a = Sched.group sch b
              && Cdfg.io_value cdfg a <> Cdfg.io_value cdfg b
            then Some (a, b)
            else None)
          ios)
      ios
  in
  match clash with
  | None -> Alcotest.fail "no two distinct values share a group"
  | Some (a, b) ->
      let seeded =
        A.Buses
          { conn; initial = []; assignment = [ (a, 0); (b, 0) ]; allocation = [] }
      in
      let diags =
        Mcs_check.occupancy_diags cdfg sch ~phase:"mut.bus" seeded
      in
      checkb "shared bus slot is flagged" true
        (has_error Diag.Bus_conflict diags);
      let named = List.find (fun dg -> dg.Diag.code = Diag.Bus_conflict) diags in
      checkb "diagnostic names both transfers" true
        (List.mem a named.Diag.ops && List.mem b named.Diag.ops)

let test_mutation_subbus_misfit () =
  let d = Benchmarks.subbus_demo () in
  let cdfg = d.Benchmarks.cdfg in
  let wide =
    match
      List.find_opt (fun op -> Cdfg.io_width cdfg op = 32) (Cdfg.io_ops cdfg)
    with
    | Some op -> op
    | None -> Alcotest.fail "subbus-demo lost its 32-bit value"
  in
  (* A 32-bit transfer pinned to the 24-bit high slice of a split bus. *)
  let rb =
    {
      SB.width = 32;
      split_at = Some 8;
      ports = [ (Cdfg.io_src cdfg wide, 32); (Cdfg.io_dst cdfg wide, 32) ];
      carried = [ (wide, SB.Hi) ];
    }
  in
  let seeded =
    A.Subbuses { buses = [ rb ]; initial = []; assignment = []; allocation = [] }
  in
  let cons = Benchmarks.constraints_for_bidir d ~rate:3 in
  let diags = Mcs_check.connection_diags cdfg cons ~phase:"mut.subbus" seeded in
  checkb "ill-fit slice is flagged" true (has_error Diag.Subbus_misfit diags);
  let whole = { rb with SB.carried = [ (wide, SB.Whole) ] } in
  let refit =
    A.Subbuses
      { buses = [ whole ]; initial = []; assignment = []; allocation = [] }
  in
  checkb "whole-bus use of the same transfer is clean" false
    (has_error Diag.Subbus_misfit
       (Mcs_check.connection_diags cdfg cons ~phase:"mut.subbus" refit))

(* ---- the clean property ---- *)

let paper_specs () =
  let designs =
    [
      Benchmarks.ar_simple ();
      Benchmarks.ar_general ();
      Benchmarks.elliptic ();
      Benchmarks.cond_demo ();
      Benchmarks.subbus_demo ();
    ]
  in
  List.concat_map
    (fun (d : Benchmarks.design) ->
      let simple = Mcs_core.Simple_part.is_simple d.Benchmarks.cdfg in
      let flows = if simple then F.all else [ F.Ch4; F.Ch5; F.Ch6 ] in
      List.concat_map
        (fun flow ->
          List.map
            (fun rate ->
              let pipe_length =
                if flow = F.Ch5 && d.Benchmarks.tag = "elliptic" then Some 25
                else None
              in
              (d, flow, rate, pipe_length))
            d.Benchmarks.rates)
        flows)
    designs

let test_property_paper_benchmarks_pass_clean () =
  let succeeded = Hashtbl.create 8 in
  List.iter
    (fun ((d : Benchmarks.design), flow, rate, pipe_length) ->
      let spec = F.spec_of_design ?pipe_length ~flow d ~rate in
      let label =
        Printf.sprintf "%s on %s rate %d" (F.name_to_string flow)
          d.Benchmarks.tag rate
      in
      match Mcs_check.run ~level:Pass.Warn flow spec with
      | Error _ -> () (* rates a flow cannot handle are covered elsewhere *)
      | Ok r ->
          Hashtbl.replace succeeded flow ();
          checkb (label ^ " passes the checker clean") true (F.clean r);
          checkb
            (label ^ " passes Schedule.verify")
            true
            (Sched.verify r.F.schedule = Ok ());
          checkb
            (label ^ " keeps the claimed rate")
            true
            (Sched.rate r.F.schedule = rate))
    (paper_specs ());
  List.iter
    (fun flow ->
      checkb
        (F.name_to_string flow ^ " succeeded on some paper benchmark")
        true
        (Hashtbl.mem succeeded flow))
    F.all

let test_strict_clean_flow_is_ok () =
  (* Strict mode only aborts on violations; a clean run sails through. *)
  let d = Benchmarks.ar_simple () in
  let _, r = run_ok ~level:Pass.Strict F.Ch3 d ~rate:2 in
  checkb "strict run is clean" true (F.clean r);
  checkb "attempts are counted" true (r.F.attempts >= 1)

let test_level_parsing () =
  let checkl = Alcotest.(check bool) in
  checkl "off" true (Mcs_check.level_of_string "off" = Pass.Off);
  checkl "empty" true (Mcs_check.level_of_string "" = Pass.Off);
  checkl "0" true (Mcs_check.level_of_string "0" = Pass.Off);
  checkl "strict" true (Mcs_check.level_of_string "STRICT" = Pass.Strict);
  checkl "warn" true (Mcs_check.level_of_string "warn" = Pass.Warn);
  checkl "unknown words mean warn" true
    (Mcs_check.level_of_string "yes-please" = Pass.Warn)

let suite =
  ( "check",
    [
      Alcotest.test_case "mutation: precedence inversion" `Quick
        test_mutation_precedence_inversion;
      Alcotest.test_case "mutation: pin-budget overflow" `Quick
        test_mutation_pin_budget_overflow;
      Alcotest.test_case "mutation: two values on one bus" `Quick
        test_mutation_two_values_one_bus;
      Alcotest.test_case "mutation: ill-fit sub-bus split" `Quick
        test_mutation_subbus_misfit;
      Alcotest.test_case "property: paper benchmarks pass clean" `Slow
        test_property_paper_benchmarks_pass_clean;
      Alcotest.test_case "strict level passes a clean flow" `Quick
        test_strict_clean_flow_is_ok;
      Alcotest.test_case "level parsing" `Quick test_level_parsing;
    ] )

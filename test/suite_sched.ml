(* Tests for the scheduling layer: allocation wheels, schedule invariants,
   pipelined list scheduling and force-directed scheduling. *)

open Mcs_cdfg
open Mcs_sched

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Alloc_wheel --- *)

let test_wheel_basic () =
  let w = Alloc_wheel.create ~fus:2 ~rate:4 in
  checki "fus" 2 (Alloc_wheel.fus w);
  checki "rate" 4 (Alloc_wheel.rate w);
  let f1 = Alloc_wheel.assign w ~group:0 ~cycles:1 in
  let f2 = Alloc_wheel.assign w ~group:0 ~cycles:1 in
  checkb "different units" true (f1 <> f2);
  checkb "group full" true (Alloc_wheel.fit w ~group:0 ~cycles:1 = None);
  checkb "other group free" true (Alloc_wheel.fit w ~group:1 ~cycles:1 <> None)

let test_wheel_wraparound () =
  let w = Alloc_wheel.create ~fus:1 ~rate:4 in
  ignore (Alloc_wheel.assign w ~group:3 ~cycles:2);
  (* Cells 3 and 0 are taken. *)
  checkb "cell 0 busy" true (Alloc_wheel.fit w ~group:0 ~cycles:1 = None);
  checkb "cell 1 free" true (Alloc_wheel.fit w ~group:1 ~cycles:1 <> None);
  checki "busy cells" 2 (Alloc_wheel.busy_cells w ~fu:0)

let test_wheel_release () =
  let w = Alloc_wheel.create ~fus:1 ~rate:3 in
  let fu = Alloc_wheel.assign w ~group:1 ~cycles:2 in
  Alloc_wheel.release w ~fu ~group:1 ~cycles:2;
  checki "all free" 0 (Alloc_wheel.busy_cells w ~fu:0);
  Alcotest.check_raises "double release"
    (Invalid_argument "Alloc_wheel.release: cell was free") (fun () ->
      Alloc_wheel.release w ~fu ~group:1 ~cycles:2)

let test_wheel_fragmentation () =
  (* The Fig. 7.10 phenomenon. *)
  let w = Alloc_wheel.create ~fus:1 ~rate:6 in
  ignore (Alloc_wheel.assign w ~group:0 ~cycles:2);
  ignore (Alloc_wheel.assign w ~group:3 ~cycles:2);
  checkb "fragmented: no 2-cycle slot left" true
    (List.for_all
       (fun g -> Alloc_wheel.fit w ~group:g ~cycles:2 = None)
       [ 2; 5 ])

let prop_wheel_capacity =
  QCheck.Test.make ~name:"wheel never exceeds rate cells per fu" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 1 10)
       (QCheck.pair (QCheck.int_bound 5) (QCheck.int_range 1 3)))
    (fun reqs ->
      let w = Alloc_wheel.create ~fus:2 ~rate:6 in
      List.iter
        (fun (g, c) ->
          match Alloc_wheel.fit w ~group:g ~cycles:c with
          | Some _ -> ignore (Alloc_wheel.assign w ~group:g ~cycles:c)
          | None -> ())
        reqs;
      Alloc_wheel.busy_cells w ~fu:0 <= 6 && Alloc_wheel.busy_cells w ~fu:1 <= 6)

(* --- Schedule --- *)

let ar = Benchmarks.ar_simple ()

let test_schedule_accessors () =
  let s = Schedule.create ar.Benchmarks.cdfg ar.Benchmarks.mlib ~rate:2 in
  checkb "nothing scheduled" false (Schedule.all_scheduled s);
  checki "empty pipe" 0 (Schedule.pipe_length s);
  Schedule.set s 0 ~cstep:3 ~finish_ns:10;
  checkb "scheduled" true (Schedule.is_scheduled s 0);
  checki "cstep" 3 (Schedule.cstep s 0);
  checki "group" 1 (Schedule.group s 0);
  Schedule.unset s 0;
  checkb "unset" false (Schedule.is_scheduled s 0)

let test_schedule_verify_catches_violation () =
  let d = Benchmarks.ar_simple () in
  let cons = Benchmarks.constraints_for d ~rate:2 in
  match List_sched.run d.Benchmarks.cdfg d.Benchmarks.mlib cons ~rate:2 () with
  | Error _ -> Alcotest.fail "baseline scheduling failed"
  | Ok s ->
      checkb "valid" true (Schedule.verify s = Ok ());
      (* Break one precedence: move a consumer before its producer. *)
      let { Types.e_src; e_dst; _ } =
        List.find (fun e -> e.Types.degree = 0) (Cdfg.edges d.Benchmarks.cdfg)
      in
      Schedule.set s e_dst ~cstep:(Schedule.cstep s e_src - 1) ~finish_ns:40;
      checkb "violation caught" true (Schedule.verify s <> Ok ())

let test_schedule_verify_catches_recursion () =
  let d = Benchmarks.elliptic () in
  let cons = Benchmarks.constraints_for d ~rate:7 in
  match List_sched.run d.Benchmarks.cdfg d.Benchmarks.mlib cons ~rate:7 () with
  | Error _ -> Alcotest.fail "baseline scheduling failed"
  | Ok s ->
      checkb "valid" true (Schedule.verify s = Ok ());
      (* Violate the degree-4 max-time constraint by pushing X33 far out. *)
      let x33 =
        List.find
          (fun w -> Cdfg.name d.Benchmarks.cdfg w = "X33")
          (Cdfg.io_ops d.Benchmarks.cdfg)
      in
      Schedule.set s x33 ~cstep:(Schedule.cstep s x33 + 100) ~finish_ns:95;
      checkb "recursion violation caught" true (Schedule.verify s <> Ok ())

(* --- List scheduling --- *)

let test_list_sched_respects_fus () =
  let d = Benchmarks.ar_simple () in
  let cons = Benchmarks.constraints_for d ~rate:2 in
  match List_sched.run d.Benchmarks.cdfg d.Benchmarks.mlib cons ~rate:2 () with
  | Error _ -> Alcotest.fail "scheduling failed"
  | Ok s ->
      (* Check per-group FU usage against the constraints via wheels. *)
      let cdfg = d.Benchmarks.cdfg and mlib = d.Benchmarks.mlib in
      let groups = Mcs_util.Listx.group_by
          (fun op -> (Cdfg.func_partition cdfg op, Cdfg.func_optype cdfg op))
          (Cdfg.func_ops cdfg)
      in
      List.iter
        (fun ((p, ty), ops) ->
          let w =
            Alloc_wheel.create
              ~fus:(Constraints.fu_count cons ~partition:p ~optype:ty)
              ~rate:2
          in
          List.iter
            (fun op ->
              match
                Alloc_wheel.fit w ~group:(Schedule.group s op)
                  ~cycles:(Timing.op_cycles cdfg mlib op)
              with
              | Some _ ->
                  ignore
                    (Alloc_wheel.assign w ~group:(Schedule.group s op)
                       ~cycles:(Timing.op_cycles cdfg mlib op))
              | None -> Alcotest.fail "functional units oversubscribed")
            ops)
        groups

let test_list_sched_missing_fu () =
  let d = Benchmarks.ar_simple () in
  let cons =
    Constraints.create ~n_partitions:4
      ~pins:[ (0, 200); (1, 200); (2, 200); (3, 200); (4, 200) ]
      ~fus:[ (1, "add", 1) ] (* no multipliers anywhere *)
  in
  checkb "raises on missing FU type" true
    (match List_sched.run d.Benchmarks.cdfg d.Benchmarks.mlib cons ~rate:2 () with
    | Error { List_sched.kind = List_sched.Missing_fu (_, "mul"); _ } -> true
    | Error _ | Ok _ -> false)

let test_list_sched_io_hook_postpones () =
  let d = Benchmarks.ar_simple () in
  let cons = Benchmarks.constraints_for d ~rate:2 in
  (* A hook that forbids all I/O before control step 2. *)
  let hook =
    {
      List_sched.io_can = (fun _ _ ~cstep -> cstep >= 2);
      io_commit = (fun _ _ ~cstep:_ -> ());
    }
  in
  match
    List_sched.run d.Benchmarks.cdfg d.Benchmarks.mlib cons ~rate:2
      ~io_hook:hook ()
  with
  | Error _ -> Alcotest.fail "scheduling failed"
  | Ok s ->
      List.iter
        (fun w -> checkb "io postponed" true (Schedule.cstep s w >= 2))
        (Cdfg.io_ops d.Benchmarks.cdfg)

let test_list_sched_ewf_rates () =
  let d = Benchmarks.elliptic () in
  (* Rate 5: greedy list scheduling fails (paper, §4.4.2.1); rates 6-7
     succeed. *)
  let attempt rate =
    let cons = Benchmarks.constraints_for d ~rate in
    match List_sched.run d.Benchmarks.cdfg d.Benchmarks.mlib cons ~rate () with
    | Ok s -> Schedule.verify s = Ok ()
    | Error _ -> false
  in
  checkb "rate 5 fails (greedy)" false (attempt 5);
  checkb "rate 6 succeeds" true (attempt 6);
  checkb "rate 7 succeeds" true (attempt 7)

let test_priorities () =
  let d = Benchmarks.ar_simple () in
  let prio = List_sched.priorities d.Benchmarks.cdfg d.Benchmarks.mlib in
  (* Sinks have the smallest priority; sources on long paths the largest. *)
  let o1 =
    List.find (fun w -> Cdfg.name d.Benchmarks.cdfg w = "O1") (Cdfg.io_ops d.Benchmarks.cdfg)
  in
  let i7 =
    List.find (fun w -> Cdfg.name d.Benchmarks.cdfg w = "I7") (Cdfg.io_ops d.Benchmarks.cdfg)
  in
  checkb "deep input before sink" true (prio.(i7) > prio.(o1))

(* --- FDS --- *)

let test_fds_respects_pipe_length () =
  let d = Benchmarks.elliptic () in
  List.iter
    (fun (rate, pl) ->
      match Fds.run d.Benchmarks.cdfg d.Benchmarks.mlib ~rate ~pipe_length:pl () with
      | Error m -> Alcotest.fail (Fds.error_message d.Benchmarks.cdfg m)
      | Ok s ->
          checkb "verifies" true (Schedule.verify s = Ok ());
          checkb "within pipe length" true (Schedule.pipe_length s <= pl))
    [ (5, 25); (6, 26); (7, 27) ]

let test_fds_infeasible_pipe () =
  let d = Benchmarks.elliptic () in
  checkb "pipe too short" true
    (match Fds.run d.Benchmarks.cdfg d.Benchmarks.mlib ~rate:6 ~pipe_length:20 () with
     | Error _ -> true
     | Ok _ -> false)

let test_fds_rate5_schedules_ewf () =
  (* The paper's point: FDS finds the rate-5 schedule greedy list
     scheduling misses. *)
  let d = Benchmarks.elliptic () in
  match Fds.run d.Benchmarks.cdfg d.Benchmarks.mlib ~rate:5 ~pipe_length:25 () with
  | Error m -> Alcotest.fail (Fds.error_message d.Benchmarks.cdfg m)
  | Ok s -> checkb "valid at rate 5" true (Schedule.verify s = Ok ())

let test_fds_fu_requirements () =
  let d = Benchmarks.ar_general () in
  match Fds.run d.Benchmarks.cdfg d.Benchmarks.mlib ~rate:4 ~pipe_length:9 () with
  | Error m -> Alcotest.fail (Fds.error_message d.Benchmarks.cdfg m)
  | Ok s ->
      let fus = Fds.fu_requirements s in
      (* Lower bound: P1 has 9 muls at rate 4 -> at least 3 multipliers. *)
      checkb "P1 muls >= 3" true (List.assoc (1, "mul") fus >= 3);
      (* Sanity: all partitions report both op types they contain. *)
      checkb "entries present" true (List.length fus >= 4)

let test_fds_frames_fixed_propagation () =
  let d = Benchmarks.ar_general () in
  let n = Cdfg.n_ops d.Benchmarks.cdfg in
  let fixed = Array.make n None in
  match Fds.frames d.Benchmarks.cdfg d.Benchmarks.mlib ~rate:3 ~pipe_length:10 ~fixed with
  | None -> Alcotest.fail "frames infeasible"
  | Some (lb, ub) ->
      (* Fixing an op inside its window keeps frames feasible and pins it. *)
      let op = List.hd (Cdfg.func_ops d.Benchmarks.cdfg) in
      fixed.(op) <- Some lb.(op);
      (match Fds.frames d.Benchmarks.cdfg d.Benchmarks.mlib ~rate:3 ~pipe_length:10 ~fixed with
      | None -> Alcotest.fail "fixing inside the window broke frames"
      | Some (lb', ub') ->
          checki "pinned lb" lb.(op) lb'.(op);
          checki "pinned ub" lb.(op) ub'.(op));
      (* Fixing outside the window is infeasible. *)
      fixed.(op) <- Some (ub.(op) + 50);
      checkb "outside window infeasible" true
        (Fds.frames d.Benchmarks.cdfg d.Benchmarks.mlib ~rate:3 ~pipe_length:10 ~fixed
        = None)

let suite =
  ( "sched",
    [
      Alcotest.test_case "alloc wheel basics" `Quick test_wheel_basic;
      Alcotest.test_case "alloc wheel wraparound" `Quick test_wheel_wraparound;
      Alcotest.test_case "alloc wheel release" `Quick test_wheel_release;
      Alcotest.test_case "alloc wheel fragmentation (Fig. 7.10)" `Quick test_wheel_fragmentation;
      Alcotest.test_case "schedule accessors" `Quick test_schedule_accessors;
      Alcotest.test_case "verify catches precedence violations" `Quick test_schedule_verify_catches_violation;
      Alcotest.test_case "verify catches recursion violations" `Quick test_schedule_verify_catches_recursion;
      Alcotest.test_case "list sched respects FU constraints" `Quick test_list_sched_respects_fus;
      Alcotest.test_case "list sched rejects missing FU types" `Quick test_list_sched_missing_fu;
      Alcotest.test_case "list sched postpones rejected I/O" `Quick test_list_sched_io_hook_postpones;
      Alcotest.test_case "EWF: rate 5 fails, 6-7 succeed (paper)" `Quick test_list_sched_ewf_rates;
      Alcotest.test_case "priority function" `Quick test_priorities;
      Alcotest.test_case "FDS respects pipe length" `Quick test_fds_respects_pipe_length;
      Alcotest.test_case "FDS rejects short pipes" `Quick test_fds_infeasible_pipe;
      Alcotest.test_case "FDS schedules EWF at rate 5" `Quick test_fds_rate5_schedules_ewf;
      Alcotest.test_case "FDS functional-unit requirements" `Quick test_fds_fu_requirements;
      Alcotest.test_case "FDS frames with fixed ops" `Quick test_fds_frames_fixed_propagation;
    ]
    @ [ QCheck_alcotest.to_alcotest prop_wheel_capacity ] )

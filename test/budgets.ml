(* Deterministic solver-work budgets for the warm-started branch & bound.

   Every algorithm on the path from a fixed ILP to its solution is
   deterministic, so the `simplex.pivots` spent solving a fixed benchmark
   is an exact, machine-independent number — a perf regression test with
   no timers.  The budgets below leave ~25% headroom over the counts
   measured when the warm-started solver landed, so incidental changes
   (e.g. a different but equally good tie-break) don't trip the test,
   while a return to cold-start behavior (20-50x more pivots) fails it
   immediately.  `suite_ilp.ml` additionally checks the >= 2x win against
   a live `Branch_bound.solve_cold` run, and `bench/main.exe --json`
   reproduces both numbers in its mcs-bench/1 report.

   Measured at introduction (warm / cold):
     - AR filter (ar-general), pin ILP, rate 3:       79 / 1596 pivots
     - elliptic filter, pin ILP, rate 6:             104 / 5117 pivots *)

let ar_general_rate3_pivots = 100
let elliptic_rate6_pivots = 130

(* The chaos harness: crash-safety tests for the daemon's supervisor,
   durable request journal and hostile-socket hardening.

   WAL codec units and a qcheck prefix-truncation property (any torn
   journal recovers exactly the complete records), supervisor units for
   stuck-domain supersession and poison quarantine, and live-daemon
   tests driven by the MCS_FAULT chaos modes: kill-domain poisoning a
   repeat offender, a randomized fault schedule under which every
   accepted request is answered exactly once and the daemon outlives the
   schedule, a kill-and---recover round trip that loses zero admitted
   requests, oversized frames, slowloris reaping, stale-socket probing
   and a signal storm over the main loop's EINTR handling.

   This suite must run after Suite_server (whose fork-based tests need
   to precede any domain spawn) and must never fork itself. *)

module Job = Mcs_engine.Job
module Pool = Mcs_engine.Pool
module M = Mcs_obs.Metrics
module Fault = Mcs_resilience.Fault
module P = Mcs_server.Protocol
module Server = Mcs_server.Server
module Client = Mcs_server.Client
module Supervisor = Mcs_server.Supervisor
module Wal = Mcs_server.Wal

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let counter name = M.count (M.counter name)

let tmp_name =
  let n = ref 0 in
  fun suffix ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcs-chaos-test-%d-%d.%s" (Unix.getpid ()) !n suffix)

let tmp_dir () =
  let dir = tmp_name "d" in
  Unix.mkdir dir 0o755;
  dir

(* Cheap deterministic jobs so daemon tests run in milliseconds. *)
let rjob ?(rate = 2) seed =
  Job.make
    ~design:(Job.Random_simple { seed; n_partitions = 2; ops_per_chip = 3 })
    ~flow:Job.Ch3 ~rate ()

let sub ?deadline_ms ?(fallback = true) id job =
  { P.id; job; deadline_ms; fallback }

(* Poll [cond] (calling it is allowed to do work, e.g. a supervision
   tick) until it holds or the deadline passes. *)
let eventually ?(timeout_s = 30.0) cond =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if cond () then true
    else if Unix.gettimeofday () -. t0 > timeout_s then false
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

(* Arm a fault schedule for the duration of [f] and disarm afterwards;
   [Fault.reset] re-arms shot counters even when the same schedule was
   used by an earlier test. *)
let with_fault schedule f =
  Unix.putenv "MCS_FAULT" schedule;
  Fault.reset ();
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "MCS_FAULT" "";
      Fault.reset ())
    f

(* Like Suite_server's harness but exposing the crash-safety knobs. *)
let with_server ?(domains = 2) ?(window_ms = 5.0) ?cache_dir ?wal_path
    ?(recover = false) ?socket_path
    ?(read_deadline_s = Server.default_config.Server.read_deadline_s)
    ?(idle_timeout_s = Server.default_config.Server.idle_timeout_s)
    ?(max_frame = Server.default_config.Server.max_frame)
    ?(stall_s = Server.default_config.Server.stall_s) f =
  let sock = match socket_path with Some s -> s | None -> tmp_name "sock" in
  let config =
    {
      Server.default_config with
      Server.socket_path = sock;
      domains;
      window_ms;
      cache_dir;
      wal_path;
      recover;
      read_deadline_s;
      idle_timeout_s;
      max_frame;
      stall_s;
    }
  in
  let t = Server.create ~config () in
  let d = Domain.spawn (fun () -> Server.serve t) in
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Client.connect_unix sock in
         ignore (Client.shutdown c);
         Client.close c
       with _ -> () (* test already shut it down; socket is gone *));
      Domain.join d)
    (fun () -> f sock)

(* Raw-socket helpers for hostile-client tests (the typed Client is too
   polite to send garbage). *)
let raw_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let raw_send fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let raw_read_line fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 256 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | n -> (
        let s = Bytes.sub_string chunk 0 n in
        match String.index_opt s '\n' with
        | Some i ->
            Buffer.add_string buf (String.sub s 0 i);
            Some (Buffer.contents buf)
        | None ->
            Buffer.add_string buf s;
            go ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let raw_at_eof fd =
  let chunk = Bytes.create 64 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> true
    | _ -> go () (* drain any residue before the close *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* --- WAL codec and recovery --- *)

(* Structural comparison via a rendering: Job.t is abstract-ish and the
   polymorphic equality would depend on representation details. *)
let record_str = function
  | Wal.Admit { id; job; deadline_ms; fallback } ->
      Printf.sprintf "A[%s][%s][%s][%b]" id (Job.to_string job)
        (match deadline_ms with None -> "-" | Some d -> string_of_float d)
        fallback
  | Wal.Done { id } -> Printf.sprintf "D[%s]" id

let check_records label expected got =
  Alcotest.(check (list string))
    label
    (List.map record_str expected)
    (List.map record_str got)

let test_wal_roundtrip () =
  let path = tmp_name "wal" in
  let records =
    [
      (* ids may contain the field separator and spaces; the codec
         length-prefixes them. *)
      Wal.Admit
        {
          id = "a|b c";
          job = rjob 1;
          deadline_ms = Some 1500.0;
          fallback = false;
        };
      Wal.Done { id = "a|b c" };
      Wal.Admit { id = ""; job = rjob 2; deadline_ms = None; fallback = true };
      Wal.Admit
        { id = "x"; job = rjob 2 ~rate:3; deadline_ms = None; fallback = true };
      Wal.Done { id = "never-admitted" };
    ]
  in
  let w = Wal.open_ path in
  checks "path" path (Wal.path w);
  List.iter (Wal.append ~sync:false w) records;
  Wal.close w;
  let got, torn = Wal.replay path in
  checki "no torn records" 0 torn;
  check_records "replay round-trips" records got;
  (* Incomplete = admits not retired by a done, in admit order; a done
     without an admit is ignored. *)
  check_records "incomplete"
    [ List.nth records 2; List.nth records 3 ]
    (Wal.incomplete got);
  (* A missing file replays as empty. *)
  let none, torn' = Wal.replay (tmp_name "wal") in
  checki "missing file" 0 (List.length none);
  checki "missing file torn" 0 torn'

let test_wal_incomplete_multiset () =
  (* Request ids may repeat across a journal's lifetime: each done
     retires exactly one admit. *)
  let adm id seed =
    Wal.Admit { id; job = rjob seed; deadline_ms = None; fallback = true }
  in
  let records =
    [ adm "x" 1; adm "x" 2; Wal.Done { id = "x" }; adm "y" 3 ]
  in
  let inc = Wal.incomplete records in
  checki "one x admit retired" 2 (List.length inc);
  checkb "y survives" true
    (List.exists (function Wal.Admit { id = "y"; _ } -> true | _ -> false) inc)

let test_wal_compact () =
  let path = tmp_name "wal" in
  let w = Wal.open_ path in
  List.iter
    (fun i ->
      Wal.append ~sync:false w
        (Wal.Admit
           {
             id = Printf.sprintf "k%d" i;
             job = rjob i;
             deadline_ms = None;
             fallback = true;
           }))
    [ 1; 2; 3; 4 ];
  Wal.close w;
  let got, _ = Wal.replay path in
  let keep = List.filteri (fun i _ -> i < 2) got in
  Wal.compact path keep;
  let got', torn = Wal.replay path in
  checki "compact drops torn count" 0 torn;
  check_records "compacted to exactly the kept records" keep got';
  (* The compacted journal accepts further appends. *)
  let w = Wal.open_ path in
  Wal.append ~sync:false w (Wal.Done { id = "k1" });
  Wal.close w;
  let got'', _ = Wal.replay path in
  checki "append after compact" 3 (List.length got'');
  checki "k2 still owed" 1 (List.length (Wal.incomplete got''))

let test_wal_torn_fault () =
  let path = tmp_name "wal" in
  let adm i =
    Wal.Admit
      {
        id = Printf.sprintf "t%d" i;
        job = rjob i;
        deadline_ms = None;
        fallback = true;
      }
  in
  let injected0 = counter "server.wal.torn_injected" in
  let w = Wal.open_ path in
  Wal.append ~sync:false w (adm 1);
  with_fault "wal-torn" (fun () -> Wal.append ~sync:false w (adm 2));
  Wal.append ~sync:false w (adm 3);
  Wal.append ~sync:false w (adm 4);
  Wal.close w;
  checki "torn injection counted" (injected0 + 1)
    (counter "server.wal.torn_injected");
  let got, torn = Wal.replay path in
  checki "exactly one torn record" 1 torn;
  (* The torn middle record is dropped; every intact neighbour parses. *)
  check_records "neighbours intact" [ adm 1; adm 3; adm 4 ] got

(* Any prefix truncation of a journal recovers exactly the records
   whose terminating newline survived; an unterminated tail counts as
   one torn record. *)
let prop_wal_prefix_truncation =
  let gen =
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 10) (pair bool (int_bound 4)))
        (int_bound 100_000))
  in
  let print (specs, cut) =
    Printf.sprintf "cut=%d specs=[%s]" cut
      (String.concat ";"
         (List.map (fun (a, k) -> Printf.sprintf "%b:%d" a k) specs))
  in
  QCheck.Test.make ~name:"wal prefix truncation recovers complete records"
    ~count:60
    (QCheck.set_print print gen)
    (fun (specs, cutraw) ->
      let records =
        List.mapi
          (fun i (is_admit, k) ->
            if is_admit then
              Wal.Admit
                {
                  id = Printf.sprintf "id|%d %c" i (Char.chr (97 + k));
                  job = rjob k ~rate:(2 + (k mod 2));
                  deadline_ms = (if k mod 2 = 0 then Some (50.0 +. float_of_int k) else None);
                  fallback = k mod 3 = 0;
                }
            else Wal.Done { id = Printf.sprintf "id|%d" k })
          specs
      in
      let path = tmp_name "wal" in
      let w = Wal.open_ path in
      List.iter (Wal.append ~sync:false w) records;
      Wal.close w;
      let full = In_channel.with_open_bin path In_channel.input_all in
      let cut = cutraw mod (String.length full + 1) in
      let prefix = String.sub full 0 cut in
      let torn_path = tmp_name "wal" in
      Out_channel.with_open_bin torn_path (fun oc ->
          Out_channel.output_string oc prefix);
      let complete_lines =
        String.fold_left (fun n ch -> if ch = '\n' then n + 1 else n) 0 prefix
      in
      let expected = List.filteri (fun i _ -> i < complete_lines) records in
      let got, torn = Wal.replay torn_path in
      let expect_torn =
        if cut > 0 && prefix.[cut - 1] <> '\n' then 1 else 0
      in
      List.map record_str got = List.map record_str expected
      && torn = expect_torn)

(* --- the strikes ledger --- *)

let test_strikes_ledger () =
  let s = Pool.Strikes.create () in
  checki "limit" 2 (Pool.Strikes.max_strikes s);
  checki "unseen" 0 (Pool.Strikes.count s "j");
  checkb "first strike retries" true (Pool.Strikes.record s "j" = `Retry 1);
  checkb "not yet poisoned" false (Pool.Strikes.poisoned s "j");
  checkb "second strike poisons" true (Pool.Strikes.record s "j" = `Poisoned 2);
  checkb "poisoned" true (Pool.Strikes.poisoned s "j");
  checkb "other keys unaffected" false (Pool.Strikes.poisoned s "k");
  Pool.Strikes.forgive s "j";
  checki "forgiven" 0 (Pool.Strikes.count s "j")

(* --- supervisor units (generic over plain strings) --- *)

let collector () =
  let mx = Mutex.create () in
  let items = ref [] in
  let push x =
    Mutex.lock mx;
    items := x :: !items;
    Mutex.unlock mx
  in
  let get () =
    Mutex.lock mx;
    let xs = List.rev !items in
    Mutex.unlock mx;
    xs
  in
  (push, get)

let test_supervisor_stuck_domain () =
  let deliver, delivered = collector () in
  let first = Atomic.make true in
  let sup =
    Supervisor.create ~domains:2 ~stall_s:0.08 ~backoff_ms:5.0
      ~key:(fun s -> s)
      ~exec:(fun entries i ->
        let e = entries.(i) in
        (* Only the first attempt wedges: the requeued attempt (on the
           replacement claim) completes immediately. *)
        if e = "sleepy" && Atomic.compare_and_set first true false then
          Unix.sleepf 0.5;
        e ^ "!")
      ~deliver
      ~on_poisoned:(fun _ ~strikes:_ -> ())
      ~on_wake:(fun () -> ())
      ()
  in
  checki "size" 2 (Supervisor.size sup);
  checkb "submit accepted" true (Supervisor.submit sup [| "sleepy" |]);
  let ok =
    eventually (fun () ->
        Supervisor.check sup ~now:(Unix.gettimeofday ());
        List.length (delivered ()) >= 1)
  in
  checkb "requeued entry delivered after supersession" true ok;
  checki "stuck domain parked as zombie" 1 (Supervisor.zombie_count sup);
  checkb "delivered the completion" true (delivered () = [ "sleepy!" ]);
  (* The superseded zombie wakes eventually; its stale claim must be
     discarded, never delivered a second time. *)
  Unix.sleepf 0.6;
  Supervisor.check sup ~now:(Unix.gettimeofday ());
  checki "exactly one delivery" 1 (List.length (delivered ()));
  checkb "a clean completion forgives the strike" false
    (Pool.Strikes.poisoned (Supervisor.strikes sup) "sleepy");
  Supervisor.shutdown sup

let test_supervisor_poison () =
  let deliver, delivered = collector () in
  let on_poisoned, poisoned = collector () in
  let poisoned0 = counter "server.poisoned" in
  let requeued0 = counter "server.requeued" in
  let sup =
    Supervisor.create ~domains:2 ~stall_s:30.0 ~backoff_ms:5.0
      ~key:(fun s -> s)
      ~exec:(fun entries i ->
        let e = entries.(i) in
        if e = "lethal" then raise Supervisor.Domain_killed;
        e)
      ~deliver
      ~on_poisoned:(fun e ~strikes -> on_poisoned (e, strikes))
      ~on_wake:(fun () -> ())
      ()
  in
  checkb "submit accepted" true
    (Supervisor.submit sup [| "a"; "lethal"; "b" |]);
  let ok =
    eventually (fun () ->
        Supervisor.check sup ~now:(Unix.gettimeofday ());
        List.length (delivered ()) >= 2 && List.length (poisoned ()) >= 1)
  in
  checkb "survivors delivered, offender quarantined" true ok;
  checkb "healthy entries completed" true
    (List.sort compare (delivered ()) = [ "a"; "b" ]);
  checkb "offender reported with its strike count" true
    (poisoned () = [ ("lethal", 2) ]);
  checkb "circuit open for the offender" true
    (Supervisor.poisoned_key sup "lethal");
  checkb "circuit closed for the innocent" false
    (Supervisor.poisoned_key sup "a");
  checki "poison counted once" (poisoned0 + 1) (counter "server.poisoned");
  checkb "requeues counted" true (counter "server.requeued" > requeued0);
  Supervisor.shutdown sup;
  (* Empty and post-shutdown submissions. *)
  checkb "post-shutdown submit refused" false (Supervisor.submit sup [| "z" |])

(* --- live daemon under the chaos faults --- *)

let test_kill_domain_poisons () =
  let poisoned0 = counter "server.poisoned" in
  let respawns0 = counter "server.respawns" in
  with_fault "kill-domain:2" @@ fun () ->
  with_server ~domains:2 @@ fun sock ->
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let victim = rjob 41 in
  (match Client.submit_all c [ sub "v" victim ] with
  | Error m -> Alcotest.fail m
  | Ok [ r ] ->
      checkb "no outcome" true (r.P.outcome = None);
      (match r.P.diag with
      | Some d -> checks "typed poisoned diag" "poisoned" d.P.code
      | None -> Alcotest.fail "poisoned reply must carry a diag")
  | Ok _ -> Alcotest.fail "one reply expected");
  checki "poison counted" (poisoned0 + 1) (counter "server.poisoned");
  (* Resubmitting the quarantined job fast-fails at admission. *)
  (match Client.submit_all c [ sub "v2" victim ] with
  | Ok [ r ] -> (
      match r.P.diag with
      | Some d ->
          checks "breaker diag" "poisoned" d.P.code;
          checks "breaker phase" "serve.admission" d.P.phase
      | None -> Alcotest.fail "breaker reply must carry a diag")
  | Ok _ | Error _ -> Alcotest.fail "breaker reply expected");
  (* The pool survived: both killed domains respawn and a fresh job is
     served normally. *)
  checkb "both domains respawned" true
    (eventually (fun () -> counter "server.respawns" >= respawns0 + 2));
  match Client.submit_all c [ sub "w" (rjob 42) ] with
  | Ok [ r ] -> checkb "daemon still serves" true (r.P.outcome <> None)
  | Ok _ | Error _ -> Alcotest.fail "fresh job should be served"

let test_chaos_schedule_exactly_once () =
  let requeued0 = counter "server.requeued" in
  with_fault "kill-domain:2,stall-conn:1" @@ fun () ->
  with_server ~domains:2 ~window_ms:2.0 @@ fun sock ->
  (* The first accepted connection takes the stall-conn shot: it goes
     silent server-side and must not absorb the workload's replies. *)
  let silent = raw_connect sock in
  Fun.protect ~finally:(fun () -> Unix.close silent) @@ fun () ->
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* Randomized (seeded) schedule: jobs in random order, the two
     domain kills landing on whichever entries the dispatcher picked. *)
  Random.init 0xC4A05;
  let n = 12 in
  let ids = List.init n (fun i -> Printf.sprintf "x%d" i) in
  let jobs =
    List.init n (fun i ->
        rjob (Random.int 1000) ~rate:(2 + (i mod 2)))
  in
  List.iter2 (fun id j -> Client.send c (P.Submit (sub id j))) ids jobs;
  let replies = Hashtbl.create n in
  let rec collect () =
    if Hashtbl.length replies < n then
      match Client.recv c with
      | Error m -> Alcotest.fail m
      | Ok (P.Reply r) ->
          checkb "reply id belongs to the schedule" true (List.mem r.P.id ids);
          checkb
            (Printf.sprintf "first reply for %s" r.P.id)
            false (Hashtbl.mem replies r.P.id);
          Hashtbl.replace replies r.P.id r;
          collect ()
      | Ok (P.Stats _ | P.Bye _) -> collect ()
  in
  collect ();
  (* Every accepted request answered: an outcome or a typed diag. *)
  List.iter
    (fun id ->
      let r = Hashtbl.find replies id in
      checkb
        (Printf.sprintf "%s answered" id)
        true
        (r.P.outcome <> None || r.P.diag <> None))
    ids;
  (* Exactly once: any duplicate would arrive before the stats reply
     on this ordered stream. *)
  Client.send c P.Stats_req;
  let rec drain () =
    match Client.recv c with
    | Ok (P.Stats _) -> ()
    | Ok (P.Reply r) ->
        Alcotest.failf "duplicate reply for %s after settlement" r.P.id
    | Ok (P.Bye _) -> drain ()
    | Error m -> Alcotest.fail m
  in
  drain ();
  checkb "the kills forced requeues" true (counter "server.requeued" > requeued0);
  (* The daemon outlives the schedule. *)
  match Client.submit_all c [ sub "after" (rjob 77) ] with
  | Ok [ r ] -> checkb "daemon outlives the schedule" true (r.P.outcome <> None)
  | Ok _ | Error _ -> Alcotest.fail "post-schedule job should be served"

let test_kill_and_recover () =
  let wal = tmp_name "wal" in
  let cache = tmp_dir () in
  let jobs = [ rjob 101; rjob 102; rjob 103 ] in
  (* Daemon #1: a huge batching window keeps the admitted requests
     journaled but never dispatched — then we abandon it mid-flight
     (its domains leak until process exit), the in-process stand-in
     for kill -9 that OCaml 5 allows once domains exist (no fork). *)
  let sock1 = tmp_name "sock" in
  let cfg1 =
    {
      Server.default_config with
      Server.socket_path = sock1;
      domains = 1;
      window_ms = 600_000.0;
      cache_dir = Some cache;
      wal_path = Some wal;
    }
  in
  let t1 = Server.create ~config:cfg1 () in
  let (_ : unit Domain.t) = Domain.spawn (fun () -> Server.serve t1) in
  let c = Client.connect_unix sock1 in
  List.iteri
    (fun i j -> Client.send c (P.Submit (sub (Printf.sprintf "r%d" i) j)))
    jobs;
  (* A stats round-trip on the same ordered stream proves the admits
     were processed — and therefore fsync'd to the journal. *)
  (match Client.stats c with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  Client.close c;
  (* The journal alone must already owe all three requests. *)
  let records, torn = Wal.replay wal in
  checki "journal intact" 0 torn;
  checki "journal owes every admitted request" (List.length jobs)
    (List.length (Wal.incomplete records));
  (* Daemon #2 recovers the journal through the normal queue. *)
  let recovered0 = counter "server.wal.recovered" in
  with_server ~domains:2 ~window_ms:2.0 ~cache_dir:cache ~wal_path:wal
    ~recover:true
  @@ fun sock ->
  checki "every owed request recovered"
    (recovered0 + List.length jobs)
    (counter "server.wal.recovered");
  (* Recovery compacted the journal: the owed admits are journaled
     afresh, not duplicated. *)
  let records', _ = Wal.replay wal in
  checki "compacted journal owes the same requests" (List.length jobs)
    (List.length (Wal.incomplete records'));
  (* Zero lost: resubmitting the same jobs either coalesces with the
     in-flight recovered computation or hits the cache it filled. *)
  let c2 = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
  match
    Client.submit_all c2
      (List.mapi (fun i j -> sub (Printf.sprintf "q%d" i) j) jobs)
  with
  | Error m -> Alcotest.fail m
  | Ok rs ->
      List.iter
        (fun (r : P.reply) ->
          checkb
            (Printf.sprintf "%s has an outcome" r.P.id)
            true (r.P.outcome <> None);
          checkb
            (Printf.sprintf "%s was not recomputed from scratch" r.P.id)
            true
            (r.P.cached || r.P.coalesced))
        rs

let test_oversized_frame () =
  let oversized0 = counter "server.oversized" in
  with_server ~max_frame:2048 @@ fun sock ->
  (* A complete line over the bound. *)
  let fd = raw_connect sock in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  raw_send fd (String.make 4000 'x' ^ "\n");
  (match raw_read_line fd with
  | None -> Alcotest.fail "oversized frame must be answered before close"
  | Some line -> (
      match P.response_of_string line with
      | Ok (P.Reply r) -> (
          checks "connection-level reply has no id" "" r.P.id;
          match r.P.diag with
          | Some d -> checks "typed oversized diag" "oversized" d.P.code
          | None -> Alcotest.fail "oversized reply must carry a diag")
      | Ok _ | Error _ -> Alcotest.fail "expected a typed reply"));
  checkb "connection retired after the reply" true (raw_at_eof fd);
  (* A never-terminated line over the bound (no newline ever sent). *)
  let fd2 = raw_connect sock in
  Fun.protect ~finally:(fun () -> Unix.close fd2) @@ fun () ->
  raw_send fd2 (String.make 3000 'y');
  (match raw_read_line fd2 with
  | None -> Alcotest.fail "unterminated oversize must be answered"
  | Some line -> (
      match P.response_of_string line with
      | Ok (P.Reply { P.diag = Some d; _ }) ->
          checks "typed oversized diag (no newline)" "oversized" d.P.code
      | Ok _ | Error _ -> Alcotest.fail "expected a typed reply"));
  checkb "second connection retired" true (raw_at_eof fd2);
  checki "both frames counted" (oversized0 + 2) (counter "server.oversized");
  (* A polite client on the same daemon is unaffected. *)
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.submit_all c [ sub "ok" (rjob 55) ] with
  | Ok [ r ] -> checkb "polite client served" true (r.P.outcome <> None)
  | Ok _ | Error _ -> Alcotest.fail "polite client should be served"

let test_slowloris_reaped () =
  let reaped0 = counter "server.reaped" in
  with_server ~read_deadline_s:0.2 @@ fun sock ->
  let fd = raw_connect sock in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  (* Start a request line, never finish it — and keep dribbling, which
     must NOT reset the read deadline. *)
  raw_send fd "mcs";
  Unix.sleepf 0.1;
  raw_send fd "-req";
  checkb "partial line reaped" true
    (eventually (fun () -> counter "server.reaped" > reaped0));
  checkb "reaped connection closed" true (raw_at_eof fd)

let test_stall_conn_fault_reaped () =
  let reaped0 = counter "server.reaped" in
  with_fault "stall-conn:1" @@ fun () ->
  with_server ~idle_timeout_s:0.2 @@ fun sock ->
  (* First accepted connection takes the shot and goes silent. *)
  let silent = raw_connect sock in
  Fun.protect ~finally:(fun () -> Unix.close silent) @@ fun () ->
  (* A working client keeps the daemon busy meanwhile. *)
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.submit_all c [ sub "live" (rjob 66) ] with
  | Ok [ r ] -> checkb "live client served" true (r.P.outcome <> None)
  | Ok _ | Error _ -> Alcotest.fail "live client should be served");
  checkb "silent connection idle-reaped" true
    (eventually (fun () -> counter "server.reaped" > reaped0))

let test_stale_and_live_sockets () =
  (* A socket file left by a crashed daemon: bound once, never
     unlinked, nobody listening.  create must probe and unlink it. *)
  let stale = tmp_name "sock" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX stale);
  Unix.close fd;
  checkb "stale file exists" true (Sys.file_exists stale);
  with_server ~socket_path:stale (fun sock ->
      let c = Client.connect_unix sock in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      match Client.submit_all c [ sub "s" (rjob 88) ] with
      | Ok [ r ] ->
          checkb "daemon serves on the reclaimed socket" true
            (r.P.outcome <> None)
      | Ok _ | Error _ -> Alcotest.fail "reclaimed socket should serve");
  (* A live daemon's socket must be refused, not stolen. *)
  with_server @@ fun sock ->
  (match
     Server.create
       ~config:{ Server.default_config with Server.socket_path = sock }
       ()
   with
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ()
  | exception e ->
      Alcotest.failf "expected EADDRINUSE, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "second daemon must not steal a live socket");
  (* The refused probe must not have unlinked the live socket. *)
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.stats c with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m

(* A non-socket path is never unlinked, whatever its content. *)
let test_non_socket_path_refused () =
  let path = tmp_name "sock" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "precious data");
  (match
     Server.create
       ~config:{ Server.default_config with Server.socket_path = path }
       ()
   with
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ()
  | exception e ->
      Alcotest.failf "expected EADDRINUSE, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "a regular file must not be claimed as a socket");
  checkb "file untouched" true (Sys.file_exists path);
  checks "content untouched" "precious data"
    (In_channel.with_open_bin path In_channel.input_all)

let test_signal_storm () =
  with_server ~domains:2 @@ fun sock ->
  let old = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  let stop () =
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_interval = 0.0; it_value = 0.0 });
    Sys.set_signal Sys.sigalrm old
  in
  (* The storm stops before with_server's graceful-shutdown finally
     runs, so only the workload itself is under fire. *)
  Fun.protect ~finally:stop @@ fun () ->
  ignore
    (Unix.setitimer Unix.ITIMER_REAL
       { Unix.it_interval = 0.01; it_value = 0.01 });
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match
    Client.submit_all c
      (List.init 4 (fun i -> sub (Printf.sprintf "s%d" i) (rjob (200 + i))))
  with
  | Error m -> Alcotest.fail m
  | Ok rs ->
      checki "all replies arrive through the storm" 4 (List.length rs);
      List.iter
        (fun (r : P.reply) ->
          checkb
            (Printf.sprintf "%s served despite EINTR storm" r.P.id)
            true (r.P.outcome <> None))
        rs

let suite =
  ( "chaos",
    [
      Alcotest.test_case "wal round-trips and owes incomplete admits" `Quick
        test_wal_roundtrip;
      Alcotest.test_case "wal dones retire admits one-for-one" `Quick
        test_wal_incomplete_multiset;
      Alcotest.test_case "wal compacts atomically and reopens" `Quick
        test_wal_compact;
      Alcotest.test_case "wal-torn fault drops exactly one record" `Quick
        test_wal_torn_fault;
      Alcotest.test_case "strikes ledger poisons at two" `Quick
        test_strikes_ledger;
      Alcotest.test_case "supervisor supersedes a stuck domain" `Quick
        test_supervisor_stuck_domain;
      Alcotest.test_case "supervisor poisons a lethal entry" `Quick
        test_supervisor_poison;
      Alcotest.test_case "kill-domain twice quarantines the job" `Quick
        test_kill_domain_poisons;
      Alcotest.test_case "chaos schedule answered exactly once" `Quick
        test_chaos_schedule_exactly_once;
      Alcotest.test_case "crash loses zero journaled requests" `Quick
        test_kill_and_recover;
      Alcotest.test_case "oversized frames get typed replies" `Quick
        test_oversized_frame;
      Alcotest.test_case "slowloris partial line reaped" `Quick
        test_slowloris_reaped;
      Alcotest.test_case "stall-conn fault idle-reaped" `Quick
        test_stall_conn_fault_reaped;
      Alcotest.test_case "stale socket reclaimed, live refused" `Quick
        test_stale_and_live_sockets;
      Alcotest.test_case "non-socket path never unlinked" `Quick
        test_non_socket_path_refused;
      Alcotest.test_case "served through an EINTR signal storm" `Quick
        test_signal_storm;
    ]
    @ List.map QCheck_alcotest.to_alcotest [ prop_wal_prefix_truncation ] )

(* Unit and property tests for Mcs_util. *)

module R = Mcs_util.Ratio
module Listx = Mcs_util.Listx

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_make_normalizes () =
  check "6/4 num" 3 (R.num (R.make 6 4));
  check "6/4 den" 2 (R.den (R.make 6 4));
  check "neg den num" (-3) (R.num (R.make 3 (-1)));
  check "neg den den" 1 (R.den (R.make 3 (-1)));
  check "zero" 0 (R.num (R.make 0 17));
  check "zero den-normal" 1 (R.den (R.make 0 17))

let test_make_zero_den () =
  Alcotest.check_raises "den 0" R.Division_by_zero (fun () ->
      ignore (R.make 1 0))

let test_arith () =
  let half = R.make 1 2 and third = R.make 1 3 in
  checkb "1/2+1/3" true (R.equal (R.add half third) (R.make 5 6));
  checkb "1/2-1/3" true (R.equal (R.sub half third) (R.make 1 6));
  checkb "1/2*1/3" true (R.equal (R.mul half third) (R.make 1 6));
  checkb "1/2 / 1/3" true (R.equal (R.div half third) (R.make 3 2));
  checkb "neg" true (R.equal (R.neg half) (R.make (-1) 2));
  checkb "inv" true (R.equal (R.inv third) (R.of_int 3))

let test_floor_ceil () =
  check "floor 7/2" 3 (R.floor (R.make 7 2));
  check "floor -7/2" (-4) (R.floor (R.make (-7) 2));
  check "ceil 7/2" 4 (R.ceil (R.make 7 2));
  check "ceil -7/2" (-3) (R.ceil (R.make (-7) 2));
  check "floor int" 5 (R.floor (R.of_int 5));
  check "ceil int" 5 (R.ceil (R.of_int 5))

let test_frac () =
  checkb "frac 7/2" true (R.equal (R.frac (R.make 7 2)) (R.make 1 2));
  checkb "frac -7/2" true (R.equal (R.frac (R.make (-7) 2)) (R.make 1 2));
  checkb "frac int" true (R.is_zero (R.frac (R.of_int (-3))))

let test_compare () =
  checkb "1/3 < 1/2" true (R.compare (R.make 1 3) (R.make 1 2) < 0);
  checkb "-1/2 < 1/3" true (R.compare (R.make (-1) 2) (R.make 1 3) < 0);
  checkb "eq" true (R.compare (R.make 2 4) (R.make 1 2) = 0);
  checkb "min" true (R.equal (R.min (R.of_int 2) (R.of_int 1)) (R.of_int 1));
  checkb "max" true (R.equal (R.max (R.of_int 2) (R.of_int 1)) (R.of_int 2))

let test_to_int () =
  check "to_int_exn" 4 (R.to_int_exn (R.make 8 2));
  Alcotest.check_raises "fractional" (Invalid_argument "Ratio.to_int_exn: not an integer")
    (fun () -> ignore (R.to_int_exn (R.make 1 2)))

let test_pp () =
  Alcotest.(check string) "int" "5" (R.to_string (R.of_int 5));
  Alcotest.(check string) "frac" "-3/2" (R.to_string (R.make 3 (-2)))

(* The hot-path fast paths (den = 1, equal denominators, coprime
   denominators, cross-reduced multiplication) must still produce fully
   reduced results with positive denominators. *)
let test_fast_paths () =
  let reduced name r num den =
    check (name ^ " num") num (R.num r);
    check (name ^ " den") den (R.den r)
  in
  (* den = 1 on both sides: pure integer arithmetic. *)
  reduced "int add" (R.add (R.of_int 3) (R.of_int (-5))) (-2) 1;
  reduced "int mul" (R.mul (R.of_int 6) (R.of_int 7)) 42 1;
  (* den = 1 on one side. *)
  reduced "int + frac" (R.add (R.of_int 2) (R.make 1 3)) 7 3;
  reduced "frac + int" (R.add (R.make 1 3) (R.of_int (-1))) (-2) 3;
  (* Equal denominators, with and without a common factor in the sum. *)
  reduced "1/4+1/4" (R.add (R.make 1 4) (R.make 1 4)) 1 2;
  reduced "1/4+2/4" (R.add (R.make 1 4) (R.make 2 4)) 3 4;
  reduced "3/4-3/4" (R.add (R.make 3 4) (R.make (-3) 4)) 0 1;
  (* Coprime denominators (provably reduced, no gcd taken). *)
  reduced "1/3+1/4" (R.add (R.make 1 3) (R.make 1 4)) 7 12;
  (* Denominators sharing a factor (Knuth's two-gcd path). *)
  reduced "1/6+1/10" (R.add (R.make 1 6) (R.make 1 10)) 4 15;
  reduced "5/6+1/6" (R.add (R.make 5 6) (R.make 1 6)) 1 1;
  (* Cross-reduced multiplication. *)
  reduced "2/3*3/2" (R.mul (R.make 2 3) (R.make 3 2)) 1 1;
  reduced "4/9*3/8" (R.mul (R.make 4 9) (R.make 3 8)) 1 6;
  reduced "-2/3*3/4" (R.mul (R.make (-2) 3) (R.make 3 4)) (-1) 2;
  (* Inverse keeps the denominator positive without renormalizing. *)
  reduced "inv -2/3" (R.inv (R.make (-2) 3)) (-3) 2

let test_overflow_still_raised () =
  let raises f = Alcotest.check_raises "overflow" R.Overflow f in
  raises (fun () -> ignore (R.add (R.of_int max_int) R.one));
  raises (fun () -> ignore (R.mul (R.of_int max_int) (R.of_int 2)));
  raises (fun () -> ignore (R.sub (R.of_int min_int) R.one));
  (* Coprime-denominator addition overflows in the common denominator. *)
  raises (fun () -> ignore (R.add (R.make 1 max_int) (R.make 1 (max_int - 1))));
  (* Cross-reduction cannot save a genuinely huge product. *)
  raises (fun () -> ignore (R.mul (R.make max_int 2) (R.make max_int 3)))

let test_compare_fast_paths () =
  checkb "equal dens" true (R.compare (R.make 1 3) (R.make 2 3) < 0);
  checkb "int vs frac" true (R.compare (R.of_int 2) (R.make 7 3) < 0);
  (* Differing signs decide without cross-multiplying — this pair would
     overflow under naive cross-multiplication. *)
  checkb "sign shortcut" true
    (R.compare (R.make max_int 2) (R.make (-max_int) 3) > 0);
  checkb "zero vs negative" true (R.compare R.zero (R.make (-1) 7) > 0)

let small = QCheck.int_range (-50) 50
let small_nz = QCheck.map (fun n -> if n = 0 then 1 else n) small

let ratio_arb =
  QCheck.map
    (fun (n, d) -> R.make n d)
    (QCheck.pair small small_nz)

let prop_add_commutes =
  QCheck.Test.make ~name:"ratio add commutes" ~count:500
    (QCheck.pair ratio_arb ratio_arb)
    (fun (a, b) -> R.equal (R.add a b) (R.add b a))

let prop_mul_assoc =
  QCheck.Test.make ~name:"ratio mul associates" ~count:500
    (QCheck.triple ratio_arb ratio_arb ratio_arb)
    (fun (a, b, c) -> R.equal (R.mul a (R.mul b c)) (R.mul (R.mul a b) c))

let prop_add_sub_roundtrip =
  QCheck.Test.make ~name:"ratio a+b-b = a" ~count:500
    (QCheck.pair ratio_arb ratio_arb)
    (fun (a, b) -> R.equal (R.sub (R.add a b) b) a)

let prop_floor_bound =
  QCheck.Test.make ~name:"floor q <= q < floor q + 1" ~count:500 ratio_arb
    (fun q ->
      let f = R.of_int (R.floor q) in
      R.compare f q <= 0 && R.compare q (R.add f R.one) < 0)

let prop_frac_range =
  QCheck.Test.make ~name:"frac in [0,1)" ~count:500 ratio_arb (fun q ->
      let f = R.frac q in
      R.sign f >= 0 && R.compare f R.one < 0)

let prop_compare_matches_float =
  QCheck.Test.make ~name:"compare agrees with floats" ~count:500
    (QCheck.pair ratio_arb ratio_arb)
    (fun (a, b) ->
      let c = compare (R.to_float a) (R.to_float b) in
      (* Floats are exact at these magnitudes. *)
      compare (R.compare a b) 0 = compare c 0)

let test_listx_range () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Listx.range 2 5);
  Alcotest.(check (list int)) "empty" [] (Listx.range 5 2)

let test_listx_minmax () =
  Alcotest.(check (option int))
    "max_by" (Some 9)
    (Option.map (fun x -> x) (Listx.max_by (fun x -> x) [ 3; 9; 1 ]));
  Alcotest.(check (option int))
    "min_by" (Some 1)
    (Listx.min_by (fun x -> x) [ 3; 9; 1 ]);
  Alcotest.(check (option int)) "empty" None (Listx.max_by (fun x -> x) [])

let test_listx_group_by () =
  let g = Listx.group_by (fun x -> x mod 2) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "groups" 2 (List.length g);
  Alcotest.(check (list int)) "odds" [ 1; 3; 5 ] (List.assoc 1 g);
  Alcotest.(check (list int)) "evens" [ 2; 4 ] (List.assoc 0 g)

let test_listx_misc () =
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take over" [ 1 ] (Listx.take 5 [ 1 ]);
  Alcotest.(check (list int)) "uniq" [ 1; 2; 3 ] (Listx.uniq ( = ) [ 1; 2; 1; 3; 2 ]);
  Alcotest.(check int) "sum" 6 (Listx.sum (fun x -> x) [ 1; 2; 3 ])

let suite =
  ( "util",
    [
      Alcotest.test_case "ratio normalization" `Quick test_make_normalizes;
      Alcotest.test_case "ratio zero denominator" `Quick test_make_zero_den;
      Alcotest.test_case "ratio arithmetic" `Quick test_arith;
      Alcotest.test_case "ratio floor/ceil" `Quick test_floor_ceil;
      Alcotest.test_case "ratio frac" `Quick test_frac;
      Alcotest.test_case "ratio compare" `Quick test_compare;
      Alcotest.test_case "ratio to_int" `Quick test_to_int;
      Alcotest.test_case "ratio printing" `Quick test_pp;
      Alcotest.test_case "ratio fast paths stay reduced" `Quick test_fast_paths;
      Alcotest.test_case "ratio overflow still raised" `Quick test_overflow_still_raised;
      Alcotest.test_case "ratio compare fast paths" `Quick test_compare_fast_paths;
      Alcotest.test_case "listx range" `Quick test_listx_range;
      Alcotest.test_case "listx min/max" `Quick test_listx_minmax;
      Alcotest.test_case "listx group_by" `Quick test_listx_group_by;
      Alcotest.test_case "listx take/uniq/sum" `Quick test_listx_misc;
    ]
    @ List.map QCheck_alcotest.to_alcotest
        [
          prop_add_commutes;
          prop_mul_assoc;
          prop_add_sub_roundtrip;
          prop_floor_bound;
          prop_frac_range;
          prop_compare_matches_float;
        ] )

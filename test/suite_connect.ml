(* Tests for the interchip-connection layer: bus model, bounds, the
   Chapter 4 heuristic, dynamic reassignment, and the ILP generators. *)

open Mcs_cdfg
open Mcs_connect

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Connection --- *)

let test_connection_unidir () =
  let c = Connection.create Connection.Unidir ~n_partitions:3 in
  let h = Connection.new_bus c in
  Connection.widen_for c ~bus:h ~src:1 ~dst:2 ~width:16;
  checki "out width" 16 (Connection.out_width c ~bus:h ~partition:1);
  checki "in width" 16 (Connection.in_width c ~bus:h ~partition:2);
  checki "other partitions 0" 0 (Connection.out_width c ~bus:h ~partition:2);
  checki "pins src" 16 (Connection.pins_used c 1);
  checki "pins dst" 16 (Connection.pins_used c 2);
  Connection.widen_for c ~bus:h ~src:1 ~dst:2 ~width:8;
  checki "widen is monotone" 16 (Connection.out_width c ~bus:h ~partition:1)

let test_connection_bidir_aliasing () =
  let c = Connection.create Connection.Bidir ~n_partitions:2 in
  let h = Connection.new_bus c in
  Connection.widen_for c ~bus:h ~src:1 ~dst:2 ~width:12;
  (* One bidirectional port per partition: in = out. *)
  checki "in aliases out" 12 (Connection.in_width c ~bus:h ~partition:1);
  checki "pins counted once" 12 (Connection.pins_used c 1)

let test_connection_capable () =
  let b = Cdfg.Builder.create ~n_partitions:2 in
  let w8 = Cdfg.Builder.io b ~src:1 ~dst:2 ~width:8 "v8" in
  let w16 = Cdfg.Builder.io b ~src:1 ~dst:2 ~width:16 "v16" in
  let cdfg = Cdfg.Builder.finish b in
  let c = Connection.create Connection.Unidir ~n_partitions:2 in
  let h = Connection.new_bus c in
  Connection.widen_for c ~bus:h ~src:1 ~dst:2 ~width:8;
  checkb "8-bit fits" true (Connection.capable c cdfg ~bus:h w8);
  checkb "16-bit does not" false (Connection.capable c cdfg ~bus:h w16)

let test_connection_topology_and_copy () =
  let c = Connection.create Connection.Unidir ~n_partitions:3 in
  let h = Connection.new_bus c in
  Connection.widen_for c ~bus:h ~src:1 ~dst:2 ~width:8;
  Connection.widen_for c ~bus:h ~src:1 ~dst:3 ~width:8;
  Alcotest.(check (pair (list int) (list int)))
    "topology" ([ 1 ], [ 2; 3 ]) (Connection.topology c ~bus:h);
  Alcotest.(check (list int)) "on bus" [ 1; 2; 3 ] (Connection.partitions_on_bus c ~bus:h);
  checki "bus width" 8 (Connection.bus_width c ~bus:h);
  let c2 = Connection.copy c in
  Connection.widen_for c2 ~bus:h ~src:1 ~dst:2 ~width:32;
  checki "copy isolated" 8 (Connection.out_width c ~bus:h ~partition:1)

let test_drop_last_bus () =
  let c = Connection.create Connection.Unidir ~n_partitions:1 in
  let h = Connection.new_bus c in
  checki "one bus" 1 (Connection.n_buses c);
  Connection.drop_last_bus c;
  checki "dropped" 0 (Connection.n_buses c);
  let h2 = Connection.new_bus c in
  Connection.widen_for c ~bus:h2 ~src:0 ~dst:1 ~width:4;
  checkb "wired bus protected" true
    (try
       Connection.drop_last_bus c;
       false
     with Invalid_argument _ -> true);
  ignore h

(* --- Bounds --- *)

let test_bounds_ar_simple () =
  let d = Benchmarks.ar_simple () in
  let cdfg = d.Benchmarks.cdfg in
  (* P1 receives 10 8-bit values at rate 2: 5 ports, 40 pins. *)
  checki "P1 min input pins" 40 (Bounds.min_input_pins cdfg ~rate:2 ~partition:1);
  (* P1 outputs 2 values at rate 2: 1 port, 8 pins. *)
  checki "P1 min output pins" 8 (Bounds.min_output_pins cdfg ~rate:2 ~partition:1);
  let cons = Benchmarks.constraints_for d ~rate:2 in
  (* With 48 total pins: 40 input pins available -> 5 ports of 8 bits. *)
  checki "P1 max input ports" 5
    (Bounds.max_input_ports cdfg cons ~rate:2 ~partition:1)

let test_bounds_mixed_widths () =
  let d = Benchmarks.ar_general () in
  let cdfg = d.Benchmarks.cdfg in
  (* Wider values occupy ports narrower values can ride along. *)
  let min_in = Bounds.min_input_pins cdfg ~rate:3 ~partition:1 in
  checkb "P1 min input pins sane" true (min_in >= 48 && min_in <= 135);
  let cons = Benchmarks.constraints_for d ~rate:3 in
  let r = Bounds.max_buses cdfg cons ~rate:3 in
  (* 34 values need at least 12 buses at rate 3; the bound must allow it
     but stay far below one-bus-per-operation. *)
  checkb "R in a sensible band" true (r >= 12 && r < 34)

let test_bounds_bidir_halves () =
  let d = Benchmarks.ar_general () in
  let cons = Benchmarks.constraints_for_bidir d ~rate:3 in
  let r = Bounds.max_buses_bidir d.Benchmarks.cdfg cons ~rate:3 in
  checkb "bidir bound positive" true (r >= 1)

(* --- Heuristic --- *)

let heuristic_invariants (d : Benchmarks.design) cons ~rate ~mode =
  match Heuristic.search d.Benchmarks.cdfg cons ~rate ~mode () with
  | Error m -> Alcotest.fail (Heuristic.error_message m)
  | Ok res ->
      let cdfg = d.Benchmarks.cdfg in
      (* Every operation's bus is capable of carrying it. *)
      List.iter
        (fun (w, h) ->
          checkb "bus capable" true (Connection.capable res.Heuristic.conn cdfg ~bus:h w))
        res.Heuristic.assign;
      (* Capacity: distinct values per bus within the initiation rate. *)
      List.iter
        (fun h ->
          let values =
            Mcs_util.Listx.uniq String.equal
              (List.filter_map
                 (fun (w, h') -> if h = h' then Some (Cdfg.io_value cdfg w) else None)
                 res.Heuristic.assign)
          in
          checkb "capacity" true (List.length values <= rate))
        (Mcs_util.Listx.range 0 (Connection.n_buses res.Heuristic.conn));
      (* Pin budgets respected. *)
      List.iteri
        (fun p used -> checkb "budget" true (used <= Constraints.pins cons p))
        (Heuristic.pins_used_by_partition res)

let test_heuristic_ar_rates () =
  let d = Benchmarks.ar_general () in
  List.iter
    (fun rate ->
      heuristic_invariants d (Benchmarks.constraints_for d ~rate) ~rate
        ~mode:Connection.Unidir;
      heuristic_invariants d
        (Benchmarks.constraints_for_bidir d ~rate)
        ~rate ~mode:Connection.Bidir)
    [ 3; 4; 5 ]

let test_heuristic_ewf () =
  let d = Benchmarks.elliptic () in
  List.iter
    (fun rate ->
      heuristic_invariants d (Benchmarks.constraints_for d ~rate) ~rate
        ~mode:Connection.Unidir)
    [ 6; 7 ]

let test_heuristic_infeasible_budget () =
  let d = Benchmarks.ar_general () in
  let cons =
    Constraints.with_pins
      (Benchmarks.constraints_for d ~rate:3)
      [ (0, 8); (1, 8); (2, 8); (3, 8) ]
  in
  checkb "tiny budgets rejected" true
    (Heuristic.search d.Benchmarks.cdfg cons ~rate:3 ~mode:Connection.Unidir ()
     |> Result.is_error)

let test_heuristic_slot_cap () =
  let d = Benchmarks.elliptic () in
  let cons = Benchmarks.constraints_for d ~rate:6 in
  let buses cap =
    match
      Heuristic.search d.Benchmarks.cdfg cons ~rate:6 ~mode:Connection.Unidir
        ~slot_cap:cap ()
    with
    | Ok res -> Connection.n_buses res.Heuristic.conn
    | Error m -> Alcotest.fail (Heuristic.error_message m)
  in
  checkb "lower cap, more buses" true (buses 4 >= buses 6)

(* --- Reassign --- *)

let run_with_reassign (d : Benchmarks.design) ~rate ~mode ~dynamic =
  let cons =
    match mode with
    | Connection.Unidir -> Benchmarks.constraints_for d ~rate
    | Connection.Bidir -> Benchmarks.constraints_for_bidir d ~rate
  in
  match Heuristic.search d.Benchmarks.cdfg cons ~rate ~mode () with
  | Error m -> Alcotest.fail (Heuristic.error_message m)
  | Ok res ->
      let ra =
        Reassign.create d.Benchmarks.cdfg res.Heuristic.conn ~rate
          ~initial:res.Heuristic.assign ~dynamic
      in
      (match
         Mcs_sched.List_sched.run d.Benchmarks.cdfg d.Benchmarks.mlib cons
           ~rate ~io_hook:(Reassign.hook ra) ()
       with
      | Error f -> Error f.Mcs_sched.List_sched.reason
      | Ok s -> Ok (s, ra, res))

let test_reassign_allocation_invariants () =
  let d = Benchmarks.ar_general () in
  match run_with_reassign d ~rate:4 ~mode:Connection.Unidir ~dynamic:true with
  | Error m -> Alcotest.fail m
  | Ok (s, ra, res) ->
      checkb "schedule valid" true (Mcs_sched.Schedule.verify s = Ok ());
      let cdfg = d.Benchmarks.cdfg in
      (* Every committed operation landed on a capable bus in the group it
         was scheduled in, and slot sharing only pairs same value + same
         control step. *)
      List.iter
        (fun ((h, g), (value, cstep, ops)) ->
          checkb "group consistent" true (g = cstep mod 4);
          List.iter
            (fun w ->
              checkb "capable" true (Connection.capable res.Heuristic.conn cdfg ~bus:h w);
              checkb "same value" true (String.equal (Cdfg.io_value cdfg w) value);
              checki "same cstep" cstep (Mcs_sched.Schedule.cstep s w))
            ops)
        (Reassign.allocation_table ra);
      (* One entry per (bus, group). *)
      let keys = List.map fst (Reassign.allocation_table ra) in
      checki "no duplicate slots" (List.length keys)
        (List.length (List.sort_uniq compare keys));
      (* All I/O operations committed. *)
      checki "all committed"
        (List.length (Cdfg.io_ops cdfg))
        (List.length (Reassign.final_assignment ra))

let test_reassign_static_stays_on_initial_bus () =
  let d = Benchmarks.ar_general () in
  match run_with_reassign d ~rate:4 ~mode:Connection.Unidir ~dynamic:false with
  | Error m -> Alcotest.fail m
  | Ok (_, ra, res) ->
      List.iter
        (fun (w, h) ->
          checki "static: final = initial" (List.assoc w res.Heuristic.assign) h)
        (Reassign.final_assignment ra)

let test_reassign_shares_same_value_slot () =
  (* EWF's Ia/Ib transfer one value to two chips; with the connection the
     heuristic finds they can share a slot when scheduled together. *)
  let d = Benchmarks.elliptic () in
  match run_with_reassign d ~rate:7 ~mode:Connection.Unidir ~dynamic:true with
  | Error m -> Alcotest.fail m
  | Ok (_, ra, _) ->
      let shared =
        List.exists
          (fun ((_, _), (_, _, ops)) -> List.length ops > 1)
          (Reassign.allocation_table ra)
      in
      (* Sharing is opportunistic; at minimum the table stays consistent
         (checked above).  Record whether sharing happened for visibility. *)
      ignore shared

(* --- ILP generators --- *)

let test_ch4_ilp_small () =
  let d = Benchmarks.cond_demo () in
  let cons = Benchmarks.constraints_for d ~rate:2 in
  match
    Ilp_gen.Ch4.solve d.Benchmarks.cdfg cons ~rate:2 ~mode:Connection.Unidir
      ~max_buses:5
  with
  | `Sat (assign, pins) ->
      checki "all ops assigned"
        (List.length (Cdfg.io_ops d.Benchmarks.cdfg))
        (List.length assign);
      List.iteri
        (fun p (p', used) ->
          checki "partition order" p p';
          checkb "ILP respects budgets" true (used <= Constraints.pins cons p))
        pins
  | `Unsat -> Alcotest.fail "ILP claims infeasible but the heuristic succeeds"
  | `Unknown -> Alcotest.fail "ILP gave up"
  | `Exhausted _ -> Alcotest.fail "unlimited budget exhausted"

let test_ch4_ilp_detects_infeasible () =
  let d = Benchmarks.cond_demo () in
  let cons =
    Constraints.with_pins
      (Benchmarks.constraints_for d ~rate:2)
      [ (0, 4); (1, 4); (2, 4); (3, 4) ]
  in
  checkb "unsat under 4-pin budgets" true
    (Ilp_gen.Ch4.solve d.Benchmarks.cdfg cons ~rate:2 ~mode:Connection.Unidir
       ~max_buses:5
    = `Unsat)

let test_ch6_ilp_micro () =
  (* Two 4-bit transfers between two chips, one 8-bit bus, one slot:
     feasible only because both values share the bus via sub-buses. *)
  let b = Cdfg.Builder.create ~n_partitions:2 in
  let p1 = Cdfg.Builder.func b ~name:"p1" ~partition:1 "add" in
  let p2 = Cdfg.Builder.func b ~name:"p2" ~partition:1 "add" in
  let x1 = Cdfg.Builder.io b ~name:"x1" ~src:1 ~dst:2 ~width:4 "v1" in
  let x2 = Cdfg.Builder.io b ~name:"x2" ~src:1 ~dst:2 ~width:4 "v2" in
  Cdfg.Builder.dep b p1 x1;
  Cdfg.Builder.dep b p2 x2;
  let cdfg = Cdfg.Builder.finish b in
  let cons =
    Constraints.create ~n_partitions:2
      ~pins:[ (0, 0); (1, 8); (2, 8) ]
      ~fus:[ (1, "add", 2) ]
  in
  Alcotest.(check (option bool))
    "split makes one slot enough" (Some true)
    (Ilp_gen.Ch6.feasible cdfg cons ~rate:1 ~max_buses:1 ~subs:2);
  Alcotest.(check (option bool))
    "without sub-buses one slot is too few" (Some false)
    (Ilp_gen.Ch6.feasible cdfg cons ~rate:1 ~max_buses:1 ~subs:1)


let test_heuristic_deterministic () =
  let d = Benchmarks.ar_general () in
  let cons = Benchmarks.constraints_for d ~rate:4 in
  let go () =
    match Heuristic.search d.Benchmarks.cdfg cons ~rate:4 ~mode:Connection.Unidir () with
    | Ok res -> (Connection.n_buses res.Heuristic.conn, res.Heuristic.assign)
    | Error m -> Alcotest.fail (Heuristic.error_message m)
  in
  checkb "two runs agree" true (go () = go ())

let test_bounds_elliptic_exact () =
  let d = Benchmarks.elliptic () in
  let cdfg = d.Benchmarks.cdfg in
  (* P0 sends one 16-bit value (via Ia and Ib) and receives Op: 16 + 16. *)
  checki "P0 min out" 16 (Bounds.min_output_pins cdfg ~rate:6 ~partition:0);
  checki "P0 min in" 16 (Bounds.min_input_pins cdfg ~rate:6 ~partition:0);
  (* P5 receives 4 transfers at rate 6: one 16-bit port suffices. *)
  checki "P5 min in" 16 (Bounds.min_input_pins cdfg ~rate:6 ~partition:5);
  (* At rate 2 those 4 transfers need 2 ports. *)
  checki "P5 min in, rate 2" 32 (Bounds.min_input_pins cdfg ~rate:2 ~partition:5)

let suite =
  ( "connect",
    [
      Alcotest.test_case "connection unidirectional" `Quick test_connection_unidir;
      Alcotest.test_case "connection bidirectional aliasing" `Quick test_connection_bidir_aliasing;
      Alcotest.test_case "connection capability" `Quick test_connection_capable;
      Alcotest.test_case "connection topology/copy" `Quick test_connection_topology_and_copy;
      Alcotest.test_case "drop last bus" `Quick test_drop_last_bus;
      Alcotest.test_case "bounds on AR simple" `Quick test_bounds_ar_simple;
      Alcotest.test_case "bounds with mixed widths" `Quick test_bounds_mixed_widths;
      Alcotest.test_case "bidirectional bus bound" `Quick test_bounds_bidir_halves;
      Alcotest.test_case "heuristic invariants (AR, all rates/modes)" `Quick test_heuristic_ar_rates;
      Alcotest.test_case "heuristic invariants (EWF)" `Quick test_heuristic_ewf;
      Alcotest.test_case "heuristic rejects impossible budgets" `Quick test_heuristic_infeasible_budget;
      Alcotest.test_case "slot cap widens the connection" `Quick test_heuristic_slot_cap;
      Alcotest.test_case "reassign allocation invariants" `Quick test_reassign_allocation_invariants;
      Alcotest.test_case "static assignment never reroutes" `Quick test_reassign_static_stays_on_initial_bus;
      Alcotest.test_case "same-value slot sharing" `Quick test_reassign_shares_same_value_slot;
      Alcotest.test_case "heuristic is deterministic" `Quick test_heuristic_deterministic;
      Alcotest.test_case "exact bounds on the elliptic filter" `Quick test_bounds_elliptic_exact;
      Alcotest.test_case "Ch4 ILP on a small design" `Slow test_ch4_ilp_small;
      Alcotest.test_case "Ch4 ILP detects infeasibility" `Slow test_ch4_ilp_detects_infeasible;
      Alcotest.test_case "Ch6 ILP sub-bus micro case" `Slow test_ch6_ilp_micro;
    ] )

(* Tests for Mcs_resilience and the degradation ladders: budget
   exhaustion at each solver boundary is typed (never an escaped
   exception), fault injection drives every flow down its ladder to a
   checker-clean degraded result or a typed diagnostic, and the engine
   quarantines corrupt cache entries and retries crashed jobs. *)

open Mcs_cdfg
module B = Mcs_resilience.Budget
module Fault = Mcs_resilience.Fault
module F = Mcs_flow.Flow
module Pass = Mcs_flow.Pass
module Diag = Mcs_flow.Diag
module Simplex = Mcs_ilp.Simplex
module BB = Mcs_ilp.Branch_bound
module Fds = Mcs_sched.Fds
module H = Mcs_graph.Hungarian
module Job = Mcs_engine.Job
module Outcome = Mcs_engine.Outcome
module Pool = Mcs_engine.Pool
module Cache = Mcs_engine.Cache
module M = Mcs_obs.Metrics

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let counter name = M.count (M.counter name)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let diag_str d = Format.asprintf "%a" (fun fmt -> Diag.pp fmt) d

let with_env name v f =
  let old = Sys.getenv_opt name in
  Unix.putenv name v;
  Fun.protect
    ~finally:(fun () -> Unix.putenv name (Option.value old ~default:""))
    f

let with_fault v f = with_env "MCS_FAULT" v f

(* --- Budget --- *)

let test_budget_limits () =
  let b = B.make ~nodes:2 () in
  B.spend_node b;
  B.spend_node b;
  checkb "third node raises" true
    (match B.spend_node b with
    | () -> false
    | exception B.Out_of_budget e ->
        e.B.resource = B.Nodes && e.B.limit = 2 && e.B.spent > e.B.limit);
  checkb "limited budget" true (B.is_limited b);
  checkb "unlimited is not limited" false (B.is_limited B.unlimited);
  checkb "unlimited never raises" true
    (try
       for _ = 1 to 10_000 do
         B.spend_pivot B.unlimited
       done;
       true
     with B.Out_of_budget _ -> false);
  let h = B.halve (B.make ~pivots:8 ()) in
  checkb "halved budget still limited" true (B.is_limited h);
  checkb "halved pivots exhaust at 4" true
    (match
       for _ = 1 to 5 do
         B.spend_pivot h
       done
     with
    | () -> false
    | exception B.Out_of_budget e -> e.B.limit = 4);
  checkb "deadline recorded" true
    (B.deadline_ms (B.make ~deadline_ms:50. ()) = Some 50.);
  checkb "message names the resource" true
    (contains (B.message (B.exhausted B.Wall)) "wall")

let lp n_vars objective rows =
  let r = Mcs_util.Ratio.of_int in
  {
    Simplex.n_vars;
    objective = Array.map r (Array.of_list objective);
    rows =
      List.map
        (fun (coefs, rel, b) ->
          (Array.map r (Array.of_list coefs), rel, r b))
        rows;
  }

let test_simplex_pivot_budget () =
  (* The [Ge] row forces phase-1 work, so one pivot can never finish. *)
  let p =
    lp 2 [ 3; 2 ]
      [
        ([ 1; 1 ], Simplex.Ge, 1);
        ([ 1; 1 ], Simplex.Le, 4);
        ([ 1; 3 ], Simplex.Le, 6);
      ]
  in
  checkb "unbudgeted solves" true
    (match Simplex.solve p with Simplex.Optimal _ -> true | _ -> false);
  checkb "one pivot is not enough" true
    (match Simplex.solve ~budget:(B.make ~pivots:1 ()) p with
    | Simplex.Exhausted e -> e.B.resource = B.Pivots
    | _ -> false)

let test_branch_bound_node_budget () =
  (* Fractional root, so no incumbent exists when the node budget dies. *)
  let p = lp 2 [ 1; 1 ] [ ([ 2; 2 ], Simplex.Le, 3) ] in
  let integer = [| true; true |] in
  checkb "unbudgeted solves" true
    (match BB.solve ~integer p with BB.Optimal _ -> true | _ -> false);
  checkb "node budget exhausts typed" true
    (match BB.solve ~budget:(B.make ~nodes:1 ()) ~integer p with
    | BB.Exhausted e -> e.B.resource = B.Nodes
    | _ -> false)

let test_fds_pass_budget () =
  let d = Benchmarks.elliptic () in
  match
    Fds.run ~budget:(B.make ~passes:1 ()) d.Benchmarks.cdfg d.Benchmarks.mlib
      ~rate:6 ~pipe_length:26 ()
  with
  | Error (Fds.Exhausted e) ->
      checkb "passes exhausted" true (e.B.resource = B.Passes)
  | Error e ->
      Alcotest.fail
        ("expected Exhausted, got " ^ Fds.error_message d.Benchmarks.cdfg e)
  | Ok _ -> Alcotest.fail "one pass cannot schedule the elliptic filter"

let test_hungarian_augment_budget () =
  let cost = [| [| 4; 1; 3 |]; [| 2; 0; 5 |]; [| 3; 2; 2 |] |] in
  checkb "budget raises at the boundary" true
    (match H.assignment ~budget:(B.make ~augments:1 ()) cost with
    | _ -> false
    | exception B.Out_of_budget e -> e.B.resource = B.Augments)

(* --- Fault parsing --- *)

let test_fault_parse () =
  checkb "full grammar" true
    (Fault.parse "exhaust-ilp,crash-worker:2,corrupt-cache"
    = Ok [ Fault.Exhaust_ilp; Fault.Crash_worker 2; Fault.Corrupt_cache ]);
  checkb "empty is no faults" true (Fault.parse "" = Ok []);
  checkb "spaces tolerated" true
    (Fault.parse " exhaust-fds , exhaust-hungarian "
    = Ok [ Fault.Exhaust_fds; Fault.Exhaust_hungarian ]);
  checkb "unknown mode rejected" true
    (match Fault.parse "exhaust-everything" with
    | Error _ -> true
    | Ok _ -> false);
  checkb "bad crash count rejected" true
    (match Fault.parse "crash-worker:many" with
    | Error _ -> true
    | Ok _ -> false)

let test_fault_env_unparseable_disables () =
  with_fault "utter nonsense" (fun () ->
      checkb "unparseable env disables faults" true (Fault.active () = []);
      checki "no workers crashed" 0 (Fault.crash_workers ());
      checkb "no cache corruption" false (Fault.corrupt_cache ()));
  with_fault "exhaust-fds" (fun () ->
      checkb "re-read after change" true
        (Fault.exhaust_fds () <> None && Fault.exhaust_ilp () = None))

(* --- Degradation ladders --- *)

let run_strict ?(policy = F.default_policy) flow d ~rate ?pipe_length () =
  let spec = F.spec_of_design ?pipe_length ~flow d ~rate in
  Mcs_check.run ~level:Pass.Strict ~policy flow spec

(* Under [Strict] checking, [Ok r] means every phase artifact and the
   final result passed the checker; degraded results must clear the same
   bar. *)
let expect_degraded name outcome =
  match outcome with
  | Ok r ->
      checkb (name ^ ": degraded") true (F.is_degraded r);
      checkb (name ^ ": checker-clean") true (F.clean r)
  | Error d -> Alcotest.fail (name ^ ": " ^ diag_str d)

let test_ch3_ilp_fault_degrades () =
  (* The bundled budgets sit at the pin-checked minimum, below what
     dedicated buses need, so loosen them: the test is about the ladder,
     not the budgets. *)
  let d = Benchmarks.ar_simple () in
  let spec = F.spec_of_design ~flow:F.Ch3 d ~rate:2 in
  let spec =
    {
      spec with
      F.cons =
        Constraints.with_pins spec.F.cons
          (List.map
             (fun p -> (p, 4096))
             (Mcs_util.Listx.range 0 (Cdfg.n_partitions spec.F.cdfg + 1)));
    }
  in
  with_fault "exhaust-ilp" (fun () ->
      expect_degraded "ch3"
        (Mcs_check.run ~level:Pass.Strict ~policy:F.default_policy F.Ch3 spec))

let test_ch4_heuristic_fault_degrades () =
  with_fault "exhaust-heuristic" (fun () ->
      expect_degraded "ch4"
        (run_strict F.Ch4 (Benchmarks.elliptic ()) ~rate:6 ()))

let test_ch5_fds_fault_degrades () =
  with_fault "exhaust-fds" (fun () ->
      expect_degraded "ch5"
        (run_strict F.Ch5 (Benchmarks.elliptic ()) ~rate:6 ~pipe_length:26 ()))

let test_ch5_hungarian_fault_degrades () =
  with_fault "exhaust-hungarian" (fun () ->
      expect_degraded "ch5"
        (run_strict F.Ch5 (Benchmarks.elliptic ()) ~rate:6 ~pipe_length:26 ()))

let test_ch6_heuristic_fault_degrades () =
  with_fault "exhaust-heuristic" (fun () ->
      expect_degraded "ch6"
        (run_strict F.Ch6 (Benchmarks.elliptic ()) ~rate:6 ()))

let test_no_fallback_is_typed () =
  with_fault "exhaust-fds" (fun () ->
      let policy = { F.default_policy with F.fallback = false } in
      match
        run_strict ~policy F.Ch5 (Benchmarks.elliptic ()) ~rate:6
          ~pipe_length:26 ()
      with
      | Ok _ -> Alcotest.fail "fallback disabled, yet the flow completed"
      | Error d ->
          checkb "typed exhaustion diagnostic" true
            (d.Diag.code = Diag.Exhausted))

let test_default_policy_unaffected_by_ladder () =
  (* No budget, no fault: results must be bit-identical with and without
     an explicit policy (the engine cache and CI determinism depend on
     it). *)
  let d = Benchmarks.ar_general () in
  let go policy =
    match run_strict ~policy F.Ch4 d ~rate:3 () with
    | Ok r -> (r.F.pins, r.F.pipe_length, r.F.degraded)
    | Error d -> Alcotest.fail (diag_str d)
  in
  checkb "policy-less run identical" true
    (go F.default_policy = go { F.default_policy with F.exact_first = false })

(* --- The invariant, fuzzed ---

   Any flow on any design under any fault mode and a 50 ms deadline
   terminates with a checker-clean (possibly degraded) result or a typed
   diagnostic — never an exception. *)

let fault_modes =
  [ ""; "exhaust-ilp"; "exhaust-fds"; "exhaust-heuristic"; "exhaust-hungarian" ]

let fuzz_resilience seed =
  let flow = List.nth F.all (seed mod 4) in
  let fault = List.nth fault_modes (seed mod List.length fault_modes) in
  let design =
    match flow with
    | F.Ch3 ->
        Job.resolve
          (Job.Random_simple
             { seed; n_partitions = 2 + (seed mod 3); ops_per_chip = 3 + (seed mod 3) })
    | _ ->
        Job.resolve
          (Job.Random
             { seed; n_partitions = 2 + (seed mod 3); n_ops = 8 + (seed mod 9) })
  in
  match design with
  | Error _ -> true
  | Ok d ->
      with_fault fault (fun () ->
          let policy =
            { F.default_policy with F.budget = B.make ~deadline_ms:50. () }
          in
          let spec = F.spec_of_design ~flow d ~rate:4 in
          match Mcs_check.run ~level:Pass.Strict ~policy flow spec with
          | Ok r -> F.clean r
          | Error _ -> true (* typed diagnostic: acceptable *)
          | exception e ->
              Printf.eprintf "fuzz seed %d (%s, MCS_FAULT=%s): raised %s\n%!"
                seed (F.name_to_string flow) fault (Printexc.to_string e);
              false)

let prop_resilience =
  QCheck.Test.make
    ~name:"any flow, any fault, 50ms deadline: clean result or typed diag"
    ~count:40
    QCheck.(int_range 1 10_000)
    fuzz_resilience

(* --- Engine: cache quarantine, corrupt-cache fault, pool retry --- *)

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mcs-resilience-test-%d-%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir dir 0o755;
    dir

let job ?(rate = 3) () =
  Job.make ~design:(Job.Named "ar-general") ~flow:Job.Ch4_unidir ~rate ()

let outcome j =
  {
    Outcome.job = j;
    status = Outcome.Feasible;
    pins = [ (0, 8); (1, 16) ];
    pipe_length = 7;
    fu_count = 4;
    check = None;
    degraded = [];
    solver = None;
    refine = None;
  }

let test_cache_quarantines_corrupt_entry () =
  let c = Cache.open_dir ~version:"test-v1" (tmp_dir ()) in
  let j = job () in
  Cache.store c j (outcome j);
  let path = Cache.entry_path c j in
  let oc = open_out_bin path in
  output_string oc "{ not an entry";
  close_out oc;
  let q = counter "engine.cache.quarantined" in
  checkb "corrupt entry is a miss" true (Cache.lookup c j = None);
  checki "quarantine counted" (q + 1) (counter "engine.cache.quarantined");
  checkb "entry moved aside" false (Sys.file_exists path);
  checkb "quarantine file kept for forensics" true
    (Sys.file_exists (path ^ ".bad"));
  (* A quarantined slot must be writable again. *)
  Cache.store c j (outcome j);
  checkb "slot reusable after quarantine" true (Cache.lookup c j <> None)

let test_corrupt_cache_fault () =
  let c = Cache.open_dir ~version:"test-v1" (tmp_dir ()) in
  let j = job () in
  with_fault "corrupt-cache" (fun () -> Cache.store c j (outcome j));
  let q = counter "engine.cache.quarantined" in
  checkb "corrupted store reads as miss" true (Cache.lookup c j = None);
  checki "and is quarantined" (q + 1) (counter "engine.cache.quarantined")

let synthetic_worker (j : Job.t) = outcome j

let test_pool_retry_after_crash_fault () =
  let jobs = [ job ~rate:1 (); job ~rate:2 () ] in
  (* Without retry: the injected crash surfaces as a Crashed outcome. *)
  with_fault "crash-worker:1" (fun () ->
      match Pool.run ~jobs:1 ~worker:synthetic_worker jobs with
      | [ o1; o2 ] ->
          checkb "first job crashed" true
            (match o1.Outcome.status with Outcome.Crashed _ -> true | _ -> false);
          checkb "second job fine" true (o2.Outcome.status = Outcome.Feasible)
      | _ -> Alcotest.fail "two outcomes expected");
  (* With retry: the job is re-forked once and succeeds. *)
  with_fault "crash-worker:1" (fun () ->
      let retries = counter "engine.pool.retries" in
      match Pool.run ~jobs:1 ~retry:true ~worker:synthetic_worker jobs with
      | [ o1; o2 ] ->
          checkb "first job recovered" true (o1.Outcome.status = Outcome.Feasible);
          checkb "second job fine" true (o2.Outcome.status = Outcome.Feasible);
          checki "retry counted" (retries + 1) (counter "engine.pool.retries")
      | _ -> Alcotest.fail "two outcomes expected")

let suite =
  ( "resilience",
    [
      Alcotest.test_case "budget limits and halving" `Quick test_budget_limits;
      Alcotest.test_case "simplex pivot budget" `Quick test_simplex_pivot_budget;
      Alcotest.test_case "branch & bound node budget" `Quick
        test_branch_bound_node_budget;
      Alcotest.test_case "FDS pass budget" `Quick test_fds_pass_budget;
      Alcotest.test_case "Hungarian augment budget" `Quick
        test_hungarian_augment_budget;
      Alcotest.test_case "MCS_FAULT grammar" `Quick test_fault_parse;
      Alcotest.test_case "unparseable MCS_FAULT disables faults" `Quick
        test_fault_env_unparseable_disables;
      Alcotest.test_case "ch3: ILP fault degrades to Theorem 3.1" `Quick
        test_ch3_ilp_fault_degrades;
      Alcotest.test_case "ch4: heuristic fault degrades to dedicated buses"
        `Quick test_ch4_heuristic_fault_degrades;
      Alcotest.test_case "ch5: FDS fault degrades to list scheduling" `Quick
        test_ch5_fds_fault_degrades;
      Alcotest.test_case "ch5: Hungarian fault degrades to unmerged cliques"
        `Quick test_ch5_hungarian_fault_degrades;
      Alcotest.test_case "ch6: search fault degrades to dedicated buses"
        `Quick test_ch6_heuristic_fault_degrades;
      Alcotest.test_case "--no-fallback yields a typed diagnostic" `Quick
        test_no_fallback_is_typed;
      Alcotest.test_case "default policy changes nothing" `Quick
        test_default_policy_unaffected_by_ladder;
      Alcotest.test_case "cache quarantines corrupt entries" `Quick
        test_cache_quarantines_corrupt_entry;
      Alcotest.test_case "corrupt-cache fault is contained" `Quick
        test_corrupt_cache_fault;
      Alcotest.test_case "pool retries crashed jobs once" `Quick
        test_pool_retry_after_crash_fault;
    ]
    @ [ QCheck_alcotest.to_alcotest prop_resilience ] )

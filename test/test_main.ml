let () =
  Alcotest.run "mcs"
    [
      Suite_util.suite;
      Suite_graph.suite;
      Suite_ilp.suite;
      Suite_cdfg.suite;
      Suite_sched.suite;
      Suite_connect.suite;
      Suite_core.suite;
      Suite_sim.suite;
      Suite_rtl.suite;
      Suite_partition.suite;
      Suite_integration.suite;
      Suite_obs.suite;
      Suite_engine.suite;
      Suite_resilience.suite;
      Suite_check.suite;
      Suite_refine.suite;
      Suite_prof.suite;
      Suite_server.suite;
      (* Last: chaos tests spawn domains freely and must never fork. *)
      Suite_chaos.suite;
    ]

(* Tests for Mcs_server: wire-protocol codec round-trips (qcheck over
   mcs-job/1 submissions), an in-process daemon exercised over its real
   Unix socket (typed deadline exhaustion, coalescing bit-identity,
   graceful shutdown draining, injected worker crashes), and the
   domain-safety regressions the daemon relies on: two domains
   hammering one cache key, and run_local/run mode equivalence. *)

module Job = Mcs_engine.Job
module Outcome = Mcs_engine.Outcome
module Pool = Mcs_engine.Pool
module Cache = Mcs_engine.Cache
module M = Mcs_obs.Metrics
module J = Mcs_obs.Report_json
module P = Mcs_server.Protocol
module Server = Mcs_server.Server
module Client = Mcs_server.Client

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let counter name = M.count (M.counter name)

let tmp_name =
  let n = ref 0 in
  fun suffix ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcs-server-test-%d-%d.%s" (Unix.getpid ()) !n suffix)

let tmp_dir () =
  let dir = tmp_name "d" in
  Unix.mkdir dir 0o755;
  dir

(* Cheap deterministic jobs so daemon tests run in milliseconds. *)
let rjob ?(rate = 2) seed =
  Job.make
    ~design:(Job.Random_simple { seed; n_partitions = 2; ops_per_chip = 3 })
    ~flow:Job.Ch3 ~rate ()

let sub ?deadline_ms ?(fallback = true) id job =
  { P.id; job; deadline_ms; fallback }

let job ?pipe_length ?(design = Job.Named "ar-general")
    ?(flow = Job.Ch4_unidir) ?(rate = 3) () =
  Job.make ?pipe_length ~design ~flow ~rate ()

let outcome ?(status = Outcome.Feasible) ?(pins = [ (0, 8); (1, 16) ])
    ?(pipe_length = 7) ?(fu_count = 4) ?check j =
  {
    Outcome.job = j;
    status;
    pins;
    pipe_length;
    fu_count;
    check;
    degraded = [];
    solver = None;
    refine = None;
  }

let synthetic_worker (j : Job.t) =
  outcome ~pins:[ (1, j.Job.rate) ] ~pipe_length:j.Job.rate ~fu_count:1 j

(* Run a daemon on its own socket in a spawned domain; always drain it
   (if the test has not already) and join before returning. *)
let with_server ?(domains = 2) ?(window_ms = 5.0) ?cache_dir f =
  let sock = tmp_name "sock" in
  let config =
    {
      Server.default_config with
      Server.socket_path = sock;
      domains;
      window_ms;
      cache_dir;
    }
  in
  let t = Server.create ~config () in
  let d = Domain.spawn (fun () -> Server.serve t) in
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Client.connect_unix sock in
         ignore (Client.shutdown c);
         Client.close c
       with _ -> () (* test already shut it down; socket is gone *));
      Domain.join d)
    (fun () -> f sock)

(* --- protocol codec --- *)

let test_protocol_corners () =
  (* Bare canonical job lines are accepted without JSON wrapping. *)
  (match P.request_of_string "mcs-job/1|ar-general|ch4-unidir|r3|pl-" with
  | Ok (P.Submit s) ->
      checks "bare line id" "" s.P.id;
      checkb "bare line fallback" true s.P.fallback;
      checkb "bare line deadline" true (s.P.deadline_ms = None);
      checks "bare line job" "mcs-job/1|ar-general|ch4-unidir|r3|pl-"
        (Job.to_string s.P.job)
  | Ok _ -> Alcotest.fail "bare job line should be a submission"
  | Error m -> Alcotest.fail m);
  let bad s =
    match P.request_of_string s with Ok _ -> false | Error _ -> true
  in
  checkb "empty line rejected" true (bad "");
  checkb "versionless JSON rejected" true (bad "{}");
  checkb "wrong version rejected" true
    (bad "{\"v\": \"mcs-req/9\", \"stats\": true}");
  checkb "bad bare job rejected" true (bad "mcs-job/1|ar-general|ch9|r3|pl-");
  (* Control requests round-trip. *)
  List.iter
    (fun req ->
      match P.request_of_string (P.request_to_string req) with
      | Ok req' -> checkb "control round-trips" true (req = req')
      | Error m -> Alcotest.fail m)
    [ P.Stats_req; P.Shutdown_req ];
  (* Farewell round-trips; junk responses are typed errors. *)
  (match P.response_of_string (P.response_to_string (P.Bye { drained = 3 })) with
  | Ok (P.Bye { drained }) -> checki "bye drained" 3 drained
  | Ok _ -> Alcotest.fail "expected a Bye"
  | Error m -> Alcotest.fail m);
  checkb "versionless response rejected" true
    (match P.response_of_string "{\"id\": \"x\"}" with
    | Error _ -> true
    | Ok _ -> false)

let submit_gen =
  let open QCheck.Gen in
  let design =
    frequency
      [
        ( 3,
          oneofl [ "ar-simple"; "ar-general"; "elliptic"; "cond-demo" ]
          >|= fun s -> Job.Named s );
        ( 1,
          map3
            (fun seed n_partitions n_ops ->
              Job.Random { seed; n_partitions; n_ops })
            (int_range (-50) 50) (int_range 1 5) (int_range 1 40) );
        ( 1,
          map3
            (fun seed n_partitions ops_per_chip ->
              Job.Random_simple { seed; n_partitions; ops_per_chip })
            (int_range (-50) 50) (int_range 1 5) (int_range 1 10) );
      ]
  in
  let jg =
    map
      (fun (design, flow, rate, pipe_length) ->
        Job.make ?pipe_length ~design ~flow ~rate ())
      (tup4 design (oneofl Job.all_flows) (int_range 1 12)
         (opt (int_range 1 40)))
  in
  map
    (fun (job, id, deadline, fallback) ->
      {
        P.id = (match id with None -> "" | Some n -> Printf.sprintf "id%d" n);
        job;
        (* Integer-valued deadlines keep the float codec exact. *)
        deadline_ms = Option.map float_of_int deadline;
        fallback;
      })
    (tup4 jg (opt (int_range 0 999)) (opt (int_range 1 100_000)) bool)

let submit_print (s : P.submit) = P.request_to_string (P.Submit s)

let prop_submit_roundtrip =
  QCheck.Test.make ~name:"Protocol submit round-trip" ~count:300
    (QCheck.make ~print:submit_print submit_gen)
    (fun s ->
      match P.request_of_string (P.request_to_string (P.Submit s)) with
      | Ok (P.Submit s') ->
          s.P.id = s'.P.id
          && Job.equal s.P.job s'.P.job
          && s.P.deadline_ms = s'.P.deadline_ms
          && s.P.fallback = s'.P.fallback
      | Ok _ | Error _ -> false)

let test_response_roundtrip () =
  let reply_eq (a : P.reply) (b : P.reply) =
    a.P.id = b.P.id
    && Option.equal Outcome.equal a.P.outcome b.P.outcome
    && a.P.diag = b.P.diag
    && a.P.cached = b.P.cached
    && a.P.coalesced = b.P.coalesced
    && a.P.wall_ms = b.P.wall_ms
  in
  List.iter
    (fun r ->
      match P.response_of_string (P.response_to_string (P.Reply r)) with
      | Ok (P.Reply r') -> checkb "reply round-trips" true (reply_eq r r')
      | Ok _ -> Alcotest.fail "expected a Reply"
      | Error m -> Alcotest.fail m)
    [
      {
        P.id = "a";
        outcome = Some (outcome (job ()));
        diag = None;
        cached = true;
        coalesced = false;
        wall_ms = 12.5;
      };
      {
        P.id = "b";
        outcome = None;
        diag = Some (P.exhausted_diag ~phase:"serve.deadline" "too late");
        cached = false;
        coalesced = true;
        wall_ms = 0.0;
      };
      {
        P.id = "";
        outcome =
          Some
            (outcome ~status:(Outcome.Infeasible "no schedule") ~pins:[]
               ~pipe_length:0 ~fu_count:0 (job ~rate:9 ()));
        diag =
          Some { P.code = "unschedulable"; phase = "sched"; message = "r9" };
        cached = false;
        coalesced = false;
        wall_ms = 250.0;
      };
    ]

(* --- domain-safety regressions --- *)

(* Two domains hammering one cache key: with per-entry bucket locks a
   lookup after the first store can never see a torn or quarantined
   entry (pre-lock, colliding temp files corrupted entries and the
   stale counter climbed). *)
let test_cache_domain_safety () =
  let c = Cache.open_dir (tmp_dir ()) in
  let j = job () in
  let o = outcome j in
  let stale0 = counter "engine.cache.stale" in
  let bad = Atomic.make 0 in
  let hammer () =
    for _ = 1 to 200 do
      Cache.store c j o;
      match Cache.lookup c j with
      | Some o' -> if not (Outcome.equal o o') then Atomic.incr bad
      | None -> Atomic.incr bad
    done
  in
  let d1 = Domain.spawn hammer in
  let d2 = Domain.spawn hammer in
  Domain.join d1;
  Domain.join d2;
  checki "no torn or missing reads" 0 (Atomic.get bad);
  checki "no entries went stale" stale0 (counter "engine.cache.stale")

let test_run_local_matches_run () =
  let jobs = List.init 4 (fun i -> rjob ~rate:(i + 1) 7) in
  let forked = Pool.run ~jobs:2 ~worker:synthetic_worker jobs in
  let local = Pool.run_local ~worker:synthetic_worker jobs in
  checkb "run and run_local agree" true
    (List.equal Outcome.equal forked local)

let test_run_local_shares_cache_with_run () =
  let cache = Cache.open_dir (tmp_dir ()) in
  let jobs = List.init 3 (fun i -> rjob ~rate:(i + 1) 8) in
  let hits0 = counter "engine.cache.hits" in
  let cold = Pool.run_local ~cache ~worker:synthetic_worker jobs in
  let warm = Pool.run ~jobs:2 ~cache ~worker:synthetic_worker jobs in
  checkb "warm run equals cold" true (List.equal Outcome.equal cold warm);
  checki "warm run was all cache hits" (hits0 + List.length jobs)
    (counter "engine.cache.hits")

(* --- the daemon over its socket --- *)

let test_deadline_exhausted () =
  with_server ~window_ms:30.0 @@ fun sock ->
  let c = Client.connect_unix sock in
  (* A 0.01 ms deadline is guaranteed dead by the time the 30 ms
     batching window flushes, so the typed answer is deterministic. *)
  match
    Client.submit_all c
      [ sub ~deadline_ms:0.01 ~fallback:false "dl" (rjob 3) ]
  with
  | Error m -> Alcotest.fail m
  | Ok [ r ] ->
      checks "reply id" "dl" r.P.id;
      checkb "no outcome" true (r.P.outcome = None);
      (match r.P.diag with
      | Some d ->
          checks "typed exhausted" "exhausted" d.P.code;
          checks "deadline phase" "serve.deadline" d.P.phase
      | None -> Alcotest.fail "expected a typed diagnostic");
      Client.close c
  | Ok rs -> Alcotest.failf "expected one reply, got %d" (List.length rs)

let test_coalesce_bit_identical () =
  with_server ~window_ms:250.0 @@ fun sock ->
  let c = Client.connect_unix sock in
  let j = rjob ~rate:3 31 in
  match Client.submit_all c [ sub "a" j; sub "b" j ] with
  | Error m -> Alcotest.fail m
  | Ok ([ ra; rb ] as rs) ->
      checki "exactly one reply is coalesced" 1
        (List.length (List.filter (fun r -> r.P.coalesced) rs));
      (match (ra.P.outcome, rb.P.outcome) with
      | Some oa, Some ob ->
          checks "coalesced replies bit-identical" (Outcome.to_string oa)
            (Outcome.to_string ob);
          (* The solver-effort stats depend on the warm-start registry
             contents at solve time (a steered search certifies fewer
             bases), and the solo run here sits in a different warm
             context than the daemon's batch — so compare the result,
             not the effort. *)
          let result o = Outcome.to_string { o with Outcome.solver = None } in
          checks "and identical to a solo run" (result (Pool.exec j))
            (result oa)
      | _ -> Alcotest.fail "expected outcomes on both replies");
      Client.close c
  | Ok rs -> Alcotest.failf "expected two replies, got %d" (List.length rs)

let test_shutdown_drains_inflight () =
  with_server ~domains:1 ~window_ms:400.0 @@ fun sock ->
  let a = Client.connect_unix sock in
  let b = Client.connect_unix sock in
  Client.send a (P.submit ~id:"drain1" (rjob 11));
  (* The stats round-trip on the same connection proves the submission
     was admitted (and still sits in its batching window) before the
     other client asks for shutdown. *)
  (match Client.stats a with
  | Ok j ->
      checki "job is queued in its window" 1
        (Option.value ~default:(-1)
           (Option.bind (J.member "queue_depth" j) J.to_int))
  | Error m -> Alcotest.fail m);
  (match Client.shutdown b with
  | Ok drained -> checkb "shutdown drained the in-flight job" true (drained >= 1)
  | Error m -> Alcotest.fail m);
  (match Client.recv a with
  | Ok (P.Reply r) ->
      checks "drained job still replied" "drain1" r.P.id;
      checkb "with a real outcome" true (r.P.outcome <> None)
  | Ok _ -> Alcotest.fail "expected the drained job's reply"
  | Error m -> Alcotest.fail m);
  Client.close a;
  Client.close b

let test_crash_fault_keeps_serving () =
  Unix.putenv "MCS_FAULT" "crash-worker:1";
  Fun.protect ~finally:(fun () -> Unix.putenv "MCS_FAULT" "") @@ fun () ->
  with_server ~domains:2 ~window_ms:5.0 @@ fun sock ->
  let c = Client.connect_unix sock in
  let crashed (r : P.reply) =
    match r.P.outcome with
    | Some o -> (
        match o.Outcome.status with Outcome.Crashed _ -> true | _ -> false)
    | None -> false
  in
  (match
     Client.submit_all c [ sub "f1" (rjob 21); sub "f2" (rjob 22); sub "f3" (rjob 23) ]
   with
  | Error m -> Alcotest.fail m
  | Ok rs ->
      checki "exactly one injected crash" 1
        (List.length (List.filter crashed rs)));
  (* The domain survived the injected crash: the daemon keeps serving. *)
  (match Client.submit_all c [ sub "f4" (rjob 24) ] with
  | Error m -> Alcotest.fail m
  | Ok [ r ] ->
      checkb "subsequent job is clean" false (crashed r);
      checkb "and has an outcome" true (r.P.outcome <> None)
  | Ok rs -> Alcotest.failf "expected one reply, got %d" (List.length rs));
  Client.close c

let suite =
  ( "server",
    [
      Alcotest.test_case "protocol request corners" `Quick
        test_protocol_corners;
      Alcotest.test_case "reply JSON round-trip" `Quick
        test_response_roundtrip;
      (* The two fork-based mode-equivalence tests must precede every
         test that spawns a domain: once a domain has ever existed the
         OCaml 5 runtime refuses Unix.fork for the process's lifetime. *)
      Alcotest.test_case "run_local matches forked run" `Quick
        test_run_local_matches_run;
      Alcotest.test_case "run_local shares a cache with run" `Quick
        test_run_local_shares_cache_with_run;
      Alcotest.test_case "cache survives two domains on one key" `Quick
        test_cache_domain_safety;
      Alcotest.test_case "expired deadline gets typed exhausted" `Quick
        test_deadline_exhausted;
      Alcotest.test_case "coalesced jobs are bit-identical" `Quick
        test_coalesce_bit_identical;
      Alcotest.test_case "graceful shutdown drains in-flight" `Quick
        test_shutdown_drains_inflight;
      Alcotest.test_case "crash-worker fault leaves daemon serving" `Quick
        test_crash_fault_keeps_serving;
    ]
    @ List.map QCheck_alcotest.to_alcotest [ prop_submit_roundtrip ] )

(* Tests for Mcs_engine: job codec round-trips, pool determinism across
   worker counts, crash isolation, timeouts, cache behavior (hit /
   version-bump miss / corruption-as-miss) and Pareto extraction. *)

module Job = Mcs_engine.Job
module Outcome = Mcs_engine.Outcome
module Pool = Mcs_engine.Pool
module Cache = Mcs_engine.Cache
module Pareto = Mcs_engine.Pareto
module M = Mcs_obs.Metrics

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let counter name = M.count (M.counter name)

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mcs-engine-test-%d-%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir dir 0o755;
    dir

let job ?pipe_length ?(design = Job.Named "ar-general") ?(flow = Job.Ch4_unidir)
    ?(rate = 3) () =
  Job.make ?pipe_length ~design ~flow ~rate ()

let outcome ?(status = Outcome.Feasible) ?(pins = [ (0, 8); (1, 16) ])
    ?(pipe_length = 7) ?(fu_count = 4) ?check j =
  {
    Outcome.job = j;
    status;
    pins;
    pipe_length;
    fu_count;
    check;
    degraded = [];
    solver = None;
    refine = None;
  }

(* --- Job codec --- *)

let test_job_encoding () =
  checks "named encoding"
    "mcs-job/1|ar-general|ch5|r4|pl8"
    (Job.to_string (job ~flow:Job.Ch5 ~rate:4 ~pipe_length:8 ()));
  checks "random encoding"
    "mcs-job/1|random:7:3:14|ch4-bidir|r3|pl-"
    (Job.to_string
       (job ~design:(Job.Random { seed = 7; n_partitions = 3; n_ops = 14 })
          ~flow:Job.Ch4_bidir ()));
  (* make canonicalizes: a pipe length is meaningless outside ch5 *)
  checks "pl dropped off ch5"
    "mcs-job/1|elliptic|ch6|r5|pl-"
    (Job.to_string (job ~design:(Job.Named "elliptic") ~flow:Job.Ch6 ~rate:5
                      ~pipe_length:9 ()))

let test_job_decoding_rejects () =
  let bad s =
    match Job.of_string s with Ok _ -> false | Error _ -> true
  in
  checkb "bad magic" true (bad "mcs-job/2|ar-general|ch4-unidir|r3|pl-");
  checkb "bad flow" true (bad "mcs-job/1|ar-general|ch9|r3|pl-");
  checkb "bad rate" true (bad "mcs-job/1|ar-general|ch4-unidir|r0|pl-");
  checkb "pl on non-ch5" true (bad "mcs-job/1|ar-general|ch4-unidir|r3|pl7");
  checkb "bad design chars" true (bad "mcs-job/1|a b|ch4-unidir|r3|pl-");
  checkb "bad random params" true (bad "mcs-job/1|random:1:2|ch5|r3|pl-");
  checkb "good survives" false (bad "mcs-job/1|rsimple:-4:2:5|ch3|r2|pl-")

let job_gen =
  let open QCheck.Gen in
  let design =
    frequency
      [
        ( 3,
          oneofl
            [ "ar-simple"; "ar-general"; "elliptic"; "cond-demo"; "x_1-Y" ]
          >|= fun s -> Job.Named s );
        ( 1,
          map3
            (fun seed n_partitions n_ops ->
              Job.Random { seed; n_partitions; n_ops })
            (int_range (-50) 50) (int_range 1 5) (int_range 1 40) );
        ( 1,
          map3
            (fun seed n_partitions ops_per_chip ->
              Job.Random_simple { seed; n_partitions; ops_per_chip })
            (int_range (-50) 50) (int_range 1 5) (int_range 1 10) );
      ]
  in
  let flow = oneofl Job.all_flows in
  let pl = opt (int_range 1 40) in
  map
    (fun (design, flow, rate, pipe_length) ->
      Job.make ?pipe_length ~design ~flow ~rate ())
    (tup4 design flow (int_range 1 12) pl)

let prop_job_roundtrip =
  QCheck.Test.make ~name:"Job.to_string/of_string round-trip" ~count:500
    (QCheck.make ~print:Job.to_string job_gen)
    (fun j ->
      match Job.of_string (Job.to_string j) with
      | Ok j' -> Job.equal j j'
      | Error _ -> false)

(* --- Outcome codec --- *)

let test_outcome_roundtrip () =
  List.iter
    (fun o ->
      match Outcome.of_string (Outcome.to_string o) with
      | Ok o' -> checkb "round-trips" true (Outcome.equal o o')
      | Error m -> Alcotest.fail m)
    [
      outcome (job ());
      outcome ~status:(Outcome.Infeasible "no schedule at rate 3") ~pins:[]
        ~pipe_length:0 ~fu_count:0
        (job ~flow:Job.Ch5 ~rate:3 ~pipe_length:6 ());
      outcome ~status:(Outcome.Crashed "worker killed by signal 9") ~pins:[]
        (job ~rate:7 ());
      outcome ~status:Outcome.Timed_out ~pins:[] (job ~flow:Job.Ch6 ());
      outcome ~check:Outcome.Clean (job ());
      outcome ~check:(Outcome.Violations 2) (job ~flow:Job.Ch3 ());
    ]

(* --- Pool --- *)

(* Workers that never touch the real flows let the pool mechanics be
   tested deterministically and fast. *)
let synthetic_worker (j : Job.t) =
  outcome ~pins:[ (1, j.Job.rate) ] ~pipe_length:j.Job.rate ~fu_count:1 j

let test_pool_order_independent_of_completion () =
  let jobs = List.init 5 (fun i -> job ~rate:(i + 1) ()) in
  (* Earlier-submitted jobs sleep longer, so completion order is the
     reverse of submission order. *)
  let worker (j : Job.t) =
    Unix.sleepf (0.02 *. float_of_int (6 - j.Job.rate));
    synthetic_worker j
  in
  let results = Pool.run ~jobs:5 ~worker jobs in
  checki "five results" 5 (List.length results);
  List.iteri
    (fun i (o : Outcome.t) ->
      checki "submission order kept" (i + 1) o.Outcome.job.Job.rate;
      checkb "feasible" true (Outcome.is_feasible o))
    results

let test_pool_crash_isolation () =
  let jobs = List.init 3 (fun i -> job ~rate:(i + 1) ()) in
  let worker (j : Job.t) =
    if j.Job.rate = 2 then Unix._exit 9 else synthetic_worker j
  in
  let before = counter "engine.pool.crashes" in
  let results = Pool.run ~jobs:2 ~worker jobs in
  checki "crash counted" (before + 1) (counter "engine.pool.crashes");
  match results with
  | [ a; b; c ] ->
      checkb "first survives" true (Outcome.is_feasible a);
      (match b.Outcome.status with
      | Outcome.Crashed m ->
          checkb "exit code reported" true
            (m = "worker exited with code 9")
      | _ -> Alcotest.fail "expected a crashed outcome");
      checkb "third survives" true (Outcome.is_feasible c)
  | _ -> Alcotest.fail "expected three results"

let test_pool_timeout () =
  let jobs = [ job ~rate:1 (); job ~rate:2 () ] in
  let worker (j : Job.t) =
    if j.Job.rate = 1 then Unix.sleep 30;
    synthetic_worker j
  in
  let before = counter "engine.pool.timeouts" in
  let t0 = Unix.gettimeofday () in
  let results = Pool.run ~jobs:2 ~timeout:0.2 ~worker jobs in
  checkb "did not wait for the sleeper" true (Unix.gettimeofday () -. t0 < 10.0);
  checki "timeout counted" (before + 1) (counter "engine.pool.timeouts");
  match results with
  | [ a; b ] ->
      checkb "sleeper timed out" true (a.Outcome.status = Outcome.Timed_out);
      checkb "other survives" true (Outcome.is_feasible b)
  | _ -> Alcotest.fail "expected two results"

(* Real flows on random designs: one worker and four workers must agree
   exactly (result lists, not just sets). *)
let prop_pool_worker_count_invariant =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        [
          Job.make
            ~design:(Job.Random_simple
                       { seed; n_partitions = 2; ops_per_chip = 3 })
            ~flow:Job.Ch3 ~rate:3 ();
          Job.make
            ~design:(Job.Random { seed; n_partitions = 2; n_ops = 10 })
            ~flow:Job.Ch4_unidir ~rate:3 ();
          Job.make
            ~design:(Job.Random { seed; n_partitions = 3; n_ops = 12 })
            ~flow:Job.Ch4_bidir ~rate:4 ();
          Job.make
            ~design:(Job.Random { seed; n_partitions = 2; n_ops = 10 })
            ~flow:Job.Ch6 ~rate:4 ();
        ])
      (QCheck.Gen.int_range 0 1000)
  in
  QCheck.Test.make ~name:"Pool.run ~jobs:1 == Pool.run ~jobs:4" ~count:4
    (QCheck.make
       ~print:(fun js -> String.concat "; " (List.map Job.to_string js))
       gen)
    (fun jobs ->
      let seq = Pool.run ~jobs:1 jobs in
      let par = Pool.run ~jobs:4 jobs in
      List.length seq = List.length par
      && List.for_all2 Outcome.equal seq par)

(* --- Cache --- *)

let test_cache_hit_on_identical_job () =
  let c = Cache.open_dir ~version:"test-v1" (tmp_dir ()) in
  let j = job ~rate:4 () in
  let o = outcome j in
  checkb "cold lookup misses" true (Cache.lookup c j = None);
  Cache.store c j o;
  let hits = counter "engine.cache.hits" in
  (match Cache.lookup c j with
  | Some o' -> checkb "stored outcome returned" true (Outcome.equal o o')
  | None -> Alcotest.fail "expected a hit");
  checki "hit counted" (hits + 1) (counter "engine.cache.hits");
  (* a different job misses even with the cache warm *)
  checkb "different job misses" true (Cache.lookup c (job ~rate:5 ()) = None)

let test_cache_miss_after_version_bump () =
  let dir = tmp_dir () in
  let j = job () in
  let c1 = Cache.open_dir ~version:"test-v1" dir in
  Cache.store c1 j (outcome j);
  checkb "v1 hits" true (Cache.lookup c1 j <> None);
  let c2 = Cache.open_dir ~version:"test-v2" dir in
  let misses = counter "engine.cache.misses" in
  checkb "v2 misses" true (Cache.lookup c2 j = None);
  checki "counted as a miss, not stale" (misses + 1)
    (counter "engine.cache.misses")

let test_cache_corrupt_entry_is_miss () =
  let c = Cache.open_dir ~version:"test-v1" (tmp_dir ()) in
  let j = job () in
  Cache.store c j (outcome j);
  let oc = open_out_bin (Cache.entry_path c j) in
  output_string oc "{ not an entry";
  close_out oc;
  let stale = counter "engine.cache.stale" in
  checkb "corrupt entry treated as miss" true (Cache.lookup c j = None);
  checki "counted stale" (stale + 1) (counter "engine.cache.stale")

let test_cache_skips_unsettled_outcomes () =
  let c = Cache.open_dir ~version:"test-v1" (tmp_dir ()) in
  let j = job () in
  Cache.store c j (outcome ~status:(Outcome.Crashed "boom") ~pins:[] j);
  checkb "crash not stored" true (Cache.lookup c j = None);
  Cache.store c j (outcome ~status:Outcome.Timed_out ~pins:[] j);
  checkb "timeout not stored" true (Cache.lookup c j = None);
  Cache.store c j (outcome ~status:(Outcome.Infeasible "no schedule") ~pins:[] j);
  checkb "infeasible is settled and stored" true (Cache.lookup c j <> None)

let test_pool_uses_cache () =
  let c = Cache.open_dir ~version:"test-v1" (tmp_dir ()) in
  let jobs = List.init 3 (fun i -> job ~rate:(i + 1) ()) in
  let forks = counter "engine.pool.forks" in
  let cold = Pool.run ~jobs:2 ~cache:c ~worker:synthetic_worker jobs in
  checki "cold run forks every job" (forks + 3) (counter "engine.pool.forks");
  let hits = counter "engine.cache.hits" in
  let warm =
    Pool.run ~jobs:2 ~cache:c
      ~worker:(fun _ -> Alcotest.fail "warm run must not execute")
      jobs
  in
  checki "warm run hits every job" (hits + 3) (counter "engine.cache.hits");
  checki "warm run forks nothing" (forks + 3) (counter "engine.pool.forks");
  checkb "warm equals cold" true (List.for_all2 Outcome.equal cold warm)

(* --- Pareto --- *)

let test_pareto_frontier () =
  let o rate pins pipe fus =
    outcome ~pins:[ (1, pins) ] ~pipe_length:pipe ~fu_count:fus
      (job ~rate ())
  in
  let dominated = o 1 100 10 5 in
  let a = o 2 80 10 5 in
  let b = o 3 100 8 5 in
  let infeasible =
    outcome ~status:(Outcome.Infeasible "x") ~pins:[] ~pipe_length:0
      ~fu_count:0 (job ~rate:4 ())
  in
  let front = Pareto.frontier [ dominated; a; b; infeasible ] in
  checki "two undominated points" 2 (List.length front);
  checkb "dominated excluded" true (not (List.memq dominated front));
  checkb "infeasible excluded" true (not (List.memq infeasible front));
  checkb "equal points both survive" true
    (List.length (Pareto.frontier [ a; a ]) = 2);
  match Pareto.best [ dominated; a; b ] `Pipe with
  | Some best -> checki "best pipe" 8 best.Outcome.pipe_length
  | None -> Alcotest.fail "expected a best point"

let test_dse_report_shape () =
  let results =
    [
      outcome (job ~flow:Job.Ch5 ~rate:3 ~pipe_length:7 ());
      outcome ~status:(Outcome.Infeasible "no schedule") ~pins:[]
        ~pipe_length:0 ~fu_count:0 (job ~rate:9 ());
    ]
  in
  let r = Pareto.report results in
  let module J = Mcs_obs.Report_json in
  (match Option.bind (J.member "schema" r) J.to_str with
  | Some s -> checks "schema" "mcs-dse/1" s
  | None -> Alcotest.fail "missing schema");
  (match J.of_string (J.to_string r) with
  | Ok r' -> checkb "report JSON round-trips" true (r = r')
  | Error m -> Alcotest.fail m);
  match Option.bind (J.member "summary" r) (J.member "feasible") with
  | Some (J.Int 1) -> ()
  | _ -> Alcotest.fail "summary.feasible should be 1"

let suite =
  ( "engine",
    [
      Alcotest.test_case "job canonical encoding" `Quick test_job_encoding;
      Alcotest.test_case "job decoder rejects junk" `Quick
        test_job_decoding_rejects;
      Alcotest.test_case "outcome JSON round-trip" `Quick
        test_outcome_roundtrip;
      Alcotest.test_case "pool keeps submission order" `Quick
        test_pool_order_independent_of_completion;
      Alcotest.test_case "pool crash isolation" `Quick
        test_pool_crash_isolation;
      Alcotest.test_case "pool per-job timeout" `Quick test_pool_timeout;
      Alcotest.test_case "cache hit on identical job" `Quick
        test_cache_hit_on_identical_job;
      Alcotest.test_case "cache miss after version bump" `Quick
        test_cache_miss_after_version_bump;
      Alcotest.test_case "cache corrupt entry is a miss" `Quick
        test_cache_corrupt_entry_is_miss;
      Alcotest.test_case "cache skips crashes and timeouts" `Quick
        test_cache_skips_unsettled_outcomes;
      Alcotest.test_case "pool serves warm jobs from cache" `Quick
        test_pool_uses_cache;
      Alcotest.test_case "pareto frontier" `Quick test_pareto_frontier;
      Alcotest.test_case "mcs-dse/1 report shape" `Quick test_dse_report_shape;
    ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_job_roundtrip; prop_pool_worker_count_invariant ] )

(* Unit and property tests for the ILP substrate: exact simplex, Gomory
   cutting planes, branch & bound, and the model builder. *)

module R = Mcs_util.Ratio
open Mcs_ilp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let lp n_vars objective rows =
  {
    Simplex.n_vars;
    objective = Array.map R.of_int (Array.of_list objective);
    rows =
      List.map
        (fun (coefs, rel, b) ->
          (Array.map R.of_int (Array.of_list coefs), rel, R.of_int b))
        rows;
  }

let value = function
  | Simplex.Optimal s -> s.Simplex.value
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_basic () =
  (* max 3x+2y st x+y<=4, x+3y<=6 -> 12 at (4,0) *)
  let p = lp 2 [ 3; 2 ] [ ([ 1; 1 ], Simplex.Le, 4); ([ 1; 3 ], Simplex.Le, 6) ] in
  checkb "value 12" true (R.equal (value (Simplex.solve p)) (R.of_int 12))

let test_simplex_fractional_optimum () =
  (* max x+y st 2x+y<=3, x+2y<=3 -> optimum (1,1) value 2 *)
  let p = lp 2 [ 1; 1 ] [ ([ 2; 1 ], Simplex.Le, 3); ([ 1; 2 ], Simplex.Le, 3) ] in
  checkb "value 2" true (R.equal (value (Simplex.solve p)) (R.of_int 2))

let test_simplex_infeasible () =
  let p = lp 1 [ 1 ] [ ([ 1 ], Simplex.Le, 1); ([ 1 ], Simplex.Ge, 2) ] in
  checkb "infeasible" true (Simplex.solve p = Simplex.Infeasible)

let test_simplex_unbounded () =
  let p = lp 1 [ 1 ] [ ([ -1 ], Simplex.Le, 0) ] in
  checkb "unbounded" true (Simplex.solve p = Simplex.Unbounded)

let test_simplex_equality () =
  (* max x st x + y = 3, y >= 1 -> x = 2 *)
  let p = lp 2 [ 1; 0 ] [ ([ 1; 1 ], Simplex.Eq, 3); ([ 0; 1 ], Simplex.Ge, 1) ] in
  checkb "value 2" true (R.equal (value (Simplex.solve p)) (R.of_int 2))

let test_simplex_degenerate () =
  (* Redundant constraints should not cycle (Bland's rule). *)
  let p =
    lp 2 [ 1; 1 ]
      [
        ([ 1; 0 ], Simplex.Le, 1);
        ([ 1; 0 ], Simplex.Le, 1);
        ([ 0; 1 ], Simplex.Le, 1);
        ([ 1; 1 ], Simplex.Le, 2);
      ]
  in
  checkb "value 2" true (R.equal (value (Simplex.solve p)) (R.of_int 2))

let test_simplex_negative_rhs () =
  (* -x <= -2  <=>  x >= 2; max -x subject to x <= 5. *)
  let p = lp 1 [ -1 ] [ ([ -1 ], Simplex.Le, -2); ([ 1 ], Simplex.Le, 5) ] in
  checkb "value -2" true (R.equal (value (Simplex.solve p)) (R.of_int (-2)))

let test_gomory_knapsack () =
  (* max x+y st 2x+2y <= 5 integer -> 2. *)
  let p = lp 2 [ 1; 1 ] [ ([ 2; 2 ], Simplex.Le, 5) ] in
  match Gomory.solve p with
  | Gomory.Optimal s -> checkb "value 2" true (R.equal s.Simplex.value (R.of_int 2))
  | _ -> Alcotest.fail "gomory failed"

let test_gomory_infeasible () =
  (* 2x = 1 has no integer solution (x in [0,3]). *)
  let p =
    lp 1 [ 0 ] [ ([ 2 ], Simplex.Eq, 1); ([ 1 ], Simplex.Le, 3) ]
  in
  checkb "infeasible" true (Gomory.solve p = Gomory.Infeasible)

let test_bb_matches_gomory () =
  let p =
    lp 2 [ 5; 4 ]
      [ ([ 6; 4 ], Simplex.Le, 24); ([ 1; 2 ], Simplex.Le, 6) ]
  in
  let bb =
    match Branch_bound.solve ~integer:[| true; true |] p with
    | Branch_bound.Optimal s -> s.Simplex.value
    | _ -> Alcotest.fail "bb failed"
  in
  let gm =
    match Gomory.solve p with
    | Gomory.Optimal s -> s.Simplex.value
    | _ -> Alcotest.fail "gomory failed"
  in
  checkb "agree" true (R.equal bb gm)

let test_bb_mixed_integer () =
  (* y continuous: max x + y st x + y <= 5/2, x integer -> x=2, y=1/2. *)
  let p =
    {
      Simplex.n_vars = 2;
      objective = [| R.of_int 1; R.of_int 1 |];
      rows = [ ([| R.of_int 2; R.of_int 2 |], Simplex.Le, R.of_int 5) ];
    }
  in
  match Branch_bound.solve ~integer:[| true; false |] p with
  | Branch_bound.Optimal s ->
      checkb "value 5/2" true (R.equal s.Simplex.value (R.make 5 2))
  | _ -> Alcotest.fail "bb failed"

let test_bb_feasibility () =
  let p = lp 1 [ 0 ] [ ([ 2 ], Simplex.Eq, 1); ([ 1 ], Simplex.Le, 3) ] in
  Alcotest.(check (option bool)) "infeasible" (Some false)
    (Branch_bound.feasible ~integer:[| true |] p);
  let q = lp 1 [ 0 ] [ ([ 2 ], Simplex.Eq, 2) ] in
  Alcotest.(check (option bool)) "feasible" (Some true)
    (Branch_bound.feasible ~integer:[| true |] q)

let test_snapshot_restore () =
  let p =
    lp 2 [ 3; 2 ] [ ([ 1; 1 ], Simplex.Le, 4); ([ 1; 3 ], Simplex.Le, 6) ]
  in
  match Simplex.Tab.of_problem p with
  | `Solved tab ->
      let v () = (Simplex.Tab.solution tab).Simplex.value in
      checkb "root value 12" true (R.equal (v ()) (R.of_int 12));
      let snap = Simplex.Tab.snapshot tab in
      Simplex.Tab.add_row tab [| R.one; R.zero |] Simplex.Le (R.of_int 2);
      (match Simplex.Tab.reoptimize_dual tab with
      | `Ok -> checkb "with x<=2: 26/3" true (R.equal (v ()) (R.make 26 3))
      | `Infeasible -> Alcotest.fail "x<=2 should stay feasible"
      | `Exhausted _ -> Alcotest.fail "unlimited budget exhausted");
      Simplex.Tab.restore tab snap;
      checkb "restored value 12" true (R.equal (v ()) (R.of_int 12));
      (* Re-grow the restored tableau with a contradictory bound: the
         rows discarded by [restore] must not leak back in. *)
      Simplex.Tab.add_row tab [| R.one; R.one |] Simplex.Ge (R.of_int 5);
      checkb "x+y>=5 infeasible" true
        (Simplex.Tab.reoptimize_dual tab = `Infeasible)
  | _ -> Alcotest.fail "root LP should solve"

(* [add_row] + dual re-optimization must agree with a cold solve of the
   extended problem, for every relation kind. *)
let test_add_row_matches_cold () =
  let base =
    lp 2 [ 3; 2 ] [ ([ 1; 1 ], Simplex.Le, 4); ([ 1; 3 ], Simplex.Le, 6) ]
  in
  List.iter
    (fun (name, coefs, rel, b) ->
      let row = (Array.map R.of_int (Array.of_list coefs), rel, R.of_int b) in
      let warm =
        match Simplex.Tab.of_problem base with
        | `Solved tab ->
            let c, r, b = row in
            Simplex.Tab.add_row tab c r b;
            (match Simplex.Tab.reoptimize_dual tab with
            | `Ok -> Simplex.Optimal (Simplex.Tab.solution tab)
            | `Infeasible -> Simplex.Infeasible
            | `Exhausted _ -> Alcotest.fail "unlimited budget exhausted")
        | _ -> Alcotest.fail "base LP should solve"
      in
      let cold =
        Simplex.solve { base with Simplex.rows = base.Simplex.rows @ [ row ] }
      in
      match (warm, cold) with
      | Simplex.Optimal a, Simplex.Optimal b ->
          checkb (name ^ " value agrees") true
            (R.equal a.Simplex.value b.Simplex.value)
      | Simplex.Infeasible, Simplex.Infeasible -> ()
      | _ -> Alcotest.fail (name ^ ": warm and cold disagree"))
    [
      ("le", [ 1; 0 ], Simplex.Le, 2);
      ("ge", [ 0; 1 ], Simplex.Ge, 1);
      ("eq", [ 1; 1 ], Simplex.Eq, 3);
      ("infeasible ge", [ 1; 1 ], Simplex.Ge, 5);
    ]

let test_bb_limit_feasible () =
  (* max 5x+4y st 6x+4y<=24, x+2y<=6: fractional root, integer optimum 20.
     Node counts are deterministic: one node cannot reach an integer
     point, three nodes find one without proving optimality, and the full
     search proves 20. *)
  let p =
    lp 2 [ 5; 4 ] [ ([ 6; 4 ], Simplex.Le, 24); ([ 1; 2 ], Simplex.Le, 6) ]
  in
  let integer = [| true; true |] in
  (match Branch_bound.solve ~max_nodes:1 ~integer p with
  | Branch_bound.Node_limit -> ()
  | _ -> Alcotest.fail "expected Node_limit at 1 node");
  (match Branch_bound.solve ~max_nodes:3 ~integer p with
  | Branch_bound.Limit_feasible s ->
      checkb "integral point" true (Array.for_all R.is_integer s.Simplex.x);
      checkb "at most the optimum" true
        (R.compare s.Simplex.value (R.of_int 20) <= 0)
  | _ -> Alcotest.fail "expected Limit_feasible at 3 nodes");
  (match Branch_bound.solve_cold ~max_nodes:3 ~integer p with
  | Branch_bound.Limit_feasible s ->
      checkb "cold integral point" true
        (Array.for_all R.is_integer s.Simplex.x)
  | _ -> Alcotest.fail "expected cold Limit_feasible at 3 nodes");
  match Branch_bound.solve ~integer p with
  | Branch_bound.Optimal s ->
      checkb "unlimited optimum 20" true (R.equal s.Simplex.value (R.of_int 20))
  | _ -> Alcotest.fail "expected Optimal without a limit"

(* Random small integer programs: BB and Gomory must agree, and the BB
   optimum must satisfy every constraint. *)
let random_ilp_arb =
  let open QCheck in
  let coef = int_range (-4) 4 in
  map
    (fun (c1, c2, rows) ->
      let rows =
        List.map (fun (a, b, r) -> ([ a; b ], Simplex.Le, abs r + 1)) rows
      in
      (* Bound the box so everything is finite. *)
      lp 2 [ c1; c2 ]
        (rows
        @ [ ([ 1; 0 ], Simplex.Le, 7); ([ 0; 1 ], Simplex.Le, 7) ]))
    (triple coef coef
       (list_of_size (Gen.int_range 1 4) (triple coef coef (int_bound 12))))

let prop_bb_gomory_agree =
  QCheck.Test.make ~name:"branch&bound and Gomory agree on small ILPs"
    ~count:150 random_ilp_arb (fun p ->
      let bb = Branch_bound.solve ~integer:[| true; true |] p in
      let gm = Gomory.solve p in
      match (bb, gm) with
      | Branch_bound.Optimal a, Gomory.Optimal b ->
          R.equal a.Simplex.value b.Simplex.value
      | Branch_bound.Infeasible, Gomory.Infeasible -> true
      | Branch_bound.Optimal _, Gomory.Gave_up -> true (* budget; rare *)
      | _ -> false)

let prop_bb_solution_feasible =
  QCheck.Test.make ~name:"BB optimum satisfies all constraints & integrality"
    ~count:150 random_ilp_arb (fun p ->
      match Branch_bound.solve ~integer:[| true; true |] p with
      | Branch_bound.Optimal s ->
          Array.for_all R.is_integer s.Simplex.x
          && List.for_all
               (fun (coefs, rel, b) ->
                 let lhs = ref R.zero in
                 Array.iteri
                   (fun i c -> lhs := R.add !lhs (R.mul c s.Simplex.x.(i)))
                   coefs;
                 match rel with
                 | Simplex.Le -> R.compare !lhs b <= 0
                 | Simplex.Ge -> R.compare !lhs b >= 0
                 | Simplex.Eq -> R.equal !lhs b)
               p.Simplex.rows
      | Branch_bound.Infeasible -> true
      | _ -> false)

let prop_lp_bounds_ilp =
  QCheck.Test.make ~name:"LP relaxation bounds the ILP optimum" ~count:150
    random_ilp_arb (fun p ->
      match (Simplex.solve p, Branch_bound.solve ~integer:[| true; true |] p) with
      | Simplex.Optimal lp_sol, Branch_bound.Optimal ilp_sol ->
          R.compare ilp_sol.Simplex.value lp_sol.Simplex.value <= 0
      | Simplex.Infeasible, Branch_bound.Infeasible -> true
      | Simplex.Optimal _, Branch_bound.Infeasible -> true
      | _ -> false)

(* Warm-started and cold branch & bound are different searches over the
   same problem: statuses must agree and optima must be equal (the
   witness points may differ when the optimum is not unique). *)
let same_bb_result a b =
  match (a, b) with
  | Branch_bound.Optimal x, Branch_bound.Optimal y ->
      R.equal x.Simplex.value y.Simplex.value
  | Branch_bound.Infeasible, Branch_bound.Infeasible -> true
  | Branch_bound.Unbounded, Branch_bound.Unbounded -> true
  | Branch_bound.Node_limit, Branch_bound.Node_limit -> true
  | Branch_bound.Limit_feasible _, Branch_bound.Limit_feasible _ -> true
  | _ -> false

let prop_warm_matches_cold =
  QCheck.Test.make ~name:"warm-started BB matches cold BB" ~count:150
    random_ilp_arb (fun p ->
      same_bb_result
        (Branch_bound.solve ~integer:[| true; true |] p)
        (Branch_bound.solve_cold ~integer:[| true; true |] p))

let prop_warm_matches_cold_mixed =
  QCheck.Test.make ~name:"warm-started BB matches cold BB (mixed integer)"
    ~count:150 random_ilp_arb (fun p ->
      same_bb_result
        (Branch_bound.solve ~integer:[| true; false |] p)
        (Branch_bound.solve_cold ~integer:[| true; false |] p))

(* --- Pivot budgets --- *)

module Obs = Mcs_obs.Metrics

let m_pivots = Obs.counter "simplex.pivots"

let pivots_of f =
  let before = Obs.count m_pivots in
  let r = f () in
  (r, Obs.count m_pivots - before)

(* Perf regression test without timers: solving a fixed paper benchmark's
   pin ILP is deterministic, so the pivot count is an exact number.  The
   warm solver must stay inside the budget of [Budgets] and beat the cold
   reference by at least the 2x the issue demands (measured: 20x and
   49x). *)
let test_pivot_budget () =
  let bench name design rate budget =
    let d = design () in
    let cons = Mcs_cdfg.Benchmarks.constraints_for d ~rate in
    let m =
      Mcs_core.Simple_part.Pin_ilp.model d.Mcs_cdfg.Benchmarks.cdfg cons ~rate
        ~fixed:[]
    in
    let p, integer = Model.to_problem m in
    let warm, warm_pivots =
      pivots_of (fun () -> Branch_bound.solve ~integer p)
    in
    let cold, cold_pivots =
      pivots_of (fun () -> Branch_bound.solve_cold ~integer p)
    in
    (match (warm, cold) with
    | Branch_bound.Optimal a, Branch_bound.Optimal b ->
        checkb (name ^ ": warm and cold objectives equal") true
          (R.equal a.Simplex.value b.Simplex.value)
    | Branch_bound.Infeasible, Branch_bound.Infeasible -> ()
    | _ -> Alcotest.fail (name ^ ": warm and cold disagree"));
    checkb
      (Printf.sprintf "%s: warm pivots %d within budget %d" name warm_pivots
         budget)
      true
      (warm_pivots <= budget);
    checkb
      (Printf.sprintf "%s: warm pivots %d at least 2x under cold %d" name
         warm_pivots cold_pivots)
      true
      (warm_pivots * 2 <= cold_pivots)
  in
  bench "ar-general rate 3" Mcs_cdfg.Benchmarks.ar_general 3
    Budgets.ar_general_rate3_pivots;
  bench "elliptic rate 6" Mcs_cdfg.Benchmarks.elliptic 6
    Budgets.elliptic_rate6_pivots

(* --- Hybrid arithmetic: float-first simplex with exact certification --- *)

let m_certify_fail = Obs.counter "ilp.certify.fail"
let m_arith_fallbacks = Obs.counter "bb.arith_fallbacks"
let m_fpivots = Obs.counter "fsimplex.pivots"

let prop_float_matches_rational =
  QCheck.Test.make ~name:"float-certified BB matches rational BB" ~count:150
    random_ilp_arb (fun p ->
      same_bb_result
        (Branch_bound.solve ~arith:Fsimplex.Float_certified
           ~integer:[| true; true |] p)
        (Branch_bound.solve ~integer:[| true; true |] p))

(* Both arithmetic modes on the pin-allocation ILP of every paper
   benchmark at every rate the paper evaluates: same status, same
   objective.  (The certified float path is only ever allowed to return
   exact solutions, so equality here is [R.equal], not approximate.) *)
let test_arith_modes_agree_benchmarks () =
  List.iter
    (fun (name, mk) ->
      let d = mk () in
      List.iter
        (fun rate ->
          let cons = Mcs_cdfg.Benchmarks.constraints_for d ~rate in
          let m =
            Mcs_core.Simple_part.Pin_ilp.model d.Mcs_cdfg.Benchmarks.cdfg cons
              ~rate ~fixed:[]
          in
          let p, integer = Model.to_problem m in
          let fl =
            Branch_bound.solve ~arith:Fsimplex.Float_certified ~integer p
          in
          let ra = Branch_bound.solve ~integer p in
          checkb
            (Printf.sprintf "%s rate %d: float and rational agree" name rate)
            true (same_bb_result fl ra))
        d.Mcs_cdfg.Benchmarks.rates)
    [
      ("ar-simple", Mcs_cdfg.Benchmarks.ar_simple);
      ("ar-general", Mcs_cdfg.Benchmarks.ar_general);
      ("elliptic", Mcs_cdfg.Benchmarks.elliptic);
      ("cond-demo", Mcs_cdfg.Benchmarks.cond_demo);
      ("subbus-demo", Mcs_cdfg.Benchmarks.subbus_demo);
    ]

(* Whole ch3 flow under each arithmetic, strict checking: both must come
   out checker-clean with the same schedule footprint. *)
let test_arith_modes_checker_clean () =
  let module F = Mcs_flow.Flow in
  let d = Mcs_cdfg.Benchmarks.ar_simple () in
  let with_arith arith f =
    let prev = Sys.getenv_opt "MCS_ARITH" in
    Unix.putenv "MCS_ARITH" arith;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "MCS_ARITH" (Option.value prev ~default:""))
      f
  in
  let run arith =
    with_arith arith @@ fun () ->
    Warm.clear ();
    let spec = F.spec_of_design ~flow:F.Ch3 d ~rate:2 in
    match Mcs_check.run ~level:Mcs_flow.Pass.Strict F.Ch3 spec with
    | Ok r -> r
    | Error dg ->
        Alcotest.failf "ch3 under %s arithmetic failed: %s" arith
          (Mcs_flow.Diag.message dg)
  in
  let a = run "float" and b = run "rational" in
  checkb "pins equal across modes" true (a.F.pins = b.F.pins);
  checkb "pipe length equal across modes" true
    (a.F.pipe_length = b.F.pipe_length)

(* Seeded ill-conditioned LP: x <= 1 and x >= 1 + 2^-60 is infeasible,
   but float64 cannot see the gap, so the float path reaches an
   "optimal" basis whose exact refactorization rejects it — forcing the
   certification-failure fallback to the rational path, which proves
   infeasibility. *)
let test_certification_failure_falls_back () =
  let tiny = R.make 1 1152921504606846976 (* 2^-60 *) in
  let p =
    {
      Simplex.n_vars = 1;
      objective = [| R.one |];
      rows =
        [
          ([| R.one |], Simplex.Le, R.one);
          ([| R.one |], Simplex.Ge, R.add R.one tiny);
        ];
    }
  in
  let fail0 = Obs.count m_certify_fail and fb0 = Obs.count m_arith_fallbacks in
  (match
     Branch_bound.solve ~arith:Fsimplex.Float_certified ~integer:[| false |] p
   with
  | Branch_bound.Infeasible -> ()
  | _ -> Alcotest.fail "ill-conditioned LP must still come out infeasible");
  checkb "certification failed at least once" true
    (Obs.count m_certify_fail > fail0);
  checkb "fell back to the rational path" true
    (Obs.count m_arith_fallbacks > fb0)

(* Float pivots charge the same Budget pivot axis as rational ones, so a
   deadline holds whichever arithmetic runs. *)
let test_float_pivots_budgeted () =
  let d = Mcs_cdfg.Benchmarks.ar_general () in
  let cons = Mcs_cdfg.Benchmarks.constraints_for d ~rate:3 in
  let m =
    Mcs_core.Simple_part.Pin_ilp.model d.Mcs_cdfg.Benchmarks.cdfg cons ~rate:3
      ~fixed:[]
  in
  let p, integer = Model.to_problem m in
  let budget = Mcs_resilience.Budget.make ~pivots:5 () in
  match
    Branch_bound.solve ~budget ~arith:Fsimplex.Float_certified ~integer p
  with
  | Branch_bound.Exhausted e ->
      checkb "the pivot axis was the one exhausted" true
        (e.Mcs_resilience.Budget.resource = Mcs_resilience.Budget.Pivots)
  | Branch_bound.Limit_feasible _ -> ()
  | _ -> Alcotest.fail "a 5-pivot budget must exhaust the float path"

(* Cross-grid warm starts: the pin ILP at neighboring rates shares a
   rate-independent Warm site key, so solving rate 3 then rate 4 in one
   chain must pivot less in total than solving each cold. *)
let test_grid_warm_chain () =
  let d = Mcs_cdfg.Benchmarks.ar_general () in
  let solve rate =
    let cons = Mcs_cdfg.Benchmarks.constraints_for d ~rate in
    ignore
      (Mcs_core.Simple_part.Pin_ilp.feasible ~arith:Fsimplex.Float_certified
         d.Mcs_cdfg.Benchmarks.cdfg cons ~rate ~fixed:[])
  in
  let pivots f =
    let before = Obs.count m_fpivots in
    f ();
    Obs.count m_fpivots - before
  in
  let cold =
    pivots (fun () ->
        List.iter
          (fun r ->
            Warm.clear ();
            solve r)
          [ 3; 4 ])
  in
  Warm.clear ();
  let chained = pivots (fun () -> List.iter solve [ 3; 4 ]) in
  Warm.clear ();
  checkb
    (Printf.sprintf "chained pivots %d < cold pivots %d" chained cold)
    true (chained < cold)

(* --- Model builder --- *)

let test_model_knapsack () =
  let m = Model.create () in
  let a = Model.binary m "a" and b = Model.binary m "b" and c = Model.binary m "c" in
  Model.add_le m
    (Model.sum [ Model.term 2 a; Model.term 3 b; Model.v c ])
    (Model.const 4);
  Model.set_objective m
    (Model.sum [ Model.term 5 a; Model.term 4 b; Model.term 3 c ]);
  match Model.solve m with
  | Model.Optimal s ->
      checkb "objective 8" true (R.equal s.Model.objective (R.of_int 8));
      checki "a" 1 (Model.int_value s a);
      checki "b" 0 (Model.int_value s b);
      checki "c" 1 (Model.int_value s c)
  | _ -> Alcotest.fail "model solve failed"

let test_model_negative_lower_bound () =
  let m = Model.create () in
  let x = Model.int_var m ~lo:(-5) ~hi:5 "x" in
  Model.set_objective m (Model.scale (-1) (Model.v x));
  match Model.solve m with
  | Model.Optimal s ->
      checki "x at lower bound" (-5) (Model.int_value s x);
      checkb "objective 5" true (R.equal s.Model.objective (R.of_int 5))
  | _ -> Alcotest.fail "failed"

let test_model_max_bin () =
  let m = Model.create () in
  let x = Model.binary m "x" and y = Model.binary m "y" in
  let z = Model.binary m "z" in
  Model.eq_max_bin m z [ x; y ];
  Model.add_eq m (Model.v x) (Model.const 0);
  Model.add_eq m (Model.v y) (Model.const 1);
  Model.set_objective m (Model.const 0);
  match Model.solve m with
  | Model.Optimal s -> checki "z = max(0,1)" 1 (Model.int_value s z)
  | _ -> Alcotest.fail "failed"

let test_model_xor () =
  List.iter
    (fun (a, b, expect) ->
      let m = Model.create () in
      let x = Model.binary m "x" and y = Model.binary m "y" in
      let z = Model.binary m "z" in
      Model.eq_xor_bin m z x y;
      Model.add_eq m (Model.v x) (Model.const a);
      Model.add_eq m (Model.v y) (Model.const b);
      match Model.solve m with
      | Model.Optimal s ->
          checki (Printf.sprintf "%d xor %d" a b) expect (Model.int_value s z)
      | _ -> Alcotest.fail "failed")
    [ (0, 0, 0); (0, 1, 1); (1, 0, 1); (1, 1, 0) ]

let test_model_implication () =
  let m = Model.create () in
  let b = Model.binary m "b" in
  let x = Model.int_var m ~lo:0 ~hi:10 "x" in
  Model.implies_le m ~big_m:100 b (Model.v x) (Model.const 3);
  Model.add_eq m (Model.v b) (Model.const 1);
  Model.set_objective m (Model.v x);
  match Model.solve m with
  | Model.Optimal s -> checki "x forced <= 3" 3 (Model.int_value s x)
  | _ -> Alcotest.fail "failed"

let test_model_iff_positive () =
  let m = Model.create () in
  let b = Model.binary m "b" in
  let x = Model.int_var m ~lo:0 ~hi:10 "x" in
  Model.iff_positive m ~big_m:10 b (Model.v x);
  Model.add_eq m (Model.v b) (Model.const 0);
  Model.set_objective m (Model.v x);
  (match Model.solve m with
  | Model.Optimal s -> checki "x forced 0" 0 (Model.int_value s x)
  | _ -> Alcotest.fail "failed");
  let m2 = Model.create () in
  let b2 = Model.binary m2 "b" in
  let x2 = Model.int_var m2 ~lo:0 ~hi:10 "x" in
  Model.iff_positive m2 ~big_m:10 b2 (Model.v x2);
  Model.add_eq m2 (Model.v b2) (Model.const 1);
  Model.set_objective m2 (Model.scale (-1) (Model.v x2));
  match Model.solve m2 with
  | Model.Optimal s -> checki "x forced >= 1" 1 (Model.int_value s x2)
  | _ -> Alcotest.fail "failed"

let test_model_gomory_method () =
  let m = Model.create () in
  let x = Model.int_var m ~hi:10 "x" and y = Model.int_var m ~hi:10 "y" in
  Model.add_le m (Model.add (Model.term 2 x) (Model.term 2 y)) (Model.const 7);
  Model.set_objective m (Model.add (Model.v x) (Model.v y));
  match Model.solve ~method_:`Gomory m with
  | Model.Optimal s -> checkb "value 3" true (R.equal s.Model.objective (R.of_int 3))
  | _ -> Alcotest.fail "gomory method failed"

let test_model_pp_lp () =
  let m = Model.create () in
  let x = Model.binary m "x" in
  Model.add_le m (Model.term 2 x) (Model.const 1);
  Model.set_objective m (Model.v x);
  let s = Format.asprintf "%a" Model.pp_lp m in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "mentions Maximize" true (contains s "Maximize");
  checkb "mentions variable" true (contains s "x")

let suite =
  ( "ilp",
    [
      Alcotest.test_case "simplex basic" `Quick test_simplex_basic;
      Alcotest.test_case "simplex fractional optimum" `Quick test_simplex_fractional_optimum;
      Alcotest.test_case "simplex infeasible" `Quick test_simplex_infeasible;
      Alcotest.test_case "simplex unbounded" `Quick test_simplex_unbounded;
      Alcotest.test_case "simplex equality rows" `Quick test_simplex_equality;
      Alcotest.test_case "simplex degenerate (no cycling)" `Quick test_simplex_degenerate;
      Alcotest.test_case "simplex negative rhs" `Quick test_simplex_negative_rhs;
      Alcotest.test_case "gomory knapsack" `Quick test_gomory_knapsack;
      Alcotest.test_case "gomory infeasible" `Quick test_gomory_infeasible;
      Alcotest.test_case "bb matches gomory" `Quick test_bb_matches_gomory;
      Alcotest.test_case "bb mixed integer" `Quick test_bb_mixed_integer;
      Alcotest.test_case "bb feasibility" `Quick test_bb_feasibility;
      Alcotest.test_case "tableau snapshot/restore" `Quick test_snapshot_restore;
      Alcotest.test_case "add_row matches cold solve" `Quick test_add_row_matches_cold;
      Alcotest.test_case "bb limit-feasible" `Quick test_bb_limit_feasible;
      Alcotest.test_case "warm BB pivot budgets" `Quick test_pivot_budget;
      Alcotest.test_case "arith modes agree on paper benchmarks" `Quick
        test_arith_modes_agree_benchmarks;
      Alcotest.test_case "arith modes checker-clean ch3" `Quick
        test_arith_modes_checker_clean;
      Alcotest.test_case "certification failure falls back" `Quick
        test_certification_failure_falls_back;
      Alcotest.test_case "float pivots charge the budget" `Quick
        test_float_pivots_budgeted;
      Alcotest.test_case "cross-grid warm chain pivots less" `Quick
        test_grid_warm_chain;
      Alcotest.test_case "model knapsack" `Quick test_model_knapsack;
      Alcotest.test_case "model negative lower bounds" `Quick test_model_negative_lower_bound;
      Alcotest.test_case "model max of binaries" `Quick test_model_max_bin;
      Alcotest.test_case "model xor linearization" `Quick test_model_xor;
      Alcotest.test_case "model implication" `Quick test_model_implication;
      Alcotest.test_case "model iff-positive" `Quick test_model_iff_positive;
      Alcotest.test_case "model via gomory" `Quick test_model_gomory_method;
    ]
    @ List.map QCheck_alcotest.to_alcotest
        [
          prop_bb_gomory_agree;
          prop_bb_solution_feasible;
          prop_lp_bounds_ilp;
          prop_warm_matches_cold;
          prop_warm_matches_cold_mixed;
          prop_float_matches_rational;
        ] )

(* mcs-serve: the synthesis daemon.

   Examples:
     mcs-serve --socket /tmp/mcs.sock --domains 4 --cache /tmp/mcs-cache
     mcs-serve --tcp-port 7632 --window-ms 10 --trace-out serve-trace.json
     mcs-serve --wal /tmp/mcs.wal --recover   # replay after a crash

   Clients speak the newline-delimited mcs-req/1 protocol; the easiest
   one is `mcs-synth client` (same grid options as `mcs-synth dse`). *)

module Server = Mcs_server.Server

(* Multi-domain serving needs a bigger per-domain minor heap than the
   runtime's 256k-word default, or stop-the-world minor collections eat
   the parallelism (see [Mcs_server.Supervisor.recommended_minor_heap_words]).
   On OCaml 5.1 the minor arenas are reserved at startup — [Gc.set]
   cannot grow them once the process runs — so the only reliable lever
   is [OCAMLRUNPARAM=s=...]: re-exec ourselves once with it set.  An
   explicit [s=...] from the user always wins (no re-exec, their call);
   the loop terminates because after the re-exec the variable carries
   [s=] and the guard no longer fires. *)
let ensure_minor_heap domains =
  let want = Mcs_server.Supervisor.recommended_minor_heap_words in
  let runparam = Option.value ~default:"" (Sys.getenv_opt "OCAMLRUNPARAM") in
  let has_s =
    List.exists
      (fun piece ->
        String.length piece >= 2 && piece.[0] = 's' && piece.[1] = '=')
      (String.split_on_char ',' runparam)
  in
  if domains > 1 && (not has_s) && (Gc.get ()).Gc.minor_heap_size < want then begin
    let prefix = Printf.sprintf "s=%d" want in
    Unix.putenv "OCAMLRUNPARAM"
      (if runparam = "" then prefix else prefix ^ "," ^ runparam);
    try Unix.execv Sys.executable_name Sys.argv
    with Unix.Unix_error _ -> () (* keep serving, just slower *)
  end

let serve socket tcp_port domains cache window_ms max_queue wal recover
    read_deadline_s idle_timeout_s max_frame stall_s trace_out log_level =
  ensure_minor_heap domains;
  (match Option.bind log_level Mcs_obs.Log.level_of_string with
  | Some lvl -> Mcs_obs.Log.set_level lvl
  | None -> ());
  if trace_out <> None then begin
    Mcs_obs.Events.clear ();
    Mcs_prof.Chrome_trace.start ()
  end;
  if recover && wal = None then begin
    Format.eprintf "mcs-serve: --recover needs --wal PATH@.";
    exit 2
  end;
  let config =
    {
      Server.socket_path = socket;
      tcp_port;
      domains;
      cache_dir = cache;
      window_ms;
      max_queue;
      wal_path = wal;
      recover;
      read_deadline_s;
      idle_timeout_s;
      max_frame;
      stall_s;
    }
  in
  match Server.create ~config () with
  | exception Unix.Unix_error (e, _, arg) ->
      Format.eprintf "mcs-serve: cannot listen on %s: %s (%s)@." socket
        (Unix.error_message e) arg;
      2
  | t ->
      let graceful = Sys.Signal_handle (fun _ -> Server.request_shutdown t) in
      Sys.set_signal Sys.sigterm graceful;
      Sys.set_signal Sys.sigint graceful;
      Format.printf "mcs-serve: listening on %s%s with %d domain%s@." socket
        (match tcp_port with
        | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
        | None -> "")
        (max 1 domains)
        (if max 1 domains = 1 then "" else "s");
      Format.print_flush ();
      Server.serve t;
      (match trace_out with
      | None -> 0
      | Some path -> (
          match Mcs_prof.Chrome_trace.write path with
          | Ok () ->
              Format.printf "mcs-serve: wrote %s@." path;
              0
          | Error m ->
              Format.eprintf "mcs-serve: cannot write %s: %s@." path m;
              3))

open Cmdliner

let socket =
  Arg.(value & opt string Server.default_config.Server.socket_path
       & info [ "socket"; "s" ] ~docv:"PATH"
           ~doc:"Unix-domain socket to listen on (unlinked on exit).")

let tcp_port =
  Arg.(value & opt (some int) None & info [ "tcp-port" ] ~docv:"PORT"
         ~doc:"Also listen on 127.0.0.1:$(docv).")

let domains =
  Arg.(value & opt int Server.default_config.Server.domains
       & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains executing jobs in-process.")

let cache =
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR"
         ~doc:"Shared persistent result cache (created if missing); \
               repeated jobs across all clients are served from it.")

let window_ms =
  Arg.(value & opt float Server.default_config.Server.window_ms
       & info [ "window-ms" ] ~docv:"MS"
           ~doc:"Batching window: how long a fresh job waits for \
                 same-design company before dispatch.")

let max_queue =
  Arg.(value & opt int Server.default_config.Server.max_queue
       & info [ "max-queue" ] ~docv:"N"
           ~doc:"Admission limit on jobs in flight; beyond it requests \
                 are rejected with a typed diagnostic.")

let wal =
  Arg.(value & opt (some string) None & info [ "wal" ] ~docv:"FILE"
         ~doc:"Durable request journal (mcs-wal/1): every admitted \
               request is fsync'd to $(docv) before dispatch and marked \
               on reply, so a daemon crash loses zero accepted requests.")

let recover =
  Arg.(value & flag & info [ "recover" ]
         ~doc:"Replay admitted-but-unanswered records from the --wal \
               journal through the normal queue at startup (already \
               settled points answer from the warm cache).")

let read_deadline_s =
  Arg.(value & opt float Server.default_config.Server.read_deadline_s
       & info [ "read-deadline-s" ] ~docv:"S"
           ~doc:"Reap a connection whose partial request line is older \
                 than $(docv) seconds (slowloris guard); 0 disables.")

let idle_timeout_s =
  Arg.(value & opt float Server.default_config.Server.idle_timeout_s
       & info [ "idle-timeout-s" ] ~docv:"S"
           ~doc:"Reap a connection idle for $(docv) seconds with no \
                 request in flight; 0 disables.")

let max_frame =
  Arg.(value & opt int Server.default_config.Server.max_frame
       & info [ "max-frame" ] ~docv:"BYTES"
           ~doc:"Request-line size bound; an oversized frame is answered \
                 with a typed diagnostic and the connection closed.")

let stall_s =
  Arg.(value & opt float Server.default_config.Server.stall_s
       & info [ "stall-s" ] ~docv:"S"
           ~doc:"Declare a worker domain stuck when its heartbeat is \
                 older than $(docv) seconds: the domain is replaced and \
                 its batch requeued; 0 disables.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Record a Chrome trace of the daemon's whole life (request \
               spans and solver events, one lane per worker domain) and \
               write it to $(docv) on graceful shutdown.")

let log_level =
  Arg.(value & opt (some string) None & info [ "log-level" ] ~docv:"LVL"
         ~doc:"Diagnostic verbosity: debug, info, warn (default), error \
               or quiet.")

let cmd =
  Cmd.v
    (Cmd.info "mcs-serve" ~doc:"synthesis-as-a-service daemon"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Long-lived synthesis server: accepts newline-delimited \
              mcs-req/1 job submissions over a Unix-domain socket (and \
              optionally loopback TCP), runs them on a supervised pool \
              of OCaml 5 worker domains with a shared warm cache, \
              per-request deadline budgets, admission control and \
              request coalescing/batching, and streams mcs-run/1 \
              replies back.  Worker domains are heartbeat-monitored: a \
              dead or stuck domain is respawned and its work requeued, \
              and a job that keeps killing domains is quarantined with \
              a typed poisoned diagnostic.  With --wal the daemon \
              journals every admitted request durably and --recover \
              replays unanswered ones after a crash.  A shutdown \
              request (or SIGTERM) drains in-flight work before exit.";
         ])
    Term.(
      const serve $ socket $ tcp_port $ domains $ cache $ window_ms
      $ max_queue $ wal $ recover $ read_deadline_s $ idle_timeout_s
      $ max_frame $ stall_s $ trace_out $ log_level)

let () = exit (Cmd.eval' cmd)

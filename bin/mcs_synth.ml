(* mcs-synth: command-line front end for the multiple-chip synthesis flows.

   Examples:
     mcs-synth --design ar-general --rate 4 --flow ch4 --ports bidir
     mcs-synth --design ar-simple  --rate 2 --flow ch3
     mcs-synth --design elliptic   --rate 5 --flow ch5 --pipe-length 25
     mcs-synth --design ar-general --rate 3 --flow ch6 --metrics
     mcs-synth --design ar-general --rate 3 --flow ch4 --json run.json
     mcs-synth --list *)

open Mcs_cdfg
open Mcs_core
module C = Mcs_connect.Connection
module J = Mcs_obs.Report_json

let fmt = Format.std_formatter

let designs =
  [
    ("ar-simple", Benchmarks.ar_simple);
    ("ar-general", Benchmarks.ar_general);
    ("elliptic", Benchmarks.elliptic);
    ("cond-demo", Benchmarks.cond_demo);
    ("subbus-demo", Benchmarks.subbus_demo);
  ]

let list_designs () =
  List.iter
    (fun (name, mk) ->
      let d = mk () in
      Format.fprintf fmt "%-12s %a; evaluated at rates %s@." name
        Cdfg.pp_stats d.Benchmarks.cdfg
        (String.concat ", " (List.map string_of_int d.Benchmarks.rates)))
    designs;
  0

let pins_table (d : Benchmarks.design) pins =
  Report.table fmt ~title:"Pins used per partition"
    ~header:
      (List.map
         (fun p -> "P" ^ string_of_int p)
         (Mcs_util.Listx.range 0 (Cdfg.n_partitions d.Benchmarks.cdfg + 1)))
    [ Report.pins_row pins ]

let pins_json pins =
  J.Arr
    (List.map
       (fun (p, n) -> J.Obj [ ("partition", J.Int p); ("pins", J.Int n) ])
       pins)

(* Every flow reports its exit rendering plus the machine-readable result
   fields and the schedule the pin-ILP cross-check replays. *)
type flow_output = {
  fields : (string * J.t) list;
  schedule : Mcs_sched.Schedule.t;
}

let run_ch3 d ~rate =
  match Simple_part.run d ~rate with
  | Error m -> Error m
  | Ok r ->
      Format.fprintf fmt "Schedule:@.%a@.@." Report.schedule r.schedule;
      Format.fprintf fmt "Theorem 3.1 connection:@.%a@.@." Report.bundles r.links;
      pins_table d r.pins_needed;
      Ok
        {
          fields =
            [
              ("pins", pins_json r.pins_needed);
              ( "pipe_length",
                J.Int (Mcs_sched.Schedule.pipe_length r.schedule) );
              ("bundles", J.Int (List.length r.links));
            ];
          schedule = r.schedule;
        }

let run_ch4 d ~rate ~mode =
  match Pre_connect.run_design d ~rate ~mode with
  | Error m -> Error m
  | Ok r ->
      Format.fprintf fmt "Interchip connection:@.%a@.@."
        (Report.connection d.Benchmarks.cdfg)
        r.connection;
      Report.bus_assignment d.Benchmarks.cdfg fmt ~initial:r.initial_assignment
        ~final:r.final_assignment;
      Format.fprintf fmt "@.";
      Report.bus_allocation d.Benchmarks.cdfg ~rate fmt r.allocation;
      Format.fprintf fmt "@.Schedule:@.%a@.@." Report.schedule r.schedule;
      pins_table d r.pins;
      Format.fprintf fmt "@.pipe length: %d (static assignment: %s)@."
        (Mcs_sched.Schedule.pipe_length r.schedule)
        (match r.static_pipe_length with
        | Some n -> string_of_int n
        | None -> "unschedulable");
      Ok
        {
          fields =
            [
              ("pins", pins_json r.pins);
              ( "pipe_length",
                J.Int (Mcs_sched.Schedule.pipe_length r.schedule) );
              ( "static_pipe_length",
                match r.static_pipe_length with
                | Some n -> J.Int n
                | None -> J.Null );
              ("buses", J.Int (C.n_buses r.connection));
              ("slot_cap", J.Int r.slot_cap);
            ];
          schedule = r.schedule;
        }

let run_ch5 d ~rate ~pipe_length ~mode =
  match Post_connect.run_design d ~rate ~pipe_length ~mode with
  | Error m -> Error m
  | Ok r ->
      Format.fprintf fmt "Schedule (force-directed):@.%a@.@." Report.schedule
        r.schedule;
      Format.fprintf fmt "Connection (clique partitioning):@.%a@.@."
        (Report.connection d.Benchmarks.cdfg)
        r.connection;
      pins_table d r.pins;
      Format.fprintf fmt "@.Functional units implied:@.";
      List.iter
        (fun ((p, ty), n) -> Format.fprintf fmt "  P%d: %d %s@." p n ty)
        r.fus;
      Ok
        {
          fields =
            [
              ("pins", pins_json r.pins);
              ("pipe_length", J.Int pipe_length);
              ("buses", J.Int (C.n_buses r.connection));
              ( "fus",
                J.Arr
                  (List.map
                     (fun ((p, ty), n) ->
                       J.Obj
                         [
                           ("partition", J.Int p);
                           ("optype", J.Str ty);
                           ("count", J.Int n);
                         ])
                     r.fus) );
            ];
          schedule = r.schedule;
        }

let run_ch6 d ~rate =
  match Subbus.run_design d ~rate with
  | Error m -> Error m
  | Ok t ->
      Format.fprintf fmt "Bus structure (with sub-buses):@.%a@.@."
        (Report.real_buses d.Benchmarks.cdfg)
        t.real_buses;
      Format.fprintf fmt "Schedule:@.%a@.@." Report.schedule t.schedule;
      pins_table d t.pins;
      Format.fprintf fmt "@.pipe length: %d@."
        (Mcs_sched.Schedule.pipe_length t.schedule);
      Ok
        {
          fields =
            [
              ("pins", pins_json t.pins);
              ( "pipe_length",
                J.Int (Mcs_sched.Schedule.pipe_length t.schedule) );
              ( "static_pipe_length",
                match t.static_pipe_length with
                | Some n -> J.Int n
                | None -> J.Null );
              ("buses", J.Int (List.length t.real_buses));
              ( "split_buses",
                J.Int
                  (List.length
                     (List.filter
                        (fun (b : Subbus.real_bus) -> b.split_at <> None)
                        t.real_buses)) );
            ];
          schedule = t.schedule;
        }

(* Under --metrics, replay the final schedule through the Chapter 3
   dedicated-port pin-allocation ILP with every I/O operation fixed at its
   scheduled control-step group.  The verdict compares the flow's shared
   buses against the dedicated-port model at the same schedule, and the
   solve drives the simplex and branch-and-bound counters for every flow. *)
let ilp_cross_check d cons ~rate sched =
  let cdfg = d.Benchmarks.cdfg in
  let fixed =
    List.map
      (fun op -> (op, Mcs_sched.Schedule.group sched op))
      (Cdfg.io_ops cdfg)
  in
  match Simple_part.Pin_ilp.feasible cdfg cons ~rate ~fixed with
  | ok ->
      Format.fprintf fmt
        "@.pin-allocation ILP cross-check (dedicated ports): %s@."
        (if ok then "feasible" else "infeasible")
  | exception e ->
      Format.fprintf fmt "@.pin-allocation ILP cross-check: skipped (%s)@."
        (Printexc.to_string e)

let cons_for flow d ~rate ~mode =
  match flow with
  | "ch3" -> Benchmarks.constraints_for d ~rate
  | "ch6" -> Benchmarks.constraints_for_bidir d ~rate
  | _ -> (
      match mode with
      | C.Unidir -> Benchmarks.constraints_for d ~rate
      | C.Bidir -> Benchmarks.constraints_for_bidir d ~rate)

let synth design flow rate pipe_length ports listing trace metrics json_file
    log_level =
  (match log_level with
  | None -> ()
  | Some s -> (
      match Mcs_obs.Log.level_of_string s with
      | Some l -> Mcs_obs.Log.set_level l
      | None ->
          Mcs_obs.Log.warn "unknown log level %S (debug|info|warn|error|quiet)"
            s));
  (match trace with
  | None -> ()
  | Some "tree" -> Mcs_obs.Trace.set_sink (Mcs_obs.Trace.Tree Format.err_formatter)
  | Some "json" -> Mcs_obs.Trace.set_sink (Mcs_obs.Trace.Jsonl Format.err_formatter)
  | Some m -> Mcs_obs.Log.warn "unknown trace mode %S (tree|json)" m);
  if listing then list_designs ()
  else
    match List.assoc_opt design designs with
    | None ->
        Format.fprintf fmt
          "unknown design %S (use --list to see what is available)@." design;
        2
    | Some mk ->
        let d = mk () in
        let rate =
          match rate with Some r -> r | None -> List.hd d.Benchmarks.rates
        in
        let mode = if ports = "bidir" then C.Bidir else C.Unidir in
        let bad_flow = ref false in
        Mcs_obs.Metrics.reset ();
        if json_file <> None then begin
          Mcs_obs.Trace.reset_collected ();
          Mcs_obs.Trace.set_collect true
        end;
        let t0 = Unix.gettimeofday () in
        let outcome =
          (* A flow that rejects its input (e.g. ch3 on a non-simple
             partitioning) raises; fold that into the run outcome so
             [--json] still produces a report with status "error". *)
          try
            match flow with
            | "ch3" -> run_ch3 d ~rate
            | "ch4" -> run_ch4 d ~rate ~mode
            | "ch5" ->
                let pl =
                  match pipe_length with
                  | Some pl -> pl
                  | None ->
                      Timing.critical_path_csteps d.Benchmarks.cdfg
                        d.Benchmarks.mlib
                in
                run_ch5 d ~rate ~pipe_length:pl ~mode
            | "ch6" -> run_ch6 d ~rate
            | f ->
                Format.fprintf fmt "unknown flow %S (ch3|ch4|ch5|ch6)@." f;
                bad_flow := true;
                Error "unknown flow"
          with
          | Invalid_argument m | Failure m -> Error m
        in
        let wall = Unix.gettimeofday () -. t0 in
        if !bad_flow then 2
        else begin
          let code =
            match outcome with
            | Ok _ -> 0
            | Error m ->
                Format.fprintf fmt "synthesis failed: %s@." m;
                1
          in
          if metrics then begin
            (match outcome with
            | Ok fo ->
                ilp_cross_check d (cons_for flow d ~rate ~mode) ~rate
                  fo.schedule
            | Error _ -> ());
            Format.fprintf fmt "@.%a" Mcs_obs.Metrics.pp_summary ()
          end;
          let json_code =
            match json_file with
            | None -> 0
            | Some path -> (
                let status =
                  match outcome with Ok _ -> `Ok | Error m -> `Error m
                in
                let result =
                  match outcome with Ok fo -> fo.fields | Error _ -> []
                in
                let report =
                  J.run_report ~flow ~design ~rate ~status ~wall_s:wall
                    ~result ()
                in
                match J.write_file path report with
                | Ok () -> 0
                | Error m ->
                    Format.eprintf "cannot write %s: %s@." path m;
                    3)
          in
          if code <> 0 then code else json_code
        end

open Cmdliner

let design =
  Arg.(value & opt string "ar-general" & info [ "design"; "d" ] ~docv:"NAME"
         ~doc:"Design to synthesize (see $(b,--list)).")

let flow =
  Arg.(value & opt string "ch4" & info [ "flow"; "f" ] ~docv:"FLOW"
         ~doc:"Synthesis flow: ch3 (simple partitioning), ch4 \
               (connection-first), ch5 (schedule-first), ch6 (sub-bus \
               sharing).")

let rate =
  Arg.(value & opt (some int) None & info [ "rate"; "r" ] ~docv:"L"
         ~doc:"Initiation rate (default: the design's first evaluated rate).")

let pipe_length =
  Arg.(value & opt (some int) None & info [ "pipe-length"; "p" ] ~docv:"T"
         ~doc:"Pipe length for the ch5 flow (default: the critical path).")

let ports =
  Arg.(value & opt string "unidir" & info [ "ports" ] ~docv:"MODE"
         ~doc:"I/O port mode: unidir or bidir.")

let listing =
  Arg.(value & flag & info [ "list"; "l" ] ~doc:"List the bundled designs.")

let trace =
  Arg.(value & opt ~vopt:(Some "tree") (some string) None
       & info [ "trace" ] ~docv:"MODE"
           ~doc:"Emit per-phase timing spans to stderr: $(b,tree) (indented \
                 summary, the default when no MODE is given) or $(b,json) \
                 (one JSON object per span).")

let metrics =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print solver counters (simplex pivots, branch-and-bound \
                 nodes, search backtracks, ...) after synthesis, and run the \
                 dedicated-port pin-allocation ILP cross-check on the final \
                 schedule.")

let json_file =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Write a machine-readable run report (schema mcs-run/1) with \
               status, result, per-phase wall times and solver metrics to \
               $(docv).")

let log_level =
  Arg.(value & opt (some string) None & info [ "log-level" ] ~docv:"LVL"
         ~doc:"Diagnostic verbosity: debug, info, warn (default), error or \
               quiet.  The $(b,MCS_LOG) environment variable sets the same \
               threshold.")

let cmd =
  let doc = "high-level synthesis with pin constraints for multiple-chip designs" in
  let info =
    Cmd.info "mcs-synth" ~doc
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Synthesizes pipelined multiple-chip designs from partitioned \
             behavioural specifications under per-chip I/O pin constraints, \
             reproducing Hung's 1992 dissertation flows: pin-constrained \
             scheduling for simple partitionings, interchip-connection \
             synthesis before or after scheduling, and intra-cycle sub-bus \
             sharing.";
        ]
  in
  Cmd.v info
    Term.(
      const synth $ design $ flow $ rate $ pipe_length $ ports $ listing
      $ trace $ metrics $ json_file $ log_level)

let () = exit (Cmd.eval' cmd)

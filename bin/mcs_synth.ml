(* mcs-synth: command-line front end for the multiple-chip synthesis flows.

   Examples:
     mcs-synth --design ar-general --rate 4 --flow ch4 --ports bidir
     mcs-synth --design ar-simple  --rate 2 --flow ch3
     mcs-synth --design elliptic   --rate 5 --flow ch5 --pipe-length 25
     mcs-synth --design ar-general --rate 3 --flow ch6 --metrics\n     mcs-synth --design elliptic   --rate 6 --flow ch4 --check
     mcs-synth --design ar-general --rate 3 --flow ch4 --json run.json
     mcs-synth --list *)

open Mcs_cdfg
open Mcs_core
module C = Mcs_connect.Connection
module J = Mcs_obs.Report_json

let fmt = Format.std_formatter

let designs =
  [
    ("ar-simple", Benchmarks.ar_simple);
    ("ar-general", Benchmarks.ar_general);
    ("elliptic", Benchmarks.elliptic);
    ("cond-demo", Benchmarks.cond_demo);
    ("subbus-demo", Benchmarks.subbus_demo);
  ]

let list_designs () =
  List.iter
    (fun (name, mk) ->
      let d = mk () in
      Format.fprintf fmt "%-12s %a; evaluated at rates %s@." name
        Cdfg.pp_stats d.Benchmarks.cdfg
        (String.concat ", " (List.map string_of_int d.Benchmarks.rates)))
    designs;
  0

let pins_table (d : Benchmarks.design) pins =
  Report.table fmt ~title:"Pins used per partition"
    ~header:
      (List.map
         (fun p -> "P" ^ string_of_int p)
         (Mcs_util.Listx.range 0 (Cdfg.n_partitions d.Benchmarks.cdfg + 1)))
    [ Report.pins_row pins ]

let pins_json pins =
  J.Arr
    (List.map
       (fun (p, n) -> J.Obj [ ("partition", J.Int p); ("pins", J.Int n) ])
       pins)

module F = Mcs_flow.Flow
module A = Mcs_flow.Artifact
module Diag = Mcs_flow.Diag
module Pass = Mcs_flow.Pass

(* Rendering of the unified flow result, preserving the per-flow report
   shapes of the dissertation's tables. *)
let render (d : Benchmarks.design) (r : F.result) =
  let cdfg = d.Benchmarks.cdfg in
  match (r.F.flow, r.F.connection) with
  | _, A.Bundles links ->
      Format.fprintf fmt "Schedule:@.%a@.@." Report.schedule r.F.schedule;
      Format.fprintf fmt "Theorem 3.1 connection:@.%a@.@." Report.bundles
        links;
      pins_table d r.F.pins
  | F.Ch5, A.Buses { conn; _ } ->
      Format.fprintf fmt "Schedule (force-directed):@.%a@.@." Report.schedule
        r.F.schedule;
      Format.fprintf fmt "Connection (clique partitioning):@.%a@.@."
        (Report.connection cdfg) conn;
      pins_table d r.F.pins;
      Format.fprintf fmt "@.Functional units implied:@.";
      List.iter
        (fun ((p, ty), n) -> Format.fprintf fmt "  P%d: %d %s@." p n ty)
        r.F.fus
  | _, A.Buses { conn; initial; assignment; allocation } ->
      Format.fprintf fmt "Interchip connection:@.%a@.@."
        (Report.connection cdfg) conn;
      Report.bus_assignment cdfg fmt ~initial ~final:assignment;
      Format.fprintf fmt "@.";
      Report.bus_allocation cdfg ~rate:r.F.rate fmt allocation;
      Format.fprintf fmt "@.Schedule:@.%a@.@." Report.schedule r.F.schedule;
      pins_table d r.F.pins;
      Format.fprintf fmt "@.pipe length: %d (static assignment: %s)@."
        r.F.pipe_length
        (match r.F.static_pipe_length with
        | Some n -> string_of_int n
        | None -> "unschedulable")
  | _, A.Subbuses { buses; _ } ->
      Format.fprintf fmt "Bus structure (with sub-buses):@.%a@.@."
        (Report.real_buses cdfg) buses;
      Format.fprintf fmt "Schedule:@.%a@.@." Report.schedule r.F.schedule;
      pins_table d r.F.pins;
      Format.fprintf fmt "@.pipe length: %d@." r.F.pipe_length

let fields_of (r : F.result) =
  let static () =
    [
      ( "static_pipe_length",
        match r.F.static_pipe_length with
        | Some n -> J.Int n
        | None -> J.Null );
    ]
  in
  let fus () =
    [
      ( "fus",
        J.Arr
          (List.map
             (fun ((p, ty), n) ->
               J.Obj
                 [
                   ("partition", J.Int p);
                   ("optype", J.Str ty);
                   ("count", J.Int n);
                 ])
             r.F.fus) );
    ]
  in
  let per_flow =
    match r.F.connection with
    | A.Bundles links -> [ ("bundles", J.Int (List.length links)) ]
    | A.Buses { conn; _ } ->
        [ ("buses", J.Int (C.n_buses conn)) ]
        @ (if r.F.flow = F.Ch5 then fus () else static ())
    | A.Subbuses { buses; _ } ->
        [
          ("buses", J.Int (List.length buses));
          ( "split_buses",
            J.Int
              (List.length
                 (List.filter
                    (fun (b : Mcs_core.Subbus.real_bus) -> b.split_at <> None)
                    buses)) );
        ]
        @ static ()
  in
  [
    ("pins", pins_json r.F.pins);
    ("pipe_length", J.Int r.F.pipe_length);
    ("attempts", J.Int r.F.attempts);
  ]
  @ (match r.F.degraded with
    | [] -> []
    | steps -> [ ("degraded", J.Arr (List.map (fun m -> J.Str m) steps)) ])
  @ per_flow

(* Under --metrics, replay the final schedule through the Chapter 3
   dedicated-port pin-allocation ILP with every I/O operation fixed at its
   scheduled control-step group.  The verdict compares the flow's shared
   buses against the dedicated-port model at the same schedule, and the
   solve drives the simplex and branch-and-bound counters for every flow. *)
let ilp_cross_check d cons ~rate sched =
  let cdfg = d.Benchmarks.cdfg in
  let fixed =
    List.map
      (fun op -> (op, Mcs_sched.Schedule.group sched op))
      (Cdfg.io_ops cdfg)
  in
  match Simple_part.Pin_ilp.feasible cdfg cons ~rate ~fixed with
  | ok ->
      Format.fprintf fmt
        "@.pin-allocation ILP cross-check (dedicated ports): %s@."
        (if ok then "feasible" else "infeasible")
  | exception e ->
      Format.fprintf fmt "@.pin-allocation ILP cross-check: skipped (%s)@."
        (Printexc.to_string e)

let level_label = function
  | Pass.Off -> "off"
  | Pass.Warn -> "warn"
  | Pass.Strict -> "strict"

(* ---- feedback-guided refinement (the --refine flag) ---- *)

module Rf = Mcs_refine.Refine

let refine_report (out : Rf.outcome) =
  if out.Rf.iterations <> [] then
    Report.table fmt ~title:"Refinement iterations"
      ~header:
        [ "#"; "Bottleneck"; "Action"; "Obj"; "After"; "Acc"; "Pivots";
          "Wall ms" ]
      (List.map
         (fun (it : Rf.iteration) ->
           [
             string_of_int it.Rf.index;
             it.Rf.bottleneck;
             it.Rf.action;
             string_of_int it.Rf.objective_before;
             (match it.Rf.objective_after with
             | Some o -> string_of_int o
             | None -> "-");
             (if it.Rf.accepted then "*" else "");
             string_of_int it.Rf.pivots;
             Printf.sprintf "%.1f" it.Rf.wall_ms;
           ])
         out.Rf.iterations);
  Format.fprintf fmt
    "refinement: %d iteration%s, %d accepted, objective %d%s@."
    (List.length out.Rf.iterations)
    (if List.length out.Rf.iterations = 1 then "" else "s")
    (List.length (List.filter (fun (it : Rf.iteration) -> it.Rf.accepted)
                    out.Rf.iterations))
    (Rf.objective out.Rf.result)
    (if out.Rf.fixed_point then " (fixed point)"
     else if out.Rf.exhausted then " (deadline exhausted)"
     else "")

let refine_fields = function
  | None -> []
  | Some (out : Rf.outcome) ->
      [
        ( "refine",
          J.Obj
            [
              ("improved", J.Bool out.Rf.improved);
              ("fixed_point", J.Bool out.Rf.fixed_point);
              ("exhausted", J.Bool out.Rf.exhausted);
              ("objective", J.Int (Rf.objective out.Rf.result));
              ( "iterations",
                J.Arr
                  (List.map
                     (fun (it : Rf.iteration) ->
                       J.Obj
                         ([
                            ("index", J.Int it.Rf.index);
                            ("bottleneck", J.Str it.Rf.bottleneck);
                            ("action", J.Str it.Rf.action);
                            ("objective_before", J.Int it.Rf.objective_before);
                          ]
                         @ (match it.Rf.objective_after with
                           | Some o -> [ ("objective_after", J.Int o) ]
                           | None -> [])
                         @ [
                             ("accepted", J.Bool it.Rf.accepted);
                             ("reason", J.Str it.Rf.reason);
                             ("pivots", J.Int it.Rf.pivots);
                             ("nodes", J.Int it.Rf.nodes);
                             ("wall_ms", J.Float it.Rf.wall_ms);
                           ]))
                     out.Rf.iterations) );
            ] );
      ]

let counter_count name = Mcs_obs.Metrics.(count (counter name))

module Fs = Mcs_ilp.Fsimplex

(* --arith: solver arithmetic for every ILP of the run, exported through
   the MCS_ARITH environment channel so it reaches every layer that
   defaults to [Fsimplex.arith_of_env] — including forked dse workers,
   which inherit the environment.  Unknown values warn and keep the
   default, like --trace and --log-level. *)
let set_arith = function
  | None -> ()
  | Some s -> (
      match String.lowercase_ascii s with
      | "float" | "float-certified" -> Unix.putenv "MCS_ARITH" "float"
      | "rational" | "exact" -> Unix.putenv "MCS_ARITH" "rational"
      | _ -> Mcs_obs.Log.warn "unknown --arith %S (float|rational)" s)

let arith_json_fields () =
  [
    ("arith", J.Str (Fs.arith_to_string (Fs.arith_of_env ())));
    ("certify_ok", J.Int (counter_count "ilp.certify.ok"));
    ("certify_fail", J.Int (counter_count "ilp.certify.fail"));
    ("arith_fallbacks", J.Int (counter_count "bb.arith_fallbacks"));
  ]

(* One exit line making degraded-to-rational solves visible without
   --metrics; printed only when some simplex actually ran. *)
let arith_exit_line () =
  let ok = counter_count "ilp.certify.ok"
  and fail = counter_count "ilp.certify.fail"
  and fb = counter_count "bb.arith_fallbacks" in
  if
    ok + fail > 0
    || counter_count "simplex.pivots" > 0
    || counter_count "fsimplex.pivots" > 0
  then
    Format.fprintf fmt
      "solver arithmetic: %s (%d certified, %d failed, %d rational \
       fallback%s)@."
      (Fs.arith_to_string (Fs.arith_of_env ()))
      ok fail fb
      (if fb = 1 then "" else "s")

let synth design flow rate pipe_length ports check strict deadline_ms
    no_fallback refine listing trace trace_out metrics json_file log_level
    arith =
  set_arith arith;
  (match log_level with
  | None -> ()
  | Some s -> (
      match Mcs_obs.Log.level_of_string s with
      | Some l -> Mcs_obs.Log.set_level l
      | None ->
          Mcs_obs.Log.warn "unknown log level %S (debug|info|warn|error|quiet)"
            s));
  (match trace with
  | None -> ()
  | Some "tree" -> Mcs_obs.Trace.set_sink (Mcs_obs.Trace.Tree Format.err_formatter)
  | Some "json" -> Mcs_obs.Trace.set_sink (Mcs_obs.Trace.Jsonl Format.err_formatter)
  | Some m -> Mcs_obs.Log.warn "unknown trace mode %S (tree|json)" m);
  if listing then list_designs ()
  else
    match List.assoc_opt design designs with
    | None ->
        Format.eprintf
          "unknown design %S (use --list to see what is available)@." design;
        2
    | Some mk -> (
        let d = mk () in
        let rate =
          match rate with Some r -> r | None -> List.hd d.Benchmarks.rates
        in
        match F.name_of_string flow with
        | Error m ->
            Format.eprintf "%s@." m;
            2
        | Ok flow_name ->
            (* ch3 is defined on dedicated unidirectional ports and ch6 on
               bidirectional ones; --ports selects the mode for ch4/ch5. *)
            let mode =
              match flow_name with
              | F.Ch3 -> C.Unidir
              | F.Ch6 -> C.Bidir
              | F.Ch4 | F.Ch5 ->
                  if ports = "bidir" then C.Bidir else C.Unidir
            in
            let level =
              if strict then Pass.Strict
              else if check then Pass.Warn
              else Mcs_check.level_of_env ()
            in
            let spec =
              F.spec_of_design ?pipe_length ~mode ~flow:flow_name d ~rate
            in
            let cdfg = d.Benchmarks.cdfg in
            Mcs_obs.Metrics.reset ();
            if json_file <> None then begin
              Mcs_obs.Trace.reset_collected ();
              Mcs_obs.Trace.set_collect true;
              (* The event journal rides on the report whenever the run
                 degrades, exhausts or fails its checks. *)
              Mcs_obs.Events.clear ();
              Mcs_obs.Events.set_enabled true
            end;
            if trace_out <> None then begin
              Mcs_obs.Events.clear ();
              Mcs_prof.Chrome_trace.start ()
            end;
            let t0 = Unix.gettimeofday () in
            (* The budget's deadline clock starts here, right before the
               run it bounds. *)
            let policy =
              {
                F.default_policy with
                F.budget =
                  (match deadline_ms with
                  | Some ms when ms > 0. ->
                      Mcs_resilience.Budget.make ~deadline_ms:ms ()
                  | Some _ | None -> Mcs_resilience.Budget.unlimited);
                F.fallback = not no_fallback;
              }
            in
            let outcome = Mcs_check.run ~level ~policy flow_name spec in
            (* The refinement loop shares the run's budget, so a
               --deadline-ms allowance bounds base synthesis and
               refinement together. *)
            let refine_out =
              match outcome with
              | Ok r when refine > 0 ->
                  Some (Rf.improve ~max_iters:refine ~policy spec r)
              | Ok _ | Error _ -> None
            in
            let outcome =
              match refine_out with
              | Some out -> Ok out.Rf.result
              | None -> outcome
            in
            let wall = Unix.gettimeofday () -. t0 in
            let diag_fields diags =
              if level = Pass.Off && diags = [] then []
              else
                [
                  ("check", J.Str (level_label level));
                  ("diagnostics", J.Arr (List.map Diag.to_json diags));
                ]
            in
            let code, fields =
              match outcome with
              | Ok r ->
                  render d r;
                  (match refine_out with
                  | Some out -> refine_report out
                  | None -> ());
                  List.iter
                    (fun dg -> Format.eprintf "%a@." (Diag.pp ~cdfg) dg)
                    r.F.diags;
                  if F.is_degraded r then
                    Format.eprintf
                      "synthesis degraded (%d ladder step%s): %s@."
                      (List.length r.F.degraded)
                      (if List.length r.F.degraded = 1 then "" else "s")
                      (String.concat "; " r.F.degraded);
                  let violations =
                    List.length (List.filter Diag.is_error r.F.diags)
                  in
                  let code =
                    if violations > 0 && level <> Pass.Off then begin
                      Format.eprintf "check: %d violation(s)@." violations;
                      1
                    end
                    else 0
                  in
                  (code, fields_of r @ refine_fields refine_out
                         @ diag_fields r.F.diags)
              | Error dg ->
                  Format.eprintf "%a@." (Diag.pp ~cdfg) dg;
                  Format.eprintf "synthesis failed: %s@." (Diag.message dg);
                  (1, diag_fields [ dg ])
            in
            if metrics then begin
              (match outcome with
              | Ok r -> ilp_cross_check d spec.F.cons ~rate r.F.schedule
              | Error _ -> ());
              Format.fprintf fmt "@.%a" Mcs_obs.Metrics.pp_summary ()
            end;
            arith_exit_line ();
            let json_code =
              match json_file with
              | None -> 0
              | Some path -> (
                  let status =
                    match outcome with
                    | Ok _ -> `Ok
                    | Error dg -> `Error (Diag.message dg)
                  in
                  (* Exhausted, degraded or checker-dirty runs carry the
                     solver event journal, so the report alone explains
                     which solver tripped which budget axis. *)
                  let journal_worthy =
                    Mcs_prof.Journal.exhausted_axis () <> None
                    || (match outcome with
                       | Error dg -> dg.Diag.code = Diag.Exhausted
                       | Ok r ->
                           F.is_degraded r
                           || List.exists Diag.is_error r.F.diags)
                  in
                  let journal_fields =
                    if journal_worthy then
                      [ ("journal", Mcs_prof.Journal.to_json ()) ]
                      @ (match Mcs_prof.Journal.exhausted_axis () with
                        | Some a -> [ ("exhausted_axis", J.Str a) ]
                        | None -> [])
                    else []
                  in
                  let report =
                    J.run_report ~flow ~design ~rate ~status ~wall_s:wall
                      ~result:(fields @ arith_json_fields () @ journal_fields)
                      ()
                  in
                  match J.write_file path report with
                  | Ok () -> 0
                  | Error m ->
                      Format.eprintf "cannot write %s: %s@." path m;
                      3)
            in
            let trace_code =
              match trace_out with
              | None -> 0
              | Some path -> (
                  match Mcs_prof.Chrome_trace.write path with
                  | Ok () -> 0
                  | Error m ->
                      Format.eprintf "cannot write %s: %s@." path m;
                      3)
            in
            if code <> 0 then code
            else if json_code <> 0 then json_code
            else trace_code)

(* ---- design-space exploration (the dse subcommand) ---- *)

module E_job = Mcs_engine.Job
module E_pool = Mcs_engine.Pool
module E_cache = Mcs_engine.Cache
module E_pareto = Mcs_engine.Pareto

(* "3,4,5", "6-10" and mixtures like "3,6-8" *)
let parse_int_list what s =
  if s = "" then Ok []
  else
    try
      Ok
        (List.concat_map
           (fun tok ->
             match String.index_opt tok '-' with
             | Some i when i > 0 ->
                 let a = int_of_string (String.sub tok 0 i) in
                 let b =
                   int_of_string
                     (String.sub tok (i + 1) (String.length tok - i - 1))
                 in
                 if b < a || a < 1 then failwith "range"
                 else Mcs_util.Listx.range a (b + 1)
             | _ ->
                 let v = int_of_string tok in
                 if v < 1 then failwith "positive" else [ v ])
           (String.split_on_char ',' s))
    with _ ->
      Error
        (Printf.sprintf "cannot parse %s %S (want e.g. \"3,4,5\" or \"6-10\")"
           what s)

let parse_flows s =
  let names =
    match s with
    | "all" -> List.map E_job.flow_to_string E_job.all_flows
    | s -> String.split_on_char ',' s
  in
  List.fold_left
    (fun acc name ->
      match (acc, E_job.flow_of_string name) with
      | Error _, _ -> acc
      | Ok _, Error m -> Error m
      | Ok fs, Ok f -> Ok (fs @ [ f ]))
    (Ok []) names

(* Grid planning shared by the dse and client subcommands: same flags,
   same job list, so a sweep can be pointed at the fork pool or at a
   warm daemon interchangeably. *)
let grid_plan ?(refine = 0) designs_s flows_s rates_s pls_s =
  let refine = max 0 refine in
  let ( let* ) = Result.bind in
  let* flows = parse_flows flows_s in
  let* rates = parse_int_list "--rates" rates_s in
  let* pls = parse_int_list "--pipe-lengths" pls_s in
  let* designs =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        match List.assoc_opt name E_job.named_designs with
        | Some mk ->
            Ok (acc @ [ (E_job.Named name, Some (mk ()).Benchmarks.rates) ])
        | None when String.contains name ':' ->
            (* Generated designs, same syntax the engine's job encoding
               uses: random:<seed>:<chips>:<ops> and
               rsimple:<seed>:<chips>:<ops_per_chip>. *)
            let* d = E_job.design_of_string name in
            Ok (acc @ [ (d, None) ])
        | None ->
            Error
              (Printf.sprintf
                 "unknown design %S (known: %s, or random:<seed>:<chips>:\
                  <ops> / rsimple:<seed>:<chips>:<ops_per_chip>)"
                 name
                 (String.concat ", " (List.map fst E_job.named_designs))))
      (Ok [])
      (String.split_on_char ',' designs_s)
  in
  (* With no --rates, a named design sweeps the rates the paper
     evaluates for it; generated designs have no paper rates and
     default to 2..4. *)
  Ok
    (List.concat_map
       (fun (design, paper_rates) ->
         let rates =
           if rates <> [] then rates
           else match paper_rates with Some rs -> rs | None -> [ 2; 3; 4 ]
         in
         (* Ascending, deduplicated: neighboring grid points (rate r,
            r+1) then run back-to-back, which is what lets the sequential
            drains (run_local, a server batch) chain warm-start bases
            from one point to the next. *)
         let rates = List.sort_uniq compare rates in
         E_job.grid ~designs:[ design ] ~flows ~rates ~pipe_lengths:pls
           ~refine ())
       designs)

let dse designs_s flows_s rates_s pls_s refine jobs cache_dir timeout
    deadline_ms retry json_file trace_out arith =
  set_arith arith;
  match grid_plan ~refine designs_s flows_s rates_s pls_s with
  | Error m ->
      Format.eprintf "dse: %s@." m;
      2
  | Ok [] ->
      Format.eprintf "dse: empty job grid@.";
      2
  | Ok joblist ->
      Mcs_obs.Metrics.reset ();
      if trace_out <> None then begin
        Mcs_obs.Events.clear ();
        Mcs_prof.Chrome_trace.start ()
      end;
      let cache = Option.map E_cache.open_dir cache_dir in
      (match deadline_ms with
      | Some ms when ms > 0. ->
          (* Forked workers inherit the environment; MCS_DEADLINE_MS is
             how each one gets its own fresh per-job budget. *)
          Unix.putenv "MCS_DEADLINE_MS" (Printf.sprintf "%.0f" ms)
      | Some _ | None -> ());
      let t0 = Unix.gettimeofday () in
      let outcomes = E_pool.run ~jobs ?timeout ?cache ~retry joblist in
      let wall = Unix.gettimeofday () -. t0 in
      let front = E_pareto.frontier outcomes in
      Report.table fmt
        ~title:
          (Printf.sprintf
             "Design-space exploration: %d jobs, %d worker%s, %.2f s"
             (List.length joblist) (max 1 jobs)
             (if max 1 jobs = 1 then "" else "s")
             wall)
        ~header:
          [ "Design"; "Flow"; "Rate"; "PL req"; "Status"; "Pins"; "Pipe";
            "FUs"; "Refine"; "Pareto" ]
        (List.map
           (fun (o : Mcs_engine.Outcome.t) ->
             let j = o.Mcs_engine.Outcome.job in
             let feas = Mcs_engine.Outcome.is_feasible o in
             [
               E_job.design_to_string j.E_job.design;
               E_job.flow_to_string j.E_job.flow;
               string_of_int j.E_job.rate;
               (match j.E_job.pipe_length with
               | Some pl -> string_of_int pl
               | None -> "-");
               Mcs_engine.Outcome.status_label o.Mcs_engine.Outcome.status;
               (if feas then
                  string_of_int (Mcs_engine.Outcome.pins_total o)
                else "-");
               (if feas then string_of_int o.Mcs_engine.Outcome.pipe_length
                else "-");
               (if feas then string_of_int o.Mcs_engine.Outcome.fu_count
                else "-");
               (match o.Mcs_engine.Outcome.refine with
               | Some r ->
                   Printf.sprintf "%d/%d" r.Mcs_engine.Outcome.accepted
                     (List.length r.Mcs_engine.Outcome.steps)
               | None -> "-");
               (if List.memq o front then "*" else "");
             ])
           outcomes);
      let c name = counter_count ("engine." ^ name) in
      (* Solver-arithmetic visibility: each worker reports its own share
         of the certification counters on its outcome (the parent's
         in-process counters never see a forked worker's solves). *)
      let sum_solver f =
        List.fold_left
          (fun acc (o : Mcs_engine.Outcome.t) ->
            match o.Mcs_engine.Outcome.solver with
            | Some s -> acc + f s
            | None -> acc)
          0 outcomes
      in
      let certify_ok = sum_solver (fun s -> s.Mcs_engine.Outcome.certify_ok)
      and certify_fail =
        sum_solver (fun s -> s.Mcs_engine.Outcome.certify_fail)
      and fallbacks =
        sum_solver (fun s -> s.Mcs_engine.Outcome.arith_fallbacks)
      in
      Format.fprintf fmt
        "@.workers forked: %d; crashes: %d; timeouts: %d; retries: %d@."
        (c "pool.forks") (c "pool.crashes") (c "pool.timeouts")
        (c "pool.retries");
      Format.fprintf fmt
        "solver arithmetic: %s (%d certified, %d failed, %d rational \
         fallback%s)@."
        (Fs.arith_to_string (Fs.arith_of_env ()))
        certify_ok certify_fail fallbacks
        (if fallbacks = 1 then "" else "s");
      if cache <> None then
        Format.fprintf fmt "cache: %d hits, %d misses, %d stale@."
          (c "cache.hits") (c "cache.misses") (c "cache.stale");
      let trace_code =
        match trace_out with
        | None -> 0
        | Some path -> (
            match Mcs_prof.Chrome_trace.write path with
            | Ok () ->
                Format.fprintf fmt "wrote %s@." path;
                0
            | Error m ->
                Format.eprintf "cannot write %s: %s@." path m;
                3)
      in
      let json_code =
        match json_file with
      | None -> 0
      | Some path -> (
          let report =
            match E_pareto.report outcomes with
            | J.Obj fields ->
                (* Engine counters are deterministic for a fixed job list
                   and cache state (unlike wall times, which stay out of
                   the report): the warm-cache CI check reads them. *)
                J.Obj
                  (fields
                  @ [
                      ( "engine",
                        J.Obj
                          [
                            ("cache_hits", J.Int (c "cache.hits"));
                            ("cache_misses", J.Int (c "cache.misses"));
                            ("cache_stale", J.Int (c "cache.stale"));
                            ("forks", J.Int (c "pool.forks"));
                            ("crashes", J.Int (c "pool.crashes"));
                            ("timeouts", J.Int (c "pool.timeouts"));
                            ("retries", J.Int (c "pool.retries"));
                            ( "arith",
                              J.Str
                                (Fs.arith_to_string (Fs.arith_of_env ())) );
                            ("certify_ok", J.Int certify_ok);
                            ("certify_fail", J.Int certify_fail);
                            ("arith_fallbacks", J.Int fallbacks);
                          ] );
                    ])
            | r -> r
          in
          match J.write_file path report with
          | Ok () ->
              Format.fprintf fmt "wrote %s@." path;
              0
          | Error m ->
              Format.eprintf "cannot write %s: %s@." path m;
              3)
      in
      if json_code <> 0 then json_code else trace_code

(* ---- submitting to a warm daemon (the client subcommand) ---- *)

module S_client = Mcs_server.Client
module S_proto = Mcs_server.Protocol

let reply_json (r : S_proto.reply) =
  match J.of_string (S_proto.response_to_string (S_proto.Reply r)) with
  | Ok j -> j
  | Error _ -> J.Null

let client socket tcp designs_s flows_s rates_s pls_s refine deadline_ms
    no_fallback stats_only shutdown_only json_file =
  let connect () =
    match tcp with
    | None -> S_client.connect_unix socket
    | Some hostport -> (
        match String.rindex_opt hostport ':' with
        | Some i ->
            let host = String.sub hostport 0 i in
            let port =
              int_of_string
                (String.sub hostport (i + 1) (String.length hostport - i - 1))
            in
            S_client.connect_tcp (if host = "" then "127.0.0.1" else host) port
        | None -> failwith ("--tcp wants HOST:PORT, got " ^ hostport))
  in
  match connect () with
  | exception Unix.Unix_error (e, _, _) ->
      Format.eprintf "client: cannot connect to %s: %s@."
        (match tcp with Some hp -> hp | None -> socket)
        (Unix.error_message e);
      2
  | exception Failure m ->
      Format.eprintf "client: %s@." m;
      2
  | c -> (
      Fun.protect ~finally:(fun () -> S_client.close c) @@ fun () ->
      if stats_only then
        match S_client.stats c with
        | Ok j ->
            Format.printf "%a@." J.pp j;
            0
        | Error m ->
            Format.eprintf "client: %s@." m;
            2
      else if shutdown_only then
        match S_client.shutdown c with
        | Ok drained ->
            Format.printf "daemon drained %d job%s and exited@." drained
              (if drained = 1 then "" else "s");
            0
        | Error m ->
            Format.eprintf "client: %s@." m;
            2
      else
        match grid_plan ~refine designs_s flows_s rates_s pls_s with
        | Error m ->
            Format.eprintf "client: %s@." m;
            2
        | Ok [] ->
            Format.eprintf "client: empty job grid@.";
            2
        | Ok joblist -> (
            let submits =
              List.map
                (fun job ->
                  {
                    S_proto.id = "";
                    job;
                    deadline_ms;
                    fallback = not no_fallback;
                  })
                joblist
            in
            let t0 = Unix.gettimeofday () in
            match S_client.submit_all c submits with
            | Error m ->
                Format.eprintf "client: %s@." m;
                (* A typed oversized rejection means the server's frame
                   bound, not the transport, refused us. *)
                let contains hay needle =
                  let nh = String.length hay and nn = String.length needle in
                  let rec go i =
                    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
                  in
                  nn > 0 && go 0
                in
                if contains m "[oversized]" then
                  Format.eprintf
                    "client: the request line exceeded the daemon's \
                     --max-frame bound; submit a smaller job encoding@.";
                2
            | Ok replies ->
                let wall = Unix.gettimeofday () -. t0 in
                Report.table fmt
                  ~title:
                    (Printf.sprintf "Served %d job%s in %.2f s"
                       (List.length replies)
                       (if List.length replies = 1 then "" else "s")
                       wall)
                  ~header:
                    [ "Id"; "Design"; "Flow"; "Rate"; "Status"; "Cached";
                      "Coal"; "Wall ms"; "Diag" ]
                  (List.map2
                     (fun job (r : S_proto.reply) ->
                       [
                         r.S_proto.id;
                         E_job.design_to_string job.E_job.design;
                         E_job.flow_to_string job.E_job.flow;
                         string_of_int job.E_job.rate;
                         (match r.S_proto.outcome with
                         | Some o ->
                             Mcs_engine.Outcome.status_label
                               o.Mcs_engine.Outcome.status
                         | None -> "rejected");
                         (if r.S_proto.cached then "*" else "");
                         (if r.S_proto.coalesced then "*" else "");
                         Printf.sprintf "%.1f" r.S_proto.wall_ms;
                         (match r.S_proto.diag with
                         | Some d -> d.S_proto.code
                         | None -> "");
                       ])
                     joblist replies);
                let json_code =
                  match json_file with
                  | None -> 0
                  | Some path -> (
                      let report =
                        J.Obj
                          [
                            ("schema", J.Str "mcs-client/1");
                            ( "endpoint",
                              J.Str
                                (match tcp with
                                | Some hp -> hp
                                | None -> socket) );
                            ("jobs", J.Int (List.length replies));
                            ("replies", J.Arr (List.map reply_json replies));
                          ]
                      in
                      match J.write_file path report with
                      | Ok () ->
                          Format.fprintf fmt "wrote %s@." path;
                          0
                      | Error m ->
                          Format.eprintf "cannot write %s: %s@." path m;
                          3)
                in
                let diag_count code =
                  List.length
                    (List.filter
                       (fun (r : S_proto.reply) ->
                         match r.S_proto.diag with
                         | Some d -> d.S_proto.code = code
                         | None -> false)
                       replies)
                in
                let poisoned = diag_count "poisoned" in
                if poisoned > 0 then
                  Format.eprintf
                    "client: %d job%s quarantined as poison (repeatedly \
                     killed a server worker domain)@."
                    poisoned
                    (if poisoned = 1 then "" else "s");
                let rejected =
                  List.exists
                    (fun (r : S_proto.reply) -> r.S_proto.outcome = None)
                    replies
                in
                if json_code <> 0 then json_code
                else if rejected then 1
                else 0))

open Cmdliner

let design =
  Arg.(value & opt string "ar-general" & info [ "design"; "d" ] ~docv:"NAME"
         ~doc:"Design to synthesize (see $(b,--list)).")

let flow =
  Arg.(value & opt string "ch4" & info [ "flow"; "f" ] ~docv:"FLOW"
         ~doc:"Synthesis flow: ch3 (simple partitioning), ch4 \
               (connection-first), ch5 (schedule-first), ch6 (sub-bus \
               sharing).")

let rate =
  Arg.(value & opt (some int) None & info [ "rate"; "r" ] ~docv:"L"
         ~doc:"Initiation rate (default: the design's first evaluated rate).")

let pipe_length =
  Arg.(value & opt (some int) None & info [ "pipe-length"; "p" ] ~docv:"T"
         ~doc:"Pipe length for the ch5 flow (default: the critical path).")

let ports =
  Arg.(value & opt string "unidir" & info [ "ports" ] ~docv:"MODE"
         ~doc:"I/O port mode: unidir or bidir.")

let listing =
  Arg.(value & flag & info [ "list"; "l" ] ~doc:"List the bundled designs.")

let trace =
  Arg.(value & opt ~vopt:(Some "tree") (some string) None
       & info [ "trace" ] ~docv:"MODE"
           ~doc:"Emit per-phase timing spans to stderr: $(b,tree) (indented \
                 summary, the default when no MODE is given) or $(b,json) \
                 (one JSON object per span).")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Record a Chrome trace (phase spans plus solver events: \
               branch-and-bound nodes, simplex pivot batches, FDS passes, \
               Hungarian augments, cache and pool activity, ladder steps) \
               and write it to $(docv), loadable in chrome://tracing or \
               ui.perfetto.dev.")

let metrics =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print solver counters (simplex pivots, branch-and-bound \
                 nodes, search backtracks, ...) after synthesis, and run the \
                 dedicated-port pin-allocation ILP cross-check on the final \
                 schedule.")

let json_file =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Write a machine-readable run report (schema mcs-run/1) with \
               status, result, per-phase wall times and solver metrics to \
               $(docv).")

let log_level =
  Arg.(value & opt (some string) None & info [ "log-level" ] ~docv:"LVL"
         ~doc:"Diagnostic verbosity: debug, info, warn (default), error or \
               quiet.  The $(b,MCS_LOG) environment variable sets the same \
               threshold.")

let check =
  Arg.(value & flag
       & info [ "check" ]
           ~doc:"Run the $(b,Mcs_check) static analysis on every phase \
                 artifact and on the final result; violations go to stderr \
                 as structured diagnostics and make the exit code nonzero.  \
                 The $(b,MCS_CHECK) environment variable (off|warn|strict) \
                 sets the same behaviour.")

let strict =
  Arg.(value & flag
       & info [ "strict" ]
           ~doc:"Like $(b,--check), but the first violation aborts the flow \
                 instead of being collected.")

let deadline_ms =
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"Wall-clock budget for the whole run, in milliseconds.  Every \
               solver the flow invokes shares it; when it runs out the flow \
               steps down its degradation ladder (see $(b,--no-fallback)) \
               and the result is flagged degraded.")

let no_fallback =
  Arg.(value & flag
       & info [ "no-fallback" ]
           ~doc:"Disable the degradation ladder: budget exhaustion becomes \
               a typed $(b,exhausted) diagnostic (nonzero exit) instead of \
               a degraded result.")

let refine_doc =
  "Run up to $(docv) feedback-guided refinement iterations after \
   synthesis (bare $(b,--refine) means 3): each iteration extracts the \
   dominant bottleneck from the checker's evidence — a degradation-ladder \
   step, the critical tail, pin-budget pressure or functional-unit slack \
   — re-solves just that subproblem under a sliced budget, and accepts \
   the splice only when it strictly improves the (pins, pipe length) \
   objective and passes the strict checker.  $(b,--refine=0) (the \
   default) is bit-identical to no refinement."

let refine_arg =
  Arg.(value & opt ~vopt:3 int 0
       & info [ "refine" ] ~docv:"N" ~doc:refine_doc)

let arith_arg =
  Arg.(value & opt (some string) None & info [ "arith" ] ~docv:"MODE"
         ~doc:"ILP solver arithmetic: $(b,float) (double-precision simplex \
               with exact rational certification of every accepted basis, \
               the default) or $(b,rational) (exact arithmetic throughout, \
               the certification oracle).  Exported as $(b,MCS_ARITH), so \
               forked dse workers inherit the choice.")

let synth_term =
  Term.(
    const synth $ design $ flow $ rate $ pipe_length $ ports $ check
    $ strict $ deadline_ms $ no_fallback $ refine_arg $ listing $ trace
    $ trace_out $ metrics $ json_file $ log_level $ arith_arg)

let dse_cmd =
  let designs =
    Arg.(value & opt string "ar-general"
         & info [ "designs" ] ~docv:"NAMES"
             ~doc:"Comma-separated designs to sweep (see $(b,--list)).")
  in
  let flows =
    Arg.(value & opt string "ch4-unidir,ch4-bidir,ch5,ch6"
         & info [ "flows" ] ~docv:"FLOWS"
             ~doc:"Comma-separated flows: ch3, ch4-unidir, ch4-bidir, ch5, \
                   ch6, or $(b,all).")
  in
  let rates =
    Arg.(value & opt string "" & info [ "rates" ] ~docv:"LIST"
           ~doc:"Initiation rates, e.g. $(b,3,4,5) or $(b,3-5) (default: \
                 each design's evaluated rates).")
  in
  let pipe_lengths =
    Arg.(value & opt string "" & info [ "pipe-lengths" ] ~docv:"LIST"
           ~doc:"Pipe lengths for ch5 jobs, e.g. $(b,6-10) (default: the \
                 critical path).")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker processes to keep in flight.")
  in
  let cache =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR"
           ~doc:"Persistent result cache directory (created if missing); \
                 identical jobs are served from it without forking a \
                 worker.")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-job wall-clock limit; an overrunning worker is killed \
                 and its point reported as timed out.")
  in
  let deadline_ms =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Per-job solver budget in wall milliseconds (exported to \
                   workers as $(b,MCS_DEADLINE_MS)); jobs that exhaust it \
                   degrade instead of overrunning.")
  in
  let retry =
    Arg.(value & flag
         & info [ "retry" ]
             ~doc:"Re-run each crashed or timed-out job once with a halved \
                   budget (degraded mode) before reporting it.")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the machine-readable sweep report (schema \
                 $(b,mcs-dse/1), deterministic for a fixed grid and cache \
                 state) to $(docv).")
  in
  Cmd.v
    (Cmd.info "dse" ~doc:"explore a design-space grid with a worker pool"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Expands a (designs x flows x rates x pipe-lengths) grid into \
              batch jobs, runs them on a pool of forked workers with crash \
              isolation and per-job timeouts, and reports every point plus \
              the (pins, pipe length, functional units) Pareto frontier.  A \
              worker count of 1 and of N produce identical reports; a \
              persistent $(b,--cache) makes repeated sweeps incremental.";
         ])
    Term.(
      const dse $ designs $ flows $ rates $ pipe_lengths $ refine_arg $ jobs
      $ cache $ timeout $ deadline_ms $ retry $ json $ trace_out $ arith_arg)

let client_cmd =
  let socket =
    Arg.(value
         & opt string Mcs_server.Server.default_config.Mcs_server.Server.socket_path
         & info [ "socket"; "s" ] ~docv:"PATH"
             ~doc:"Unix-domain socket of the running $(b,mcs-serve) daemon.")
  in
  let tcp =
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"Connect over TCP instead of the Unix socket.")
  in
  let designs =
    Arg.(value & opt string "ar-general"
         & info [ "designs" ] ~docv:"NAMES"
             ~doc:"Comma-separated designs to sweep (see $(b,--list)).")
  in
  let flows =
    Arg.(value & opt string "ch4-unidir,ch4-bidir,ch5,ch6"
         & info [ "flows" ] ~docv:"FLOWS"
             ~doc:"Comma-separated flows: ch3, ch4-unidir, ch4-bidir, ch5, \
                   ch6, or $(b,all).")
  in
  let rates =
    Arg.(value & opt string "" & info [ "rates" ] ~docv:"LIST"
           ~doc:"Initiation rates, e.g. $(b,3,4,5) or $(b,3-5) (default: \
                 each design's evaluated rates).")
  in
  let pipe_lengths =
    Arg.(value & opt string "" & info [ "pipe-lengths" ] ~docv:"LIST"
           ~doc:"Pipe lengths for ch5 jobs, e.g. $(b,6-10).")
  in
  let deadline_ms =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Per-request deadline: the daemon's admission control \
                   rejects requests it cannot meet, and admitted jobs run \
                   under a solver budget of $(docv) milliseconds.")
  in
  let no_fallback =
    Arg.(value & flag
         & info [ "no-fallback" ]
             ~doc:"Budget exhaustion becomes a typed $(b,exhausted) \
                   diagnostic instead of a degraded result.")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print the daemon's mcs-serve/1 stats (queue depth, \
                   latency p50/p95, cache and solver counters) and exit.")
  in
  let shutdown =
    Arg.(value & flag
         & info [ "shutdown" ]
             ~doc:"Ask the daemon to drain in-flight work and exit.")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write all replies (schema $(b,mcs-client/1), embedding \
                 each mcs-run/1 reply verbatim) to $(docv).")
  in
  Cmd.v
    (Cmd.info "client" ~doc:"submit a job grid to a running mcs-serve daemon"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Expands the same (designs x flows x rates x pipe-lengths) \
              grid as $(b,dse) but submits it over the wire to a warm \
              $(b,mcs-serve) daemon: no process spawns, shared result \
              cache, identical in-flight jobs coalesced server-side.  \
              Exits 1 when any request was rejected (admission control or \
              deadline), like a failed check.";
         ])
    Term.(
      const client $ socket $ tcp $ designs $ flows $ rates $ pipe_lengths
      $ refine_arg $ deadline_ms $ no_fallback $ stats $ shutdown $ json)

let cmd =
  let doc = "high-level synthesis with pin constraints for multiple-chip designs" in
  let info =
    Cmd.info "mcs-synth" ~doc
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Synthesizes pipelined multiple-chip designs from partitioned \
             behavioural specifications under per-chip I/O pin constraints, \
             reproducing Hung's 1992 dissertation flows: pin-constrained \
             scheduling for simple partitionings, interchip-connection \
             synthesis before or after scheduling, and intra-cycle sub-bus \
             sharing.  The $(b,dse) subcommand sweeps whole design-space \
             grids in parallel.";
        ]
  in
  Cmd.group ~default:synth_term info [ dse_cmd; client_cmd ]

let () = exit (Cmd.eval' cmd)

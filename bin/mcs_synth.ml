(* mcs-synth: command-line front end for the multiple-chip synthesis flows.

   Examples:
     mcs-synth --design ar-general --rate 4 --flow ch4 --ports bidir
     mcs-synth --design ar-simple  --rate 2 --flow ch3
     mcs-synth --design elliptic   --rate 5 --flow ch5 --pipe-length 25
     mcs-synth --design ar-general --rate 3 --flow ch6 --metrics
     mcs-synth --design ar-general --rate 3 --flow ch4 --json run.json
     mcs-synth --list *)

open Mcs_cdfg
open Mcs_core
module C = Mcs_connect.Connection
module J = Mcs_obs.Report_json

let fmt = Format.std_formatter

let designs =
  [
    ("ar-simple", Benchmarks.ar_simple);
    ("ar-general", Benchmarks.ar_general);
    ("elliptic", Benchmarks.elliptic);
    ("cond-demo", Benchmarks.cond_demo);
    ("subbus-demo", Benchmarks.subbus_demo);
  ]

let list_designs () =
  List.iter
    (fun (name, mk) ->
      let d = mk () in
      Format.fprintf fmt "%-12s %a; evaluated at rates %s@." name
        Cdfg.pp_stats d.Benchmarks.cdfg
        (String.concat ", " (List.map string_of_int d.Benchmarks.rates)))
    designs;
  0

let pins_table (d : Benchmarks.design) pins =
  Report.table fmt ~title:"Pins used per partition"
    ~header:
      (List.map
         (fun p -> "P" ^ string_of_int p)
         (Mcs_util.Listx.range 0 (Cdfg.n_partitions d.Benchmarks.cdfg + 1)))
    [ Report.pins_row pins ]

let pins_json pins =
  J.Arr
    (List.map
       (fun (p, n) -> J.Obj [ ("partition", J.Int p); ("pins", J.Int n) ])
       pins)

(* Every flow reports its exit rendering plus the machine-readable result
   fields and the schedule the pin-ILP cross-check replays. *)
type flow_output = {
  fields : (string * J.t) list;
  schedule : Mcs_sched.Schedule.t;
}

let run_ch3 d ~rate =
  match Simple_part.run d ~rate with
  | Error m -> Error m
  | Ok r ->
      Format.fprintf fmt "Schedule:@.%a@.@." Report.schedule r.schedule;
      Format.fprintf fmt "Theorem 3.1 connection:@.%a@.@." Report.bundles r.links;
      pins_table d r.pins_needed;
      Ok
        {
          fields =
            [
              ("pins", pins_json r.pins_needed);
              ( "pipe_length",
                J.Int (Mcs_sched.Schedule.pipe_length r.schedule) );
              ("bundles", J.Int (List.length r.links));
            ];
          schedule = r.schedule;
        }

let run_ch4 d ~rate ~mode =
  match Pre_connect.run_design d ~rate ~mode with
  | Error m -> Error m
  | Ok r ->
      Format.fprintf fmt "Interchip connection:@.%a@.@."
        (Report.connection d.Benchmarks.cdfg)
        r.connection;
      Report.bus_assignment d.Benchmarks.cdfg fmt ~initial:r.initial_assignment
        ~final:r.final_assignment;
      Format.fprintf fmt "@.";
      Report.bus_allocation d.Benchmarks.cdfg ~rate fmt r.allocation;
      Format.fprintf fmt "@.Schedule:@.%a@.@." Report.schedule r.schedule;
      pins_table d r.pins;
      Format.fprintf fmt "@.pipe length: %d (static assignment: %s)@."
        (Mcs_sched.Schedule.pipe_length r.schedule)
        (match r.static_pipe_length with
        | Some n -> string_of_int n
        | None -> "unschedulable");
      Ok
        {
          fields =
            [
              ("pins", pins_json r.pins);
              ( "pipe_length",
                J.Int (Mcs_sched.Schedule.pipe_length r.schedule) );
              ( "static_pipe_length",
                match r.static_pipe_length with
                | Some n -> J.Int n
                | None -> J.Null );
              ("buses", J.Int (C.n_buses r.connection));
              ("slot_cap", J.Int r.slot_cap);
            ];
          schedule = r.schedule;
        }

let run_ch5 d ~rate ~pipe_length ~mode =
  match Post_connect.run_design d ~rate ~pipe_length ~mode with
  | Error m -> Error m
  | Ok r ->
      Format.fprintf fmt "Schedule (force-directed):@.%a@.@." Report.schedule
        r.schedule;
      Format.fprintf fmt "Connection (clique partitioning):@.%a@.@."
        (Report.connection d.Benchmarks.cdfg)
        r.connection;
      pins_table d r.pins;
      Format.fprintf fmt "@.Functional units implied:@.";
      List.iter
        (fun ((p, ty), n) -> Format.fprintf fmt "  P%d: %d %s@." p n ty)
        r.fus;
      Ok
        {
          fields =
            [
              ("pins", pins_json r.pins);
              ("pipe_length", J.Int pipe_length);
              ("buses", J.Int (C.n_buses r.connection));
              ( "fus",
                J.Arr
                  (List.map
                     (fun ((p, ty), n) ->
                       J.Obj
                         [
                           ("partition", J.Int p);
                           ("optype", J.Str ty);
                           ("count", J.Int n);
                         ])
                     r.fus) );
            ];
          schedule = r.schedule;
        }

let run_ch6 d ~rate =
  match Subbus.run_design d ~rate with
  | Error m -> Error m
  | Ok t ->
      Format.fprintf fmt "Bus structure (with sub-buses):@.%a@.@."
        (Report.real_buses d.Benchmarks.cdfg)
        t.real_buses;
      Format.fprintf fmt "Schedule:@.%a@.@." Report.schedule t.schedule;
      pins_table d t.pins;
      Format.fprintf fmt "@.pipe length: %d@."
        (Mcs_sched.Schedule.pipe_length t.schedule);
      Ok
        {
          fields =
            [
              ("pins", pins_json t.pins);
              ( "pipe_length",
                J.Int (Mcs_sched.Schedule.pipe_length t.schedule) );
              ( "static_pipe_length",
                match t.static_pipe_length with
                | Some n -> J.Int n
                | None -> J.Null );
              ("buses", J.Int (List.length t.real_buses));
              ( "split_buses",
                J.Int
                  (List.length
                     (List.filter
                        (fun (b : Subbus.real_bus) -> b.split_at <> None)
                        t.real_buses)) );
            ];
          schedule = t.schedule;
        }

(* Under --metrics, replay the final schedule through the Chapter 3
   dedicated-port pin-allocation ILP with every I/O operation fixed at its
   scheduled control-step group.  The verdict compares the flow's shared
   buses against the dedicated-port model at the same schedule, and the
   solve drives the simplex and branch-and-bound counters for every flow. *)
let ilp_cross_check d cons ~rate sched =
  let cdfg = d.Benchmarks.cdfg in
  let fixed =
    List.map
      (fun op -> (op, Mcs_sched.Schedule.group sched op))
      (Cdfg.io_ops cdfg)
  in
  match Simple_part.Pin_ilp.feasible cdfg cons ~rate ~fixed with
  | ok ->
      Format.fprintf fmt
        "@.pin-allocation ILP cross-check (dedicated ports): %s@."
        (if ok then "feasible" else "infeasible")
  | exception e ->
      Format.fprintf fmt "@.pin-allocation ILP cross-check: skipped (%s)@."
        (Printexc.to_string e)

let cons_for flow d ~rate ~mode =
  match flow with
  | "ch3" -> Benchmarks.constraints_for d ~rate
  | "ch6" -> Benchmarks.constraints_for_bidir d ~rate
  | _ -> (
      match mode with
      | C.Unidir -> Benchmarks.constraints_for d ~rate
      | C.Bidir -> Benchmarks.constraints_for_bidir d ~rate)

let synth design flow rate pipe_length ports listing trace metrics json_file
    log_level =
  (match log_level with
  | None -> ()
  | Some s -> (
      match Mcs_obs.Log.level_of_string s with
      | Some l -> Mcs_obs.Log.set_level l
      | None ->
          Mcs_obs.Log.warn "unknown log level %S (debug|info|warn|error|quiet)"
            s));
  (match trace with
  | None -> ()
  | Some "tree" -> Mcs_obs.Trace.set_sink (Mcs_obs.Trace.Tree Format.err_formatter)
  | Some "json" -> Mcs_obs.Trace.set_sink (Mcs_obs.Trace.Jsonl Format.err_formatter)
  | Some m -> Mcs_obs.Log.warn "unknown trace mode %S (tree|json)" m);
  if listing then list_designs ()
  else
    match List.assoc_opt design designs with
    | None ->
        Format.fprintf fmt
          "unknown design %S (use --list to see what is available)@." design;
        2
    | Some mk ->
        let d = mk () in
        let rate =
          match rate with Some r -> r | None -> List.hd d.Benchmarks.rates
        in
        let mode = if ports = "bidir" then C.Bidir else C.Unidir in
        let bad_flow = ref false in
        Mcs_obs.Metrics.reset ();
        if json_file <> None then begin
          Mcs_obs.Trace.reset_collected ();
          Mcs_obs.Trace.set_collect true
        end;
        let t0 = Unix.gettimeofday () in
        let outcome =
          (* A flow that rejects its input (e.g. ch3 on a non-simple
             partitioning) raises; fold that into the run outcome so
             [--json] still produces a report with status "error". *)
          try
            match flow with
            | "ch3" -> run_ch3 d ~rate
            | "ch4" -> run_ch4 d ~rate ~mode
            | "ch5" ->
                let pl =
                  match pipe_length with
                  | Some pl -> pl
                  | None ->
                      Timing.critical_path_csteps d.Benchmarks.cdfg
                        d.Benchmarks.mlib
                in
                run_ch5 d ~rate ~pipe_length:pl ~mode
            | "ch6" -> run_ch6 d ~rate
            | f ->
                Format.fprintf fmt "unknown flow %S (ch3|ch4|ch5|ch6)@." f;
                bad_flow := true;
                Error "unknown flow"
          with
          | Invalid_argument m | Failure m -> Error m
        in
        let wall = Unix.gettimeofday () -. t0 in
        if !bad_flow then 2
        else begin
          let code =
            match outcome with
            | Ok _ -> 0
            | Error m ->
                Format.fprintf fmt "synthesis failed: %s@." m;
                1
          in
          if metrics then begin
            (match outcome with
            | Ok fo ->
                ilp_cross_check d (cons_for flow d ~rate ~mode) ~rate
                  fo.schedule
            | Error _ -> ());
            Format.fprintf fmt "@.%a" Mcs_obs.Metrics.pp_summary ()
          end;
          let json_code =
            match json_file with
            | None -> 0
            | Some path -> (
                let status =
                  match outcome with Ok _ -> `Ok | Error m -> `Error m
                in
                let result =
                  match outcome with Ok fo -> fo.fields | Error _ -> []
                in
                let report =
                  J.run_report ~flow ~design ~rate ~status ~wall_s:wall
                    ~result ()
                in
                match J.write_file path report with
                | Ok () -> 0
                | Error m ->
                    Format.eprintf "cannot write %s: %s@." path m;
                    3)
          in
          if code <> 0 then code else json_code
        end

(* ---- design-space exploration (the dse subcommand) ---- *)

module E_job = Mcs_engine.Job
module E_pool = Mcs_engine.Pool
module E_cache = Mcs_engine.Cache
module E_pareto = Mcs_engine.Pareto

(* "3,4,5", "6-10" and mixtures like "3,6-8" *)
let parse_int_list what s =
  if s = "" then Ok []
  else
    try
      Ok
        (List.concat_map
           (fun tok ->
             match String.index_opt tok '-' with
             | Some i when i > 0 ->
                 let a = int_of_string (String.sub tok 0 i) in
                 let b =
                   int_of_string
                     (String.sub tok (i + 1) (String.length tok - i - 1))
                 in
                 if b < a || a < 1 then failwith "range"
                 else Mcs_util.Listx.range a (b + 1)
             | _ ->
                 let v = int_of_string tok in
                 if v < 1 then failwith "positive" else [ v ])
           (String.split_on_char ',' s))
    with _ ->
      Error
        (Printf.sprintf "cannot parse %s %S (want e.g. \"3,4,5\" or \"6-10\")"
           what s)

let parse_flows s =
  let names =
    match s with
    | "all" -> List.map E_job.flow_to_string E_job.all_flows
    | s -> String.split_on_char ',' s
  in
  List.fold_left
    (fun acc name ->
      match (acc, E_job.flow_of_string name) with
      | Error _, _ -> acc
      | Ok _, Error m -> Error m
      | Ok fs, Ok f -> Ok (fs @ [ f ]))
    (Ok []) names

let counter_count name = Mcs_obs.Metrics.(count (counter name))

let dse designs_s flows_s rates_s pls_s jobs cache_dir timeout json_file =
  let ( let* ) = Result.bind in
  let plan =
    let* flows = parse_flows flows_s in
    let* rates = parse_int_list "--rates" rates_s in
    let* pls = parse_int_list "--pipe-lengths" pls_s in
    let* designs =
      List.fold_left
        (fun acc name ->
          let* acc = acc in
          match List.assoc_opt name E_job.named_designs with
          | Some mk -> Ok (acc @ [ (name, mk ()) ])
          | None ->
              Error
                (Printf.sprintf
                   "unknown design %S (known: %s)" name
                   (String.concat ", " (List.map fst E_job.named_designs))))
        (Ok [])
        (String.split_on_char ',' designs_s)
    in
    (* With no --rates, each design sweeps the rates the paper evaluates
       for it. *)
    Ok
      (List.concat_map
         (fun (name, d) ->
           let rates = if rates = [] then d.Benchmarks.rates else rates in
           E_job.grid
             ~designs:[ E_job.Named name ]
             ~flows ~rates ~pipe_lengths:pls ())
         designs)
  in
  match plan with
  | Error m ->
      Format.eprintf "dse: %s@." m;
      2
  | Ok [] ->
      Format.eprintf "dse: empty job grid@.";
      2
  | Ok joblist ->
      Mcs_obs.Metrics.reset ();
      let cache = Option.map E_cache.open_dir cache_dir in
      let t0 = Unix.gettimeofday () in
      let outcomes = E_pool.run ~jobs ?timeout ?cache joblist in
      let wall = Unix.gettimeofday () -. t0 in
      let front = E_pareto.frontier outcomes in
      Report.table fmt
        ~title:
          (Printf.sprintf
             "Design-space exploration: %d jobs, %d worker%s, %.2f s"
             (List.length joblist) (max 1 jobs)
             (if max 1 jobs = 1 then "" else "s")
             wall)
        ~header:
          [ "Design"; "Flow"; "Rate"; "PL req"; "Status"; "Pins"; "Pipe";
            "FUs"; "Pareto" ]
        (List.map
           (fun (o : Mcs_engine.Outcome.t) ->
             let j = o.Mcs_engine.Outcome.job in
             let feas = Mcs_engine.Outcome.is_feasible o in
             [
               E_job.design_to_string j.E_job.design;
               E_job.flow_to_string j.E_job.flow;
               string_of_int j.E_job.rate;
               (match j.E_job.pipe_length with
               | Some pl -> string_of_int pl
               | None -> "-");
               Mcs_engine.Outcome.status_label o.Mcs_engine.Outcome.status;
               (if feas then
                  string_of_int (Mcs_engine.Outcome.pins_total o)
                else "-");
               (if feas then string_of_int o.Mcs_engine.Outcome.pipe_length
                else "-");
               (if feas then string_of_int o.Mcs_engine.Outcome.fu_count
                else "-");
               (if List.memq o front then "*" else "");
             ])
           outcomes);
      let c name = counter_count ("engine." ^ name) in
      Format.fprintf fmt
        "@.workers forked: %d; crashes: %d; timeouts: %d@."
        (c "pool.forks") (c "pool.crashes") (c "pool.timeouts");
      if cache <> None then
        Format.fprintf fmt "cache: %d hits, %d misses, %d stale@."
          (c "cache.hits") (c "cache.misses") (c "cache.stale");
      (match json_file with
      | None -> 0
      | Some path -> (
          let report =
            match E_pareto.report outcomes with
            | J.Obj fields ->
                (* Engine counters are deterministic for a fixed job list
                   and cache state (unlike wall times, which stay out of
                   the report): the warm-cache CI check reads them. *)
                J.Obj
                  (fields
                  @ [
                      ( "engine",
                        J.Obj
                          [
                            ("cache_hits", J.Int (c "cache.hits"));
                            ("cache_misses", J.Int (c "cache.misses"));
                            ("cache_stale", J.Int (c "cache.stale"));
                            ("forks", J.Int (c "pool.forks"));
                            ("crashes", J.Int (c "pool.crashes"));
                            ("timeouts", J.Int (c "pool.timeouts"));
                          ] );
                    ])
            | r -> r
          in
          match J.write_file path report with
          | Ok () ->
              Format.fprintf fmt "wrote %s@." path;
              0
          | Error m ->
              Format.eprintf "cannot write %s: %s@." path m;
              3))

open Cmdliner

let design =
  Arg.(value & opt string "ar-general" & info [ "design"; "d" ] ~docv:"NAME"
         ~doc:"Design to synthesize (see $(b,--list)).")

let flow =
  Arg.(value & opt string "ch4" & info [ "flow"; "f" ] ~docv:"FLOW"
         ~doc:"Synthesis flow: ch3 (simple partitioning), ch4 \
               (connection-first), ch5 (schedule-first), ch6 (sub-bus \
               sharing).")

let rate =
  Arg.(value & opt (some int) None & info [ "rate"; "r" ] ~docv:"L"
         ~doc:"Initiation rate (default: the design's first evaluated rate).")

let pipe_length =
  Arg.(value & opt (some int) None & info [ "pipe-length"; "p" ] ~docv:"T"
         ~doc:"Pipe length for the ch5 flow (default: the critical path).")

let ports =
  Arg.(value & opt string "unidir" & info [ "ports" ] ~docv:"MODE"
         ~doc:"I/O port mode: unidir or bidir.")

let listing =
  Arg.(value & flag & info [ "list"; "l" ] ~doc:"List the bundled designs.")

let trace =
  Arg.(value & opt ~vopt:(Some "tree") (some string) None
       & info [ "trace" ] ~docv:"MODE"
           ~doc:"Emit per-phase timing spans to stderr: $(b,tree) (indented \
                 summary, the default when no MODE is given) or $(b,json) \
                 (one JSON object per span).")

let metrics =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print solver counters (simplex pivots, branch-and-bound \
                 nodes, search backtracks, ...) after synthesis, and run the \
                 dedicated-port pin-allocation ILP cross-check on the final \
                 schedule.")

let json_file =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Write a machine-readable run report (schema mcs-run/1) with \
               status, result, per-phase wall times and solver metrics to \
               $(docv).")

let log_level =
  Arg.(value & opt (some string) None & info [ "log-level" ] ~docv:"LVL"
         ~doc:"Diagnostic verbosity: debug, info, warn (default), error or \
               quiet.  The $(b,MCS_LOG) environment variable sets the same \
               threshold.")

let synth_term =
  Term.(
    const synth $ design $ flow $ rate $ pipe_length $ ports $ listing
    $ trace $ metrics $ json_file $ log_level)

let dse_cmd =
  let designs =
    Arg.(value & opt string "ar-general"
         & info [ "designs" ] ~docv:"NAMES"
             ~doc:"Comma-separated designs to sweep (see $(b,--list)).")
  in
  let flows =
    Arg.(value & opt string "ch4-unidir,ch4-bidir,ch5,ch6"
         & info [ "flows" ] ~docv:"FLOWS"
             ~doc:"Comma-separated flows: ch3, ch4-unidir, ch4-bidir, ch5, \
                   ch6, or $(b,all).")
  in
  let rates =
    Arg.(value & opt string "" & info [ "rates" ] ~docv:"LIST"
           ~doc:"Initiation rates, e.g. $(b,3,4,5) or $(b,3-5) (default: \
                 each design's evaluated rates).")
  in
  let pipe_lengths =
    Arg.(value & opt string "" & info [ "pipe-lengths" ] ~docv:"LIST"
           ~doc:"Pipe lengths for ch5 jobs, e.g. $(b,6-10) (default: the \
                 critical path).")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker processes to keep in flight.")
  in
  let cache =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR"
           ~doc:"Persistent result cache directory (created if missing); \
                 identical jobs are served from it without forking a \
                 worker.")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-job wall-clock limit; an overrunning worker is killed \
                 and its point reported as timed out.")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the machine-readable sweep report (schema \
                 $(b,mcs-dse/1), deterministic for a fixed grid and cache \
                 state) to $(docv).")
  in
  Cmd.v
    (Cmd.info "dse" ~doc:"explore a design-space grid with a worker pool"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Expands a (designs x flows x rates x pipe-lengths) grid into \
              batch jobs, runs them on a pool of forked workers with crash \
              isolation and per-job timeouts, and reports every point plus \
              the (pins, pipe length, functional units) Pareto frontier.  A \
              worker count of 1 and of N produce identical reports; a \
              persistent $(b,--cache) makes repeated sweeps incremental.";
         ])
    Term.(
      const dse $ designs $ flows $ rates $ pipe_lengths $ jobs $ cache
      $ timeout $ json)

let cmd =
  let doc = "high-level synthesis with pin constraints for multiple-chip designs" in
  let info =
    Cmd.info "mcs-synth" ~doc
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Synthesizes pipelined multiple-chip designs from partitioned \
             behavioural specifications under per-chip I/O pin constraints, \
             reproducing Hung's 1992 dissertation flows: pin-constrained \
             scheduling for simple partitionings, interchip-connection \
             synthesis before or after scheduling, and intra-cycle sub-bus \
             sharing.  The $(b,dse) subcommand sweeps whole design-space \
             grids in parallel.";
        ]
  in
  Cmd.group ~default:synth_term info [ dse_cmd ]

let () = exit (Cmd.eval' cmd)

(* The AR lattice filter, both partitionings.

   The simple partitioning (Fig. 3.5) goes through the Chapter 3 flow: list
   scheduling with the ILP pin-allocation feasibility checker, then the
   constructive Theorem 3.1 connection.  The general partitioning (Fig. 4.7)
   goes through the Chapter 4 flow at several initiation rates.

   Run with:  dune exec examples/ar_filter.exe *)

open Mcs_cdfg
open Mcs_core
module F = Mcs_flow.Flow
module A = Mcs_flow.Artifact

let fmt = Format.std_formatter

(* Both flows run through the unified checked pipeline; the static
   analyzer audits every phase ([Pass.Warn]: violations are reported on
   [result.diags] without aborting). *)
let run flow d ~rate =
  Mcs_check.run ~level:Mcs_flow.Pass.Warn flow
    (F.spec_of_design ~flow d ~rate)

let () =
  (* --- Simple partitioning, Chapter 3 --- *)
  Format.printf "== AR filter, simple partitioning (Chapter 3) ==@.@.";
  let simple = Benchmarks.ar_simple () in
  (match run F.Ch3 simple ~rate:2 with
  | Error dg -> Format.printf "failed: %s@." (Mcs_flow.Diag.message dg)
  | Ok r ->
      Format.printf "Schedule:@.%a@.@." Report.schedule r.F.schedule;
      (match r.F.connection with
      | A.Bundles links ->
          Format.printf "Theorem 3.1 wire bundles:@.%a@." Report.bundles links
      | A.Buses _ | A.Subbuses _ -> ());
      Report.table fmt ~title:"Pins used (paper: 112/48/48/32/32)"
        ~header:[ "P0"; "P1"; "P2"; "P3"; "P4" ]
        [ Report.pins_row r.F.pins ]);

  (* --- General partitioning, Chapter 4 --- *)
  Format.printf "@.== AR filter, general partitioning (Chapter 4) ==@.";
  let general = Benchmarks.ar_general () in
  List.iter
    (fun rate ->
      Format.printf "@.-- initiation rate %d --@." rate;
      match run F.Ch4 general ~rate with
      | Error dg -> Format.printf "failed: %s@." (Mcs_flow.Diag.message dg)
      | Ok r ->
          (match r.F.connection with
          | A.Buses { conn; initial; assignment; _ } ->
              Format.printf "%a@.@."
                (Report.connection general.Benchmarks.cdfg)
                conn;
              Report.bus_assignment general.Benchmarks.cdfg fmt ~initial
                ~final:assignment
          | A.Bundles _ | A.Subbuses _ -> ());
          Format.printf
            "@.pipe length %d with reassignment, %s without@."
            r.F.pipe_length
            (match r.F.static_pipe_length with
            | Some n -> string_of_int n
            | None -> "unschedulable"))
    general.Benchmarks.rates

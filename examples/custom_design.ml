(* Building your own multi-chip design: a 3-chip decimating FIR-like
   pipeline with a wide coefficient bus, a conditional post-processing
   stage, and a time-division-multiplexed transfer.

   Demonstrates the full public API surface: Netlist description, guards,
   TDM rewriting, bound estimation, and the Chapter 4 flow.

   Run with:  dune exec examples/custom_design.exe *)

open Mcs_cdfg
open Mcs_core

let () =
  let n = Netlist.create ~default_width:8 ~n_partitions:3 () in
  (* Chip 1: four taps of a FIR. *)
  List.iter (fun v -> Netlist.input n ~width:8 ~dst:1 v) [ "x0"; "x1"; "x2"; "x3" ];
  Netlist.input n ~width:24 ~dst:1 "coeffs";
  Netlist.op n ~name:"t0" ~optype:"mul" ~partition:1 ~args:[ "x0"; "coeffs" ];
  Netlist.op n ~name:"t1" ~optype:"mul" ~partition:1 ~args:[ "x1"; "coeffs" ];
  Netlist.op n ~name:"s0" ~optype:"add" ~partition:1 ~args:[ "t0"; "t1" ];
  Netlist.op n ~name:"t2" ~optype:"mul" ~partition:1 ~args:[ "x2"; "coeffs" ];
  Netlist.op n ~name:"t3" ~optype:"mul" ~partition:1 ~args:[ "x3"; "coeffs" ];
  Netlist.op n ~name:"s1" ~optype:"add" ~partition:1 ~args:[ "t2"; "t3" ];
  Netlist.op n ~name:"acc" ~optype:"add" ~partition:1 ~args:[ "s0"; "s1" ];
  Netlist.set_width n ~value:"acc" 16;
  (* Chip 2: conditional post-processing — the two arms are mutually
     exclusive, so their result transfers can share pins (§7.2). *)
  Netlist.op n ~name:"satur" ~optype:"add" ~partition:2 ~args:[ "acc"; "acc" ];
  Netlist.op n ~name:"wrap" ~optype:"add" ~partition:2 ~args:[ "acc"; "acc" ];
  Netlist.guard n ~opname:"satur" ~cond:0 ~arm:true;
  Netlist.guard n ~opname:"wrap" ~cond:0 ~arm:false;
  (* Chip 3: merge and emit. *)
  Netlist.op n ~name:"sel" ~optype:"add" ~partition:3 ~args:[ "satur"; "wrap" ];
  Netlist.output n ~width:8 "sel";
  let cdfg = Netlist.elaborate n in
  Format.printf "%a@.@." Cdfg.pp_stats cdfg;

  (* The 24-bit coefficient input dominates chip 1's pin bill; split it over
     3 cycles with time-division multiplexing (§7.3). *)
  let before, after = Extensions.Tdm.pin_effect cdfg ~value:"coeffs" ~dst:1 ~parts:3 in
  Format.printf "TDM on the coefficient bus: %d pins -> %d pins per part@." before after;
  let cdfg =
    Extensions.Tdm.apply cdfg ~value:"coeffs" ~dst:1 ~parts:3
      ~split_optype:"split" ~merge_optype:"merge"
  in

  let mlib =
    Module_lib.create ~stage_ns:250 ~io_delay_ns:10
      [ ("add", 30); ("mul", 210); ("split", 5); ("merge", 5) ]
  in
  let rate = 3 in
  (* Size the pin budgets from the library's own lower bounds. *)
  let pins =
    List.map
      (fun p ->
        ( p,
          Mcs_connect.Bounds.min_input_pins cdfg ~rate ~partition:p
          + Mcs_connect.Bounds.min_output_pins cdfg ~rate ~partition:p
          + 8 ))
      [ 0; 1; 2; 3 ]
  in
  Format.printf "pin budgets from Bounds + slack: %s@.@."
    (String.concat " "
       (List.map (fun (p, n) -> Printf.sprintf "P%d:%d" p n) pins));
  let cons =
    Constraints.create ~n_partitions:3 ~pins
      ~fus:(Constraints.min_fus cdfg mlib ~rate)
  in
  (* Chapter-4 synthesis through the unified checked pipeline: strict
     mode turns any static-analysis violation into an error. *)
  let module F = Mcs_flow.Flow in
  let spec =
    {
      F.tag = "custom-design";
      cdfg;
      mlib;
      cons;
      rate;
      pipe_length = None;
      mode = Mcs_connect.Connection.Bidir;
    }
  in
  match Mcs_check.run ~level:Mcs_flow.Pass.Strict F.Ch4 spec with
  | Error dg -> Format.printf "synthesis failed: %s@." (Mcs_flow.Diag.message dg)
  | Ok r ->
      (match r.F.connection with
      | Mcs_flow.Artifact.Buses { conn; _ } ->
          Format.printf "%a@.@." (Report.connection cdfg) conn
      | _ -> ());
      Format.printf "%a@.@." Report.schedule r.F.schedule;
      Format.printf "pins used: %s; pipe length %d; schedule %s@."
        (String.concat " " (Report.pins_row r.F.pins))
        r.F.pipe_length
        (if F.clean r then "valid (static analysis clean)"
         else "INVALID: checker flagged the result")

(* The fifth-order elliptic wave filter: multi-cycle multiplications and
   degree-4 data recursive edges.

   Shows the recursive-loop analysis (minimum initiation rate), the greedy
   list scheduler failing at that minimum while force-directed scheduling
   succeeds, and the Chapter 4 flow at the schedulable rates.

   Run with:  dune exec examples/elliptic_filter.exe *)

open Mcs_cdfg
open Mcs_core
module F = Mcs_flow.Flow
module A = Mcs_flow.Artifact

let () =
  let d = Benchmarks.elliptic () in
  let cdfg = d.Benchmarks.cdfg and mlib = d.Benchmarks.mlib in
  Format.printf "%a@.@." Cdfg.pp_stats cdfg;
  Format.printf
    "Recursive edges (degree 4): %d; critical loop bounds the initiation \
     rate at %d; critical path needs a pipe of %d control steps.@.@."
    (List.length (Cdfg.recursive_edges cdfg))
    (Timing.min_initiation_rate cdfg mlib)
    (Timing.critical_path_csteps cdfg mlib);

  (* List scheduling vs FDS at the minimum rate (§4.4.2 / §5.3). *)
  let cons5 = Benchmarks.constraints_for d ~rate:5 in
  (match Mcs_sched.List_sched.run cdfg mlib cons5 ~rate:5 () with
  | Ok _ -> Format.printf "list scheduling at rate 5: unexpectedly succeeded@."
  | Error f ->
      Format.printf
        "list scheduling at rate 5 fails, as in the paper (greedy, tight \
         max-time constraints): %s@."
        f.Mcs_sched.List_sched.reason);
  (match Mcs_sched.Fds.run cdfg mlib ~rate:5 ~pipe_length:25 () with
  | Ok s ->
      Format.printf
        "force-directed scheduling finds a rate-5 schedule (pipe %d)@.@."
        (Mcs_sched.Schedule.pipe_length s)
  | Error m ->
      Format.printf "FDS failed: %s@.@." (Mcs_sched.Fds.error_message cdfg m));

  (* Chapter 4 flow at the rates the paper evaluates, through the unified
     checked pipeline. *)
  let conn_of (r : F.result) =
    match r.F.connection with
    | A.Buses { conn; _ } -> Some conn
    | A.Bundles _ | A.Subbuses _ -> None
  in
  List.iter
    (fun rate ->
      Format.printf "-- Chapter 4 flow, rate %d --@." rate;
      match
        Mcs_check.run ~level:Mcs_flow.Pass.Warn F.Ch4
          (F.spec_of_design ~flow:F.Ch4 d ~rate)
      with
      | Error dg -> Format.printf "failed: %s@.@." (Mcs_flow.Diag.message dg)
      | Ok r ->
          Option.iter
            (Format.printf "%a@." (Report.connection cdfg))
            (conn_of r);
          Report.table Format.std_formatter ~title:"Pins used"
            ~header:[ "P0"; "P1"; "P2"; "P3"; "P4"; "P5" ]
            [ Report.pins_row r.F.pins ];
          Format.printf "pipe length: %d@.@." r.F.pipe_length)
    [ 6; 7 ];

  (* Chapter 5 flow handles rate 5 end to end. *)
  Format.printf "-- Chapter 5 flow at the minimum rate --@.";
  match
    Mcs_check.run ~level:Mcs_flow.Pass.Warn F.Ch5
      (F.spec_of_design ~pipe_length:25 ~mode:Mcs_connect.Connection.Unidir
         ~flow:F.Ch5 d ~rate:5)
  with
  | Error dg -> Format.printf "failed: %s@." (Mcs_flow.Diag.message dg)
  | Ok r ->
      Option.iter (Format.printf "%a@." (Report.connection cdfg)) (conn_of r);
      Report.table Format.std_formatter ~title:"Pins used (schedule-first)"
        ~header:[ "P0"; "P1"; "P2"; "P3"; "P4"; "P5" ]
        [ Report.pins_row r.F.pins ]

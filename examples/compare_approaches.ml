(* Comparing the three general-partitioning approaches on the AR filter:

   - Chapter 4: connection synthesis before scheduling (list scheduling with
     dynamic bus reassignment);
   - Chapter 5: force-directed scheduling first, then connection synthesis
     by clique partitioning;
   - Chapter 6: connection-first with intra-cycle sub-bus sharing.

   This regenerates the discussion of §5.3 and Table 6.4 in one table —
   expressed as batch jobs on the design-space exploration engine: the
   points run on a pool of forked workers and the engine's Pareto module
   names the undominated (pins, pipe length, FU) points.

   Run with:  dune exec examples/compare_approaches.exe *)

open Mcs_cdfg
module Job = Mcs_engine.Job
module Pool = Mcs_engine.Pool
module Outcome = Mcs_engine.Outcome
module Pareto = Mcs_engine.Pareto

let () =
  let d = Benchmarks.ar_general () in
  let ar = Job.Named "ar-general" in
  let rates = d.Benchmarks.rates in
  (* Round 1: the flows that choose their own pipe length. *)
  let round1 =
    Pool.run ~jobs:2
      (Job.grid ~designs:[ ar ] ~flows:[ Job.Ch4_bidir; Job.Ch6 ] ~rates ())
  in
  let find flow rate =
    List.find_opt
      (fun (o : Outcome.t) ->
        o.Outcome.job.Job.flow = flow && o.Outcome.job.Job.rate = rate)
      round1
  in
  (* Round 2: schedule-first at the pipe length the Chapter 4 flow
     reached per rate, for a like-for-like comparison (§5.3). *)
  let ch5_jobs =
    List.map
      (fun rate ->
        let pipe_length =
          match find Job.Ch4_bidir rate with
          | Some o when Outcome.is_feasible o -> o.Outcome.pipe_length
          | _ -> 10
        in
        Job.make ~pipe_length ~design:ar ~flow:Job.Ch5 ~rate ())
      rates
  in
  let round2 = Pool.run ~jobs:2 ch5_jobs in
  let all = round1 @ round2 in
  let cell rate flow =
    let o =
      match flow with
      | Job.Ch5 ->
          List.find_opt
            (fun (o : Outcome.t) -> o.Outcome.job.Job.rate = rate)
            round2
      | _ -> find flow rate
    in
    match o with
    | Some o when Outcome.is_feasible o ->
        [
          string_of_int (Outcome.pins_total o);
          string_of_int o.Outcome.pipe_length;
        ]
    | _ -> [ "-"; "-" ]
  in
  let rows =
    List.map
      (fun rate ->
        string_of_int rate
        :: (cell rate Job.Ch4_bidir @ cell rate Job.Ch5 @ cell rate Job.Ch6))
      rates
  in
  Mcs_core.Report.table Format.std_formatter
    ~title:
      "AR filter, bidirectional ports: total pins and pipe length per \
       approach"
    ~header:
      [
        "Rate";
        "Ch4 pins"; "Ch4 pipe";
        "Ch5 pins"; "Ch5 pipe";
        "Ch6 pins"; "Ch6 pipe";
      ]
    rows;
  Format.printf "@.Pareto-optimal (pins, pipe, FUs) points across all runs:@.";
  List.iter
    (fun (o : Outcome.t) ->
      (* Every job ran through the unified Mcs_flow pipeline; with
         MCS_CHECK=warn or strict in the environment the static
         analyzer's verdict rides along on each outcome. *)
      Format.printf "  %a -> %d pins, pipe %d, %d FUs%s@." Job.pp o.Outcome.job
        (Outcome.pins_total o) o.Outcome.pipe_length o.Outcome.fu_count
        (match o.Outcome.check with
        | Some c -> ", check " ^ Outcome.check_label c
        | None -> ""))
    (Pareto.frontier all);
  Format.printf
    "@.Reading: connection-first (Ch4) fixes pins before scheduling; \
     schedule-first (Ch5) optimizes pins for one fixed schedule; sub-bus \
     sharing (Ch6) trades control complexity for pins.@."

(* Quickstart: describe a two-chip design, synthesize buses and a pipelined
   schedule, and print everything.

   Run with:  dune exec examples/quickstart.exe *)

open Mcs_cdfg
open Mcs_core
module F = Mcs_flow.Flow
module A = Mcs_flow.Artifact

let () =
  (* 1. Describe the partitioned behaviour as a netlist.  Chip 1 computes a
     multiply-accumulate over two inputs; chip 2 post-processes the result.
     Cross-chip transfers get I/O operation nodes automatically. *)
  let n = Netlist.create ~default_width:8 ~n_partitions:2 () in
  Netlist.input n ~width:8 ~dst:1 "a";
  Netlist.input n ~width:8 ~dst:1 "b";
  Netlist.input n ~width:8 ~dst:2 "c";
  Netlist.op n ~name:"prod" ~optype:"mul" ~partition:1 ~args:[ "a"; "b" ];
  Netlist.op n ~name:"acc" ~optype:"add" ~partition:1 ~args:[ "prod"; "a" ];
  Netlist.op n ~name:"scale" ~optype:"mul" ~partition:2 ~args:[ "acc"; "c" ];
  Netlist.op n ~name:"out" ~optype:"add" ~partition:2 ~args:[ "scale"; "c" ];
  Netlist.set_width n ~value:"acc" 16;
  Netlist.xfer_name n ~value:"acc" ~dst:2 "Xacc";
  Netlist.output n ~width:16 "out";
  let cdfg = Netlist.elaborate n in
  Format.printf "%a@.@." Cdfg.pp_stats cdfg;

  (* 2. Pick a module library (stage time, operator delays) and per-chip
     constraints: data-pin budgets and the minimal functional units for a
     pipelined design with an initiation rate of 2. *)
  let mlib =
    Module_lib.create ~stage_ns:250 ~io_delay_ns:10 [ ("add", 30); ("mul", 210) ]
  in
  let rate = 2 in
  let cons =
    Constraints.create ~n_partitions:2
      ~pins:[ (0, 40); (1, 40); (2, 40) ]
      ~fus:(Constraints.min_fus cdfg mlib ~rate)
  in

  (* 3. Chapter-4 flow through the unified pass pipeline: synthesize the
     interchip connection, then schedule with dynamic bus reassignment.
     [Mcs_check.run] also audits every phase artifact and the final
     result with the static analyzer ([Pass.Strict]: any violation turns
     the run into [Error]). *)
  let spec =
    {
      F.tag = "quickstart";
      cdfg;
      mlib;
      cons;
      rate;
      pipe_length = None;
      mode = Mcs_connect.Connection.Unidir;
    }
  in
  match Mcs_check.run ~level:Mcs_flow.Pass.Strict F.Ch4 spec with
  | Error dg -> Format.printf "synthesis failed: %s@." (Mcs_flow.Diag.message dg)
  | Ok r ->
      (match r.F.connection with
      | A.Buses { conn; _ } ->
          Format.printf "Interchip connection:@.%a@.@."
            (Report.connection cdfg) conn
      | A.Bundles _ | A.Subbuses _ -> ());
      Format.printf "Schedule (initiation rate %d, pipe length %d):@.%a@.@."
        rate r.F.pipe_length Report.schedule r.F.schedule;
      Report.table Format.std_formatter ~title:"Pins used"
        ~header:[ "P0 (world)"; "P1"; "P2" ]
        [ Report.pins_row r.F.pins ];
      Format.printf "@.Schedule checked: %s@."
        (if F.clean r then "valid (static analysis clean)"
         else "INVALID: checker flagged the result")

(* From unpartitioned behaviour to multi-chip RTL, end to end:

   1. describe the operation network with no chip assignment;
   2. partition it (the CHOP-substitute front end, §1.2);
   3. synthesize the interchip connection and the pipelined schedule
      (Chapter 4);
   4. bind the data path (functional units, registers, multiplexers) and
      print the RTL skeleton;
   5. simulate the machine against the reference semantics.

   Run with:  dune exec examples/partition_flow.exe *)

open Mcs_cdfg
open Mcs_core
module P = Partitioner

let () =
  (* 1. A biquad-cascade-like network, written with no chips in mind. *)
  let s = P.create () in
  P.input s ~width:8 "x";
  P.input s ~width:8 "k1";
  P.input s ~width:8 "k2";
  P.op s ~name:"m1" ~optype:"mul" ~args:[ "x"; "k1" ];
  P.op s ~name:"a1" ~optype:"add" ~args:[ "m1"; "x" ];
  P.op s ~name:"m2" ~optype:"mul" ~args:[ "a1"; "k1" ];
  P.op s ~name:"a2" ~optype:"add" ~args:[ "m2"; "a1" ];
  P.op s ~name:"m3" ~optype:"mul" ~args:[ "a2"; "k2" ];
  P.op s ~name:"a3" ~optype:"add" ~args:[ "m3"; "a2" ];
  P.op s ~name:"m4" ~optype:"mul" ~args:[ "a3"; "k2" ];
  P.op s ~name:"a4" ~optype:"add" ~args:[ "m4"; "a3" ];
  P.output s ~width:8 "a4";

  (* 2. Two chips, balanced. *)
  let assign = P.partition s ~n_partitions:2 () in
  List.iter (fun (op, p) -> Format.printf "%s -> chip %d@." op p) assign;
  let lookup n = List.assoc n assign in
  Format.printf "predicted pins at rate 2: %s@.@."
    (String.concat " "
       (List.map
          (fun (p, n) -> Printf.sprintf "P%d:%d" p n)
          (P.predicted_pins s ~assign:lookup ~rate:2)));
  let cdfg = P.elaborate s ~assign:lookup in

  (* 3. Chapter 4 synthesis. *)
  let mlib =
    Module_lib.create ~stage_ns:250 ~io_delay_ns:10 [ ("add", 30); ("mul", 210) ]
  in
  let rate = 2 in
  let cons =
    Constraints.create
      ~n_partitions:(Cdfg.n_partitions cdfg)
      ~pins:[ (0, 32); (1, 48); (2, 48) ]
      ~fus:(Constraints.min_fus cdfg mlib ~rate)
  in
  let module F = Mcs_flow.Flow in
  let spec =
    {
      F.tag = "partition-flow";
      cdfg;
      mlib;
      cons;
      rate;
      pipe_length = None;
      mode = Mcs_connect.Connection.Unidir;
    }
  in
  match Mcs_check.run ~level:Mcs_flow.Pass.Strict F.Ch4 spec with
  | Error dg -> Format.printf "synthesis failed: %s@." (Mcs_flow.Diag.message dg)
  | Ok r -> (
      let conn, assignment =
        match r.F.connection with
        | Mcs_flow.Artifact.Buses { conn; assignment; _ } -> (conn, assignment)
        | _ -> failwith "the Chapter 4 flow produces shared buses"
      in
      Format.printf "Connection:@.%a@.@." (Report.connection cdfg) conn;
      Format.printf "Schedule:@.%a@.@." Report.schedule r.F.schedule;
      (* 4. RTL binding. *)
      (match Mcs_rtl.Datapath.build r.F.schedule cons with
      | Error m -> Format.printf "binding failed: %s@." m
      | Ok rtl ->
          Format.printf "Data path:@.%a@.@." Mcs_rtl.Datapath.pp rtl;
          Format.printf "Verilog skeleton:@.%a@." Mcs_rtl.Datapath.pp_verilog rtl);
      (* 5. Functional check. *)
      match
        Mcs_sim.Simulate.check_equivalent r.F.schedule
          ~bus_of:(fun op -> [ List.assoc op assignment ])
          ~bus_capable:(fun bus op ->
            Mcs_connect.Connection.capable conn cdfg ~bus op)
          ~seed:1 ~instances:8
      with
      | Ok () -> Format.printf "machine == reference over 8 instances@."
      | Error m -> Format.printf "SIMULATION MISMATCH: %s@." m)

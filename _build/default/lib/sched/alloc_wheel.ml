type t = { rate : int; cells : bool array array (* cells.(fu).(group) *) }

let create ~fus ~rate =
  if fus < 0 || rate < 1 then invalid_arg "Alloc_wheel.create";
  { rate; cells = Array.init fus (fun _ -> Array.make rate false) }

let fus t = Array.length t.cells
let rate t = t.rate

let check t ~group ~cycles =
  if group < 0 || group >= t.rate then invalid_arg "Alloc_wheel: bad group";
  if cycles < 1 || cycles > t.rate then invalid_arg "Alloc_wheel: bad cycles"

let cells_of t ~group ~cycles =
  List.init cycles (fun i -> (group + i) mod t.rate)

let fit t ~group ~cycles =
  check t ~group ~cycles;
  let wanted = cells_of t ~group ~cycles in
  let free fu = List.for_all (fun c -> not t.cells.(fu).(c)) wanted in
  let rec scan fu =
    if fu >= fus t then None else if free fu then Some fu else scan (fu + 1)
  in
  scan 0

let assign t ~group ~cycles =
  match fit t ~group ~cycles with
  | None -> invalid_arg "Alloc_wheel.assign: no unit fits"
  | Some fu ->
      List.iter (fun c -> t.cells.(fu).(c) <- true) (cells_of t ~group ~cycles);
      fu

let release t ~fu ~group ~cycles =
  check t ~group ~cycles;
  if fu < 0 || fu >= fus t then invalid_arg "Alloc_wheel.release: bad unit";
  List.iter
    (fun c ->
      if not t.cells.(fu).(c) then
        invalid_arg "Alloc_wheel.release: cell was free";
      t.cells.(fu).(c) <- false)
    (cells_of t ~group ~cycles)

let busy_cells t ~fu =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.cells.(fu)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun fu row ->
      Format.fprintf ppf "fu%d: %s@," fu
        (String.concat ""
           (Array.to_list (Array.map (fun b -> if b then "#" else ".") row))))
    t.cells;
  Format.fprintf ppf "@]"

(** Allocation wheels for multiple-cycle functional units (§7.4, Fig. 7.10).

    A pipelined design of initiation rate [L] reuses each functional unit
    every [L] control steps, so its occupancy is a wheel of [L] cells.  A
    [c]-cycle operation starting in control-step group [g] claims the [c]
    consecutive (mod [L]) cells [g .. g+c-1] {e of one and the same unit} —
    merely counting free cells per group, as a naive bound would, misses the
    fragmentation the dissertation illustrates with three 2-cycle operations
    on one 6-slot wheel. *)

type t

val create : fus:int -> rate:int -> t
(** [fus] wheels of [rate] cells each. *)

val fus : t -> int
val rate : t -> int

val fit : t -> group:int -> cycles:int -> int option
(** Index of a unit with cells [group .. group+cycles-1] free (smallest
    index), or [None].  [cycles] must be in [1 .. rate]. *)

val assign : t -> group:int -> cycles:int -> int
(** Claims the cells on the unit {!fit} finds.
    @raise Invalid_argument when nothing fits. *)

val release : t -> fu:int -> group:int -> cycles:int -> unit
(** @raise Invalid_argument if some cell was not claimed. *)

val busy_cells : t -> fu:int -> int
val pp : Format.formatter -> t -> unit

lib/sched/schedule.mli: Cdfg Format Mcs_cdfg Module_lib Types

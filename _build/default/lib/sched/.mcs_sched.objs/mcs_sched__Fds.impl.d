lib/sched/fds.ml: Alloc_wheel Array Cdfg Hashtbl List Mcs_cdfg Module_lib Option Printf Schedule Timing Types

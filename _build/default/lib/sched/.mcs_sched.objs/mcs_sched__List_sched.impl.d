lib/sched/list_sched.ml: Alloc_wheel Array Cdfg Constraints Hashtbl List Mcs_cdfg Mcs_graph Printf Schedule Timing Types

lib/sched/alloc_wheel.ml: Array Format List String

lib/sched/schedule.ml: Array Cdfg Format List Mcs_cdfg Mcs_util Module_lib String Timing Types

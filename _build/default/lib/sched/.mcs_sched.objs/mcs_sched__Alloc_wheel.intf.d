lib/sched/alloc_wheel.mli: Format

lib/sched/fds.mli: Cdfg Mcs_cdfg Module_lib Schedule

lib/sched/list_sched.mli: Cdfg Constraints Mcs_cdfg Module_lib Schedule Types

(** Two-phase primal simplex over exact rationals, with the dual-simplex and
    Gomory-cut machinery used by the pin-allocation feasibility checker of
    Chapter 3.3.

    Problems are stated in the natural form

    {v maximize c.x   subject to   a_i . x (<= | >= | =) b_i,   x >= 0 v}

    Bland's anti-cycling rule is used throughout, so termination is
    guaranteed at the price of a few extra pivots — irrelevant at the sizes
    produced by the formulations in this library. *)

type rel = Le | Ge | Eq

type problem = {
  n_vars : int;
  objective : Mcs_util.Ratio.t array;  (** length [n_vars]; maximized *)
  rows : (Mcs_util.Ratio.t array * rel * Mcs_util.Ratio.t) list;
}

type solution = { value : Mcs_util.Ratio.t; x : Mcs_util.Ratio.t array }
type status = Optimal of solution | Infeasible | Unbounded

val solve : problem -> status

(** Access to the solved tableau, for cutting-plane methods. *)
module Tab : sig
  type t

  val of_problem : problem -> [ `Solved of t | `Infeasible | `Unbounded ]
  (** Runs both phases to optimality. *)

  val solution : t -> solution

  val fractional_basic : t -> int option
  (** Index of a tableau row whose basic variable is one of the original
      [n_vars] problem variables and currently holds a fractional value
      (smallest such row), or [None] when the solution is integral on the
      original variables. *)

  val add_gomory_cut : t -> int -> unit
  (** Appends the Gomory fractional cut derived from the given row.  The
      tableau becomes primal-infeasible but stays dual-feasible. *)

  val reoptimize_dual : t -> [ `Ok | `Infeasible ]
  (** Dual simplex until primal feasibility is restored. *)
end

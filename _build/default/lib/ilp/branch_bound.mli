(** Branch-and-bound (M)ILP solver over the exact-rational simplex.

    Serves as the reference exact solver for the interchip-connection
    formulations of Chapters 4 and 6 (the dissertation submitted those to
    Bozo / Lindo) and cross-checks the Gomory path in the test suite. *)

type result =
  | Optimal of Simplex.solution
  | Infeasible
  | Unbounded  (** LP relaxation unbounded in the objective direction *)
  | Node_limit  (** search stopped before proving optimality *)

val solve :
  ?max_nodes:int -> integer:bool array -> Simplex.problem -> result
(** [solve ~integer p] maximizes [p]'s objective with variables [i] such
    that [integer.(i)] constrained to integer values.  Depth-first with
    best-bound pruning; branches on the first fractional integer variable,
    floor branch first.  [max_nodes] defaults to [200_000]. *)

val feasible : ?max_nodes:int -> integer:bool array -> Simplex.problem -> bool option

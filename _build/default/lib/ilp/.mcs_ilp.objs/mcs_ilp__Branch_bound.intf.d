lib/ilp/branch_bound.mli: Simplex

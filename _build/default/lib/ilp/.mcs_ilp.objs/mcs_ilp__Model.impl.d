lib/ilp/model.ml: Array Branch_bound Format Gomory List Mcs_util Printf Simplex

lib/ilp/model.mli: Format Mcs_util Simplex

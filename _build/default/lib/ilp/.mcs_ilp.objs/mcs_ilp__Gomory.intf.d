lib/ilp/gomory.mli: Simplex

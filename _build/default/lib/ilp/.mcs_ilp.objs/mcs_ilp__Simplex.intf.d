lib/ilp/simplex.mli: Mcs_util

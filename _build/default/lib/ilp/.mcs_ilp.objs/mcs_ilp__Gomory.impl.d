lib/ilp/gomory.ml: Array Mcs_util Simplex

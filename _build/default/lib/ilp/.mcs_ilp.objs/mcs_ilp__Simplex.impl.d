lib/ilp/simplex.ml: Array Mcs_util

lib/ilp/branch_bound.ml: Array Mcs_util Simplex

open Mcs_cdfg

module Recursion = struct
  let theorem71_instance ~tasks ~precedence ~machines ~deadline =
    if tasks < 1 || machines < 1 || deadline < 1 then
      invalid_arg "theorem71_instance";
    let b = Cdfg.Builder.create ~n_partitions:2 in
    (* Chain t_1 .. t_{D+1} on chip 1 (single operator). *)
    let chain =
      List.map
        (fun i -> Cdfg.Builder.func b ~name:(Printf.sprintf "t%d" i) ~partition:1 "t")
        (Mcs_util.Listx.range 1 (deadline + 2))
    in
    List.iter2
      (fun a c -> Cdfg.Builder.dep b a c)
      (Mcs_util.Listx.take (deadline) chain)
      (List.tl chain);
    let last = List.nth chain deadline in
    (* X feeds every PCS task on chip 2. *)
    let x = Cdfg.Builder.io b ~name:"X" ~src:1 ~dst:2 ~width:8 "vx" in
    Cdfg.Builder.dep b last x;
    let task =
      Array.init tasks (fun i ->
          Cdfg.Builder.func b ~name:(Printf.sprintf "T%d" (i + 1)) ~partition:2 "t")
    in
    Array.iter (fun tk -> Cdfg.Builder.dep b x tk) task;
    List.iter
      (fun (i, j) ->
        if i < 1 || i > tasks || j < 1 || j > tasks then
          invalid_arg "theorem71_instance: precedence out of range";
        Cdfg.Builder.dep b task.(i - 1) task.(j - 1))
      precedence;
    (* Y collects all tasks back to chip 1, consumed two instances later. *)
    let y = Cdfg.Builder.io b ~name:"Y" ~src:2 ~dst:1 ~width:8 "vy" in
    Array.iter (fun tk -> Cdfg.Builder.dep b tk y) task;
    (match chain with
    | t1 :: _ -> Cdfg.Builder.dep b ~degree:2 y t1
    | [] -> assert false);
    let cdfg = Cdfg.Builder.finish b in
    let cons =
      Constraints.create ~n_partitions:2
        ~pins:[ (0, 64); (1, 64); (2, 64) ]
        ~fus:[ (1, "t", 1); (2, "t", machines) ]
    in
    (* Unit-time operations; I/O fills a whole step so nothing chains. *)
    let mlib = Module_lib.create ~stage_ns:100 ~io_delay_ns:100 [ ("t", 100) ] in
    (cdfg, cons, mlib, deadline + 2)

  let with_buses cdfg cons mlib ~rate ~n_buses =
    let conn =
      Mcs_connect.Connection.create Mcs_connect.Connection.Bidir
        ~n_partitions:(Cdfg.n_partitions cdfg)
    in
    let ios = Cdfg.io_ops cdfg in
    let buses =
      List.map
        (fun _ ->
          let h = Mcs_connect.Connection.new_bus conn in
          Mcs_connect.Connection.widen_port conn ~bus:h ~partition:1 ~dir:`Out 8;
          Mcs_connect.Connection.widen_port conn ~bus:h ~partition:2 ~dir:`Out 8;
          h)
        (Mcs_util.Listx.range 0 n_buses)
    in
    let initial =
      List.mapi (fun i op -> (op, List.nth buses (i mod n_buses))) ios
    in
    let ra =
      Mcs_connect.Reassign.create cdfg conn ~rate ~initial ~dynamic:true
    in
    match
      Mcs_sched.List_sched.run cdfg mlib cons ~rate
        ~io_hook:(Mcs_connect.Reassign.hook ra) ()
    with
    | Ok s -> Mcs_sched.Schedule.verify s = Ok ()
    | Error _ -> false

  let schedulable_sharing_one_bus cdfg cons mlib ~rate =
    with_buses cdfg cons mlib ~rate ~n_buses:1

  let schedulable_with_two_buses cdfg cons mlib ~rate =
    with_buses cdfg cons mlib ~rate ~n_buses:2
end

module Cond_share = struct
  type group = {
    members : Types.op_id list;
    frame : int * int;
    ports : (int * int) list;
  }

  let port_vector cdfg members =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun w ->
        let add p width =
          let old = Option.value ~default:0 (Hashtbl.find_opt tbl p) in
          Hashtbl.replace tbl p (max old width)
        in
        add (Cdfg.io_src cdfg w) (Cdfg.io_width cdfg w);
        add (Cdfg.io_dst cdfg w) (Cdfg.io_width cdfg w))
      members;
    List.sort compare (Hashtbl.fold (fun p w acc -> (p, w) :: acc) tbl [])

  let run cdfg mlib ~rate ~pipe_length ?(penalty_factor = 1.0)
      ?(exclusion_factor = 0.5) () =
    let fixed = Array.make (Cdfg.n_ops cdfg) None in
    match Mcs_sched.Fds.frames cdfg mlib ~rate ~pipe_length ~fixed with
    | None -> []
    | Some (lb, ub) ->
        let conditional =
          List.filter (fun w -> Cdfg.guards cdfg w <> []) (Cdfg.io_ops cdfg)
        in
        let groups =
          ref
            (List.map
               (fun w ->
                 {
                   members = [ w ];
                   frame = (lb.(w), ub.(w));
                   ports = port_vector cdfg [ w ];
                 })
               conditional)
        in
        let frame_size (a, b') = b' - a + 1 in
        let inter (a1, b1) (a2, b2) = (max a1 a2, min b1 b2) in
        let union (a1, b1) (a2, b2) = (min a1 a2, max b1 b2) in
        let compatible g1 g2 =
          frame_size (inter g1.frame g2.frame) > 0
          && List.for_all
               (fun w1 ->
                 List.for_all
                   (fun w2 -> Cdfg.mutually_exclusive cdfg w1 w2)
                   g2.members)
               g1.members
        in
        let gain g1 g2 =
          Mcs_util.Listx.sum
            (fun (p, w1) ->
              match List.assoc_opt p g2.ports with
              | Some w2 -> min w1 w2
              | None -> 0)
            g1.ports
        in
        let basic_w g1 g2 =
          let penalty =
            (float_of_int (frame_size (union g1.frame g2.frame))
            /. float_of_int (frame_size (inter g1.frame g2.frame)))
            -. 1.0
          in
          float_of_int (gain g1 g2) -. (penalty_factor *. penalty)
        in
        let merged = ref true in
        while !merged do
          merged := false;
          let gs = Array.of_list !groups in
          let n = Array.length gs in
          let edges = ref [] in
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              if compatible gs.(i) gs.(j) then
                edges := (i, j, basic_w gs.(i) gs.(j)) :: !edges
            done
          done;
          (* Modified weight: subtract the best merges this one excludes
             (first-order, §7.2). *)
          let adjacent i j =
            List.exists
              (fun (a, b', _) -> (a = i && b' = j) || (a = j && b' = i))
              !edges
          in
          let modified (i, j, w) =
            let best_excluded v other =
              List.fold_left
                (fun acc (a, b', w') ->
                  let u = if a = v then Some b' else if b' = v then Some a else None in
                  match u with
                  | Some u when u <> other && not (adjacent u other) ->
                      max acc w'
                  | _ -> acc)
                0.0 !edges
            in
            let e1 = best_excluded i j and e2 = best_excluded j i in
            w -. (Float.max e1 e2 +. (exclusion_factor *. Float.min e1 e2))
          in
          let best =
            Mcs_util.Listx.max_by
              (fun e -> int_of_float (1000.0 *. modified e))
              (List.filter (fun (_, _, w) -> w > 0.0) !edges)
          in
          match best with
          | Some (i, j, _) ->
              let gi = gs.(i) and gj = gs.(j) in
              let g' =
                {
                  members = gi.members @ gj.members;
                  frame = inter gi.frame gj.frame;
                  ports =
                    port_vector cdfg (gi.members @ gj.members);
                }
              in
              groups :=
                g'
                :: List.filteri (fun k _ -> k <> i && k <> j)
                     (Array.to_list gs);
              merged := true
          | None -> ()
        done;
        !groups

  let pins_saved cdfg groups =
    Mcs_util.Listx.sum
      (fun g ->
        let individual =
          Mcs_util.Listx.sum (fun w -> 2 * Cdfg.io_width cdfg w) g.members
        in
        let shared = Mcs_util.Listx.sum snd g.ports in
        individual - shared)
      groups
end

module Tdm = struct
  let find_transfer cdfg ~value ~dst =
    List.find_opt
      (fun w ->
        String.equal (Cdfg.io_value cdfg w) value && Cdfg.io_dst cdfg w = dst)
      (Cdfg.io_ops cdfg)

  let apply cdfg ~value ~dst ~parts ~split_optype ~merge_optype =
    if parts < 2 then invalid_arg "Tdm.apply: parts must be >= 2";
    let target =
      match find_transfer cdfg ~value ~dst with
      | Some t -> t
      | None -> invalid_arg "Tdm.apply: no such transfer"
    in
    let src = Cdfg.io_src cdfg target in
    let width = Cdfg.io_width cdfg target in
    let part_width = (width + parts - 1) / parts in
    let b = Cdfg.Builder.create ~n_partitions:(Cdfg.n_partitions cdfg) in
    let remap = Hashtbl.create 64 in
    (* Copy every node except the target transfer. *)
    List.iter
      (fun op ->
        if op <> target then begin
          let guards = Cdfg.guards cdfg op in
          let name = Cdfg.name cdfg op in
          let id =
            match Cdfg.node cdfg op with
            | Types.Func { optype; partition } ->
                Cdfg.Builder.func b ~name ~guards ~partition optype
            | Types.Io { value; src; dst; width } ->
                Cdfg.Builder.io b ~name ~guards ~src ~dst ~width value
          in
          Hashtbl.replace remap op id
        end)
      (Cdfg.ops cdfg);
    (* Split node in the source partition (interchip transfers only — the
       outside world supplies primary inputs pre-split). *)
    let guards = Cdfg.guards cdfg target in
    let feeder =
      if src = 0 then None
      else begin
        let split =
          Cdfg.Builder.func b
            ~name:(Printf.sprintf "split_%s" value)
            ~guards ~partition:src split_optype
        in
        List.iter
          (fun p -> Cdfg.Builder.dep b (Hashtbl.find remap p) split)
          (Cdfg.preds cdfg target);
        Some split
      end
    in
    let parts_io =
      List.map
        (fun i ->
          let io =
            Cdfg.Builder.io b
              ~name:(Printf.sprintf "%s.%d" (Cdfg.name cdfg target) i)
              ~guards ~src ~dst ~width:part_width
              (Printf.sprintf "%s#%d" value i)
          in
          (match feeder with
          | Some split -> Cdfg.Builder.dep b split io
          | None -> ());
          io)
        (Mcs_util.Listx.range 1 (parts + 1))
    in
    let merge =
      Cdfg.Builder.func b
        ~name:(Printf.sprintf "merge_%s" value)
        ~guards ~partition:dst merge_optype
    in
    List.iter (fun io -> Cdfg.Builder.dep b io merge) parts_io;
    (* Rewire all edges; the target's consumers now read the merge node. *)
    List.iter
      (fun { Types.e_src; e_dst; degree } ->
        if e_src = target then Cdfg.Builder.dep b ~degree merge (Hashtbl.find remap e_dst)
        else if e_dst = target then ()
          (* producer -> target handled via the split node *)
        else
          Cdfg.Builder.dep b ~degree (Hashtbl.find remap e_src)
            (Hashtbl.find remap e_dst))
      (Cdfg.edges cdfg);
    Cdfg.Builder.finish b

  let pin_effect cdfg ~value ~dst ~parts =
    match find_transfer cdfg ~value ~dst with
    | None -> invalid_arg "Tdm.pin_effect: no such transfer"
    | Some t ->
        let width = Cdfg.io_width cdfg t in
        (width, (width + parts - 1) / parts)
end

module Multicycle = struct
  let lower_bound ~ops ~rate ~cycles =
    if cycles > rate then
      invalid_arg "Multicycle.lower_bound: cycles exceed the initiation rate";
    let slots_per_fu = rate / cycles in
    (ops + slots_per_fu - 1) / slots_per_fu

  let fragmentation_demo () =
    let bad =
      let w = Mcs_sched.Alloc_wheel.create ~fus:1 ~rate:6 in
      ignore (Mcs_sched.Alloc_wheel.assign w ~group:0 ~cycles:2);
      ignore (Mcs_sched.Alloc_wheel.assign w ~group:3 ~cycles:2);
      Mcs_sched.Alloc_wheel.fit w ~group:2 ~cycles:2 <> None
      || Mcs_sched.Alloc_wheel.fit w ~group:5 ~cycles:2 <> None
    in
    let good =
      let w = Mcs_sched.Alloc_wheel.create ~fus:1 ~rate:6 in
      ignore (Mcs_sched.Alloc_wheel.assign w ~group:0 ~cycles:2);
      ignore (Mcs_sched.Alloc_wheel.assign w ~group:2 ~cycles:2);
      Mcs_sched.Alloc_wheel.fit w ~group:4 ~cycles:2 <> None
    in
    (bad, good)
end

lib/core/report.ml: Array Cdfg Format List Mcs_cdfg Mcs_connect Mcs_sched Mcs_util Printf Simple_part String Subbus

lib/core/pre_connect.ml: Benchmarks List Mcs_cdfg Mcs_connect Mcs_sched Printf Types

lib/core/simple_part.ml: Benchmarks Cdfg Constraints Format Hashtbl List Mcs_cdfg Mcs_ilp Mcs_sched Mcs_util Option Printf String Types

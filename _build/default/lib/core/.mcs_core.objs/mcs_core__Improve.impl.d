lib/core/improve.ml: Array Cdfg Hashtbl List Mcs_cdfg Mcs_connect Mcs_sched Mcs_util Pre_connect Printf

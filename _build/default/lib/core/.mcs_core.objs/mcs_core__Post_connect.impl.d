lib/core/post_connect.ml: Array Benchmarks Cdfg List Mcs_cdfg Mcs_connect Mcs_graph Mcs_sched Mcs_util Types

lib/core/simple_part.mli: Benchmarks Cdfg Constraints Mcs_cdfg Mcs_ilp Mcs_sched Stdlib Types

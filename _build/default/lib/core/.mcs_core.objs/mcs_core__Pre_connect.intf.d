lib/core/pre_connect.mli: Benchmarks Cdfg Constraints Mcs_cdfg Mcs_connect Mcs_sched Module_lib Types

lib/core/subbus.ml: Array Benchmarks Cdfg Constraints Hashtbl List Mcs_cdfg Mcs_connect Mcs_graph Mcs_sched Mcs_util Option Printf String Sys Types

lib/core/subbus.mli: Benchmarks Cdfg Constraints Mcs_cdfg Mcs_sched Module_lib Types

lib/core/extensions.mli: Cdfg Constraints Mcs_cdfg Module_lib Types

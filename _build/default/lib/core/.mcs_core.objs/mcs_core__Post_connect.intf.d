lib/core/post_connect.mli: Benchmarks Cdfg Mcs_cdfg Mcs_connect Mcs_sched Module_lib Types

lib/core/report.mli: Cdfg Format Mcs_cdfg Mcs_connect Mcs_sched Simple_part Subbus Types

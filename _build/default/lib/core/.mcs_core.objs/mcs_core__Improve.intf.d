lib/core/improve.mli: Cdfg Constraints Mcs_cdfg Mcs_connect Module_lib Pre_connect

lib/core/extensions.ml: Array Cdfg Constraints Float Hashtbl List Mcs_cdfg Mcs_connect Mcs_sched Mcs_util Module_lib Option Printf String Types

(** Chapter 7 extensions: data recursive edges, conditional I/O operations,
    time division I/O multiplexing, and multiple-cycle operations. *)

open Mcs_cdfg

(** §7.1 — data recursive edges.  Theorem 7.1 reduces precedence-constrained
    scheduling to the question "does a pipelined schedule exist with these
    two I/O operations on one communication bus?"; this module builds the
    reduction instance so the hardness construction can be exercised. *)
module Recursion : sig
  val theorem71_instance :
    tasks:int ->
    precedence:(int * int) list ->
    machines:int ->
    deadline:int ->
    Cdfg.t * Constraints.t * Module_lib.t * int
  (** The ASG instance of the proof: a chain partition P1 feeding, through
      I/O operation X, a partition P2 holding the PCS tasks, closed by I/O
      operation Y and a degree-2 recursive edge; returns
      (cdfg, constraints, module library, initiation rate = deadline + 2). *)

  val schedulable_sharing_one_bus :
    Cdfg.t -> Constraints.t -> Module_lib.t -> rate:int -> bool
  (** Can the instance be scheduled with X and Y assigned to the same
      single communication bus?  True iff the embedded PCS instance is a
      yes-instance (the equivalence of the proof). *)

  val schedulable_with_two_buses :
    Cdfg.t -> Constraints.t -> Module_lib.t -> rate:int -> bool
end

(** §7.2 — conditional I/O operations: mutually exclusive I/O operations
    (on opposite branches of a conditional spread over several chips) may
    share communication slots and pins.  Implements the merging heuristic of
    Fig. 7.7 over a compatibility graph whose nodes carry a schedule
    time-frame and a minimal bus-connection structure. *)
module Cond_share : sig
  type group = {
    members : Types.op_id list;
    frame : int * int;  (** [asap, alap] window shared by the group *)
    ports : (int * int) list;  (** minimal (partition, width) connection *)
  }

  val run :
    Cdfg.t -> Module_lib.t -> rate:int -> pipe_length:int ->
    ?penalty_factor:float -> ?exclusion_factor:float -> unit ->
    group list
  (** Groups of conditional I/O operations to be scheduled in a common
      control step sharing one communication slot.  [penalty_factor] is the
      [pf] weight on lost scheduling freedom, [exclusion_factor] the [f]
      weight on excluded future merges (both per §7.2). *)

  val pins_saved : Cdfg.t -> group list -> int
  (** Total pins saved versus giving every member its own connection. *)
end

(** §7.3 — time division I/O multiplexing: replace one wide transfer by
    several narrower ones spread over consecutive cycles, with split/merge
    glue operations (Fig. 7.8). *)
module Tdm : sig
  val apply :
    Cdfg.t -> value:string -> dst:int -> parts:int ->
    split_optype:string -> merge_optype:string -> Cdfg.t
  (** Rebuilds the CDFG with the I/O operation carrying [value] into [dst]
      split into [parts] transfers of [ceil (width / parts)] bits.  A
      [split_optype] operation is inserted in the source partition (omitted
      for primary inputs, which the outside world supplies pre-split) and a
      [merge_optype] operation in the destination partition; both types must
      exist in the module library used for scheduling.
      @raise Invalid_argument if no such transfer exists or [parts < 2]. *)

  val pin_effect :
    Cdfg.t -> value:string -> dst:int -> parts:int -> int * int
  (** [(pins_before, pins_after)] for the transfer itself: the width versus
      the per-part width — the §7.3 trade of pins against control steps. *)
end

(** §7.4 — multiple-cycle operations. *)
module Multicycle : sig
  val lower_bound : ops:int -> rate:int -> cycles:int -> int
  (** Eq. 7.5: minimum functional units for [ops] operations of [cycles]
      cycles each at initiation rate [rate].
      @raise Invalid_argument when [cycles > rate] (no pipelined design). *)

  val fragmentation_demo : unit -> bool * bool
  (** The Fig. 7.10 scenario: three 2-cycle operations on one allocation
      wheel of rate 6.  Returns (fits when started at groups 0 and 3 — the
      bad placement, expected [false]; fits at groups 0 and 2 — expected
      [true]). *)
end

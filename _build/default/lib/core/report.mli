(** Rendering of the dissertation's tables and figures: schedules,
    interchip connections, bus assignments and allocations — shared by the
    benchmark harness, the examples and the CLI. *)

open Mcs_cdfg

val table :
  Format.formatter -> title:string -> header:string list ->
  string list list -> unit
(** Monospace table with a title row, column headers and rows. *)

val schedule : Format.formatter -> Mcs_sched.Schedule.t -> unit
(** One line per control step, functional operations and I/O transfers
    (the paper's Figures 3.6, 4.11–4.13, ...). *)

val connection :
  Cdfg.t -> Format.formatter -> Mcs_connect.Connection.t -> unit
(** Bus structure with port widths (Figures 4.8–4.10, ...). *)

val bundles :
  Format.formatter -> Simple_part.Theorem31.bundle list -> unit
(** The Theorem 3.1 wire bundles (Figure 3.7). *)

val bus_assignment :
  Cdfg.t -> Format.formatter ->
  initial:(Types.op_id * int) list ->
  final:(Types.op_id * int) list ->
  unit
(** The "Bus assignment" tables (4.3, 4.5, ...): initial and final
    operation-to-bus assignments side by side, one row per bus. *)

val bus_allocation :
  Cdfg.t -> rate:int -> Format.formatter ->
  ((int * int) * (string * int * Types.op_id list)) list -> unit
(** The "Bus allocation" tables (4.4, 4.6, ...): which value each bus
    carries in each control-step group. *)

val pins_row : (int * int) list -> string list
(** Pin counts per partition as table cells. *)

val real_buses : Cdfg.t -> Format.formatter -> Subbus.real_bus list -> unit
(** Chapter 6 bus structures with splits (Figures 6.2–6.4). *)

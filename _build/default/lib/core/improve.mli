(** Schedule improvement by postponement and restart.

    §5.3 and §6.3 note that "for most of the test cases, given the same
    interchip connections, better scheduling results ... can be obtained by
    postponing some of the operations" — the authors did this by hand,
    constraining operations and rerunning; §8.2 lists replacing the greedy
    list scheduler as future work.  This module mechanizes the trick:

    - {!pre_connect}: run the Chapter 4 flow, then retry the scheduling
      phase with deterministic priority perturbations and with targeted
      postponement floors on late-critical operations, keeping the shortest
      valid schedule found;
    - {!rescue}: when the plain greedy run fails outright (the elliptic
      filter at its minimum rate), search the perturbations for any valid
      schedule. *)

open Mcs_cdfg

val pre_connect :
  Cdfg.t ->
  Module_lib.t ->
  Constraints.t ->
  rate:int ->
  mode:Mcs_connect.Connection.mode ->
  ?trials:int ->
  unit ->
  (Pre_connect.t, string) result
(** Like {!Pre_connect.run} but returns the best-of-[trials] (default 12)
    schedule over the same interchip connection. *)

val rescue :
  Cdfg.t ->
  Module_lib.t ->
  Constraints.t ->
  rate:int ->
  mode:Mcs_connect.Connection.mode ->
  ?trials:int ->
  unit ->
  (Pre_connect.t, string) result
(** Alias of {!pre_connect} emphasizing the failure-recovery use: succeeds
    whenever any perturbation schedules. *)

(** Register-transfer-level data paths: the structural output of the
    synthesis process (§1.1: "operators and registers interconnected via
    multiplexers, buses, and wires").

    Binding decisions:
    - operations bind to functional-unit instances by the same allocation
      wheels the scheduler used, so the binding always fits the schedule;
    - registered values bind to physical registers by a cyclic variant of
      the left-edge algorithm [HS71] (the paper's reference point for
      interval binding): lifetimes are packed greedily onto registers whose
      steady-state occupancy (control steps mod the initiation rate) they
      do not overlap; a value living longer than one initiation interval
      occupies several registers of a rotating group, as modulo-scheduled
      pipelines require;
    - a multiplexer appears wherever a functional-unit input port, register
      input, or output-pin driver is fed from more than one source. *)

open Mcs_cdfg

type fu = { fu_optype : string; fu_index : int }

type register = {
  reg_index : int;
  reg_width : int;
  holds : (Types.op_id * int * int) list;
      (** (value producer, birth, death) lifetimes packed on this register *)
}

type mux = { mux_at : string; mux_inputs : int }

type partition_rtl = {
  rp_partition : int;
  fus : (fu * Types.op_id list) list;  (** unit and the operations bound *)
  registers : register list;
  muxes : mux list;
  control_words : (int * string list) list;
      (** per control-step group: the micro-operations issued *)
}

type t = {
  parts : partition_rtl list;
  schedule : Mcs_sched.Schedule.t;
}

val build : Mcs_sched.Schedule.t -> Constraints.t -> (t, string) result
(** Fails (rather than silently overcommitting) if the schedule does not fit
    the functional-unit constraints — which cannot happen for schedules the
    in-repo schedulers produced under the same constraints. *)

val register_count : t -> int -> int
val mux_input_total : t -> int -> int
(** Total multiplexer fan-in on a chip — the paper's proxy for
    interconnection cost. *)

val pp : Format.formatter -> t -> unit
(** Structural netlist-style listing, one section per chip. *)

val pp_verilog : Format.formatter -> t -> unit
(** Skeleton structural Verilog (one module per chip, FU/register/mux
    instances and the controller case table), for inspection rather than
    tape-out. *)

open Mcs_cdfg
module Sched = Mcs_sched.Schedule

type t = {
  producer : Types.op_id;
  on_partition : int;
  birth : int;
  death : int;
}

let span l = max 0 (l.death - l.birth + 1)

let analyse sched =
  let cdfg = Sched.cdfg sched in
  let mlib = Sched.mlib sched in
  let rate = Sched.rate sched in
  let outgoing = Hashtbl.create 64 in
  List.iter
    (fun { Types.e_src; e_dst; degree } ->
      Hashtbl.replace outgoing e_src
        ((e_dst, degree)
        :: Option.value ~default:[] (Hashtbl.find_opt outgoing e_src)))
    (Cdfg.edges cdfg);
  let lifetime_of op ~on_partition ~birth =
    let readers =
      Option.value ~default:[] (Hashtbl.find_opt outgoing op)
    in
    let death =
      List.fold_left
        (fun acc (c, d) ->
          let read_at = Sched.cstep sched c + (d * rate) in
          (* A same-step (chained) reader consumes the combinational value,
             not the register. *)
          if read_at >= birth then max acc read_at else acc)
        (birth - 1) readers
    in
    { producer = op; on_partition; birth; death }
  in
  let entries =
    List.concat_map
      (fun op ->
        match Cdfg.node cdfg op with
        | Types.Func { partition; _ } ->
            [
              lifetime_of op ~on_partition:partition
                ~birth:(Sched.cstep sched op + Timing.op_cycles cdfg mlib op);
            ]
        | Types.Io { dst; _ } ->
            if dst = 0 then []
            else
              [
                lifetime_of op ~on_partition:dst
                  ~birth:(Sched.cstep sched op + 1);
              ])
      (Cdfg.ops cdfg)
  in
  List.sort
    (fun a b -> compare (a.on_partition, a.birth, a.producer) (b.on_partition, b.birth, b.producer))
    entries

let registers_lower_bound sched =
  let cdfg = Sched.cdfg sched in
  let rate = Sched.rate sched in
  let lts = analyse sched in
  List.map
    (fun p ->
      let mine = List.filter (fun l -> l.on_partition = p && span l > 0) lts in
      let worst = ref 0 in
      for g = 0 to rate - 1 do
        let live =
          Mcs_util.Listx.sum
            (fun l ->
              (* Copies of this value stream live at residue g in steady
                 state: the number of csteps in [birth, death] congruent
                 to g. *)
              let count = ref 0 in
              for x = l.birth to l.death do
                if ((x mod rate) + rate) mod rate = g then incr count
              done;
              !count)
            mine
        in
        if live > !worst then worst := live
      done;
      (p, !worst))
    (Mcs_util.Listx.range 1 (Cdfg.n_partitions cdfg + 1))

(** Value lifetimes in a pipelined multi-chip schedule.

    Each value lives on the chip that computes it from the end of its
    producing operation until its last local read; a value received over a
    bus lives on the destination chip from its transfer until its last read
    there (§2.2.1: an incoming value "can be input only once and stored").
    A consumer reached through a data recursive edge of degree [d] reads the
    value [d] initiation intervals later, stretching the lifetime
    accordingly (§7.1 — which is why such values may need more than [d]
    registers). *)

open Mcs_cdfg

type t = {
  producer : Types.op_id;  (** the operation whose result is stored *)
  on_partition : int;
  birth : int;  (** first control step in which a register holds the value *)
  death : int;  (** last control step in which it must still be held;
                    [death < birth] means the value is consumed
                    combinationally (chained) and needs no register *)
}

val span : t -> int
(** Number of control steps the register is occupied: [death - birth + 1]
    (0 when never registered). *)

val analyse : Mcs_sched.Schedule.t -> t list
(** One entry per (value, partition) pair that ever holds it, sorted by
    partition then birth. *)

val registers_lower_bound : Mcs_sched.Schedule.t -> (int * int) list
(** Per partition: maximum number of simultaneously live registered values
    in any control-step group of the steady state — a lower bound on the
    register count any binding needs. *)

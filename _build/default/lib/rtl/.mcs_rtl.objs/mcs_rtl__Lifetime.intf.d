lib/rtl/lifetime.mli: Mcs_cdfg Mcs_sched Types

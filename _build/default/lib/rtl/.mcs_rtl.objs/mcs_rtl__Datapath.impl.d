lib/rtl/datapath.ml: Array Cdfg Constraints Format Hashtbl Lifetime List Mcs_cdfg Mcs_sched Mcs_util Option Printf String Timing Types

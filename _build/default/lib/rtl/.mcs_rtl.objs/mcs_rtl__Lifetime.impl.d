lib/rtl/lifetime.ml: Cdfg Hashtbl List Mcs_cdfg Mcs_sched Mcs_util Option Timing Types

lib/rtl/datapath.mli: Constraints Format Mcs_cdfg Mcs_sched Types

(** Upper bound on the number of communication buses (§4.1.1).

    Every bus must touch at least one input port and one output port, and no
    port connects to more than one bus; so the number of ports each chip can
    afford — computed from its pin budget and the bit-width population of its
    I/O operations — bounds the bus count far more tightly than the naive
    "one bus per I/O operation". *)

open Mcs_cdfg

val max_input_ports : Cdfg.t -> Constraints.t -> rate:int -> partition:int -> int
(** [Iub_i]: upper bound on input ports of the partition, assuming output
    operations take their minimum pins first. *)

val max_output_ports : Cdfg.t -> Constraints.t -> rate:int -> partition:int -> int

val min_input_pins : Cdfg.t -> rate:int -> partition:int -> int
(** [IPl_i]: fewest input pins that can serve all the partition's input
    operations at the given initiation rate (greedy widest-first packing of
    the recurrence in §4.1.1). *)

val min_output_pins : Cdfg.t -> rate:int -> partition:int -> int

val max_buses : Cdfg.t -> Constraints.t -> rate:int -> int
(** [R = min (sum Iub_i, sum Oub_i)] over all partitions including the
    outside world. *)

val max_buses_bidir : Cdfg.t -> Constraints.t -> rate:int -> int
(** Bidirectional variant: every bus needs at least two I/O ports, so [R]
    is half the total port bound (§4.3). *)

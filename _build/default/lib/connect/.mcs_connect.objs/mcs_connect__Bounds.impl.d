lib/connect/bounds.ml: Cdfg Constraints List Mcs_cdfg Mcs_util

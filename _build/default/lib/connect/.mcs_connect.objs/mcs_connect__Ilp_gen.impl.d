lib/connect/ilp_gen.ml: Cdfg Connection Constraints Hashtbl List Mcs_cdfg Mcs_ilp Mcs_util Printf String Types

lib/connect/reassign.mli: Cdfg Connection Mcs_cdfg Mcs_sched Types

lib/connect/bounds.mli: Cdfg Constraints Mcs_cdfg

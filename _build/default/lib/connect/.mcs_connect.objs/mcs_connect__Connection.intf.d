lib/connect/connection.mli: Cdfg Format Mcs_cdfg Types

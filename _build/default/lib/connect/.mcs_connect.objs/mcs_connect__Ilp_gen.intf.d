lib/connect/ilp_gen.mli: Cdfg Connection Constraints Mcs_cdfg Mcs_ilp Types

lib/connect/reassign.ml: Array Cdfg Connection Hashtbl List Mcs_cdfg Mcs_graph Mcs_sched Mcs_util String Types

lib/connect/heuristic.mli: Cdfg Connection Constraints Mcs_cdfg Stdlib Types

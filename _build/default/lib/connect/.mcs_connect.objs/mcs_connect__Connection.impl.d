lib/connect/connection.ml: Array Cdfg Format List Mcs_cdfg Mcs_util Printf String

lib/connect/heuristic.ml: Array Cdfg Connection Constraints Hashtbl List Mcs_cdfg Mcs_util Option String Types

open Mcs_cdfg

type mode = Unidir | Bidir

type bus = {
  outw : int array; (* indexed by partition 0..N; in Bidir aliases inw *)
  inw : int array;
}

type t = {
  mode : mode;
  n_partitions : int;
  mutable buses : bus array;
  mutable nb : int;
}

let create mode ~n_partitions =
  if n_partitions < 1 then invalid_arg "Connection.create";
  { mode; n_partitions; buses = [||]; nb = 0 }

let mode t = t.mode
let n_partitions t = t.n_partitions
let n_buses t = t.nb

let fresh_bus t =
  let outw = Array.make (t.n_partitions + 1) 0 in
  match t.mode with
  | Unidir -> { outw; inw = Array.make (t.n_partitions + 1) 0 }
  | Bidir -> { outw; inw = outw }

let new_bus t =
  if t.nb = Array.length t.buses then begin
    let cap = max 8 (2 * t.nb) in
    let buses = Array.make cap (fresh_bus t) in
    Array.blit t.buses 0 buses 0 t.nb;
    for i = t.nb to cap - 1 do
      buses.(i) <- fresh_bus t
    done;
    t.buses <- buses
  end;
  t.buses.(t.nb) <- fresh_bus t;
  t.nb <- t.nb + 1;
  t.nb - 1

let get t h =
  if h < 0 || h >= t.nb then invalid_arg "Connection: bad bus id";
  t.buses.(h)

let drop_last_bus t =
  if t.nb = 0 then invalid_arg "Connection.drop_last_bus: no bus";
  let b = t.buses.(t.nb - 1) in
  if
    Array.exists (fun w -> w <> 0) b.outw || Array.exists (fun w -> w <> 0) b.inw
  then invalid_arg "Connection.drop_last_bus: bus still wired";
  t.nb <- t.nb - 1

let check_part t p =
  if p < 0 || p > t.n_partitions then invalid_arg "Connection: bad partition"

let out_width t ~bus ~partition =
  check_part t partition;
  (get t bus).outw.(partition)

let in_width t ~bus ~partition =
  check_part t partition;
  (get t bus).inw.(partition)

let widen_for t ~bus ~src ~dst ~width =
  check_part t src;
  check_part t dst;
  let b = get t bus in
  b.outw.(src) <- max b.outw.(src) width;
  b.inw.(dst) <- max b.inw.(dst) width

let widen_port t ~bus ~partition ~dir width =
  check_part t partition;
  let b = get t bus in
  match dir with
  | `Out -> b.outw.(partition) <- max b.outw.(partition) width
  | `In -> b.inw.(partition) <- max b.inw.(partition) width

let shrink t ~bus ~src ~dst ~out_w ~in_w =
  let b = get t bus in
  (* In Bidir mode outw and inw alias; restore output side last so a saved
     pair taken with [out_width]/[in_width] round-trips. *)
  b.inw.(dst) <- in_w;
  b.outw.(src) <- out_w

let capable t cdfg ~bus op =
  let b = get t bus in
  let src = Cdfg.io_src cdfg op
  and dst = Cdfg.io_dst cdfg op
  and w = Cdfg.io_width cdfg op in
  b.outw.(src) >= w && b.inw.(dst) >= w

let extra_pins_for t ~bus ~src ~dst ~width =
  let b = get t bus in
  match t.mode with
  | Unidir ->
      (max 0 (width - b.outw.(src)), max 0 (width - b.inw.(dst)))
  | Bidir -> (max 0 (width - b.outw.(src)), max 0 (width - b.outw.(dst)))

let pins_used t p =
  check_part t p;
  let total = ref 0 in
  for h = 0 to t.nb - 1 do
    let b = t.buses.(h) in
    match t.mode with
    | Unidir -> total := !total + b.outw.(p) + b.inw.(p)
    | Bidir -> total := !total + b.outw.(p)
  done;
  !total

let partitions_on_bus t ~bus =
  let b = get t bus in
  List.filter
    (fun p -> b.outw.(p) > 0 || b.inw.(p) > 0)
    (Mcs_util.Listx.range 0 (t.n_partitions + 1))

let topology t ~bus =
  let b = get t bus in
  let all = Mcs_util.Listx.range 0 (t.n_partitions + 1) in
  ( List.filter (fun p -> b.outw.(p) > 0) all,
    List.filter (fun p -> b.inw.(p) > 0) all )

let bus_width t ~bus =
  let b = get t bus in
  let m = ref 0 in
  Array.iter (fun w -> m := max !m w) b.outw;
  Array.iter (fun w -> m := max !m w) b.inw;
  !m

let copy t =
  {
    t with
    buses =
      Array.init (Array.length t.buses) (fun i ->
          if i >= t.nb then t.buses.(i)
          else
            let b = t.buses.(i) in
            match t.mode with
            | Unidir -> { outw = Array.copy b.outw; inw = Array.copy b.inw }
            | Bidir ->
                let outw = Array.copy b.outw in
                { outw; inw = outw });
  }

let pp cdfg ppf t =
  ignore cdfg;
  Format.fprintf ppf "@[<v>";
  for h = 0 to t.nb - 1 do
    let b = t.buses.(h) in
    let ports side arr =
      List.filter_map
        (fun p -> if arr.(p) > 0 then Some (Printf.sprintf "P%d%s%d" p side arr.(p)) else None)
        (Mcs_util.Listx.range 0 (t.n_partitions + 1))
    in
    match t.mode with
    | Unidir ->
        Format.fprintf ppf "C%-2d (%2d lines): out[%s] in[%s]@," (h + 1)
          (bus_width t ~bus:h)
          (String.concat " " (ports ":" b.outw))
          (String.concat " " (ports ":" b.inw))
    | Bidir ->
        Format.fprintf ppf "C%-2d (%2d lines): io[%s]@," (h + 1)
          (bus_width t ~bus:h)
          (String.concat " " (ports ":" b.outw))
  done;
  Format.fprintf ppf "@]"

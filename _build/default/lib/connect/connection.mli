(** The interchip connection model of §4.1 (Fig. 4.1) and its bidirectional
    variant (§4.3, Fig. 4.6).

    A communication bus connects output ports of one or more partitions to
    input ports of one or more partitions; no switching devices exist
    off-chip, so a bus can carry (at most) one value per control step.  Port
    widths may differ per partition — a chip connects only as many pins to a
    bus as the widest value it actually sends or receives on it.

    With bidirectional I/O ports a partition has a single port per bus,
    usable as source or destination (§4.3). *)

open Mcs_cdfg

type mode = Unidir | Bidir

type t
(** Mutable: the Chapter 4 heuristic grows buses and widens ports as it
    assigns I/O operations. *)

val create : mode -> n_partitions:int -> t
val mode : t -> mode
val n_partitions : t -> int

val new_bus : t -> int
(** Fresh empty bus; returns its id (ids are dense, starting at 0). *)

val n_buses : t -> int
val drop_last_bus : t -> unit
(** Removes the most recently created bus (backtracking helper).
    @raise Invalid_argument if that bus has a nonzero port somewhere. *)

val out_width : t -> bus:int -> partition:int -> int
(** [p_{i,h}] — 0 when not connected.  In [Bidir] mode this is the shared
    port width [r_{i,h}], as is {!in_width}. *)

val in_width : t -> bus:int -> partition:int -> int

val widen_for : t -> bus:int -> src:int -> dst:int -> width:int -> unit
(** Grows the ports of [src] (output side) and [dst] (input side) on the bus
    to at least [width]. *)

val widen_port :
  t -> bus:int -> partition:int -> dir:[ `Out | `In ] -> int -> unit
(** Grows one single port (both directions alias in [Bidir] mode).  Used by
    the Chapter 6 flow to materialize sub-buses as virtual buses. *)

val shrink : t -> bus:int -> src:int -> dst:int -> out_w:int -> in_w:int -> unit
(** Restores previously saved port widths (backtracking helper). *)

val capable : t -> Cdfg.t -> bus:int -> Types.op_id -> bool
(** Can the bus carry this I/O operation as currently wired (ports of both
    endpoints at least the operation's width)? *)

val extra_pins_for : t -> bus:int -> src:int -> dst:int -> width:int -> int * int
(** [(d_src, d_dst)] — additional pins partitions [src] and [dst] must
    commit to widen their ports for such a transfer. *)

val pins_used : t -> int -> int
(** Total pins partition [i] has committed across all buses. *)

val partitions_on_bus : t -> bus:int -> int list
(** Partitions with a nonzero port on the bus (sorted). *)

val topology : t -> bus:int -> (int list * int list)
(** [(sources, destinations)] — partitions with nonzero output/input ports
    (for [Bidir], both lists coincide).  Two buses with equal topology are
    interchangeable candidates in the heuristic search (§4.1.2). *)

val bus_width : t -> bus:int -> int
(** Widest port on the bus = number of bus lines. *)

val copy : t -> t
val pp : Cdfg.t -> Format.formatter -> t -> unit

open Mcs_cdfg

(* Width population of a partition's input side: one entry per I/O
   operation; of its output side: one entry per distinct value (output
   operations of one value share the output port, §2.2.1). *)
let input_widths cdfg partition =
  List.map (Cdfg.io_width cdfg) (Cdfg.io_inputs_of_partition cdfg partition)

let output_widths cdfg partition =
  List.map
    (fun v ->
      match Cdfg.io_ops_of_value cdfg v with
      | [] -> assert false
      | op :: _ -> Cdfg.io_width cdfg op)
    (Cdfg.values_output_by cdfg partition)

(* The §4.1.1 recurrences over the increasing width sequence.  Returns
   (min_pins, fun available_pins -> max_ports). *)
let side_bounds widths ~rate =
  let sorted = List.sort_uniq compare widths in
  let counts =
    List.map
      (fun b -> (b, List.length (List.filter (( = ) b) widths)))
      sorted
  in
  (* Walk widest-first: lower bound ports (and hence pins), tracking spare
     slots donated by wider ports. *)
  let rec lower acc_pins spare lbs = function
    | [] -> (acc_pins, lbs)
    | (b, n) :: rest ->
        let need = max 0 (n - spare) in
        let ports = (need + rate - 1) / rate in
        let spare' = spare + (ports * rate) - n in
        lower (acc_pins + (ports * b)) spare' ((b, ports) :: lbs) rest
  in
  let min_pins, lbs = lower 0 0 [] (List.rev counts) in
  let max_ports available =
    (* Widest-first again: the upper bound takes all pins not reserved by
       the minimum allocation of wider widths. *)
    let rec upper avail = function
      | [] -> 0
      | (b, n) :: rest ->
          let ub = min (avail / b) n in
          let reserved = List.assoc b lbs * b in
          ub + upper (avail - reserved) rest
    in
    upper (max 0 available) (List.rev counts)
  in
  (min_pins, max_ports)

let min_input_pins cdfg ~rate ~partition =
  fst (side_bounds (input_widths cdfg partition) ~rate)

let min_output_pins cdfg ~rate ~partition =
  fst (side_bounds (output_widths cdfg partition) ~rate)

let max_input_ports cdfg cons ~rate ~partition =
  let _, f = side_bounds (input_widths cdfg partition) ~rate in
  f (Constraints.pins cons partition - min_output_pins cdfg ~rate ~partition)

let max_output_ports cdfg cons ~rate ~partition =
  let _, f = side_bounds (output_widths cdfg partition) ~rate in
  f (Constraints.pins cons partition - min_input_pins cdfg ~rate ~partition)

let all_partitions cdfg = Mcs_util.Listx.range 0 (Cdfg.n_partitions cdfg + 1)

let max_buses cdfg cons ~rate =
  let sum f =
    Mcs_util.Listx.sum (fun p -> f cdfg cons ~rate ~partition:p) (all_partitions cdfg)
  in
  max 1 (min (sum max_input_ports) (sum max_output_ports))

let max_buses_bidir cdfg cons ~rate =
  let total =
    Mcs_util.Listx.sum
      (fun p ->
        max_input_ports cdfg cons ~rate ~partition:p
        + max_output_ports cdfg cons ~rate ~partition:p)
      (all_partitions cdfg)
  in
  max 1 (total / 2)

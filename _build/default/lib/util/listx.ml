let range lo hi = List.init (max 0 (hi - lo)) (fun i -> lo + i)
let sum f l = List.fold_left (fun acc x -> acc + f x) 0 l

let best_by cmp f = function
  | [] -> None
  | x :: rest ->
      let pick best y = if cmp (f y) (f best) then y else best in
      Some (List.fold_left pick x rest)

let max_by f l = best_by ( > ) f l
let min_by f l = best_by ( < ) f l

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let group_by key l =
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  let add x =
    let k = key x in
    match Hashtbl.find_opt groups k with
    | None ->
        Hashtbl.add groups k (ref [ x ]);
        order := k :: !order
    | Some r -> r := x :: !r
  in
  List.iter add l;
  List.rev_map
    (fun k -> (k, List.rev !(Hashtbl.find groups k)))
    !order

let uniq eq l =
  let rec go seen = function
    | [] -> List.rev seen
    | x :: rest ->
        if List.exists (eq x) seen then go seen rest else go (x :: seen) rest
  in
  go [] l

(** Small list/iteration helpers shared across the library. *)

val range : int -> int -> int list
(** [range lo hi] is [[lo; lo+1; ...; hi-1]] (empty if [hi <= lo]). *)

val sum : ('a -> int) -> 'a list -> int
val max_by : ('a -> int) -> 'a list -> 'a option
(** Element with the largest key; first one wins ties. *)

val min_by : ('a -> int) -> 'a list -> 'a option

val take : int -> 'a list -> 'a list
(** First [n] elements (all of them if the list is shorter). *)

val group_by : ('a -> 'k) -> 'a list -> ('k * 'a list) list
(** Groups elements by key; groups appear in order of first occurrence and
    preserve element order. *)

val uniq : ('a -> 'a -> bool) -> 'a list -> 'a list
(** Order-preserving deduplication under the given equality (quadratic; for
    short lists). *)

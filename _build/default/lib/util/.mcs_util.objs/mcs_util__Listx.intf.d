lib/util/listx.mli:

lib/util/ratio.ml: Format Stdlib

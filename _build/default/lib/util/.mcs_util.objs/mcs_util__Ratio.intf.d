lib/util/ratio.mli: Format

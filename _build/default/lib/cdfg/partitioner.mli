(** Behavioural-level partitioning front end.

    The dissertation assumes partitioning happens {e before} synthesis, by a
    predictive partitioner such as CHOP [KP91] (§1.2).  CHOP itself is not
    available; this module plays its role: given an {e unpartitioned}
    operation network, produce a chip assignment that balances operation
    load and keeps the predicted interchip pin demand low, then elaborate it
    into a partitioned {!Cdfg.t} via {!Netlist}.

    The algorithm is levelized seeding followed by Kernighan–Lin-style
    improvement: operations move between chips while the move lowers the
    predicted pin cost (cut values weighted by bit width, counting a value
    once per destination chip, as the I/O operation model does) without
    violating the per-chip operation capacity. *)

type spec

val create : ?default_width:int -> unit -> spec
val input : spec -> width:int -> string -> unit
val op : spec -> name:string -> optype:string -> args:string list -> unit
val output : spec -> width:int -> string -> unit
val set_width : spec -> value:string -> int -> unit

val partition :
  spec ->
  n_partitions:int ->
  ?max_ops_per_chip:int ->
  ?passes:int ->
  unit ->
  (string * int) list
(** Assignment of every operation to a chip in [1 .. n_partitions].
    [max_ops_per_chip] defaults to a balanced
    [ceil (n_ops / n_partitions) + 1]; [passes] (default 4) bounds the
    improvement sweeps. *)

val predicted_pins : spec -> assign:(string -> int) -> rate:int -> (int * int) list
(** Per chip (plus the outside world, id 0): predicted data pins — each
    distinct (value, destination) crossing pays its width once per
    initiation interval's worth of port slots. *)

val elaborate : spec -> assign:(string -> int) -> Cdfg.t
(** Builds the partitioned CDFG: primary inputs are routed to every chip
    that consumes them, transfers inserted per cut edge. *)

type op_id = int

type node =
  | Func of { optype : string; partition : int }
  | Io of { value : string; src : int; dst : int; width : int }

type edge = { e_src : op_id; e_dst : op_id; degree : int }
type guard = { cond : int; arm : bool }

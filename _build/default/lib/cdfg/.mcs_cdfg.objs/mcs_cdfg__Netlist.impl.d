lib/cdfg/netlist.ml: Cdfg Hashtbl List Option Printf Types

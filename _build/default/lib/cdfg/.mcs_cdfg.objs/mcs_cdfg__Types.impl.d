lib/cdfg/types.ml:

lib/cdfg/module_lib.mli:

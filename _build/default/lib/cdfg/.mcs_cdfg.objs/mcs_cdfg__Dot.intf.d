lib/cdfg/dot.mli: Cdfg Format

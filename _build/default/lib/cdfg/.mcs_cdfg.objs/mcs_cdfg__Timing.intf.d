lib/cdfg/timing.mli: Cdfg Module_lib Types

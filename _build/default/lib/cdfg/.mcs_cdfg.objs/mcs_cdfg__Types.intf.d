lib/cdfg/types.mli:

lib/cdfg/cdfg.mli: Format Types

lib/cdfg/partitioner.ml: Array Hashtbl List Mcs_util Netlist Printf String

lib/cdfg/dot.ml: Cdfg Format List Mcs_util Printf Types

lib/cdfg/module_lib.ml: Hashtbl List

lib/cdfg/netlist.mli: Cdfg

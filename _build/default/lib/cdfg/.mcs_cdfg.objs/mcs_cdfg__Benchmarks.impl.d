lib/cdfg/benchmarks.ml: Cdfg Constraints Hashtbl List Mcs_util Module_lib Netlist Printf String

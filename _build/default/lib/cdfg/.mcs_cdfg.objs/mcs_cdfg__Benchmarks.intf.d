lib/cdfg/benchmarks.mli: Cdfg Constraints Module_lib

lib/cdfg/partitioner.mli: Cdfg

lib/cdfg/timing.ml: Array Cdfg List Module_lib Types

lib/cdfg/random_design.mli: Cdfg Module_lib

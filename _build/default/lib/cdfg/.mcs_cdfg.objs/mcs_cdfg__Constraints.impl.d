lib/cdfg/constraints.ml: Array Cdfg List Mcs_util Module_lib Printf

lib/cdfg/random_design.ml: Array List Mcs_util Module_lib Netlist Printf

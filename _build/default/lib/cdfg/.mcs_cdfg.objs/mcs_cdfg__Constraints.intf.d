lib/cdfg/constraints.mli: Cdfg Module_lib

lib/cdfg/cdfg.ml: Array Format Fun List Mcs_graph Mcs_util Printf String Types

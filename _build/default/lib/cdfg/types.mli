(** Shared vocabulary of the CDFG layer.

    Terminology follows the dissertation:

    - a {e functional operation} lives inside one partition (chip) and is
      executed by a hardware module of its operation type;
    - an {e I/O operation} node models one interchip value transfer: an
      output operation of the source partition paired with the input
      operation of the destination partition, both in the same control step
      (§2.2.1).  Partition 0 is the pseudo partition for the outside world,
      so primary inputs are I/O operations with [src = 0] and system outputs
      I/O operations with [dst = 0];
    - an edge of {e degree} [d > 0] is a data recursive edge: the value is
      produced [d] execution instances before it is consumed (§7.1). *)

type op_id = int

type node =
  | Func of { optype : string; partition : int }
  | Io of { value : string; src : int; dst : int; width : int }

type edge = { e_src : op_id; e_dst : op_id; degree : int }

(** Conditional-execution guard (Chapter 7.2): the node executes only when
    conditional [cond] resolves to [arm].  Two nodes are mutually exclusive
    when their guard lists disagree on some conditional. *)
type guard = { cond : int; arm : bool }

(** User-supplied per-chip constraints: I/O pins usable for data transfer and
    functional-unit counts per operation type (the "Resource Constraints"
    tables of Chapter 4). *)

type t

val create :
  n_partitions:int ->
  pins:(int * int) list ->
  fus:(int * string * int) list ->
  t
(** [pins] maps partition id (0 = outside world allowed) to its data-pin
    budget [T_i]; unlisted partitions get 0 pins.  [fus] lists
    [(partition, optype, count)] functional-unit allocations.
    @raise Invalid_argument on out-of-range partitions, duplicates or
    negative counts. *)

val n_partitions : t -> int
val pins : t -> int -> int
(** [T_i] of §3.1.1 — total pins available for data transfer. *)

val fu_count : t -> partition:int -> optype:string -> int
(** 0 when not listed. *)

val with_pins : t -> (int * int) list -> t
(** Functional update of some pin budgets. *)

val min_fus :
  Cdfg.t -> Module_lib.t -> rate:int -> (int * string * int) list
(** Minimum functional units per (partition, optype) for a pipelined design
    of initiation rate [rate], using the multi-cycle-aware lower bound of
    Eq. 7.5: [ceil (n_ops / floor (rate / cycles))].
    @raise Invalid_argument if some operation type needs more cycles than
    the initiation rate (no pipelined design exists, §7.4). *)

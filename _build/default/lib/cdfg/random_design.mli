(** Deterministic random partitioned designs, for property-based testing of
    the synthesis flows: every generated CDFG is acyclic at degree 0,
    locality-correct by construction (cross-partition operands go through
    I/O operation nodes), and has at least one primary input per partition
    and one system output. *)

val generate :
  seed:int ->
  n_partitions:int ->
  n_ops:int ->
  ?widths:int list ->
  ?recursive:int ->
  unit ->
  Cdfg.t
(** [widths] (default [[8; 16]]) is the pool of transfer bit widths;
    [recursive] (default 0) adds that many data recursive edges of degree 2
    targeting operations early in the graph (each adds slack-rich feedback,
    never a tighter loop than 2 initiation intervals). *)

val generate_simple :
  seed:int -> n_partitions:int -> ops_per_chip:int -> unit -> Cdfg.t
(** A random {e simple} partitioning (Definition 3.2): a chain of chips,
    each driving only its successor, each operation reading its own chip's
    values, its chip's primary input, or the previous chip's boundary
    value.  Feeds the Chapter 3 flow in fuzz tests. *)

val mlib : unit -> Module_lib.t
(** Stage 100 ns, 1-cycle "add", 2-cycle "mul", chaining-free — the adverse
    case for schedulers. *)

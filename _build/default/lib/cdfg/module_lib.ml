type t = {
  stage_ns : int;
  io_delay_ns : int;
  delays : (string * int) list;
}

let create ~stage_ns ~io_delay_ns modules =
  if stage_ns <= 0 then invalid_arg "Module_lib: stage time must be positive";
  if io_delay_ns <= 0 || io_delay_ns > stage_ns then
    invalid_arg "Module_lib: I/O delay must be within one stage";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (ty, d) ->
      if d <= 0 then invalid_arg "Module_lib: nonpositive delay";
      if Hashtbl.mem seen ty then invalid_arg "Module_lib: duplicate optype";
      Hashtbl.add seen ty ())
    modules;
  { stage_ns; io_delay_ns; delays = modules }

let stage_ns t = t.stage_ns
let io_delay_ns t = t.io_delay_ns
let delay_ns t ty = List.assoc ty t.delays

let cycles t ty =
  let d = delay_ns t ty in
  (d + t.stage_ns - 1) / t.stage_ns

let chainable t ty = cycles t ty = 1
let optypes t = List.map fst t.delays

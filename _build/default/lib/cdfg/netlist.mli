(** Netlist-style front end: describe a partitioned design as named
    operations over named values, and let elaboration insert the I/O
    operation nodes demanded by the partitioning.

    This mirrors the paper's input convention: the behavioural partitioner
    decides which chip each functional operation lives on, and "I/O operation
    nodes [are] inserted on the arcs across partition boundaries"
    (Fig. 3.5).  A value consumed in several partitions gets one I/O
    operation per requesting partition — the W_v sets of §3.1.1. *)

type t

val create : ?default_width:int -> n_partitions:int -> unit -> t
(** [default_width] (default 8) is used for cross-partition values with no
    explicit {!set_width}. *)

val input : t -> ?name:string -> width:int -> dst:int -> string -> unit
(** Primary input: an I/O operation bringing [value] from the outside world
    into partition [dst].  The same [value] may be declared for several
    destinations (distinct I/O operations transferring the same value). *)

val op : t -> name:string -> optype:string -> partition:int ->
  args:string list -> unit
(** A functional operation.  Each argument is either a primary input value
    (visible in this op's partition) or the name of another operation, whose
    produced value is named after it. *)

val output : t -> ?name:string -> width:int -> string -> unit
(** System output: transfers the value produced by operation [value] to the
    outside world. *)

val set_width : t -> value:string -> int -> unit
(** Bit width of an operation-produced value when it crosses chips. *)

val xfer_name : t -> value:string -> dst:int -> string -> unit
(** Pretty name for the I/O operation carrying [value] into partition
    [dst] (default ["X_<value>_<dst>"]). *)

val rec_dep : t -> src:string -> dst:string -> degree:int -> unit
(** Data recursive dependence: operation [dst] consumes the value [src]
    produced [degree] execution instances earlier.  Cross-partition
    recursive dependences get their own I/O operation, with the degree
    carried on the I/O-to-consumer arc. *)

val guard : t -> opname:string -> cond:int -> arm:bool -> unit
(** Marks an operation (and the I/O operations generated for its
    cross-partition operands/results) as conditional (§7.2). *)

val elaborate : t -> Cdfg.t
(** @raise Invalid_argument on unknown values, duplicate operation names, or
    an elaborated graph that is cyclic at degree 0. *)

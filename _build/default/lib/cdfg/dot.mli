(** Graphviz export of partitioned CDFGs: one cluster per chip, I/O
    operation nodes as the paper draws them (shaded boxes on the arcs that
    cross partition boundaries), data recursive edges dashed and labelled
    with their degree. *)

val pp : Format.formatter -> Cdfg.t -> unit

val to_file : Cdfg.t -> string -> unit
(** Writes [pp] output to the given path. *)

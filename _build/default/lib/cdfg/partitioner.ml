type din = { i_name : string; i_width : int }
type dop = { o_name : string; o_type : string; o_args : string list }
type dout = { u_value : string; u_width : int }

type decl = Dinput of din | Dop of dop | Doutput of dout

type spec = {
  default_width : int;
  mutable decls : decl list; (* reversed *)
  widths : (string, int) Hashtbl.t;
}

let create ?(default_width = 8) () =
  { default_width; decls = []; widths = Hashtbl.create 16 }

let input s ~width name =
  s.decls <- Dinput { i_name = name; i_width = width } :: s.decls

let op s ~name ~optype ~args =
  s.decls <- Dop { o_name = name; o_type = optype; o_args = args } :: s.decls

let output s ~width value =
  s.decls <- Doutput { u_value = value; u_width = width } :: s.decls

let set_width s ~value w = Hashtbl.replace s.widths value w

let ops_of s =
  List.filter_map
    (function Dop o -> Some o | Dinput _ | Doutput _ -> None)
    (List.rev s.decls)

let inputs_of s =
  List.filter_map
    (function Dinput i -> Some i | Dop _ | Doutput _ -> None)
    (List.rev s.decls)

let outputs_of s =
  List.filter_map
    (function Doutput o -> Some o | Dop _ | Dinput _ -> None)
    (List.rev s.decls)

let width_of s v =
  match Hashtbl.find_opt s.widths v with
  | Some w -> w
  | None -> (
      match List.find_opt (fun i -> String.equal i.i_name v) (inputs_of s) with
      | Some i -> i.i_width
      | None -> s.default_width)

(* Predicted pin demand of chip p under [assign]: every distinct
   (value, consumer chip) pair crossing its boundary costs the value's
   width divided among the initiation interval's slots; we use the
   rate-1 (worst-case) figure during improvement and expose the
   rate-aware one separately. *)
let cut_pairs s ~assign =
  let home = Hashtbl.create 64 in
  List.iter (fun (o : dop) -> Hashtbl.replace home o.o_name (assign o.o_name)) (ops_of s);
  List.iter (fun i -> Hashtbl.replace home i.i_name 0) (inputs_of s);
  let pairs = Hashtbl.create 64 in
  List.iter
    (fun o ->
      let dst = assign o.o_name in
      List.iter
        (fun a ->
          match Hashtbl.find_opt home a with
          | Some src when src <> dst -> Hashtbl.replace pairs (a, src, dst) ()
          | _ -> ())
        o.o_args)
    (ops_of s);
  List.iter
    (fun (u : dout) ->
      match Hashtbl.find_opt home u.u_value with
      | Some src when src <> 0 -> Hashtbl.replace pairs (u.u_value, src, 0) ()
      | _ -> ())
    (outputs_of s);
  Hashtbl.fold (fun k () acc -> k :: acc) pairs []

let predicted_pins s ~assign ~rate =
  let pairs = cut_pairs s ~assign in
  let chips =
    List.sort_uniq compare (0 :: List.map (fun o -> assign o.o_name) (ops_of s))
  in
  List.map
    (fun p ->
      let side sel =
        (* Distinct values on that side, each needing ceil(count/rate)
           ports of its width — approximated width-by-width. *)
        let mine = List.filter sel pairs in
        let by_width =
          Mcs_util.Listx.group_by (fun (v, _, _) -> width_of s v) mine
        in
        Mcs_util.Listx.sum
          (fun (w, l) -> w * ((List.length l + rate - 1) / rate))
          by_width
      in
      ( p,
        side (fun (_, src, _) -> src = p) + side (fun (_, _, dst) -> dst = p) ))
    chips

let total_cut_bits s ~assign =
  Mcs_util.Listx.sum (fun (v, _, _) -> width_of s v) (cut_pairs s ~assign)

let partition s ~n_partitions ?max_ops_per_chip ?(passes = 4) () =
  if n_partitions < 1 then invalid_arg "Partitioner.partition";
  let ops = Array.of_list (ops_of s) in
  let n = Array.length ops in
  if n = 0 then invalid_arg "Partitioner.partition: no operations";
  let cap =
    match max_ops_per_chip with
    | Some c -> c
    | None -> ((n + n_partitions - 1) / n_partitions) + 1
  in
  (* Seed: contiguous slices of the declaration order (roughly levelized
     for netlists written producer-first). *)
  let assign = Hashtbl.create 64 in
  Array.iteri
    (fun i o ->
      Hashtbl.replace assign o.o_name (1 + (i * n_partitions / n)))
    ops;
  let load = Array.make (n_partitions + 1) 0 in
  Array.iter (fun o -> let p = Hashtbl.find assign o.o_name in load.(p) <- load.(p) + 1) ops;
  let lookup name = Hashtbl.find assign name in
  (* Greedy KL-ish sweeps: best single-op move while it lowers the cut. *)
  let improved = ref true in
  let pass = ref 0 in
  while !improved && !pass < passes do
    improved := false;
    incr pass;
    Array.iter
      (fun o ->
        let from = lookup o.o_name in
        let base = total_cut_bits s ~assign:lookup in
        let best = ref None in
        List.iter
          (fun target ->
            if target <> from && load.(target) < cap then begin
              Hashtbl.replace assign o.o_name target;
              let cost = total_cut_bits s ~assign:lookup in
              (match !best with
              | Some (_, c) when c <= cost -> ()
              | _ -> if cost < base then best := Some (target, cost));
              Hashtbl.replace assign o.o_name from
            end)
          (Mcs_util.Listx.range 1 (n_partitions + 1));
        match !best with
        | Some (target, _) ->
            Hashtbl.replace assign o.o_name target;
            load.(from) <- load.(from) - 1;
            load.(target) <- load.(target) + 1;
            improved := true
        | None -> ())
      ops
  done;
  List.map (fun o -> (o.o_name, lookup o.o_name)) (ops_of s)

let elaborate s ~assign =
  let n_partitions =
    List.fold_left (fun acc o -> max acc (assign o.o_name)) 1 (ops_of s)
  in
  let n = Netlist.create ~default_width:s.default_width ~n_partitions () in
  (* Primary inputs go to every chip that reads them. *)
  let consumers = Hashtbl.create 16 in
  List.iter
    (fun o ->
      List.iter
        (fun a ->
          if List.exists (fun i -> String.equal i.i_name a) (inputs_of s) then
            Hashtbl.replace consumers (a, assign o.o_name) ())
        o.o_args)
    (ops_of s);
  List.iter
    (fun i ->
      Hashtbl.iter
        (fun (v, dst) () ->
          if String.equal v i.i_name then
            Netlist.input n ~name:(Printf.sprintf "%s_p%d" v dst)
              ~width:i.i_width ~dst v)
        consumers)
    (inputs_of s);
  Hashtbl.iter (fun v w -> Netlist.set_width n ~value:v w) s.widths;
  List.iter
    (fun o ->
      Netlist.op n ~name:o.o_name ~optype:o.o_type
        ~partition:(assign o.o_name) ~args:o.o_args)
    (ops_of s);
  List.iter
    (fun (u : dout) -> Netlist.output n ~width:u.u_width u.u_value)
    (outputs_of s);
  Netlist.elaborate n

(** Hardware module library: one module per operation type (module selection
    happens before scheduling, §2.2), plus the global clocking parameters.

    Delays are in nanoseconds.  An operation whose module delay exceeds the
    stage time becomes a multiple-cycle operation; the dissertation assumes
    those are not chained with anything else (§7.4), and that I/O operations
    occupy one (fast) slot that chains freely. *)

type t

val create :
  stage_ns:int ->
  io_delay_ns:int ->
  (string * int) list ->
  t
(** [create ~stage_ns ~io_delay_ns modules] with [modules] a list of
    [(optype, delay_ns)].
    @raise Invalid_argument on a duplicate optype, nonpositive delay, or an
    I/O delay larger than the stage time. *)

val stage_ns : t -> int
val io_delay_ns : t -> int

val delay_ns : t -> string -> int
(** @raise Not_found for an unknown operation type. *)

val cycles : t -> string -> int
(** [ceil (delay / stage)] — number of control steps the module occupies. *)

val chainable : t -> string -> bool
(** Single-cycle operations may chain (§7.4 forbids chaining through
    multi-cycle modules). *)

val optypes : t -> string list

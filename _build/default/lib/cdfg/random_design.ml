(* Small explicit LCG so generation is reproducible and independent of the
   global Random state. *)
type rng = { mutable s : int }

let next r =
  r.s <- ((r.s * 0x5DEECE66D) + 0xB) land ((1 lsl 48) - 1);
  (r.s lsr 17) land 0x3FFFFFFF

let pick r l = List.nth l (next r mod List.length l)
let range_pick r lo hi = lo + (next r mod (hi - lo + 1))

let mlib () =
  Module_lib.create ~stage_ns:100 ~io_delay_ns:95 [ ("add", 100); ("mul", 200) ]

let generate ~seed ~n_partitions ~n_ops ?(widths = [ 8; 16 ]) ?(recursive = 0)
    () =
  if n_partitions < 1 || n_ops < 1 then invalid_arg "Random_design.generate";
  let r = { s = (seed * 2654435761) lor 1 } in
  let n = Netlist.create ~default_width:(List.hd widths) ~n_partitions () in
  (* One primary input per partition, so every chip has local data. *)
  List.iter
    (fun p ->
      Netlist.input n
        ~width:(pick r widths)
        ~dst:p
        (Printf.sprintf "in%d" p))
    (Mcs_util.Listx.range 1 (n_partitions + 1));
  let op_names = ref [] in
  List.iter
    (fun i ->
      let p = range_pick r 1 n_partitions in
      let name = Printf.sprintf "op%d" i in
      let operand () =
        (* Either an earlier operation (possibly cross-chip) or this
           chip's own input. *)
        match !op_names with
        | [] -> Printf.sprintf "in%d" p
        | names ->
            if next r mod 3 = 0 then Printf.sprintf "in%d" p
            else pick r names
      in
      let args =
        if next r mod 4 = 0 then [ operand () ]
        else [ operand (); operand () ]
      in
      let optype = if next r mod 4 = 0 then "mul" else "add" in
      Netlist.op n ~name ~optype ~partition:p ~args;
      Netlist.set_width n ~value:name (pick r widths);
      op_names := name :: !op_names)
    (Mcs_util.Listx.range 0 n_ops);
  (* Recursive feedback with degree 2 into early operations. *)
  let names = Array.of_list (List.rev !op_names) in
  List.iter
    (fun _ ->
      if n_ops >= 2 then begin
        let dst = next r mod (n_ops / 2) in
        let src = range_pick r (max (dst + 1) (n_ops / 2)) (n_ops - 1) in
        Netlist.rec_dep n
          ~src:names.(src)
          ~dst:names.(dst)
          ~degree:2
      end)
    (Mcs_util.Listx.range 0 recursive);
  Netlist.output n ~width:(pick r widths) names.(n_ops - 1);
  Netlist.elaborate n

let generate_simple ~seed ~n_partitions ~ops_per_chip () =
  if n_partitions < 1 || ops_per_chip < 1 then
    invalid_arg "Random_design.generate_simple";
  let r = { s = (seed * 40503) lor 1 } in
  let n = Netlist.create ~default_width:8 ~n_partitions () in
  let boundary = ref None in
  List.iter
    (fun p ->
      Netlist.input n ~width:8 ~dst:p (Printf.sprintf "in%d" p);
      let local = ref [ Printf.sprintf "in%d" p ] in
      (match !boundary with Some v -> local := v :: !local | None -> ());
      List.iter
        (fun i ->
          let name = Printf.sprintf "p%dq%d" p i in
          let a1 = pick r !local and a2 = pick r !local in
          let optype = if next r mod 4 = 0 then "mul" else "add" in
          Netlist.op n ~name ~optype ~partition:p ~args:[ a1; a2 ];
          local := name :: !local)
        (Mcs_util.Listx.range 0 ops_per_chip);
      (* The chain value the next chip will read: the last local op. *)
      boundary := Some (Printf.sprintf "p%dq%d" p (ops_per_chip - 1)))
    (Mcs_util.Listx.range 1 (n_partitions + 1));
  (match !boundary with
  | Some v -> Netlist.output n ~width:8 v
  | None -> assert false);
  Netlist.elaborate n

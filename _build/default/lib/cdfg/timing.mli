(** Unconstrained timing analysis: ASAP / ALAP control steps with operation
    chaining and multiple-cycle operations.

    Chaining semantics (§2.2, §7.4): single-cycle operations may share a
    control step with their predecessor when the accumulated combinational
    delay still fits in the stage time; a multiple-cycle operation neither
    chains after a predecessor nor lets a successor chain after it —
    its result is available at the start of control step
    [start + cycles]. *)

type info = {
  cstep : int;      (** control step in which the operation starts *)
  finish_ns : int;  (** combinational offset, within the finishing cstep, at
                        which the result is valid (single-cycle chains) *)
}

val op_cycles : Cdfg.t -> Module_lib.t -> Types.op_id -> int
val op_delay_ns : Cdfg.t -> Module_lib.t -> Types.op_id -> int

val asap : Cdfg.t -> Module_lib.t -> info array
(** Earliest control steps; primary operations start at step 0. *)

val alap : Cdfg.t -> Module_lib.t -> pipe_length:int -> info array option
(** Latest control steps such that every operation finishes within control
    steps [0 .. pipe_length - 1]; [None] when the critical path does not
    fit. *)

val critical_path_csteps : Cdfg.t -> Module_lib.t -> int
(** Minimum pipe length: [1 + max (asap cstep + cycles - 1)]. *)

val min_initiation_rate : Cdfg.t -> Module_lib.t -> int
(** Lower bound on the initiation rate imposed by data recursive edges: for
    each cycle of the dependence graph (counting recursive edges), the total
    latency around the cycle divided by the total degree (§7.1); and by the
    largest multi-cycle operation (§7.4).  Computed exactly via a
    minimum-ratio search over rates. *)

val max_time_constraints :
  Cdfg.t -> Module_lib.t -> rate:int -> (Types.op_id * Types.op_id * int) list
(** For each data recursive edge [src -> dst] of degree [d], the constraint
    [cstep(src) - cstep(dst) <= d*rate - cycles(src)] (§7.1, with [t_b] the
    producer and [t_a] the consumer), returned as
    [(producer, consumer, bound)] meaning
    [cstep producer - cstep consumer <= bound]. *)

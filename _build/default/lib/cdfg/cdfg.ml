module Digraph = Mcs_graph.Digraph

type t = {
  n_partitions : int;
  nodes : Types.node array;
  names : string array;
  guards : Types.guard list array;
  edges : Types.edge list;
  graph : Digraph.t; (* degree-0 edges only *)
  topo : Types.op_id list;
}

module Builder = struct
  type cdfg = t

  type t = {
    n_partitions : int;
    mutable rnodes : Types.node list;
    mutable rnames : string list;
    mutable rguards : Types.guard list list;
    mutable count : int;
    mutable redges : Types.edge list;
  }

  let create ~n_partitions =
    if n_partitions < 1 then invalid_arg "Cdfg.Builder.create";
    {
      n_partitions;
      rnodes = [];
      rnames = [];
      rguards = [];
      count = 0;
      redges = [];
    }

  let check_partition b p ~allow_outside =
    let lo = if allow_outside then 0 else 1 in
    if p < lo || p > b.n_partitions then
      invalid_arg "Cdfg: partition id out of range"

  let add b node name guards =
    b.rnodes <- node :: b.rnodes;
    b.rnames <- name :: b.rnames;
    b.rguards <- guards :: b.rguards;
    b.count <- b.count + 1;
    b.count - 1

  let func b ?name ?(guards = []) ~partition optype =
    check_partition b partition ~allow_outside:false;
    let name =
      match name with Some n -> n | None -> Printf.sprintf "%s%d" optype b.count
    in
    add b (Types.Func { optype; partition }) name guards

  let io b ?name ?(guards = []) ~src ~dst ~width value =
    check_partition b src ~allow_outside:true;
    check_partition b dst ~allow_outside:true;
    if src = dst then invalid_arg "Cdfg: I/O operation with src = dst";
    if width <= 0 then invalid_arg "Cdfg: I/O width must be positive";
    let name = match name with Some n -> n | None -> value in
    add b (Types.Io { value; src; dst; width }) name guards

  let dep b ?(degree = 0) src dst =
    if degree < 0 then invalid_arg "Cdfg: negative edge degree";
    if src < 0 || src >= b.count || dst < 0 || dst >= b.count then
      invalid_arg "Cdfg: edge endpoint out of range";
    b.redges <- { Types.e_src = src; e_dst = dst; degree } :: b.redges

  let finish b : cdfg =
    let nodes = Array.of_list (List.rev b.rnodes) in
    let names = Array.of_list (List.rev b.rnames) in
    let guards = Array.of_list (List.rev b.rguards) in
    let edges = List.rev b.redges in
    let graph = Digraph.create b.count in
    List.iter
      (fun { Types.e_src; e_dst; degree } ->
        if degree = 0 then Digraph.add_edge graph ~src:e_src ~dst:e_dst)
      edges;
    match Digraph.topo_sort graph with
    | None -> invalid_arg "Cdfg: degree-0 dependence graph is cyclic"
    | Some topo ->
        { n_partitions = b.n_partitions; nodes; names; guards; edges; graph; topo }
end

let n_partitions t = t.n_partitions
let n_ops t = Array.length t.nodes

let node t i =
  if i < 0 || i >= n_ops t then invalid_arg "Cdfg.node";
  t.nodes.(i)

let name t i =
  if i < 0 || i >= n_ops t then invalid_arg "Cdfg.name";
  t.names.(i)

let guards t i =
  if i < 0 || i >= n_ops t then invalid_arg "Cdfg.guards";
  t.guards.(i)

let is_io t i = match node t i with Types.Io _ -> true | Types.Func _ -> false

let io_err () = invalid_arg "Cdfg: functional node where I/O expected"
let func_err () = invalid_arg "Cdfg: I/O node where functional expected"

let io_value t i =
  match node t i with Types.Io { value; _ } -> value | Types.Func _ -> io_err ()

let io_src t i =
  match node t i with Types.Io { src; _ } -> src | Types.Func _ -> io_err ()

let io_dst t i =
  match node t i with Types.Io { dst; _ } -> dst | Types.Func _ -> io_err ()

let io_width t i =
  match node t i with Types.Io { width; _ } -> width | Types.Func _ -> io_err ()

let func_partition t i =
  match node t i with
  | Types.Func { partition; _ } -> partition
  | Types.Io _ -> func_err ()

let func_optype t i =
  match node t i with
  | Types.Func { optype; _ } -> optype
  | Types.Io _ -> func_err ()
let ops t = List.init (n_ops t) Fun.id
let io_ops t = List.filter (is_io t) (ops t)
let func_ops t = List.filter (fun i -> not (is_io t i)) (ops t)

let func_ops_of_partition t p =
  List.filter (fun i -> func_partition t i = p) (func_ops t)

let io_ops_of_value t v =
  List.filter (fun i -> String.equal (io_value t i) v) (io_ops t)

let io_inputs_of_partition t p =
  List.filter (fun i -> io_dst t i = p) (io_ops t)

let io_outputs_of_partition t p =
  List.filter (fun i -> io_src t i = p) (io_ops t)

let values_output_by t p =
  Mcs_util.Listx.uniq String.equal
    (List.map (io_value t) (io_outputs_of_partition t p))

let preds t i = Digraph.preds t.graph i
let succs t i = Digraph.succs t.graph i
let edges t = t.edges
let recursive_edges t = List.filter (fun e -> e.Types.degree > 0) t.edges
let topo_order t = t.topo

let mutually_exclusive t a b =
  let ga = guards t a and gb = guards t b in
  List.exists
    (fun (g : Types.guard) ->
      List.exists
        (fun (h : Types.guard) -> g.cond = h.cond && g.arm <> h.arm)
        gb)
    ga

let partition_neighbours t ~of_src p =
  let pick i =
    let s = io_src t i and d = io_dst t i in
    if of_src then (if s = p && d <> 0 then Some d else None)
    else if d = p && s <> 0 then Some s
    else None
  in
  List.sort_uniq compare (List.filter_map pick (io_ops t))

let drives t p = partition_neighbours t ~of_src:true p
let driven_by t p = partition_neighbours t ~of_src:false p

let check_locality t =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let rec go = function
    | [] -> Ok ()
    | { Types.e_src; e_dst; _ } :: rest -> (
        match (node t e_src, node t e_dst) with
        | Types.Func { partition = p1; _ }, Types.Func { partition = p2; _ } ->
            if p1 = p2 then go rest
            else
              err "cross-chip dependence %s -> %s without an I/O operation"
                (name t e_src) (name t e_dst)
        | Types.Func { partition; _ }, Types.Io { src; _ } ->
            if partition = src then go rest
            else
              err "%s feeds transfer %s that leaves a different chip"
                (name t e_src) (name t e_dst)
        | Types.Io { dst; _ }, Types.Func { partition; _ } ->
            if dst = partition then go rest
            else
              err "transfer %s delivers to chip %d but %s runs on chip %d"
                (name t e_src) dst (name t e_dst) partition
        | Types.Io _, Types.Io _ ->
            err "transfer %s feeds transfer %s directly (values are not \
                 forwarded through other chips)"
              (name t e_src) (name t e_dst))
  in
  go t.edges

let pp_stats ppf t =
  let funcs = func_ops t and ios = io_ops t in
  let by_type = Mcs_util.Listx.group_by (func_optype t) funcs in
  Format.fprintf ppf "@[<v>CDFG: %d partitions, %d functional ops (%s), %d I/O ops@]"
    t.n_partitions (List.length funcs)
    (String.concat ", "
       (List.map
          (fun (ty, l) -> Printf.sprintf "%d %s" (List.length l) ty)
          by_type))
    (List.length ios)

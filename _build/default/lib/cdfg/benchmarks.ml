type design = {
  tag : string;
  cdfg : Cdfg.t;
  mlib : Module_lib.t;
  pins_unidir : (int * int) list;
  pins_bidir : (int * int) list;
  rates : int list;
  fu_extra : (int * string * int) list;
}

let ar_mlib () =
  Module_lib.create ~stage_ns:250 ~io_delay_ns:10 [ ("add", 30); ("mul", 210) ]

(* The 28-operation AR lattice filter as a partition-independent network:
   four coupled sections, 16 multiplications and 12 additions, 26 primary
   inputs (I1..I9, Ia..Iq), two system outputs (O1, O2). *)
let ar_network ~assign ~widths ~xnames ~default_width ~n_partitions =
  let n = Netlist.create ~default_width ~n_partitions () in
  let part name = assign name in
  let add name args = Netlist.op n ~name ~optype:"add" ~partition:(part name) ~args in
  let mul name args = Netlist.op n ~name ~optype:"mul" ~partition:(part name) ~args in
  let primary_names =
    [ "I1"; "I2"; "I3"; "I4"; "I5"; "I6"; "I7"; "I8"; "I9";
      "Ia"; "Ib"; "Ic"; "Id"; "Ie"; "If"; "Ig"; "Ih"; "Ii"; "Ij"; "Ik";
      "Il"; "Im"; "In"; "Io"; "Ip"; "Iq" ]
  in
  (* Which partition consumes each primary input is derived from the ops
     below; destinations are declared explicitly. *)
  let input_dst = Hashtbl.create 32 in
  let declare_inputs consumers =
    List.iter
      (fun (value, dst) ->
        if not (Hashtbl.mem input_dst (value, dst)) then begin
          Hashtbl.add input_dst (value, dst) ();
          let width =
            match List.assoc_opt value widths with
            | Some w -> w
            | None -> default_width
          in
          Netlist.input n ~name:value ~width ~dst value
        end)
      consumers
  in
  (* Section A. *)
  mul "m11" [ "I1"; "I2" ];
  mul "m12" [ "I3"; "I4" ];
  mul "m13" [ "I5"; "I6" ];
  mul "m14" [ "a32"; "a42" ];
  add "a11" [ "m11"; "m12" ];
  add "a12" [ "m13"; "m14" ];
  add "a13" [ "a11"; "m33" ];
  add "a14" [ "a12"; "m43" ];
  (* Section B. *)
  mul "m21" [ "I7"; "I8" ];
  mul "m22" [ "I9"; "Ia" ];
  mul "m23" [ "Ib"; "Ic" ];
  mul "m24" [ "Id"; "Ie" ];
  add "a21" [ "m21"; "m22" ];
  add "a22" [ "m23"; "m24" ];
  add "a23" [ "a21"; "If" ];
  add "a24" [ "a22"; "Ig" ];
  (* Section C: driven by section B via a23. *)
  mul "m31" [ "a23"; "Ih" ];
  mul "m32" [ "Ii"; "Ij" ];
  add "a31" [ "m31"; "m32" ];
  mul "m33" [ "a31"; "Ik" ];
  mul "m34" [ "m33"; "Il" ];
  add "a32" [ "m34"; "a31" ];
  (* Section D: driven by section B via a24. *)
  mul "m41" [ "a24"; "Im" ];
  mul "m42" [ "In"; "Io" ];
  add "a41" [ "m41"; "m42" ];
  mul "m43" [ "a41"; "Ip" ];
  mul "m44" [ "m43"; "Iq" ];
  add "a42" [ "m44"; "a41" ];
  let consumers =
    [ ("I1", "m11"); ("I2", "m11"); ("I3", "m12"); ("I4", "m12");
      ("I5", "m13"); ("I6", "m13"); ("I7", "m21"); ("I8", "m21");
      ("I9", "m22"); ("Ia", "m22"); ("Ib", "m23"); ("Ic", "m23");
      ("Id", "m24"); ("Ie", "m24"); ("If", "a23"); ("Ig", "a24");
      ("Ih", "m31"); ("Ii", "m32"); ("Ij", "m32"); ("Ik", "m33");
      ("Il", "m34"); ("Im", "m41"); ("In", "m42"); ("Io", "m42");
      ("Ip", "m43"); ("Iq", "m44") ]
  in
  declare_inputs
    (List.map (fun (value, consumer) -> (value, part consumer)) consumers);
  assert (List.for_all (fun v -> List.mem_assoc v consumers) primary_names);
  List.iter (fun (value, w) -> Netlist.set_width n ~value w) widths;
  List.iter (fun ((value, dst), x) -> Netlist.xfer_name n ~value ~dst x) xnames;
  let owidth o = match List.assoc_opt o widths with Some w -> w | None -> default_width in
  Netlist.output n ~name:"O1" ~width:(owidth "a13") "a13";
  Netlist.output n ~name:"O2" ~width:(owidth "a14") "a14";
  Netlist.elaborate n

(* Simple partitioning (Fig. 3.5): sections A..D on chips 1..4.  Simple by
   Definition 3.2 (outside world exempt): P2 drives P3 and P4 and is their
   only driver; P3 and P4 drive only P1. *)
let ar_simple () =
  let assign name =
    match name.[1] with
    | '1' -> 1
    | '2' -> 2
    | '3' -> 3
    | '4' -> 4
    | _ -> invalid_arg "ar_simple: bad op name"
  in
  let xnames =
    [ (("a23", 3), "X1"); (("a24", 4), "X2");
      (("a32", 1), "X3"); (("m33", 1), "X4");
      (("a42", 1), "X5"); (("m43", 1), "X6") ]
  in
  let cdfg =
    ar_network ~assign ~widths:[] ~xnames ~default_width:8 ~n_partitions:4
  in
  {
    tag = "ar-simple";
    cdfg;
    mlib = ar_mlib ();
    pins_unidir = [ (0, 112); (1, 48); (2, 48); (3, 32); (4, 32) ];
    pins_bidir = [ (0, 112); (1, 48); (2, 48); (3, 32); (4, 32) ];
    rates = [ 2 ];
    fu_extra = [];
  }

(* General partitioning (Fig. 4.7): three chips.  P1 holds sections B and C
   plus m13, P2 holds the rest of section A, P3 holds section D.  P3 drives
   P2, P1 drives both P2 and P3 while P2 is also driven by P3 — which
   violates conditions 3/4 of Definition 3.2, so this partitioning is
   general.  Bit widths: unnumbered I/O operations are 8 bits (the paper's
   convention); the numbered ones here are X1/X5 (16), X2/X3 (12), and the
   wide inputs Ia, Ib (12), Ic, Id (16). *)
let ar_general () =
  let section_b_c =
    [ "m21"; "m22"; "m23"; "m24"; "a21"; "a22"; "a23"; "a24";
      "m31"; "m32"; "a31"; "m33"; "m34"; "a32"; "m13" ]
  in
  let section_d = [ "m41"; "m42"; "a41"; "m43"; "m44"; "a42" ] in
  let assign name =
    if List.mem name section_b_c then 1
    else if List.mem name section_d then 3
    else 2
  in
  let widths =
    [ ("a24", 16); ("a32", 12); ("m33", 12); ("m13", 8);
      ("a42", 16); ("m43", 8);
      ("Ia", 12); ("Ib", 12); ("Ic", 16); ("Id", 16);
      ("a13", 16); ("a14", 12) ]
  in
  let xnames =
    [ (("a24", 3), "X1"); (("a32", 2), "X2"); (("m33", 2), "X3");
      (("m13", 2), "X4"); (("a42", 2), "X5"); (("m43", 2), "X6") ]
  in
  let cdfg =
    ar_network ~assign ~widths ~xnames ~default_width:8 ~n_partitions:3
  in
  {
    tag = "ar-general";
    cdfg;
    mlib = ar_mlib ();
    pins_unidir = [ (0, 120); (1, 135); (2, 90); (3, 90) ];
    pins_bidir = [ (0, 116); (1, 100); (2, 84); (3, 80) ];
    rates = [ 3; 4; 5 ];
    fu_extra = [];
  }

let elliptic_mlib () =
  (* Stage time 100 ns with 1-cycle adds and I/O, 2-cycle multiplications
     (the paper states cycle counts directly; delays are chosen to induce
     them and to disable chaining, additions filling their stage). *)
  Module_lib.create ~stage_ns:100 ~io_delay_ns:95 [ ("add", 100); ("mul", 200) ]

(* Elliptic wave filter class design (Fig. 4.20): 26 additions, 8 two-cycle
   multiplications on 5 chips; critical recursive loop of 20 cycles closed
   by the degree-4 transfer X33; all values 16 bits. *)
let elliptic () =
  let n = Netlist.create ~default_width:16 ~n_partitions:5 () in
  let add name partition args =
    Netlist.op n ~name ~optype:"add" ~partition ~args
  in
  let mul name partition args =
    Netlist.op n ~name ~optype:"mul" ~partition ~args
  in
  (* One input value consumed by two chips: I/O operations Ia (to P1) and
     Ib (to P2) transfer the same value, as in Table 4.16. *)
  Netlist.input n ~name:"Ia" ~width:16 ~dst:1 "in";
  Netlist.input n ~name:"Ib" ~width:16 ~dst:2 "in";
  (* P1: 6 additions, 2 multiplications; hosts the loop entry +2. *)
  mul "p1m1" 1 [ "in"; "in" ];
  add "p1a1" 1 [ "in"; "p1m1" ];
  add "t2" 1 [ "p1a1" ] (* second operand: X33 of 4 instances ago (rec_dep) *);
  add "p1a3" 1 [ "in" ] (* second operand: p1a6 of 4 instances ago *);
  mul "p1m2" 1 [ "p1a3"; "p1m1" ];
  add "p1a4" 1 [ "p1m2"; "p1a1" ];
  add "p1a5" 1 [ "p1m1"; "p1a3" ];
  add "p1a6" 1 [ "p1a5"; "p1a4" ];
  (* P2: 5 additions, 2 multiplications; loop op +5. *)
  add "p2b1" 2 [ "in"; "in" ];
  mul "p2mb" 2 [ "p2b1"; "p1a3" ];
  add "p2b2" 2 [ "p2mb"; "p1a3" ];
  mul "p2mc" 2 [ "p2b1"; "in" ];
  add "p2b3" 2 [ "p2mc"; "p2b1" ];
  add "t5" 2 [ "t2"; "p2b1" ] (* loop *);
  add "p2b4" 2 [ "p2b3"; "p1a6" ];
  (* P3: 4 additions, 1 multiplication; loop ops *e and +8. *)
  add "p3c1" 3 [ "p2b3"; "p1a4" ];
  add "p3c2" 3 [ "p3c1" ] (* second operand: p3c3 of 4 instances ago *);
  mul "mE" 3 [ "t5"; "p3c1" ] (* loop *);
  add "t8" 3 [ "mE"; "p3c2" ] (* loop *);
  add "p3c3" 3 [ "p3c2"; "p3c1" ];
  (* P4: 6 additions, 2 multiplications; loop ops +10, *j, +16, +17. *)
  add "p4d1" 4 [ "p2b4"; "p3c3" ];
  add "p4d2" 4 [ "p4d1"; "p2b4" ];
  mul "p4md" 4 [ "p4d1"; "p4d2" ];
  add "p4d3" 4 [ "p4md"; "p4d2" ];
  add "t10" 4 [ "t8"; "p4d1" ] (* loop *);
  mul "mJ" 4 [ "t10"; "p4d2" ] (* loop *);
  add "t16" 4 [ "t14"; "p4d3" ] (* loop *);
  add "t17" 4 [ "t16"; "p4d1" ] (* loop *);
  (* P5: 5 additions, 1 multiplication; loop ops +13, +14, +28. *)
  add "p5e1" 5 [ "p2b2" ] (* second operand: p5e2 of 4 instances ago *);
  mul "p5me" 5 [ "p5e1"; "p4md" ];
  add "t13" 5 [ "mJ"; "p5e1" ] (* loop *);
  add "t14" 5 [ "t13"; "p5e1" ] (* loop *);
  add "t28" 5 [ "t17"; "p5e1" ] (* loop *);
  add "p5e2" 5 [ "p5me"; "t28" ];
  Netlist.output n ~name:"Op" ~width:16 "p5e2";
  (* Interchip transfer names follow the paper's tables. *)
  List.iter
    (fun ((value, dst), x) -> Netlist.xfer_name n ~value ~dst x)
    [ (("p1a6", 2), "Xa"); (("p1a3", 2), "Xc"); (("p1a4", 3), "Xb");
      (("t2", 2), "Xf"); (("t5", 3), "Xe"); (("p2b3", 3), "Xd");
      (("p2b4", 4), "Xg"); (("t8", 4), "Xh"); (("p3c3", 4), "Xi");
      (("mJ", 5), "Xj"); (("p2b2", 5), "X13"); (("t14", 4), "X26");
      (("t17", 5), "X38"); (("p4md", 5), "X39"); (("t28", 1), "X33") ]
  ;
  (* Data recursive edges, all of degree 4 (§4.4.2). *)
  Netlist.rec_dep n ~src:"t28" ~dst:"t2" ~degree:4;
  Netlist.rec_dep n ~src:"p1a6" ~dst:"p1a3" ~degree:4;
  Netlist.rec_dep n ~src:"p3c3" ~dst:"p3c2" ~degree:4;
  Netlist.rec_dep n ~src:"p5e2" ~dst:"p5e1" ~degree:4;
  let cdfg = Netlist.elaborate n in
  {
    tag = "elliptic";
    cdfg;
    mlib = elliptic_mlib ();
    pins_unidir = [ (0, 32); (1, 64); (2, 80); (3, 64); (4, 64); (5, 80) ];
    pins_bidir = [ (0, 32); (1, 48); (2, 64); (3, 48); (4, 48); (5, 64) ];
    rates = [ 5; 6; 7 ];
    fu_extra = [ (1, "add", 1); (4, "add", 1) ];
  }

(* Conditional demo (§7.2): a conditional block too large for one chip, so
   both arms are spread over chips 2 and 3 and their transfers are
   conditional I/O operations that may share pins. *)
let cond_demo () =
  let n = Netlist.create ~default_width:8 ~n_partitions:3 () in
  Netlist.input n ~name:"Iu" ~width:8 ~dst:1 "u";
  Netlist.input n ~name:"Iv" ~width:8 ~dst:1 "v";
  Netlist.op n ~name:"base" ~optype:"add" ~partition:1 ~args:[ "u"; "v" ];
  (* Then-arm (cond 0 true), spread over chips 2 and 3. *)
  Netlist.op n ~name:"ta" ~optype:"mul" ~partition:2 ~args:[ "base"; "base" ];
  Netlist.op n ~name:"tb" ~optype:"add" ~partition:3 ~args:[ "ta"; "base" ];
  (* Else-arm (cond 0 false). *)
  Netlist.op n ~name:"ea" ~optype:"add" ~partition:2 ~args:[ "base"; "base" ];
  Netlist.op n ~name:"eb" ~optype:"mul" ~partition:3 ~args:[ "ea"; "base" ];
  (* Merge consumes whichever arm ran. *)
  Netlist.op n ~name:"join" ~optype:"add" ~partition:1 ~args:[ "tb"; "eb" ];
  List.iter
    (fun (opname, arm) -> Netlist.guard n ~opname ~cond:0 ~arm)
    [ ("ta", true); ("tb", true); ("ea", false); ("eb", false) ];
  Netlist.output n ~name:"Oj" ~width:8 "join";
  let cdfg = Netlist.elaborate n in
  {
    tag = "cond-demo";
    cdfg;
    mlib = ar_mlib ();
    pins_unidir = [ (0, 32); (1, 32); (2, 32); (3, 32) ];
    pins_bidir = [ (0, 24); (1, 24); (2, 24); (3, 24) ];
    rates = [ 2; 3 ];
    fu_extra = [];
  }

(* Sub-bus sharing demo (Chapter 6): chip 1 receives one 32-bit and four
   8-bit values every 3 cycles and forwards one 8-bit result.  Without
   intra-cycle sharing its five input values need a 32-bit port plus an
   8-bit port (48 pins with the result port); splitting the 32-bit bus
   carries the narrow inputs two-at-a-time, fitting a 40-pin budget. *)
let subbus_demo () =
  let n = Netlist.create ~default_width:8 ~n_partitions:2 () in
  Netlist.input n ~name:"Iw" ~width:32 ~dst:1 "iw";
  List.iter
    (fun v -> Netlist.input n ~name:("I" ^ v) ~width:8 ~dst:1 ("i" ^ v))
    [ "a"; "b"; "c"; "d" ];
  Netlist.op n ~name:"big" ~optype:"add" ~partition:1 ~args:[ "iw"; "iw" ];
  Netlist.op n ~name:"s1" ~optype:"add" ~partition:1 ~args:[ "ia"; "ib" ];
  Netlist.op n ~name:"s2" ~optype:"add" ~partition:1 ~args:[ "ic"; "id" ];
  Netlist.op n ~name:"s3" ~optype:"add" ~partition:1 ~args:[ "s1"; "s2" ];
  Netlist.op n ~name:"fwd" ~optype:"add" ~partition:1 ~args:[ "big"; "s3" ];
  Netlist.op n ~name:"echo" ~optype:"add" ~partition:2 ~args:[ "fwd"; "fwd" ];
  Netlist.output n ~name:"Oo" ~width:8 "echo";
  Netlist.xfer_name n ~value:"fwd" ~dst:2 "Xf";
  {
    tag = "subbus-demo";
    cdfg = Netlist.elaborate n;
    mlib = ar_mlib ();
    pins_unidir = [ (0, 56); (1, 56); (2, 16) ];
    pins_bidir = [ (0, 44); (1, 40); (2, 16) ];
    rates = [ 3 ];
    fu_extra = [];
  }

(* Parametric lattice: section k multiplies fresh inputs and folds in the
   previous section's two boundary values. *)
let ar_scaled ~sections ~chips =
  if sections < 1 || chips < 1 then invalid_arg "Benchmarks.ar_scaled";
  let n = Netlist.create ~default_width:8 ~n_partitions:chips () in
  let chip_of k = 1 + (k mod chips) in
  let prev = ref None in
  List.iter
    (fun k ->
      let p = chip_of k in
      let inp i =
        let v = Printf.sprintf "i%d_%d" k i in
        Netlist.input n ~width:8 ~dst:p v;
        v
      in
      let i1 = inp 1 and i2 = inp 2 and i3 = inp 3 and i4 = inp 4 in
      let op name optype args = Netlist.op n ~name ~optype ~partition:p ~args in
      let nm s = Printf.sprintf "%s_%d" s k in
      op (nm "m1") "mul" [ i1; i2 ];
      op (nm "m2") "mul" [ i3; i4 ];
      (match !prev with
      | None ->
          op (nm "a1") "add" [ nm "m1"; nm "m2" ];
          op (nm "a2") "add" [ nm "a1"; nm "m1" ]
      | Some (b1, b2) ->
          op (nm "a1") "add" [ nm "m1"; b1 ];
          op (nm "a2") "add" [ nm "m2"; b2 ]);
      op (nm "m3") "mul" [ nm "a1"; i1 ];
      op (nm "m4") "mul" [ nm "a2"; i3 ];
      op (nm "a3") "add" [ nm "m3"; nm "m4" ];
      prev := Some (nm "a3", nm "a1"))
    (Mcs_util.Listx.range 0 sections);
  (match !prev with
  | Some (b1, _) -> Netlist.output n ~width:8 b1
  | None -> assert false);
  let cdfg = Netlist.elaborate n in
  (* Generous budgets derived from the design itself keep the experiment
     about runtime, not feasibility hunting. *)
  let rate = 4 in
  let pins =
    List.map
      (fun p ->
        let ios = Cdfg.io_inputs_of_partition cdfg p in
        let outs = Cdfg.io_outputs_of_partition cdfg p in
        (p, 8 * ((List.length ios + rate - 1) / rate
                 + List.length outs + 2)))
      (Mcs_util.Listx.range 0 (chips + 1))
  in
  {
    tag = Printf.sprintf "ar-scaled-%dx%d" sections chips;
    cdfg;
    mlib = ar_mlib ();
    pins_unidir = pins;
    pins_bidir = pins;
    rates = [ rate ];
    fu_extra = [];
  }

let constraints_with design ~rate pins =
  let base = Constraints.min_fus design.cdfg design.mlib ~rate in
  let fus =
    List.map
      (fun (p, ty, n) ->
        let extra =
          Mcs_util.Listx.sum
            (fun (p', ty', e) -> if p = p' && String.equal ty ty' then e else 0)
            design.fu_extra
        in
        (p, ty, n + extra))
      base
  in
  Constraints.create
    ~n_partitions:(Cdfg.n_partitions design.cdfg)
    ~pins ~fus

let constraints_for design ~rate = constraints_with design ~rate design.pins_unidir
let constraints_for_bidir design ~rate = constraints_with design ~rate design.pins_bidir

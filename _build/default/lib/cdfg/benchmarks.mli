(** The dissertation's test designs, reconstructed per DESIGN.md §
    "Interpretations and substitutions".

    - {!ar_simple}: the AR lattice filter (28 operations: 16 multiplications,
      12 additions) under the {e simple} 4-chip partitioning of Fig. 3.5 —
      partitions 1 and 2 with 10 input / 2 output operations, partitions 3
      and 4 with 6 / 2; stage time 250 ns, I/O 10 ns, adders 30 ns,
      multipliers 210 ns, chaining allowed, all values 8 bits.
    - {!ar_general}: the same filter under the general 3-chip partitioning of
      Fig. 4.7, with I/O operations I1–I9, Ia–Iq, X1–X6, O1, O2 and a mix of
      8/12/16-bit values.
    - {!elliptic}: the fifth-order elliptic wave filter class design of
      Fig. 4.20 — 34 operations (26 additions, 8 two-cycle multiplications)
      over 5 chips, all values 16 bits, data recursive edges of degree 4,
      critical recursive loop of 20 cycles (minimum initiation rate 5).
    - {!cond_demo}: a small two-sided conditional spread over 3 chips, for
      the conditional I/O sharing study of §7.2. *)

type design = {
  tag : string;
  cdfg : Cdfg.t;
  mlib : Module_lib.t;
  pins_unidir : (int * int) list;  (** per-partition data-pin budgets *)
  pins_bidir : (int * int) list;
  rates : int list;  (** initiation rates the paper evaluates *)
  fu_extra : (int * string * int) list;
      (** functional units beyond the minimum, as in the paper's
          resource-constraint tables (e.g. Table 4.14 gives P1 and P4 of the
          elliptic filter a second adder) *)
}

val ar_simple : unit -> design
val ar_general : unit -> design
val elliptic : unit -> design
val cond_demo : unit -> design

val subbus_demo : unit -> design
(** Two-chip design whose traffic (one 32-bit plus four 8-bit values per
    iteration at rate 3) only fits the 40-pin bidirectional budget when a
    bus is split and two narrow values share a cycle (Chapter 6). *)

val ar_scaled : sections:int -> chips:int -> design
(** A lattice filter scaled up: [sections] cascaded 7-op sections (the AR
    building block) distributed round-robin over [chips] chips, 8-bit
    values.  Used by the scaling experiment: the §4.1.2 heuristic handles
    sizes where the §4.1.1 ILP "is too large to obtain a solution within a
    reasonable time" (the paper's critique of pure-ILP approaches, §1.3). *)

val constraints_for : design -> rate:int -> Constraints.t
(** Pin budgets from [pins_unidir] plus the minimal functional-unit
    allocation for the given initiation rate (the paper's "minimum number of
    functional units are used" assumption). *)

val constraints_for_bidir : design -> rate:int -> Constraints.t

(** Control data flow graphs, partitioned over chips.

    A CDFG here is flat (no internal loops; the implicit outermost loop is
    expressed by data recursive edges) and already partitioned: every
    functional node carries the id of the chip it will be implemented on
    (1-based; partition 0 is the outside world), and every value crossing a
    partition boundary is materialized as an I/O operation node sitting on
    the producer-to-consumer arc, as in §2.2.1. *)

type t

(** {1 Construction} *)

module Builder : sig
  type cdfg := t
  type t

  val create : n_partitions:int -> t
  (** Real partitions are [1 .. n_partitions]; 0 is the outside world. *)

  val func :
    t -> ?name:string -> ?guards:Types.guard list -> partition:int ->
    string -> Types.op_id
  (** [func b ~partition optype] adds a functional node. *)

  val io :
    t -> ?name:string -> ?guards:Types.guard list ->
    src:int -> dst:int -> width:int -> string -> Types.op_id
  (** [io b ~src ~dst ~width value] adds an I/O operation node transferring
      [value] ([width] bits wide) from partition [src] to partition
      [dst]. *)

  val dep : t -> ?degree:int -> Types.op_id -> Types.op_id -> unit
  (** [dep b a c] records that [c] consumes the result of [a];
      [degree > 0] makes it a data recursive edge. *)

  val finish : t -> cdfg
  (** Freezes the graph.
      @raise Invalid_argument if the degree-0 subgraph is cyclic, an I/O node
      has same [src] and [dst], or a partition id is out of range. *)
end

(** {1 Queries} *)

val n_partitions : t -> int
(** Number of real partitions (the outside world 0 not included). *)

val n_ops : t -> int
val node : t -> Types.op_id -> Types.node
val name : t -> Types.op_id -> string
val guards : t -> Types.op_id -> Types.guard list
val is_io : t -> Types.op_id -> bool

val io_value : t -> Types.op_id -> string
val io_src : t -> Types.op_id -> int
val io_dst : t -> Types.op_id -> int
val io_width : t -> Types.op_id -> int
(** @raise Invalid_argument when applied to a functional node. *)

val func_partition : t -> Types.op_id -> int
val func_optype : t -> Types.op_id -> string
(** @raise Invalid_argument when applied to an I/O node. *)

val ops : t -> Types.op_id list
val io_ops : t -> Types.op_id list
val func_ops : t -> Types.op_id list
val func_ops_of_partition : t -> int -> Types.op_id list

val io_ops_of_value : t -> string -> Types.op_id list
(** The set [W_v] of §3.1.1: all I/O operations transferring value [v]. *)

val io_inputs_of_partition : t -> int -> Types.op_id list
(** [IS_i]: I/O operations whose destination is partition [i]. *)

val io_outputs_of_partition : t -> int -> Types.op_id list
(** I/O operations whose source is partition [i]. *)

val values_output_by : t -> int -> string list
(** [OS_j]: distinct values output by partition [j], in id order. *)

val preds : t -> Types.op_id -> Types.op_id list
(** Degree-0 predecessors (same-instance dependences). *)

val succs : t -> Types.op_id -> Types.op_id list
val edges : t -> Types.edge list
(** All edges, including recursive ones. *)

val recursive_edges : t -> Types.edge list
val topo_order : t -> Types.op_id list
(** Topological order of the degree-0 subgraph. *)

val mutually_exclusive : t -> Types.op_id -> Types.op_id -> bool
(** True when the two nodes' guard lists disagree on some conditional, i.e.
    they can never execute in the same instance (§7.2). *)

val drives : t -> int -> int list
(** Partitions that partition [i] drives (has an I/O operation into),
    excluding the outside world; sorted, deduplicated. *)

val driven_by : t -> int -> int list

val check_locality : t -> (unit, string) result
(** Multi-chip well-formedness: every dependence is intra-chip or routed
    through an I/O operation node whose endpoints match — a functional
    operation may read only values produced on its own chip or delivered to
    it (graphs built by {!Netlist} satisfy this by construction). *)

val pp_stats : Format.formatter -> t -> unit

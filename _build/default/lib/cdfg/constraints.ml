type t = {
  n_partitions : int;
  pin_budget : int array; (* indexed by partition, 0 included *)
  fus : ((int * string) * int) list;
}

let create ~n_partitions ~pins ~fus =
  if n_partitions < 1 then invalid_arg "Constraints.create";
  let pin_budget = Array.make (n_partitions + 1) 0 in
  List.iter
    (fun (p, n) ->
      if p < 0 || p > n_partitions then
        invalid_arg "Constraints: partition out of range";
      if n < 0 then invalid_arg "Constraints: negative pin budget";
      pin_budget.(p) <- n)
    pins;
  let fus =
    List.map
      (fun (p, ty, n) ->
        if p < 1 || p > n_partitions then
          invalid_arg "Constraints: FU partition out of range";
        if n < 0 then invalid_arg "Constraints: negative FU count";
        ((p, ty), n))
      fus
  in
  let keys = List.map fst fus in
  if List.length (List.sort_uniq compare keys) <> List.length keys then
    invalid_arg "Constraints: duplicate (partition, optype) FU entry";
  { n_partitions; pin_budget; fus }

let n_partitions t = t.n_partitions

let pins t p =
  if p < 0 || p > t.n_partitions then invalid_arg "Constraints.pins";
  t.pin_budget.(p)

let fu_count t ~partition ~optype =
  match List.assoc_opt (partition, optype) t.fus with
  | Some n -> n
  | None -> 0

let with_pins t updates =
  let pin_budget = Array.copy t.pin_budget in
  List.iter
    (fun (p, n) ->
      if p < 0 || p > t.n_partitions then invalid_arg "Constraints.with_pins";
      pin_budget.(p) <- n)
    updates;
  { t with pin_budget }

let min_fus cdfg mlib ~rate =
  if rate < 1 then invalid_arg "Constraints.min_fus: rate must be >= 1";
  let groups =
    Mcs_util.Listx.group_by
      (fun op -> (Cdfg.func_partition cdfg op, Cdfg.func_optype cdfg op))
      (Cdfg.func_ops cdfg)
  in
  List.map
    (fun ((p, ty), l) ->
      let cyc = Module_lib.cycles mlib ty in
      if cyc > rate then
        invalid_arg
          (Printf.sprintf
             "Constraints.min_fus: %s takes %d cycles > initiation rate %d" ty
             cyc rate);
      let slots_per_fu = rate / cyc in
      let n = List.length l in
      (p, ty, (n + slots_per_fu - 1) / slots_per_fu))
    groups

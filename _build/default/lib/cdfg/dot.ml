let node_id i = Printf.sprintf "n%d" i

let pp ppf cdfg =
  Format.fprintf ppf "digraph cdfg {@.  rankdir=TB;@.  node [fontsize=10];@.";
  (* One cluster per real partition; the outside world floats. *)
  List.iter
    (fun p ->
      Format.fprintf ppf "  subgraph cluster_p%d {@.    label=\"chip %d\";@." p p;
      List.iter
        (fun op ->
          Format.fprintf ppf "    %s [label=\"%s\\n%s\" shape=ellipse];@."
            (node_id op) (Cdfg.name cdfg op) (Cdfg.func_optype cdfg op))
        (Cdfg.func_ops_of_partition cdfg p);
      Format.fprintf ppf "  }@.")
    (Mcs_util.Listx.range 1 (Cdfg.n_partitions cdfg + 1));
  List.iter
    (fun w ->
      Format.fprintf ppf
        "  %s [label=\"%s\\n%d bits\" shape=box style=filled \
         fillcolor=lightgrey];@."
        (node_id w) (Cdfg.name cdfg w) (Cdfg.io_width cdfg w))
    (Cdfg.io_ops cdfg);
  List.iter
    (fun { Types.e_src; e_dst; degree } ->
      if degree = 0 then
        Format.fprintf ppf "  %s -> %s;@." (node_id e_src) (node_id e_dst)
      else
        Format.fprintf ppf
          "  %s -> %s [style=dashed label=\"d=%d\" constraint=false];@."
          (node_id e_src) (node_id e_dst) degree)
    (Cdfg.edges cdfg);
  Format.fprintf ppf "}@."

let to_file cdfg path =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  pp ppf cdfg;
  Format.pp_print_flush ppf ();
  close_out oc

type decl_op = {
  o_name : string;
  o_type : string;
  o_partition : int;
  o_args : string list;
}

type decl_input = { i_name : string; i_value : string; i_width : int; i_dst : int }
type decl_output = { u_name : string; u_value : string; u_width : int }
type decl_rec = { r_src : string; r_dst : string; r_degree : int }

type t = {
  n_partitions : int;
  default_width : int;
  mutable inputs : decl_input list; (* reversed *)
  mutable ops : decl_op list;
  mutable outputs : decl_output list;
  mutable recs : decl_rec list;
  widths : (string, int) Hashtbl.t;
  xnames : (string * int, string) Hashtbl.t;
  guards : (string, Types.guard list) Hashtbl.t;
}

let create ?(default_width = 8) ~n_partitions () =
  if n_partitions < 1 then invalid_arg "Netlist.create";
  {
    n_partitions;
    default_width;
    inputs = [];
    ops = [];
    outputs = [];
    recs = [];
    widths = Hashtbl.create 32;
    xnames = Hashtbl.create 32;
    guards = Hashtbl.create 8;
  }

let input t ?name ~width ~dst value =
  let i_name = match name with Some n -> n | None -> value in
  t.inputs <- { i_name; i_value = value; i_width = width; i_dst = dst } :: t.inputs

let op t ~name ~optype ~partition ~args =
  t.ops <- { o_name = name; o_type = optype; o_partition = partition; o_args = args } :: t.ops

let output t ?name ~width value =
  let u_name = match name with Some n -> n | None -> "O_" ^ value in
  t.outputs <- { u_name; u_value = value; u_width = width } :: t.outputs

let set_width t ~value w = Hashtbl.replace t.widths value w
let xfer_name t ~value ~dst n = Hashtbl.replace t.xnames (value, dst) n

let guard t ~opname ~cond ~arm =
  let old = Option.value ~default:[] (Hashtbl.find_opt t.guards opname) in
  Hashtbl.replace t.guards opname ({ Types.cond; arm } :: old)

let value_width t v =
  match Hashtbl.find_opt t.widths v with
  | Some w -> w
  | None -> t.default_width

let elaborate t =
  let b = Cdfg.Builder.create ~n_partitions:t.n_partitions in
  let inputs = List.rev t.inputs in
  let ops = List.rev t.ops in
  let outputs = List.rev t.outputs in
  let op_guards name =
    Option.value ~default:[] (Hashtbl.find_opt t.guards name)
  in
  (* Primary input I/O nodes, keyed by (value, destination). *)
  let input_io = Hashtbl.create 32 in
  List.iter
    (fun d ->
      if Hashtbl.mem input_io (d.i_value, d.i_dst) then
        invalid_arg
          (Printf.sprintf "Netlist: duplicate input %s -> partition %d"
             d.i_value d.i_dst);
      let id =
        Cdfg.Builder.io b ~name:d.i_name ~src:0 ~dst:d.i_dst ~width:d.i_width
          d.i_value
      in
      Hashtbl.add input_io (d.i_value, d.i_dst) id)
    inputs;
  (* Functional nodes. *)
  let op_node = Hashtbl.create 64 in
  let op_decl = Hashtbl.create 64 in
  List.iter
    (fun d ->
      if Hashtbl.mem op_node d.o_name then
        invalid_arg ("Netlist: duplicate op " ^ d.o_name);
      let id =
        Cdfg.Builder.func b ~name:d.o_name ~guards:(op_guards d.o_name)
          ~partition:d.o_partition d.o_type
      in
      Hashtbl.add op_node d.o_name id;
      Hashtbl.add op_decl d.o_name d)
    ops;
  (* Cross-partition transfer I/O nodes, created on demand and shared by all
     consumers of the same value in the same partition. *)
  let xfer_io = Hashtbl.create 32 in
  let xfer value ~src ~dst ~guards =
    match Hashtbl.find_opt xfer_io (value, dst) with
    | Some id -> id
    | None ->
        let name =
          match Hashtbl.find_opt t.xnames (value, dst) with
          | Some n -> n
          | None -> Printf.sprintf "X_%s_%d" value dst
        in
        let id =
          Cdfg.Builder.io b ~name ~guards ~src ~dst
            ~width:(value_width t value) value
        in
        Hashtbl.add xfer_io (value, dst) id;
        Cdfg.Builder.dep b (Hashtbl.find op_node value) id;
        id
  in
  let connect_arg consumer_id consumer_partition ~degree arg =
    match Hashtbl.find_opt input_io (arg, consumer_partition) with
    | Some io_id -> Cdfg.Builder.dep b ~degree io_id consumer_id
    | None -> (
        match Hashtbl.find_opt op_decl arg with
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Netlist: operand %s is neither an op nor an input visible \
                  in partition %d"
                 arg consumer_partition)
        | Some producer ->
            let producer_id = Hashtbl.find op_node arg in
            if producer.o_partition = consumer_partition then
              Cdfg.Builder.dep b ~degree producer_id consumer_id
            else begin
              let io_id =
                xfer arg ~src:producer.o_partition ~dst:consumer_partition
                  ~guards:(op_guards producer.o_name)
              in
              Cdfg.Builder.dep b ~degree io_id consumer_id
            end)
  in
  List.iter
    (fun d ->
      let id = Hashtbl.find op_node d.o_name in
      List.iter (connect_arg id d.o_partition ~degree:0) d.o_args)
    ops;
  List.iter
    (fun r ->
      match Hashtbl.find_opt op_decl r.r_dst with
      | None -> invalid_arg ("Netlist: unknown recursive consumer " ^ r.r_dst)
      | Some consumer ->
          if not (Hashtbl.mem op_node r.r_src) then
            invalid_arg ("Netlist: unknown recursive producer " ^ r.r_src);
          let consumer_id = Hashtbl.find op_node r.r_dst in
          connect_arg consumer_id consumer.o_partition ~degree:r.r_degree
            r.r_src)
    (List.rev t.recs);
  List.iter
    (fun d ->
      match Hashtbl.find_opt op_decl d.u_value with
      | None -> invalid_arg ("Netlist: unknown output value " ^ d.u_value)
      | Some producer ->
          let io_id =
            Cdfg.Builder.io b ~name:d.u_name
              ~guards:(op_guards producer.o_name)
              ~src:producer.o_partition ~dst:0 ~width:d.u_width d.u_value
          in
          Cdfg.Builder.dep b (Hashtbl.find op_node d.u_value) io_id)
    outputs;
  Cdfg.Builder.finish b

let rec_dep t ~src ~dst ~degree =
  if degree < 1 then invalid_arg "Netlist.rec_dep: degree must be >= 1";
  t.recs <- { r_src = src; r_dst = dst; r_degree = degree } :: t.recs

type t = {
  n : int;
  mutable m : int;
  succ : int list array; (* reversed insertion order, fixed up on read *)
  pred : int list array;
}

let create n =
  if n < 0 then invalid_arg "Digraph.create";
  { n; m = 0; succ = Array.make n []; pred = Array.make n [] }

let node_count g = g.n
let edge_count g = g.m

let check g v =
  if v < 0 || v >= g.n then invalid_arg "Digraph: node id out of range"

let add_edge g ~src ~dst =
  check g src;
  check g dst;
  g.succ.(src) <- dst :: g.succ.(src);
  g.pred.(dst) <- src :: g.pred.(dst);
  g.m <- g.m + 1

let succs g v =
  check g v;
  List.rev g.succ.(v)

let preds g v =
  check g v;
  List.rev g.pred.(v)

let out_degree g v =
  check g v;
  List.length g.succ.(v)

let in_degree g v =
  check g v;
  List.length g.pred.(v)

let topo_sort g =
  let indeg = Array.init g.n (fun v -> List.length g.pred.(v)) in
  (* A sorted worklist keeps the order deterministic: among ready nodes the
     smallest id is emitted first. *)
  let module Iset = Set.Make (Int) in
  let ready = ref Iset.empty in
  for v = g.n - 1 downto 0 do
    if indeg.(v) = 0 then ready := Iset.add v !ready
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Iset.is_empty !ready) do
    let v = Iset.min_elt !ready in
    ready := Iset.remove v !ready;
    order := v :: !order;
    incr count;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then ready := Iset.add w !ready)
      g.succ.(v)
  done;
  if !count = g.n then Some (List.rev !order) else None

let is_acyclic g = topo_sort g <> None

let longest_path_to g ~weight =
  match topo_sort g with
  | None -> invalid_arg "Digraph.longest_path_to: cyclic graph"
  | Some order ->
      let dist = Array.make g.n 0 in
      List.iter
        (fun v ->
          let best_pred =
            List.fold_left (fun acc p -> max acc dist.(p)) 0 g.pred.(v)
          in
          dist.(v) <- best_pred + weight v)
        order;
      dist

let transpose g =
  let h = create g.n in
  for v = 0 to g.n - 1 do
    List.iter (fun w -> add_edge h ~src:w ~dst:v) (List.rev g.succ.(v))
  done;
  h

let longest_path_from g ~weight = longest_path_to (transpose g) ~weight

let reachable_from g start =
  check g start;
  let seen = Array.make g.n false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter dfs g.succ.(v)
    end
  in
  dfs start;
  seen

(** Mutable directed multigraph over dense integer node ids [0 .. n-1].

    This is the backbone used by the CDFG layer and the schedulers; parallel
    edges are permitted (a value consumed twice by the same operation, two
    transfers between the same pair of chips, ...). *)

type t

val create : int -> t
(** [create n] is an edgeless graph with nodes [0 .. n-1]. *)

val node_count : t -> int
val edge_count : t -> int

val add_edge : t -> src:int -> dst:int -> unit
(** Adds one (possibly parallel) edge.  Node ids must be in range. *)

val succs : t -> int -> int list
(** Successors in insertion order, with multiplicity. *)

val preds : t -> int -> int list

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val topo_sort : t -> int list option
(** Topological order of all nodes, or [None] if the graph has a cycle.
    Kahn's algorithm; stable for nodes with equal depth (smaller id first). *)

val is_acyclic : t -> bool

val longest_path_to : t -> weight:(int -> int) -> int array
(** [longest_path_to g ~weight] gives, per node, the maximum total [weight]
    over any path ending at (and including) that node.  Requires the graph to
    be acyclic.
    @raise Invalid_argument on a cyclic graph. *)

val longest_path_from : t -> weight:(int -> int) -> int array
(** Dual of {!longest_path_to}: maximum total weight over paths starting at
    (and including) each node. *)

val reachable_from : t -> int -> bool array
(** Nodes reachable from the given node (including itself). *)

val transpose : t -> t

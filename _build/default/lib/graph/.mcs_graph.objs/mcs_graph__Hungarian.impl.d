lib/graph/hungarian.ml: Array List

lib/graph/digraph.mli:

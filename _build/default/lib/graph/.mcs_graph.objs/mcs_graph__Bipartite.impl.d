lib/graph/bipartite.ml: Array List

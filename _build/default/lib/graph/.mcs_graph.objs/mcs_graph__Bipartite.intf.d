lib/graph/bipartite.mli:

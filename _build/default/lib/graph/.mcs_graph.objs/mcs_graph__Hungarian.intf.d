lib/graph/hungarian.mli:

(** Functional simulation of synthesized multiple-chip systems.

    Two executions of the same design are compared:

    - {!reference} evaluates the CDFG denotationally: instance [n] of each
      operation applies its operator to its operands, a data recursive edge
      of degree [d] reading instance [n - d] (seeded deterministically for
      [n - d < 0]);
    - {!machine} replays the synthesized implementation cycle by cycle: each
      operation of each execution instance runs at its scheduled control
      step, interchip values travel over their assigned buses, and the
      simulator {e checks the hardware invariants as it goes} — at most one
      value per bus per cycle (same-value broadcasts excepted), ports wide
      enough for what they carry, and every operand latched before use.

    Equal traces mean the schedule, the bus allocation and the connection
    together implement the behaviour; any pipelining bug (overlapped
    instances clobbering each other, a transfer on a busy bus, a value read
    before it exists) surfaces as a mismatch or an invariant report. *)

open Mcs_cdfg

type semantics = string -> int list -> int
(** Operator meaning: [sem optype operand_values].  The default interprets
    "add" as addition, "mul" as multiplication, "sub" as subtraction, and
    any other type as a (deterministic) hash of its operands — all masked
    to 30 bits. *)

val default_semantics : semantics

type inputs = string -> int -> int
(** [inputs value instance] — the primary input stream. *)

val random_inputs : seed:int -> inputs
(** Deterministic pseudo-random stream. *)

type trace = {
  outputs : ((string * int) * int) list;
      (** (output value name, instance) -> value, sorted *)
}

val reference :
  ?semantics:semantics -> Cdfg.t -> inputs:inputs -> instances:int -> trace

val machine :
  ?semantics:semantics ->
  Mcs_sched.Schedule.t ->
  bus_of:(Types.op_id -> int list) ->
  bus_capable:(int -> Types.op_id -> bool) ->
  inputs:inputs ->
  instances:int ->
  (trace, string) result
(** [bus_of] gives the bus slots each I/O operation occupies in its control
    step (one id for an ordinary bus; a Chapter-6 whole-bus transfer lists
    both of its sub-bus slots); [bus_capable slot op] is the static
    capability predicate used to check port widths (wrap
    [Connection.capable] or the Chapter-6 slice predicate).  Returns
    [Error] describing the first violated hardware invariant. *)

val check_equivalent :
  ?semantics:semantics ->
  Mcs_sched.Schedule.t ->
  bus_of:(Types.op_id -> int list) ->
  bus_capable:(int -> Types.op_id -> bool) ->
  seed:int ->
  instances:int ->
  (unit, string) result
(** Reference-vs-machine comparison over a random input stream. *)

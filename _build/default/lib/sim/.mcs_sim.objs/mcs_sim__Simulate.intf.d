lib/sim/simulate.mli: Cdfg Mcs_cdfg Mcs_sched Types

lib/sim/simulate.ml: Array Cdfg Format Hashtbl List Mcs_cdfg Mcs_sched Mcs_util Printf String Timing Types

(* mcs-synth: command-line front end for the multiple-chip synthesis flows.

   Examples:
     mcs-synth --design ar-general --rate 4 --flow ch4 --ports bidir
     mcs-synth --design ar-simple  --rate 2 --flow ch3
     mcs-synth --design elliptic   --rate 5 --flow ch5 --pipe-length 25
     mcs-synth --design ar-general --rate 3 --flow ch6
     mcs-synth --list *)

open Mcs_cdfg
open Mcs_core
module C = Mcs_connect.Connection

let fmt = Format.std_formatter

let designs =
  [
    ("ar-simple", Benchmarks.ar_simple);
    ("ar-general", Benchmarks.ar_general);
    ("elliptic", Benchmarks.elliptic);
    ("cond-demo", Benchmarks.cond_demo);
    ("subbus-demo", Benchmarks.subbus_demo);
  ]

let list_designs () =
  List.iter
    (fun (name, mk) ->
      let d = mk () in
      Format.fprintf fmt "%-12s %a; evaluated at rates %s@." name
        Cdfg.pp_stats d.Benchmarks.cdfg
        (String.concat ", " (List.map string_of_int d.Benchmarks.rates)))
    designs;
  0

let pins_table (d : Benchmarks.design) pins =
  Report.table fmt ~title:"Pins used per partition"
    ~header:
      (List.map
         (fun p -> "P" ^ string_of_int p)
         (Mcs_util.Listx.range 0 (Cdfg.n_partitions d.Benchmarks.cdfg + 1)))
    [ Report.pins_row pins ]

let run_ch3 d ~rate =
  match Simple_part.run d ~rate with
  | Error m ->
      Format.fprintf fmt "synthesis failed: %s@." m;
      1
  | Ok r ->
      Format.fprintf fmt "Schedule:@.%a@.@." Report.schedule r.schedule;
      Format.fprintf fmt "Theorem 3.1 connection:@.%a@.@." Report.bundles r.links;
      pins_table d r.pins_needed;
      0

let run_ch4 d ~rate ~mode =
  match Pre_connect.run_design d ~rate ~mode with
  | Error m ->
      Format.fprintf fmt "synthesis failed: %s@." m;
      1
  | Ok r ->
      Format.fprintf fmt "Interchip connection:@.%a@.@."
        (Report.connection d.Benchmarks.cdfg)
        r.connection;
      Report.bus_assignment d.Benchmarks.cdfg fmt ~initial:r.initial_assignment
        ~final:r.final_assignment;
      Format.fprintf fmt "@.";
      Report.bus_allocation d.Benchmarks.cdfg ~rate fmt r.allocation;
      Format.fprintf fmt "@.Schedule:@.%a@.@." Report.schedule r.schedule;
      pins_table d r.pins;
      Format.fprintf fmt "@.pipe length: %d (static assignment: %s)@."
        (Mcs_sched.Schedule.pipe_length r.schedule)
        (match r.static_pipe_length with
        | Some n -> string_of_int n
        | None -> "unschedulable");
      0

let run_ch5 d ~rate ~pipe_length ~mode =
  match Post_connect.run_design d ~rate ~pipe_length ~mode with
  | Error m ->
      Format.fprintf fmt "synthesis failed: %s@." m;
      1
  | Ok r ->
      Format.fprintf fmt "Schedule (force-directed):@.%a@.@." Report.schedule
        r.schedule;
      Format.fprintf fmt "Connection (clique partitioning):@.%a@.@."
        (Report.connection d.Benchmarks.cdfg)
        r.connection;
      pins_table d r.pins;
      Format.fprintf fmt "@.Functional units implied:@.";
      List.iter
        (fun ((p, ty), n) -> Format.fprintf fmt "  P%d: %d %s@." p n ty)
        r.fus;
      0

let run_ch6 d ~rate =
  match Subbus.run_design d ~rate with
  | Error m ->
      Format.fprintf fmt "synthesis failed: %s@." m;
      1
  | Ok t ->
      Format.fprintf fmt "Bus structure (with sub-buses):@.%a@.@."
        (Report.real_buses d.Benchmarks.cdfg)
        t.real_buses;
      Format.fprintf fmt "Schedule:@.%a@.@." Report.schedule t.schedule;
      pins_table d t.pins;
      Format.fprintf fmt "@.pipe length: %d@."
        (Mcs_sched.Schedule.pipe_length t.schedule);
      0

let synth design flow rate pipe_length ports listing =
  if listing then list_designs ()
  else
    match List.assoc_opt design designs with
    | None ->
        Format.fprintf fmt
          "unknown design %S (use --list to see what is available)@." design;
        2
    | Some mk -> (
        let d = mk () in
        let rate =
          match rate with Some r -> r | None -> List.hd d.Benchmarks.rates
        in
        let mode = if ports = "bidir" then C.Bidir else C.Unidir in
        match flow with
        | "ch3" -> run_ch3 d ~rate
        | "ch4" -> run_ch4 d ~rate ~mode
        | "ch5" ->
            let pl =
              match pipe_length with
              | Some pl -> pl
              | None ->
                  Timing.critical_path_csteps d.Benchmarks.cdfg
                    d.Benchmarks.mlib
            in
            run_ch5 d ~rate ~pipe_length:pl ~mode
        | "ch6" -> run_ch6 d ~rate
        | f ->
            Format.fprintf fmt "unknown flow %S (ch3|ch4|ch5|ch6)@." f;
            2)

open Cmdliner

let design =
  Arg.(value & opt string "ar-general" & info [ "design"; "d" ] ~docv:"NAME"
         ~doc:"Design to synthesize (see $(b,--list)).")

let flow =
  Arg.(value & opt string "ch4" & info [ "flow"; "f" ] ~docv:"FLOW"
         ~doc:"Synthesis flow: ch3 (simple partitioning), ch4 \
               (connection-first), ch5 (schedule-first), ch6 (sub-bus \
               sharing).")

let rate =
  Arg.(value & opt (some int) None & info [ "rate"; "r" ] ~docv:"L"
         ~doc:"Initiation rate (default: the design's first evaluated rate).")

let pipe_length =
  Arg.(value & opt (some int) None & info [ "pipe-length"; "p" ] ~docv:"T"
         ~doc:"Pipe length for the ch5 flow (default: the critical path).")

let ports =
  Arg.(value & opt string "unidir" & info [ "ports" ] ~docv:"MODE"
         ~doc:"I/O port mode: unidir or bidir.")

let listing =
  Arg.(value & flag & info [ "list"; "l" ] ~doc:"List the bundled designs.")

let cmd =
  let doc = "high-level synthesis with pin constraints for multiple-chip designs" in
  let info =
    Cmd.info "mcs-synth" ~doc
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Synthesizes pipelined multiple-chip designs from partitioned \
             behavioural specifications under per-chip I/O pin constraints, \
             reproducing Hung's 1992 dissertation flows: pin-constrained \
             scheduling for simple partitionings, interchip-connection \
             synthesis before or after scheduling, and intra-cycle sub-bus \
             sharing.";
        ]
  in
  Cmd.v info Term.(const synth $ design $ flow $ rate $ pipe_length $ ports $ listing)

let () = exit (Cmd.eval' cmd)

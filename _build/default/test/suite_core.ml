(* Tests for the chapter flows: simple partitioning (Ch. 3), connection-first
   (Ch. 4), schedule-first (Ch. 5), sub-bus sharing (Ch. 6), and the
   Chapter 7 extensions. *)

open Mcs_cdfg
open Mcs_core

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Simple partitioning recognition --- *)

let test_is_simple () =
  checkb "ar_simple is simple" true
    (Simple_part.is_simple (Benchmarks.ar_simple ()).Benchmarks.cdfg);
  checkb "ar_general is not" false
    (Simple_part.is_simple (Benchmarks.ar_general ()).Benchmarks.cdfg);
  checkb "general has violations" true
    (Simple_part.violations (Benchmarks.ar_general ()).Benchmarks.cdfg <> [])

let test_simple_three_drivees () =
  (* A partition driving three others violates condition 1. *)
  let b = Cdfg.Builder.create ~n_partitions:4 in
  let s = Cdfg.Builder.func b ~partition:1 "add" in
  List.iter
    (fun p ->
      let x = Cdfg.Builder.io b ~src:1 ~dst:p ~width:8 (Printf.sprintf "v%d" p) in
      Cdfg.Builder.dep b s x)
    [ 2; 3; 4 ];
  let cdfg = Cdfg.Builder.finish b in
  checkb "three drivees not simple" false (Simple_part.is_simple cdfg)

let test_simple_shared_driver_violation () =
  (* f drives {a, b} but a has a second driver: violates condition 4. *)
  let b = Cdfg.Builder.create ~n_partitions:4 in
  let f = Cdfg.Builder.func b ~partition:1 "add" in
  let g = Cdfg.Builder.func b ~partition:4 "add" in
  List.iter
    (fun (src, op, dst, v) ->
      let x = Cdfg.Builder.io b ~src ~dst ~width:8 v in
      Cdfg.Builder.dep b op x)
    [ (1, f, 2, "fa"); (1, f, 3, "fb"); (4, g, 2, "ga") ];
  let cdfg = Cdfg.Builder.finish b in
  checkb "not simple" false (Simple_part.is_simple cdfg)

(* --- Pin allocation ILP (Ch. 3) --- *)

let test_pin_ilp_feasible_baseline () =
  let d = Benchmarks.ar_simple () in
  let cons = Benchmarks.constraints_for d ~rate:2 in
  checkb "paper budgets feasible" true
    (Simple_part.Pin_ilp.feasible d.Benchmarks.cdfg cons ~rate:2 ~fixed:[])

let test_pin_ilp_infeasible_when_tight () =
  let d = Benchmarks.ar_simple () in
  (* P1 needs >= 48 pins at rate 2 (5 input bundles + 1 output). *)
  let cons =
    Constraints.with_pins (Benchmarks.constraints_for d ~rate:2) [ (1, 40) ]
  in
  checkb "40 pins on P1 infeasible" false
    (Simple_part.Pin_ilp.feasible d.Benchmarks.cdfg cons ~rate:2 ~fixed:[])

let test_pin_ilp_detects_bad_fixing () =
  let d = Benchmarks.ar_simple () in
  let cons = Benchmarks.constraints_for d ~rate:2 in
  let cdfg = d.Benchmarks.cdfg in
  (* Cramming 6 of P1's 8-bit inputs into one group blows its 40 input
     pins (5 ports). *)
  let p1_inputs =
    Mcs_util.Listx.take 6 (Cdfg.io_inputs_of_partition cdfg 1)
  in
  let fixed = List.map (fun w -> (w, 0)) p1_inputs in
  checkb "overfull group rejected" false
    (Simple_part.Pin_ilp.feasible cdfg cons ~rate:2 ~fixed)

let test_pin_ilp_gomory_agrees () =
  let d = Benchmarks.ar_simple () in
  let cons = Benchmarks.constraints_for d ~rate:2 in
  let cdfg = d.Benchmarks.cdfg in
  let some_fix = [ (List.hd (Cdfg.io_inputs_of_partition cdfg 3), 1) ] in
  List.iter
    (fun fixed ->
      checkb "methods agree" true
        (Simple_part.Pin_ilp.feasible ~method_:`Gomory cdfg cons ~rate:2 ~fixed
        = Simple_part.Pin_ilp.feasible ~method_:`Branch_bound cdfg cons ~rate:2
            ~fixed))
    [ []; some_fix ]

(* --- Chapter 3 flow --- *)

let test_ch3_flow () =
  let d = Benchmarks.ar_simple () in
  match Simple_part.run d ~rate:2 with
  | Error m -> Alcotest.fail m
  | Ok r ->
      checkb "schedule valid" true (Mcs_sched.Schedule.verify r.schedule = Ok ());
      (* Paper values: P1/P2 use 48 pins, P3/P4 use 32. *)
      checki "P1 pins" 48 (List.assoc 1 r.pins_needed);
      checki "P2 pins" 48 (List.assoc 2 r.pins_needed);
      checki "P3 pins" 32 (List.assoc 3 r.pins_needed);
      checki "P4 pins" 32 (List.assoc 4 r.pins_needed);
      (* Theorem 3.1's own check already ran inside [run]; run it again. *)
      checkb "connection conflict-free" true
        (Simple_part.Theorem31.check r.schedule r.links = Ok ())

let test_ch3_rejects_general () =
  let d = Benchmarks.ar_general () in
  checkb "general partitioning rejected" true
    (try
       ignore (Simple_part.run d ~rate:3);
       false
     with Invalid_argument _ -> true)

let test_theorem31_check_catches_conflicts () =
  let d = Benchmarks.ar_simple () in
  match Simple_part.run d ~rate:2 with
  | Error m -> Alcotest.fail m
  | Ok r ->
      (* Halving a bundle must break the check. *)
      let broken =
        List.map
          (fun (b : Simple_part.Theorem31.bundle) ->
            { b with Simple_part.Theorem31.wires = b.wires / 2 })
          r.links
      in
      checkb "conflict detected" true
        (Simple_part.Theorem31.check r.schedule broken <> Ok ())

(* --- Chapter 4 flow --- *)

let test_ch4_flow_all_rates () =
  let d = Benchmarks.ar_general () in
  List.iter
    (fun rate ->
      List.iter
        (fun mode ->
          match Pre_connect.run_design d ~rate ~mode with
          | Error m -> Alcotest.fail m
          | Ok r ->
              checkb "valid schedule" true
                (Mcs_sched.Schedule.verify r.schedule = Ok ());
              (* Final assignment covers every I/O operation. *)
              checki "all ops placed"
                (List.length (Cdfg.io_ops d.Benchmarks.cdfg))
                (List.length r.final_assignment))
        [ Mcs_connect.Connection.Unidir; Mcs_connect.Connection.Bidir ])
    [ 3; 4; 5 ]

let test_ch4_bidir_fewer_pins () =
  (* The paper's headline: bidirectional ports need fewer pins. *)
  let d = Benchmarks.ar_general () in
  List.iter
    (fun rate ->
      match
        ( Pre_connect.run_design d ~rate ~mode:Mcs_connect.Connection.Unidir,
          Pre_connect.run_design d ~rate ~mode:Mcs_connect.Connection.Bidir )
      with
      | Ok uni, Ok bi ->
          checkb
            (Printf.sprintf "rate %d: bidir <= unidir pins" rate)
            true
            (Mcs_util.Listx.sum snd bi.pins <= Mcs_util.Listx.sum snd uni.pins)
      | _ -> Alcotest.fail "flows failed")
    [ 3; 4; 5 ]

let test_ch4_ewf () =
  let d = Benchmarks.elliptic () in
  List.iter
    (fun rate ->
      match Pre_connect.run_design d ~rate ~mode:Mcs_connect.Connection.Unidir with
      | Error m -> Alcotest.fail m
      | Ok r ->
          checkb "valid" true (Mcs_sched.Schedule.verify r.schedule = Ok ()))
    [ 6; 7 ]

(* --- Chapter 5 flow --- *)

let test_ch5_cliques_valid () =
  let d = Benchmarks.ar_general () in
  match
    Post_connect.run_design d ~rate:4 ~pipe_length:9
      ~mode:Mcs_connect.Connection.Bidir
  with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let cdfg = d.Benchmarks.cdfg in
      let s = r.schedule in
      checkb "valid schedule" true (Mcs_sched.Schedule.verify s = Ok ());
      (* Within a clique (bus), two ops in the same control-step group must
         transfer the same value in the same control step. *)
      let by_bus = Mcs_util.Listx.group_by snd r.assignment in
      List.iter
        (fun (_, members) ->
          let ops = List.map fst members in
          List.iter
            (fun w1 ->
              List.iter
                (fun w2 ->
                  if
                    w1 < w2
                    && Mcs_sched.Schedule.group s w1 = Mcs_sched.Schedule.group s w2
                  then begin
                    checkb "same value" true
                      (String.equal (Cdfg.io_value cdfg w1) (Cdfg.io_value cdfg w2));
                    checki "same cstep" (Mcs_sched.Schedule.cstep s w1)
                      (Mcs_sched.Schedule.cstep s w2)
                  end)
                ops)
            ops)
        by_bus;
      (* Buses are wired wide enough for their traffic. *)
      List.iter
        (fun (w, h) ->
          checkb "capable" true
            (Mcs_connect.Connection.capable r.connection cdfg ~bus:h w))
        r.assignment

let test_ch5_weight_function () =
  let d = Benchmarks.ar_general () in
  let cdfg = d.Benchmarks.cdfg in
  let ios = Cdfg.io_ops cdfg in
  let same_src =
    List.filter (fun w -> Cdfg.io_src cdfg w = 0 && Cdfg.io_width cdfg w = 8) ios
  in
  match same_src with
  | w1 :: w2 :: _ ->
      (* Two 8-bit primary inputs to different chips share only the source
         endpoint: weight 8 unidirectional. *)
      let w =
        Post_connect.weight cdfg ~mode:Mcs_connect.Connection.Unidir w1 w2
      in
      checkb "weight multiple of min width" true (w = 8 || w = 16)
  | _ -> Alcotest.fail "expected inputs"

let test_ch5_ewf_rate5 () =
  (* Chapter 5's approach handles the rate the greedy Chapter 4 flow
     cannot. *)
  let d = Benchmarks.elliptic () in
  match
    Post_connect.run_design d ~rate:5 ~pipe_length:25
      ~mode:Mcs_connect.Connection.Unidir
  with
  | Error m -> Alcotest.fail m
  | Ok r ->
      checkb "rate-5 schedule valid" true
        (Mcs_sched.Schedule.verify r.schedule = Ok ())

(* --- Chapter 6 flow --- *)

let test_ch6_ar () =
  let d = Benchmarks.ar_general () in
  match Subbus.run_design d ~rate:4 with
  | Error m -> Alcotest.fail m
  | Ok t ->
      checkb "valid schedule" true (Mcs_sched.Schedule.verify t.schedule = Ok ());
      let cdfg = d.Benchmarks.cdfg in
      (* Slices hold their assigned operations widthwise. *)
      List.iter
        (fun (rb : Subbus.real_bus) ->
          List.iter
            (fun (w, s) ->
              let width = Cdfg.io_width cdfg w in
              match (rb.split_at, s) with
              | None, Subbus.Whole -> checkb "fits" true (width <= rb.width)
              | Some lo, Subbus.Lo -> checkb "fits lo" true (width <= lo)
              | Some lo, Subbus.Hi -> checkb "fits hi" true (width <= rb.width - lo)
              | Some _, Subbus.Whole -> checkb "fits whole" true (width <= rb.width)
              | None, (Subbus.Lo | Subbus.Hi) -> Alcotest.fail "slice on unsplit bus")
            rb.carried)
        t.real_buses;
      (* Pin totals match the port lists. *)
      List.iter
        (fun (p, n) ->
          checki "pins consistent" n
            (Mcs_util.Listx.sum
               (fun (rb : Subbus.real_bus) ->
                 Mcs_util.Listx.sum (fun (q, r) -> if q = p then r else 0) rb.ports)
               t.real_buses))
        t.pins

let test_ch6_demo_needs_sharing () =
  let demo = Benchmarks.subbus_demo () in
  checkb "chapter-4 flow infeasible at 40 pins" true
    (Pre_connect.run_design demo ~rate:3 ~mode:Mcs_connect.Connection.Bidir
    |> Result.is_error);
  match Subbus.run_design demo ~rate:3 with
  | Error m -> Alcotest.fail m
  | Ok t ->
      checkb "sharing flow feasible" true
        (Mcs_sched.Schedule.verify t.schedule = Ok ());
      checkb "a bus actually split" true
        (List.exists (fun (b : Subbus.real_bus) -> b.split_at <> None) t.real_buses);
      checkb "P1 within 40 pins" true (List.assoc 1 t.pins <= 40)

let test_ch6_allocation_no_half_conflicts () =
  let demo = Benchmarks.subbus_demo () in
  match Subbus.run_design demo ~rate:3 with
  | Error m -> Alcotest.fail m
  | Ok t ->
      (* At most one value per (bus, half, group): whole-bus entries count
         on both halves. *)
      let occupancy = Hashtbl.create 16 in
      List.iter
        (fun ((bus, slice, g), (value, cstep, _)) ->
          let halves =
            match slice with
            | Subbus.Lo -> [ `L ]
            | Subbus.Hi -> [ `H ]
            | Subbus.Whole -> [ `L; `H ]
          in
          List.iter
            (fun h ->
              match Hashtbl.find_opt occupancy (bus, h, g) with
              | Some (v', c') ->
                  checkb "only same value+step may share" true
                    (String.equal v' value && c' = cstep)
              | None -> Hashtbl.add occupancy (bus, h, g) (value, cstep))
            halves)
        t.allocation

(* --- Extensions --- *)

let test_thm71_equivalence () =
  let yes =
    Extensions.Recursion.theorem71_instance ~tasks:3
      ~precedence:[ (1, 2); (2, 3) ]
      ~machines:1 ~deadline:3
  in
  let no =
    Extensions.Recursion.theorem71_instance ~tasks:4
      ~precedence:[ (1, 2); (2, 3); (3, 4) ]
      ~machines:1 ~deadline:3
  in
  let go (cdfg, cons, mlib, rate) =
    ( Extensions.Recursion.schedulable_sharing_one_bus cdfg cons mlib ~rate,
      Extensions.Recursion.schedulable_with_two_buses cdfg cons mlib ~rate )
  in
  Alcotest.(check (pair bool bool)) "yes-instance" (true, true) (go yes);
  Alcotest.(check (pair bool bool)) "no-instance" (false, true) (go no)

let test_thm71_parallel_tasks () =
  (* Two independent tasks on two machines fit a deadline of 1. *)
  let i =
    Extensions.Recursion.theorem71_instance ~tasks:2 ~precedence:[] ~machines:2
      ~deadline:1
  in
  let cdfg, cons, mlib, rate = i in
  checkb "parallel yes-instance" true
    (Extensions.Recursion.schedulable_sharing_one_bus cdfg cons mlib ~rate)

let test_cond_share_groups () =
  let d = Benchmarks.cond_demo () in
  let groups =
    Extensions.Cond_share.run d.Benchmarks.cdfg d.Benchmarks.mlib ~rate:2
      ~pipe_length:8 ()
  in
  let cdfg = d.Benchmarks.cdfg in
  (* Groups only merge mutually exclusive operations. *)
  List.iter
    (fun (g : Extensions.Cond_share.group) ->
      List.iter
        (fun w1 ->
          List.iter
            (fun w2 ->
              if w1 <> w2 then
                checkb "mutually exclusive" true
                  (Cdfg.mutually_exclusive cdfg w1 w2))
            g.members)
        g.members)
    groups;
  (* The then/else transfers between the same chips merge, saving pins. *)
  checkb "some sharing found" true
    (List.exists (fun (g : Extensions.Cond_share.group) -> List.length g.members > 1) groups);
  checkb "pins saved" true (Extensions.Cond_share.pins_saved cdfg groups > 0)

let test_tdm_transform () =
  let d = Benchmarks.ar_general () in
  let cdfg = d.Benchmarks.cdfg in
  let cdfg' =
    Extensions.Tdm.apply cdfg ~value:"a24" ~dst:3 ~parts:2 ~split_optype:"split"
      ~merge_optype:"merge"
  in
  (* One io replaced by two + split + merge = +3 nodes. *)
  checki "node delta" (Cdfg.n_ops cdfg + 3) (Cdfg.n_ops cdfg');
  (* Part transfers carry half the width. *)
  let parts =
    List.filter
      (fun w ->
        Cdfg.is_io cdfg' w
        && Cdfg.io_dst cdfg' w = 3
        && Cdfg.io_width cdfg' w = 8)
      (Cdfg.ops cdfg')
  in
  checkb "two 8-bit parts" true (List.length parts >= 2);
  (* Still acyclic and schedulable with split/merge modules. *)
  let mlib =
    Module_lib.create ~stage_ns:250 ~io_delay_ns:10
      [ ("add", 30); ("mul", 210); ("split", 5); ("merge", 5) ]
  in
  let base = Constraints.min_fus cdfg' mlib ~rate:4 in
  let cons =
    Constraints.create ~n_partitions:3
      ~pins:[ (0, 200); (1, 200); (2, 200); (3, 200) ]
      ~fus:base
  in
  match Mcs_sched.List_sched.run cdfg' mlib cons ~rate:4 () with
  | Ok s -> checkb "tdm cdfg schedulable" true (Mcs_sched.Schedule.verify s = Ok ())
  | Error f -> Alcotest.fail f.Mcs_sched.List_sched.reason

let test_tdm_primary_input () =
  let d = Benchmarks.ar_general () in
  (* Primary input: no split node, parts arrive pre-split. *)
  let cdfg' =
    Extensions.Tdm.apply d.Benchmarks.cdfg ~value:"Ic" ~dst:1 ~parts:2
      ~split_optype:"split" ~merge_optype:"merge"
  in
  checki "only merge added" (Cdfg.n_ops d.Benchmarks.cdfg + 2) (Cdfg.n_ops cdfg')

let test_multicycle_bounds () =
  checki "eq 7.5 exact" 1 (Extensions.Multicycle.lower_bound ~ops:3 ~rate:6 ~cycles:2);
  checki "eq 7.5 tight" 2 (Extensions.Multicycle.lower_bound ~ops:4 ~rate:6 ~cycles:2);
  checki "eq 7.5 floor matters" 3
    (Extensions.Multicycle.lower_bound ~ops:3 ~rate:5 ~cycles:4);
  checkb "cycles > rate rejected" true
    (try
       ignore (Extensions.Multicycle.lower_bound ~ops:1 ~rate:1 ~cycles:2);
       false
     with Invalid_argument _ -> true)

let test_fragmentation () =
  Alcotest.(check (pair bool bool))
    "bad fails, good fits" (false, true)
    (Extensions.Multicycle.fragmentation_demo ())

let base_tests =
    [
      Alcotest.test_case "simple partitioning recognized" `Quick test_is_simple;
      Alcotest.test_case "three drivees violate Def 3.2" `Quick test_simple_three_drivees;
      Alcotest.test_case "shared driver violates Def 3.2" `Quick test_simple_shared_driver_violation;
      Alcotest.test_case "pin ILP feasible at paper budgets" `Quick test_pin_ilp_feasible_baseline;
      Alcotest.test_case "pin ILP infeasible when tight" `Quick test_pin_ilp_infeasible_when_tight;
      Alcotest.test_case "pin ILP rejects overfull groups" `Quick test_pin_ilp_detects_bad_fixing;
      Alcotest.test_case "pin ILP: Gomory = branch&bound" `Slow test_pin_ilp_gomory_agrees;
      Alcotest.test_case "chapter 3 flow" `Quick test_ch3_flow;
      Alcotest.test_case "chapter 3 rejects general partitionings" `Quick test_ch3_rejects_general;
      Alcotest.test_case "Theorem 3.1 check catches conflicts" `Quick test_theorem31_check_catches_conflicts;
      Alcotest.test_case "chapter 4 flow (AR, all rates/modes)" `Quick test_ch4_flow_all_rates;
      Alcotest.test_case "bidirectional ports save pins" `Quick test_ch4_bidir_fewer_pins;
      Alcotest.test_case "chapter 4 flow (EWF)" `Quick test_ch4_ewf;
      Alcotest.test_case "chapter 5 cliques valid" `Quick test_ch5_cliques_valid;
      Alcotest.test_case "chapter 5 weight function" `Quick test_ch5_weight_function;
      Alcotest.test_case "chapter 5 handles EWF rate 5" `Quick test_ch5_ewf_rate5;
      Alcotest.test_case "chapter 6 flow (AR)" `Quick test_ch6_ar;
      Alcotest.test_case "chapter 6 demo needs sharing" `Quick test_ch6_demo_needs_sharing;
      Alcotest.test_case "chapter 6 sub-slot allocation" `Quick test_ch6_allocation_no_half_conflicts;
      Alcotest.test_case "Theorem 7.1 reduction" `Quick test_thm71_equivalence;
      Alcotest.test_case "Theorem 7.1 parallel tasks" `Quick test_thm71_parallel_tasks;
      Alcotest.test_case "conditional I/O sharing" `Quick test_cond_share_groups;
      Alcotest.test_case "TDM transform" `Quick test_tdm_transform;
      Alcotest.test_case "TDM on primary inputs" `Quick test_tdm_primary_input;
      Alcotest.test_case "Eq. 7.5 lower bounds" `Quick test_multicycle_bounds;
      Alcotest.test_case "fragmentation demo" `Quick test_fragmentation;
    ]

(* --- Improvement by postponement/restart (Improve) --- *)

let test_improve_never_worse () =
  let d = Benchmarks.ar_general () in
  List.iter
    (fun rate ->
      let cons = Benchmarks.constraints_for d ~rate in
      let base =
        match
          Pre_connect.run d.Benchmarks.cdfg d.Benchmarks.mlib cons ~rate
            ~mode:Mcs_connect.Connection.Unidir ()
        with
        | Ok r -> Mcs_sched.Schedule.pipe_length r.schedule
        | Error m -> Alcotest.fail m
      in
      match
        Improve.pre_connect d.Benchmarks.cdfg d.Benchmarks.mlib cons ~rate
          ~mode:Mcs_connect.Connection.Unidir ()
      with
      | Error m -> Alcotest.fail m
      | Ok r ->
          checkb "valid" true (Mcs_sched.Schedule.verify r.schedule = Ok ());
          checkb
            (Printf.sprintf "rate %d not worse" rate)
            true
            (Mcs_sched.Schedule.pipe_length r.schedule <= base))
    [ 3; 4 ]

let test_improve_finds_shorter_pipe () =
  (* At rate 3 the perturbations reliably beat the plain greedy run. *)
  let d = Benchmarks.ar_general () in
  let cons = Benchmarks.constraints_for d ~rate:3 in
  match
    ( Pre_connect.run d.Benchmarks.cdfg d.Benchmarks.mlib cons ~rate:3
        ~mode:Mcs_connect.Connection.Unidir (),
      Improve.pre_connect d.Benchmarks.cdfg d.Benchmarks.mlib cons ~rate:3
        ~mode:Mcs_connect.Connection.Unidir () )
  with
  | Ok base, Ok better ->
      checkb "strictly better on this instance" true
        (Mcs_sched.Schedule.pipe_length better.schedule
        < Mcs_sched.Schedule.pipe_length base.schedule)
  | _ -> Alcotest.fail "flows failed"

let test_dot_export () =
  let d = Benchmarks.ar_simple () in
  let s = Format.asprintf "%a" Dot.pp d.Benchmarks.cdfg in
  let contains needle =
    let nl = String.length needle and hl = String.length s in
    let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "digraph" true (contains "digraph");
  checkb "clusters" true (contains "cluster_p4");
  checkb "io node" true (contains "X1");
  let e = Benchmarks.elliptic () in
  let s2 = Format.asprintf "%a" Dot.pp e.Benchmarks.cdfg in
  let contains2 needle =
    let nl = String.length needle and hl = String.length s2 in
    let rec go i = i + nl <= hl && (String.sub s2 i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "recursive edges dashed" true (contains2 "style=dashed")

let extra_tests =
  [
    Alcotest.test_case "Improve never worsens the pipe" `Slow test_improve_never_worse;
    Alcotest.test_case "Improve beats greedy at rate 3" `Slow test_improve_finds_shorter_pipe;
    Alcotest.test_case "Graphviz export" `Quick test_dot_export;
  ]

let suite = ("core", base_tests @ extra_tests)

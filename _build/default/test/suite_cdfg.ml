(* Tests for the CDFG layer: builder, netlist elaboration, module library,
   constraints, timing, and the benchmark designs. *)

open Mcs_cdfg

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Builder --- *)

let tiny () =
  let b = Cdfg.Builder.create ~n_partitions:2 in
  let i1 = Cdfg.Builder.io b ~name:"I1" ~src:0 ~dst:1 ~width:8 "v_in" in
  let a = Cdfg.Builder.func b ~name:"a" ~partition:1 "add" in
  let x = Cdfg.Builder.io b ~name:"X" ~src:1 ~dst:2 ~width:8 "v_a" in
  let m = Cdfg.Builder.func b ~name:"m" ~partition:2 "mul" in
  let o = Cdfg.Builder.io b ~name:"O" ~src:2 ~dst:0 ~width:8 "v_m" in
  Cdfg.Builder.dep b i1 a;
  Cdfg.Builder.dep b a x;
  Cdfg.Builder.dep b x m;
  Cdfg.Builder.dep b m o;
  (Cdfg.Builder.finish b, i1, a, x, m, o)

let test_builder_basics () =
  let cdfg, i1, a, x, _, _ = tiny () in
  checki "ops" 5 (Cdfg.n_ops cdfg);
  checkb "i1 is io" true (Cdfg.is_io cdfg i1);
  checkb "a is func" false (Cdfg.is_io cdfg a);
  checki "x src" 1 (Cdfg.io_src cdfg x);
  checki "x dst" 2 (Cdfg.io_dst cdfg x);
  checki "x width" 8 (Cdfg.io_width cdfg x);
  Alcotest.(check string) "a type" "add" (Cdfg.func_optype cdfg a);
  checki "a partition" 1 (Cdfg.func_partition cdfg a);
  Alcotest.(check string) "value name" "v_a" (Cdfg.io_value cdfg x)

let test_builder_rejects_cycle () =
  let b = Cdfg.Builder.create ~n_partitions:1 in
  let x = Cdfg.Builder.func b ~partition:1 "add" in
  let y = Cdfg.Builder.func b ~partition:1 "add" in
  Cdfg.Builder.dep b x y;
  Cdfg.Builder.dep b y x;
  Alcotest.check_raises "cyclic"
    (Invalid_argument "Cdfg: degree-0 dependence graph is cyclic") (fun () ->
      ignore (Cdfg.Builder.finish b))

let test_builder_recursive_cycle_allowed () =
  let b = Cdfg.Builder.create ~n_partitions:1 in
  let x = Cdfg.Builder.func b ~partition:1 "add" in
  let y = Cdfg.Builder.func b ~partition:1 "add" in
  Cdfg.Builder.dep b x y;
  Cdfg.Builder.dep b ~degree:1 y x;
  let cdfg = Cdfg.Builder.finish b in
  checki "one recursive edge" 1 (List.length (Cdfg.recursive_edges cdfg))

let test_builder_validation () =
  let b = Cdfg.Builder.create ~n_partitions:1 in
  Alcotest.check_raises "src=dst"
    (Invalid_argument "Cdfg: I/O operation with src = dst") (fun () ->
      ignore (Cdfg.Builder.io b ~src:1 ~dst:1 ~width:8 "v"));
  Alcotest.check_raises "bad partition"
    (Invalid_argument "Cdfg: partition id out of range") (fun () ->
      ignore (Cdfg.Builder.func b ~partition:2 "add"))

let test_queries () =
  let cdfg, _, _, _, _, _ = tiny () in
  checki "io ops" 3 (List.length (Cdfg.io_ops cdfg));
  checki "func ops" 2 (List.length (Cdfg.func_ops cdfg));
  checki "p1 funcs" 1 (List.length (Cdfg.func_ops_of_partition cdfg 1));
  checki "p1 inputs" 1 (List.length (Cdfg.io_inputs_of_partition cdfg 1));
  checki "p1 outputs" 1 (List.length (Cdfg.io_outputs_of_partition cdfg 1));
  Alcotest.(check (list string)) "values of p2" [ "v_m" ] (Cdfg.values_output_by cdfg 2);
  Alcotest.(check (list int)) "p1 drives" [ 2 ] (Cdfg.drives cdfg 1);
  Alcotest.(check (list int)) "p2 driven by" [ 1 ] (Cdfg.driven_by cdfg 2)

let test_mutual_exclusion () =
  let b = Cdfg.Builder.create ~n_partitions:1 in
  let t = Cdfg.Builder.func b ~guards:[ { Types.cond = 0; arm = true } ] ~partition:1 "add" in
  let e = Cdfg.Builder.func b ~guards:[ { Types.cond = 0; arm = false } ] ~partition:1 "add" in
  let u = Cdfg.Builder.func b ~partition:1 "add" in
  let cdfg = Cdfg.Builder.finish b in
  checkb "t excl e" true (Cdfg.mutually_exclusive cdfg t e);
  checkb "t not excl u" false (Cdfg.mutually_exclusive cdfg t u);
  checkb "t not excl t" false (Cdfg.mutually_exclusive cdfg t t)

(* --- Netlist --- *)

let test_netlist_auto_io () =
  let n = Netlist.create ~default_width:8 ~n_partitions:2 () in
  Netlist.input n ~width:8 ~dst:1 "a";
  Netlist.op n ~name:"f" ~optype:"add" ~partition:1 ~args:[ "a"; "a" ];
  Netlist.op n ~name:"g" ~optype:"add" ~partition:2 ~args:[ "f"; "f" ];
  Netlist.output n ~width:8 "g";
  let cdfg = Netlist.elaborate n in
  (* a (input) + transfer f->2 + output = 3 I/O ops. *)
  checki "auto io insertion" 3 (List.length (Cdfg.io_ops cdfg));
  (* g consumes f twice through ONE shared transfer node. *)
  let xfer =
    List.find
      (fun w -> Cdfg.is_io cdfg w && Cdfg.io_dst cdfg w = 2)
      (Cdfg.ops cdfg)
  in
  checki "shared transfer, two reads" 2 (List.length (Cdfg.succs cdfg xfer))

let test_netlist_multi_destination () =
  let n = Netlist.create ~default_width:8 ~n_partitions:3 () in
  Netlist.op n ~name:"src" ~optype:"add" ~partition:1 ~args:[];
  Netlist.op n ~name:"c2" ~optype:"add" ~partition:2 ~args:[ "src" ];
  Netlist.op n ~name:"c3" ~optype:"add" ~partition:3 ~args:[ "src" ];
  let cdfg = Netlist.elaborate n in
  let xfers = Cdfg.io_ops_of_value cdfg "src" in
  checki "one transfer per destination" 2 (List.length xfers)

let test_netlist_unknown_operand () =
  let n = Netlist.create ~n_partitions:1 () in
  Netlist.op n ~name:"f" ~optype:"add" ~partition:1 ~args:[ "ghost" ];
  checkb "raises" true
    (try
       ignore (Netlist.elaborate n);
       false
     with Invalid_argument _ -> true)

let test_netlist_rec_dep_cross () =
  let n = Netlist.create ~n_partitions:2 () in
  Netlist.op n ~name:"p" ~optype:"add" ~partition:1 ~args:[];
  Netlist.op n ~name:"c" ~optype:"add" ~partition:2 ~args:[];
  Netlist.rec_dep n ~src:"p" ~dst:"c" ~degree:3;
  let cdfg = Netlist.elaborate n in
  checki "io for recursive transfer" 1 (List.length (Cdfg.io_ops cdfg));
  match Cdfg.recursive_edges cdfg with
  | [ e ] ->
      checki "degree" 3 e.Types.degree;
      checkb "edge leaves the io node" true (Cdfg.is_io cdfg e.Types.e_src)
  | _ -> Alcotest.fail "expected exactly one recursive edge"

(* --- Module library --- *)

let test_module_lib () =
  let m = Module_lib.create ~stage_ns:250 ~io_delay_ns:10 [ ("add", 30); ("mul", 210) ] in
  checki "add cycles" 1 (Module_lib.cycles m "add");
  checki "mul cycles" 1 (Module_lib.cycles m "mul");
  checkb "chainable" true (Module_lib.chainable m "add");
  let m2 = Module_lib.create ~stage_ns:100 ~io_delay_ns:95 [ ("mul", 200) ] in
  checki "2-cycle mul" 2 (Module_lib.cycles m2 "mul");
  checkb "not chainable" false (Module_lib.chainable m2 "mul")

let test_module_lib_validation () =
  checkb "duplicate rejected" true
    (try
       ignore (Module_lib.create ~stage_ns:10 ~io_delay_ns:5 [ ("a", 1); ("a", 2) ]);
       false
     with Invalid_argument _ -> true);
  checkb "io > stage rejected" true
    (try
       ignore (Module_lib.create ~stage_ns:10 ~io_delay_ns:11 []);
       false
     with Invalid_argument _ -> true)

(* --- Constraints --- *)

let test_constraints () =
  let c =
    Constraints.create ~n_partitions:2
      ~pins:[ (0, 100); (1, 48) ]
      ~fus:[ (1, "add", 2); (2, "mul", 1) ]
  in
  checki "pins 0" 100 (Constraints.pins c 0);
  checki "pins 2 default" 0 (Constraints.pins c 2);
  checki "fu listed" 2 (Constraints.fu_count c ~partition:1 ~optype:"add");
  checki "fu unlisted" 0 (Constraints.fu_count c ~partition:1 ~optype:"mul");
  let c' = Constraints.with_pins c [ (2, 32) ] in
  checki "with_pins" 32 (Constraints.pins c' 2);
  checki "original untouched" 0 (Constraints.pins c 2)

let test_min_fus () =
  let d = Benchmarks.elliptic () in
  let fus = Constraints.min_fus d.Benchmarks.cdfg d.Benchmarks.mlib ~rate:6 in
  (* P1 has 6 adds -> 1 adder at rate 6; 2 two-cycle muls -> 1 multiplier
     (3 slots per FU). *)
  checki "p1 adders" 1 (List.assoc 1 (List.filter_map (fun (p, ty, n) -> if ty = "add" then Some (p, n) else None) fus) );
  checki "p1 muls" 1 (List.assoc 1 (List.filter_map (fun (p, ty, n) -> if ty = "mul" then Some (p, n) else None) fus));
  checkb "rate below cycles rejected" true
    (try
       ignore (Constraints.min_fus d.Benchmarks.cdfg d.Benchmarks.mlib ~rate:1);
       false
     with Invalid_argument _ -> true)

(* --- Timing --- *)

let test_asap_chaining () =
  let d = Benchmarks.ar_simple () in
  let asap = Timing.asap d.Benchmarks.cdfg d.Benchmarks.mlib in
  (* Critical path of the AR network is 6 control steps with chaining. *)
  checki "critical path" 6
    (Timing.critical_path_csteps d.Benchmarks.cdfg d.Benchmarks.mlib);
  (* Primary inputs start at step 0. *)
  List.iter
    (fun w ->
      if Cdfg.io_src d.Benchmarks.cdfg w = 0 then
        checki (Cdfg.name d.Benchmarks.cdfg w) 0 asap.(w).Timing.cstep)
    (Cdfg.io_ops d.Benchmarks.cdfg)

let test_alap () =
  let d = Benchmarks.ar_simple () in
  let cp = Timing.critical_path_csteps d.Benchmarks.cdfg d.Benchmarks.mlib in
  checkb "too short" true
    (Timing.alap d.Benchmarks.cdfg d.Benchmarks.mlib ~pipe_length:(cp - 1) = None);
  match Timing.alap d.Benchmarks.cdfg d.Benchmarks.mlib ~pipe_length:(cp + 2) with
  | None -> Alcotest.fail "alap failed"
  | Some alap ->
      let asap = Timing.asap d.Benchmarks.cdfg d.Benchmarks.mlib in
      List.iter
        (fun op ->
          checkb "asap <= alap" true (asap.(op).Timing.cstep <= alap.(op).Timing.cstep))
        (Cdfg.ops d.Benchmarks.cdfg)

let test_min_initiation_rate () =
  let d = Benchmarks.elliptic () in
  checki "elliptic min rate 5" 5
    (Timing.min_initiation_rate d.Benchmarks.cdfg d.Benchmarks.mlib);
  let a = Benchmarks.ar_simple () in
  checki "ar min rate 1" 1
    (Timing.min_initiation_rate a.Benchmarks.cdfg a.Benchmarks.mlib)

let test_max_time_constraints () =
  let d = Benchmarks.elliptic () in
  let cs = Timing.max_time_constraints d.Benchmarks.cdfg d.Benchmarks.mlib ~rate:6 in
  checki "four recursive edges" 4 (List.length cs);
  List.iter
    (fun (_, _, bound) -> checkb "bound 4*6-1" true (bound = 23))
    cs

(* --- Benchmarks --- *)

let test_ar_simple_shape () =
  let d = Benchmarks.ar_simple () in
  let c = d.Benchmarks.cdfg in
  checki "func ops" 28 (List.length (Cdfg.func_ops c));
  checki "muls" 16
    (List.length (List.filter (fun o -> Cdfg.func_optype c o = "mul") (Cdfg.func_ops c)));
  checki "io ops" 34 (List.length (Cdfg.io_ops c));
  (* The paper's partition populations. *)
  List.iter
    (fun (p, ins, outs) ->
      checki (Printf.sprintf "P%d inputs" p) ins
        (List.length (Cdfg.io_inputs_of_partition c p));
      checki (Printf.sprintf "P%d outputs" p) outs
        (List.length (Cdfg.io_outputs_of_partition c p)))
    [ (1, 10, 2); (2, 10, 2); (3, 6, 2); (4, 6, 2) ]

let test_ar_general_shape () =
  let d = Benchmarks.ar_general () in
  let c = d.Benchmarks.cdfg in
  checki "partitions" 3 (Cdfg.n_partitions c);
  checki "func ops" 28 (List.length (Cdfg.func_ops c));
  checki "io ops" 34 (List.length (Cdfg.io_ops c));
  (* Interchip transfers are X1..X6. *)
  let xs =
    List.filter
      (fun w -> Cdfg.io_src c w <> 0 && Cdfg.io_dst c w <> 0)
      (Cdfg.io_ops c)
  in
  checki "six interchip transfers" 6 (List.length xs)

let test_elliptic_shape () =
  let d = Benchmarks.elliptic () in
  let c = d.Benchmarks.cdfg in
  checki "partitions" 5 (Cdfg.n_partitions c);
  checki "adds" 26
    (List.length (List.filter (fun o -> Cdfg.func_optype c o = "add") (Cdfg.func_ops c)));
  checki "muls" 8
    (List.length (List.filter (fun o -> Cdfg.func_optype c o = "mul") (Cdfg.func_ops c)));
  (* Ia and Ib transfer the same value to two chips. *)
  checki "shared input value" 2 (List.length (Cdfg.io_ops_of_value c "in"));
  (* All values are 16 bits. *)
  List.iter
    (fun w -> checki "16-bit" 16 (Cdfg.io_width c w))
    (Cdfg.io_ops c)

let test_elliptic_critical_loop () =
  let d = Benchmarks.elliptic () in
  (* The degree-4 loop totals 20 cycles, hence minimum rate 5 — and rate 4
     must be infeasible. *)
  checki "min rate" 5 (Timing.min_initiation_rate d.Benchmarks.cdfg d.Benchmarks.mlib)


let test_check_locality () =
  (* All benchmarks are locality-correct by construction. *)
  List.iter
    (fun (d : Benchmarks.design) ->
      checkb d.Benchmarks.tag true (Cdfg.check_locality d.Benchmarks.cdfg = Ok ()))
    [ Benchmarks.ar_simple (); Benchmarks.ar_general (); Benchmarks.elliptic () ];
  (* A raw cross-chip dependence is flagged. *)
  let b = Cdfg.Builder.create ~n_partitions:2 in
  let a = Cdfg.Builder.func b ~partition:1 "add" in
  let c = Cdfg.Builder.func b ~partition:2 "add" in
  Cdfg.Builder.dep b a c;
  let broken = Cdfg.Builder.finish b in
  checkb "cross-chip edge flagged" true (Cdfg.check_locality broken <> Ok ());
  (* A transfer with a mismatched source is flagged too. *)
  let b2 = Cdfg.Builder.create ~n_partitions:2 in
  let a2 = Cdfg.Builder.func b2 ~partition:1 "add" in
  let x2 = Cdfg.Builder.io b2 ~src:2 ~dst:1 ~width:8 "v" in
  Cdfg.Builder.dep b2 a2 x2;
  let broken2 = Cdfg.Builder.finish b2 in
  checkb "wrong-source transfer flagged" true
    (Cdfg.check_locality broken2 <> Ok ())

let test_random_designs_wellformed () =
  List.iter
    (fun seed ->
      let cdfg =
        Random_design.generate ~seed ~n_partitions:3 ~n_ops:15 ~recursive:1 ()
      in
      checkb "locality" true (Cdfg.check_locality cdfg = Ok ());
      checkb "has output" true
        (List.exists (fun w -> Cdfg.io_dst cdfg w = 0) (Cdfg.io_ops cdfg));
      let simple =
        Random_design.generate_simple ~seed ~n_partitions:3 ~ops_per_chip:4 ()
      in
      checkb "generate_simple is simple" true
        (Mcs_core.Simple_part.is_simple simple))
    [ 1; 2; 3; 42; 99 ]

let suite =
  ( "cdfg",
    [
      Alcotest.test_case "builder basics" `Quick test_builder_basics;
      Alcotest.test_case "builder rejects degree-0 cycles" `Quick test_builder_rejects_cycle;
      Alcotest.test_case "recursive cycles allowed" `Quick test_builder_recursive_cycle_allowed;
      Alcotest.test_case "builder validation" `Quick test_builder_validation;
      Alcotest.test_case "partition queries" `Quick test_queries;
      Alcotest.test_case "mutual exclusion" `Quick test_mutual_exclusion;
      Alcotest.test_case "netlist auto I/O insertion" `Quick test_netlist_auto_io;
      Alcotest.test_case "netlist multi-destination values" `Quick test_netlist_multi_destination;
      Alcotest.test_case "netlist unknown operand" `Quick test_netlist_unknown_operand;
      Alcotest.test_case "netlist recursive cross-chip dep" `Quick test_netlist_rec_dep_cross;
      Alcotest.test_case "module library" `Quick test_module_lib;
      Alcotest.test_case "module library validation" `Quick test_module_lib_validation;
      Alcotest.test_case "constraints" `Quick test_constraints;
      Alcotest.test_case "minimum FU allocation (Eq. 7.5)" `Quick test_min_fus;
      Alcotest.test_case "ASAP with chaining" `Quick test_asap_chaining;
      Alcotest.test_case "ALAP windows" `Quick test_alap;
      Alcotest.test_case "minimum initiation rate" `Quick test_min_initiation_rate;
      Alcotest.test_case "recursive max-time constraints" `Quick test_max_time_constraints;
      Alcotest.test_case "AR simple partitioning shape" `Quick test_ar_simple_shape;
      Alcotest.test_case "AR general partitioning shape" `Quick test_ar_general_shape;
      Alcotest.test_case "elliptic filter shape" `Quick test_elliptic_shape;
      Alcotest.test_case "elliptic critical loop" `Quick test_elliptic_critical_loop;
      Alcotest.test_case "locality validation" `Quick test_check_locality;
      Alcotest.test_case "random designs well-formed" `Quick test_random_designs_wellformed;
    ] )

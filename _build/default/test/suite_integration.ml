(* End-to-end assertions on the paper's evaluation shapes (DESIGN.md's
   "expected shapes" list): these pin down the qualitative results every
   reproduction run must show. *)

open Mcs_cdfg
open Mcs_core
module C = Mcs_connect.Connection

let checkb = Alcotest.(check bool)

let total pins = Mcs_util.Listx.sum snd pins

let test_shape_bidir_saves_pins_everywhere () =
  List.iter
    (fun (d : Benchmarks.design) ->
      List.iter
        (fun rate ->
          match
            ( Pre_connect.run_design d ~rate ~mode:C.Unidir,
              Pre_connect.run_design d ~rate ~mode:C.Bidir )
          with
          | Ok uni, Ok bi ->
              checkb
                (Printf.sprintf "%s rate %d" d.Benchmarks.tag rate)
                true
                (total bi.pins <= total uni.pins)
          | _ -> () (* rates a mode cannot schedule are covered elsewhere *))
        d.Benchmarks.rates)
    [ Benchmarks.ar_general (); Benchmarks.elliptic () ]

let test_shape_ewf_rate5_list_fails_fds_succeeds () =
  let d = Benchmarks.elliptic () in
  let cons = Benchmarks.constraints_for d ~rate:5 in
  let list_ok =
    match
      Mcs_sched.List_sched.run d.Benchmarks.cdfg d.Benchmarks.mlib cons ~rate:5 ()
    with
    | Ok _ -> true
    | Error _ -> false
  in
  let fds_ok =
    match
      Mcs_sched.Fds.run d.Benchmarks.cdfg d.Benchmarks.mlib ~rate:5
        ~pipe_length:25 ()
    with
    | Ok s -> Mcs_sched.Schedule.verify s = Ok ()
    | Error _ -> false
  in
  checkb "greedy list scheduling fails at the minimum rate" false list_ok;
  checkb "FDS succeeds at the minimum rate" true fds_ok

let test_shape_rate_vs_pins_monotone () =
  (* A larger initiation rate gives every pin more slots, so the
     connection-first flow never needs more pins. *)
  let d = Benchmarks.ar_general () in
  let pins rate =
    match Pre_connect.run_design d ~rate ~mode:C.Unidir with
    | Ok r -> total r.pins
    | Error m -> Alcotest.fail m
  in
  let p3 = pins 3 and p4 = pins 4 and p5 = pins 5 in
  checkb "rate 4 <= rate 3" true (p4 <= p3);
  checkb "rate 5 <= rate 4" true (p5 <= p4)

let test_shape_sharing_never_needs_more_pins () =
  let d = Benchmarks.ar_general () in
  List.iter
    (fun rate ->
      match
        (Pre_connect.run_design d ~rate ~mode:C.Bidir, Subbus.run_design d ~rate)
      with
      | Ok plain, Ok shared ->
          checkb
            (Printf.sprintf "rate %d" rate)
            true
            (total shared.pins <= total plain.pins)
      | _ -> Alcotest.fail "flows failed")
    [ 4; 5 ]

let test_shape_min_rate_binding () =
  (* No flow may produce a valid schedule below the recursive-loop bound. *)
  let d = Benchmarks.elliptic () in
  checkb "rate 4 below the loop bound" true
    (Timing.min_initiation_rate d.Benchmarks.cdfg d.Benchmarks.mlib = 5);
  checkb "FDS refuses rate 4" true
    (match
       Mcs_sched.Fds.run d.Benchmarks.cdfg d.Benchmarks.mlib ~rate:4
         ~pipe_length:30 ()
     with
    | Error _ -> true
    | Ok _ -> false)

let test_shape_ch3_pins_match_paper () =
  (* The Chapter 3 run must land exactly on the paper's pin bundles:
     48/48/32/32 (6 resp. 4 bundles of 8 bits). *)
  let d = Benchmarks.ar_simple () in
  match Simple_part.run d ~rate:2 with
  | Error m -> Alcotest.fail m
  | Ok r ->
      Alcotest.(check (list (pair int int)))
        "pins per chip"
        [ (0, 112); (1, 48); (2, 48); (3, 32); (4, 32) ]
        r.pins_needed

let test_shape_every_flow_schedules_every_io_once () =
  let d = Benchmarks.ar_general () in
  match Pre_connect.run_design d ~rate:4 ~mode:C.Unidir with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let cdfg = d.Benchmarks.cdfg in
      List.iter
        (fun w ->
          checkb "scheduled" true (Mcs_sched.Schedule.is_scheduled r.schedule w))
        (Cdfg.ops cdfg)

let test_shape_dynamic_vs_static_documented () =
  (* Dynamic reassignment must at least match static whenever static
     fails; when both succeed the comparison is reported, not asserted
     (the paper's own caveat: "may not be valid for some cases"). *)
  let d = Benchmarks.elliptic () in
  match Pre_connect.run_design d ~rate:6 ~mode:C.Unidir with
  | Error m -> Alcotest.fail m
  | Ok r ->
      checkb "dynamic run schedules" true
        (Mcs_sched.Schedule.verify r.schedule = Ok ())

let suite =
  ( "integration",
    [
      Alcotest.test_case "bidirectional <= unidirectional pins" `Slow
        test_shape_bidir_saves_pins_everywhere;
      Alcotest.test_case "EWF rate 5: list fails, FDS succeeds" `Quick
        test_shape_ewf_rate5_list_fails_fds_succeeds;
      Alcotest.test_case "higher rate never needs more pins" `Quick
        test_shape_rate_vs_pins_monotone;
      Alcotest.test_case "sub-bus sharing never needs more pins" `Slow
        test_shape_sharing_never_needs_more_pins;
      Alcotest.test_case "recursive loop bounds the rate" `Quick
        test_shape_min_rate_binding;
      Alcotest.test_case "chapter 3 pins match the paper" `Quick
        test_shape_ch3_pins_match_paper;
      Alcotest.test_case "all operations scheduled exactly once" `Quick
        test_shape_every_flow_schedules_every_io_once;
      Alcotest.test_case "dynamic reassignment documented" `Quick
        test_shape_dynamic_vs_static_documented;
    ] )

let test_scaled_designs () =
  (* Larger instances stay schedulable, verified and functionally correct. *)
  let d = Benchmarks.ar_scaled ~sections:8 ~chips:4 in
  let rate = List.hd d.Benchmarks.rates in
  match Pre_connect.run_design d ~rate ~mode:C.Unidir with
  | Error m -> Alcotest.fail m
  | Ok r -> (
      checkb "valid" true (Mcs_sched.Schedule.verify r.schedule = Ok ());
      match
        Mcs_sim.Simulate.check_equivalent r.schedule
          ~bus_of:(fun op -> [ List.assoc op r.final_assignment ])
          ~bus_capable:(fun bus op ->
            Mcs_connect.Connection.capable r.connection d.Benchmarks.cdfg
              ~bus op)
          ~seed:77 ~instances:5
      with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)

let suite =
  let name, tests = suite in
  ( name,
    tests
    @ [ Alcotest.test_case "scaled lattice end to end" `Quick test_scaled_designs ] )

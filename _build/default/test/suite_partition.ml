(* Tests for the behavioural partitioning front end (the CHOP stand-in). *)

open Mcs_cdfg
open Mcs_core
module P = Partitioner

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A 12-op network with two tightly-coupled clusters joined by one value:
   a good partitioner should cut only that value. *)
let clustered () =
  let s = P.create () in
  P.input s ~width:8 "a";
  P.input s ~width:8 "b";
  (* Cluster 1. *)
  P.op s ~name:"c1" ~optype:"add" ~args:[ "a"; "b" ];
  P.op s ~name:"c2" ~optype:"add" ~args:[ "c1"; "a" ];
  P.op s ~name:"c3" ~optype:"mul" ~args:[ "c1"; "c2" ];
  P.op s ~name:"c4" ~optype:"add" ~args:[ "c2"; "c3" ];
  P.op s ~name:"c5" ~optype:"add" ~args:[ "c3"; "c4" ];
  P.op s ~name:"bridge" ~optype:"add" ~args:[ "c4"; "c5" ];
  (* Cluster 2 hangs entirely off the bridge. *)
  P.op s ~name:"d1" ~optype:"add" ~args:[ "bridge"; "bridge" ];
  P.op s ~name:"d2" ~optype:"mul" ~args:[ "d1"; "bridge" ];
  P.op s ~name:"d3" ~optype:"add" ~args:[ "d1"; "d2" ];
  P.op s ~name:"d4" ~optype:"add" ~args:[ "d2"; "d3" ];
  P.op s ~name:"d5" ~optype:"add" ~args:[ "d3"; "d4" ];
  P.op s ~name:"d6" ~optype:"add" ~args:[ "d4"; "d5" ];
  P.output s ~width:8 "d6";
  s

let test_partition_balances () =
  let s = clustered () in
  let assign = P.partition s ~n_partitions:2 () in
  checki "all ops assigned" 12 (List.length assign);
  let count p = List.length (List.filter (fun (_, q) -> q = p) assign) in
  checkb "both chips used" true (count 1 > 0 && count 2 > 0);
  checkb "balanced within cap" true (abs (count 1 - count 2) <= 3)

let test_partition_finds_the_bridge () =
  let s = clustered () in
  let assign = P.partition s ~n_partitions:2 () in
  let lookup n = List.assoc n assign in
  (* The clusters must not be interleaved: c-ops together, d-ops together
     (one of them may host the bridge). *)
  let homes prefix =
    List.sort_uniq compare
      (List.filter_map
         (fun (n, p) ->
           if String.length n >= 1 && n.[0] = prefix then Some p else None)
         assign)
  in
  checki "c-cluster on one chip" 1 (List.length (homes 'c'));
  checki "d-cluster on one chip" 1 (List.length (homes 'd'));
  ignore lookup

let test_predicted_pins () =
  let s = clustered () in
  let assign = P.partition s ~n_partitions:2 () in
  let pins = P.predicted_pins s ~assign:(fun n -> List.assoc n assign) ~rate:2 in
  (* Outside world + two chips. *)
  checkb "chip count" true (List.length pins >= 2);
  List.iter (fun (_, n) -> checkb "nonnegative" true (n >= 0)) pins

let test_elaborate_preserves_ops () =
  let s = clustered () in
  let assign = P.partition s ~n_partitions:2 () in
  let cdfg = P.elaborate s ~assign:(fun n -> List.assoc n assign) in
  checki "func ops preserved" 12 (List.length (Cdfg.func_ops cdfg));
  (* A single bridge value should cross: exactly one interchip transfer. *)
  let xfers =
    List.filter
      (fun w -> Cdfg.io_src cdfg w <> 0 && Cdfg.io_dst cdfg w <> 0)
      (Cdfg.io_ops cdfg)
  in
  checkb "few transfers" true (List.length xfers <= 2)

let test_end_to_end_partition_flow () =
  (* Partition, elaborate, synthesize, and check functional equivalence. *)
  let s = clustered () in
  let assign = P.partition s ~n_partitions:2 () in
  let cdfg = P.elaborate s ~assign:(fun n -> List.assoc n assign) in
  let mlib =
    Module_lib.create ~stage_ns:250 ~io_delay_ns:10 [ ("add", 30); ("mul", 210) ]
  in
  let rate = 2 in
  let cons =
    Constraints.create
      ~n_partitions:(Cdfg.n_partitions cdfg)
      ~pins:(List.map (fun p -> (p, 64)) (Mcs_util.Listx.range 0 (Cdfg.n_partitions cdfg + 1)))
      ~fus:(Constraints.min_fus cdfg mlib ~rate)
  in
  match Pre_connect.run cdfg mlib cons ~rate ~mode:Mcs_connect.Connection.Unidir () with
  | Error m -> Alcotest.fail m
  | Ok r ->
      checkb "schedule valid" true (Mcs_sched.Schedule.verify r.schedule = Ok ());
      (match
         Mcs_sim.Simulate.check_equivalent r.schedule
           ~bus_of:(fun op -> [ List.assoc op r.final_assignment ])
           ~bus_capable:(fun bus op ->
             Mcs_connect.Connection.capable r.connection cdfg ~bus op)
           ~seed:9 ~instances:6
       with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)

let test_partition_respects_cap () =
  let s = clustered () in
  let assign = P.partition s ~n_partitions:3 ~max_ops_per_chip:5 () in
  List.iter
    (fun p ->
      checkb "cap respected" true
        (List.length (List.filter (fun (_, q) -> q = p) assign) <= 5))
    [ 1; 2; 3 ]

let suite =
  ( "partition",
    [
      Alcotest.test_case "balances load" `Quick test_partition_balances;
      Alcotest.test_case "keeps clusters together" `Quick test_partition_finds_the_bridge;
      Alcotest.test_case "predicted pins" `Quick test_predicted_pins;
      Alcotest.test_case "elaboration preserves operations" `Quick test_elaborate_preserves_ops;
      Alcotest.test_case "partition -> synthesize -> simulate" `Quick test_end_to_end_partition_flow;
      Alcotest.test_case "operation capacity respected" `Quick test_partition_respects_cap;
    ] )

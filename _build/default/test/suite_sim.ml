(* Functional simulation: the synthesized multi-chip machine must compute
   exactly what the CDFG denotes, under the hardware invariants (bus
   exclusivity, port widths, register availability). *)

open Mcs_cdfg
open Mcs_core
module Sim = Mcs_sim.Simulate
module C = Mcs_connect.Connection

let checkb = Alcotest.(check bool)

let ok_or_fail = function
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* Chapter 3's Theorem 3.1 bundles are per-end and conflict-freedom was
   checked structurally, so for simulation we give every transfer its own
   abstract slot keyed by (src, dst, group availability): the paper
   guarantees physical wiring exists; here we check the *dataflow*. *)
let test_ch3_functional () =
  let d = Benchmarks.ar_simple () in
  match Simple_part.run d ~rate:2 with
  | Error m -> Alcotest.fail m
  | Ok r ->
      ok_or_fail
        (Sim.check_equivalent r.schedule
           ~bus_of:(fun op -> [ op ])
           ~bus_capable:(fun _ _ -> true)
           ~seed:7 ~instances:6)

let check_ch4 (d : Benchmarks.design) ~rate ~mode =
  match Pre_connect.run_design d ~rate ~mode with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let cdfg = d.Benchmarks.cdfg in
      ok_or_fail
        (Sim.check_equivalent r.schedule
           ~bus_of:(fun op -> [ List.assoc op r.final_assignment ])
           ~bus_capable:(fun bus op -> C.capable r.connection cdfg ~bus op)
           ~seed:42 ~instances:8)

let test_ch4_ar_functional () =
  let d = Benchmarks.ar_general () in
  List.iter
    (fun rate ->
      check_ch4 d ~rate ~mode:C.Unidir;
      check_ch4 d ~rate ~mode:C.Bidir)
    [ 3; 4; 5 ]

let test_ch4_ewf_functional () =
  let d = Benchmarks.elliptic () in
  List.iter (fun rate -> check_ch4 d ~rate ~mode:C.Unidir) [ 6; 7 ]

let test_ch5_functional () =
  let d = Benchmarks.ar_general () in
  match Post_connect.run_design d ~rate:4 ~pipe_length:9 ~mode:C.Bidir with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let cdfg = d.Benchmarks.cdfg in
      ok_or_fail
        (Sim.check_equivalent r.schedule
           ~bus_of:(fun op -> [ List.assoc op r.assignment ])
           ~bus_capable:(fun bus op -> C.capable r.connection cdfg ~bus op)
           ~seed:3 ~instances:8)

let subbus_slots (t : Subbus.t) op =
  let bus, slice = List.assoc op t.Subbus.final_assignment in
  match slice with
  | Subbus.Lo -> [ 2 * bus ]
  | Subbus.Hi -> [ (2 * bus) + 1 ]
  | Subbus.Whole -> [ 2 * bus; (2 * bus) + 1 ]

let subbus_capable (d : Benchmarks.design) (t : Subbus.t) slot op =
  let cdfg = d.Benchmarks.cdfg in
  let rb = List.nth t.Subbus.real_buses (slot / 2) in
  let _, slice = List.assoc op t.Subbus.final_assignment in
  let width = Cdfg.io_width cdfg op in
  let port p = Option.value ~default:0 (List.assoc_opt p rb.Subbus.ports) in
  let need =
    (* A high-slice transfer needs its ports to span the low slice first; a
       whole-bus transfer occupies the line prefix of its own width. *)
    match (rb.Subbus.split_at, slice) with
    | Some l, Subbus.Hi -> l + width
    | _ -> width
  in
  width <= rb.Subbus.width
  && port (Cdfg.io_src cdfg op) >= need
  && port (Cdfg.io_dst cdfg op) >= need

let test_ch6_functional () =
  List.iter
    (fun (d, rate) ->
      match Subbus.run_design d ~rate with
      | Error m -> Alcotest.fail m
      | Ok t ->
          ok_or_fail
            (Sim.check_equivalent t.schedule ~bus_of:(subbus_slots t)
               ~bus_capable:(subbus_capable d t) ~seed:11 ~instances:8))
    [ (Benchmarks.ar_general (), 4); (Benchmarks.subbus_demo (), 3) ]

let test_machine_detects_bus_conflict () =
  (* Collapse every bus to one slot: the AR filter's 34 transfers cannot
     all share one bus, so the simulator must report a conflict. *)
  let d = Benchmarks.ar_general () in
  match Pre_connect.run_design d ~rate:4 ~mode:C.Unidir with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let res =
        Sim.machine r.schedule
          ~bus_of:(fun _ -> [ 0 ])
          ~bus_capable:(fun _ _ -> true)
          ~inputs:(Sim.random_inputs ~seed:0) ~instances:6
      in
      checkb "conflict detected" true (Result.is_error res)

let test_machine_detects_narrow_port () =
  let d = Benchmarks.ar_general () in
  match Pre_connect.run_design d ~rate:4 ~mode:C.Unidir with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let res =
        Sim.machine r.schedule
          ~bus_of:(fun op -> [ List.assoc op r.final_assignment ])
          ~bus_capable:(fun _ _ -> false)
          ~inputs:(Sim.random_inputs ~seed:0) ~instances:2
      in
      checkb "width violation detected" true (Result.is_error res)

let test_machine_detects_early_read () =
  let d = Benchmarks.ar_simple () in
  let cons = Benchmarks.constraints_for d ~rate:2 in
  match
    Mcs_sched.List_sched.run d.Benchmarks.cdfg d.Benchmarks.mlib cons ~rate:2 ()
  with
  | Error _ -> Alcotest.fail "scheduling failed"
  | Ok s ->
      (* Pull one consumer before its producer and simulate. *)
      let { Types.e_src; e_dst; _ } =
        List.find
          (fun e ->
            e.Types.degree = 0
            && Mcs_sched.Schedule.cstep s e.Types.e_src >= 1
            && Mcs_sched.Schedule.cstep s e.Types.e_dst
               > Mcs_sched.Schedule.cstep s e.Types.e_src)
          (Cdfg.edges d.Benchmarks.cdfg)
      in
      Mcs_sched.Schedule.set s e_dst
        ~cstep:(Mcs_sched.Schedule.cstep s e_src - 1)
        ~finish_ns:0;
      let res =
        Sim.machine s
          ~bus_of:(fun op -> [ op ])
          ~bus_capable:(fun _ _ -> true)
          ~inputs:(Sim.random_inputs ~seed:0) ~instances:3
      in
      checkb "early read detected" true (Result.is_error res)

let test_reference_deterministic () =
  let d = Benchmarks.elliptic () in
  let t1 =
    Sim.reference d.Benchmarks.cdfg ~inputs:(Sim.random_inputs ~seed:5)
      ~instances:5
  in
  let t2 =
    Sim.reference d.Benchmarks.cdfg ~inputs:(Sim.random_inputs ~seed:5)
      ~instances:5
  in
  checkb "deterministic" true (t1 = t2);
  let t3 =
    Sim.reference d.Benchmarks.cdfg ~inputs:(Sim.random_inputs ~seed:6)
      ~instances:5
  in
  checkb "inputs matter" true (t1 <> t3)

(* Fuzzing: random partitioned designs through the whole Chapter 4 flow,
   then functional equivalence.  Soundness property: whenever the flow
   produces a result, the machine computes the reference trace. *)
let fuzz_once seed =
  let n_partitions = 2 + (seed mod 3) in
  let n_ops = 8 + (seed * 7 mod 17) in
  let cdfg =
    Random_design.generate ~seed ~n_partitions ~n_ops
      ~recursive:(seed mod 2) ()
  in
  let mlib = Random_design.mlib () in
  let rate = 2 + (seed mod 3) in
  match Constraints.min_fus cdfg mlib ~rate with
  | exception Invalid_argument _ -> true (* rate below a module's cycles *)
  | fus ->
      let pins =
        List.map
          (fun p ->
            ( p,
              Mcs_connect.Bounds.min_input_pins cdfg ~rate ~partition:p
              + Mcs_connect.Bounds.min_output_pins cdfg ~rate ~partition:p
              + 32 ))
          (Mcs_util.Listx.range 0 (n_partitions + 1))
      in
      let cons = Constraints.create ~n_partitions ~pins ~fus in
      (match Pre_connect.run cdfg mlib cons ~rate ~mode:C.Unidir () with
      | Error _ -> true (* flows may fail; soundness only *)
      | Ok r -> (
          match
            Sim.check_equivalent r.schedule
              ~bus_of:(fun op -> [ List.assoc op r.final_assignment ])
              ~bus_capable:(fun bus op -> C.capable r.connection cdfg ~bus op)
              ~seed ~instances:6
          with
          | Ok () -> true
          | Error m ->
              Printf.eprintf "fuzz seed %d: %s\n%!" seed m;
              false))

let prop_fuzz_ch4 =
  QCheck.Test.make ~name:"random designs: synthesize + simulate = reference"
    ~count:25
    QCheck.(int_range 1 10_000)
    fuzz_once

let suite =
  ( "sim",
    [
      Alcotest.test_case "chapter 3 result computes the CDFG" `Quick test_ch3_functional;
      Alcotest.test_case "chapter 4 results compute the CDFG (AR)" `Slow test_ch4_ar_functional;
      Alcotest.test_case "chapter 4 results compute the CDFG (EWF)" `Quick test_ch4_ewf_functional;
      Alcotest.test_case "chapter 5 result computes the CDFG" `Quick test_ch5_functional;
      Alcotest.test_case "chapter 6 results compute the CDFG" `Slow test_ch6_functional;
      Alcotest.test_case "simulator detects bus conflicts" `Quick test_machine_detects_bus_conflict;
      Alcotest.test_case "simulator detects narrow ports" `Quick test_machine_detects_narrow_port;
      Alcotest.test_case "simulator detects early reads" `Quick test_machine_detects_early_read;
      Alcotest.test_case "reference is deterministic" `Quick test_reference_deterministic;
    ]
    @ [ QCheck_alcotest.to_alcotest prop_fuzz_ch4 ] )

(* Chapter 3 fuzzing: random simple partitionings through the pin-checked
   flow, then Theorem 3.1 and functional equivalence. *)
let fuzz_simple seed =
  let n_partitions = 2 + (seed mod 3) in
  let ops_per_chip = 3 + (seed mod 4) in
  let cdfg =
    Random_design.generate_simple ~seed ~n_partitions ~ops_per_chip ()
  in
  if not (Mcs_core.Simple_part.is_simple cdfg) then false
  else if Cdfg.check_locality cdfg <> Ok () then false
  else begin
    let mlib = Random_design.mlib () in
    let rate = 2 in
    match Constraints.min_fus cdfg mlib ~rate with
    | exception Invalid_argument _ -> true
    | fus ->
        let pins =
          List.map
            (fun p ->
              ( p,
                Mcs_connect.Bounds.min_input_pins cdfg ~rate ~partition:p
                + Mcs_connect.Bounds.min_output_pins cdfg ~rate ~partition:p
                + 16 ))
            (Mcs_util.Listx.range 0 (n_partitions + 1))
        in
        let cons = Constraints.create ~n_partitions ~pins ~fus in
        let io_hook = Mcs_core.Simple_part.hook cdfg cons ~rate in
        (match Mcs_sched.List_sched.run cdfg mlib cons ~rate ~io_hook () with
        | Error _ -> true (* pin checker may make tight instances fail *)
        | Ok sched -> (
            let links = Mcs_core.Simple_part.Theorem31.connect sched in
            Mcs_core.Simple_part.Theorem31.check sched links = Ok ()
            &&
            match
              Sim.check_equivalent sched
                ~bus_of:(fun op -> [ op ])
                ~bus_capable:(fun _ _ -> true)
                ~seed ~instances:5
            with
            | Ok () -> true
            | Error m ->
                Printf.eprintf "simple fuzz seed %d: %s\n%!" seed m;
                false))
  end

let prop_fuzz_ch3 =
  QCheck.Test.make
    ~name:"random simple partitionings: pin-checked flow + Theorem 3.1"
    ~count:20
    QCheck.(int_range 1 10_000)
    fuzz_simple

let suite =
  let name, tests = suite in
  (name, tests @ [ QCheck_alcotest.to_alcotest prop_fuzz_ch3 ])

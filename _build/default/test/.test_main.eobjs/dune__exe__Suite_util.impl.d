test/suite_util.ml: Alcotest List Mcs_util Option QCheck QCheck_alcotest

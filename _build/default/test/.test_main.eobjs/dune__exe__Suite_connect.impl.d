test/suite_connect.ml: Alcotest Benchmarks Bounds Cdfg Connection Constraints Heuristic Ilp_gen List Mcs_cdfg Mcs_connect Mcs_sched Mcs_util Reassign Result String

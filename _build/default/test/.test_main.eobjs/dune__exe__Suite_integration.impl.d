test/suite_integration.ml: Alcotest Benchmarks Cdfg List Mcs_cdfg Mcs_connect Mcs_core Mcs_sched Mcs_sim Mcs_util Pre_connect Printf Simple_part Subbus Timing

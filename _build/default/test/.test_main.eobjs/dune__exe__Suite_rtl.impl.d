test/suite_rtl.ml: Alcotest Array Benchmarks Cdfg Constraints Format Hashtbl List Mcs_cdfg Mcs_connect Mcs_core Mcs_rtl Mcs_sched Mcs_util Pre_connect Printf String Timing

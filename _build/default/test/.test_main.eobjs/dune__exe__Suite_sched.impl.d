test/suite_sched.ml: Alcotest Alloc_wheel Array Benchmarks Cdfg Constraints Fds List List_sched Mcs_cdfg Mcs_sched Mcs_util QCheck QCheck_alcotest Schedule Timing Types

test/suite_partition.ml: Alcotest Cdfg Constraints List Mcs_cdfg Mcs_connect Mcs_core Mcs_sched Mcs_sim Mcs_util Module_lib Partitioner Pre_connect String

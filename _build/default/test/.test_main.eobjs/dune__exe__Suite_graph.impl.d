test/suite_graph.ml: Alcotest Array Fun List Mcs_graph Mcs_util QCheck QCheck_alcotest

test/suite_ilp.ml: Alcotest Array Branch_bound Format Gen Gomory List Mcs_ilp Mcs_util Model Printf QCheck QCheck_alcotest Simplex String

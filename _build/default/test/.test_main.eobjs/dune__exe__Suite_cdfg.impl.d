test/suite_cdfg.ml: Alcotest Array Benchmarks Cdfg Constraints List Mcs_cdfg Mcs_core Module_lib Netlist Printf Random_design Timing Types

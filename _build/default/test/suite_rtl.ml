(* Tests for the RTL layer: lifetimes, register binding (cyclic left-edge),
   functional-unit binding, multiplexer derivation. *)

open Mcs_cdfg
open Mcs_core
module Sched = Mcs_sched.Schedule
module L = Mcs_rtl.Lifetime
module D = Mcs_rtl.Datapath

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ar4 () =
  let d = Benchmarks.ar_general () in
  let cons = Benchmarks.constraints_for d ~rate:4 in
  match
    Pre_connect.run d.Benchmarks.cdfg d.Benchmarks.mlib cons ~rate:4
      ~mode:Mcs_connect.Connection.Unidir ()
  with
  | Ok r -> (d, cons, r.Pre_connect.schedule)
  | Error m -> Alcotest.fail m

let test_lifetime_basic () =
  let d, _, sched = ar4 () in
  let cdfg = d.Benchmarks.cdfg in
  let lts = L.analyse sched in
  (* Every registered lifetime starts after its producer finishes and ends
     no earlier than it starts. *)
  List.iter
    (fun (l : L.t) ->
      if L.span l > 0 then begin
        checkb "birth after production" true
          (l.birth > Sched.cstep sched l.producer
          || Cdfg.is_io cdfg l.producer);
        checkb "death >= birth" true (l.death >= l.birth)
      end)
    lts;
  (* A value transferred into a chip has a lifetime there. *)
  let xfer =
    List.find
      (fun w -> Cdfg.io_src cdfg w <> 0 && Cdfg.io_dst cdfg w <> 0)
      (Cdfg.io_ops cdfg)
  in
  checkb "incoming transfer registered somewhere" true
    (List.exists
       (fun (l : L.t) ->
         l.producer = xfer && l.on_partition = Cdfg.io_dst cdfg xfer)
       lts)

let test_lifetime_recursive_stretch () =
  (* The elliptic filter's degree-4 transfer keeps its value alive across
     four initiation intervals. *)
  let d = Benchmarks.elliptic () in
  let cons = Benchmarks.constraints_for d ~rate:6 in
  match
    Mcs_sched.List_sched.run d.Benchmarks.cdfg d.Benchmarks.mlib cons ~rate:6 ()
  with
  | Error _ -> Alcotest.fail "scheduling failed"
  | Ok sched ->
      let cdfg = d.Benchmarks.cdfg in
      let x33 =
        List.find (fun w -> Cdfg.name cdfg w = "X33") (Cdfg.io_ops cdfg)
      in
      let t2 = List.find (fun o -> Cdfg.name cdfg o = "t2") (Cdfg.ops cdfg) in
      let lts = L.analyse sched in
      let l = List.find (fun (l : L.t) -> l.producer = x33) lts in
      (* The consumer reads four initiation intervals after its own step. *)
      checki "death at the recursive read" (Sched.cstep sched t2 + (4 * 6)) l.death;
      checkb "held across the loop slack" true (L.span l >= 1)

let test_register_lower_bound_respected () =
  let d, cons, sched = ar4 () in
  match D.build sched cons with
  | Error m -> Alcotest.fail m
  | Ok rtl ->
      List.iter
        (fun (p, lb) ->
          checkb
            (Printf.sprintf "P%d binding >= lower bound" p)
            true
            (D.register_count rtl p >= lb))
        (L.registers_lower_bound sched);
      ignore d

let test_register_binding_no_overlap () =
  let _, cons, sched = ar4 () in
  let rate = Sched.rate sched in
  match D.build sched cons with
  | Error m -> Alcotest.fail m
  | Ok rtl ->
      (* No register holds two values in the same control-step group. *)
      List.iter
        (fun rp ->
          List.iter
            (fun (r : D.register) ->
              let taken = Array.make rate false in
              List.iter
                (fun (_, b, e) ->
                  List.iter
                    (fun x ->
                      let g = ((x mod rate) + rate) mod rate in
                      checkb "register group free" false taken.(g);
                      taken.(g) <- true)
                    (Mcs_util.Listx.range b (e + 1)))
                r.holds)
            rp.D.registers)
        rtl.D.parts

let test_fu_binding_covers_all_ops () =
  let d, cons, sched = ar4 () in
  match D.build sched cons with
  | Error m -> Alcotest.fail m
  | Ok rtl ->
      let cdfg = d.Benchmarks.cdfg in
      List.iter
        (fun p ->
          let bound =
            List.concat_map snd (List.find (fun rp -> rp.D.rp_partition = p) rtl.D.parts).D.fus
          in
          checki
            (Printf.sprintf "P%d all ops bound" p)
            (List.length (Cdfg.func_ops_of_partition cdfg p))
            (List.length bound))
        [ 1; 2; 3 ];
      (* FU count within constraints. *)
      List.iter
        (fun rp ->
          List.iter
            (fun ((fu : D.fu), _) ->
              checkb "fu index within allocation" true
                (fu.fu_index
                < Constraints.fu_count cons ~partition:rp.D.rp_partition
                    ~optype:fu.fu_optype))
            rp.D.fus)
        rtl.D.parts

let test_fu_binding_no_group_conflict () =
  let d, cons, sched = ar4 () in
  match D.build sched cons with
  | Error m -> Alcotest.fail m
  | Ok rtl ->
      let cdfg = d.Benchmarks.cdfg in
      let mlib = d.Benchmarks.mlib in
      let rate = Sched.rate sched in
      List.iter
        (fun rp ->
          List.iter
            (fun (_, ops) ->
              (* Operations sharing a unit never overlap on the wheel. *)
              let cells = Hashtbl.create 8 in
              List.iter
                (fun op ->
                  List.iter
                    (fun k ->
                      let g = (Sched.group sched op + k) mod rate in
                      checkb "wheel cell free" false (Hashtbl.mem cells g);
                      Hashtbl.add cells g ())
                    (Mcs_util.Listx.range 0 (Timing.op_cycles cdfg mlib op)))
                ops)
            rp.D.fus)
        rtl.D.parts

let test_muxes_where_sharing () =
  let _, cons, sched = ar4 () in
  match D.build sched cons with
  | Error m -> Alcotest.fail m
  | Ok rtl ->
      (* Units executing several operations need input multiplexers unless
         every operand happens to come from one source; the AR filter at
         rate 4 certainly shares units, so some muxes must exist. *)
      let total =
        Mcs_util.Listx.sum (fun rp -> List.length rp.D.muxes) rtl.D.parts
      in
      checkb "sharing induces muxes" true (total > 0);
      List.iter
        (fun rp ->
          List.iter
            (fun (m : D.mux) -> checkb "mux fans in >= 2" true (m.mux_inputs >= 2))
            rp.D.muxes)
        rtl.D.parts

let test_rtl_printers () =
  let _, cons, sched = ar4 () in
  match D.build sched cons with
  | Error m -> Alcotest.fail m
  | Ok rtl ->
      let s = Format.asprintf "%a" D.pp rtl in
      checkb "structural listing nonempty" true (String.length s > 100);
      let v = Format.asprintf "%a" D.pp_verilog rtl in
      checkb "verilog mentions modules" true
        (String.length v > 100
        &&
        let rec contains i =
          i + 6 <= String.length v
          && (String.sub v i 6 = "module" || contains (i + 1))
        in
        contains 0)

let test_build_rejects_undersized_constraints () =
  let d, _, sched = ar4 () in
  let tight =
    Constraints.create ~n_partitions:3
      ~pins:[ (0, 200); (1, 200); (2, 200); (3, 200) ]
      ~fus:[ (1, "add", 1); (1, "mul", 1); (2, "add", 1); (2, "mul", 1);
             (3, "add", 1); (3, "mul", 1) ]
  in
  ignore d;
  checkb "over-tight constraints rejected" true
    (match D.build sched tight with Error _ -> true | Ok _ -> false)

let suite =
  ( "rtl",
    [
      Alcotest.test_case "lifetimes well-formed" `Quick test_lifetime_basic;
      Alcotest.test_case "recursive edges stretch lifetimes" `Quick test_lifetime_recursive_stretch;
      Alcotest.test_case "register binding >= lower bound" `Quick test_register_lower_bound_respected;
      Alcotest.test_case "register binding never overlaps" `Quick test_register_binding_no_overlap;
      Alcotest.test_case "FU binding covers all operations" `Quick test_fu_binding_covers_all_ops;
      Alcotest.test_case "FU binding respects the wheels" `Quick test_fu_binding_no_group_conflict;
      Alcotest.test_case "shared units get multiplexers" `Quick test_muxes_where_sharing;
      Alcotest.test_case "printers produce output" `Quick test_rtl_printers;
      Alcotest.test_case "build rejects undersized constraints" `Quick test_build_rejects_undersized_constraints;
    ] )

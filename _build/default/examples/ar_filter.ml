(* The AR lattice filter, both partitionings.

   The simple partitioning (Fig. 3.5) goes through the Chapter 3 flow: list
   scheduling with the ILP pin-allocation feasibility checker, then the
   constructive Theorem 3.1 connection.  The general partitioning (Fig. 4.7)
   goes through the Chapter 4 flow at several initiation rates.

   Run with:  dune exec examples/ar_filter.exe *)

open Mcs_cdfg
open Mcs_core

let fmt = Format.std_formatter

let () =
  (* --- Simple partitioning, Chapter 3 --- *)
  Format.printf "== AR filter, simple partitioning (Chapter 3) ==@.@.";
  let simple = Benchmarks.ar_simple () in
  (match Simple_part.run simple ~rate:2 with
  | Error m -> Format.printf "failed: %s@." m
  | Ok r ->
      Format.printf "Schedule:@.%a@.@." Report.schedule r.schedule;
      Format.printf "Theorem 3.1 wire bundles:@.%a@." Report.bundles r.links;
      Report.table fmt ~title:"Pins used (paper: 112/48/48/32/32)"
        ~header:[ "P0"; "P1"; "P2"; "P3"; "P4" ]
        [ Report.pins_row r.pins_needed ]);

  (* --- General partitioning, Chapter 4 --- *)
  Format.printf "@.== AR filter, general partitioning (Chapter 4) ==@.";
  let general = Benchmarks.ar_general () in
  List.iter
    (fun rate ->
      Format.printf "@.-- initiation rate %d --@." rate;
      match
        Pre_connect.run_design general ~rate ~mode:Mcs_connect.Connection.Unidir
      with
      | Error m -> Format.printf "failed: %s@." m
      | Ok r ->
          Format.printf "%a@.@."
            (Report.connection general.Benchmarks.cdfg)
            r.connection;
          Report.bus_assignment general.Benchmarks.cdfg fmt
            ~initial:r.initial_assignment ~final:r.final_assignment;
          Format.printf
            "@.pipe length %d with reassignment, %s without@."
            (Mcs_sched.Schedule.pipe_length r.schedule)
            (match r.static_pipe_length with
            | Some n -> string_of_int n
            | None -> "unschedulable"))
    general.Benchmarks.rates

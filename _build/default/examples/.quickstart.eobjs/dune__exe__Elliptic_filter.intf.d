examples/elliptic_filter.mli:

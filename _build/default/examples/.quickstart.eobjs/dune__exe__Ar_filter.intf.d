examples/ar_filter.mli:

examples/elliptic_filter.ml: Benchmarks Cdfg Format List Mcs_cdfg Mcs_connect Mcs_core Mcs_sched Post_connect Pre_connect Report Timing

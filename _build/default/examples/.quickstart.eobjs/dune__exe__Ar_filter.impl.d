examples/ar_filter.ml: Benchmarks Format List Mcs_cdfg Mcs_connect Mcs_core Mcs_sched Pre_connect Report Simple_part

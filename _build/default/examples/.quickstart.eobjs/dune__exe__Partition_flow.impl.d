examples/partition_flow.ml: Cdfg Constraints Format List Mcs_cdfg Mcs_connect Mcs_core Mcs_rtl Mcs_sim Module_lib Partitioner Pre_connect Printf Report String

examples/quickstart.mli:

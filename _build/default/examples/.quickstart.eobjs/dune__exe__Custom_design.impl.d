examples/custom_design.ml: Cdfg Constraints Extensions Format List Mcs_cdfg Mcs_connect Mcs_core Mcs_sched Module_lib Netlist Pre_connect Printf Report String

examples/compare_approaches.ml: Benchmarks Format List Mcs_cdfg Mcs_connect Mcs_core Mcs_sched Mcs_util Post_connect Pre_connect Printf Report Subbus

examples/partition_flow.mli:

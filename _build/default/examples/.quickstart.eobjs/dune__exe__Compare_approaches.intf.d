examples/compare_approaches.mli:

examples/quickstart.ml: Cdfg Constraints Format Mcs_cdfg Mcs_connect Mcs_core Mcs_sched Module_lib Netlist Pre_connect Report

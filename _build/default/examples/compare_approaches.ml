(* Comparing the three general-partitioning approaches on the AR filter:

   - Chapter 4: connection synthesis before scheduling (list scheduling with
     dynamic bus reassignment);
   - Chapter 5: force-directed scheduling first, then connection synthesis
     by clique partitioning;
   - Chapter 6: connection-first with intra-cycle sub-bus sharing.

   This regenerates the discussion of §5.3 and Table 6.4 in one table.

   Run with:  dune exec examples/compare_approaches.exe *)

open Mcs_cdfg
open Mcs_core
module C = Mcs_connect.Connection

let () =
  let d = Benchmarks.ar_general () in
  let total pins = Mcs_util.Listx.sum snd pins in
  let rows =
    List.concat_map
      (fun rate ->
        let ch4 =
          match Pre_connect.run_design d ~rate ~mode:C.Bidir with
          | Ok r ->
              [
                Printf.sprintf "%d" (total r.pins);
                Printf.sprintf "%d" (Mcs_sched.Schedule.pipe_length r.schedule);
              ]
          | Error _ -> [ "-"; "-" ]
        in
        let ch5 =
          (* Schedule-first at the best pipe length the Chapter 4 flow
             reached, for a like-for-like comparison. *)
          let pl =
            match Pre_connect.run_design d ~rate ~mode:C.Bidir with
            | Ok r -> Mcs_sched.Schedule.pipe_length r.schedule
            | Error _ -> 10
          in
          match Post_connect.run_design d ~rate ~pipe_length:pl ~mode:C.Bidir with
          | Ok r -> [ Printf.sprintf "%d" (total r.pins); string_of_int pl ]
          | Error _ -> [ "-"; "-" ]
        in
        let ch6 =
          match Subbus.run_design d ~rate with
          | Ok t ->
              [
                Printf.sprintf "%d" (total t.pins);
                Printf.sprintf "%d" (Mcs_sched.Schedule.pipe_length t.schedule);
              ]
          | Error _ -> [ "-"; "-" ]
        in
        [ (string_of_int rate :: ch4) @ ch5 @ ch6 ])
      d.Benchmarks.rates
  in
  Report.table Format.std_formatter
    ~title:
      "AR filter, bidirectional ports: total pins and pipe length per \
       approach"
    ~header:
      [
        "Rate";
        "Ch4 pins"; "Ch4 pipe";
        "Ch5 pins"; "Ch5 pipe";
        "Ch6 pins"; "Ch6 pipe";
      ]
    rows;
  Format.printf
    "@.Reading: connection-first (Ch4) fixes pins before scheduling; \
     schedule-first (Ch5) optimizes pins for one fixed schedule; sub-bus \
     sharing (Ch6) trades control complexity for pins.@."

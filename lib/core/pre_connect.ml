open Mcs_cdfg
module C = Mcs_connect.Connection
module H = Mcs_connect.Heuristic
module R = Mcs_connect.Reassign
module LS = Mcs_sched.List_sched

type t = {
  connection : C.t;
  initial_assignment : (Types.op_id * int) list;
  final_assignment : (Types.op_id * int) list;
  allocation : ((int * int) * (string * int * Types.op_id list)) list;
  schedule : Mcs_sched.Schedule.t;
  pins : (int * int) list;
  static_pipe_length : int option;
  slot_cap : int;
}

let attempt cdfg mlib cons ~rate ~mode ~branching ~slot_cap =
  match
    Mcs_obs.Trace.with_span "ch4.search"
      ~attrs:[ ("slot_cap", string_of_int slot_cap) ]
      (fun () -> H.search cdfg cons ~rate ~mode ~slot_cap ~branching ())
  with
  | Error e -> Error (H.error_message e)
  | Ok res -> (
      let dyn = R.create cdfg res.H.conn ~rate ~initial:res.H.assign ~dynamic:true in
      match
        Mcs_obs.Trace.with_span "ch4.schedule" (fun () ->
            LS.run cdfg mlib cons ~rate ~io_hook:(R.hook dyn) ())
      with
      | Error f ->
          Error
            (Printf.sprintf "scheduling failed at cstep %d: %s"
               f.LS.at_cstep f.LS.reason)
      | Ok schedule ->
          (* Paper's comparison baseline: same connection, static
             assignment. *)
          let static_pipe_length =
            Mcs_obs.Trace.with_span "ch4.static_baseline" (fun () ->
                let st =
                  R.create cdfg res.H.conn ~rate ~initial:res.H.assign
                    ~dynamic:false
                in
                match LS.run cdfg mlib cons ~rate ~io_hook:(R.hook st) () with
                | Ok s -> Some (Mcs_sched.Schedule.pipe_length s)
                | Error _ -> None)
          in
          let pins = Mcs_connect.Pins.of_connection res.H.conn in
          Ok
            {
              connection = res.H.conn;
              initial_assignment = res.H.assign;
              final_assignment = R.final_assignment dyn;
              allocation = R.allocation_table dyn;
              schedule;
              pins;
              static_pipe_length;
              slot_cap;
            })

let run cdfg mlib cons ~rate ~mode ?(branching = 2) () =
  (* The first (loosest-cap) failure names the real obstacle; lower-cap
     retries only trade pins for bandwidth. *)
  let rec try_cap cap first_err =
    if cap < 1 then
      Error
        (Printf.sprintf "no schedulable interchip connection found (first: %s)"
           first_err)
    else
      match attempt cdfg mlib cons ~rate ~mode ~branching ~slot_cap:cap with
      | Ok t -> Ok t
      | Error m ->
          let first_err = if first_err = "" then m else first_err in
          try_cap (cap - 1) first_err
  in
  try_cap rate ""

let run_design (design : Benchmarks.design) ~rate ~mode =
  let cons =
    match mode with
    | C.Unidir -> Benchmarks.constraints_for design ~rate
    | C.Bidir -> Benchmarks.constraints_for_bidir design ~rate
  in
  run design.Benchmarks.cdfg design.Benchmarks.mlib cons ~rate ~mode ()

open Mcs_cdfg
module C = Mcs_connect.Connection
module R = Mcs_connect.Reassign
module LS = Mcs_sched.List_sched
module M = Mcs_obs.Metrics
module Log = Mcs_obs.Log
module Budget = Mcs_resilience.Budget
module Fault = Mcs_resilience.Fault

let m_attempts = M.counter "subbus.attempts"
let m_search_nodes = M.counter "subbus.search_nodes"
let m_backtracks = M.counter "subbus.backtracks"
let m_retired = M.counter "subbus.retired_buses"

type sub = Lo | Hi | Whole

type real_bus = {
  width : int;
  split_at : int option;
  ports : (int * int) list;
  carried : (Types.op_id * sub) list;
}

type t = {
  real_buses : real_bus list;
  initial_assignment : (Types.op_id * (int * sub)) list;
  final_assignment : (Types.op_id * (int * sub)) list;
  allocation : ((int * sub * int) * (string * int * Types.op_id list)) list;
  schedule : Mcs_sched.Schedule.t;
  pins : (int * int) list;
  static_pipe_length : int option;
}

(* Mutable search state for one bus. *)
type sbus = {
  mutable swidth : int;
  mutable split : int option;
  sports : int array; (* r_{i,h}, bidirectional *)
  mutable assigned : (Types.op_id * sub) list;
}

let port_need ~split_lo op_width = function
  | Lo | Whole -> op_width
  | Hi -> split_lo + op_width

(* Distinct values loading one half of the bus: slice occupants plus
   whole-bus occupants.  For [Whole] the relevant load is the fuller half. *)
let half_load cdfg b half =
  List.length
    (Mcs_util.Listx.uniq String.equal
       (List.filter_map
          (fun (w, s) ->
            if s = half || s = Whole then Some (Cdfg.io_value cdfg w)
            else None)
          b.assigned))

let slice_load cdfg b slice =
  match slice with
  | Lo | Hi -> half_load cdfg b slice
  | Whole -> max (half_load cdfg b Lo) (half_load cdfg b Hi)

let search ?(budget = Budget.unlimited) cdfg cons ~rate ?slot_cap () =
  (match Fault.exhaust_heuristic () with
  | Some e -> raise (Budget.Out_of_budget e)
  | None -> ());
  let slot_cap = Option.value ~default:rate slot_cap in
  (* The cap spreads load during the constructive phase; compaction packs
     up to the physical limit (the initiation rate). *)
  let cap_limit = ref slot_cap in
  let n = Cdfg.n_partitions cdfg in
  let buses : sbus list ref = ref [] in
  let pins_used = Array.make (n + 1) 0 in
  let pin_cap p = Constraints.pins cons p in
  let ops =
    List.sort
      (fun a b ->
        let c = compare (Cdfg.io_width cdfg b) (Cdfg.io_width cdfg a) in
        if c <> 0 then c else compare a b)
      (Cdfg.io_ops cdfg)
  in
  let assigned_to : (Types.op_id, sbus * sub) Hashtbl.t = Hashtbl.create 64 in
  (* Extra pins both endpoints of [op] need to use [slice] of [b]. *)
  let extra b op slice =
    let width = Cdfg.io_width cdfg op in
    let lo = Option.value ~default:b.swidth b.split in
    let need = port_need ~split_lo:lo width slice in
    let at p = max 0 (need - b.sports.(p)) in
    (at (Cdfg.io_src cdfg op), at (Cdfg.io_dst cdfg op))
  in
  let fits b op slice =
    let width = Cdfg.io_width cdfg op in
    let slice_ok =
      match (b.split, slice) with
      | None, Whole -> width <= b.swidth
      | None, (Lo | Hi) -> false
      | Some lo, Lo -> width <= lo
      | Some lo, Hi -> width <= b.swidth - lo
      | Some _, Whole ->
          (* A value may group both (consecutive) sub-buses. *)
          width <= b.swidth
    in
    let ds, dd = extra b op slice in
    let src = Cdfg.io_src cdfg op and dst = Cdfg.io_dst cdfg op in
    let cap_ok =
      List.exists
        (fun (w, s) ->
          (s = slice)
          && String.equal (Cdfg.io_value cdfg w) (Cdfg.io_value cdfg op))
        b.assigned
      || slice_load cdfg b slice < !cap_limit
    in
    slice_ok && cap_ok
    && pins_used.(src) + ds <= pin_cap src
    && pins_used.(dst) + dd <= pin_cap dst
  in
  let commit b op slice =
    let ds, dd = extra b op slice in
    let src = Cdfg.io_src cdfg op and dst = Cdfg.io_dst cdfg op in
    let lo = Option.value ~default:b.swidth b.split in
    let need = port_need ~split_lo:lo (Cdfg.io_width cdfg op) slice in
    pins_used.(src) <- pins_used.(src) + ds;
    pins_used.(dst) <- pins_used.(dst) + dd;
    b.sports.(src) <- max b.sports.(src) need;
    b.sports.(dst) <- max b.sports.(dst) need;
    b.assigned <- (op, slice) :: b.assigned;
    Hashtbl.replace assigned_to op (b, slice)
  in
  (* Optimistic feasibility prune (see Heuristic.search): assuming maximal
     reuse of existing ports — every port absorbing up to 2 x slot_cap
     not-wider operations, the sub-bus optimum — the remaining unassigned
     operations still need some fresh pins on each partition. *)
  let pins_viable assigned_mem =
    let ok p =
      let pending = ref [] in
      List.iter
        (fun w ->
          if not (assigned_mem w) then begin
            if Cdfg.io_src cdfg w = p || Cdfg.io_dst cdfg w = p then
              pending := Cdfg.io_width cdfg w :: !pending
          end)
        ops;
      let widths = List.sort (fun a b -> compare b a) !pending in
      let ports =
        List.filter_map
          (fun b ->
            if b.sports.(p) > 0 then
              Some
                ( b.sports.(p),
                  max 0 ((2 * !cap_limit) - List.length b.assigned) )
            else None)
          !buses
      in
      let sorted_ports = List.sort (fun (a, _) (b, _) -> compare a b) ports in
      (* A port of width pw absorbs, per free cycle, one op <= pw plus
         possibly a second op fitting the remaining lines (two sub-buses
         max). *)
      let rec absorb_cycle pw rem =
        let rec take1 acc = function
          | [] -> None
          | w :: tl when w <= pw -> Some (w, List.rev_append acc tl)
          | w :: tl -> take1 (w :: acc) tl
        in
        match take1 [] rem with
        | None -> rem
        | Some (w1, rem') -> (
            let rec take2 acc = function
              | [] -> rem'
              | w :: tl when w <= pw - w1 -> List.rev_append acc tl
              | w :: tl -> take2 (w :: acc) tl
            in
            match rem' with [] -> [] | _ -> take2 [] rem')
      and absorb_port (pw, free) rem =
        if free = 0 || rem = [] then rem
        else absorb_port (pw, free - 1) (absorb_cycle pw rem)
      in
      let leftovers =
        List.fold_left (fun rem port -> absorb_port port rem) widths
          sorted_ports
      in
      let rec fresh_cost rem =
        match rem with
        | [] -> 0
        | widest :: _ ->
            let rec burn k rem =
              if k = 0 then rem else burn (k - 1) (absorb_cycle widest rem)
            in
            widest + fresh_cost (burn !cap_limit rem)
      in
      pins_used.(p) + fresh_cost leftovers <= pin_cap p
    in
    List.for_all ok (Mcs_util.Listx.range 0 (n + 1))
  in
  (* Candidate enumeration: slices of existing buses, splits of unsplit
     buses, and a fresh bus; ranked by extra pin cost first (the paper's
     scarcity-weighted reuse), then value sharing, plain before split,
     lightly-loaded slices first.  Depth-first with backtracking. *)
  let nodes = ref 0 in
  let max_nodes = 200_000 in
  let allow_fresh = ref true in
  let rec assign_rec = function
    | [] -> true
    | op :: rest ->
        incr nodes;
        M.incr m_search_nodes;
        Budget.spend_node budget;
        if !nodes > max_nodes then false
        else begin
          let width = Cdfg.io_width cdfg op in
          let src = Cdfg.io_src cdfg op and dst = Cdfg.io_dst cdfg op in
          let plain =
            List.concat_map
              (fun b ->
                match b.split with
                | None -> [ (b, Whole, `Plain) ]
                | Some _ -> [ (b, Lo, `Plain); (b, Hi, `Plain) ])
              !buses
          in
          let splits =
            (* Split points: the new operation's own width or a previous
               occupant's; occupants not fitting the first sub-bus keep
               using the whole bus (grouping both sub-buses, §6.1). *)
            List.concat_map
              (fun b ->
                match b.split with
                | Some _ -> []
                | None ->
                    let los =
                      Mcs_util.Listx.uniq ( = )
                        (width
                        :: List.map
                             (fun (w, _) -> Cdfg.io_width cdfg w)
                             b.assigned)
                    in
                    List.filter_map
                      (fun lo ->
                        if lo + width <= b.swidth then
                          Some (b, Hi, `Split lo)
                        else None)
                      los)
              !buses
          in
          let with_split b lo f =
            (* Simulate the split, including the reslotting of narrow
               occupants onto the first sub-bus. *)
            let saved_split = b.split in
            let saved_assigned = b.assigned in
            b.split <- Some lo;
            b.assigned <-
              List.map
                (fun (w, s0) ->
                  ignore s0;
                  (w, if Cdfg.io_width cdfg w <= lo then Lo else Whole))
                b.assigned;
            let r = f () in
            b.split <- saved_split;
            b.assigned <- saved_assigned;
            r
          in
          let viable =
            List.filter
              (fun (b, slice, kind) ->
                match kind with
                | `Plain -> fits b op slice
                | `Split lo -> with_split b lo (fun () -> fits b op Hi))
              (plain @ splits)
          in
          let score (b, slice, kind) =
            let g2 =
              if
                List.exists
                  (fun (w, s) ->
                    s = slice
                    && String.equal (Cdfg.io_value cdfg w)
                         (Cdfg.io_value cdfg op))
                  b.assigned
              then 1
              else 0
            in
            let ds, dd =
              match kind with
              | `Plain -> extra b op slice
              | `Split lo -> with_split b lo (fun () -> extra b op Hi)
            in
            let g_plain = match kind with `Plain -> 1 | `Split _ -> 0 in
            (-(ds + dd), g2, g_plain, -slice_load cdfg b slice)
          in
          let ranked =
            Mcs_util.Listx.take 3
              (List.sort (fun a b -> compare (score b) (score a)) viable)
          in
          let try_candidate (b, slice, kind) =
            (* Save state for backtracking. *)
            let saved_split = b.split in
            let saved_assigned = b.assigned in
            let saved_src = b.sports.(src) and saved_dst = b.sports.(dst) in
            let saved_pins_src = pins_used.(src)
            and saved_pins_dst = pins_used.(dst) in
            let saved_slots =
              List.map (fun (w, s) -> (w, (b, s))) b.assigned
            in
            (match kind with
            | `Plain -> ()
            | `Split lo ->
                b.split <- Some lo;
                (* Narrow occupants move to the first sub-bus, the rest
                   keep grouping both sub-buses. *)
                b.assigned <-
                  List.map
                    (fun (w, _) ->
                      let slot =
                        if Cdfg.io_width cdfg w <= lo then Lo else Whole
                      in
                      Hashtbl.replace assigned_to w (b, slot);
                      (w, slot))
                    b.assigned);
            commit b op slice;
            if pins_viable (Hashtbl.mem assigned_to) && assign_rec rest then true
            else begin
              M.incr m_backtracks;
              b.split <- saved_split;
              b.assigned <- saved_assigned;
              b.sports.(src) <- saved_src;
              b.sports.(dst) <- saved_dst;
              pins_used.(src) <- saved_pins_src;
              pins_used.(dst) <- saved_pins_dst;
              List.iter
                (fun (w, slot) -> Hashtbl.replace assigned_to w slot)
                saved_slots;
              Hashtbl.remove assigned_to op;
              false
            end
          in
          List.exists try_candidate ranked
          ||
          (* Fresh bus of exactly this operation's width. *)
          (!allow_fresh
          && pins_used.(src) + width <= pin_cap src
          && pins_used.(dst) + width <= pin_cap dst
          &&
          let b =
            {
              swidth = width;
              split = None;
              sports = Array.make (n + 1) 0;
              assigned = [];
            }
          in
          buses := !buses @ [ b ];
          commit b op Whole;
          if pins_viable (Hashtbl.mem assigned_to) && assign_rec rest then true
          else begin
            M.incr m_backtracks;
            buses := List.filter (fun b' -> b' != b) !buses;
            pins_used.(src) <- pins_used.(src) - width;
            pins_used.(dst) <- pins_used.(dst) - width;
            Hashtbl.remove assigned_to op;
            false
          end)
        end
  in
  (* Compaction: repeatedly try to retire a whole bus by relocating its
     traffic onto (possibly split) slices of the others — this is where
     sub-bus sharing actually buys pins back. *)
  let recompute_pins () =
    for p = 0 to n do
      pins_used.(p) <-
        Mcs_util.Listx.sum (fun b -> b.sports.(p)) !buses
    done
  in
  let snapshot () =
    ( List.map
        (fun b ->
          (b, b.swidth, b.split, Array.copy b.sports, b.assigned))
        !buses,
      Hashtbl.copy assigned_to )
  in
  let restore (saved, table) =
    buses := List.map (fun (b, _, _, _, _) -> b) saved;
    List.iter
      (fun (b, w, sp, ports, asg) ->
        b.swidth <- w;
        b.split <- sp;
        Array.blit ports 0 b.sports 0 (Array.length ports);
        b.assigned <- asg)
      saved;
    Hashtbl.reset assigned_to;
    Hashtbl.iter (fun k v -> Hashtbl.replace assigned_to k v) table;
    recompute_pins ()
  in
  let compact () =
    let improved = ref true in
    while !improved do
      improved := false;
      let by_load =
        List.sort
          (fun a b -> compare (List.length a.assigned) (List.length b.assigned))
          !buses
      in
      let try_retire victim =
        let saved = snapshot () in
        cap_limit := rate;
        let movers =
          List.sort
            (fun (a, _) (b, _) ->
              compare (Cdfg.io_width cdfg b) (Cdfg.io_width cdfg a))
            victim.assigned
        in
        buses := List.filter (fun b -> b != victim) !buses;
        recompute_pins ();
        nodes := 0;
        allow_fresh := false;
        let ok = assign_rec (List.map fst movers) in
        allow_fresh := true;
        cap_limit := slot_cap;
        if ok then begin
          M.incr m_retired;
          improved := true;
          true
        end
        else begin
          restore saved;
          false
        end
      in
      ignore (List.exists try_retire by_load)
    done
  in
  match
    nodes := 0;
    if assign_rec ops then begin
      compact ();
      Ok ()
    end
    else begin
      Log.debug "[subbus] search failed after %d nodes" !nodes;
      Error
        "Subbus.search: cannot place the I/O operations within the pin \
         budgets"
    end
  with
  | Error m -> Error m
  | Ok () ->
      let real =
        List.map
          (fun b ->
            {
              width = b.swidth;
              split_at = b.split;
              ports =
                List.filter_map
                  (fun p ->
                    if b.sports.(p) > 0 then Some (p, b.sports.(p)) else None)
                  (Mcs_util.Listx.range 0 (n + 1));
              carried = List.rev b.assigned;
            })
          !buses
      in
      let assignment =
        List.map
          (fun op ->
            let b, s = Hashtbl.find assigned_to op in
            let rec index i = function
              | [] -> assert false
              | x :: rest -> if x == b then i else index (i + 1) rest
            in
            (op, (index 0 !buses, s)))
          (Cdfg.io_ops cdfg)
      in
      Ok (real, assignment)

(* --- Scheduling over sub-slots (§6.2) --- *)

type entry = {
  e_value : string;
  e_cstep : int;
  mutable e_ops : Types.op_id list;
}

type sched_state = {
  ss_real : real_bus array;
  ss_rate : int;
  (* Occupancy per (bus, half, group); a Whole value holds both halves with
     the same entry. *)
  halves : (int * sub * int, entry) Hashtbl.t;
  ss_tentative : (Types.op_id, int * sub) Hashtbl.t;
  ss_committed : (Types.op_id, int * sub) Hashtbl.t;
  ss_budget : Budget.t;
}

let slices_of (rb : real_bus) =
  match rb.split_at with None -> [ Whole ] | Some _ -> [ Lo; Hi; Whole ]

let rb_capable cdfg (rb : real_bus) op slice =
  let width = Cdfg.io_width cdfg op in
  let fits_slice =
    match (rb.split_at, slice) with
    | None, Whole -> width <= rb.width
    | None, (Lo | Hi) -> false
    | Some lo, Lo -> width <= lo
    | Some lo, Hi -> width <= rb.width - lo
    | Some _, Whole -> width <= rb.width
  in
  let lo = Option.value ~default:rb.width rb.split_at in
  let need = port_need ~split_lo:lo width slice in
  let port p = Option.value ~default:0 (List.assoc_opt p rb.ports) in
  fits_slice
  && port (Cdfg.io_src cdfg op) >= need
  && port (Cdfg.io_dst cdfg op) >= need

let halves_of slice = match slice with Lo -> [ Lo ] | Hi -> [ Hi ] | Whole -> [ Lo; Hi ]

let slot_admissible st cdfg op ~cstep (i, slice) =
  let g = ((cstep mod st.ss_rate) + st.ss_rate) mod st.ss_rate in
  let value = Cdfg.io_value cdfg op in
  List.for_all
    (fun h ->
      match Hashtbl.find_opt st.halves (i, h, g) with
      | None -> true
      | Some e -> String.equal e.e_value value && e.e_cstep = cstep)
    (halves_of slice)

(* Capacity lookahead for the dynamic hook: after [except] takes [slot] at
   [cstep], can every remaining unscheduled I/O operation still be packed
   onto the free sub-slots?  Unsplit buses yield full-width units; split
   buses also yield half units.  Same-value operations able to ride the
   consumed slot demand nothing; other same-value groups with a common
   capable slice demand one unit. *)
let sub_repack st cdfg ~rate ~except ~slot:(si, sslice) ~cstep unscheduled =
  let g_w = ((cstep mod rate) + rate) mod rate in
  let occupied i h g =
    Hashtbl.mem st.halves (i, h, g)
    || (i = si && g = g_w && List.mem h (halves_of sslice))
  in
  let nb = Array.length st.ss_real in
  let units = ref [] in
  for i = 0 to nb - 1 do
    for g = 0 to rate - 1 do
      match (occupied i Lo g, occupied i Hi g) with
      | false, false -> units := `Full i :: !units
      | false, true -> units := `Half (i, Lo) :: !units
      | true, false -> units := `Half (i, Hi) :: !units
      | true, true -> ()
    done
  done;
  let units = Array.of_list !units in
  let cap_any op i =
    List.exists (fun sl -> rb_capable cdfg st.ss_real.(i) op sl)
      (slices_of st.ss_real.(i))
  in
  let cap_unit op = function
    | `Full i -> cap_any op i
    | `Half (i, h) -> rb_capable cdfg st.ss_real.(i) op h
  in
  let except_value = Cdfg.io_value cdfg except in
  let ops =
    List.filter
      (fun w ->
        not
          (String.equal (Cdfg.io_value cdfg w) except_value
          && rb_capable cdfg st.ss_real.(si) w sslice))
      (List.filter (fun w -> w <> except) unscheduled)
  in
  let demands =
    List.concat_map
      (fun (_, members) ->
        let common_bus =
          List.filter
            (fun i -> List.for_all (fun w -> cap_any w i) members)
            (Mcs_util.Listx.range 0 nb)
        in
        if common_bus <> [] && List.length members > 1 then [ members ]
        else List.map (fun w -> [ w ]) members)
      (Mcs_util.Listx.group_by (Cdfg.io_value cdfg) ops)
  in
  let demands = Array.of_list demands in
  let bip =
    Mcs_graph.Bipartite.create ~n_left:(Array.length demands)
      ~n_right:(Array.length units)
  in
  Array.iteri
    (fun l members ->
      Array.iteri
        (fun r u ->
          if List.for_all (fun w -> cap_unit w u) members then
            Mcs_graph.Bipartite.add_edge bip ~left:l ~right:r)
        units)
    demands;
  Mcs_graph.Bipartite.max_matching ~budget:st.ss_budget bip
  = Array.length demands

let subbus_hook ?(budget = Budget.unlimited) cdfg ~rate real assignment =
  let st =
    {
      ss_real = Array.of_list real;
      ss_rate = rate;
      halves = Hashtbl.create 64;
      ss_tentative = Hashtbl.create 64;
      ss_committed = Hashtbl.create 64;
      ss_budget = budget;
    }
  in
  List.iter
    (fun (op, slot) -> Hashtbl.replace st.ss_tentative op slot)
    assignment;
  let candidates op ~cstep =
    let unscheduled =
      List.filter
        (fun w -> not (Hashtbl.mem st.ss_committed w))
        (Cdfg.io_ops cdfg)
    in
    let all =
      List.concat
        (List.mapi
           (fun i rb ->
             List.filter_map
               (fun slice ->
                 if
                   rb_capable cdfg rb op slice
                   && slot_admissible st cdfg op ~cstep (i, slice)
                   && sub_repack st cdfg ~rate ~except:op ~slot:(i, slice)
                        ~cstep unscheduled
                 then Some (i, slice)
                 else None)
               (slices_of rb))
           (Array.to_list st.ss_real))
    in
    match Hashtbl.find_opt st.ss_tentative op with
    | Some slot when List.mem slot all ->
        slot :: List.filter (fun s -> s <> slot) all
    | _ -> all
  in
  let io_can _sched op ~cstep = candidates op ~cstep <> [] in
  let io_commit _sched op ~cstep =
    match candidates op ~cstep with
    | [] -> invalid_arg "Subbus: commit without an admissible slot"
    | ((i, slice) as slot) :: _ ->
        let g = ((cstep mod rate) + rate) mod rate in
        let entry =
          let existing =
            List.find_map
              (fun h -> Hashtbl.find_opt st.halves (i, h, g))
              (halves_of slice)
          in
          match existing with
          | Some e ->
              e.e_ops <- e.e_ops @ [ op ];
              e
          | None ->
              { e_value = Cdfg.io_value cdfg op; e_cstep = cstep; e_ops = [ op ] }
        in
        List.iter
          (fun h ->
            if not (Hashtbl.mem st.halves (i, h, g)) then
              Hashtbl.add st.halves (i, h, g) entry)
          (halves_of slice);
        Hashtbl.remove st.ss_tentative op;
        Hashtbl.replace st.ss_committed op slot
  in
  (st, { LS.io_can; io_commit })

let allocation_of st =
  let rows = ref [] in
  Hashtbl.iter
    (fun (i, h, g) e ->
      (* Report each entry once, on its lowest half. *)
      let primary =
        match h with
        | Lo -> true
        | Hi -> (
            match Hashtbl.find_opt st.halves (i, Lo, g) with
            | Some e' -> e' != e
            | None -> true)
        | Whole -> true
      in
      if primary then
        rows := ((i, h, g), (e.e_value, e.e_cstep, e.e_ops)) :: !rows)
    st.halves;
  List.sort compare !rows

let schedule_over ?(budget = Budget.unlimited) cdfg mlib cons ~rate ~dynamic
    (real, assignment) =
  let st, hook = subbus_hook ~budget cdfg ~rate real assignment in
  let hook =
        if dynamic then hook
        else
          (* Static baseline: only the initially assigned slice counts. *)
          {
            LS.io_can =
              (fun _ op ~cstep ->
                match Hashtbl.find_opt st.ss_tentative op with
                | Some ((i, slice) as _slot) ->
                    rb_capable cdfg st.ss_real.(i) op slice
                    && slot_admissible st cdfg op ~cstep (i, slice)
                | None -> false);
            io_commit =
              (fun sched op ~cstep ->
                match Hashtbl.find_opt st.ss_tentative op with
                | Some (i, slice) ->
                    ignore sched;
                    let g = ((cstep mod rate) + rate) mod rate in
                    let entry =
                      match
                        List.find_map
                          (fun h -> Hashtbl.find_opt st.halves (i, h, g))
                          (halves_of slice)
                      with
                      | Some e ->
                          e.e_ops <- e.e_ops @ [ op ];
                          e
                      | None ->
                          {
                            e_value = Cdfg.io_value cdfg op;
                            e_cstep = cstep;
                            e_ops = [ op ];
                          }
                    in
                    List.iter
                      (fun h ->
                        if not (Hashtbl.mem st.halves (i, h, g)) then
                          Hashtbl.add st.halves (i, h, g) entry)
                      (halves_of slice);
                    Hashtbl.remove st.ss_tentative op;
                    Hashtbl.replace st.ss_committed op (i, slice)
                | None -> invalid_arg "Subbus: static commit without slot");
          }
      in
      match
        Mcs_obs.Trace.with_span "ch6.schedule" (fun () ->
            LS.run ~budget cdfg mlib cons ~rate ~io_hook:hook ())
      with
      | Error f -> (
          match f.LS.kind with
          | LS.Exhausted e ->
              (* Budget exhaustion is not a property of this bus structure:
                 surface it typed so the caller's ladder stops the sweep. *)
              raise (Budget.Out_of_budget e)
          | _ ->
              if Log.enabled Log.Debug then
                List.iter
                  (fun op ->
                    if not (Mcs_sched.Schedule.is_scheduled f.LS.partial op)
                    then Log.debug "[subbus] unscheduled: %s" (Cdfg.name cdfg op))
                  (Cdfg.ops cdfg);
              Error
                (Printf.sprintf "scheduling failed at cstep %d: %s"
                   f.LS.at_cstep f.LS.reason))
      | Ok schedule ->
          let pins =
            Mcs_connect.Pins.tally ~n_partitions:(Cdfg.n_partitions cdfg)
              (List.concat_map (fun (rb : real_bus) -> rb.ports) real)
          in
          let final =
            Hashtbl.fold (fun op slot acc -> (op, slot) :: acc) st.ss_committed []
            |> List.sort compare
          in
          Ok
            {
              real_buses = real;
              initial_assignment = assignment;
              final_assignment = final;
              allocation = allocation_of st;
              schedule;
              pins;
              static_pipe_length = None;
            }

let attempt ?(budget = Budget.unlimited) cdfg mlib cons ~rate ~slot_cap
    ~dynamic =
  M.incr m_attempts;
  match
    Mcs_obs.Trace.with_span "ch6.search"
      ~attrs:[ ("slot_cap", string_of_int slot_cap) ]
      (fun () -> search ~budget cdfg cons ~rate ~slot_cap ())
  with
  | Error m -> Error m
  | Ok ra -> schedule_over ~budget cdfg mlib cons ~rate ~dynamic ra

let total_pins t = Mcs_util.Listx.sum snd t.pins

(* Pin minimization is Chapter 6's whole point, so sweep the per-bus value
   cap over its range and keep the schedulable result with fewest pins
   (shorter pipe breaks ties). *)
let run ?(budget = Budget.unlimited) cdfg mlib cons ~rate () =
  let results =
    List.filter_map
      (fun cap ->
        match attempt ~budget cdfg mlib cons ~rate ~slot_cap:cap ~dynamic:true with
        | Ok t ->
            Log.debug "[subbus] cap=%d: pins=%d pipe=%d splits=%d" cap
              (total_pins t)
              (Mcs_sched.Schedule.pipe_length t.schedule)
              (List.length
                 (List.filter (fun b -> b.split_at <> None) t.real_buses));
            let static_pipe_length =
              match
                attempt ~budget cdfg mlib cons ~rate ~slot_cap:cap
                  ~dynamic:false
              with
              | Ok t' -> Some (Mcs_sched.Schedule.pipe_length t'.schedule)
              | Error _ -> None
            in
            Some { t with static_pipe_length }
        | Error m ->
            Log.debug "[subbus] cap=%d: %s" cap m;
            None)
      (List.rev (Mcs_util.Listx.range 1 (rate + 1)))
  in
  match
    Mcs_util.Listx.min_by
      (fun t ->
        (1000 * total_pins t) + Mcs_sched.Schedule.pipe_length t.schedule)
      results
  with
  | Some best -> Ok best
  | None -> Error "no schedulable sub-bus connection found at any slot cap"

let run_design (design : Benchmarks.design) ~rate =
  let cons = Benchmarks.constraints_for_bidir design ~rate in
  run design.Benchmarks.cdfg design.Benchmarks.mlib cons ~rate ()

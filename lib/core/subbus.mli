(** Chapter 6: sharing communication buses within a cycle.

    A bus may be logically divided into (at most) two sub-buses, each a
    contiguous slice of its lines, so two values can cross it in the same
    control step.  Following the prototype simplifications of §6.1.2:

    - a bus's width is the largest bit width assigned to it (ports are never
      widened just to enable sharing);
    - a bus splits only when the new operation fits the second sub-bus while
      every operation already assigned fits the first (so no occupant's
      ports need rewiring); a value may still group both sub-buses
      ([Whole]);
    - I/O ports are bidirectional (the assumption of the Chapter 6
      experiments). *)

open Mcs_cdfg

type sub = Lo | Hi | Whole

type real_bus = {
  width : int;
  split_at : int option;  (** width of the first sub-bus *)
  ports : (int * int) list;  (** (partition, r_{i,h}) with r > 0 *)
  carried : (Types.op_id * sub) list;
}

type t = {
  real_buses : real_bus list;
  initial_assignment : (Types.op_id * (int * sub)) list;
  final_assignment : (Types.op_id * (int * sub)) list;
  allocation : ((int * sub * int) * (string * int * Types.op_id list)) list;
      (** [((bus, slice, group), (value, cstep, ops))] *)
  schedule : Mcs_sched.Schedule.t;
  pins : (int * int) list;
  static_pipe_length : int option;
}

val search :
  ?budget:Mcs_resilience.Budget.t ->
  Cdfg.t ->
  Constraints.t ->
  rate:int ->
  ?slot_cap:int ->
  unit ->
  (real_bus list * (Types.op_id * (int * sub)) list, string) result
(** Connection synthesis alone: buses (with splits) plus the tentative
    assignment of each I/O operation to (bus, slice).  [budget] bounds the
    backtracking search; exhaustion (and the [exhaust-heuristic] fault)
    raises {!Mcs_resilience.Budget.Out_of_budget} so the caller's
    degradation ladder can take over. *)

val schedule_over :
  ?budget:Mcs_resilience.Budget.t ->
  Cdfg.t ->
  Module_lib.t ->
  Constraints.t ->
  rate:int ->
  dynamic:bool ->
  real_bus list * (Types.op_id * (int * sub)) list ->
  (t, string) result
(** List scheduling over an already-synthesized bus structure (a {!search}
    result): builds the sub-slot hook — restricted reassignment when
    [dynamic], the initially assigned slice only otherwise — and returns
    the full flow record ([static_pipe_length] left [None]).  Lets a pass
    manager run connection synthesis and scheduling as separate phases
    without re-searching.  [budget] exhaustion inside the scheduler raises
    {!Mcs_resilience.Budget.Out_of_budget} (it is not a property of this
    bus structure); other scheduling failures return [Error]. *)

val attempt :
  ?budget:Mcs_resilience.Budget.t ->
  Cdfg.t ->
  Module_lib.t ->
  Constraints.t ->
  rate:int ->
  slot_cap:int ->
  dynamic:bool ->
  (t, string) result
(** {!search} at one slot cap followed by {!schedule_over}. *)

val run :
  ?budget:Mcs_resilience.Budget.t ->
  Cdfg.t ->
  Module_lib.t ->
  Constraints.t ->
  rate:int ->
  unit ->
  (t, string) result
(** Full Chapter 6 flow: connection synthesis with sub-bus sharing, then
    list scheduling over the sub-slots with the restricted reassignment of
    §6.2 (an I/O operation may take any capable free slice; chained
    double-preemptions are pruned).  Retries with lower slot caps like the
    Chapter 4 flow. *)

val run_design : Benchmarks.design -> rate:int -> (t, string) result

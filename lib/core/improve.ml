open Mcs_cdfg
module C = Mcs_connect.Connection
module H = Mcs_connect.Heuristic
module R = Mcs_connect.Reassign
module LS = Mcs_sched.List_sched

(* Deterministic perturbation for trial [t]: small priority jitter, enough
   to reorder ties and near-ties without drowning the critical path. *)
let bias_for ~trial ~n =
  Array.init n (fun op ->
      if trial = 0 then 0
      else (Hashtbl.hash (trial, op) mod (2 * trial)) - trial)

(* Postponement floors for even trials: hold back non-critical I/O
   operations a little, freeing early slots for the critical chains (the
   paper's manual postponement). *)
let floors_for cdfg mlib ~trial ~rate =
  let n = Cdfg.n_ops cdfg in
  if trial mod 2 = 1 then Array.make n 0
  else begin
    let prio = LS.priorities cdfg mlib in
    let cutoff =
      let sorted = List.sort compare (Array.to_list prio) in
      List.nth sorted (n / 2)
    in
    Array.init n (fun op ->
        if Cdfg.is_io cdfg op && prio.(op) <= cutoff then
          (trial / 2) mod (rate + 1)
        else 0)
  end

let pre_connect cdfg mlib cons ~rate ~mode ?(trials = 12) () =
  let n = Cdfg.n_ops cdfg in
  let first_err = ref "" in
  let best = ref None in
  let consider (t : Pre_connect.t) =
    let len = Mcs_sched.Schedule.pipe_length t.Pre_connect.schedule in
    match !best with
    | Some (l, _) when l <= len -> ()
    | _ -> best := Some (len, t)
  in
  let try_cap slot_cap =
    match H.search cdfg cons ~rate ~mode ~slot_cap () with
    | Error e -> if !first_err = "" then first_err := H.error_message e
    | Ok res ->
        let pins = Mcs_connect.Pins.of_connection res.H.conn in
        let static_pipe_length = ref None in
        (let st =
           R.create cdfg res.H.conn ~rate ~initial:res.H.assign ~dynamic:false
         in
         match LS.run cdfg mlib cons ~rate ~io_hook:(R.hook st) () with
         | Ok s -> static_pipe_length := Some (Mcs_sched.Schedule.pipe_length s)
         | Error _ -> ());
        List.iter
          (fun trial ->
            let dyn =
              R.create cdfg res.H.conn ~rate ~initial:res.H.assign
                ~dynamic:true
            in
            match
              LS.run cdfg mlib cons ~rate ~io_hook:(R.hook dyn)
                ~priority_bias:(bias_for ~trial ~n)
                ~min_cstep:(floors_for cdfg mlib ~trial ~rate)
                ()
            with
            | Error f ->
                if !first_err = "" then first_err := f.LS.reason
            | Ok schedule ->
                consider
                  {
                    Pre_connect.connection = res.H.conn;
                    initial_assignment = res.H.assign;
                    final_assignment = R.final_assignment dyn;
                    allocation = R.allocation_table dyn;
                    schedule;
                    pins;
                    static_pipe_length = !static_pipe_length;
                    slot_cap;
                  })
          (Mcs_util.Listx.range 0 trials)
  in
  let rec caps c = if c < 1 then () else begin
    (* Stop lowering once something schedules: lower caps only add pins. *)
    try_cap c;
    if !best = None then caps (c - 1)
  end
  in
  caps rate;
  match !best with
  | Some (_, t) -> Ok t
  | None ->
      Error
        (Printf.sprintf "no perturbation found a schedule (first: %s)"
           !first_err)

let rescue = pre_connect

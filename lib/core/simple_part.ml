open Mcs_cdfg
module Model = Mcs_ilp.Model

(* --- Definition 3.2 --- *)

let violations cdfg =
  let n = Cdfg.n_partitions cdfg in
  let parts = Mcs_util.Listx.range 1 (n + 1) in
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun m -> errs := m :: !errs) fmt in
  List.iter
    (fun p ->
      let drives = Cdfg.drives cdfg p in
      let driven = Cdfg.driven_by cdfg p in
      if List.length drives > 2 then
        err "partition %d drives %d partitions (max 2)" p (List.length drives);
      if List.length driven > 2 then
        err "partition %d is driven by %d partitions (max 2)" p
          (List.length driven);
      (match driven with
      | [ q1; q2 ] ->
          List.iter
            (fun q ->
              if Cdfg.drives cdfg q <> [ p ] then
                err
                  "partition %d has two drivers, but driver %d also drives \
                   others"
                  p q)
            [ q1; q2 ]
      | _ -> ());
      match drives with
      | [ a1; a2 ] ->
          List.iter
            (fun a ->
              if Cdfg.driven_by cdfg a <> [ p ] then
                err
                  "partition %d drives two partitions, but %d has other \
                   drivers"
                  p a)
            [ a1; a2 ]
      | _ -> ())
    parts;
  List.rev !errs

let is_simple cdfg = violations cdfg = []

(* --- Pin allocation ILP (§3.1.1, reduced per §3.1.2) --- *)

module Pin_ilp = struct
  type merged = {
    m_src : int;
    m_dst : int;
    m_width : int;
    m_ops : Types.op_id list;
  }

  let split_ops cdfg =
    (* Single-fanout operations merge by (src, dst, width); the rest stay
       individual with the y-linearization of Constraint 3.6. *)
    let single, multi =
      List.partition
        (fun w ->
          List.length (Cdfg.io_ops_of_value cdfg (Cdfg.io_value cdfg w)) = 1)
        (Cdfg.io_ops cdfg)
    in
    let merged =
      List.map
        (fun ((src, dst, width), ops) -> { m_src = src; m_dst = dst; m_width = width; m_ops = ops })
        (Mcs_util.Listx.group_by
           (fun w -> (Cdfg.io_src cdfg w, Cdfg.io_dst cdfg w, Cdfg.io_width cdfg w))
           single)
    in
    (merged, multi)

  let model cdfg cons ~rate ~fixed =
    let m = Model.create () in
    let n = Cdfg.n_partitions cdfg in
    let merged, multi = split_ops cdfg in
    let groups = Mcs_util.Listx.range 0 rate in
    (* Variables. *)
    let xm =
      List.map
        (fun g ->
          ( g,
            List.map
              (fun k ->
                Model.int_var m ~lo:0
                  ~hi:(List.length g.m_ops)
                  (Printf.sprintf "x_%d_%d_w%d_k%d" g.m_src g.m_dst g.m_width k))
              groups ))
        merged
    in
    let xw =
      List.map
        (fun w ->
          ( w,
            List.map
              (fun k ->
                Model.binary m
                  (Printf.sprintf "x_%s_k%d" (Cdfg.name cdfg w) k))
              groups ))
        multi
    in
    let multi_values =
      Mcs_util.Listx.uniq String.equal (List.map (Cdfg.io_value cdfg) multi)
    in
    let yv =
      List.map
        (fun v ->
          ( v,
            List.map
              (fun k -> Model.binary m (Printf.sprintf "y_%s_k%d" v k))
              groups ))
        multi_values
    in
    let o =
      List.map
        (fun j ->
          ( j,
            Model.int_var m ~lo:0
              ~hi:(Constraints.pins cons j)
              (Printf.sprintf "o_%d" j) ))
        (Mcs_util.Listx.range 0 (n + 1))
    in
    let ovar j = List.assoc j o in
    (* Constraint 3.4 / its merged form: everything allocated somewhere. *)
    List.iter
      (fun (g, vars) ->
        Model.add_ge m
          (Model.sum (List.map Model.v vars))
          (Model.const (List.length g.m_ops)))
      xm;
    List.iter
      (fun (_, vars) ->
        Model.add_ge m (Model.sum (List.map Model.v vars)) (Model.const 1))
      xw;
    (* Constraint 3.6: y_v,k = max over the value's operations. *)
    List.iter
      (fun (v, yvars) ->
        let ops_of_v = List.filter (fun w -> String.equal (Cdfg.io_value cdfg w) v) multi in
        List.iteri
          (fun k y ->
            let xs = List.map (fun w -> List.nth (List.assoc w xw) k) ops_of_v in
            Model.add_le m
              (Model.sum (List.map Model.v xs))
              (Model.term (List.length ops_of_v) y))
          yvars)
      yv;
    (* Constraints 3.7 (inputs + o_i <= T_i) and 3.8 (outputs <= o_j). *)
    List.iter
      (fun i ->
        List.iteri
          (fun k _ ->
            let input_terms =
              List.filter_map
                (fun (g, vars) ->
                  if g.m_dst = i then
                    Some (Model.term g.m_width (List.nth vars k))
                  else None)
                xm
              @ List.filter_map
                  (fun (w, vars) ->
                    if Cdfg.io_dst cdfg w = i then
                      Some (Model.term (Cdfg.io_width cdfg w) (List.nth vars k))
                    else None)
                  xw
            in
            Model.add_le m
              (Model.add (Model.sum input_terms) (Model.v (ovar i)))
              (Model.const (Constraints.pins cons i));
            let output_terms =
              List.filter_map
                (fun (g, vars) ->
                  if g.m_src = i then
                    Some (Model.term g.m_width (List.nth vars k))
                  else None)
                xm
              @ List.filter_map
                  (fun (v, yvars) ->
                    let ops_of_v =
                      List.filter
                        (fun w -> String.equal (Cdfg.io_value cdfg w) v)
                        multi
                    in
                    match ops_of_v with
                    | w :: _ when Cdfg.io_src cdfg w = i ->
                        Some
                          (Model.term (Cdfg.io_width cdfg w) (List.nth yvars k))
                    | _ -> None)
                  yv
            in
            Model.add_le m (Model.sum output_terms) (Model.v (ovar i)))
          groups)
      (Mcs_util.Listx.range 0 (n + 1));
    (* Fixed (already scheduled) operations. *)
    let fixed_merged = Hashtbl.create 16 in
    List.iter
      (fun (w, k) ->
        match List.assoc_opt w xw with
        | Some vars -> Model.add_ge m (Model.v (List.nth vars k)) (Model.const 1)
        | None ->
            let key =
              (Cdfg.io_src cdfg w, Cdfg.io_dst cdfg w, Cdfg.io_width cdfg w, k)
            in
            Hashtbl.replace fixed_merged key
              (1 + Option.value ~default:0 (Hashtbl.find_opt fixed_merged key)))
      fixed;
    Hashtbl.iter
      (fun (src, dst, width, k) count ->
        match
          List.find_opt
            (fun (g, _) -> g.m_src = src && g.m_dst = dst && g.m_width = width)
            xm
        with
        | Some (_, vars) ->
            Model.add_ge m (Model.v (List.nth vars k)) (Model.const count)
        | None -> ())
      fixed_merged;
    m

  (* Rate deliberately left out of the key: the whole point is that rate
     r's basis warm-starts rate r+1 (variables are named, so r's columns
     are a subset of r+1's).  A collision between same-shaped designs is
     benign — unmatched names drop out of the crash list. *)
  let warm_key cdfg =
    Printf.sprintf "pin-ilp:%dp:%do" (Cdfg.n_partitions cdfg)
      (List.length (Cdfg.io_ops cdfg))

  let feasible ?budget ?(method_ = `Branch_bound) ?arith cdfg cons ~rate
      ~fixed =
    let m = model cdfg cons ~rate ~fixed in
    match Model.solve ?budget ~method_ ?arith ~warm_key:(warm_key cdfg) m with
    | Model.Optimal _ -> true
    (* A feasibility model with an integer point in hand is feasible even
       when the node budget ran out before proving it optimal. *)
    | Model.Feasible _ -> true
    | Model.Infeasible -> false
    | Model.Unbounded -> true
    | Model.Unknown -> false
    | Model.Exhausted e ->
        (* Unlike [Unknown] (the solver's own node cap, where postponing
           the operation is safe and convergence is still plausible), an
           exhausted caller budget means the whole schedule attempt is out
           of time: propagate so [List_sched.run] fails typed and the
           flow's degradation ladder can take over. *)
        raise (Mcs_resilience.Budget.Out_of_budget e)
end

let hook ?budget ?method_ ?arith cdfg cons ~rate =
  let committed = ref [] in
  let io_can sched op ~cstep =
    ignore sched;
    let k = cstep mod rate in
    Pin_ilp.feasible ?budget ?method_ ?arith cdfg cons ~rate
      ~fixed:((op, k) :: !committed)
  in
  let io_commit sched op ~cstep =
    ignore sched;
    committed := (op, cstep mod rate) :: !committed
  in
  { Mcs_sched.List_sched.io_can; io_commit }

(* --- Theorem 3.1 constructive connection --- *)

module Theorem31 = struct
  type bundle = {
    owner : [ `Out of int | `In of int ];
    counterparts : int list;
    wires : int;
  }

  module Sched = Mcs_sched.Schedule

  (* Bits partition [f] sends to partition [a] in control-step group [k]. *)
  let bits_at sched ~f ~a k =
    let cdfg = Sched.cdfg sched in
    Mcs_util.Listx.sum
      (fun w ->
        if
          Cdfg.io_src cdfg w = f
          && Cdfg.io_dst cdfg w = a
          && Sched.group sched w = k
        then Cdfg.io_width cdfg w
        else 0)
      (Cdfg.io_ops cdfg)

  (* Output bits of [f] in group [k], counting a value sent to several
     destinations in the same control step once (it shares output pins,
     section 2.2.1). *)
  let out_bits sched ~f k =
    let cdfg = Sched.cdfg sched in
    Mcs_util.Listx.sum
      (fun v ->
        let live =
          List.filter
            (fun w -> Cdfg.io_src cdfg w = f && Sched.group sched w = k)
            (Cdfg.io_ops_of_value cdfg v)
        in
        match live with
        | [] -> 0
        | w :: _ ->
            let csteps =
              Mcs_util.Listx.uniq ( = ) (List.map (Sched.cstep sched) live)
            in
            Cdfg.io_width cdfg w * List.length csteps)
      (Cdfg.values_output_by cdfg f)

  let in_bits sched ~a k =
    let cdfg = Sched.cdfg sched in
    Mcs_util.Listx.sum
      (fun w ->
        if Cdfg.io_dst cdfg w = a && Sched.group sched w = k then
          Cdfg.io_width cdfg w
        else 0)
      (Cdfg.io_ops cdfg)

  let groups sched = Mcs_util.Listx.range 0 (Sched.rate sched)

  let max_over sched f =
    List.fold_left (fun acc k -> max acc (f k)) 0 (groups sched)

  let abc ~owner ~x ~y ~mx ~my ~needed =
    let nc = max 0 (mx + my - needed) in
    List.filter
      (fun b -> b.wires > 0)
      [
        { owner; counterparts = [ x ]; wires = mx - nc };
        { owner; counterparts = [ y ]; wires = my - nc };
        { owner; counterparts = [ x; y ]; wires = nc };
      ]

  let neighbours sched ~of_src p =
    let cdfg = Sched.cdfg sched in
    List.sort_uniq compare
      (List.filter_map
         (fun w ->
           if of_src && Cdfg.io_src cdfg w = p then Some (Cdfg.io_dst cdfg w)
           else if (not of_src) && Cdfg.io_dst cdfg w = p then
             Some (Cdfg.io_src cdfg w)
           else None)
         (Cdfg.io_ops cdfg))

  let output_end sched f =
    let d = neighbours sched ~of_src:true f in
    let o_f = max_over sched (out_bits sched ~f) in
    match d with
    | [] -> []
    | [ a ] -> [ { owner = `Out f; counterparts = [ a ]; wires = o_f } ]
    | [ a; b ] ->
        abc ~owner:(`Out f) ~x:a ~y:b
          ~mx:(max_over sched (bits_at sched ~f ~a))
          ~my:(max_over sched (fun k -> bits_at sched ~f ~a:b k))
          ~needed:o_f
    | _ -> [ { owner = `Out f; counterparts = d; wires = o_f } ]

  let input_end sched a =
    let s = neighbours sched ~of_src:false a in
    let i_a = max_over sched (in_bits sched ~a) in
    match s with
    | [] -> []
    | [ f ] -> [ { owner = `In a; counterparts = [ f ]; wires = i_a } ]
    | [ f1; f2 ] ->
        abc ~owner:(`In a) ~x:f1 ~y:f2
          ~mx:(max_over sched (fun k -> bits_at sched ~f:f1 ~a k))
          ~my:(max_over sched (fun k -> bits_at sched ~f:f2 ~a k))
          ~needed:i_a
    | _ -> [ { owner = `In a; counterparts = s; wires = i_a } ]

  let connect sched =
    let cdfg = Sched.cdfg sched in
    let all = Mcs_util.Listx.range 0 (Cdfg.n_partitions cdfg + 1) in
    List.concat_map (output_end sched) all
    @ List.concat_map (input_end sched) all

  let check sched bundles =
    let ok = ref (Ok ()) in
    let fail fmt =
      Format.kasprintf (fun m -> if !ok = Ok () then ok := Error m) fmt
    in
    let cdfg = Sched.cdfg sched in
    let all = Mcs_util.Listx.range 0 (Cdfg.n_partitions cdfg + 1) in
    let wires_of owner pred =
      Mcs_util.Listx.sum
        (fun b -> if b.owner = owner && pred b.counterparts then b.wires else 0)
        bundles
    in
    List.iter
      (fun k ->
        List.iter
          (fun p ->
            (* End totals. *)
            let out_total = wires_of (`Out p) (fun _ -> true) in
            let in_total = wires_of (`In p) (fun _ -> true) in
            if out_bits sched ~f:p k > out_total then
              fail "group %d: output end of partition %d oversubscribed" k p;
            if in_bits sched ~a:p k > in_total then
              fail "group %d: input end of partition %d oversubscribed" k p;
            (* Per-counterpart reachability: bits to [a] must fit in the
               bundles of this end that reach [a]. *)
            List.iter
              (fun a ->
                if a <> p then begin
                  let reach = wires_of (`Out p) (fun cps -> List.mem a cps) in
                  if bits_at sched ~f:p ~a k > reach then
                    fail
                      "group %d: partition %d cannot reach %d (%d bits > %d \
                       wires)"
                      k p a
                      (bits_at sched ~f:p ~a k)
                      reach;
                  let reach_in = wires_of (`In a) (fun cps -> List.mem p cps) in
                  if bits_at sched ~f:p ~a k > reach_in then
                    fail
                      "group %d: input end of %d unreachable from %d" k a p
                end)
              all)
          all)
      (groups sched);
    !ok
end

type result = {
  schedule : Mcs_sched.Schedule.t;
  links : Theorem31.bundle list;
  pins_needed : (int * int) list;
}

let run ?method_ (design : Benchmarks.design) ~rate =
  let cdfg = design.Benchmarks.cdfg and mlib = design.Benchmarks.mlib in
  if not (is_simple cdfg) then
    invalid_arg "Simple_part.run: partitioning is not simple";
  let cons = Benchmarks.constraints_for design ~rate in
  let io_hook = hook ?method_ cdfg cons ~rate in
  match
    Mcs_obs.Trace.with_span "ch3.schedule" (fun () ->
        Mcs_sched.List_sched.run cdfg mlib cons ~rate ~io_hook ())
  with
  | Error f ->
      Error
        (Printf.sprintf "scheduling failed at control step %d: %s"
           f.Mcs_sched.List_sched.at_cstep f.Mcs_sched.List_sched.reason)
  | Ok schedule -> (
      let links =
        Mcs_obs.Trace.with_span "ch3.connect" (fun () ->
            Theorem31.connect schedule)
      in
      match Theorem31.check schedule links with
      | Error m -> Error ("Theorem 3.1 connection check failed: " ^ m)
      | Ok () ->
          let pins_needed =
            Mcs_connect.Pins.tally ~n_partitions:(Cdfg.n_partitions cdfg)
              (List.map
                 (fun (b : Theorem31.bundle) ->
                   ((match b.owner with `Out q | `In q -> q), b.wires))
                 links)
          in
          Ok { schedule; links; pins_needed })

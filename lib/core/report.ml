open Mcs_cdfg

let table ppf ~title ~header rows =
  (* Column count is the widest of the header and every row, so ragged
     input renders instead of raising; missing cells are blank. *)
  let cols =
    List.fold_left
      (fun acc row -> max acc (List.length row))
      (List.length header) rows
  in
  if cols = 0 then Format.fprintf ppf "@[<v>%s@,@]" title
  else begin
    let widths = Array.make cols 0 in
    let measure row =
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row
    in
    measure header;
    List.iter measure rows;
    let pad i cell =
      let missing = widths.(i) - String.length cell in
      cell ^ String.make (max 0 missing) ' '
    in
    let fill row =
      row @ List.init (cols - List.length row) (fun _ -> "")
    in
    let render row = String.concat "  " (List.mapi pad (fill row)) in
    let rule =
      String.make
        (max 1 (Array.fold_left ( + ) (2 * (cols - 1)) widths))
        '-'
    in
    Format.fprintf ppf "@[<v>%s@,%s@,%s@," title (render header) rule;
    List.iter (fun row -> Format.fprintf ppf "%s@," (render row)) rows;
    Format.fprintf ppf "@]"
  end

let schedule ppf sched = Mcs_sched.Schedule.pp ppf sched

let connection cdfg ppf conn = Mcs_connect.Connection.pp cdfg ppf conn

let bundles ppf bs =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (b : Simple_part.Theorem31.bundle) ->
      let owner, dir =
        match b.owner with
        | `Out p -> (p, "out")
        | `In p -> (p, "in ")
      in
      Format.fprintf ppf "P%d.%s %2d wires <-> {%s}@," owner dir b.wires
        (String.concat ", "
           (List.map (fun p -> "P" ^ string_of_int p) b.counterparts)))
    bs;
  Format.fprintf ppf "@]"

let names cdfg ops = String.concat " " (List.map (Cdfg.name cdfg) ops)

let bus_assignment cdfg ppf ~initial ~final =
  let buses =
    List.sort_uniq compare (List.map snd initial @ List.map snd final)
  in
  let ops_on assign h =
    List.filter_map (fun (w, h') -> if h' = h then Some w else None) assign
  in
  let rows =
    List.map
      (fun h ->
        [
          Printf.sprintf "C%d" (h + 1);
          names cdfg (ops_on initial h);
          names cdfg (ops_on final h);
        ])
      buses
  in
  table ppf ~title:"Bus assignment"
    ~header:[ "Bus"; "Initial"; "Final" ]
    rows

let bus_allocation cdfg ~rate ppf alloc =
  let buses = List.sort_uniq compare (List.map (fun ((h, _), _) -> h) alloc) in
  let rows =
    List.map
      (fun g ->
        string_of_int g
        :: List.map
             (fun h ->
               match List.assoc_opt (h, g) alloc with
               | Some (_, cstep, ops) ->
                   Printf.sprintf "%s@%d" (names cdfg ops) cstep
               | None -> "-")
             buses)
      (Mcs_util.Listx.range 0 rate)
  in
  table ppf ~title:"Bus allocation (per control-step group)"
    ~header:
      ("Group" :: List.map (fun h -> Printf.sprintf "C%d" (h + 1)) buses)
    rows

let pins_row pins = List.map (fun (_, n) -> string_of_int n) pins

let real_buses cdfg ppf rbs =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (b : Subbus.real_bus) ->
      let slice op = function
        | Subbus.Lo -> Cdfg.name cdfg op ^ "'"
        | Subbus.Hi -> Cdfg.name cdfg op ^ "''"
        | Subbus.Whole -> Cdfg.name cdfg op
      in
      Format.fprintf ppf "C%-2d %2d lines%s  ports[%s]  carries: %s@," (i + 1)
        b.width
        (match b.split_at with
        | Some lo -> Printf.sprintf " (split %d|%d)" lo (b.width - lo)
        | None -> "")
        (String.concat " "
           (List.map (fun (p, r) -> Printf.sprintf "P%d:%d" p r) b.ports))
        (String.concat " " (List.map (fun (w, s) -> slice w s) b.carried)))
    rbs;
  Format.fprintf ppf "@]"

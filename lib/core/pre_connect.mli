(** Chapter 4 flow: interchip connection synthesis {e before} scheduling.

    1. Determine the bus structure and a tentative I/O-operation-to-bus
       assignment with the heuristic search of §4.1.2.
    2. List-schedule all partitions with communication buses as the gating
       resource, reassigning I/O operations to buses dynamically (§4.2).

    When the tightest connection (every bus loaded up to the initiation
    rate) leaves the scheduler no slack — the situation the paper's ILP
    objective (4.6), "maximize the number of buses actually used", guards
    against — the flow retries with a lower per-bus value cap, trading pins
    for bandwidth, until the schedule completes. *)

open Mcs_cdfg

type t = {
  connection : Mcs_connect.Connection.t;
  initial_assignment : (Types.op_id * int) list;
  final_assignment : (Types.op_id * int) list;
  allocation : ((int * int) * (string * int * Types.op_id list)) list;
      (** [((bus, group), (value, cstep, ops))] *)
  schedule : Mcs_sched.Schedule.t;
  pins : (int * int) list;  (** per partition *)
  static_pipe_length : int option;
      (** pipe length without reassignment (the "w/o reassignment" column
          of Tables 4.2 / 4.10), when the static run completes *)
  slot_cap : int;  (** per-bus value cap the successful attempt used *)
}

val attempt :
  Cdfg.t ->
  Module_lib.t ->
  Constraints.t ->
  rate:int ->
  mode:Mcs_connect.Connection.mode ->
  branching:int ->
  slot_cap:int ->
  (t, string) result
(** One search + schedule round at a fixed per-bus value cap (no retry
    loop), for callers — the {!Mcs_flow} pass manager — that orchestrate
    the cap sweep themselves. *)

val run :
  Cdfg.t ->
  Module_lib.t ->
  Constraints.t ->
  rate:int ->
  mode:Mcs_connect.Connection.mode ->
  ?branching:int ->
  unit ->
  (t, string) result

val run_design :
  Benchmarks.design ->
  rate:int ->
  mode:Mcs_connect.Connection.mode ->
  (t, string) result
(** {!run} with the design's pin budgets (unidirectional or bidirectional
    per [mode]) and minimal functional units. *)

(** Chapter 5 flow: interchip connection synthesis {e after} scheduling.

    A force-directed schedule fixes every I/O operation's control-step
    group; compatible I/O operations (different groups, or same value in the
    same control step) may then share a communication bus.  Minimizing pins
    becomes a maximum-gain clique partitioning of the compatibility graph —
    NP-hard in general, but the graph's group structure (Fig. 5.1) lets the
    heuristic of Fig. 5.2 build the cliques with a series of bipartite
    weighted matchings (Hungarian algorithm), largest groups first. *)

open Mcs_cdfg

type t = {
  schedule : Mcs_sched.Schedule.t;
  connection : Mcs_connect.Connection.t;
  assignment : (Types.op_id * int) list;  (** operation -> bus (clique) *)
  pins : (int * int) list;
  fus : ((int * string) * int) list;
      (** functional units the FDS schedule implies *)
}

val weight :
  Cdfg.t -> mode:Mcs_connect.Connection.mode ->
  Types.op_id -> Types.op_id -> int
(** The edge weight of §5.2 (with all [wf_i = 1]): pins shareable when the
    two operations ride one bus — [min] of the bit widths per common
    endpoint.  In bidirectional mode endpoints compare as unordered sets. *)

val cliques :
  ?budget:Mcs_resilience.Budget.t ->
  Mcs_sched.Schedule.t -> mode:Mcs_connect.Connection.mode ->
  Types.op_id list list
(** The clique partitioning of the scheduled I/O operations.  [budget]
    bounds the Hungarian merge passes; exhaustion (and the
    [exhaust-hungarian] fault) raises
    {!Mcs_resilience.Budget.Out_of_budget}. *)

val cliques_trivial : Mcs_sched.Schedule.t -> Types.op_id list list
(** The unmerged supernodes (same value in the same control step, else
    singleton) — every one a valid clique, no Hungarian passes.  The
    degraded fallback when {!cliques} runs out of budget: more buses and
    pins, but always available in linear time. *)

val connection_of_cliques :
  Cdfg.t ->
  mode:Mcs_connect.Connection.mode ->
  Types.op_id list list ->
  Mcs_connect.Connection.t * (Types.op_id * int) list
(** Materialize a clique partitioning as one bus per clique, each wide
    enough for every member at both endpoints, plus the operation-to-bus
    assignment. *)

val run :
  Cdfg.t ->
  Module_lib.t ->
  rate:int ->
  pipe_length:int ->
  mode:Mcs_connect.Connection.mode ->
  unit ->
  (t, string) result

val run_design :
  Benchmarks.design ->
  rate:int ->
  pipe_length:int ->
  mode:Mcs_connect.Connection.mode ->
  (t, string) result

(** Chapter 3: synthesis for designs with a {e simple} partitioning.

    For a simple partitioning (Definition 3.2) the interchip communication
    problem reduces to pin allocation: Theorem 3.1 proves that any schedule
    whose I/O operations fit the per-chip pin budgets admits a conflict-free
    interchip connection, and its proof is constructive.  Scheduling is
    ordinary list scheduling with a pin-allocation feasibility checker in
    front of every I/O operation (Fig. 3.4); the checker decides an ILP
    (§3.1.1, reduced as in §3.1.2) whose variables say in which control-step
    group each I/O operation's pins can be allocated. *)

open Mcs_cdfg

val is_simple : Cdfg.t -> bool
(** Definition 3.2, quantified over real partitions only (the outside world
    is exempt; see DESIGN.md). *)

val violations : Cdfg.t -> string list
(** Human-readable list of Definition 3.2 violations (empty iff simple). *)

(** The pin-allocation feasibility problem (Definition 3.3). *)
module Pin_ilp : sig
  val model :
    Cdfg.t -> Constraints.t -> rate:int ->
    fixed:(Types.op_id * int) list -> Mcs_ilp.Model.t
  (** The ILP of §3.1.1 with the single-fanout merge of §3.1.2; [fixed]
      pins already-scheduled I/O operations to their control-step groups. *)

  val feasible :
    ?budget:Mcs_resilience.Budget.t ->
    ?method_:[ `Branch_bound | `Gomory ] ->
    ?arith:Mcs_ilp.Fsimplex.arith ->
    Cdfg.t -> Constraints.t -> rate:int ->
    fixed:(Types.op_id * int) list -> bool
  (** Decides the model; [`Gomory] is the dissertation's §3.3 cutting-plane
      route, [`Branch_bound] (default) the exact reference.  A solver node
      limit that already found an integer point counts as feasible; a
      genuinely undecided node limit is treated as infeasible (safe for
      the scheduler: the operation is merely postponed).  Exhaustion of an
      explicit [budget] (or the [exhaust-ilp] fault), by contrast, raises
      {!Mcs_resilience.Budget.Out_of_budget} — the schedule attempt is out
      of time and the caller's degradation ladder decides what's next.

      [arith] (default {!Mcs_ilp.Fsimplex.arith_of_env}) picks the solver
      arithmetic; the float-certified mode registers its bases under a
      rate-independent {!Mcs_ilp.Warm} key so neighboring rates chain. *)
end

val hook :
  ?budget:Mcs_resilience.Budget.t ->
  ?method_:[ `Branch_bound | `Gomory ] ->
  ?arith:Mcs_ilp.Fsimplex.arith ->
  Cdfg.t -> Constraints.t -> rate:int -> Mcs_sched.List_sched.io_hook
(** The safety checker of Fig. 3.4: before an I/O operation is scheduled in
    a control step, verify a completing pin allocation still exists. *)

(** Constructive interchip connection of Theorem 3.1.

    Following the proof, "the connections at the input and output ends of a
    partition can be constructed independently": the connection is a set of
    per-end wire {e bundles}.  A partition's pin usage is the total width of
    its own ends' bundles; a fan of two counterparts is decomposed into the
    A/B/C bundles of Fig. 3.3, wider fans (only the exempt outside world)
    into one shared bus-style bundle per end. *)
module Theorem31 : sig
  type bundle = {
    owner : [ `Out of int | `In of int ];
        (** which partition's output or input end this bundle belongs to *)
    counterparts : int list;  (** partitions on the far side *)
    wires : int;
  }

  val connect : Mcs_sched.Schedule.t -> bundle list

  val check : Mcs_sched.Schedule.t -> bundle list -> (unit, string) result
  (** Replays every control-step group's transfers through the bundles and
      verifies no end is oversubscribed (including the A/B/C inequalities of
      the proof) — the "no communication conflict" claim of the theorem. *)
end

type result = {
  schedule : Mcs_sched.Schedule.t;
  links : Theorem31.bundle list;
  pins_needed : (int * int) list;  (** per partition, pins actually used *)
}

val run :
  ?method_:[ `Branch_bound | `Gomory ] ->
  Benchmarks.design -> rate:int ->
  (result, string) Stdlib.result
(** Whole Chapter 3 flow on a simple-partitioned design.
    @raise Invalid_argument if the design's partitioning is not simple. *)

open Mcs_cdfg
module C = Mcs_connect.Connection
module Sched = Mcs_sched.Schedule

type t = {
  schedule : Mcs_sched.Schedule.t;
  connection : C.t;
  assignment : (Types.op_id * int) list;
  pins : (int * int) list;
  fus : ((int * string) * int) list;
}

let endpoints cdfg ~mode w =
  let s = Cdfg.io_src cdfg w and d = Cdfg.io_dst cdfg w in
  match mode with
  | C.Unidir -> [ (`Out, s); (`In, d) ]
  | C.Bidir -> [ (`Port, min s d); (`Port, max s d) ]

let weight cdfg ~mode w1 w2 =
  let common =
    List.filter
      (fun e -> List.mem e (endpoints cdfg ~mode w2))
      (endpoints cdfg ~mode w1)
  in
  List.length common * min (Cdfg.io_width cdfg w1) (Cdfg.io_width cdfg w2)

(* Supernode: a set of I/O operations destined for one clique (= bus). *)
let super_weight cdfg ~mode s1 s2 =
  List.fold_left
    (fun acc w1 ->
      List.fold_left (fun acc w2 -> acc + weight cdfg ~mode w1 w2) acc s2)
    0 s1

(* The per-group supernodes, before any merging: each is a valid clique on
   its own (same value in the same control step, or a singleton). *)
let supernode_groups sched =
  let cdfg = Sched.cdfg sched in
  let rate = Sched.rate sched in
  List.filter_map
    (fun k ->
      let members =
        List.filter (fun w -> Sched.group sched w = k) (Cdfg.io_ops cdfg)
      in
      if members = [] then None
      else
        Some
          (List.map snd
             (Mcs_util.Listx.group_by
                (fun w -> (Cdfg.io_value cdfg w, Sched.cstep sched w))
                members)))
    (Mcs_util.Listx.range 0 rate)

let cliques_trivial sched = List.concat (supernode_groups sched)

let cliques ?budget sched ~mode =
  Mcs_obs.Trace.with_span "cliques.merge" @@ fun () ->
  let cdfg = Sched.cdfg sched in
  (* Group G_k per control-step group; inside a group, operations
     transferring the same value in the same control step form one
     supernode (they can share a slot), everything else is singleton. *)
  let groups = supernode_groups sched in
  (* Largest group first; repeatedly merge the head group with the next by
     maximum-weight bipartite matching. *)
  let sorted =
    List.sort (fun a b -> compare (List.length b) (List.length a)) groups
  in
  match sorted with
  | [] -> []
  | g0 :: rest ->
      let merge acc g =
        let a = Array.of_list acc and b = Array.of_list g in
        let pairs =
          Mcs_graph.Hungarian.max_weight_matching ?budget
            ~n_left:(Array.length a) ~n_right:(Array.length b)
            ~weight:(fun i j -> Some (super_weight cdfg ~mode a.(i) b.(j)))
            ()
        in
        let matched_right = List.map snd pairs in
        let a' =
          Array.mapi
            (fun i s ->
              match List.assoc_opt i pairs with
              | Some j -> s @ b.(j)
              | None -> s)
            a
        in
        Array.to_list a'
        @ List.filteri (fun j _ -> not (List.mem j matched_right)) g
      in
      List.fold_left merge g0 rest

let connection_of_cliques cdfg ~mode cls =
  let conn = C.create mode ~n_partitions:(Cdfg.n_partitions cdfg) in
  let assignment = ref [] in
  List.iter
    (fun members ->
      let h = C.new_bus conn in
      List.iter
        (fun w ->
          C.widen_for conn ~bus:h ~src:(Cdfg.io_src cdfg w)
            ~dst:(Cdfg.io_dst cdfg w) ~width:(Cdfg.io_width cdfg w);
          assignment := (w, h) :: !assignment)
        members)
    cls;
  (conn, List.sort compare !assignment)

let run cdfg mlib ~rate ~pipe_length ~mode () =
  match
    Mcs_obs.Trace.with_span "ch5.fds" (fun () ->
        Mcs_sched.Fds.run cdfg mlib ~rate ~pipe_length ())
  with
  | Error e -> Error (Mcs_sched.Fds.error_message cdfg e)
  | Ok schedule ->
      let cls =
        Mcs_obs.Trace.with_span "ch5.clique_partition" (fun () ->
            cliques schedule ~mode)
      in
      let connection, assignment = connection_of_cliques cdfg ~mode cls in
      let pins = Mcs_connect.Pins.of_connection connection in
      Ok
        {
          schedule;
          connection;
          assignment;
          pins;
          fus = Mcs_sched.Fds.fu_requirements schedule;
        }

let run_design (design : Benchmarks.design) ~rate ~pipe_length ~mode =
  run design.Benchmarks.cdfg design.Benchmarks.mlib ~rate ~pipe_length ~mode ()

type resource = Wall | Nodes | Pivots | Passes | Augments

type exhausted = { resource : resource; limit : int; spent : int }

(* [deadline] is absolute (gettimeofday); [deadline_ms] keeps the original
   allowance so [halve] and diagnostics can reconstruct it.  Counters are
   mutable so one budget can be shared across nested solver calls (e.g.
   branch & bound charging every per-node dual reoptimization against a
   single pivot pool). *)
type t = {
  deadline : float option;
  allowance_ms : float option;
  nodes : int option;
  pivots : int option;
  passes : int option;
  augments : int option;
  mutable n_nodes : int;
  mutable n_pivots : int;
  mutable n_passes : int;
  mutable n_augments : int;
  mutable tick : int;
}

exception Out_of_budget of exhausted

let unlimited =
  {
    deadline = None;
    allowance_ms = None;
    nodes = None;
    pivots = None;
    passes = None;
    augments = None;
    n_nodes = 0;
    n_pivots = 0;
    n_passes = 0;
    n_augments = 0;
    tick = 0;
  }

let make ?deadline_ms ?nodes ?pivots ?passes ?augments () =
  let deadline =
    Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.)) deadline_ms
  in
  {
    deadline;
    allowance_ms = deadline_ms;
    nodes;
    pivots;
    passes;
    augments;
    n_nodes = 0;
    n_pivots = 0;
    n_passes = 0;
    n_augments = 0;
    tick = 0;
  }

let halve t =
  let half_int n = max 1 (n / 2) in
  make
    ?deadline_ms:(Option.map (fun ms -> max 1. (ms /. 2.)) t.allowance_ms)
    ?nodes:(Option.map half_int t.nodes)
    ?pivots:(Option.map half_int t.pivots)
    ?passes:(Option.map half_int t.passes)
    ?augments:(Option.map half_int t.augments)
    ()

let remaining_ms t =
  match t.deadline with
  | None -> None
  | Some dl -> Some (max 0. ((dl -. Unix.gettimeofday ()) *. 1000.))

(* A slice is a fresh budget holding [frac] of what the parent has left on
   every axis: refinement charges one iteration to a slice so a runaway
   subproblem can never drain the whole pool.  The parent learns what the
   slice actually spent through [absorb]. *)
let slice ?(frac = 0.5) t =
  let part limit spent =
    Option.map
      (fun l -> max 1 (int_of_float (ceil (float_of_int (max 0 (l - spent)) *. frac))))
      limit
  in
  let deadline_ms =
    match remaining_ms t with
    | None -> None
    | Some ms -> Some (max 1. (ms *. frac))
  in
  make ?deadline_ms
    ?nodes:(part t.nodes t.n_nodes)
    ?pivots:(part t.pivots t.n_pivots)
    ?passes:(part t.passes t.n_passes)
    ?augments:(part t.augments t.n_augments)
    ()

let absorb t child =
  t.n_nodes <- t.n_nodes + child.n_nodes;
  t.n_pivots <- t.n_pivots + child.n_pivots;
  t.n_passes <- t.n_passes + child.n_passes;
  t.n_augments <- t.n_augments + child.n_augments

let spent_pivots t = t.n_pivots
let spent_nodes t = t.n_nodes

let is_limited t =
  t.deadline <> None || t.nodes <> None || t.pivots <> None
  || t.passes <> None || t.augments <> None

let deadline_ms t = t.allowance_ms

let m_exhausted = Mcs_obs.Metrics.counter "resilience.budget.exhausted"

let resource_to_string = function
  | Wall -> "wall"
  | Nodes -> "nodes"
  | Pivots -> "pivots"
  | Passes -> "passes"
  | Augments -> "augments"

(* Every exhaustion — organic or injected — leaves a journal event naming
   the tripped axis, so a later [Degraded]/[Exhausted] result is post-hoc
   explainable from the run report alone. *)
let exhausted_event ?(injected = false) e =
  Mcs_obs.Metrics.incr m_exhausted;
  if Mcs_obs.Events.on () then
    Mcs_obs.Events.emit ~cat:"budget" "exhausted"
      ~args:
        ([
           ("resource", Mcs_obs.Events.Str (resource_to_string e.resource));
           ("limit", Mcs_obs.Events.Int e.limit);
           ("spent", Mcs_obs.Events.Int e.spent);
         ]
        @ if injected then [ ("injected", Mcs_obs.Events.Bool true) ] else [])

let check_wall t =
  match t.deadline with
  | None -> ()
  | Some dl ->
      let now = Unix.gettimeofday () in
      if now > dl then begin
        let limit =
          match t.allowance_ms with Some ms -> int_of_float ms | None -> 0
        in
        let spent = limit + int_of_float ((now -. dl) *. 1000.) in
        let e = { resource = Wall; limit; spent } in
        exhausted_event e;
        raise (Out_of_budget e)
      end

(* The wall clock is consulted every [wall_stride] spends so the gettimeofday
   syscall stays off the solvers' hot paths. *)
let wall_stride = 32

let tick_wall t =
  if t.deadline <> None then begin
    t.tick <- t.tick + 1;
    if t.tick >= wall_stride then begin
      t.tick <- 0;
      check_wall t
    end
  end

let spend resource limit spent =
  if spent > limit then begin
    let e = { resource; limit; spent } in
    exhausted_event e;
    raise (Out_of_budget e)
  end

let spend_node t =
  t.n_nodes <- t.n_nodes + 1;
  (match t.nodes with Some l -> spend Nodes l t.n_nodes | None -> ());
  tick_wall t

let spend_pivot t =
  t.n_pivots <- t.n_pivots + 1;
  (match t.pivots with Some l -> spend Pivots l t.n_pivots | None -> ());
  tick_wall t

let spend_pass t =
  t.n_passes <- t.n_passes + 1;
  (match t.passes with Some l -> spend Passes l t.n_passes | None -> ());
  tick_wall t

let spend_augment t =
  t.n_augments <- t.n_augments + 1;
  (match t.augments with Some l -> spend Augments l t.n_augments | None -> ());
  tick_wall t

let exhausted resource =
  let e = { resource; limit = 0; spent = 0 } in
  exhausted_event ~injected:true e;
  e

let message e =
  let unit_ = match e.resource with Wall -> " ms" | _ -> "" in
  Printf.sprintf "%s budget exhausted (%d of %d%s)"
    (resource_to_string e.resource)
    e.spent e.limit unit_

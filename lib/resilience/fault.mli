(** Deterministic fault injection, driven by the [MCS_FAULT] environment
    variable.

    Grammar: a comma-separated list of modes —
    {v
      MCS_FAULT=exhaust-ilp,exhaust-fds,exhaust-heuristic,exhaust-hungarian,
                crash-worker:N,corrupt-cache
    v}

    Each [exhaust-*] mode may carry an armed count, [exhaust-ilp:N]: the
    fault fires on the first [N] injection-point hits in this process,
    then disarms (counts reset whenever the env value changes).  A bare
    mode fires on every hit.  Armed counts are what let a refinement pass
    in the same process re-solve cleanly after the initial run was forced
    down the degradation ladder.

    - [exhaust-ilp] — branch & bound reports [Exhausted] immediately.
    - [exhaust-fds] — force-directed scheduling reports [Exhausted].
    - [exhaust-heuristic] — the Ch4 connection search reports [Exhausted].
    - [exhaust-hungarian] — Hungarian assignment/matching raises
      {!Budget.Out_of_budget} at entry.
    - [crash-worker:N] — the first [N] engine pool jobs exit abnormally on
      their first attempt (they succeed when retried).
    - [corrupt-cache] — the engine cache writes a corrupt body on [store],
      so the next [lookup] must quarantine it.
    - [kill-domain:N] — the next [N] jobs picked up by a server worker
      domain kill that domain (the supervisor must respawn it and requeue
      or quarantine the batch).
    - [stall-conn:N] — the next [N] connections the server accepts go
      silent (their reads stall), exercising idle reaping.
    - [wal-torn] — the next WAL append writes a torn (checksum-invalid)
      record, exercising recovery's torn-tail handling.

    The chaos modes ([kill-domain], [stall-conn], [wal-torn]) always carry
    an armed count; their bare forms mean one shot — an unbounded
    kill-domain would poison every job it touches.

    The injection points re-read the environment lazily (memoized on the
    variable's value) so tests can flip faults with [Unix.putenv]. *)

type t =
  | Exhaust_ilp
  | Exhaust_fds
  | Exhaust_heuristic
  | Exhaust_hungarian
  | Crash_worker of int
  | Corrupt_cache
  | Kill_domain
  | Stall_conn
  | Wal_torn

val parse : string -> (t list, string) result
(** Parse a comma-separated [MCS_FAULT] value.  The empty string parses to
    [].  Armed counts ([exhaust-ilp:2]) parse to the same constructors as
    their bare forms — arming is runtime state, not identity. *)

val to_string : t -> string

val reset : unit -> unit
(** Forget the memoized armed-shot counters: the next injection-point hit
    re-reads [MCS_FAULT] and re-arms counts from scratch.  Tests that flip
    the variable back to a previously-seen value need this — when no
    injection point runs in between, the memo cannot tell the sequence
    [A → "" → A] apart from an unchanged [A], so a consumed count would
    otherwise stay consumed. *)

val active : unit -> t list
(** Faults currently enabled via [MCS_FAULT].  An unparseable value
    disables all faults (and logs a warning once per distinct value) —
    fault injection must never be able to crash a flow by itself. *)

val exhaust_ilp : unit -> Budget.exhausted option
val exhaust_fds : unit -> Budget.exhausted option
val exhaust_heuristic : unit -> Budget.exhausted option
val exhaust_hungarian : unit -> Budget.exhausted option
(** [Some e] when the corresponding exhaustion fault is enabled. *)

val crash_workers : unit -> int
(** Number of pool jobs to crash on first attempt; 0 when disabled. *)

val corrupt_cache : unit -> bool

val kill_domain : unit -> bool
(** Consume one kill-domain shot: [true] means the calling worker domain
    should die now. *)

val stall_conn : unit -> bool
(** Consume one stall-conn shot: [true] means the connection being
    accepted should be treated as silent (never readable). *)

val wal_torn : unit -> bool
(** Consume one wal-torn shot: [true] means the WAL append in progress
    should write a torn record. *)

type t =
  | Exhaust_ilp
  | Exhaust_fds
  | Exhaust_heuristic
  | Exhaust_hungarian
  | Crash_worker of int
  | Corrupt_cache

let to_string = function
  | Exhaust_ilp -> "exhaust-ilp"
  | Exhaust_fds -> "exhaust-fds"
  | Exhaust_heuristic -> "exhaust-heuristic"
  | Exhaust_hungarian -> "exhaust-hungarian"
  | Crash_worker n -> Printf.sprintf "crash-worker:%d" n
  | Corrupt_cache -> "corrupt-cache"

let parse_one s =
  match String.trim s with
  | "exhaust-ilp" -> Ok Exhaust_ilp
  | "exhaust-fds" -> Ok Exhaust_fds
  | "exhaust-heuristic" -> Ok Exhaust_heuristic
  | "exhaust-hungarian" -> Ok Exhaust_hungarian
  | "corrupt-cache" -> Ok Corrupt_cache
  | s when String.length s > 13 && String.sub s 0 13 = "crash-worker:" -> (
      let n = String.sub s 13 (String.length s - 13) in
      match int_of_string_opt n with
      | Some n when n >= 0 -> Ok (Crash_worker n)
      | _ -> Error (Printf.sprintf "MCS_FAULT: bad worker count %S" n))
  | "" -> Error "MCS_FAULT: empty mode"
  | s -> Error (Printf.sprintf "MCS_FAULT: unknown mode %S" s)

let parse s =
  if String.trim s = "" then Ok []
  else
    String.split_on_char ',' s
    |> List.fold_left
         (fun acc piece ->
           match (acc, parse_one piece) with
           | Error _, _ -> acc
           | Ok _, Error e -> Error e
           | Ok fs, Ok f -> Ok (f :: fs))
         (Ok [])
    |> Result.map List.rev

(* Memoized on the raw env value so tests can flip MCS_FAULT with
   Unix.putenv and injection points see the change on the next call. *)
let memo : (string * t list) option ref = ref None

let active () =
  let raw = match Sys.getenv_opt "MCS_FAULT" with Some s -> s | None -> "" in
  match !memo with
  | Some (r, fs) when String.equal r raw -> fs
  | _ ->
      let fs =
        match parse raw with
        | Ok fs -> fs
        | Error e ->
            Mcs_obs.Log.warn "%s (fault injection disabled)" e;
            []
      in
      memo := Some (raw, fs);
      fs

let has f = List.mem f (active ())

let exhaust_if fault resource =
  if has fault then Some (Budget.exhausted resource) else None

let exhaust_ilp () = exhaust_if Exhaust_ilp Budget.Nodes
let exhaust_fds () = exhaust_if Exhaust_fds Budget.Passes
let exhaust_heuristic () = exhaust_if Exhaust_heuristic Budget.Nodes
let exhaust_hungarian () = exhaust_if Exhaust_hungarian Budget.Augments

let crash_workers () =
  List.fold_left
    (fun acc -> function Crash_worker n -> max acc n | _ -> acc)
    0 (active ())

let corrupt_cache () = has Corrupt_cache

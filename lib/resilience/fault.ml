type t =
  | Exhaust_ilp
  | Exhaust_fds
  | Exhaust_heuristic
  | Exhaust_hungarian
  | Crash_worker of int
  | Corrupt_cache
  | Kill_domain
  | Stall_conn
  | Wal_torn

let to_string = function
  | Exhaust_ilp -> "exhaust-ilp"
  | Exhaust_fds -> "exhaust-fds"
  | Exhaust_heuristic -> "exhaust-heuristic"
  | Exhaust_hungarian -> "exhaust-hungarian"
  | Crash_worker n -> Printf.sprintf "crash-worker:%d" n
  | Corrupt_cache -> "corrupt-cache"
  | Kill_domain -> "kill-domain"
  | Stall_conn -> "stall-conn"
  | Wal_torn -> "wal-torn"

(* An exhaust mode may carry an armed count ("exhaust-ilp:2" fires on the
   first two injection-point hits, then disarms); [None] = every hit while
   the env value stands.  [crash-worker:N]'s colon keeps its historical
   meaning (worker count), so only the exhaust-* modes take a count. *)
let parse_one s =
  let s = String.trim s in
  let base, count =
    match String.index_opt s ':' with
    | Some i ->
        (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
    | None -> (s, None)
  in
  let armed f =
    match count with
    | None -> Ok (f, None)
    | Some n -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> Ok (f, Some n)
        | _ ->
            Error (Printf.sprintf "MCS_FAULT: bad armed count %S for %s" n base))
  in
  match base with
  | "exhaust-ilp" -> armed Exhaust_ilp
  | "exhaust-fds" -> armed Exhaust_fds
  | "exhaust-heuristic" -> armed Exhaust_heuristic
  | "exhaust-hungarian" -> armed Exhaust_hungarian
  | "corrupt-cache" when count = None -> Ok (Corrupt_cache, None)
  (* The chaos modes always carry an armed count; a bare mode means one
     shot.  An unbounded kill-domain would poison every job it touches,
     which is never what a test wants. *)
  | "kill-domain" -> (
      match armed Kill_domain with
      | Ok (f, None) -> Ok (f, Some 1)
      | r -> r)
  | "stall-conn" -> (
      match armed Stall_conn with
      | Ok (f, None) -> Ok (f, Some 1)
      | r -> r)
  | "wal-torn" -> (
      match armed Wal_torn with
      | Ok (f, None) -> Ok (f, Some 1)
      | r -> r)
  | "crash-worker" -> (
      match count with
      | Some n -> (
          match int_of_string_opt n with
          | Some n when n >= 0 -> Ok (Crash_worker n, None)
          | _ -> Error (Printf.sprintf "MCS_FAULT: bad worker count %S" n))
      | None -> Error "MCS_FAULT: crash-worker needs a count (crash-worker:N)")
  | "" -> Error "MCS_FAULT: empty mode"
  | _ -> Error (Printf.sprintf "MCS_FAULT: unknown mode %S" s)

let parse_armed s =
  if String.trim s = "" then Ok []
  else
    String.split_on_char ',' s
    |> List.fold_left
         (fun acc piece ->
           match (acc, parse_one piece) with
           | Error _, _ -> acc
           | Ok _, Error e -> Error e
           | Ok fs, Ok f -> Ok (f :: fs))
         (Ok [])
    |> Result.map List.rev

let parse s = Result.map (List.map fst) (parse_armed s)

(* Memoized on the raw env value so tests can flip MCS_FAULT with
   Unix.putenv and injection points see the change on the next call.
   Armed counts live in the memo as mutable shot counters: they reset
   whenever the env value changes.  Fault injection is a test facility;
   the counters are not synchronized across domains. *)
let memo : (string * (t * int ref option) list) option ref = ref None

let active_armed () =
  let raw = match Sys.getenv_opt "MCS_FAULT" with Some s -> s | None -> "" in
  match !memo with
  | Some (r, fs) when String.equal r raw -> fs
  | _ ->
      let fs =
        match parse_armed raw with
        | Ok fs -> List.map (fun (f, c) -> (f, Option.map ref c)) fs
        | Error e ->
            Mcs_obs.Log.warn "%s (fault injection disabled)" e;
            []
      in
      memo := Some (raw, fs);
      fs

let reset () = memo := None
let active () = List.map fst (active_armed ())
let has f = List.exists (fun (g, _) -> g = f) (active_armed ())

(* Consume one shot of [fault] if any entry for it still has shots left
   (or is unarmed, i.e. infinite). *)
let fire fault =
  let rec go = function
    | [] -> false
    | (g, shots) :: rest when g = fault -> (
        match shots with
        | None -> true
        | Some r -> if !r > 0 then (decr r; true) else go rest)
    | _ :: rest -> go rest
  in
  go (active_armed ())

let exhaust_if fault resource =
  if fire fault then Some (Budget.exhausted resource) else None

let exhaust_ilp () = exhaust_if Exhaust_ilp Budget.Nodes
let exhaust_fds () = exhaust_if Exhaust_fds Budget.Passes
let exhaust_heuristic () = exhaust_if Exhaust_heuristic Budget.Nodes
let exhaust_hungarian () = exhaust_if Exhaust_hungarian Budget.Augments

let crash_workers () =
  List.fold_left
    (fun acc -> function Crash_worker n -> max acc n | _ -> acc)
    0 (active ())

let corrupt_cache () = has Corrupt_cache
let kill_domain () = fire Kill_domain
let stall_conn () = fire Stall_conn
let wal_torn () = fire Wal_torn

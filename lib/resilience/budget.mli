(** Solver budgets: a wall-clock deadline plus per-resource work limits.

    A {!t} is threaded (as an optional argument, defaulting to
    {!unlimited}) through every potentially-unbounded solver in the
    system — simplex pivots, branch-and-bound nodes, FDS frame passes,
    Hungarian/Kuhn augmentations, connection-search nodes.  Solvers call
    the [spend_*] functions on their unit of work; when a limit (or the
    deadline) is hit the functions raise {!Out_of_budget}, which every
    budgeted solver catches at its own boundary and converts into a typed
    [Exhausted] outcome — the exception never escapes a solver's public
    API unless the caller passed the budget in and is prepared for it
    (the {!Mcs_flow} pass manager catches it as a final safety net).

    The wall clock is only consulted every few dozen spends, so budgets
    are cheap enough for inner loops. *)

type resource = Wall | Nodes | Pivots | Passes | Augments

type exhausted = {
  resource : resource;  (** which limit was hit *)
  limit : int;  (** the limit (milliseconds for [Wall]) *)
  spent : int;  (** work done when the limit was hit *)
}

type t

exception Out_of_budget of exhausted

val unlimited : t
(** No deadline, no limits: the [spend_*] functions never raise. *)

val make :
  ?deadline_ms:float ->
  ?nodes:int ->
  ?pivots:int ->
  ?passes:int ->
  ?augments:int ->
  unit ->
  t
(** A budget whose deadline is [deadline_ms] from now.  Omitted resources
    are unlimited.  [make ()] is equivalent to {!unlimited}. *)

val halve : t -> t
(** A fresh budget with every limit halved (at least 1) and the deadline
    restarted at half the original allowance — the engine's retry
    discipline for timed-out or crashed jobs. *)

val is_limited : t -> bool
(** [false] exactly for budgets equivalent to {!unlimited}. *)

val remaining_ms : t -> float option
(** Milliseconds left before the deadline (clamped at 0), when one was
    set.  The refinement driver uses this to decide whether a request's
    deadline still has slack worth spending. *)

val slice : ?frac:float -> t -> t
(** A fresh budget holding [frac] (default 0.5) of what [t] has left on
    every limited axis (at least 1 each; unlimited axes stay unlimited).
    The slice's spending is {e not} reflected in [t] — call {!absorb}
    afterwards so the parent's books stay honest. *)

val absorb : t -> t -> unit
(** [absorb parent child] adds the child's spent counters to the parent's
    without raising, even if the parent is now over a limit — the next
    [spend_*] on the parent will trip it.  Pure book-keeping, safe to call
    after a slice finished or exhausted. *)

val spent_pivots : t -> int
val spent_nodes : t -> int
(** Work recorded so far — per-iteration telemetry for the refinement
    loop. *)

val deadline_ms : t -> float option
(** The original wall allowance, when one was set. *)

val spend_node : t -> unit
val spend_pivot : t -> unit
val spend_pass : t -> unit
val spend_augment : t -> unit
(** Record one unit of work; raise {!Out_of_budget} when the resource's
    limit is exceeded or (checked periodically) the deadline has passed. *)

val check_wall : t -> unit
(** Unconditionally compare the clock against the deadline and raise
    {!Out_of_budget} when past it. *)

val exhausted : resource -> exhausted
(** A canned exhaustion record (limit 0) for fault injection. *)

val resource_to_string : resource -> string

val message : exhausted -> string
(** E.g. ["wall budget exhausted (52 of 50 ms)"]. *)

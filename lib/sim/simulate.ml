open Mcs_cdfg
module Sched = Mcs_sched.Schedule

type semantics = string -> int list -> int

let mask = (1 lsl 30) - 1

let hash_combine acc x = ((acc * 1000003) + x) land mask

let default_semantics ty args =
  match ty with
  | "add" -> List.fold_left ( + ) 0 args land mask
  | "sub" -> List.fold_left (fun a b -> (a - b) land mask) 0 args
  | "mul" -> List.fold_left (fun a b -> a * b land mask) 1 args
  | _ ->
      List.fold_left hash_combine (Hashtbl.hash ty land mask) args

type inputs = string -> int -> int

let random_inputs ~seed value instance =
  Hashtbl.hash (seed, value, instance) land mask

type trace = { outputs : ((string * int) * int) list }

(* Deterministic value for instances before the first (what the registers
   hold at reset). *)
let seed_value op instance = Hashtbl.hash ("reset", op, instance) land mask

(* Incoming edges of each op, in declaration order (= operand order). *)
let incoming cdfg =
  let n = Cdfg.n_ops cdfg in
  let inc = Array.make n [] in
  List.iter
    (fun ({ Types.e_dst; _ } as e) -> inc.(e_dst) <- e :: inc.(e_dst))
    (List.rev (Cdfg.edges cdfg));
  inc

(* Denotational value of every (op, instance). *)
let evaluate ?(semantics = default_semantics) cdfg ~inputs ~instances =
  let inc = incoming cdfg in
  let values = Hashtbl.create 1024 in
  let value op n =
    if n < 0 then seed_value op n else Hashtbl.find values (op, n)
  in
  for n = 0 to instances - 1 do
    List.iter
      (fun op ->
        let operands =
          List.map
            (fun { Types.e_src; degree; _ } -> value e_src (n - degree))
            inc.(op)
        in
        let v =
          match Cdfg.node cdfg op with
          | Types.Io { src = 0; value; _ } -> inputs value n
          | Types.Io _ -> (
              (* A transfer forwards its (single) producer's value. *)
              match operands with
              | [ v ] -> v
              | [] -> seed_value op n
              | v :: _ -> v)
          | Types.Func { optype; _ } -> semantics optype operands
        in
        Hashtbl.replace values (op, n) v)
      (Cdfg.topo_order cdfg)
  done;
  values

let outputs_of cdfg values ~instances =
  let outs =
    List.filter (fun w -> Cdfg.io_dst cdfg w = 0) (Cdfg.io_ops cdfg)
  in
  let rows =
    List.concat_map
      (fun w ->
        List.map
          (fun n -> ((Cdfg.name cdfg w, n), Hashtbl.find values (w, n)))
          (Mcs_util.Listx.range 0 instances))
      outs
  in
  { outputs = List.sort compare rows }

let reference ?semantics cdfg ~inputs ~instances =
  outputs_of cdfg (evaluate ?semantics cdfg ~inputs ~instances) ~instances

let machine ?(semantics = default_semantics) sched ~bus_of ~bus_capable
    ~inputs ~instances =
  let cdfg = Sched.cdfg sched in
  let mlib = Sched.mlib sched in
  let rate = Sched.rate sched in
  let inc = incoming cdfg in
  let err = ref None in
  let fail fmt = Format.kasprintf (fun m -> if !err = None then err := Some m) fmt in
  (* Events in hardware order: by absolute start cycle, then by
     combinational finish offset (chained ops execute left to right within a
     step), then topologically. *)
  let topo_pos = Array.make (Cdfg.n_ops cdfg) 0 in
  List.iteri (fun i op -> topo_pos.(op) <- i) (Cdfg.topo_order cdfg);
  let events =
    List.concat_map
      (fun n ->
        List.map
          (fun op -> ((n * rate) + Sched.cstep sched op, Sched.finish_ns sched op, topo_pos.(op), op, n))
          (Cdfg.ops cdfg))
      (Mcs_util.Listx.range 0 instances)
  in
  let events = List.sort compare events in
  let values = Hashtbl.create 1024 in
  (* Bus slot occupancy: (slot, absolute cycle) -> (value name, instance). *)
  let busy = Hashtbl.create 256 in
  let read ~consumer_abs ~consumer op n =
    if n < 0 then Some (seed_value op n)
    else
      match Hashtbl.find_opt values (op, n) with
      | None ->
          fail "instance %d of %s reads %s (instance %d) before it executes"
            (consumer_abs / rate) (Cdfg.name cdfg consumer) (Cdfg.name cdfg op)
            n;
          None
      | Some v ->
          (* Registered availability or same-cycle chaining. *)
          let src_abs = (n * rate) + Sched.cstep sched op in
          let avail = src_abs + Timing.op_cycles cdfg mlib op in
          if consumer_abs >= avail || consumer_abs = src_abs then Some v
          else begin
            fail "%s reads %s before it is latched (cycle %d < %d)"
              (Cdfg.name cdfg consumer) (Cdfg.name cdfg op) consumer_abs avail;
            None
          end
  in
  List.iter
    (fun (abs, _, _, op, n) ->
      if !err = None then begin
        let operands =
          List.filter_map
            (fun { Types.e_src; degree; _ } ->
              read ~consumer_abs:abs ~consumer:op e_src (n - degree))
            inc.(op)
        in
        if !err = None then begin
          let v =
            match Cdfg.node cdfg op with
            | Types.Io { src = 0; value; _ } -> inputs value n
            | Types.Io _ -> (
                match operands with
                | [ v ] -> v
                | [] -> seed_value op n
                | v :: _ -> v)
            | Types.Func { optype; _ } -> semantics optype operands
          in
          (match Cdfg.node cdfg op with
          | Types.Io { value; _ } ->
              (* The transfer claims its bus slots this very cycle. *)
              List.iter
                (fun slot ->
                  if not (bus_capable slot op) then
                    fail "bus slot %d too narrow for %s" slot
                      (Cdfg.name cdfg op);
                  match Hashtbl.find_opt busy (slot, abs) with
                  | Some (v', n') when not (String.equal v' value && n' = n) ->
                      fail
                        "bus conflict on slot %d at cycle %d: %s (inst %d) \
                         vs %s (inst %d)"
                        slot abs value n v' n'
                  | _ -> Hashtbl.replace busy (slot, abs) (value, n))
                (bus_of op)
          | Types.Func _ -> ());
          Hashtbl.replace values (op, n) v
        end
      end)
    events;
  match !err with
  | Some m -> Error m
  | None -> Ok (outputs_of cdfg values ~instances)

let m_equiv_checks = Mcs_obs.Metrics.counter "sim.equiv_checks"

let check_equivalent ?semantics sched ~bus_of ~bus_capable ~seed ~instances =
  Mcs_obs.Metrics.incr m_equiv_checks;
  let cdfg = Sched.cdfg sched in
  let inputs = random_inputs ~seed in
  let want = reference ?semantics cdfg ~inputs ~instances in
  match machine ?semantics sched ~bus_of ~bus_capable ~inputs ~instances with
  | Error m -> Error m
  | Ok got ->
      if got.outputs = want.outputs then Ok ()
      else
        let diff =
          List.find_opt
            (fun (k, v) -> List.assoc_opt k want.outputs <> Some v)
            got.outputs
        in
        Error
          (match diff with
          | Some ((name, n), v) ->
              Printf.sprintf
                "output %s (instance %d): machine produced %d, reference %s"
                name n v
                (match List.assoc_opt (name, n) want.outputs with
                | Some r -> string_of_int r
                | None -> "nothing")
          | None -> "traces differ in shape")

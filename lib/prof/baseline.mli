(** Benchmark baselines and CI gating ([mcs-bench-baseline/1]).

    A baseline is a flat list of (experiment, metric, value) records,
    each marked {e hard} or {e soft}.  Hard metrics are deterministic
    solver counters (simplex pivots, branch-and-bound nodes, result pins)
    where any increase over the committed baseline is a regression; soft
    metrics are wall times, which regress only beyond a relative noise
    threshold and never gate CI by themselves. *)

val schema : string
(** ["mcs-bench-baseline/1"]. *)

type record = {
  experiment : string;  (** e.g. ["ilp.ar-general.r3"] *)
  metric : string;  (** e.g. ["warm.pivots"], ["cold.wall_s"] *)
  value : float;
  hard : bool;
}

type t = record list

val key : record -> string
(** [experiment ^ "/" ^ metric] — the identity used to match baseline
    records against current ones. *)

val to_json : t -> Mcs_obs.Report_json.t
val of_json : Mcs_obs.Report_json.t -> (t, string) result
val load : string -> (t, string) result
val save : string -> t -> (unit, string) result

type verdict =
  | Within_noise of float  (** relative delta (0 for exact hard match) *)
  | Improvement of float  (** absolute (hard) or relative (soft) gain *)
  | Regression of float  (** absolute (hard) or relative (soft) loss *)
  | Missing  (** baseline record absent from the current run *)

type comparison = {
  record : record;
  current : float option;
  verdict : verdict;
}

val compare : ?noise:float -> baseline:t -> current:t -> unit -> comparison list
(** One comparison per {e baseline} record, in baseline order.  [noise]
    (default 0.25, i.e. 25%) applies to soft metrics only: hard metrics
    regress on any increase. *)

val is_failure : comparison -> bool
(** A hard record that regressed or is missing — the CI gate. *)

val failures : comparison list -> comparison list
val soft_regressions : comparison list -> comparison list
val verdict_to_string : verdict -> string
val pp_comparison : Format.formatter -> comparison -> unit

(** Solver event journal: the {!Mcs_obs.Events} ring, packaged for run
    reports.

    When a run ends [Exhausted], [Degraded] or checker-dirty, the CLI
    dumps the journal into the [mcs-run/1] report so the JSON alone
    explains {e which} solver tripped {e which} budget axis — no re-run
    with tracing needed. *)

val json_of_event : Mcs_obs.Events.t -> Mcs_obs.Report_json.t
(** [{"seq","ts","cat","name","args"}]. *)

val to_json : unit -> Mcs_obs.Report_json.t
(** The ring as [{"emitted","dropped","events"}], events oldest first.
    [dropped > 0] means the ring wrapped and only the most recent
    [Events.capacity ()] events survive. *)

val exhausted_axis : unit -> string option
(** The ["resource"] argument of the most recent ["exhausted"] event in
    the ring (["wall"], ["nodes"], ["pivots"], ["passes"] or
    ["augments"]), if any budget tripped. *)

val summary : unit -> string option
(** Human one-liner naming the exhausted axis, when there is one. *)

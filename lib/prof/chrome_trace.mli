(** Chrome-trace (chrome://tracing / Perfetto) exporter.

    While recording, every {!Mcs_obs.Trace} span that closes becomes an
    ["X"] complete event (microsecond [ts]/[dur] relative to recording
    start) and every {!Mcs_obs.Events} solver event becomes an ["i"]
    instant, all on one pid/tid so the spans nest by containment.  The
    output is the JSON-array flavour of the trace event format, loadable
    directly in [chrome://tracing] or [ui.perfetto.dev].

    Recording is global and single-consumer: [start] registers the
    {!Mcs_obs.Trace.set_hook} slot and an {!Mcs_obs.Events.subscribe}
    callback (force-enabling the event bus), [stop]/[write] release
    them. *)

val start : unit -> unit
(** Begin recording (idempotent).  Clears any previously recorded
    entries. *)

val stop : unit -> unit
(** Stop recording and release the trace hook and event subscription;
    recorded entries remain available to {!to_json}.  Restores the
    event-bus enablement that [start] found. *)

val recording : unit -> bool

val to_json : unit -> Mcs_obs.Report_json.t
(** The recorded entries as a Chrome trace JSON array, sorted by
    timestamp (parents before equal-timestamp children). *)

val write : string -> (unit, string) result
(** [write path] stops recording and writes {!to_json} to [path]. *)

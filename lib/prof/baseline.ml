module J = Mcs_obs.Report_json

let schema = "mcs-bench-baseline/1"

type record = {
  experiment : string;
  metric : string;
  value : float;
  hard : bool;
}

type t = record list

let key r = r.experiment ^ "/" ^ r.metric

let to_json (t : t) =
  J.Obj
    [
      ("schema", J.Str schema);
      ( "records",
        J.Arr
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("experiment", J.Str r.experiment);
                   ("metric", J.Str r.metric);
                   ("value", J.Float r.value);
                   ("hard", J.Bool r.hard);
                 ])
             t) );
    ]

let ( let* ) = Result.bind

let record_of_json j =
  let field name conv =
    match Option.bind (J.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "baseline record: bad or missing %S" name)
  in
  let* experiment = field "experiment" J.to_str in
  let* metric = field "metric" J.to_str in
  let* value = field "value" J.to_float in
  let* hard =
    field "hard" (function J.Bool b -> Some b | _ -> None)
  in
  Ok { experiment; metric; value; hard }

let of_json j =
  match Option.bind (J.member "schema" j) J.to_str with
  | Some s when s = schema -> (
      match Option.bind (J.member "records" j) J.to_list with
      | None -> Error "baseline: missing records array"
      | Some rs ->
          List.fold_left
            (fun acc r ->
              let* acc = acc in
              let* r = record_of_json r in
              Ok (r :: acc))
            (Ok []) rs
          |> Result.map List.rev)
  | Some s -> Error (Printf.sprintf "baseline: schema %S, want %S" s schema)
  | None -> Error "baseline: missing schema field"

let load path =
  match
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error m -> Error m
  with
  | Error m -> Error m
  | Ok body ->
      let* j = J.of_string body in
      of_json j

let save path t = J.write_file path (to_json t)

type verdict =
  | Within_noise of float
  | Improvement of float
  | Regression of float
  | Missing

type comparison = {
  record : record;
  current : float option;
  verdict : verdict;
}

(* Hard metrics are deterministic counters: any increase at all is a
   regression, no noise allowance.  Soft metrics (wall times) regress
   only beyond the relative [noise] threshold. *)
let judge ~noise (r : record) cur =
  if r.hard then
    if cur > r.value then Regression (cur -. r.value)
    else if cur < r.value then Improvement (r.value -. cur)
    else Within_noise 0.0
  else if r.value <= 0.0 then
    if cur > 0.0 then Regression cur else Within_noise 0.0
  else
    let delta = (cur -. r.value) /. r.value in
    if delta > noise then Regression delta
    else if delta < -.noise then Improvement (-.delta)
    else Within_noise delta

let compare ?(noise = 0.25) ~baseline ~current () =
  List.map
    (fun r ->
      match List.find_opt (fun c -> key c = key r) current with
      | None -> { record = r; current = None; verdict = Missing }
      | Some c ->
          {
            record = r;
            current = Some c.value;
            verdict = judge ~noise r c.value;
          })
    baseline

let is_failure c =
  c.record.hard
  && match c.verdict with Regression _ | Missing -> true | _ -> false

let failures cs = List.filter is_failure cs

let soft_regressions cs =
  List.filter
    (fun c ->
      (not c.record.hard)
      && match c.verdict with Regression _ -> true | _ -> false)
    cs

let verdict_to_string = function
  | Within_noise _ -> "within-noise"
  | Improvement _ -> "improvement"
  | Regression _ -> "regression"
  | Missing -> "missing"

let pp_comparison ppf c =
  let cur =
    match c.current with
    | Some v -> Printf.sprintf "%g" v
    | None -> "absent"
  in
  Format.fprintf ppf "%-14s %s/%s: baseline %g, current %s%s"
    (verdict_to_string c.verdict)
    c.record.experiment c.record.metric c.record.value cur
    (if c.record.hard then " [hard]" else "")

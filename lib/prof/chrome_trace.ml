module J = Mcs_obs.Report_json
module Trace = Mcs_obs.Trace
module Events = Mcs_obs.Events

(* One trace entry, already in Chrome's vocabulary: "X" complete events
   for spans (ts + dur), "i" instants for solver events.  Timestamps are
   microseconds relative to [start]'s clock read, so a trace loads with
   t=0 at recording start regardless of wall-clock epoch. *)
type entry = {
  ph : string;
  name : string;
  cat : string;
  ts : float; (* microseconds since recording start *)
  dur : float option; (* microseconds, "X" only *)
  tid : int; (* recording domain: one lane per domain in the viewer *)
  args : (string * J.t) list;
}

let recording_flag = ref false
let t0 = ref 0.0
let entries : entry list ref = ref [] (* newest first *)

(* Span and event hooks fire from every domain in the server's worker
   pool; the entry list is the only shared state, so a single lock on
   push/drain suffices. *)
let entries_lock = Mutex.create ()

let push e =
  Mutex.lock entries_lock;
  entries := e :: !entries;
  Mutex.unlock entries_lock

let recording () = !recording_flag

let us_of abs = Float.max 0.0 ((abs -. !t0) *. 1e6)

let on_span (s : Trace.span) =
  if !recording_flag then
    push
      {
        ph = "X";
        name = s.Trace.span_name;
        cat = "phase";
        ts = us_of s.Trace.span_t0;
        dur = Some (Float.max 0.0 (s.Trace.span_dur *. 1e6));
        tid = (Domain.self () :> int);
        args =
          List.map (fun (k, v) -> (k, J.Str v)) s.Trace.span_attrs
          @ [ ("depth", J.Int s.Trace.span_depth) ];
      }

let json_of_arg = function
  | Events.Int i -> J.Int i
  | Events.Str s -> J.Str s
  | Events.Float f -> J.Float f
  | Events.Bool b -> J.Bool b

let on_event (e : Events.t) =
  if !recording_flag then
    push
      {
        ph = "i";
        name = e.Events.name;
        cat = e.Events.cat;
        ts = us_of e.Events.ts;
        dur = None;
        tid = (Domain.self () :> int);
        args =
          ("seq", J.Int e.Events.seq)
          :: List.map (fun (k, v) -> (k, json_of_arg v)) e.Events.args;
      }

let prior_events = ref false

let start () =
  if not !recording_flag then begin
    Mutex.lock entries_lock;
    entries := [];
    Mutex.unlock entries_lock;
    t0 := Unix.gettimeofday ();
    recording_flag := true;
    prior_events := Events.on ();
    Events.set_enabled true;
    Events.subscribe on_event;
    Trace.set_hook (Some on_span)
  end

let stop () =
  if !recording_flag then begin
    recording_flag := false;
    Trace.set_hook None;
    Events.clear_subscribers ();
    Events.set_enabled !prior_events
  end

(* Chrome's importer tolerates unsorted input but Perfetto's slice
   nesting is cleanest ts-ascending; ties break longest-duration first so
   a parent span precedes the children that closed at the same tick. *)
let to_json () =
  let pid = Unix.getpid () in
  let by_ts a b =
    match Float.compare a.ts b.ts with
    | 0 ->
        Float.compare
          (Option.value b.dur ~default:0.0)
          (Option.value a.dur ~default:0.0)
    | c -> c
  in
  let snapshot =
    Mutex.lock entries_lock;
    let es = !entries in
    Mutex.unlock entries_lock;
    es
  in
  let sorted = List.sort by_ts (List.rev snapshot) in
  J.Arr
    (List.map
       (fun e ->
         J.Obj
           ([
              ("name", J.Str e.name);
              ("cat", J.Str e.cat);
              ("ph", J.Str e.ph);
              ("ts", J.Float e.ts);
            ]
           @ (match e.dur with
             | Some d -> [ ("dur", J.Float d) ]
             | None -> [ ("s", J.Str "t") ])
           @ [
               ("pid", J.Int pid);
               ("tid", J.Int e.tid);
               ("args", J.Obj e.args);
             ]))
       sorted)

let write path =
  let json = to_json () in
  stop ();
  J.write_file path json

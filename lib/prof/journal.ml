module J = Mcs_obs.Report_json
module Events = Mcs_obs.Events

let json_of_arg = function
  | Events.Int i -> J.Int i
  | Events.Str s -> J.Str s
  | Events.Float f -> J.Float f
  | Events.Bool b -> J.Bool b

let json_of_event (e : Events.t) =
  J.Obj
    [
      ("seq", J.Int e.Events.seq);
      ("ts", J.Float e.Events.ts);
      ("cat", J.Str e.Events.cat);
      ("name", J.Str e.Events.name);
      ("args", J.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) e.Events.args));
    ]

let to_json () =
  J.Obj
    [
      ("emitted", J.Int (Events.emitted ()));
      ("dropped", J.Int (Events.dropped ()));
      ("events", J.Arr (List.map json_of_event (Events.recent ())));
    ]

(* The ring is oldest-first; the *last* exhaustion is the one that
   settled the run's fate (earlier ones may have been absorbed by a
   ladder step). *)
let exhausted_axis () =
  List.fold_left
    (fun acc (e : Events.t) ->
      if e.Events.name = "exhausted" then
        match List.assoc_opt "resource" e.Events.args with
        | Some (Events.Str r) -> Some r
        | _ -> acc
      else acc)
    None (Events.recent ())

let summary () =
  match exhausted_axis () with
  | None -> None
  | Some axis -> Some (Printf.sprintf "budget exhausted on the %s axis" axis)

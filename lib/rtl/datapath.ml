open Mcs_cdfg
module Sched = Mcs_sched.Schedule

type fu = { fu_optype : string; fu_index : int }

type register = {
  reg_index : int;
  reg_width : int;
  holds : (Types.op_id * int * int) list;
}

type mux = { mux_at : string; mux_inputs : int }

type partition_rtl = {
  rp_partition : int;
  fus : (fu * Types.op_id list) list;
  registers : register list;
  muxes : mux list;
  control_words : (int * string list) list;
}

type t = { parts : partition_rtl list; schedule : Mcs_sched.Schedule.t }

(* Width of the register holding a value: the width its interchip transfers
   declare, defaulting to 8 for chip-local values (the CDFG does not carry
   widths for those). *)
let value_width cdfg op =
  match Cdfg.node cdfg op with
  | Types.Io { width; _ } -> width
  | Types.Func _ ->
      List.fold_left
        (fun acc c -> if Cdfg.is_io cdfg c then max acc (Cdfg.io_width cdfg c) else acc)
        8 (Cdfg.succs cdfg op)

(* --- Functional-unit binding via allocation wheels --- *)

let bind_fus sched cons =
  let cdfg = Sched.cdfg sched in
  let mlib = Sched.mlib sched in
  let rate = Sched.rate sched in
  let table = Hashtbl.create 32 in
  let err = ref None in
  let groups =
    Mcs_util.Listx.group_by
      (fun op -> (Cdfg.func_partition cdfg op, Cdfg.func_optype cdfg op))
      (Cdfg.func_ops cdfg)
  in
  List.iter
    (fun ((p, ty), ops) ->
      let count = Constraints.fu_count cons ~partition:p ~optype:ty in
      let wheel = Mcs_sched.Alloc_wheel.create ~fus:count ~rate in
      let ops =
        List.sort (fun a b -> compare (Sched.group sched a) (Sched.group sched b)) ops
      in
      List.iter
        (fun op ->
          let group = Sched.group sched op in
          let cycles = Timing.op_cycles cdfg mlib op in
          match Mcs_sched.Alloc_wheel.fit wheel ~group ~cycles with
          | None ->
              if !err = None then
                err :=
                  Some
                    (Printf.sprintf
                       "schedule needs more than %d %s units in partition %d"
                       count ty p)
          | Some _ ->
              let fu = Mcs_sched.Alloc_wheel.assign wheel ~group ~cycles in
              Hashtbl.replace table op (p, ty, fu))
        ops)
    groups;
  match !err with Some m -> Error m | None -> Ok table

(* --- Register binding: cyclic left-edge over lifetime chunks --- *)

type reg_state = {
  mutable occupied : bool array; (* residues mod rate *)
  mutable contents : (Types.op_id * int * int) list;
  mutable width : int;
}

let bind_registers sched =
  let cdfg = Sched.cdfg sched in
  let rate = Sched.rate sched in
  let lifetimes = Lifetime.analyse sched in
  let per_partition = Hashtbl.create 8 in
  List.iter
    (fun (l : Lifetime.t) ->
      if Lifetime.span l > 0 then begin
        (* Slice the lifetime into rotating chunks of at most one initiation
           interval each. *)
        let rec chunks b =
          if b > l.death then []
          else
            let e = min l.death (b + rate - 1) in
            (b, e) :: chunks (e + 1)
        in
        let regs =
          Option.value ~default:[]
            (Hashtbl.find_opt per_partition l.on_partition)
        in
        let regs = ref regs in
        List.iter
          (fun (b, e) ->
            let residues =
              List.map
                (fun x -> ((x mod rate) + rate) mod rate)
                (Mcs_util.Listx.range b (e + 1))
            in
            let fits r =
              List.for_all (fun g -> not r.occupied.(g)) residues
            in
            let claim r =
              List.iter (fun g -> r.occupied.(g) <- true) residues;
              r.contents <- (l.producer, b, e) :: r.contents;
              r.width <- max r.width (value_width cdfg l.producer)
            in
            match List.find_opt fits !regs with
            | Some r -> claim r
            | None ->
                let r =
                  { occupied = Array.make rate false; contents = []; width = 0 }
                in
                claim r;
                regs := !regs @ [ r ])
          (chunks l.birth);
        Hashtbl.replace per_partition l.on_partition !regs
      end)
    lifetimes;
  per_partition

(* --- Sources and multiplexers --- *)

type source = Src_reg of int * int | Src_fu of int * string * int | Src_pin of string

let m_builds = Mcs_obs.Metrics.counter "rtl.datapath_builds"

let build sched cons =
  Mcs_obs.Metrics.incr m_builds;
  let cdfg = Sched.cdfg sched in
  let rate = Sched.rate sched in
  match bind_fus sched cons with
  | Error m -> Error m
  | Ok fu_of ->
      let regs_by_part = bind_registers sched in
      (* Where does (consumer, producer edge) read the value from? *)
      let reg_holding partition producer =
        match Hashtbl.find_opt regs_by_part partition with
        | None -> None
        | Some regs ->
            let rec find i = function
              | [] -> None
              | r :: rest ->
                  if List.exists (fun (p, _, _) -> p = producer) r.contents
                  then Some i
                  else find (i + 1) rest
            in
            find 0 regs
      in
      let source_of ~consumer_partition { Types.e_src; degree; _ } ~chained =
        if chained then
          match Cdfg.node cdfg e_src with
          | Types.Io { value; _ } -> Src_pin value
          | Types.Func { optype; _ } -> (
              match Hashtbl.find_opt fu_of e_src with
              | Some (p, ty, i) -> Src_fu (p, ty, i)
              | None -> Src_fu (consumer_partition, optype, -1))
        else
          match reg_holding consumer_partition e_src with
          | Some r -> Src_reg (consumer_partition, r)
          | None ->
              (* Registered reads always find a register; a miss means the
                 value was consumed in its production step after all. *)
              ignore degree;
              Src_pin "?"
      in
      let incoming = Hashtbl.create 64 in
      List.iter
        (fun ({ Types.e_dst; _ } as e) ->
          Hashtbl.replace incoming e_dst
            (e :: Option.value ~default:[] (Hashtbl.find_opt incoming e_dst)))
        (List.rev (Cdfg.edges cdfg));
      let parts =
        List.map
          (fun p ->
            let my_funcs = Cdfg.func_ops_of_partition cdfg p in
            let fus =
              Mcs_util.Listx.group_by
                (fun op ->
                  match Hashtbl.find fu_of op with
                  | _, ty, i -> { fu_optype = ty; fu_index = i })
                my_funcs
            in
            let registers =
              match Hashtbl.find_opt regs_by_part p with
              | None -> []
              | Some regs ->
                  List.mapi
                    (fun i r ->
                      { reg_index = i; reg_width = r.width; holds = List.rev r.contents })
                    regs
            in
            (* Multiplexers at FU operand ports. *)
            let fu_muxes =
              List.concat_map
                (fun (fu, ops) ->
                  let max_arity =
                    List.fold_left
                      (fun acc op ->
                        max acc
                          (List.length
                             (Option.value ~default:[]
                                (Hashtbl.find_opt incoming op))))
                      0 ops
                  in
                  List.filter_map
                    (fun port ->
                      let sources =
                        Mcs_util.Listx.uniq ( = )
                          (List.filter_map
                             (fun op ->
                               let edges =
                                 List.rev
                                   (Option.value ~default:[]
                                      (Hashtbl.find_opt incoming op))
                               in
                               match List.nth_opt edges port with
                               | None -> None
                               | Some e ->
                                   let chained =
                                     Sched.cstep sched e.Types.e_src
                                     = Sched.cstep sched op
                                     && e.Types.degree = 0
                                   in
                                   Some
                                     (source_of ~consumer_partition:p e
                                        ~chained))
                             ops)
                      in
                      if List.length sources > 1 then
                        Some
                          {
                            mux_at =
                              Printf.sprintf "%s%d.in%d" fu.fu_optype
                                fu.fu_index port;
                            mux_inputs = List.length sources;
                          }
                      else None)
                    (Mcs_util.Listx.range 0 max_arity))
                fus
            in
            (* Multiplexers at register inputs: one register, several
               producers. *)
            let reg_muxes =
              List.filter_map
                (fun r ->
                  let writers =
                    Mcs_util.Listx.uniq ( = )
                      (List.map (fun (prod, _, _) -> prod) r.holds)
                  in
                  if List.length writers > 1 then
                    Some
                      {
                        mux_at = Printf.sprintf "R%d.in" r.reg_index;
                        mux_inputs = List.length writers;
                      }
                  else None)
                registers
            in
            (* Controller: micro-operations per control-step group. *)
            let control_words =
              List.map
                (fun g ->
                  let words =
                    List.filter_map
                      (fun op ->
                        if Sched.group sched op <> g then None
                        else
                          match Cdfg.node cdfg op with
                          | Types.Func _ ->
                              let _, ty, i = Hashtbl.find fu_of op in
                              Some
                                (Printf.sprintf "%s%d := %s" ty i
                                   (Cdfg.name cdfg op))
                          | Types.Io { src; dst; _ } ->
                              if src = p then
                                Some
                                  (Printf.sprintf "drive %s" (Cdfg.name cdfg op))
                              else if dst = p then
                                Some
                                  (Printf.sprintf "latch %s" (Cdfg.name cdfg op))
                              else None)
                      (if p = 0 then [] else Cdfg.func_ops_of_partition cdfg p
                       @ List.filter
                           (fun w ->
                             Cdfg.io_src cdfg w = p || Cdfg.io_dst cdfg w = p)
                           (Cdfg.io_ops cdfg))
                  in
                  (g, words))
                (Mcs_util.Listx.range 0 rate)
            in
            {
              rp_partition = p;
              fus;
              registers;
              muxes = fu_muxes @ reg_muxes;
              control_words;
            })
          (Mcs_util.Listx.range 1 (Cdfg.n_partitions cdfg + 1))
      in
      Ok { parts; schedule = sched }

let part t p = List.find (fun r -> r.rp_partition = p) t.parts
let register_count t p = List.length (part t p).registers
let mux_input_total t p = Mcs_util.Listx.sum (fun m -> m.mux_inputs) (part t p).muxes

let pp ppf t =
  let cdfg = Sched.cdfg t.schedule in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun rp ->
      Format.fprintf ppf "chip %d:@," rp.rp_partition;
      List.iter
        (fun (fu, ops) ->
          Format.fprintf ppf "  %s%d: %s@," fu.fu_optype fu.fu_index
            (String.concat " " (List.map (Cdfg.name cdfg) ops)))
        rp.fus;
      List.iter
        (fun r ->
          Format.fprintf ppf "  R%d (%d bits): %s@," r.reg_index r.reg_width
            (String.concat " "
               (List.map
                  (fun (prod, b, e) ->
                    Printf.sprintf "%s[%d..%d]" (Cdfg.name cdfg prod) b e)
                  r.holds)))
        rp.registers;
      List.iter
        (fun m -> Format.fprintf ppf "  mux %s (%d-way)@," m.mux_at m.mux_inputs)
        rp.muxes)
    t.parts;
  Format.fprintf ppf "@]"

let pp_verilog ppf t =
  let cdfg = Sched.cdfg t.schedule in
  ignore cdfg;
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun rp ->
      Format.fprintf ppf "module chip%d (input clk, input [%d:0] step);@,"
        rp.rp_partition
        (max 0 (Sched.rate t.schedule - 1));
      List.iter
        (fun (fu, _) ->
          Format.fprintf ppf "  // functional unit@,  wire [31:0] %s%d_out;@,"
            fu.fu_optype fu.fu_index)
        rp.fus;
      List.iter
        (fun r ->
          Format.fprintf ppf "  reg [%d:0] R%d;@," (max 0 (r.reg_width - 1))
            r.reg_index)
        rp.registers;
      List.iter
        (fun m ->
          Format.fprintf ppf "  // %d-way mux at %s@," m.mux_inputs m.mux_at)
        rp.muxes;
      Format.fprintf ppf "  always @@(posedge clk) begin@,    case (step)@,";
      List.iter
        (fun (g, words) ->
          Format.fprintf ppf "      %d: begin /* %s */ end@," g
            (String.concat "; " words))
        rp.control_words;
      Format.fprintf ppf "    endcase@,  end@,endmodule@,@,")
    t.parts;
  Format.fprintf ppf "@]"

module M = Mcs_obs.Metrics

let m_hits = M.counter "ilp.warm.hits"
let m_misses = M.counter "ilp.warm.misses"

let lock = Mutex.create ()
let tbl : (string, string list) Hashtbl.t = Hashtbl.create 16

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let put key names = with_lock (fun () -> Hashtbl.replace tbl key names)

let get key =
  with_lock (fun () ->
      match Hashtbl.find_opt tbl key with
      | Some names ->
          M.incr m_hits;
          Some names
      | None ->
          M.incr m_misses;
          None)

let clear () = with_lock (fun () -> Hashtbl.reset tbl)

let export_all () =
  with_lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let import entries = List.iter (fun (k, v) -> put k v) entries

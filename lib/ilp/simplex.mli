(** Two-phase primal simplex over exact rationals, with the dual-simplex and
    Gomory-cut machinery used by the pin-allocation feasibility checker of
    Chapter 3.3.

    Problems are stated in the natural form

    {v maximize c.x   subject to   a_i . x (<= | >= | =) b_i,   x >= 0 v}

    Bland's anti-cycling rule is used throughout, so termination is
    guaranteed at the price of a few extra pivots — irrelevant at the sizes
    produced by the formulations in this library. *)

type rel = Le | Ge | Eq

type problem = {
  n_vars : int;
  objective : Mcs_util.Ratio.t array;  (** length [n_vars]; maximized *)
  rows : (Mcs_util.Ratio.t array * rel * Mcs_util.Ratio.t) list;
}

type solution = { value : Mcs_util.Ratio.t; x : Mcs_util.Ratio.t array }

type status =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Exhausted of Mcs_resilience.Budget.exhausted
      (** The pivot or wall budget ran out before the tableau reached
          optimality; the problem's status is unknown. *)

val solve : ?budget:Mcs_resilience.Budget.t -> problem -> status
(** [budget] (default {!Mcs_resilience.Budget.unlimited}) charges one
    pivot per simplex pivot and is shared with every later re-optimization
    of the same tableau. *)

(** Access to the solved tableau, for cutting-plane and branch-and-bound
    methods that re-optimize incrementally instead of re-solving from a
    cold start. *)
module Tab : sig
  type t

  type snapshot
  (** Immutable copy of a tableau's live region (rows, columns, basis,
      objective row).  Snapshots are cheap relative to a from-scratch
      solve and may be restored any number of times, but only into the
      tableau they were taken from (they do not carry the structural
      problem definition). *)

  val of_problem :
    ?budget:Mcs_resilience.Budget.t ->
    problem ->
    [ `Solved of t
    | `Infeasible
    | `Unbounded
    | `Exhausted of Mcs_resilience.Budget.exhausted ]
  (** Runs both phases to optimality.  The [budget] is retained by the
      tableau, so pivots spent by {!reoptimize_dual} keep drawing on the
      same pool — branch-and-bound charges its whole tree against one
      budget. *)

  val solution : t -> solution

  val fractional_basic : t -> int option
  (** Index of a tableau row whose basic variable is one of the original
      [n_vars] problem variables and currently holds a fractional value
      (smallest such row), or [None] when the solution is integral on the
      original variables. *)

  val add_gomory_cut : t -> int -> unit
  (** Appends the Gomory fractional cut derived from the given row.  The
      tableau becomes primal-infeasible but stays dual-feasible. *)

  val add_row : t -> Mcs_util.Ratio.t array -> rel -> Mcs_util.Ratio.t -> unit
  (** [add_row t coefs rel b] appends the constraint [coefs . x (rel) b]
      over the {e structural} variables ([coefs] has at most the problem's
      [n_vars] entries; missing trailing entries are zero) to an optimal
      tableau.  The row is re-expressed in the current basis and given a
      fresh basic slack, so the tableau stays dual-feasible and a single
      {!reoptimize_dual} re-optimizes — the warm-start primitive behind
      branch-and-bound bound rows.  An [Eq] row is appended as the [Le]
      and [Ge] pair. *)

  val reoptimize_dual :
    t -> [ `Ok | `Infeasible | `Exhausted of Mcs_resilience.Budget.exhausted ]
  (** Dual simplex until primal feasibility is restored.  A dual-feasible
      tableau can never become unbounded here: re-optimization either
      reaches an optimum, proves the added rows primal-infeasible, or runs
      out of the budget the tableau was built with. *)

  val snapshot : t -> snapshot
  (** Capture the current basis and tableau contents. *)

  val restore : t -> snapshot -> unit
  (** Roll the tableau back to a previously captured snapshot (rows and
      columns added since are discarded).  The snapshot must have been
      taken from [t]. *)
end

module R = Mcs_util.Ratio
module M = Mcs_obs.Metrics
module E = Mcs_obs.Events
module Budget = Mcs_resilience.Budget
module A2 = Bigarray.Array2
module A1 = Bigarray.Array1

type f64_1d = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

let m_solves = M.counter "fsimplex.solves"
let m_pivots = M.counter "fsimplex.pivots"
let m_steered_pivots = M.counter "fsimplex.steered_pivots"
let m_stuck = M.counter "fsimplex.stuck"
let m_cert_ok = M.counter "ilp.certify.ok"
let m_cert_fail = M.counter "ilp.certify.fail"

type arith = Float_certified | Rational

let arith_of_env () =
  match Sys.getenv_opt "MCS_ARITH" with
  | Some ("rational" | "exact") -> Rational
  | _ -> Float_certified

let arith_to_string = function
  | Float_certified -> "float-certified"
  | Rational -> "rational"

(* Sign tolerance for cost/rhs tests, minimum pivot magnitude, and the
   near-integrality test branching decisions use.  The models here have
   small integer data, so these are generous — and a wrong call is never
   fatal, only a certification failure away from the exact path. *)
let eps = 1e-9
let piv_tol = 1e-7

(* All rows are <=-form: row k owns slack column n_struct + k, so the live
   column count is always n_struct + m.  The exact mirror [ex_rows]/[ex_rhs]
   (structural coefficients only — slacks are implied unit columns) is
   append-only; [restore] just truncates [m] and later appends overwrite. *)
type t = {
  n_struct : int;
  mutable m : int;
  mutable a : (float, Bigarray.float64_elt, Bigarray.c_layout) A2.t;
  mutable rhs : float array;
  mutable basis : int array; (* basis.(i) = column basic in row i *)
  mutable obj : float array; (* obj.(j) = z_j - c_j; optimal when all >= 0 *)
  mutable obj_val : float;
  mutable ex_rows : R.t array array;
  mutable ex_rhs : R.t array;
  ex_obj : R.t array;
  mutable pref : bool array;
      (* pricing preference over structural columns, set only while the
         root [solve_lp] runs with a warm hint — see [dual_step] *)
  mutable nz : int array; (* scratch: nonzero columns of the pivot row *)
  budget : Budget.t;
}

(* Process-global recycling pool for the float64 buffers (tableaus and
   snapshots), keyed by length.  A fresh snapshot-sized Bigarray is not
   just an mmap plus page faults: its bytes count as custom-block memory
   pressure, so in a large-heap process every allocation also buys major
   GC slices — measurably doubling a small solve's wall inside the bench
   binary.  Repeated similar-size solves (a bench rep loop, a DSE grid
   sweep) hit steady state with zero fresh Bigarray allocation.  The
   per-length cap bounds retained memory; the mutex makes the pool safe
   under the server's worker domains. *)
module Pool = struct
  let lock = Mutex.create ()
  let tbl : (int, f64_1d list) Hashtbl.t = Hashtbl.create 16
  let per_len_cap = 8

  let alloc len =
    Mutex.lock lock;
    let r =
      match Hashtbl.find_opt tbl len with
      | Some (b :: rest) ->
          Hashtbl.replace tbl len rest;
          Some b
      | _ -> None
    in
    Mutex.unlock lock;
    match r with
    | Some b -> b
    | None -> A1.create Bigarray.float64 Bigarray.c_layout len

  let free b =
    let len = A1.dim b in
    Mutex.lock lock;
    let existing = Option.value ~default:[] (Hashtbl.find_opt tbl len) in
    if List.length existing < per_len_cap then
      Hashtbl.replace tbl len (b :: existing);
    Mutex.unlock lock
end

let n_cols t = t.n_struct + t.m

let alloc_tableau rows cols =
  Bigarray.reshape_2
    (Bigarray.genarray_of_array1 (Pool.alloc (rows * cols)))
    rows cols

let free_tableau a =
  Pool.free
    (Bigarray.reshape_1 (Bigarray.genarray_of_array2 a)
       (A2.dim1 a * A2.dim2 a))

let grow t want_rows =
  let cap = A2.dim1 t.a in
  if want_rows > cap then begin
    let cap' = max want_rows (2 * cap) in
    let a' = alloc_tableau cap' (t.n_struct + cap') in
    A2.fill a' 0.0;
    let n = n_cols t in
    for i = 0 to t.m - 1 do
      for j = 0 to n - 1 do
        A2.set a' i j (A2.get t.a i j)
      done
    done;
    free_tableau t.a;
    t.a <- a';
    let rhs' = Array.make cap' 0.0 in
    Array.blit t.rhs 0 rhs' 0 t.m;
    t.rhs <- rhs';
    let basis' = Array.make cap' (-1) in
    Array.blit t.basis 0 basis' 0 t.m;
    t.basis <- basis';
    let obj' = Array.make (t.n_struct + cap') 0.0 in
    Array.blit t.obj 0 obj' 0 n;
    t.obj <- obj';
    let ex_rows' = Array.make cap' [||] in
    Array.blit t.ex_rows 0 ex_rows' 0 t.m;
    t.ex_rows <- ex_rows';
    let ex_rhs' = Array.make cap' R.zero in
    Array.blit t.ex_rhs 0 ex_rhs' 0 t.m;
    t.ex_rhs <- ex_rhs'
  end

(* The row operations below are the whole float-path cost model: one
   pivot touches every live cell of every row with a nonzero pivot-column
   entry.  The pivot row's nonzero columns are gathered once and only
   those columns are updated — adding [f * 0.0] is a no-op, so the
   result (and every pivot sequence and counter downstream) is bitwise
   identical to the dense sweep, at a fraction of the memory traffic on
   the sparse rows these models produce.  Unsafe accesses are justified
   by the loop bounds — every index is < [t.m] (row) or < [n_cols t]
   (column), both within the allocated capacity by [grow]'s contract. *)
let pivot t r c =
  Budget.spend_pivot t.budget;
  M.incr m_pivots;
  let n = n_cols t in
  let a = t.a in
  let inv = 1.0 /. A2.unsafe_get a r c in
  if Array.length t.nz < n then t.nz <- Array.make (A2.dim2 t.a) 0;
  let nz = t.nz in
  let k = ref 0 in
  for j = 0 to n - 1 do
    let v = A2.unsafe_get a r j in
    if v <> 0.0 then begin
      A2.unsafe_set a r j (v *. inv);
      Array.unsafe_set nz !k j;
      incr k
    end
  done;
  let k = !k in
  A2.unsafe_set a r c 1.0;
  t.rhs.(r) <- t.rhs.(r) *. inv;
  for i = 0 to t.m - 1 do
    if i <> r then begin
      let f = A2.unsafe_get a i c in
      if f <> 0.0 then begin
        for idx = 0 to k - 1 do
          let j = Array.unsafe_get nz idx in
          A2.unsafe_set a i j
            (A2.unsafe_get a i j -. (f *. A2.unsafe_get a r j))
        done;
        A2.unsafe_set a i c 0.0;
        t.rhs.(i) <- t.rhs.(i) -. (f *. t.rhs.(r))
      end
    end
  done;
  let f = t.obj.(c) in
  if f <> 0.0 then begin
    let obj = t.obj in
    for idx = 0 to k - 1 do
      let j = Array.unsafe_get nz idx in
      Array.unsafe_set obj j
        (Array.unsafe_get obj j -. (f *. A2.unsafe_get a r j))
    done;
    obj.(c) <- 0.0;
    t.obj_val <- t.obj_val -. (f *. t.rhs.(r))
  end;
  t.basis.(r) <- c

let install_objective t cost =
  let n = n_cols t in
  let c j = if j < Array.length cost then cost.(j) else 0.0 in
  for j = 0 to n - 1 do
    t.obj.(j) <- -.c j
  done;
  t.obj_val <- 0.0;
  for i = 0 to t.m - 1 do
    let cb = c t.basis.(i) in
    if cb <> 0.0 then begin
      for j = 0 to n - 1 do
        t.obj.(j) <- t.obj.(j) +. (cb *. A2.get t.a i j)
      done;
      t.obj_val <- t.obj_val +. (cb *. t.rhs.(i))
    end
  done

(* Dantzig pricing in both phases (most-negative reduced cost / most-
   negative rhs, lowest index among ties) rather than the rational twin's
   Bland: typically a fraction of Bland's pivot count, and the float path
   has a safety net Bland exists to avoid needing — a cycle hits the
   iteration cap, turns into [`Stuck], and falls back to the exact
   (Bland) path.  Selection is deterministic either way, so pivot
   counters and bench baselines stay machine-independent. *)
let primal_step t =
  let n = n_cols t in
  let entering = ref (-1) in
  let most = ref (-.eps) in
  for j = 0 to n - 1 do
    let oj = Array.unsafe_get t.obj j in
    if oj < !most then begin
      entering := j;
      most := oj
    end
  done;
  if !entering < 0 then `Optimal
  else begin
    let c = !entering in
    let best = ref (-1) in
    let best_ratio = ref 0.0 in
    for i = 0 to t.m - 1 do
      let a_ic = A2.unsafe_get t.a i c in
      if a_ic > piv_tol then begin
        let ratio = t.rhs.(i) /. a_ic in
        let better =
          !best < 0
          || ratio < !best_ratio
          || (ratio = !best_ratio && t.basis.(i) < t.basis.(!best))
        in
        if better then begin
          best := i;
          best_ratio := ratio
        end
      end
    done;
    if !best < 0 then `Unbounded
    else begin
      pivot t !best c;
      `Pivoted
    end
  end

(* Entering choice: smallest ratio, then — the warm-start lever — a
   preferred column beats an unpreferred one, then lowest index (Bland).
   The zero-objective feasibility phase ties every eligible ratio at 0,
   so the tie-break IS the pivot rule there: steering it toward a
   neighboring grid point's basis columns replays that basis without a
   single extra pivot, where an explicit crash-then-repair both densifies
   the tableau and guesses the slack half of the basis wrong.  Dropping
   strict Bland order risks cycling only while a preference is set; the
   iteration cap turns a stall into [`Stuck] and the exact fallback. *)
let dual_step t =
  let leaving = ref (-1) in
  let most = ref (-.eps) in
  for i = 0 to t.m - 1 do
    let ri = Array.unsafe_get t.rhs i in
    if ri < !most then begin
      leaving := i;
      most := ri
    end
  done;
  if !leaving < 0 then `Feasible
  else begin
    let r = !leaving in
    let n = n_cols t in
    let pref = t.pref in
    let npref = Array.length pref in
    let best = ref (-1) in
    let best_ratio = ref 0.0 in
    let best_pref = ref false in
    for j = 0 to n - 1 do
      let a_rj = A2.unsafe_get t.a r j in
      if a_rj < -.piv_tol then begin
        let ratio = t.obj.(j) /. -.a_rj in
        let p = j < npref && Array.unsafe_get pref j in
        let better =
          !best < 0 || ratio < !best_ratio
          || (ratio = !best_ratio && p && not !best_pref)
        in
        if better then begin
          best := j;
          best_ratio := ratio;
          best_pref := p
        end
      end
    done;
    if !best < 0 then `Infeasible r
    else begin
      if !best_pref then M.incr m_steered_pivots;
      pivot t r !best;
      `Pivoted
    end
  end

let iter_cap t = 10_000 + (100 * t.m)

let primal_loop t =
  let left = ref (iter_cap t) in
  let rec go () =
    if !left <= 0 then begin
      M.incr m_stuck;
      `Stuck
    end
    else begin
      decr left;
      match primal_step t with
      | `Optimal -> `Optimal
      | `Unbounded -> `Unbounded
      | `Pivoted -> go ()
    end
  in
  go ()

let dual_loop t =
  let left = ref (iter_cap t) in
  let rec go () =
    if !left <= 0 then begin
      M.incr m_stuck;
      `Stuck
    end
    else begin
      decr left;
      match dual_step t with
      | `Feasible -> `Ok
      | `Infeasible r -> `Infeasible r
      | `Pivoted -> go ()
    end
  in
  go ()

let create ?(budget = Budget.unlimited) (p : Simplex.problem) =
  if p.n_vars < 0 then invalid_arg "Fsimplex: negative n_vars";
  let le_rows =
    List.concat_map
      (fun (coefs, rel, b) ->
        if Array.length coefs <> p.n_vars then
          invalid_arg "Fsimplex: row width mismatch";
        match rel with
        | Simplex.Le -> [ (Array.copy coefs, b) ]
        | Simplex.Ge -> [ (Array.map R.neg coefs, R.neg b) ]
        | Simplex.Eq ->
            [ (Array.copy coefs, b); (Array.map R.neg coefs, R.neg b) ])
      p.rows
  in
  let m = List.length le_rows in
  (* Headroom for the branching rows a search appends: as long as the
     tree stays shallower than this, [grow] never fires, the row stride
     never changes, and every snapshot/restore is a single blit. *)
  let cap = m + 64 in
  let a = alloc_tableau cap (p.n_vars + cap) in
  A2.fill a 0.0;
  let t =
    {
      n_struct = p.n_vars;
      m;
      a;
      rhs = Array.make cap 0.0;
      basis = Array.make cap (-1);
      obj = Array.make (p.n_vars + cap) 0.0;
      obj_val = 0.0;
      ex_rows = Array.make cap [||];
      ex_rhs = Array.make cap R.zero;
      ex_obj = Array.copy p.objective;
      pref = [||];
      nz = Array.make (p.n_vars + cap) 0;
      budget;
    }
  in
  List.iteri
    (fun i (coefs, b) ->
      t.ex_rows.(i) <- coefs;
      t.ex_rhs.(i) <- b;
      for j = 0 to p.n_vars - 1 do
        let v = coefs.(j) in
        if not (R.is_zero v) then A2.set t.a i j (R.to_float v)
      done;
      A2.set t.a i (p.n_vars + i) 1.0;
      t.rhs.(i) <- R.to_float b;
      t.basis.(i) <- p.n_vars + i)
    le_rows;
  t

let fcost t = Array.map R.to_float t.ex_obj

let solve_lp ?(warm = []) t =
  M.incr m_solves;
  if warm <> [] then begin
    let pref = Array.make t.n_struct false in
    List.iter (fun j -> if j >= 0 && j < t.n_struct then pref.(j) <- true) warm;
    t.pref <- pref
  end;
  install_objective t [||];
  let feas = dual_loop t in
  t.pref <- [||];
  match feas with
  | `Stuck -> `Stuck
  | `Infeasible r -> `Infeasible r
  | `Ok -> (
      install_objective t (fcost t);
      match primal_loop t with
      | `Optimal -> `Optimal
      | `Unbounded -> `Unbounded
      | `Stuck -> `Stuck)

let reoptimize_dual t = dual_loop t

let add_row t coefs rel b =
  if Array.length coefs > t.n_struct then
    invalid_arg "Fsimplex.add_row: more coefficients than variables";
  let rec add rel =
    match rel with
    | Simplex.Eq ->
        add Simplex.Le;
        add Simplex.Ge
    | Simplex.Le | Simplex.Ge ->
        let neg_it = rel = Simplex.Ge in
        let exc = Array.make t.n_struct R.zero in
        Array.iteri
          (fun j c -> exc.(j) <- (if neg_it then R.neg c else c))
          coefs;
        let exb = if neg_it then R.neg b else b in
        grow t (t.m + 1);
        let r = t.m in
        let slack = t.n_struct + r in
        t.ex_rows.(r) <- exc;
        t.ex_rhs.(r) <- exb;
        (* The slack column and the new row slot may hold stale values
           from before a [restore] truncation; scrub them. *)
        for i = 0 to t.m - 1 do
          A2.set t.a i slack 0.0
        done;
        t.obj.(slack) <- 0.0;
        let n_old = n_cols t in
        let row = Array.make n_old 0.0 in
        for j = 0 to t.n_struct - 1 do
          let v = exc.(j) in
          if not (R.is_zero v) then row.(j) <- R.to_float v
        done;
        let rhs = ref (R.to_float exb) in
        (* Express the row in the current basis: basis columns are unit
           vectors, so one elimination pass per tableau row whose basic
           variable appears suffices.  The objective row is untouched (the
           new slack has reduced cost 0): dual feasibility is preserved. *)
        for i = 0 to t.m - 1 do
          let f = row.(t.basis.(i)) in
          if f <> 0.0 then begin
            for j = 0 to n_old - 1 do
              let v = A2.unsafe_get t.a i j in
              if v <> 0.0 then
                Array.unsafe_set row j (Array.unsafe_get row j -. (f *. v))
            done;
            rhs := !rhs -. (f *. t.rhs.(i))
          end
        done;
        for j = 0 to n_old - 1 do
          A2.unsafe_set t.a r j (Array.unsafe_get row j)
        done;
        A2.set t.a r slack 1.0;
        t.rhs.(r) <- !rhs;
        t.basis.(r) <- slack;
        t.m <- t.m + 1
  in
  add rel

type snapshot = {
  s_m : int;
  s_width : int; (* tableau row stride when the snapshot was taken *)
  s_a : f64_1d; (* the first m full-width tableau rows, verbatim *)
  s_rhs : float array;
  s_basis : int array;
  s_obj : float array;
  s_obj_val : float;
  mutable s_uses : int;
      (* outstanding [release] calls before s_a returns to the pool *)
}

let flat t = Bigarray.reshape_1 (Bigarray.genarray_of_array2 t.a)
    (A2.dim1 t.a * A2.dim2 t.a)

(* Snapshot/restore bound the per-node cost of the search (every node
   restores, every branch snapshots), so both directions are a single
   memcpy-speed [A1.blit] of the live row prefix — full-width rows,
   stale tail columns included ([add_row] scrubs them) — rather than an
   element loop over the live region.  [create]'s capacity headroom
   keeps the row stride stable, so the width-mismatch fallback below is
   for the rare mid-search [grow], not the common path. *)
let snapshot ?(uses = 1) t =
  let width = A2.dim2 t.a in
  let len = t.m * width in
  let s_a = Pool.alloc len in
  A1.blit (A1.sub (flat t) 0 len) s_a;
  {
    s_m = t.m;
    s_width = width;
    s_a;
    s_rhs = Array.sub t.rhs 0 t.m;
    s_basis = Array.sub t.basis 0 t.m;
    s_obj = Array.sub t.obj 0 (n_cols t);
    s_obj_val = t.obj_val;
    s_uses = uses;
  }

let release (_ : t) s =
  s.s_uses <- s.s_uses - 1;
  if s.s_uses = 0 then Pool.free s.s_a

let restore t s =
  grow t s.s_m;
  t.m <- s.s_m;
  let n = n_cols t in
  let width = A2.dim2 t.a in
  if width = s.s_width then
    A1.blit s.s_a (A1.sub (flat t) 0 (s.s_m * width))
  else begin
    let a = t.a in
    for i = 0 to s.s_m - 1 do
      let base = i * s.s_width in
      for j = 0 to n - 1 do
        A2.unsafe_set a i j (A1.unsafe_get s.s_a (base + j))
      done
    done
  end;
  Array.blit s.s_rhs 0 t.rhs 0 s.s_m;
  Array.blit s.s_basis 0 t.basis 0 s.s_m;
  Array.blit s.s_obj 0 t.obj 0 n;
  t.obj_val <- s.s_obj_val

let dispose t = free_tableau t.a

let value_float t = t.obj_val

let x_float t =
  let x = Array.make t.n_struct 0.0 in
  for i = 0 to t.m - 1 do
    if t.basis.(i) < t.n_struct then x.(t.basis.(i)) <- t.rhs.(i)
  done;
  x

let basic_structurals t =
  let cols = ref [] in
  for i = t.m - 1 downto 0 do
    if t.basis.(i) < t.n_struct then cols := t.basis.(i) :: !cols
  done;
  List.sort compare !cols

(* --- Exact certification ------------------------------------------------

   Every column is structural or a row-singleton slack, so the basis
   factors without touching the float tableau: rows whose own slack is
   basic are back-substitution, and the structural basic columns against
   the slack-tight rows form a small dense rational system. *)

(* Solve the k x k rational system in place; [None] on a singular matrix
   or rational overflow — both mean certification fails and the caller
   falls back to the exact simplex, so no cleverness is needed here. *)
let gauss k mat rhs =
  try
    for col = 0 to k - 1 do
      let p = ref (-1) in
      for i = k - 1 downto col do
        if not (R.is_zero mat.(i).(col)) then p := i
      done;
      if !p < 0 then raise Exit;
      if !p <> col then begin
        let tmp = mat.(!p) in
        mat.(!p) <- mat.(col);
        mat.(col) <- tmp;
        let tmp = rhs.(!p) in
        rhs.(!p) <- rhs.(col);
        rhs.(col) <- tmp
      end;
      let inv = R.inv mat.(col).(col) in
      for i = col + 1 to k - 1 do
        let f = R.mul mat.(i).(col) inv in
        if not (R.is_zero f) then begin
          for j = col to k - 1 do
            mat.(i).(j) <- R.sub mat.(i).(j) (R.mul f mat.(col).(j))
          done;
          rhs.(i) <- R.sub rhs.(i) (R.mul f rhs.(col))
        end
      done
    done;
    let x = Array.make k R.zero in
    for i = k - 1 downto 0 do
      let s = ref rhs.(i) in
      for j = i + 1 to k - 1 do
        s := R.sub !s (R.mul mat.(i).(j) x.(j))
      done;
      x.(i) <- R.div !s mat.(i).(i)
    done;
    Some x
  with Exit | R.Overflow -> None

(* Split the basis: [t_cols] = structural basic columns (ascending),
   [t_rows] = rows whose own slack is nonbasic.  A valid basis has
   |t_cols| = |t_rows|; anything else fails certification. *)
let basis_split t =
  let slack_basic = Array.make t.m false in
  let t_cols = ref [] in
  for i = t.m - 1 downto 0 do
    let c = t.basis.(i) in
    if c < t.n_struct then t_cols := c :: !t_cols
    else slack_basic.(c - t.n_struct) <- true
  done;
  let t_rows = ref [] in
  for k = t.m - 1 downto 0 do
    if not slack_basic.(k) then t_rows := k :: !t_rows
  done;
  let t_cols = Array.of_list (List.sort compare !t_cols) in
  let t_rows = Array.of_list !t_rows in
  if Array.length t_cols <> Array.length t_rows then None
  else Some (slack_basic, t_cols, t_rows)

let verdict kind ok =
  M.incr (if ok then m_cert_ok else m_cert_fail);
  if E.on () then
    E.emit ~cat:"ilp" "certify"
      ~args:
        [
          ("kind", E.Str kind);
          ("outcome", E.Str (if ok then "ok" else "fail"));
        ];
  ok

let certify_optimal t =
  let fail () =
    ignore (verdict "optimal" false);
    None
  in
  match basis_split t with
  | None -> fail ()
  | Some (slack_basic, t_cols, t_rows) -> (
      let k = Array.length t_cols in
      let solved =
        try
          let mat =
            Array.init k (fun ri ->
                Array.init k (fun ci -> t.ex_rows.(t_rows.(ri)).(t_cols.(ci))))
          in
          let rhs = Array.init k (fun ri -> t.ex_rhs.(t_rows.(ri))) in
          gauss k mat rhs
        with R.Overflow -> None
      in
      match solved with
      | None -> fail ()
      | Some x_t -> (
          try
            let x = Array.make t.n_struct R.zero in
            Array.iteri (fun ci c -> x.(c) <- x_t.(ci)) t_cols;
            let row_residual r =
              let acc = ref t.ex_rhs.(r) in
              Array.iteri
                (fun ci c ->
                  let a = t.ex_rows.(r).(c) in
                  if not (R.is_zero a) then
                    acc := R.sub !acc (R.mul a x_t.(ci)))
                t_cols;
              !acc
            in
            let primal_ok = ref (Array.for_all (fun v -> R.sign v >= 0) x_t) in
            for r = 0 to t.m - 1 do
              (* Slack-tight rows hold exactly by construction; the basic
                 slacks must come out nonnegative. *)
              if !primal_ok && slack_basic.(r) then
                if R.sign (row_residual r) < 0 then primal_ok := false
            done;
            let dual_ok =
              if not !primal_ok then false
              else if Array.for_all R.is_zero t.ex_obj then
                (* Pure feasibility: any feasible basic point is optimal. *)
                true
              else begin
                (* y over the slack-tight rows solves the transpose system
                   (basic slacks cost 0, so their multipliers are 0). *)
                let mat =
                  Array.init k (fun ci ->
                      Array.init k (fun ri ->
                          t.ex_rows.(t_rows.(ri)).(t_cols.(ci))))
                in
                let rhs = Array.init k (fun ci -> t.ex_obj.(t_cols.(ci))) in
                match gauss k mat rhs with
                | None -> false
                | Some y_t ->
                    (* Nonbasic slack reduced costs: -y_r <= 0. *)
                    Array.for_all (fun y -> R.sign y >= 0) y_t
                    &&
                    let basic_struct = Array.make t.n_struct false in
                    Array.iter (fun c -> basic_struct.(c) <- true) t_cols;
                    let ok = ref true in
                    for j = 0 to t.n_struct - 1 do
                      if !ok && not basic_struct.(j) then begin
                        let red = ref t.ex_obj.(j) in
                        Array.iteri
                          (fun ri r ->
                            let a = t.ex_rows.(r).(j) in
                            if not (R.is_zero a) then
                              red := R.sub !red (R.mul a y_t.(ri)))
                          t_rows;
                        if R.sign !red > 0 then ok := false
                      end
                    done;
                    !ok
              end
            in
            if not (!primal_ok && dual_ok) then fail ()
            else begin
              let value = ref R.zero in
              for j = 0 to t.n_struct - 1 do
                if not (R.is_zero t.ex_obj.(j)) then
                  value := R.add !value (R.mul t.ex_obj.(j) x.(j))
              done;
              ignore (verdict "optimal" true);
              Some { Simplex.value = !value; x }
            end
          with R.Overflow -> fail ()))

let certify_infeasible t r =
  match basis_split t with
  | None -> verdict "farkas" false
  | Some (slack_basic, t_cols, t_rows) -> (
      let k = Array.length t_cols in
      let certified =
        try
          (* z = row r of B^{-1}: B^T z = e_r by basis position.  Basic
             slacks pin their z component to the unit entry; the
             structural basic columns give the transpose system over the
             slack-tight rows. *)
          let z_fixed = Array.make t.m R.zero in
          for i = 0 to t.m - 1 do
            if t.basis.(i) >= t.n_struct then
              z_fixed.(t.basis.(i) - t.n_struct) <-
                (if i = r then R.one else R.zero)
          done;
          let pos = Array.make t.n_struct (-1) in
          for i = 0 to t.m - 1 do
            if t.basis.(i) < t.n_struct then pos.(t.basis.(i)) <- i
          done;
          let mat =
            Array.init k (fun ci ->
                Array.init k (fun ri -> t.ex_rows.(t_rows.(ri)).(t_cols.(ci))))
          in
          let rhs =
            Array.init k (fun ci ->
                let j = t_cols.(ci) in
                let target = if pos.(j) = r then R.one else R.zero in
                let acc = ref target in
                for row = 0 to t.m - 1 do
                  if slack_basic.(row) then begin
                    let zr = z_fixed.(row) in
                    if not (R.is_zero zr) then
                      acc := R.sub !acc (R.mul t.ex_rows.(row).(j) zr)
                  end
                done;
                !acc)
          in
          match gauss k mat rhs with
          | None -> false
          | Some z_t ->
              let z = z_fixed in
              Array.iteri (fun ri row -> z.(row) <- z_t.(ri)) t_rows;
              (* Farkas: z >= 0 (slack columns), z.A >= 0 (structural
                 columns) and z.b < 0 refute Ax <= b, x >= 0. *)
              Array.for_all (fun v -> R.sign v >= 0) z
              && (let zb = ref R.zero in
                  for row = 0 to t.m - 1 do
                    if not (R.is_zero z.(row)) then
                      zb := R.add !zb (R.mul z.(row) t.ex_rhs.(row))
                  done;
                  R.sign !zb < 0)
              &&
              let ok = ref true in
              for j = 0 to t.n_struct - 1 do
                if !ok then begin
                  let za = ref R.zero in
                  for row = 0 to t.m - 1 do
                    if not (R.is_zero z.(row)) then
                      za := R.add !za (R.mul z.(row) t.ex_rows.(row).(j))
                  done;
                  if R.sign !za < 0 then ok := false
                end
              done;
              !ok
        with R.Overflow -> false
      in
      verdict "farkas" certified)

module R = Mcs_util.Ratio

type var = int

type vinfo = {
  name : string;
  lo : int; (* finite lower bound; formulations here never need -inf *)
  hi : int option;
  integer : bool;
}

type lin = { terms : (int * var) list; cst : int }

type rel = Rle | Rge | Req

type row = { lhs : lin; rel : rel; name : string }

type t = {
  mutable vars : vinfo list; (* reversed *)
  mutable nv : int;
  mutable rows : row list; (* reversed *)
  mutable nr : int;
  mutable obj : lin;
  mutable fresh : int;
}

let create () =
  { vars = []; nv = 0; rows = []; nr = 0; obj = { terms = []; cst = 0 }; fresh = 0 }

let add_var_info t info =
  t.vars <- info :: t.vars;
  t.nv <- t.nv + 1;
  t.nv - 1

let binary t name = add_var_info t { name; lo = 0; hi = Some 1; integer = true }

let int_var t ?(lo = 0) ?hi name =
  add_var_info t { name; lo; hi; integer = true }

let cont_var t ?(lo = 0) ?hi name =
  add_var_info t { name; lo; hi; integer = false }

let info t x = List.nth t.vars (t.nv - 1 - x)
let var_name t x = (info t x).name
let n_vars t = t.nv
let n_constraints t = t.nr

let term c x = { terms = [ (c, x) ]; cst = 0 }
let v x = term 1 x
let const c = { terms = []; cst = c }
let add a b = { terms = a.terms @ b.terms; cst = a.cst + b.cst }
let scale k a = { terms = List.map (fun (c, x) -> (k * c, x)) a.terms; cst = k * a.cst }
let sub a b = add a (scale (-1) b)
let sum l = List.fold_left add (const 0) l

let add_row t rel ?(name = "c") lhs rhs =
  t.rows <- { lhs = sub lhs rhs; rel; name } :: t.rows;
  t.nr <- t.nr + 1

let add_le t ?name lhs rhs = add_row t Rle ?name lhs rhs
let add_ge t ?name lhs rhs = add_row t Rge ?name lhs rhs
let add_eq t ?name lhs rhs = add_row t Req ?name lhs rhs
let set_objective t lin = t.obj <- lin

let ge_max t ?name e ys = List.iter (fun y -> add_ge t ?name e (v y)) ys

let eq_max_bin t ?name z ys =
  ge_max t ?name (v z) ys;
  add_le t ?name (v z) (sum (List.map v ys))

let eq_min_bin t ?name z ys =
  List.iter (fun y -> add_le t ?name (v z) (v y)) ys;
  let n = List.length ys in
  add_ge t ?name (v z) (sub (sum (List.map v ys)) (const (n - 1)))

let fresh_name t prefix =
  t.fresh <- t.fresh + 1;
  Printf.sprintf "%s_%d" prefix t.fresh

let eq_xor_bin t ?name z x y =
  let mx = binary t (fresh_name t "xor_max") in
  let mn = binary t (fresh_name t "xor_min") in
  eq_max_bin t ?name mx [ x; y ];
  eq_min_bin t ?name mn [ x; y ];
  add_eq t ?name (v z) (sub (v mx) (v mn))

let implies_le t ?name ~big_m b lhs rhs =
  (* lhs <= rhs + M (1 - b) *)
  add_le t ?name lhs (add rhs (sub (const big_m) (scale big_m (v b))))

let iff_positive t ?name ~big_m b e =
  add_le t ?name e (scale big_m (v b));
  add_ge t ?name e (v b)

(* --- Conversion to the simplex form --- *)

let to_problem t =
  let infos = Array.of_list (List.rev t.vars) in
  let n = t.nv in
  (* Shift each variable by its lower bound so the simplex variable is
     x' = x - lo >= 0. *)
  let lo = Array.map (fun i -> i.lo) infos in
  let integer = Array.map (fun i -> i.integer) infos in
  let dense lin =
    let coefs = Array.make n R.zero in
    let shift = ref lin.cst in
    List.iter
      (fun (c, x) ->
        coefs.(x) <- R.add coefs.(x) (R.of_int c);
        shift := !shift + (c * lo.(x)))
      lin.terms;
    (coefs, !shift)
  in
  let rows = ref [] in
  (* Upper bounds as rows: x' <= hi - lo. *)
  Array.iteri
    (fun x i ->
      match i.hi with
      | None -> ()
      | Some hi ->
          let coefs = Array.make n R.zero in
          coefs.(x) <- R.one;
          rows := (coefs, Simplex.Le, R.of_int (hi - i.lo)) :: !rows)
    infos;
  List.iter
    (fun r ->
      let coefs, shift = dense r.lhs in
      let rel =
        match r.rel with Rle -> Simplex.Le | Rge -> Simplex.Ge | Req -> Simplex.Eq
      in
      (* lhs - rhs (rel) 0  became  coefs . x' + shift (rel) 0. *)
      rows := (coefs, rel, R.of_int (-shift)) :: !rows)
    (List.rev t.rows);
  let objective, _ = dense t.obj in
  ({ Simplex.n_vars = n; objective; rows = List.rev !rows }, integer)

type solution = { objective : R.t; values : var -> R.t }

type outcome =
  | Optimal of solution
  | Feasible of solution
  | Infeasible
  | Unbounded
  | Unknown
  | Exhausted of Mcs_resilience.Budget.exhausted

let wrap_solution t (s : Simplex.solution) =
  let infos = Array.of_list (List.rev t.vars) in
  let obj_shift =
    List.fold_left (fun acc (c, x) -> acc + (c * infos.(x).lo)) t.obj.cst
      t.obj.terms
  in
  {
    objective = R.add s.value (R.of_int obj_shift);
    values =
      (fun x ->
        if x < 0 || x >= Array.length s.x then invalid_arg "Model: bad var";
        R.add s.x.(x) (R.of_int infos.(x).lo));
  }

let solve ?budget ?(method_ = `Branch_bound)
    ?(arith = Fsimplex.arith_of_env ()) ?warm_key t =
  let p, integer = to_problem t in
  match method_ with
  | `Branch_bound -> (
      let of_bb = function
        | Branch_bound.Optimal s -> Optimal (wrap_solution t s)
        | Branch_bound.Limit_feasible s -> Feasible (wrap_solution t s)
        | Branch_bound.Infeasible -> Infeasible
        | Branch_bound.Unbounded -> Unbounded
        | Branch_bound.Node_limit -> Unknown
        | Branch_bound.Exhausted e -> Exhausted e
      in
      match arith with
      | Fsimplex.Rational -> of_bb (Branch_bound.solve ?budget ~integer p)
      | Fsimplex.Float_certified ->
          (* The warm registry speaks variable names, the solver speaks
             structural columns; this is where the two meet. *)
          let infos = Array.of_list (List.rev t.vars) in
          let warm =
            match warm_key with
            | None -> []
            | Some key -> (
                match Warm.get key with
                | None -> []
                | Some names ->
                    let idx = Hashtbl.create (Array.length infos) in
                    Array.iteri
                      (fun i (info : vinfo) -> Hashtbl.replace idx info.name i)
                      infos;
                    List.filter_map
                      (fun name -> Hashtbl.find_opt idx name)
                      names)
          in
          let r, basis = Branch_bound.solve_float ?budget ~warm ~integer p in
          (match warm_key with
          | Some key when basis <> [] ->
              (* Store even when the search came up infeasible: the root
                 LP basis is what neighbors warm-start from, and a rate
                 sweep crosses the feasibility boundary mid-grid. *)
              Warm.put key (List.map (fun j -> infos.(j).name) basis)
          | _ -> ());
          of_bb r)
  | `Gomory -> (
      match Gomory.solve ?budget p with
      | Gomory.Optimal s -> Optimal (wrap_solution t s)
      | Gomory.Infeasible -> Infeasible
      | Gomory.Unbounded -> Unbounded
      | Gomory.Gave_up -> Unknown)

let lp_relaxation t =
  let p, _ = to_problem t in
  match Simplex.solve p with
  | Simplex.Optimal s -> Optimal (wrap_solution t s)
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Exhausted e -> Exhausted e

let int_value sol x =
  let value = sol.values x in
  if not (R.is_integer value) then
    invalid_arg "Model.int_value: fractional value";
  R.to_int_exn value

let pp_lin t ppf lin =
  let first = ref true in
  List.iter
    (fun (c, x) ->
      if c <> 0 then begin
        if !first then begin
          if c = 1 then Format.fprintf ppf "%s" (var_name t x)
          else Format.fprintf ppf "%d %s" c (var_name t x);
          first := false
        end
        else if c > 0 then
          if c = 1 then Format.fprintf ppf " + %s" (var_name t x)
          else Format.fprintf ppf " + %d %s" c (var_name t x)
        else if c = -1 then Format.fprintf ppf " - %s" (var_name t x)
        else Format.fprintf ppf " - %d %s" (-c) (var_name t x)
      end)
    lin.terms;
  if !first then Format.fprintf ppf "0"

let pp_lp ppf t =
  Format.fprintf ppf "Maximize@.  obj: %a@.Subject To@." (pp_lin t) t.obj;
  List.iteri
    (fun i r ->
      let op = match r.rel with Rle -> "<=" | Rge -> ">=" | Req -> "=" in
      Format.fprintf ppf "  %s%d: %a %s %d@." r.name i (pp_lin t)
        { r.lhs with cst = 0 } op (-r.lhs.cst))
    (List.rev t.rows);
  Format.fprintf ppf "Bounds@.";
  List.iteri
    (fun _ i ->
      match i.hi with
      | Some hi -> Format.fprintf ppf "  %d <= %s <= %d@." i.lo i.name hi
      | None -> Format.fprintf ppf "  %s >= %d@." i.name i.lo)
    (List.rev t.vars);
  Format.fprintf ppf "Generals@.";
  List.iter
    (fun i -> if i.integer then Format.fprintf ppf "  %s@." i.name)
    (List.rev t.vars);
  Format.fprintf ppf "End@."

(** Gomory cutting-plane integer programming — the method the dissertation
    uses (§3.3) to decide feasibility of the pin-allocation ILP during
    scheduling: solve the LP relaxation, and while some original variable is
    fractional, append a Gomory fractional cut and reoptimize with the dual
    simplex.

    Valid for problems whose constraint data is integral (every coefficient
    and right-hand side an integer), which holds for every formulation this
    library generates. *)

type result =
  | Optimal of Simplex.solution
  | Infeasible
  | Unbounded
  | Gave_up
      (** cut budget exhausted before convergence, or the pivot/wall
          budget ran out mid-solve *)

val solve :
  ?budget:Mcs_resilience.Budget.t -> ?max_cuts:int -> Simplex.problem -> result
(** [solve p] maximizes [p]'s objective over the integer points of its
    feasible region ([max_cuts] defaults to 500).  Exhaustion of [budget]
    reports [Gave_up]. *)

val feasible :
  ?budget:Mcs_resilience.Budget.t ->
  ?max_cuts:int ->
  Simplex.problem ->
  bool option
(** Pure feasibility query: [Some true] / [Some false] when decided, [None]
    when the cut budget ran out. *)

(** Convenience builder for the integer-linear formulations in the paper.

    All coefficients are integers (every formulation in the dissertation is
    integral).  Variables carry names so generated tableaus stay debuggable
    and the formulations can be pretty-printed in LP format. *)

type t
type var

type lin
(** Integer-coefficient linear expression. *)

val create : unit -> t

val binary : t -> string -> var
(** 0/1 integer variable (upper bound emitted as a constraint row). *)

val int_var : t -> ?lo:int -> ?hi:int -> string -> var
(** Integer variable, default bounds [0 .. +inf]. *)

val cont_var : t -> ?lo:int -> ?hi:int -> string -> var
(** Continuous variable, default bounds [0 .. +inf]. *)

val var_name : t -> var -> string
val n_vars : t -> int
val n_constraints : t -> int

(* Expressions. *)
val term : int -> var -> lin
val v : var -> lin
val const : int -> lin
val add : lin -> lin -> lin
val sub : lin -> lin -> lin
val sum : lin list -> lin
val scale : int -> lin -> lin

(* Constraints: [lhs rel rhs] with both sides linear. *)
val add_le : t -> ?name:string -> lin -> lin -> unit
val add_ge : t -> ?name:string -> lin -> lin -> unit
val add_eq : t -> ?name:string -> lin -> lin -> unit

val set_objective : t -> lin -> unit
(** Maximized.  Default objective is 0 (pure feasibility). *)

(* Linearization helpers (§3.1.1 and §6.1.1.4 of the dissertation). *)

val ge_max : t -> ?name:string -> lin -> var list -> unit
(** [ge_max m e ys] posts [e >= max ys] as one row per element. *)

val eq_max_bin : t -> ?name:string -> var -> var list -> unit
(** [eq_max_bin m z ys] posts [z = max ys] for binary variables:
    [z >= y_i] for each [i] and [z <= sum ys]. *)

val eq_min_bin : t -> ?name:string -> var -> var list -> unit
(** [z = min ys] for binaries: [z <= y_i] and [z >= sum ys - (n-1)]. *)

val eq_xor_bin : t -> ?name:string -> var -> var -> var -> unit
(** [eq_xor_bin m z x y] posts [z = x XOR y] using the max/min encoding of
    §6.1.1.4: [z = max(x,y) - min(x,y)] via two fresh binaries. *)

val implies_le : t -> ?name:string -> big_m:int -> var -> lin -> lin -> unit
(** [(b = 1) => (lhs <= rhs)] as [lhs <= rhs + M(1-b)]. *)

val iff_positive : t -> ?name:string -> big_m:int -> var -> lin -> unit
(** [(e > 0) <=> (b = 1)] for a nonnegative integer expression [e]:
    [e <= M b] and [e >= b]. *)

(* Solving. *)

type solution = { objective : Mcs_util.Ratio.t; values : var -> Mcs_util.Ratio.t }

type outcome =
  | Optimal of solution
  | Feasible of solution
      (** integer-feasible point found, but the solver's node budget ran
          out before optimality was proven *)
  | Infeasible
  | Unbounded
  | Unknown  (** solver node/cut limit hit with no feasible point in hand *)
  | Exhausted of Mcs_resilience.Budget.exhausted
      (** an explicit {!Mcs_resilience.Budget.t} ran out (or the
          [exhaust-ilp] fault is injected) before any feasible point *)

val to_problem : t -> Simplex.problem * bool array
(** Lower/upper bounds are materialized as constraint rows; variables are
    shifted so that the simplex sees [x >= 0] (negative lower bounds are
    supported). *)

val solve :
  ?budget:Mcs_resilience.Budget.t ->
  ?method_:[ `Branch_bound | `Gomory ] ->
  ?arith:Fsimplex.arith ->
  ?warm_key:string ->
  t ->
  outcome
(** Defaults to branch & bound.  With the [`Gomory] method, budget
    exhaustion reports [Unknown] (the cutting-plane loop cannot produce a
    partial incumbent).

    [arith] (default {!Fsimplex.arith_of_env}, i.e. float-first unless
    [MCS_ARITH=rational]) selects the solver arithmetic for the
    branch-and-bound method; every solution is exact in either mode (the
    float path certifies and re-derives its answers over rationals).
    [warm_key] names this call site in the cross-grid {!Warm} registry:
    the previous basis stored under the key steers the root LP as a warm
    start, and this solve's root basis is stored back (float mode only —
    keyed by {e variable names}, so neighboring grid points with the same
    model shape chain even though their bounds differ). *)

val lp_relaxation : t -> outcome
val int_value : solution -> var -> int
(** @raise Invalid_argument if the variable's value is fractional. *)

val pp_lp : Format.formatter -> t -> unit
(** Pretty-prints the model in (approximate) LP file format, mirroring the
    formulations the dissertation submitted to Bozo/Lindo. *)

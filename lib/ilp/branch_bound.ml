module R = Mcs_util.Ratio
module M = Mcs_obs.Metrics
module E = Mcs_obs.Events
module Budget = Mcs_resilience.Budget
module Fault = Mcs_resilience.Fault

let m_solves = M.counter "bb.solves"
let m_nodes = M.counter "bb.nodes"
let m_prune_infeasible = M.counter "bb.prune_infeasible"
let m_prune_bound = M.counter "bb.prune_bound"
let m_incumbents = M.counter "bb.incumbents"
let m_node_limit = M.counter "bb.node_limit"
let m_warm_restores = M.counter "bb.warm_restores"
let m_child_unbounded = M.counter "bb.child_unbounded"
let g_depth_peak = M.gauge "bb.depth_peak"

(* Same instrument as Simplex's pivot counter (registration is
   idempotent): node.close journal events report the pivots each dual
   reoptimization cost as the delta across the node. *)
let m_pivots = M.counter "simplex.pivots"

type result =
  | Optimal of Simplex.solution
  | Infeasible
  | Unbounded
  | Node_limit
  | Limit_feasible of Simplex.solution
  | Exhausted of Budget.exhausted

let first_fractional ~integer (sol : Simplex.solution) =
  let n = Array.length sol.x in
  let found = ref None in
  (try
     for i = 0 to n - 1 do
       if integer.(i) && not (R.is_integer sol.x.(i)) then begin
         found := Some i;
         raise Exit
       end
     done
   with Exit -> ());
  !found

let half = R.make 1 2

(* Most-fractional rule: branch on the integer variable whose fractional
   part is closest to 1/2 (smallest index breaks ties), the variable whose
   rounding the LP is least decided about.  Cheap now that a node costs a
   handful of dual pivots rather than a full re-solve. *)
let most_fractional ~integer (sol : Simplex.solution) =
  let best = ref None in
  Array.iteri
    (fun i xi ->
      if integer.(i) && not (R.is_integer xi) then begin
        let dist = R.abs (R.sub (R.frac xi) half) in
        match !best with
        | Some (_, d) when R.compare dist d <= 0 -> ()
        | _ -> best := Some (i, dist)
      end)
    sol.x;
  match !best with Some (i, _) -> Some i | None -> None

let unit_row n i coef =
  let row = Array.make n R.zero in
  row.(i) <- coef;
  row

(* Max-heap on the parent's LP bound (best-bound node ordering); among
   equal bounds the youngest node wins, so the search dives depth-first
   within a bound plateau.  The tie-break matters: pure feasibility
   models (zero objective, ubiquitous in the pin ILPs) make every bound
   equal, and a FIFO tie-break would degenerate into breadth-first
   search.  Either way the order — and therefore every pivot/node
   counter — is deterministic. *)
module Pq = struct
  type ('k, 'a) t = {
    cmp : 'k -> 'k -> int;
    mutable heap : ('k * int * 'a) array;
    mutable len : int;
    mutable seq : int;
  }

  let create cmp = { cmp; heap = [||]; len = 0; seq = 0 }

  let before q (b1, s1, _) (b2, s2, _) =
    let c = q.cmp b1 b2 in
    c > 0 || (c = 0 && s1 > s2)

  let swap q i j =
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(j);
    q.heap.(j) <- tmp

  let push q bound payload =
    let e = (bound, q.seq, payload) in
    q.seq <- q.seq + 1;
    if q.len = Array.length q.heap then begin
      let heap = Array.make (Stdlib.max 16 (2 * q.len)) e in
      Array.blit q.heap 0 heap 0 q.len;
      q.heap <- heap
    end;
    q.heap.(q.len) <- e;
    q.len <- q.len + 1;
    let i = ref (q.len - 1) in
    let moving = ref true in
    while !moving && !i > 0 do
      let p = (!i - 1) / 2 in
      if before q q.heap.(!i) q.heap.(p) then begin
        swap q !i p;
        i := p
      end
      else moving := false
    done

  let pop q =
    if q.len = 0 then None
    else begin
      let top = q.heap.(0) in
      q.len <- q.len - 1;
      if q.len > 0 then begin
        q.heap.(0) <- q.heap.(q.len);
        let i = ref 0 in
        let moving = ref true in
        while !moving do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let best = ref !i in
          if l < q.len && before q q.heap.(l) q.heap.(!best) then best := l;
          if r < q.len && before q q.heap.(r) q.heap.(!best) then best := r;
          if !best <> !i then begin
            swap q !i !best;
            i := !best
          end
          else moving := false
        done
      end;
      Some top
    end
end

type node = {
  snap : Simplex.Tab.snapshot; (* parent's optimal tableau *)
  var : int; (* branching variable *)
  dir : [ `Le of int | `Ge of int ]; (* the single bound this child adds *)
  depth : int;
}

(* Warm-started branch & bound: the root LP is solved once; every child
   restores its parent's optimal tableau, appends its one branching bound
   with [Tab.add_row] and re-optimizes with the dual simplex, so a node
   costs a few pivots instead of a two-phase solve from scratch.  A child
   can never be unbounded — its LP is the parent's (bounded, optimal) LP
   plus one constraint — so [Unbounded] is decided at the root alone. *)
let solve_rational ?(budget = Budget.unlimited) ?(max_nodes = 200_000) ~integer
    (p : Simplex.problem) =
  if Array.length integer <> p.n_vars then
    invalid_arg "Branch_bound.solve: integer mask length mismatch";
  M.incr m_solves;
  M.incr m_nodes;
  match Fault.exhaust_ilp () with
  | Some e -> Exhausted e
  | None -> (
  match Simplex.Tab.of_problem ~budget p with
  | `Infeasible ->
      M.incr m_prune_infeasible;
      Infeasible
  | `Unbounded -> Unbounded
  | `Exhausted e -> Exhausted e
  | `Solved tab ->
      let incumbent = ref None in
      let better value =
        match !incumbent with
        | None -> true
        | Some (v, _) -> R.compare value v > 0
      in
      let nodes = ref 1 in
      let hit_limit = ref false in
      let exhausted = ref None in
      let q = Pq.create R.compare in
      (* The LP optimum at a node: record it if integral, otherwise push
         both children carrying a snapshot of this node's tableau. *)
      let consider (sol : Simplex.solution) depth =
        if not (better sol.value) then M.incr m_prune_bound
        else
          match most_fractional ~integer sol with
          | None ->
              M.incr m_incumbents;
              if E.on () then
                E.emit ~cat:"bb" "incumbent"
                  ~args:[ ("node", E.Int !nodes); ("depth", E.Int depth) ];
              incumbent := Some (sol.value, sol)
          | Some i ->
              let snap = Simplex.Tab.snapshot tab in
              let f = R.floor sol.x.(i) in
              (* Pushed ceil-then-floor so the LIFO tie-break dives into
                 the floor branch first, like the cold reference. *)
              Pq.push q sol.value
                { snap; var = i; dir = `Ge (f + 1); depth = depth + 1 };
              Pq.push q sol.value
                { snap; var = i; dir = `Le f; depth = depth + 1 }
      in
      let rec drain () =
        match Pq.pop q with
        | None -> ()
        | Some (bound, _, node) ->
            if not (better bound) then begin
              (* Best-bound order makes this final: once the best open
                 bound cannot beat the incumbent, no open node can. *)
              M.incr m_prune_bound;
              drain ()
            end
            else if !nodes >= max_nodes then begin
              hit_limit := true;
              M.incr m_node_limit
            end
            else begin
              incr nodes;
              Budget.spend_node budget;
              M.incr m_nodes;
              M.incr m_warm_restores;
              M.set_max g_depth_peak (float_of_int node.depth);
              let journaling = E.on () in
              let pivots0 = if journaling then M.count m_pivots else 0 in
              if journaling then
                E.emit ~cat:"bb" "node.open"
                  ~args:
                    [
                      ("node", E.Int !nodes);
                      ("depth", E.Int node.depth);
                      ("var", E.Int node.var);
                      ( "branch",
                        E.Str
                          (match node.dir with
                          | `Le b -> Printf.sprintf "x%d<=%d" node.var b
                          | `Ge b -> Printf.sprintf "x%d>=%d" node.var b) );
                    ];
              let close outcome =
                if journaling then
                  E.emit ~cat:"bb" "node.close"
                    ~args:
                      [
                        ("node", E.Int !nodes);
                        ("outcome", E.Str outcome);
                        ("pivots", E.Int (M.count m_pivots - pivots0));
                      ]
              in
              Simplex.Tab.restore tab node.snap;
              let coefs = unit_row p.n_vars node.var R.one in
              (match node.dir with
              | `Le b -> Simplex.Tab.add_row tab coefs Simplex.Le (R.of_int b)
              | `Ge b -> Simplex.Tab.add_row tab coefs Simplex.Ge (R.of_int b));
              match Simplex.Tab.reoptimize_dual tab with
              | `Infeasible ->
                  M.incr m_prune_infeasible;
                  close "infeasible";
                  drain ()
              | `Exhausted e ->
                  close "exhausted";
                  exhausted := Some e
              | `Ok ->
                  close "solved";
                  consider (Simplex.Tab.solution tab) node.depth;
                  drain ()
            end
      in
      (try
         consider (Simplex.Tab.solution tab) 0;
         drain ()
       with Budget.Out_of_budget e -> exhausted := Some e);
      (match (!incumbent, !exhausted, !hit_limit) with
      | Some (_, sol), None, false -> Optimal sol
      | Some (_, sol), _, _ ->
          (* Optimality is unproven (node limit or budget), but the
             integer point is genuine: hand it to the caller instead of
             discarding it. *)
          Limit_feasible sol
      | None, Some e, _ -> Exhausted e
      | None, None, true -> Node_limit
      | None, None, false -> Infeasible))

(* --- Float-first search with exact certification ----------------------- *)

let m_fallbacks = M.counter "bb.arith_fallbacks"
let m_fpivots = M.counter "fsimplex.pivots"

(* Branching needs only a rough picture of the LP optimum — every value
   that becomes an incumbent is re-derived exactly by certification — so a
   generous near-integrality window is safe: a wrong call either branches
   once more or surfaces as an exactly-fractional certified point, which
   branches on the exact value below. *)
let int_tol = 1e-6

let float_most_fractional ~integer (x : float array) =
  let best = ref None in
  Array.iteri
    (fun i xi ->
      if integer.(i) then begin
        let fl = Float.floor xi in
        let frac = xi -. fl in
        if frac > int_tol && frac < 1.0 -. int_tol then begin
          let dist = Float.abs (frac -. 0.5) in
          match !best with
          | Some (_, _, d) when d <= dist -> ()
          | _ -> best := Some (i, int_of_float fl, dist)
        end
      end)
    x;
  match !best with Some (i, fl, _) -> Some (i, fl) | None -> None

type fnode = {
  fsnap : Fsimplex.snapshot; (* parent's optimal float tableau *)
  fvar : int;
  fdir : [ `Le of int | `Ge of int ];
  fdepth : int;
  fchain : (int * [ `Le of int | `Ge of int ]) list;
      (* every bound from the root to this node (own included), newest
         first — the exact subproblem a certification failure re-solves
         rationally *)
}

let bound_rows n_vars chain =
  List.rev_map
    (fun (var, dir) ->
      match dir with
      | `Le b -> (unit_row n_vars var R.one, Simplex.Le, R.of_int b)
      | `Ge b -> (unit_row n_vars var R.one, Simplex.Ge, R.of_int b))
    chain

(* Same warm node loop as [solve_rational], but every pivot is a float64
   row operation on the {!Fsimplex} tableau and exact arithmetic only runs
   at the leaves: candidate incumbents are certified (and re-derived) over
   rationals, infeasibility prunes carry a Farkas certificate, and a node
   whose certificate fails is re-solved — that node's subtree only, not
   the whole search — by the exact warm solver.  Bound pruning needs no
   certificate: every objective in this library has integer coefficients,
   so a child is useful only when its LP bound clears incumbent + 1, and
   the half-unit slack in [worth_float] absorbs any realistic roundoff.

   Returns the result plus the root LP basis (structural columns) for the
   cross-grid warm-start registry. *)
let solve_float ?(budget = Budget.unlimited) ?(max_nodes = 200_000)
    ?(warm = []) ~integer (p : Simplex.problem) =
  if Array.length integer <> p.n_vars then
    invalid_arg "Branch_bound.solve_float: integer mask length mismatch";
  M.incr m_solves;
  M.incr m_nodes;
  match Fault.exhaust_ilp () with
  | Some e -> (Exhausted e, [])
  | None -> (
      let ft = Fsimplex.create ~budget p in
      (* [dispose] recycles the tableau buffer even on an abandoned-queue
         exit; unreleased snapshots just fall to the GC. *)
      Fun.protect ~finally:(fun () -> Fsimplex.dispose ft) @@ fun () ->
      let incumbent = ref None in
      let better_exact v =
        match !incumbent with
        | None -> true
        | Some (v0, _) -> R.compare v v0 > 0
      in
      let worth_float fb =
        match !incumbent with
        | None -> true
        | Some (v0, _) -> fb > R.to_float v0 +. 0.5
      in
      let nodes = ref 1 in
      let hit_limit = ref false in
      let exhausted = ref None in
      let wholesale = ref None in
      let root_basis = ref [] in
      let q = Pq.create Float.compare in
      let rational_subtree chain =
        M.incr m_fallbacks;
        let p' = { p with Simplex.rows = p.rows @ bound_rows p.n_vars chain } in
        match solve_rational ~budget ~max_nodes ~integer p' with
        | (Optimal s | Limit_feasible s) as r ->
            (match r with Limit_feasible _ -> hit_limit := true | _ -> ());
            if better_exact s.Simplex.value then begin
              M.incr m_incumbents;
              incumbent := Some (s.Simplex.value, s)
            end
        | Infeasible -> M.incr m_prune_infeasible
        | Unbounded -> M.incr m_child_unbounded
        | Node_limit -> hit_limit := true
        | Exhausted e -> exhausted := Some e
      in
      let push_children fb i fl depth chain =
        (* one use per child; the second [release] recycles the buffer *)
        let snap = Fsimplex.snapshot ~uses:2 ft in
        (* Ceil-then-floor, like the rational twin: the LIFO plateau
           tie-break dives into the floor branch first. *)
        Pq.push q fb
          {
            fsnap = snap;
            fvar = i;
            fdir = `Ge (fl + 1);
            fdepth = depth + 1;
            fchain = (i, `Ge (fl + 1)) :: chain;
          };
        Pq.push q fb
          {
            fsnap = snap;
            fvar = i;
            fdir = `Le fl;
            fdepth = depth + 1;
            fchain = (i, `Le fl) :: chain;
          }
      in
      let consider depth chain =
        let fb = Fsimplex.value_float ft in
        if not (worth_float fb) then M.incr m_prune_bound
        else
          match float_most_fractional ~integer (Fsimplex.x_float ft) with
          | Some (i, fl) -> push_children fb i fl depth chain
          | None -> (
              match Fsimplex.certify_optimal ft with
              | None -> rational_subtree chain
              | Some sol -> (
                  match most_fractional ~integer sol with
                  | Some i ->
                      (* Float-integral but exactly fractional: branch on
                         the exact value rather than trusting the float. *)
                      push_children fb i (R.floor sol.Simplex.x.(i)) depth
                        chain
                  | None ->
                      if better_exact sol.Simplex.value then begin
                        M.incr m_incumbents;
                        if E.on () then
                          E.emit ~cat:"bb" "incumbent"
                            ~args:
                              [
                                ("node", E.Int !nodes);
                                ("depth", E.Int depth);
                              ];
                        incumbent := Some (sol.Simplex.value, sol)
                      end))
      in
      let rec drain () =
        match Pq.pop q with
        | None -> ()
        | Some (fbound, _, node) ->
            if not (worth_float fbound) then begin
              Fsimplex.release ft node.fsnap;
              M.incr m_prune_bound;
              drain ()
            end
            else if !nodes >= max_nodes then begin
              hit_limit := true;
              M.incr m_node_limit
            end
            else begin
              incr nodes;
              Budget.spend_node budget;
              M.incr m_nodes;
              M.incr m_warm_restores;
              M.set_max g_depth_peak (float_of_int node.fdepth);
              let journaling = E.on () in
              let pivots0 = if journaling then M.count m_fpivots else 0 in
              if journaling then
                E.emit ~cat:"bb" "node.open"
                  ~args:
                    [
                      ("node", E.Int !nodes);
                      ("depth", E.Int node.fdepth);
                      ("var", E.Int node.fvar);
                      ( "branch",
                        E.Str
                          (match node.fdir with
                          | `Le b -> Printf.sprintf "x%d<=%d" node.fvar b
                          | `Ge b -> Printf.sprintf "x%d>=%d" node.fvar b) );
                    ];
              let close outcome =
                if journaling then
                  E.emit ~cat:"bb" "node.close"
                    ~args:
                      [
                        ("node", E.Int !nodes);
                        ("outcome", E.Str outcome);
                        ("pivots", E.Int (M.count m_fpivots - pivots0));
                      ]
              in
              Fsimplex.restore ft node.fsnap;
              Fsimplex.release ft node.fsnap;
              let coefs = unit_row p.n_vars node.fvar R.one in
              (match node.fdir with
              | `Le b -> Fsimplex.add_row ft coefs Simplex.Le (R.of_int b)
              | `Ge b -> Fsimplex.add_row ft coefs Simplex.Ge (R.of_int b));
              (match Fsimplex.reoptimize_dual ft with
              | `Infeasible r ->
                  if Fsimplex.certify_infeasible ft r then begin
                    M.incr m_prune_infeasible;
                    close "infeasible"
                  end
                  else begin
                    close "fallback";
                    rational_subtree node.fchain
                  end
              | `Stuck ->
                  close "fallback";
                  rational_subtree node.fchain
              | `Ok ->
                  close "solved";
                  consider node.fdepth node.fchain);
              if !exhausted = None then drain ()
            end
      in
      (try
         match Fsimplex.solve_lp ~warm ft with
         | `Infeasible r ->
             if Fsimplex.certify_infeasible ft r then
               M.incr m_prune_infeasible
             else begin
               M.incr m_fallbacks;
               wholesale :=
                 Some (solve_rational ~budget ~max_nodes ~integer p)
             end
         | `Unbounded | `Stuck ->
             (* An unboundedness claim has no certificate in this scheme,
                and a stalled root has no basis worth saving: hand the
                whole problem to the exact path. *)
             M.incr m_fallbacks;
             wholesale := Some (solve_rational ~budget ~max_nodes ~integer p)
         | `Optimal ->
             root_basis := Fsimplex.basic_structurals ft;
             consider 0 [];
             drain ()
       with Budget.Out_of_budget e -> exhausted := Some e);
      let res =
        match !wholesale with
        | Some r -> r
        | None -> (
            match (!incumbent, !exhausted, !hit_limit) with
            | Some (_, sol), None, false -> Optimal sol
            | Some (_, sol), _, _ -> Limit_feasible sol
            | None, Some e, _ -> Exhausted e
            | None, None, true -> Node_limit
            | None, None, false -> Infeasible)
      in
      (res, !root_basis))

let solve ?budget ?max_nodes ?(arith = Fsimplex.Rational) ?warm ~integer p =
  match arith with
  | Fsimplex.Rational -> solve_rational ?budget ?max_nodes ~integer p
  | Fsimplex.Float_certified ->
      fst (solve_float ?budget ?max_nodes ?warm ~integer p)

(* Cold-start reference: re-solves the accumulated problem from scratch at
   every node (depth-first, first-fractional, floor branch first) — the
   pre-warm-start algorithm, kept as the baseline the budget regression
   test and the bench [ilp] experiment measure the warm solver against,
   and as an independent oracle for the property tests. *)
let solve_cold ?(budget = Budget.unlimited) ?(max_nodes = 200_000) ~integer
    (p : Simplex.problem) =
  if Array.length integer <> p.n_vars then
    invalid_arg "Branch_bound.solve_cold: integer mask length mismatch";
  M.incr m_solves;
  let incumbent = ref None in
  let nodes = ref 0 in
  let hit_limit = ref false in
  let exhausted = ref None in
  let better value =
    match !incumbent with
    | None -> true
    | Some (v, _) -> R.compare value v > 0
  in
  let root_unbounded = ref false in
  let rec explore extra depth =
    if !hit_limit || !exhausted <> None then ()
    else begin
      incr nodes;
      Budget.spend_node budget;
      M.incr m_nodes;
      M.set_max g_depth_peak (float_of_int depth);
      if !nodes > max_nodes then begin
        hit_limit := true;
        M.incr m_node_limit
      end
      else
        let problem = { p with Simplex.rows = p.rows @ extra } in
        match Simplex.solve ~budget problem with
        | Simplex.Exhausted e -> exhausted := Some e
        | Simplex.Infeasible -> M.incr m_prune_infeasible
        | Simplex.Unbounded ->
            if depth = 0 then root_unbounded := true
            else
              (* Unreachable: a child's LP is its parent's plus one more
                 constraint, and the parent was solved to a (bounded)
                 optimum before branching — adding constraints cannot
                 unbound a bounded LP.  Counted rather than asserted so a
                 latent simplex bug surfaces in metrics instead of
                 silently mislabeling the root as unbounded. *)
              M.incr m_child_unbounded
        | Simplex.Optimal sol ->
            if not (better sol.value) then M.incr m_prune_bound
            else begin
              match first_fractional ~integer sol with
              | None ->
                  M.incr m_incumbents;
                  incumbent := Some (sol.value, sol)
              | Some i ->
                  let f = R.floor sol.x.(i) in
                  let le =
                    (unit_row p.n_vars i R.one, Simplex.Le, R.of_int f)
                  in
                  let ge =
                    (unit_row p.n_vars i R.one, Simplex.Ge, R.of_int (f + 1))
                  in
                  explore (le :: extra) (depth + 1);
                  explore (ge :: extra) (depth + 1)
            end
    end
  in
  (match Fault.exhaust_ilp () with
  | Some e -> exhausted := Some e
  | None -> (
      try explore [] 0
      with Budget.Out_of_budget e -> exhausted := Some e));
  if !root_unbounded then Unbounded
  else
    match (!incumbent, !exhausted, !hit_limit) with
    | Some (_, sol), None, false -> Optimal sol
    | Some (_, sol), _, _ -> Limit_feasible sol
    | None, Some e, _ -> Exhausted e
    | None, None, true -> Node_limit
    | None, None, false -> Infeasible

let feasible ?budget ?max_nodes ?arith ?warm ~integer p =
  let p =
    { p with Simplex.objective = Array.make p.Simplex.n_vars R.zero }
  in
  match solve ?budget ?max_nodes ?arith ?warm ~integer p with
  | Optimal _ | Limit_feasible _ -> Some true
  | Infeasible -> Some false
  | Unbounded -> Some true
  | Node_limit | Exhausted _ -> None

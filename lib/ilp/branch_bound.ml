module R = Mcs_util.Ratio
module M = Mcs_obs.Metrics

let m_solves = M.counter "bb.solves"
let m_nodes = M.counter "bb.nodes"
let m_prune_infeasible = M.counter "bb.prune_infeasible"
let m_prune_bound = M.counter "bb.prune_bound"
let m_incumbents = M.counter "bb.incumbents"
let m_node_limit = M.counter "bb.node_limit"
let g_depth_peak = M.gauge "bb.depth_peak"

type result =
  | Optimal of Simplex.solution
  | Infeasible
  | Unbounded
  | Node_limit

let first_fractional ~integer (sol : Simplex.solution) =
  let n = Array.length sol.x in
  let found = ref None in
  (try
     for i = 0 to n - 1 do
       if integer.(i) && not (R.is_integer sol.x.(i)) then begin
         found := Some i;
         raise Exit
       end
     done
   with Exit -> ());
  !found

let unit_row n i coef =
  let row = Array.make n R.zero in
  row.(i) <- coef;
  row

let solve ?(max_nodes = 200_000) ~integer (p : Simplex.problem) =
  if Array.length integer <> p.n_vars then
    invalid_arg "Branch_bound.solve: integer mask length mismatch";
  M.incr m_solves;
  let incumbent = ref None in
  let nodes = ref 0 in
  let hit_limit = ref false in
  let better value =
    match !incumbent with
    | None -> true
    | Some (v, _) -> R.compare value v > 0
  in
  let root_unbounded = ref false in
  (* Depth-first; [extra] accumulates the branching bounds. *)
  let rec explore extra depth =
    if !hit_limit then ()
    else begin
      incr nodes;
      M.incr m_nodes;
      M.set_max g_depth_peak (float_of_int depth);
      if !nodes > max_nodes then begin
        hit_limit := true;
        M.incr m_node_limit
      end
      else
        let problem = { p with Simplex.rows = p.rows @ extra } in
        match Simplex.solve problem with
        | Simplex.Infeasible -> M.incr m_prune_infeasible
        | Simplex.Unbounded ->
            (* Only possible at the root (children only tighten bounds on
               integer variables, but a still-unbounded child means the
               integer problem itself is unbounded too). *)
            if depth = 0 then root_unbounded := true
            else root_unbounded := true
        | Simplex.Optimal sol ->
            if not (better sol.value) then M.incr m_prune_bound
            else begin
              match first_fractional ~integer sol with
              | None ->
                  M.incr m_incumbents;
                  incumbent := Some (sol.value, sol)
              | Some i ->
                  let f = R.floor sol.x.(i) in
                  let le =
                    (unit_row p.n_vars i R.one, Simplex.Le, R.of_int f)
                  in
                  let ge =
                    (unit_row p.n_vars i R.one, Simplex.Ge, R.of_int (f + 1))
                  in
                  explore (le :: extra) (depth + 1);
                  explore (ge :: extra) (depth + 1)
            end
    end
  in
  explore [] 0;
  if !root_unbounded then Unbounded
  else
    match (!incumbent, !hit_limit) with
    | Some (_, sol), false -> Optimal sol
    | Some (_, sol), true ->
        (* An incumbent exists but optimality is unproven; report the limit
           so callers cannot mistake it for an optimum. *)
        ignore sol;
        Node_limit
    | None, true -> Node_limit
    | None, false -> Infeasible

let feasible ?max_nodes ~integer p =
  let p =
    { p with Simplex.objective = Array.make p.Simplex.n_vars R.zero }
  in
  match solve ?max_nodes ~integer p with
  | Optimal _ -> Some true
  | Infeasible -> Some false
  | Unbounded -> Some true
  | Node_limit -> None

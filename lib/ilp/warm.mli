(** Cross-solve warm-start registry for the float-first path.

    Neighboring design-space grid points (rate r and r+1, bus cap c and
    c+1) produce almost-identical ILPs over the {e same named variables},
    so the optimal basis of one is a near-perfect pivot guide for the
    next.  Sites ({!Model.solve} callers) store the structural variable
    names of a settled basis under a site key that deliberately omits the
    swept parameter — e.g. ["pin-ilp:12ops:3parts"], not the rate — and
    the next solve at the same site maps the names back to its own column
    indices and steers its root LP toward them ({!Fsimplex.solve_lp}'s
    [warm] pricing preference).

    Names, not column indices: models at different grid points may lay
    out auxiliary variables differently, and an unknown name simply drops
    out of the preference list.  The registry is process-global and
    mutex-protected, so the server's worker domains and [run_local]'s
    sequential drain chain bases automatically; {!export_all}/{!import}
    move the contents explicitly where a payload has to ride along (the
    engine's {!Mcs_engine.Job} warm payload between batch entries).

    Counters: [ilp.warm.hits] / [ilp.warm.misses] on {!get}. *)

val put : string -> string list -> unit
(** Store (replace) the basis names for a site key. *)

val get : string -> string list option
(** Look up a site key, counting a hit or miss. *)

val clear : unit -> unit
(** Drop every stored basis (bench isolation between measurements). *)

val export_all : unit -> (string * string list) list
(** The registry contents, sorted by key (deterministic). *)

val import : (string * string list) list -> unit
(** Merge exported contents in ([put] per entry). *)

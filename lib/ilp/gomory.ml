module M = Mcs_obs.Metrics

let m_solves = M.counter "gomory.solves"
let m_cuts = M.counter "gomory.cuts"
let m_gave_up = M.counter "gomory.gave_up"

type result =
  | Optimal of Simplex.solution
  | Infeasible
  | Unbounded
  | Gave_up

let solve ?budget ?(max_cuts = 500) p =
  M.incr m_solves;
  match Simplex.Tab.of_problem ?budget p with
  | `Infeasible -> Infeasible
  | `Unbounded -> Unbounded
  | `Exhausted _ ->
      M.incr m_gave_up;
      Gave_up
  | `Solved t ->
      let rec refine cuts =
        match Simplex.Tab.fractional_basic t with
        | None -> Optimal (Simplex.Tab.solution t)
        | Some _ when cuts >= max_cuts ->
            M.incr m_gave_up;
            Gave_up
        | Some row -> (
            M.incr m_cuts;
            Simplex.Tab.add_gomory_cut t row;
            match Simplex.Tab.reoptimize_dual t with
            | `Infeasible -> Infeasible
            | `Exhausted _ ->
                M.incr m_gave_up;
                Gave_up
            | `Ok -> refine (cuts + 1))
      in
      refine 0

let feasible ?budget ?max_cuts p =
  (* Feasibility does not depend on the objective, but a zero objective
     converges fastest. *)
  let p = { p with Simplex.objective = Array.map (fun _ -> Mcs_util.Ratio.zero) p.Simplex.objective } in
  match solve ?budget ?max_cuts p with
  | Optimal _ -> Some true
  | Infeasible -> Some false
  | Unbounded -> Some true (* nonempty integer region *)
  | Gave_up -> None

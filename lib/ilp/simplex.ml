module R = Mcs_util.Ratio
module M = Mcs_obs.Metrics
module Budget = Mcs_resilience.Budget

let m_solves = M.counter "simplex.solves"
let m_pivots = M.counter "simplex.pivots"
let m_degenerate = M.counter "simplex.degenerate_pivots"
let m_primal_steps = M.counter "simplex.primal_steps"
let m_dual_steps = M.counter "simplex.dual_steps"
let m_cuts_added = M.counter "simplex.gomory_rows"

let m_pivots_per_solve =
  M.histogram "simplex.pivots_per_solve"
    ~buckets:[| 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000 |]

type rel = Le | Ge | Eq

type problem = {
  n_vars : int;
  objective : R.t array;
  rows : (R.t array * rel * R.t) list;
}

type solution = { value : R.t; x : R.t array }

type status =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Exhausted of Budget.exhausted

(* Growable exact-rational tableau.

   Layout: [m] rows by [n] columns plus a separate rhs vector.  The
   objective row [obj] follows the convention obj.(j) = z_j - c_j, so the
   tableau is (primal) optimal when every obj.(j) >= 0, and every pivot
   updates [obj] by ordinary row elimination. *)
type tab = {
  n_struct : int; (* original problem variables: columns 0 .. n_struct-1 *)
  mutable m : int;
  mutable n : int;
  mutable a : R.t array array; (* m rows, each of length >= n *)
  mutable rhs : R.t array;
  mutable basis : int array; (* basis.(i) = column basic in row i *)
  mutable obj : R.t array;
  mutable obj_val : R.t;
  mutable blocked : bool array; (* columns that may never (re)enter *)
  budget : Budget.t; (* shared pivot/wall budget; raises Out_of_budget *)
}

let grow_cols t want =
  let cap = Array.length t.obj in
  if want > cap then begin
    let cap' = max want (2 * cap) in
    let extend row =
      let row' = Array.make cap' R.zero in
      Array.blit row 0 row' 0 (Array.length row);
      row'
    in
    t.a <- Array.map extend t.a;
    t.obj <- extend t.obj;
    let blocked' = Array.make cap' false in
    Array.blit t.blocked 0 blocked' 0 (Array.length t.blocked);
    t.blocked <- blocked'
  end

let grow_rows t want =
  let cap = Array.length t.a in
  if want > cap then begin
    let cap' = max want (2 * cap) in
    let cols = Array.length t.obj in
    let a' = Array.make cap' [||] in
    Array.blit t.a 0 a' 0 t.m;
    for i = t.m to cap' - 1 do
      a'.(i) <- Array.make cols R.zero
    done;
    t.a <- a';
    let rhs' = Array.make cap' R.zero in
    Array.blit t.rhs 0 rhs' 0 t.m;
    t.rhs <- rhs';
    let basis' = Array.make cap' (-1) in
    Array.blit t.basis 0 basis' 0 t.m;
    t.basis <- basis'
  end

let pivot t r c =
  Budget.spend_pivot t.budget;
  let piv = t.a.(r).(c) in
  assert (not (R.is_zero piv));
  M.incr m_pivots;
  if R.is_zero t.rhs.(r) then M.incr m_degenerate;
  let inv = R.inv piv in
  let row = t.a.(r) in
  let blocked = t.blocked in
  (* Normalize the pivot row and collect its support.  Structurally zero
     entries contribute nothing to the elimination below, and permanently
     [blocked] columns are never read again (entering and dual ratio tests
     both skip them), so neither is updated — their entries may go stale,
     which every reader tolerates by skipping blocked columns too. *)
  let support = ref [] in
  for j = t.n - 1 downto 0 do
    if not blocked.(j) then begin
      let v = row.(j) in
      if not (R.is_zero v) then begin
        row.(j) <- R.mul v inv;
        support := j :: !support
      end
    end
  done;
  let support = !support in
  t.rhs.(r) <- R.mul t.rhs.(r) inv;
  let prow_rhs = t.rhs.(r) in
  let eliminate target_row target_rhs_get target_rhs_set =
    let f = target_row.(c) in
    if not (R.is_zero f) then begin
      List.iter
        (fun j -> target_row.(j) <- R.sub target_row.(j) (R.mul f row.(j)))
        support;
      target_rhs_set (R.sub (target_rhs_get ()) (R.mul f prow_rhs))
    end
  in
  for i = 0 to t.m - 1 do
    if i <> r then
      eliminate t.a.(i) (fun () -> t.rhs.(i)) (fun v -> t.rhs.(i) <- v)
  done;
  eliminate t.obj (fun () -> t.obj_val) (fun v -> t.obj_val <- v);
  t.basis.(r) <- c

(* Bland's rule: entering column = smallest eligible index; leaving row =
   lexicographic minimum ratio with smallest basic index as tie-break. *)
let primal_step t =
  M.incr m_primal_steps;
  let entering = ref (-1) in
  (try
     for j = 0 to t.n - 1 do
       if (not t.blocked.(j)) && R.sign t.obj.(j) < 0 then begin
         entering := j;
         raise Exit
       end
     done
   with Exit -> ());
  if !entering < 0 then `Optimal
  else begin
    let c = !entering in
    let best = ref (-1) in
    let best_ratio = ref R.zero in
    for i = 0 to t.m - 1 do
      if R.sign t.a.(i).(c) > 0 then begin
        let ratio = R.div t.rhs.(i) t.a.(i).(c) in
        let better =
          !best < 0
          || R.compare ratio !best_ratio < 0
          || (R.compare ratio !best_ratio = 0 && t.basis.(i) < t.basis.(!best))
        in
        if better then begin
          best := i;
          best_ratio := ratio
        end
      end
    done;
    if !best < 0 then `Unbounded
    else begin
      pivot t !best c;
      `Pivoted
    end
  end

let rec primal_loop t =
  match primal_step t with
  | `Optimal -> `Optimal
  | `Unbounded -> `Unbounded
  | `Pivoted -> primal_loop t

(* Dual simplex: leaving row = most negative rhs is the usual heuristic,
   but Bland-style smallest basic index guarantees termination. *)
let dual_step t =
  M.incr m_dual_steps;
  let leaving = ref (-1) in
  for i = t.m - 1 downto 0 do
    if R.sign t.rhs.(i) < 0 then
      if !leaving < 0 || t.basis.(i) < t.basis.(!leaving) then leaving := i
  done;
  if !leaving < 0 then `Feasible
  else begin
    let r = !leaving in
    let best = ref (-1) in
    let best_ratio = ref R.zero in
    for j = 0 to t.n - 1 do
      if (not t.blocked.(j)) && R.sign t.a.(r).(j) < 0 then begin
        let ratio = R.div t.obj.(j) (R.neg t.a.(r).(j)) in
        let better =
          !best < 0
          || R.compare ratio !best_ratio < 0
          || (R.compare ratio !best_ratio = 0 && j < !best)
        in
        if better then begin
          best := j;
          best_ratio := ratio
        end
      end
    done;
    if !best < 0 then `Infeasible
    else begin
      pivot t r !best;
      `Pivoted
    end
  end

let rec dual_loop t =
  match dual_step t with
  | `Feasible -> `Ok
  | `Infeasible -> `Infeasible
  | `Pivoted -> dual_loop t

(* Rebuild the objective row for cost vector [c] (length t.n, missing
   entries zero) given the current basis. *)
let install_objective t c =
  let cost j = if j < Array.length c then c.(j) else R.zero in
  for j = 0 to t.n - 1 do
    t.obj.(j) <- R.neg (cost j)
  done;
  t.obj_val <- R.zero;
  for i = 0 to t.m - 1 do
    let cb = cost t.basis.(i) in
    if not (R.is_zero cb) then begin
      for j = 0 to t.n - 1 do
        t.obj.(j) <- R.add t.obj.(j) (R.mul cb t.a.(i).(j))
      done;
      t.obj_val <- R.add t.obj_val (R.mul cb t.rhs.(i))
    end
  done

let delete_row t r =
  (* Recycle the deleted row's array into the vacated slot so capacity rows
     never alias live rows. *)
  let dead = t.a.(r) in
  for i = r to t.m - 2 do
    t.a.(i) <- t.a.(i + 1);
    t.rhs.(i) <- t.rhs.(i + 1);
    t.basis.(i) <- t.basis.(i + 1)
  done;
  t.a.(t.m - 1) <- dead;
  t.m <- t.m - 1

module Tab = struct
  type t = tab

  let build ?(budget = Budget.unlimited) p =
    if p.n_vars < 0 then invalid_arg "Simplex: negative n_vars";
    let rows = Array.of_list p.rows in
    let m = Array.length rows in
    (* One slack/surplus column per inequality, one artificial per row that
       needs one; count first. *)
    let normalized =
      Array.map
        (fun (coefs, rel, b) ->
          if Array.length coefs <> p.n_vars then
            invalid_arg "Simplex: row width mismatch";
          if R.sign b >= 0 then (coefs, rel, b)
          else
            let flip = function Le -> Ge | Ge -> Le | Eq -> Eq in
            (Array.map R.neg coefs, flip rel, R.neg b))
        rows
    in
    let n_slack =
      Array.fold_left
        (fun acc (_, rel, _) -> match rel with Le | Ge -> acc + 1 | Eq -> acc)
        0 normalized
    in
    let n_art =
      Array.fold_left
        (fun acc (_, rel, _) -> match rel with Le -> acc | Ge | Eq -> acc + 1)
        0 normalized
    in
    let n = p.n_vars + n_slack + n_art in
    let t =
      {
        n_struct = p.n_vars;
        m;
        n;
        a = Array.init (max m 1) (fun _ -> Array.make (max n 1) R.zero);
        rhs = Array.make (max m 1) R.zero;
        basis = Array.make (max m 1) (-1);
        obj = Array.make (max n 1) R.zero;
        obj_val = R.zero;
        blocked = Array.make (max n 1) false;
        budget;
      }
    in
    let next_slack = ref p.n_vars in
    let next_art = ref (p.n_vars + n_slack) in
    Array.iteri
      (fun i (coefs, rel, b) ->
        Array.blit coefs 0 t.a.(i) 0 p.n_vars;
        t.rhs.(i) <- b;
        (match rel with
        | Le ->
            t.a.(i).(!next_slack) <- R.one;
            t.basis.(i) <- !next_slack;
            incr next_slack
        | Ge ->
            t.a.(i).(!next_slack) <- R.minus_one;
            incr next_slack
        | Eq -> ());
        match rel with
        | Le -> ()
        | Ge | Eq ->
            t.a.(i).(!next_art) <- R.one;
            t.basis.(i) <- !next_art;
            incr next_art)
      normalized;
    let art_lo = p.n_vars + n_slack in
    (* Phase 1: maximize -(sum of artificials). *)
    if n_art > 0 then begin
      let c1 = Array.make t.n R.zero in
      for j = art_lo to t.n - 1 do
        c1.(j) <- R.minus_one
      done;
      install_objective t c1;
      (match primal_loop t with
      | `Unbounded -> assert false (* phase-1 objective is bounded above *)
      | `Optimal -> ());
      if R.sign t.obj_val < 0 then `Infeasible
      else begin
        (* Drive artificials out of the basis; delete redundant rows. *)
        let i = ref 0 in
        while !i < t.m do
          if t.basis.(!i) >= art_lo then begin
            let col = ref (-1) in
            (try
               for j = 0 to art_lo - 1 do
                 if not (R.is_zero t.a.(!i).(j)) then begin
                   col := j;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !col >= 0 then begin
              pivot t !i !col;
              incr i
            end
            else delete_row t !i
          end
          else incr i
        done;
        for j = art_lo to t.n - 1 do
          t.blocked.(j) <- true
        done;
        install_objective t p.objective;
        match primal_loop t with
        | `Optimal -> `Solved t
        | `Unbounded -> `Unbounded
      end
    end
    else begin
      install_objective t p.objective;
      match primal_loop t with
      | `Optimal -> `Solved t
      | `Unbounded -> `Unbounded
    end

  let of_problem ?budget p =
    M.incr m_solves;
    let pivots0 = M.count m_pivots in
    let r =
      try build ?budget p
      with Budget.Out_of_budget e -> `Exhausted e
    in
    let batch = M.count m_pivots - pivots0 in
    M.observe m_pivots_per_solve batch;
    (* One journal event per solve, not per pivot: the batch size is the
       useful signal and a per-pivot event would flood the ring. *)
    if Mcs_obs.Events.on () then
      Mcs_obs.Events.emit ~cat:"simplex" "solve"
        ~args:
          [
            ("pivots", Mcs_obs.Events.Int batch);
            ("rows", Mcs_obs.Events.Int (List.length p.rows));
            ("vars", Mcs_obs.Events.Int p.n_vars);
            ( "outcome",
              Mcs_obs.Events.Str
                (match r with
                | `Solved _ -> "solved"
                | `Infeasible -> "infeasible"
                | `Unbounded -> "unbounded"
                | `Exhausted _ -> "exhausted") );
          ];
    r

  let solution t =
    let x = Array.make t.n_struct R.zero in
    for i = 0 to t.m - 1 do
      if t.basis.(i) < t.n_struct then x.(t.basis.(i)) <- t.rhs.(i)
    done;
    { value = t.obj_val; x }

  let fractional_basic t =
    let found = ref None in
    (try
       for i = 0 to t.m - 1 do
         if t.basis.(i) < t.n_struct && not (R.is_integer t.rhs.(i)) then begin
           found := Some i;
           raise Exit
         end
       done
     with Exit -> ());
    !found

  (* Claim a fresh column (for the slack of an appended row) and a fresh
     row slot.  The new column is scrubbed in every live row, the objective
     and the blocked mask: capacity cells may hold stale values from a
     [delete_row] recycling or a [restore] that shrank the tableau. *)
  let claim_row_and_col t =
    grow_cols t (t.n + 1);
    grow_rows t (t.m + 1);
    let slack = t.n in
    t.n <- t.n + 1;
    for i = 0 to t.m - 1 do
      t.a.(i).(slack) <- R.zero
    done;
    t.obj.(slack) <- R.zero;
    t.blocked.(slack) <- false;
    let row = t.a.(t.m) in
    Array.fill row 0 t.n R.zero;
    slack

  let add_gomory_cut t r =
    if r < 0 || r >= t.m then invalid_arg "add_gomory_cut: bad row";
    M.incr m_cuts_added;
    let f0 = R.frac t.rhs.(r) in
    if R.is_zero f0 then invalid_arg "add_gomory_cut: row is integral";
    (* Cut over the nonbasic variables:  sum_j frac(a_rj) x_j >= frac(b_r),
       appended in <=-with-slack form:  -sum frac(a_rj) x_j + s = -frac(b_r).
       Blocked columns are fixed at zero forever (and their tableau entries
       may be stale), so they are left out of the cut. *)
    let basic = Array.make t.n false in
    for i = 0 to t.m - 1 do
      basic.(t.basis.(i)) <- true
    done;
    let slack = claim_row_and_col t in
    let row = t.a.(t.m) in
    for j = 0 to slack - 1 do
      if (not basic.(j)) && not t.blocked.(j) then begin
        let f = R.frac t.a.(r).(j) in
        if not (R.is_zero f) then row.(j) <- R.neg f
      end
    done;
    row.(slack) <- R.one;
    t.rhs.(t.m) <- R.neg f0;
    t.basis.(t.m) <- slack;
    t.m <- t.m + 1

  let add_row t coefs rel b =
    if Array.length coefs > t.n_struct then
      invalid_arg "Simplex.Tab.add_row: more coefficients than variables";
    let rec add coefs rel b =
      match rel with
      | Eq ->
          add coefs Le b;
          add coefs Ge b
      | Le | Ge ->
          let neg_it = rel = Ge in
          let slack = claim_row_and_col t in
          let row = t.a.(t.m) in
          Array.iteri
            (fun j c ->
              if not (R.is_zero c) then row.(j) <- (if neg_it then R.neg c else c))
            coefs;
          let rhs = ref (if neg_it then R.neg b else b) in
          (* Express the new row in the current basis: basis columns are
             unit vectors, so one elimination pass per tableau row whose
             basic variable appears in the new row suffices.  The objective
             row is untouched (the new slack has reduced cost 0), so a
             dual-feasible tableau stays dual-feasible. *)
          for i = 0 to t.m - 1 do
            let f = row.(t.basis.(i)) in
            if not (R.is_zero f) then begin
              let arow = t.a.(i) in
              for j = 0 to t.n - 1 do
                if not t.blocked.(j) then begin
                  let v = arow.(j) in
                  if not (R.is_zero v) then row.(j) <- R.sub row.(j) (R.mul f v)
                end
              done;
              rhs := R.sub !rhs (R.mul f t.rhs.(i))
            end
          done;
          row.(slack) <- R.one;
          t.rhs.(t.m) <- !rhs;
          t.basis.(t.m) <- slack;
          t.m <- t.m + 1
    in
    add coefs rel b

  let reoptimize_dual t =
    try (dual_loop t :> [ `Ok | `Infeasible | `Exhausted of Budget.exhausted ])
    with Budget.Out_of_budget e -> `Exhausted e

  type snapshot = {
    s_m : int;
    s_n : int;
    s_a : R.t array array;
    s_rhs : R.t array;
    s_basis : int array;
    s_obj : R.t array;
    s_obj_val : R.t;
    s_blocked : bool array;
  }

  let snapshot t =
    {
      s_m = t.m;
      s_n = t.n;
      s_a = Array.init t.m (fun i -> Array.sub t.a.(i) 0 t.n);
      s_rhs = Array.sub t.rhs 0 t.m;
      s_basis = Array.sub t.basis 0 t.m;
      s_obj = Array.sub t.obj 0 t.n;
      s_obj_val = t.obj_val;
      s_blocked = Array.sub t.blocked 0 t.n;
    }

  let restore t s =
    grow_cols t s.s_n;
    grow_rows t s.s_m;
    t.m <- s.s_m;
    t.n <- s.s_n;
    for i = 0 to s.s_m - 1 do
      Array.blit s.s_a.(i) 0 t.a.(i) 0 s.s_n
    done;
    Array.blit s.s_rhs 0 t.rhs 0 s.s_m;
    Array.blit s.s_basis 0 t.basis 0 s.s_m;
    Array.blit s.s_obj 0 t.obj 0 s.s_n;
    t.obj_val <- s.s_obj_val;
    Array.blit s.s_blocked 0 t.blocked 0 s.s_n
end

let solve ?budget p =
  match Tab.of_problem ?budget p with
  | `Infeasible -> Infeasible
  | `Unbounded -> Unbounded
  | `Exhausted e -> Exhausted e
  | `Solved t -> Optimal (Tab.solution t)

(** Branch-and-bound (M)ILP solver over the exact-rational simplex.

    Serves as the reference exact solver for the interchip-connection
    formulations of Chapters 4 and 6 (the dissertation submitted those to
    Bozo / Lindo) and cross-checks the Gomory path in the test suite.

    The default {!solve} is {e warm-started}: the root LP relaxation is
    solved once with the two-phase primal simplex, and every search node
    thereafter restores its parent's optimal tableau
    ({!Simplex.Tab.snapshot} / [restore]), appends its single branching
    bound with {!Simplex.Tab.add_row} and re-optimizes with the dual
    simplex — a few pivots per node instead of a from-scratch re-solve.
    Nodes are explored in best-bound order and branch on the
    most-fractional integer variable.  Because a child's LP is its
    (bounded, optimal) parent's LP plus one constraint, children can never
    be unbounded: [Unbounded] is decided at the root alone. *)

type result =
  | Optimal of Simplex.solution
  | Infeasible
  | Unbounded  (** LP relaxation unbounded in the objective direction *)
  | Node_limit
      (** search stopped before proving optimality, with no integer point
          in hand *)
  | Limit_feasible of Simplex.solution
      (** search stopped before proving optimality, but an integer-feasible
          incumbent was found — a genuine (possibly sub-optimal) solution *)
  | Exhausted of Mcs_resilience.Budget.exhausted
      (** the node/pivot/wall budget ran out (or the [exhaust-ilp] fault
          is injected) with no integer point in hand; with an incumbent in
          hand, exhaustion reports [Limit_feasible] instead *)

val solve :
  ?budget:Mcs_resilience.Budget.t ->
  ?max_nodes:int ->
  ?arith:Fsimplex.arith ->
  ?warm:int list ->
  integer:bool array ->
  Simplex.problem ->
  result
(** [solve ~integer p] maximizes [p]'s objective with variables [i] such
    that [integer.(i)] constrained to integer values.  Warm-started
    best-bound search (see the module description); [max_nodes] defaults
    to [200_000].  [budget] (default unlimited) charges one node per
    expanded search node and one pivot per simplex pivot across the whole
    tree — float pivots included, so deadlines hold in both modes.

    [arith] defaults to [Rational] {e at this layer} — the exact solver
    is the oracle the test suite and the pivot budgets are written
    against; {!Model.solve} and everything user-facing defaults to
    {!Fsimplex.arith_of_env} instead.  With [Float_certified] this is
    {!solve_float} (dropping the exported basis); [warm] only applies
    there. *)

val solve_float :
  ?budget:Mcs_resilience.Budget.t ->
  ?max_nodes:int ->
  ?warm:int list ->
  integer:bool array ->
  Simplex.problem ->
  result * int list
(** Float-first search: the same warm node loop run on the {!Fsimplex}
    float64 tableau, with exact rational arithmetic only at the leaves —
    candidate incumbents are re-derived and certified exactly
    ({!Fsimplex.certify_optimal}), infeasibility prunes carry a Farkas
    certificate, and a node whose certificate fails has {e its subtree
    only} re-solved by the exact warm {!solve} (counted in
    [bb.arith_fallbacks]).  Every solution that escapes is exact, so
    results agree with {!solve} wherever both prove optimality.

    [warm] steers the root LP toward a neighboring grid point's basis
    (structural column indices, from the {!Warm} registry); the returned
    list is this problem's root basis for the next neighbor ([[]] when
    the root fell back to the exact path wholesale). *)

val solve_cold :
  ?budget:Mcs_resilience.Budget.t ->
  ?max_nodes:int ->
  integer:bool array ->
  Simplex.problem ->
  result
(** Cold-start reference implementation: depth-first, first-fractional
    branching, and a full two-phase re-solve of the accumulated problem at
    every node.  Same results as {!solve} (statuses agree, optimal
    objective values are equal; the optima themselves may differ when the
    problem has several), at many times the pivot count — kept as the
    baseline for the pivot-budget regression test and the bench [ilp]
    experiment, and as an independent oracle for the property tests. *)

val feasible :
  ?budget:Mcs_resilience.Budget.t ->
  ?max_nodes:int ->
  ?arith:Fsimplex.arith ->
  ?warm:int list ->
  integer:bool array ->
  Simplex.problem ->
  bool option
(** Pure integer-feasibility query (the objective is ignored).
    [Some true] is also returned when the node budget ran out after an
    integer point was already found ({!Limit_feasible}); [None] only when
    the budget ran out with the question genuinely undecided. *)

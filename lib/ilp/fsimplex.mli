(** Double-precision simplex with exact rational certification.

    The float-first half of the standard exact-LP hybrid (as in QSopt_ex
    and exact-SCIP): pivots run on a flat [Bigarray] float64 tableau —
    orders of magnitude cheaper than the allocation-heavy exact pivots of
    {!Simplex} — and only the {e final} basis is checked, by refactoring
    it over {!Mcs_util.Ratio} and verifying primal/dual feasibility (or a
    Farkas infeasibility certificate) exactly.  A certified answer is as
    trustworthy as the rational path's; an uncertified one makes the
    caller fall back to {!Simplex}/{!Branch_bound}.

    The tableau keeps every constraint in [<=]-form ([Eq] is appended as
    the [Le]/[Ge] pair, [Ge] is negated), so each row owns exactly one
    slack column and the start basis is all-slack.  That shape is what
    makes certification cheap: every basic column is either a row
    singleton (a slack, solved by back-substitution) or structural, and
    the structural basic columns form a small dense rational system —
    certification never touches the float tableau, only the exact
    row store kept alongside it.

    Mirrors the {!Simplex.Tab} warm-start surface ([add_row] /
    [snapshot] / [restore] / [reoptimize_dual]) so {!Branch_bound} can
    drive either arithmetic through the same node loop.  Both float
    phases use Dantzig pricing with fixed tie-breaks (an iteration cap
    plus the exact fallback stand in for Bland's anti-cycling
    guarantee): pivot sequences — and therefore the [fsimplex.pivots]
    counter and the bench baselines — are deterministic. *)

(** Solver arithmetic policy, threaded through {!Model}, {!Branch_bound},
    [Pin_ilp] and [Ilp_gen].  [Float_certified] is the default
    everywhere user-facing; [MCS_ARITH=rational] (or [--arith rational])
    restores the pure exact path. *)
type arith = Float_certified | Rational

val arith_of_env : unit -> arith
(** [MCS_ARITH] = ["rational"] (or ["exact"]) selects {!Rational};
    anything else — including unset — selects {!Float_certified}. *)

val arith_to_string : arith -> string
(** ["float-certified"] / ["rational"], as reported in [mcs-run/1]. *)

type t
(** A float tableau plus the exact ([<=]-form) row store certification
    reads.  Rows only grow ([restore] truncates), and row [k] always owns
    slack column [n_struct + k]. *)

val create : ?budget:Mcs_resilience.Budget.t -> Simplex.problem -> t
(** Build the all-slack start tableau.  [budget] charges one pivot per
    float pivot — the same {!Mcs_resilience.Budget} pool the rational
    path draws on, so deadlines hold in both arithmetic modes.
    @raise Invalid_argument on a row width mismatch. *)

val solve_lp :
  ?warm:int list ->
  t ->
  [ `Optimal | `Infeasible of int | `Unbounded | `Stuck ]
(** Solve from the start basis: a dual-simplex phase under the zero
    objective (trivially dual feasible) to reach a feasible basis, then
    the real objective and a primal phase.  [warm] lists structural
    columns imported from a neighboring solve's basis; they are used as a
    {e pricing preference} — among entering candidates with tied ratios
    (every candidate, under the zero objective) a preferred column wins —
    so the feasibility phase replays the neighbor's basis where it still
    fits, at zero extra pivots.  (An explicit crash-then-repair was
    measurably worse: it guesses the slack half of the basis, densifies
    the tableau, and the repair re-does the saved work.)  Steered pivots
    are counted in [fsimplex.steered_pivots].  [`Infeasible r] names the
    tableau row whose infeasibility the dual simplex proved — hand it to
    {!certify_infeasible}.  [`Stuck] means the iteration safety cap hit
    (float roundoff — or, with [warm], a non-Bland pivot cycle — defeated
    the search); callers fall back to the rational path.
    @raise Mcs_resilience.Budget.Out_of_budget like the rational path. *)

val reoptimize_dual : t -> [ `Ok | `Infeasible of int | `Stuck ]
(** Dual simplex until primal feasibility is restored, after {!add_row}
    made the tableau primal-infeasible but left it dual-feasible. *)

val add_row : t -> Mcs_util.Ratio.t array -> Simplex.rel -> Mcs_util.Ratio.t -> unit
(** Append a constraint over the structural variables (missing trailing
    coefficients are zero), re-expressed in the current basis with a
    fresh basic slack — same contract as {!Simplex.Tab.add_row}.  The
    exact row store grows in step, so certification sees the row too. *)

type snapshot

val snapshot : ?uses:int -> t -> snapshot
(** Copy the live tableau (one blit — see [create]'s capacity headroom).
    [uses] (default [1]) is how many {!release} calls the caller promises
    before the buffer may be recycled; {!Branch_bound} passes [2], one
    per child sharing the parent's snapshot. *)

val release : t -> snapshot -> unit
(** Give one use of the snapshot back; the last use returns the buffer
    to the process-global recycling pool for the next {!snapshot} (or
    tableau).  Never call {!restore} on a snapshot after its uses run
    out.  Callers that skip [release] merely forgo pooling — the GC
    still reclaims the buffer. *)

val restore : t -> snapshot -> unit

val dispose : t -> unit
(** Return the tableau buffer to the recycling pool.  Call once, when
    the solve is over; [t] and any outstanding snapshots must not be
    used afterwards.  Skipping [dispose] is safe (the GC reclaims the
    buffer) but forfeits the pool's steady-state zero-allocation
    property — fresh Bigarray allocation buys major-GC slices in a
    large-heap process, which is exactly what the pool exists to
    avoid. *)

val value_float : t -> float
val x_float : t -> float array
(** Current objective value / structural solution, as floats — only ever
    used to pick branching variables and order the search; every value
    that escapes to a caller is re-derived exactly by {!certify_optimal}. *)

val basic_structurals : t -> int list
(** Structural columns of the current basis, ascending — the payload the
    cross-grid warm-start registry stores (as variable names) and
    {!solve_lp}'s [warm] consumes. *)

val certify_optimal : t -> Simplex.solution option
(** Refactor the current basis over {!Mcs_util.Ratio}: solve the
    structural-basic system exactly, back-substitute the slack rows, and
    verify primal feasibility plus — when the objective is nonzero —
    dual feasibility (the basic solution of a feasibility model is
    optimal by definition).  [Some] carries the {e exact} solution and
    objective value; [None] (wrong basis, singular system, or rational
    overflow) means the float path lied and the caller must fall back.
    Increments [ilp.certify.ok]/[ilp.certify.fail] and journals the
    verdict. *)

val certify_infeasible : t -> int -> bool
(** [certify_infeasible t r] checks the float path's infeasibility claim
    for tableau row [r] with an exact Farkas certificate: solve
    [B^T z = e_r], then verify [z >= 0], [z . A >= 0] columnwise and
    [z . b < 0].  Same counters/journal as {!certify_optimal}. *)

(** Exact rational arithmetic over native integers.

    Values are kept in lowest terms with a strictly positive denominator.
    Native [int] (63-bit) numerators/denominators are ample for the simplex
    tableaus produced by the pin-allocation and interchip-connection ILPs in
    this library; an overflow during normalization raises {!Overflow} rather
    than silently wrapping. *)

type t = private { num : int; den : int }

exception Overflow
exception Division_by_zero

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val flush_metrics : unit -> unit
(** The [ratio.reductions] counter is batch-flushed off the hot path (and
    automatically flushed before every {!Mcs_obs.Metrics.snapshot} /
    [reset] via [Metrics.on_read]); call this only when reading the raw
    counter directly with [Metrics.count]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t
val inv : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t

val is_zero : t -> bool
val is_integer : t -> bool

val floor : t -> int
(** Largest integer [<=] the rational (true mathematical floor, also for
    negative values). *)

val ceil : t -> int
val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val frac : t -> t
(** Fractional part in [[0, 1)]: [frac q = q - floor q]. *)

val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(* Infix aliases, intended for local [open Mcs_util.Ratio.Infix]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

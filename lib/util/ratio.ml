type t = { num : int; den : int }

exception Overflow
exception Division_by_zero

(* Overflow-checked primitives.  The tableaus we manipulate are small and
   their entries stay far from 2^62, but a silent wraparound would corrupt a
   pivot invisibly, so every arithmetic step is checked. *)

let add_exact a b =
  let r = a + b in
  if (a >= 0) = (b >= 0) && (r >= 0) <> (a >= 0) then raise Overflow;
  r

let mul_exact a b =
  if a = 0 || b = 0 then 0
  else
    let r = a * b in
    if r / b <> a then raise Overflow;
    r

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* The reduction counter is the single hottest metric in the system (one
   potential increment per rational operation inside every pivot), so it is
   accumulated locally and flushed in batches; [Metrics.on_read] guarantees
   reports still see an exact count. *)
let m_reductions = Mcs_obs.Metrics.counter "ratio.reductions"
let pending_reductions = ref 0
let flush_batch = 1024

let flush_metrics () =
  if !pending_reductions > 0 then begin
    Mcs_obs.Metrics.incr ~n:!pending_reductions m_reductions;
    pending_reductions := 0
  end

let () = Mcs_obs.Metrics.on_read flush_metrics

let count_reduction () =
  incr pending_reductions;
  if !pending_reductions >= flush_batch then flush_metrics ()

let zero = { num = 0; den = 1 }
let one = { num = 1; den = 1 }
let minus_one = { num = -1; den = 1 }

let make num den =
  if den = 0 then raise Division_by_zero;
  if num = 0 then zero
  else if den = 1 then { num; den = 1 }
  else begin
    count_reduction ();
    let s = if den < 0 then -1 else 1 in
    let g = gcd (abs num) (abs den) in
    { num = s * num / g; den = s * den / g }
  end

let of_int n = { num = n; den = 1 }
let num t = t.num
let den t = t.den

(* Addition follows Knuth 4.5.1: when the denominators are equal, coprime,
   or one is 1, the result is either one small gcd away from — or provably
   already in — lowest terms, so the general normalizing [make] (and its
   larger intermediate products) is skipped on every hot-path shape. *)
let add a b =
  if a.den = b.den then begin
    if a.den = 1 then { num = add_exact a.num b.num; den = 1 }
    else begin
      let s = add_exact a.num b.num in
      if s = 0 then zero
      else begin
        count_reduction ();
        let g = gcd (abs s) a.den in
        { num = s / g; den = a.den / g }
      end
    end
  end
  else if a.den = 1 then
    (* gcd (a.num * b.den + b.num, b.den) = gcd (b.num, b.den) = 1 *)
    { num = add_exact (mul_exact a.num b.den) b.num; den = b.den }
  else if b.den = 1 then
    { num = add_exact a.num (mul_exact b.num a.den); den = a.den }
  else begin
    let d1 = gcd a.den b.den in
    if d1 = 1 then
      (* Coprime denominators: the cross-product sum is provably reduced. *)
      { num = add_exact (mul_exact a.num b.den) (mul_exact b.num a.den);
        den = mul_exact a.den b.den }
    else begin
      (* s = 0 would need a = -b, impossible with distinct denominators. *)
      count_reduction ();
      let s =
        add_exact
          (mul_exact a.num (b.den / d1))
          (mul_exact b.num (a.den / d1))
      in
      let d2 = gcd (abs s) d1 in
      { num = s / d2; den = mul_exact (a.den / d1) (b.den / d2) }
    end
  end

let neg a = { num = -a.num; den = a.den }
let sub a b = add a (neg b)

(* Cross-reduced multiplication: divide out gcd (|a.num|, b.den) and
   gcd (|b.num|, a.den) first, so the products are smaller (fewer spurious
   overflows) and the result is provably in lowest terms. *)
let mul a b =
  if a.num = 0 || b.num = 0 then zero
  else if a.den = 1 && b.den = 1 then { num = mul_exact a.num b.num; den = 1 }
  else begin
    let g1 = gcd (abs a.num) b.den in
    let g2 = gcd (abs b.num) a.den in
    if g1 > 1 || g2 > 1 then count_reduction ();
    { num = mul_exact (a.num / g1) (b.num / g2);
      den = mul_exact (a.den / g2) (b.den / g1) }
  end

(* A reduced rational's inverse is reduced: only the sign needs fixing. *)
let inv a =
  if a.num = 0 then raise Division_by_zero
  else if a.num > 0 then { num = a.den; den = a.num }
  else { num = -a.den; den = -a.num }

let div a b = mul a (inv b)
let abs a = { a with num = Stdlib.abs a.num }
let sign a = compare a.num 0

let compare a b =
  (* Denominators are positive, so cross-multiplication preserves order —
     but equal denominators (the pivot-loop common case) need no products,
     and differing signs decide without any multiplication at all. *)
  if a.den = b.den then Stdlib.compare a.num b.num
  else
    let sa = Stdlib.compare a.num 0 and sb = Stdlib.compare b.num 0 in
    if sa <> sb then Stdlib.compare sa sb
    else Stdlib.compare (mul_exact a.num b.den) (mul_exact b.num a.den)

let equal a b = a.num = b.num && a.den = b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let is_zero a = a.num = 0
let is_integer a = a.den = 1

let floor a =
  if a.den = 1 then a.num
  else if a.num >= 0 then a.num / a.den
  else (-(-a.num / a.den)) - (if -a.num mod a.den = 0 then 0 else 1)

let ceil a = -floor (neg a)

let to_int_exn a =
  if a.den <> 1 then invalid_arg "Ratio.to_int_exn: not an integer";
  a.num

let frac a = sub a (of_int (floor a))
let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end

type t = { num : int; den : int }

exception Overflow
exception Division_by_zero

(* Overflow-checked primitives.  The tableaus we manipulate are small and
   their entries stay far from 2^62, but a silent wraparound would corrupt a
   pivot invisibly, so every arithmetic step is checked. *)

let add_exact a b =
  let r = a + b in
  if (a >= 0) = (b >= 0) && (r >= 0) <> (a >= 0) then raise Overflow;
  r

let mul_exact a b =
  if a = 0 || b = 0 then 0
  else
    let r = a * b in
    if r / b <> a then raise Overflow;
    r

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let m_reductions = Mcs_obs.Metrics.counter "ratio.reductions"

let make num den =
  if den = 0 then raise Division_by_zero;
  Mcs_obs.Metrics.incr m_reductions;
  if num = 0 then { num = 0; den = 1 }
  else
    let s = if den < 0 then -1 else 1 in
    let g = gcd (abs num) (abs den) in
    { num = s * num / g; den = s * den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num t = t.num
let den t = t.den

let add a b =
  make
    (add_exact (mul_exact a.num b.den) (mul_exact b.num a.den))
    (mul_exact a.den b.den)

let neg a = { num = -a.num; den = a.den }
let sub a b = add a (neg b)
let mul a b = make (mul_exact a.num b.num) (mul_exact a.den b.den)

let inv a =
  if a.num = 0 then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)
let abs a = { a with num = Stdlib.abs a.num }
let sign a = compare a.num 0

let compare a b =
  (* Denominators are positive, so cross-multiplication preserves order. *)
  Stdlib.compare (mul_exact a.num b.den) (mul_exact b.num a.den)

let equal a b = a.num = b.num && a.den = b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let is_zero a = a.num = 0
let is_integer a = a.den = 1

let floor a =
  if a.den = 1 then a.num
  else if a.num >= 0 then a.num / a.den
  else (-(-a.num / a.den)) - (if -a.num mod a.den = 0 then 0 else 1)

let ceil a = -floor (neg a)

let to_int_exn a =
  if a.den <> 1 then invalid_arg "Ratio.to_int_exn: not an integer";
  a.num

let frac a = sub a (of_int (floor a))
let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end

(** Maximum-cardinality bipartite matching via augmenting paths (Kuhn's
    algorithm).

    Used by the dynamic bus-reassignment step of Chapter 4.2: I/O operations
    on the left, (bus, control-step-group) communication slots on the right;
    an augmenting path found when scheduling an I/O operation is exactly a
    legal chain of preemptions. *)

type t

val create : n_left:int -> n_right:int -> t
val add_edge : t -> left:int -> right:int -> unit

val remove_edge : t -> left:int -> right:int -> unit
(** Removes one copy of the edge if present (no-op otherwise).  If the edge
    was matched, the matching is updated to drop it. *)

val force_pair : t -> left:int -> right:int -> unit
(** Pins [left -- right] into the current matching, displacing any previous
    partners (their match is cleared, not rerouted).
    @raise Invalid_argument if the edge is absent. *)

val max_matching : ?budget:Mcs_resilience.Budget.t -> t -> int
(** Augments the current matching to maximum cardinality and returns its
    size.  Deterministic: left vertices are processed in increasing order.
    [budget] charges one augment per attempted augmenting path; exhaustion
    raises {!Mcs_resilience.Budget.Out_of_budget}. *)

val try_augment : t -> left:int -> bool
(** Attempts to add the single unmatched left vertex to the matching by an
    augmenting path, preserving all existing pairs (possibly re-routing
    them).  Returns [false] (matching unchanged) if no augmenting path
    exists. *)

val match_of_left : t -> int -> int option
val match_of_right : t -> int -> int option
val unmatch_left : t -> int -> unit

val pairs : t -> (int * int) list
(** Current matched pairs, sorted by left vertex. *)

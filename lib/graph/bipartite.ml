type t = {
  n_left : int;
  n_right : int;
  adj : int list array; (* adj.(l) = right neighbours *)
  ml : int array; (* ml.(l) = matched right vertex or -1 *)
  mr : int array; (* mr.(r) = matched left vertex or -1 *)
}

let create ~n_left ~n_right =
  if n_left < 0 || n_right < 0 then invalid_arg "Bipartite.create";
  {
    n_left;
    n_right;
    adj = Array.make n_left [];
    ml = Array.make n_left (-1);
    mr = Array.make n_right (-1);
  }

let check_l t l = if l < 0 || l >= t.n_left then invalid_arg "Bipartite: left"
let check_r t r = if r < 0 || r >= t.n_right then invalid_arg "Bipartite: right"

let add_edge t ~left ~right =
  check_l t left;
  check_r t right;
  t.adj.(left) <- right :: t.adj.(left)

let remove_edge t ~left ~right =
  check_l t left;
  check_r t right;
  let rec drop = function
    | [] -> []
    | r :: rest -> if r = right then rest else r :: drop rest
  in
  let before = List.length t.adj.(left) in
  t.adj.(left) <- drop t.adj.(left);
  let removed = List.length t.adj.(left) < before in
  (* Only unmatch when the last parallel copy disappears. *)
  if removed && t.ml.(left) = right && not (List.mem right t.adj.(left))
  then begin
    t.ml.(left) <- -1;
    t.mr.(right) <- -1
  end

let unmatch_left t l =
  check_l t l;
  let r = t.ml.(l) in
  if r >= 0 then begin
    t.ml.(l) <- -1;
    t.mr.(r) <- -1
  end

let force_pair t ~left ~right =
  check_l t left;
  check_r t right;
  if not (List.mem right t.adj.(left)) then
    invalid_arg "Bipartite.force_pair: no such edge";
  unmatch_left t left;
  let old_l = t.mr.(right) in
  if old_l >= 0 then t.ml.(old_l) <- -1;
  t.ml.(left) <- right;
  t.mr.(right) <- left

module M = Mcs_obs.Metrics

let m_attempts = M.counter "bipartite.augment_attempts"
let m_success = M.counter "bipartite.augment_success"
let m_fail = M.counter "bipartite.augment_fail"

(* One Kuhn phase from [l]: DFS over alternating paths. *)
let augment_from t l =
  M.incr m_attempts;
  let visited = Array.make t.n_right false in
  let rec dfs l =
    let try_right r =
      if visited.(r) then false
      else begin
        visited.(r) <- true;
        if t.mr.(r) = -1 || dfs t.mr.(r) then begin
          t.ml.(l) <- r;
          t.mr.(r) <- l;
          true
        end
        else false
      end
    in
    List.exists try_right (List.rev t.adj.(l))
  in
  let ok = dfs l in
  M.incr (if ok then m_success else m_fail);
  ok

let try_augment t ~left =
  check_l t left;
  if t.ml.(left) >= 0 then true else augment_from t left

let max_matching ?(budget = Mcs_resilience.Budget.unlimited) t =
  for l = 0 to t.n_left - 1 do
    if t.ml.(l) = -1 then begin
      Mcs_resilience.Budget.spend_augment budget;
      ignore (augment_from t l)
    end
  done;
  Array.fold_left (fun acc r -> if r >= 0 then acc + 1 else acc) 0 t.ml

let match_of_left t l =
  check_l t l;
  if t.ml.(l) >= 0 then Some t.ml.(l) else None

let match_of_right t r =
  check_r t r;
  if t.mr.(r) >= 0 then Some t.mr.(r) else None

let pairs t =
  let acc = ref [] in
  for l = t.n_left - 1 downto 0 do
    if t.ml.(l) >= 0 then acc := (l, t.ml.(l)) :: !acc
  done;
  !acc

(* Classic potentials formulation; see e.g. Burkard, Dell'Amico, Martello,
   "Assignment Problems".  Internally 1-indexed; rows <= columns is arranged
   by the callers. *)

let inf = max_int / 4

module M = Mcs_obs.Metrics
module Budget = Mcs_resilience.Budget
module Fault = Mcs_resilience.Fault

let m_solves = M.counter "hungarian.solves"
let m_augmentations = M.counter "hungarian.augmentations"
let m_relabel_passes = M.counter "hungarian.relabel_passes"

(* The exhaust-hungarian fault and budget exhaustion surface as
   [Budget.Out_of_budget]: the results here are plain arrays/lists, so a
   typed outcome would ripple through every caller; instead the (few)
   budgeted call sites catch the exception at their own boundary. *)
let inject () =
  match Fault.exhaust_hungarian () with
  | Some e -> raise (Budget.Out_of_budget e)
  | None -> ()

let solve_rect ?(budget = Budget.unlimited) cost n m =
  (* n rows, m columns, n <= m; returns row -> column. *)
  M.incr m_solves;
  let u = Array.make (n + 1) 0 in
  let v = Array.make (m + 1) 0 in
  let p = Array.make (m + 1) 0 in
  let way = Array.make (m + 1) 0 in
  for i = 1 to n do
    M.incr m_augmentations;
    if Mcs_obs.Events.on () then
      Mcs_obs.Events.emit ~cat:"hungarian" "augment"
        ~args:[ ("row", Mcs_obs.Events.Int i); ("of", Mcs_obs.Events.Int n) ];
    Budget.spend_augment budget;
    p.(0) <- i;
    let j0 = ref 0 in
    let minv = Array.make (m + 1) inf in
    let used = Array.make (m + 1) false in
    let continue = ref true in
    while !continue do
      M.incr m_relabel_passes;
      Budget.spend_pass budget;
      used.(!j0) <- true;
      let i0 = p.(!j0) in
      let delta = ref inf in
      let j1 = ref 0 in
      for j = 1 to m do
        if not used.(j) then begin
          let cur = cost.(i0 - 1).(j - 1) - u.(i0) - v.(j) in
          if cur < minv.(j) then begin
            minv.(j) <- cur;
            way.(j) <- !j0
          end;
          if minv.(j) < !delta then begin
            delta := minv.(j);
            j1 := j
          end
        end
      done;
      for j = 0 to m do
        if used.(j) then begin
          u.(p.(j)) <- u.(p.(j)) + !delta;
          v.(j) <- v.(j) - !delta
        end
        else minv.(j) <- minv.(j) - !delta
      done;
      j0 := !j1;
      if p.(!j0) = 0 then continue := false
    done;
    let j0 = ref !j0 in
    while !j0 <> 0 do
      let j1 = way.(!j0) in
      p.(!j0) <- p.(j1);
      j0 := j1
    done
  done;
  let result = Array.make n (-1) in
  for j = 1 to m do
    if p.(j) > 0 then result.(p.(j) - 1) <- j - 1
  done;
  result

let assignment ?budget cost =
  inject ();
  let n = Array.length cost in
  if n = 0 then invalid_arg "Hungarian.assignment: empty matrix";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Hungarian.assignment: matrix not square")
    cost;
  solve_rect ?budget cost n n

let max_weight_matching ?budget ~n_left ~n_right ~weight () =
  inject ();
  if n_left = 0 || n_right = 0 then []
  else begin
    (* Maximize by minimizing (wmax - w); forbidden pairs get a cost high
       enough that the optimum never uses one unless a vertex is genuinely
       unmatchable, in which case we strip the pair afterwards. *)
    let wmax = ref 0 in
    for l = 0 to n_left - 1 do
      for r = 0 to n_right - 1 do
        match weight l r with
        | None -> ()
        | Some w ->
            if w < 0 then invalid_arg "Hungarian: negative weight";
            if w > !wmax then wmax := w
      done
    done;
    let forbidden = (!wmax + 1) * (n_left + n_right + 1) in
    (* Rows must not outnumber columns; transpose if needed. *)
    let transposed = n_left > n_right in
    let n, m = if transposed then (n_right, n_left) else (n_left, n_right) in
    let cost =
      Array.init n (fun i ->
          Array.init m (fun j ->
              let l, r = if transposed then (j, i) else (i, j) in
              match weight l r with
              | None -> forbidden
              | Some w -> !wmax - w))
    in
    let assigned = solve_rect ?budget cost n m in
    let acc = ref [] in
    Array.iteri
      (fun i j ->
        if j >= 0 && cost.(i).(j) < forbidden then begin
          let l, r = if transposed then (j, i) else (i, j) in
          acc := (l, r) :: !acc
        end)
      assigned;
    List.sort compare !acc
  end

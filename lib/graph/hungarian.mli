(** Hungarian algorithm (Kuhn–Munkres with potentials, O(n^3)).

    Chapter 5 reduces interchip-connection synthesis after scheduling to a
    maximum-gain clique partitioning, solved as a series of bipartite
    weighted matchings between control-step groups; this module provides that
    matching. *)

val assignment :
  ?budget:Mcs_resilience.Budget.t -> int array array -> int array
(** [assignment cost] solves the square min-cost assignment problem:
    [cost.(i).(j)] is the cost of giving row [i] column [j]; the result maps
    each row to its assigned column (a permutation).  [budget] charges one
    augment per row and one pass per relabeling step; exhaustion (and the
    [exhaust-hungarian] fault) raises {!Mcs_resilience.Budget.Out_of_budget}
    — budgeted callers catch it at their own boundary.
    @raise Invalid_argument if the matrix is empty or not square. *)

val max_weight_matching :
  ?budget:Mcs_resilience.Budget.t ->
  n_left:int ->
  n_right:int ->
  weight:(int -> int -> int option) ->
  unit ->
  (int * int) list
(** Maximum-total-weight matching of a (possibly rectangular) bipartite
    graph.  [weight l r] is [None] when [l] and [r] may not be paired, and
    [Some w] ([w >= 0]) otherwise.  Every vertex is matched at most once;
    pairs with weight [0] are still formed when no positive-weight
    alternative exists (merging compatible nodes is free but never harmful
    in the clique-partitioning use).  The result is sorted by left vertex.
    @raise Invalid_argument on a negative weight. *)

module C = Mcs_connect.Connection
module F = Mcs_flow.Flow
module Diag = Mcs_flow.Diag
module M = Mcs_obs.Metrics

let c_jobs = M.counter "engine.pool.jobs"
let c_forks = M.counter "engine.pool.forks"
let c_crashes = M.counter "engine.pool.crashes"
let c_timeouts = M.counter "engine.pool.timeouts"
let c_retries = M.counter "engine.pool.retries"
let c_executed = M.counter "engine.jobs.executed"

(* ---- shared requeue bookkeeping ---- *)

(* A strike ledger: how many times a given job (by canonical key) has
   taken down its executor.  The fork pool and the server supervisor
   share this bookkeeping so "how many failures before we stop retrying"
   is one policy, not two: the pool consults it on the degraded retry,
   the supervisor consults it when a worker domain dies or stalls and
   quarantines a job that reaches the limit as poison.  Mutex-guarded —
   the supervisor records strikes from the main loop while domains run. *)
module Strikes = struct
  type t = {
    lock : Mutex.t;
    counts : (string, int) Hashtbl.t;
    max_strikes : int;
  }

  let create ?(max_strikes = 2) () =
    { lock = Mutex.create (); counts = Hashtbl.create 16; max_strikes }

  let max_strikes t = t.max_strikes

  let with_lock t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let count t key =
    with_lock t (fun () ->
        Option.value ~default:0 (Hashtbl.find_opt t.counts key))

  let poisoned t key = count t key >= t.max_strikes

  (* Record one strike; [`Poisoned n] once the key reaches the limit. *)
  let record t key =
    with_lock t (fun () ->
        let n =
          1 + Option.value ~default:0 (Hashtbl.find_opt t.counts key)
        in
        Hashtbl.replace t.counts key n;
        if n >= t.max_strikes then `Poisoned n else `Retry n)

  let forgive t key = with_lock t (fun () -> Hashtbl.remove t.counts key)
end

(* ---- in-process execution ---- *)

let feasible ?refine job ~pins ~pipe_length ~fu_count ~check ~degraded ~solver
    =
  {
    Outcome.job;
    status = Outcome.Feasible;
    pins;
    pipe_length;
    fu_count;
    check;
    degraded;
    solver;
    refine;
  }

let settled ?solver job status =
  {
    Outcome.job;
    status;
    pins = [];
    pipe_length = 0;
    fu_count = 0;
    check = None;
    degraded = [];
    solver;
    refine = None;
  }

(* The job's own share of the hybrid-arithmetic counters: deltas across
   the flow run, so a forked worker (counters inherited from the parent)
   and the daemon's long-lived domains report the same thing. *)
let c_certify_ok = M.counter "ilp.certify.ok"
let c_certify_fail = M.counter "ilp.certify.fail"
let c_arith_fallbacks = M.counter "bb.arith_fallbacks"

let with_solver_stats f =
  let ok0 = M.count c_certify_ok
  and fail0 = M.count c_certify_fail
  and fb0 = M.count c_arith_fallbacks in
  let r = f () in
  let stats =
    {
      Outcome.arith =
        Mcs_ilp.Fsimplex.(arith_to_string (arith_of_env ()));
      certify_ok = M.count c_certify_ok - ok0;
      certify_fail = M.count c_certify_fail - fail0;
      arith_fallbacks = M.count c_arith_fallbacks - fb0;
    }
  in
  (r, Some stats)

(* Workers are forked, so the only channel for a per-job budget is the
   environment: MCS_DEADLINE_MS (wall milliseconds) makes every solver in
   the flow share one deadline, with the degradation ladder behind it.
   Unset, empty or unparsable means unlimited — a budget mishap must
   never change what a job computes. *)
let policy_of_env () =
  match Sys.getenv_opt "MCS_DEADLINE_MS" with
  | None -> F.default_policy
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some ms when ms > 0. ->
          {
            F.default_policy with
            F.budget = Mcs_resilience.Budget.make ~deadline_ms:ms ();
          }
      | Some _ | None -> F.default_policy)

(* Every job routes through the unified flow API; the checker level comes
   from MCS_CHECK (inherited by forked workers, so a sweep's verdicts are
   uniform), and its verdict rides on the outcome into caches and
   mcs-dse/1 reports.  An explicit [policy] (the server's per-request
   deadline) overrides the MCS_DEADLINE_MS environment channel. *)
let exec_diag_raw ?policy (job : Job.t) =
  M.incr c_executed;
  match Job.resolve job.Job.design with
  | Error m -> (settled job (Outcome.Infeasible m), None)
  | Ok d -> (
      let flow, mode =
        match job.Job.flow with
        | Job.Ch3 -> (F.Ch3, C.Unidir)
        | Job.Ch4_unidir -> (F.Ch4, C.Unidir)
        | Job.Ch4_bidir -> (F.Ch4, C.Bidir)
        | Job.Ch5 -> (F.Ch5, C.Bidir)
        | Job.Ch6 -> (F.Ch6, C.Bidir)
      in
      let spec =
        F.spec_of_design ?pipe_length:job.Job.pipe_length ~mode ~flow d
          ~rate:job.Job.rate
      in
      let level = Mcs_check.level_of_env () in
      let policy =
        match policy with Some p -> p | None -> policy_of_env ()
      in
      let run, solver =
        with_solver_stats (fun () -> Mcs_check.run ~level ~policy flow spec)
      in
      match run with
      | Error dg ->
          ( settled ?solver job (Outcome.Infeasible (Diag.message dg)),
            Some dg )
      | Ok r ->
          (* The optional refinement stage: anytime-improve the result
             under the same policy budget (so a per-request deadline
             bounds refinement too), then report the incumbent.  The
             telemetry rides on the outcome into caches and reports. *)
          let r, refine =
            if job.Job.refine <= 0 then (r, None)
            else
              let module R = Mcs_refine.Refine in
              let before = R.objective r in
              let out = R.improve ~max_iters:job.Job.refine ~policy spec r in
              let steps =
                List.map
                  (fun (it : R.iteration) ->
                    {
                      Outcome.action = it.R.action;
                      objective = it.R.objective_after;
                      step_accepted = it.R.accepted;
                      step_pivots = it.R.pivots;
                    })
                  out.R.iterations
              in
              ( out.R.result,
                Some
                  {
                    Outcome.steps;
                    objective_start = before;
                    objective_end = R.objective out.R.result;
                    accepted =
                      List.length
                        (List.filter (fun (it : R.iteration) -> it.R.accepted)
                           out.R.iterations);
                    fixed_point = out.R.fixed_point;
                    refine_exhausted = out.R.exhausted;
                  } )
          in
          let check =
            match level with
            | Mcs_flow.Pass.Off -> None
            | Mcs_flow.Pass.Warn | Mcs_flow.Pass.Strict ->
                let n = List.length (List.filter Diag.is_error r.F.diags) in
                Some (if n = 0 then Outcome.Clean else Outcome.Violations n)
          in
          ( feasible ?refine job ~pins:r.F.pins ~pipe_length:r.F.pipe_length
              ~fu_count:(F.fus_total r) ~check ~degraded:r.F.degraded ~solver,
            None ))

let exec_diag ?policy job =
  try exec_diag_raw ?policy job with
  | Invalid_argument m | Failure m ->
      (settled job (Outcome.Infeasible m), None)
  | e -> (settled job (Outcome.Crashed (Printexc.to_string e)), None)

let exec ?policy job = fst (exec_diag ?policy job)

(* ---- the fork pool ---- *)

type worker_state = {
  pid : int;
  fd : Unix.file_descr;
  idx : int;
  buf : Buffer.t;
  deadline : float option;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let rec waitpid_retry pid =
  try snd (Unix.waitpid [] pid)
  with
  | Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid
  | Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.WEXITED 0

let rec select_retry fds tmo =
  try Unix.select fds [] [] tmo
  with Unix.Unix_error (Unix.EINTR, _, _) -> select_retry fds tmo

let status_msg = function
  | Unix.WEXITED 0 -> "worker replied with an unparsable result"
  | Unix.WEXITED c -> Printf.sprintf "worker exited with code %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "worker killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "worker stopped by signal %d" s

let spawn ?(crash = false) worker job idx ~timeout =
  (* Duplicated channel buffers in the child would replay the parent's
     pending output; the child talks only through its pipe. *)
  flush stdout;
  flush stderr;
  Format.pp_print_flush Format.std_formatter ();
  Format.pp_print_flush Format.err_formatter ();
  let r, w = Unix.pipe () in
  M.incr c_forks;
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      (* The child's log lines interleave with the parent's on stderr;
         the job hash makes them attributable. *)
      Mcs_obs.Log.set_field "job" (Job.hash job);
      if crash then Unix._exit 3;
      (match worker job with
      | o ->
          (try write_all w (Outcome.to_string o) with _ -> ());
          (try Unix.close w with _ -> ());
          Unix._exit 0
      | exception _ -> Unix._exit 3)
  | pid ->
      Unix.close w;
      if Mcs_obs.Events.on () then
        Mcs_obs.Events.emit ~cat:"pool" "fork"
          ~args:
            [
              ("job", Mcs_obs.Events.Str (Job.hash job));
              ("pid", Mcs_obs.Events.Int pid);
            ];
      {
        pid;
        fd = r;
        idx;
        buf = Buffer.create 256;
        deadline =
          Option.map (fun t -> Unix.gettimeofday () +. t) timeout;
      }

(* ---- shared sweep bookkeeping ---- *)

(* Everything that makes a sweep's results deterministic regardless of
   execution mode lives here, once: cache prefill, the single degraded
   retry (with its halved-deadline environment discipline), store-back
   of freshly computed settled results, and submission-order assembly.
   [drain ~degraded indices ~finish] is the only mode-specific part —
   fork-and-select or in-process — and must call [finish i outcome]
   exactly once per index.  Extracted so the daemon's in-process mode
   and the CLI's fork mode cannot drift. *)
let run_generic ?cache ?(retry = false) ?strikes ~halve_timeout ~drain
    (joblist : Job.t array) =
  let n = Array.length joblist in
  M.incr c_jobs ~n;
  let results = Array.make n None in
  let fresh = Array.make n false in
  (match cache with
  | None -> ()
  | Some c ->
      Array.iteri
        (fun i job ->
          match Cache.lookup c job with
          | Some o -> results.(i) <- Some o
          | None -> ())
        joblist);
  let finish i outcome =
    results.(i) <- Some outcome;
    fresh.(i) <- true
  in
  drain ~degraded:false
    (List.filter (fun i -> results.(i) = None) (Mcs_util.Listx.range 0 n))
    ~finish;
  (if retry then
     let failed =
       List.filter
         (fun i ->
           match results.(i) with
           | Some { Outcome.status = Outcome.Crashed _ | Outcome.Timed_out; _ }
             ->
               true
           | _ -> false)
         (Mcs_util.Listx.range 0 n)
     in
     (* With a shared strike ledger, each failure is a strike and a job
        already at the limit is left settled as-is instead of retried —
        the same circuit breaker the server supervisor applies to jobs
        that kill worker domains. *)
     let failed =
       match strikes with
       | None -> failed
       | Some s ->
           List.filter
             (fun i ->
               match Strikes.record s (Job.to_string joblist.(i)) with
               | `Retry _ -> true
               | `Poisoned _ -> false)
             failed
     in
     if failed <> [] then begin
       M.incr c_retries ~n:(List.length failed);
       if Mcs_obs.Events.on () then
         List.iter
           (fun i ->
             Mcs_obs.Events.emit ~cat:"pool" "retry"
               ~args:[ ("job", Mcs_obs.Events.Str (Job.hash joblist.(i))) ])
           failed;
       (* One retry, in degraded mode: half the deadline (or half the pool
          timeout when no deadline was set) so the flows' ladders have
          room to land inside the original allowance.  The environment is
          the channel because forked workers read it on entry — and the
          in-process mode's default worker reads it per job, so both modes
          see the same halved budget. *)
       let prev = Sys.getenv_opt "MCS_DEADLINE_MS" in
       let halved =
         match Option.bind prev float_of_string_opt with
         | Some ms when ms > 0. -> Some (ms /. 2.)
         | Some _ | None ->
             Option.map (fun t -> t *. 1000. /. 2.) halve_timeout
       in
       (match halved with
       | Some ms -> Unix.putenv "MCS_DEADLINE_MS" (Printf.sprintf "%.0f" ms)
       | None -> ());
       Fun.protect
         ~finally:(fun () ->
           match prev with
           | Some v -> Unix.putenv "MCS_DEADLINE_MS" v
           | None ->
               if halved <> None then Unix.putenv "MCS_DEADLINE_MS" "")
         (fun () -> drain ~degraded:true failed ~finish)
     end);
  (match cache with
  | None -> ()
  | Some c ->
      Array.iteri
        (fun i computed ->
          if computed then
            match results.(i) with
            | Some o -> Cache.store c joblist.(i) o
            | None -> ())
        fresh);
  Array.to_list
    (Array.mapi
       (fun i r ->
         match r with
         | Some o -> o
         | None -> settled joblist.(i) (Outcome.Crashed "result lost"))
       results)

let run ?(jobs = 1) ?timeout ?cache ?(worker = fun j -> exec j)
    ?(retry = false) ?strikes joblist =
  let slots = max 1 jobs in
  let joblist = Array.of_list joblist in
  (* The crash-worker:N fault kills the first N forked workers on entry;
     with [retry] the pool then demonstrates recovery. *)
  let crashes_left = ref (Mcs_resilience.Fault.crash_workers ()) in
  let drain ~degraded:_ indices ~finish =
  let pending = ref indices in
  let running = ref [] in
  let finish_worker wk outcome =
    running := List.filter (fun w -> w.pid <> wk.pid) !running;
    (try Unix.close wk.fd with Unix.Unix_error _ -> ());
    if Mcs_obs.Events.on () then
      Mcs_obs.Events.emit ~cat:"pool" "join"
        ~args:
          [
            ("job", Mcs_obs.Events.Str (Job.hash joblist.(wk.idx)));
            ("pid", Mcs_obs.Events.Int wk.pid);
            ( "status",
              Mcs_obs.Events.Str
                (match outcome.Outcome.status with
                | Outcome.Feasible -> "feasible"
                | Outcome.Infeasible _ -> "infeasible"
                | Outcome.Crashed _ -> "crashed"
                | Outcome.Timed_out -> "timed-out") );
          ];
    finish wk.idx outcome
  in
  while !pending <> [] || !running <> [] do
    while !pending <> [] && List.length !running < slots do
      let idx = List.hd !pending in
      pending := List.tl !pending;
      let crash = !crashes_left > 0 in
      if crash then decr crashes_left;
      running := spawn ~crash worker joblist.(idx) idx ~timeout :: !running
    done;
    (* Expiry first, and unconditionally: a worker past its deadline is
       reported [Timed_out] even if its reply has already arrived, so a
       zero timeout gives a deterministic outcome. *)
    let now = Unix.gettimeofday () in
    let expired =
      List.filter
        (fun wk ->
          match wk.deadline with Some d -> d <= now | None -> false)
        !running
    in
    List.iter
      (fun wk ->
        (try Unix.kill wk.pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (waitpid_retry wk.pid);
        M.incr c_timeouts;
        finish_worker wk (settled joblist.(wk.idx) Outcome.Timed_out))
      expired;
    if !running <> [] then begin
      let tmo =
        match List.filter_map (fun wk -> wk.deadline) !running with
        | [] -> -1.0
        | ds ->
            Float.max 0.0
              (List.fold_left Float.min Float.infinity ds
              -. Unix.gettimeofday ())
      in
      let readable, _, _ =
        select_retry (List.map (fun wk -> wk.fd) !running) tmo
      in
      let chunk = Bytes.create 4096 in
      List.iter
        (fun fd ->
          match List.find_opt (fun wk -> wk.fd = fd) !running with
          | None -> ()
          | Some wk -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                  (* EOF: the worker wrote its reply (if any) and died. *)
                  let st = waitpid_retry wk.pid in
                  let outcome =
                    match
                      Outcome.of_string (String.trim (Buffer.contents wk.buf))
                    with
                    | Ok o when Job.equal o.Outcome.job joblist.(wk.idx) -> o
                    | Ok _ | Error _ ->
                        M.incr c_crashes;
                        settled joblist.(wk.idx)
                          (Outcome.Crashed (status_msg st))
                  in
                  finish_worker wk outcome
              | k -> Buffer.add_subbytes wk.buf chunk 0 k
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
        readable
    end
  done
  in
  run_generic ?cache ~retry ?strikes ~halve_timeout:timeout ~drain joblist

(* ---- in-process execution over the shared bookkeeping ---- *)

let run_local ?policy ?cache ?worker ?(retry = false) ?strikes joblist =
  let joblist = Array.of_list joblist in
  let job_worker ~degraded job =
    match worker with
    | Some w -> w job
    | None ->
        (* On the degraded retry an explicit policy halves like the
           environment channel would; the default (env-derived) policy is
           re-read per job, so the run_generic halved MCS_DEADLINE_MS is
           already in effect. *)
        let policy =
          match policy with
          | Some p when degraded ->
              Some
                {
                  p with
                  F.budget = Mcs_resilience.Budget.halve p.F.budget;
                }
          | p -> p
        in
        exec ?policy job
  in
  (* Sequential drain doubles as the warm-start chain: a job's payload is
     imported before it runs, and the settled registry is handed to the
     next job of the drain (unless a payload already rides on it).  The
     fork pool has no such chaining — bases do not survive the process
     boundary. *)
  let drain ~degraded indices ~finish =
    let rec go = function
      | [] -> ()
      | i :: rest ->
          let job = joblist.(i) in
          (match Job.warm job with
          | [] -> ()
          | entries -> Mcs_ilp.Warm.import entries);
          let outcome =
            try job_worker ~degraded job
            with e -> settled job (Outcome.Crashed (Printexc.to_string e))
          in
          (match rest with
          | j :: _ when Job.warm joblist.(j) = [] ->
              Job.set_warm joblist.(j) (Mcs_ilp.Warm.export_all ())
          | _ -> ());
          finish i outcome;
          go rest
    in
    go indices
  in
  run_generic ?cache ~retry ?strikes ~halve_timeout:None ~drain joblist

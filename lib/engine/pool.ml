open Mcs_cdfg
module C = Mcs_connect.Connection
module M = Mcs_obs.Metrics

let c_jobs = M.counter "engine.pool.jobs"
let c_forks = M.counter "engine.pool.forks"
let c_crashes = M.counter "engine.pool.crashes"
let c_timeouts = M.counter "engine.pool.timeouts"
let c_executed = M.counter "engine.jobs.executed"

(* ---- in-process execution ---- *)

(* The resource-constrained flows (ch3/ch4/ch6) run under the constraint
   tables' functional-unit allocation; the schedule-first flow reports
   the units its FDS schedule implies. *)
let fus_of_constraints (d : Benchmarks.design) cons =
  let tys = Module_lib.optypes d.Benchmarks.mlib in
  Mcs_util.Listx.sum
    (fun p ->
      Mcs_util.Listx.sum
        (fun ty -> Constraints.fu_count cons ~partition:p ~optype:ty)
        tys)
    (Mcs_util.Listx.range 1 (Cdfg.n_partitions d.Benchmarks.cdfg + 1))

let feasible job ~pins ~pipe_length ~fu_count =
  { Outcome.job; status = Outcome.Feasible; pins; pipe_length; fu_count }

let settled job status =
  { Outcome.job; status; pins = []; pipe_length = 0; fu_count = 0 }

let exec (job : Job.t) =
  M.incr c_executed;
  let rate = job.Job.rate in
  let outcome =
    match Job.resolve job.Job.design with
    | Error m -> settled job (Outcome.Infeasible m)
    | Ok d -> (
        let pipe sched = Mcs_sched.Schedule.pipe_length sched in
        match job.Job.flow with
        | Job.Ch3 -> (
            match Mcs_core.Simple_part.run d ~rate with
            | Error m -> settled job (Outcome.Infeasible m)
            | Ok r ->
                feasible job ~pins:r.Mcs_core.Simple_part.pins_needed
                  ~pipe_length:(pipe r.Mcs_core.Simple_part.schedule)
                  ~fu_count:
                    (fus_of_constraints d (Benchmarks.constraints_for d ~rate)))
        | Job.Ch4_unidir | Job.Ch4_bidir -> (
            let mode =
              if job.Job.flow = Job.Ch4_bidir then C.Bidir else C.Unidir
            in
            match Mcs_core.Pre_connect.run_design d ~rate ~mode with
            | Error m -> settled job (Outcome.Infeasible m)
            | Ok r ->
                let cons =
                  match mode with
                  | C.Unidir -> Benchmarks.constraints_for d ~rate
                  | C.Bidir -> Benchmarks.constraints_for_bidir d ~rate
                in
                feasible job ~pins:r.Mcs_core.Pre_connect.pins
                  ~pipe_length:(pipe r.Mcs_core.Pre_connect.schedule)
                  ~fu_count:(fus_of_constraints d cons))
        | Job.Ch5 -> (
            let pipe_length =
              match job.Job.pipe_length with
              | Some pl -> pl
              | None ->
                  Timing.critical_path_csteps d.Benchmarks.cdfg
                    d.Benchmarks.mlib
            in
            match
              Mcs_core.Post_connect.run_design d ~rate ~pipe_length
                ~mode:C.Bidir
            with
            | Error m -> settled job (Outcome.Infeasible m)
            | Ok r ->
                feasible job ~pins:r.Mcs_core.Post_connect.pins
                  ~pipe_length:(pipe r.Mcs_core.Post_connect.schedule)
                  ~fu_count:
                    (Mcs_util.Listx.sum snd r.Mcs_core.Post_connect.fus))
        | Job.Ch6 -> (
            match Mcs_core.Subbus.run_design d ~rate with
            | Error m -> settled job (Outcome.Infeasible m)
            | Ok t ->
                feasible job ~pins:t.Mcs_core.Subbus.pins
                  ~pipe_length:(pipe t.Mcs_core.Subbus.schedule)
                  ~fu_count:
                    (fus_of_constraints d
                       (Benchmarks.constraints_for_bidir d ~rate))))
  in
  outcome

let exec job =
  try exec job with
  | Invalid_argument m | Failure m -> settled job (Outcome.Infeasible m)
  | e -> settled job (Outcome.Crashed (Printexc.to_string e))

(* ---- the fork pool ---- *)

type worker_state = {
  pid : int;
  fd : Unix.file_descr;
  idx : int;
  buf : Buffer.t;
  deadline : float option;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let rec waitpid_retry pid =
  try snd (Unix.waitpid [] pid)
  with
  | Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid
  | Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.WEXITED 0

let rec select_retry fds tmo =
  try Unix.select fds [] [] tmo
  with Unix.Unix_error (Unix.EINTR, _, _) -> select_retry fds tmo

let status_msg = function
  | Unix.WEXITED 0 -> "worker replied with an unparsable result"
  | Unix.WEXITED c -> Printf.sprintf "worker exited with code %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "worker killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "worker stopped by signal %d" s

let spawn worker job idx ~timeout =
  (* Duplicated channel buffers in the child would replay the parent's
     pending output; the child talks only through its pipe. *)
  flush stdout;
  flush stderr;
  Format.pp_print_flush Format.std_formatter ();
  Format.pp_print_flush Format.err_formatter ();
  let r, w = Unix.pipe () in
  M.incr c_forks;
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      (match worker job with
      | o ->
          (try write_all w (Outcome.to_string o) with _ -> ());
          (try Unix.close w with _ -> ());
          Unix._exit 0
      | exception _ -> Unix._exit 3)
  | pid ->
      Unix.close w;
      {
        pid;
        fd = r;
        idx;
        buf = Buffer.create 256;
        deadline =
          Option.map (fun t -> Unix.gettimeofday () +. t) timeout;
      }

let run ?(jobs = 1) ?timeout ?cache ?(worker = exec) joblist =
  let slots = max 1 jobs in
  let joblist = Array.of_list joblist in
  let n = Array.length joblist in
  M.incr c_jobs ~n;
  let results = Array.make n None in
  let fresh = Array.make n false in
  (match cache with
  | None -> ()
  | Some c ->
      Array.iteri
        (fun i job ->
          match Cache.lookup c job with
          | Some o -> results.(i) <- Some o
          | None -> ())
        joblist);
  let pending =
    ref (List.filter (fun i -> results.(i) = None) (Mcs_util.Listx.range 0 n))
  in
  let running = ref [] in
  let finish wk outcome =
    running := List.filter (fun w -> w.pid <> wk.pid) !running;
    (try Unix.close wk.fd with Unix.Unix_error _ -> ());
    results.(wk.idx) <- Some outcome;
    fresh.(wk.idx) <- true
  in
  while !pending <> [] || !running <> [] do
    while !pending <> [] && List.length !running < slots do
      let idx = List.hd !pending in
      pending := List.tl !pending;
      running := spawn worker joblist.(idx) idx ~timeout :: !running
    done;
    (* Expiry first, and unconditionally: a worker past its deadline is
       reported [Timed_out] even if its reply has already arrived, so a
       zero timeout gives a deterministic outcome. *)
    let now = Unix.gettimeofday () in
    let expired =
      List.filter
        (fun wk ->
          match wk.deadline with Some d -> d <= now | None -> false)
        !running
    in
    List.iter
      (fun wk ->
        (try Unix.kill wk.pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (waitpid_retry wk.pid);
        M.incr c_timeouts;
        finish wk (settled joblist.(wk.idx) Outcome.Timed_out))
      expired;
    if !running <> [] then begin
      let tmo =
        match List.filter_map (fun wk -> wk.deadline) !running with
        | [] -> -1.0
        | ds ->
            Float.max 0.0
              (List.fold_left Float.min Float.infinity ds
              -. Unix.gettimeofday ())
      in
      let readable, _, _ =
        select_retry (List.map (fun wk -> wk.fd) !running) tmo
      in
      let chunk = Bytes.create 4096 in
      List.iter
        (fun fd ->
          match List.find_opt (fun wk -> wk.fd = fd) !running with
          | None -> ()
          | Some wk -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                  (* EOF: the worker wrote its reply (if any) and died. *)
                  let st = waitpid_retry wk.pid in
                  let outcome =
                    match
                      Outcome.of_string (String.trim (Buffer.contents wk.buf))
                    with
                    | Ok o when Job.equal o.Outcome.job joblist.(wk.idx) -> o
                    | Ok _ | Error _ ->
                        M.incr c_crashes;
                        settled joblist.(wk.idx)
                          (Outcome.Crashed (status_msg st))
                  in
                  finish wk outcome
              | k -> Buffer.add_subbytes wk.buf chunk 0 k
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
        readable
    end
  done;
  (match cache with
  | None -> ()
  | Some c ->
      Array.iteri
        (fun i computed ->
          if computed then
            match results.(i) with
            | Some o -> Cache.store c joblist.(i) o
            | None -> ())
        fresh);
  Array.to_list
    (Array.mapi
       (fun i r ->
         match r with
         | Some o -> o
         | None -> settled joblist.(i) (Outcome.Crashed "result lost"))
       results)

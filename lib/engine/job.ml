type flow = Ch3 | Ch4_unidir | Ch4_bidir | Ch5 | Ch6

let all_flows = [ Ch3; Ch4_unidir; Ch4_bidir; Ch5; Ch6 ]

let flow_to_string = function
  | Ch3 -> "ch3"
  | Ch4_unidir -> "ch4-unidir"
  | Ch4_bidir -> "ch4-bidir"
  | Ch5 -> "ch5"
  | Ch6 -> "ch6"

let flow_of_string = function
  | "ch3" -> Ok Ch3
  | "ch4-unidir" -> Ok Ch4_unidir
  | "ch4-bidir" -> Ok Ch4_bidir
  | "ch5" -> Ok Ch5
  | "ch6" -> Ok Ch6
  | s ->
      Error
        (Printf.sprintf
           "unknown flow %S (ch3|ch4-unidir|ch4-bidir|ch5|ch6)" s)

type design_spec =
  | Named of string
  | Random of { seed : int; n_partitions : int; n_ops : int }
  | Random_simple of { seed : int; n_partitions : int; ops_per_chip : int }

type t = {
  design : design_spec;
  flow : flow;
  rate : int;
  pipe_length : int option;
  refine : int;
  mutable warm : (string * string list) list;
      (* parent-basis payload for the cross-grid warm start; deliberately
         NOT part of the canonical encoding — identity is the work named,
         never the hints riding along *)
}

let name_ok s =
  s <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       s

let make ?pipe_length ?(refine = 0) ~design ~flow ~rate () =
  if rate < 1 then invalid_arg "Job.make: rate must be positive";
  if refine < 0 then invalid_arg "Job.make: refine cap must be >= 0";
  (match pipe_length with
  | Some pl when pl < 1 -> invalid_arg "Job.make: pipe length must be positive"
  | _ -> ());
  (match design with
  | Named s when not (name_ok s) ->
      invalid_arg
        (Printf.sprintf "Job.make: bad design name %S (want [A-Za-z0-9_-]+)" s)
  | _ -> ());
  let pipe_length = match flow with Ch5 -> pipe_length | _ -> None in
  { design; flow; rate; pipe_length; refine; warm = [] }

let design_to_string = function
  | Named s -> s
  | Random { seed; n_partitions; n_ops } ->
      Printf.sprintf "random:%d:%d:%d" seed n_partitions n_ops
  | Random_simple { seed; n_partitions; ops_per_chip } ->
      Printf.sprintf "rsimple:%d:%d:%d" seed n_partitions ops_per_chip

let design_of_string s =
  let ints3 body =
    match String.split_on_char ':' body with
    | [ a; b; c ] -> (
        match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c)
        with
        | Some a, Some b, Some c when b > 0 && c > 0 -> Ok (a, b, c)
        | _ -> Error (Printf.sprintf "bad random-design parameters %S" body))
    | _ -> Error (Printf.sprintf "bad random-design parameters %S" body)
  in
  match String.index_opt s ':' with
  | None ->
      if name_ok s then Ok (Named s)
      else Error (Printf.sprintf "bad design name %S" s)
  | Some i -> (
      let kind = String.sub s 0 i in
      let body = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "random" ->
          Result.map
            (fun (seed, n_partitions, n_ops) ->
              Random { seed; n_partitions; n_ops })
            (ints3 body)
      | "rsimple" ->
          Result.map
            (fun (seed, n_partitions, ops_per_chip) ->
              Random_simple { seed; n_partitions; ops_per_chip })
            (ints3 body)
      | k -> Error (Printf.sprintf "unknown design kind %S" k))

let magic = "mcs-job/1"

(* [refine] is appended only when nonzero, so every pre-refinement
   encoding (and its cache address) stays byte-identical. *)
let to_string j =
  Printf.sprintf "%s|%s|%s|r%d|pl%s%s" magic
    (design_to_string j.design)
    (flow_to_string j.flow) j.rate
    (match j.pipe_length with Some pl -> string_of_int pl | None -> "-")
    (if j.refine > 0 then Printf.sprintf "|ref%d" j.refine else "")

let ( let* ) = Result.bind

let of_string s =
  let parse_refine = function
    | None -> Ok 0
    | Some rf when String.length rf > 3 && String.sub rf 0 3 = "ref" -> (
        match int_of_string_opt (String.sub rf 3 (String.length rf - 3)) with
        | Some n when n > 0 -> Ok n
        | _ -> Error (Printf.sprintf "bad refine field %S" rf))
    | Some rf -> Error (Printf.sprintf "bad refine field %S" rf)
  in
  let fields =
    match String.split_on_char '|' s with
    | [ m; d; f; r; pl ] -> Some (m, d, f, r, pl, None)
    | [ m; d; f; r; pl; rf ] -> Some (m, d, f, r, pl, Some rf)
    | _ -> None
  in
  match fields with
  | Some (m, d, f, r, pl, rf) when m = magic ->
      let* design = design_of_string d in
      let* flow = flow_of_string f in
      let* rate =
        if String.length r > 1 && r.[0] = 'r' then
          match int_of_string_opt (String.sub r 1 (String.length r - 1)) with
          | Some n when n > 0 -> Ok n
          | _ -> Error (Printf.sprintf "bad rate field %S" r)
        else Error (Printf.sprintf "bad rate field %S" r)
      in
      let* pipe_length =
        if String.length pl > 2 && String.sub pl 0 2 = "pl" then
          match String.sub pl 2 (String.length pl - 2) with
          | "-" -> Ok None
          | n -> (
              match int_of_string_opt n with
              | Some n when n > 0 -> Ok (Some n)
              | _ -> Error (Printf.sprintf "bad pipe-length field %S" pl))
        else Error (Printf.sprintf "bad pipe-length field %S" pl)
      in
      let* refine = parse_refine rf in
      if pipe_length <> None && flow <> Ch5 then
        Error "pipe length is only valid for the ch5 flow"
      else Ok { design; flow; rate; pipe_length; refine; warm = [] }
  | _ -> Error (Printf.sprintf "not a %s encoding: %S" magic s)

let equal a b = to_string a = to_string b
let warm j = j.warm
let set_warm j entries = j.warm <- entries

let hash j =
  String.sub (Digest.to_hex (Digest.string (to_string j))) 0 12

let pp ppf j =
  Format.fprintf ppf "%s %s r%d%s%s"
    (design_to_string j.design)
    (flow_to_string j.flow) j.rate
    (match j.pipe_length with
    | Some pl -> Printf.sprintf " pl%d" pl
    | None -> "")
    (if j.refine > 0 then Printf.sprintf " ref%d" j.refine else "")

let grid ~designs ~flows ~rates ?(pipe_lengths = []) ?(refine = 0) () =
  List.concat_map
    (fun design ->
      List.concat_map
        (fun flow ->
          List.concat_map
            (fun rate ->
              match flow with
              | Ch5 when pipe_lengths <> [] ->
                  List.map
                    (fun pl -> make ~pipe_length:pl ~refine ~design ~flow ~rate ())
                    pipe_lengths
              | _ -> [ make ~refine ~design ~flow ~rate () ])
            rates)
        flows)
    designs

open Mcs_cdfg

let named_designs =
  [
    ("ar-simple", Benchmarks.ar_simple);
    ("ar-general", Benchmarks.ar_general);
    ("elliptic", Benchmarks.elliptic);
    ("cond-demo", Benchmarks.cond_demo);
    ("subbus-demo", Benchmarks.subbus_demo);
  ]

(* Generous budgets: the random specs exist for determinism and isolation
   properties, so feasibility should hinge on the scheduler, not on a pin
   budget the generator cannot see. *)
let random_budgets ~n_partitions =
  List.map
    (fun p -> (p, if p = 0 then 4096 else 512))
    (Mcs_util.Listx.range 0 (n_partitions + 1))

let resolve = function
  | Named s -> (
      match List.assoc_opt s named_designs with
      | Some mk -> Ok (mk ())
      | None ->
          Error
            (Printf.sprintf "unknown design %S (known: %s)" s
               (String.concat ", " (List.map fst named_designs))))
  | Random { seed; n_partitions; n_ops } ->
      let cdfg = Random_design.generate ~seed ~n_partitions ~n_ops () in
      let pins = random_budgets ~n_partitions in
      Ok
        {
          Benchmarks.tag = Printf.sprintf "random:%d:%d:%d" seed n_partitions n_ops;
          cdfg;
          mlib = Random_design.mlib ();
          pins_unidir = pins;
          pins_bidir = pins;
          rates = [ 4 ];
          fu_extra = [];
        }
  | Random_simple { seed; n_partitions; ops_per_chip } ->
      let cdfg = Random_design.generate_simple ~seed ~n_partitions ~ops_per_chip () in
      let pins = random_budgets ~n_partitions in
      Ok
        {
          Benchmarks.tag =
            Printf.sprintf "rsimple:%d:%d:%d" seed n_partitions ops_per_chip;
          cdfg;
          mlib = Random_design.mlib ();
          pins_unidir = pins;
          pins_bidir = pins;
          rates = [ 4 ];
          fu_extra = [];
        }

(** The unit of work of the design-space exploration engine.

    A job names one synthesis invocation — a design, one of the five
    dissertation flows, an initiation rate and (for the schedule-first
    flow) a pipe length — in a {e canonical} textual encoding.  The
    encoding is the job's identity everywhere: {!Pool} hands it to forked
    workers, {!Cache} digests it into a content address, and the
    [mcs-dse/1] report quotes it verbatim, so {!to_string}/{!of_string}
    must round-trip exactly (a qcheck property in [test/suite_engine.ml]
    pins this down). *)

(** One flow per evaluated configuration of the dissertation: Chapter 3
    (simple partitionings), Chapter 4 in both port modes, Chapter 5
    (schedule-first) and Chapter 6 (sub-bus sharing). *)
type flow = Ch3 | Ch4_unidir | Ch4_bidir | Ch5 | Ch6

val flow_to_string : flow -> string
(** ["ch3"], ["ch4-unidir"], ["ch4-bidir"], ["ch5"], ["ch6"]. *)

val flow_of_string : string -> (flow, string) result
val all_flows : flow list

(** Which design a job runs on.  [Named] designs come from
    {!named_designs}; the [Random]/[Random_simple] forms embed their
    generator parameters so a worker (or a cold cache) can rebuild the
    identical CDFG from the encoding alone. *)
type design_spec =
  | Named of string  (** only [A-Za-z0-9_-]+, see {!named_designs} *)
  | Random of { seed : int; n_partitions : int; n_ops : int }
  | Random_simple of { seed : int; n_partitions : int; ops_per_chip : int }

type t = private {
  design : design_spec;
  flow : flow;
  rate : int;
  pipe_length : int option;
      (** [Some _] only when [flow = Ch5]; [None] means "use the critical
          path", like the CLI default *)
  refine : int;
      (** iteration cap for the post-flow {!Mcs_refine} stage; 0 = off.
          Part of the identity (a refined result is different work), but
          encoded as a trailing [|refN] field {e only when nonzero}, so
          every pre-refinement encoding and cache address is unchanged *)
  mutable warm : (string * string list) list;
      (** optional parent-basis payload ({!Mcs_ilp.Warm.export_all}
          contents from a settled neighboring grid point) — a hint, {e
          never} identity: excluded from {!to_string}/{!equal}/{!hash} so
          cached results stay addressable whatever hints rode along *)
}

val make :
  ?pipe_length:int ->
  ?refine:int ->
  design:design_spec ->
  flow:flow ->
  rate:int ->
  unit ->
  t
(** Canonicalizing constructor: [pipe_length] is dropped unless the flow
    is {!Ch5}, so equal work always has an equal encoding.
    @raise Invalid_argument on a nonpositive rate or pipe length, a
    negative refine cap, or on a [Named] design whose name is empty or
    uses characters outside [A-Za-z0-9_-]. *)

val design_to_string : design_spec -> string
val design_of_string : string -> (design_spec, string) result
(** The design field of the canonical encoding, e.g. [ar-general] or
    [random:7:3:14]. *)

val to_string : t -> string
(** Canonical encoding, e.g.
    [mcs-job/1|ar-general|ch5|r4|pl8] or
    [mcs-job/1|random:7:3:14|ch4-bidir|r3|pl-]. *)

val of_string : string -> (t, string) result
val equal : t -> t -> bool

val warm : t -> (string * string list) list
val set_warm : t -> (string * string list) list -> unit
(** Attach/read the warm-start payload.  {!Mcs_engine.Pool.run_local} and
    the server's batch runner import it into the {!Mcs_ilp.Warm} registry
    before executing the job and store the post-run export on the {e
    next} job of the chain; the fork-based pool ignores it (bases do not
    cross the process boundary). *)

val hash : t -> string
(** Short (12 hex chars) content digest of the canonical encoding; used
    to tag structured log lines and trace events with a job identity. *)

val pp : Format.formatter -> t -> unit
(** Short human form, e.g. [ar-general ch5 r4 pl8]. *)

val grid :
  designs:design_spec list ->
  flows:flow list ->
  rates:int list ->
  ?pipe_lengths:int list ->
  ?refine:int ->
  unit ->
  t list
(** The cross product in deterministic order (designs outermost, then
    flows, rates, pipe lengths).  [pipe_lengths] applies to {!Ch5} jobs
    only — other flows contribute one job per (design, flow, rate). *)

val named_designs : (string * (unit -> Mcs_cdfg.Benchmarks.design)) list
(** The bundled designs, by CLI name (ar-simple, ar-general, elliptic,
    cond-demo, subbus-demo). *)

val resolve : design_spec -> (Mcs_cdfg.Benchmarks.design, string) result
(** Materialize the design a job refers to.  Random specs get generous
    pin budgets (the property tests exercise flow determinism, not
    feasibility hunting) and the adverse chaining-free
    {!Mcs_cdfg.Random_design.mlib}. *)

let code_version = "mcs-engine/2"

let hits = Mcs_obs.Metrics.counter "engine.cache.hits"
let misses = Mcs_obs.Metrics.counter "engine.cache.misses"
let stale = Mcs_obs.Metrics.counter "engine.cache.stale"
let quarantined = Mcs_obs.Metrics.counter "engine.cache.quarantined"

let event name job =
  if Mcs_obs.Events.on () then
    Mcs_obs.Events.emit ~cat:"cache" name
      ~args:[ ("job", Mcs_obs.Events.Str (Job.to_string job)) ]

type t = { dir : string; version : string }

(* Concurrent domains in one process (the server's worker pool) share a
   cache handle.  Renames are atomic at the filesystem level, but the
   lookup path is read-then-quarantine: unsynchronised, a domain that
   just stored a fresh entry could have it yanked to [.bad] by a sibling
   that read the file mid-decision.  Sharding by entry hash keeps the
   fix cheap — same key serialises, different keys (almost always
   different buckets) proceed in parallel.  The bucket count is static
   because cache handles are plain values freely copied across domains;
   a per-handle lock table would silently stop being shared. *)
let bucket_count = 16
let buckets = Array.init bucket_count (fun _ -> Mutex.create ())

let with_bucket path f =
  let m = buckets.(Hashtbl.hash path mod bucket_count) in
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Temp names must be unique per writer: pid alone collides when several
   domains of one process store into the same bucket concurrently. *)
let tmp_seq = Atomic.make 0

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir ?(version = code_version) dir =
  (try mkdir_p dir
   with Unix.Unix_error (e, _, _) ->
     raise (Sys_error
              (Printf.sprintf "cannot create cache directory %s: %s" dir
                 (Unix.error_message e))));
  { dir; version }

let dir t = t.dir
let version t = t.version

let key t job = t.version ^ "\n" ^ Job.to_string job

let entry_path t job =
  Filename.concat t.dir (Digest.to_hex (Digest.string (key t job)) ^ ".mcs")

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ -> None

(* Entry layout: version line, canonical job line, outcome JSON line. *)
let lookup t job =
  let path = entry_path t job in
  with_bucket path @@ fun () ->
  match read_file path with
  | None ->
      Mcs_obs.Metrics.incr misses;
      event "miss" job;
      None
  | Some body -> (
      let fresh =
        match String.split_on_char '\n' body with
        | [ v; j; o ] | [ v; j; o; "" ]
          when v = t.version && j = Job.to_string job -> (
            match Outcome.of_string o with
            | Ok outcome when Job.equal outcome.Outcome.job job -> Some outcome
            | Ok _ | Error _ -> None)
        | _ -> None
      in
      match fresh with
      | Some outcome ->
          Mcs_obs.Metrics.incr hits;
          event "hit" job;
          Some outcome
      | None ->
          (* Corrupt or stale: move the entry aside instead of re-reading
             (and re-rejecting) it on every lookup.  The quarantined file
             keeps the evidence for a post-mortem. *)
          Mcs_obs.Metrics.incr stale;
          event "stale" job;
          (try
             Sys.rename path (path ^ ".bad");
             Mcs_obs.Metrics.incr quarantined
           with Sys_error _ | Unix.Unix_error _ -> ());
          None)

let store t job (o : Outcome.t) =
  match o.Outcome.status with
  | Outcome.Crashed _ | Outcome.Timed_out -> ()
  | Outcome.Feasible | Outcome.Infeasible _ -> (
      let path = entry_path t job in
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d.%d" path (Unix.getpid ())
          (Domain.self () :> int)
          (Atomic.fetch_and_add tmp_seq 1)
      in
      with_bucket path @@ fun () ->
      try
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (key t job);
            output_char oc '\n';
            if Mcs_resilience.Fault.corrupt_cache () then
              output_string oc "\x00corrupt\x00"
            else output_string oc (Outcome.to_string o);
            output_char oc '\n');
        Sys.rename tmp path
      with Sys_error _ | Unix.Unix_error _ ->
        (* A failed store must not leave a half-written temp file around
           (and must not take the sweep down with it). *)
        (try Sys.remove tmp with Sys_error _ -> ()))

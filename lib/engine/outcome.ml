module J = Mcs_obs.Report_json

type status =
  | Feasible
  | Infeasible of string
  | Crashed of string
  | Timed_out

type check = Clean | Violations of int

type solver = {
  arith : string;
  certify_ok : int;
  certify_fail : int;
  arith_fallbacks : int;
}

type t = {
  job : Job.t;
  status : status;
  pins : (int * int) list;
  pipe_length : int;
  fu_count : int;
  check : check option;
  degraded : string list;
  solver : solver option;
}

let pins_total o = Mcs_util.Listx.sum snd o.pins
let is_feasible o = o.status = Feasible

let status_label = function
  | Feasible -> "feasible"
  | Infeasible _ -> "infeasible"
  | Crashed _ -> "crashed"
  | Timed_out -> "timeout"

let check_label = function
  | Clean -> "clean"
  | Violations n -> Printf.sprintf "violations:%d" n

let check_of_label s =
  match s with
  | "clean" -> Ok Clean
  | _ -> (
      match String.index_opt s ':' with
      | Some i
        when String.sub s 0 i = "violations" -> (
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some n when n > 0 -> Ok (Violations n)
          | _ -> Error (Printf.sprintf "outcome: bad check %S" s))
      | _ -> Error (Printf.sprintf "outcome: bad check %S" s))

let to_json o =
  let error =
    match o.status with
    | Infeasible m | Crashed m -> [ ("error", J.Str m) ]
    | Feasible | Timed_out -> []
  in
  J.Obj
    ([
       ("job", J.Str (Job.to_string o.job));
       ("status", J.Str (status_label o.status));
     ]
    @ error
    @ [
        ( "pins",
          J.Arr
            (List.map
               (fun (p, n) ->
                 J.Obj [ ("partition", J.Int p); ("pins", J.Int n) ])
               o.pins) );
        ("pipe_length", J.Int o.pipe_length);
        ("fu_count", J.Int o.fu_count);
      ]
    @ (match o.check with
      | None -> []
      | Some c -> [ ("check", J.Str (check_label c)) ])
    @ (match o.degraded with
      | [] -> []
      | steps -> [ ("degraded", J.Arr (List.map (fun m -> J.Str m) steps)) ])
    @
    match o.solver with
    | None -> []
    | Some s ->
        [
          ( "solver",
            J.Obj
              [
                ("arith", J.Str s.arith);
                ("certify_ok", J.Int s.certify_ok);
                ("certify_fail", J.Int s.certify_fail);
                ("fallbacks", J.Int s.arith_fallbacks);
              ] );
        ])

let ( let* ) = Result.bind
let field name conv j =
  match Option.bind (J.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "outcome: missing or bad field %S" name)

let of_json j =
  let* job_s = field "job" J.to_str j in
  let* job = Job.of_string job_s in
  let* status_s = field "status" J.to_str j in
  let msg () =
    match Option.bind (J.member "error" j) J.to_str with
    | Some m -> m
    | None -> ""
  in
  let* status =
    match status_s with
    | "feasible" -> Ok Feasible
    | "infeasible" -> Ok (Infeasible (msg ()))
    | "crashed" -> Ok (Crashed (msg ()))
    | "timeout" -> Ok Timed_out
    | s -> Error (Printf.sprintf "outcome: unknown status %S" s)
  in
  let* pins_j = field "pins" J.to_list j in
  let* pins =
    List.fold_left
      (fun acc pj ->
        let* acc = acc in
        let* p = field "partition" J.to_int pj in
        let* n = field "pins" J.to_int pj in
        Ok ((p, n) :: acc))
      (Ok []) pins_j
    |> Result.map List.rev
  in
  let* pipe_length = field "pipe_length" J.to_int j in
  let* fu_count = field "fu_count" J.to_int j in
  let* check =
    (* absent = produced with checking off; tolerated for old entries *)
    match Option.bind (J.member "check" j) J.to_str with
    | None -> Ok None
    | Some s -> Result.map Option.some (check_of_label s)
  in
  let degraded =
    (* absent = full quality (and every pre-resilience entry) *)
    match Option.bind (J.member "degraded" j) J.to_list with
    | None -> []
    | Some l -> List.filter_map J.to_str l
  in
  let* solver =
    (* absent = produced before the hybrid-arithmetic solver (or by a
       synthetic worker); tolerated like [check] *)
    match J.member "solver" j with
    | None -> Ok None
    | Some sj ->
        let* arith = field "arith" J.to_str sj in
        let* certify_ok = field "certify_ok" J.to_int sj in
        let* certify_fail = field "certify_fail" J.to_int sj in
        let* arith_fallbacks = field "fallbacks" J.to_int sj in
        Ok (Some { arith; certify_ok; certify_fail; arith_fallbacks })
  in
  Ok { job; status; pins; pipe_length; fu_count; check; degraded; solver }

let to_string o = J.to_string (to_json o)

let of_string s =
  let* j = J.of_string s in
  of_json j

let equal a b = to_string a = to_string b

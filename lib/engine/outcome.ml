module J = Mcs_obs.Report_json

type status =
  | Feasible
  | Infeasible of string
  | Crashed of string
  | Timed_out

type check = Clean | Violations of int

type solver = {
  arith : string;
  certify_ok : int;
  certify_fail : int;
  arith_fallbacks : int;
}

type refine_step = {
  action : string;
  objective : int option;
  step_accepted : bool;
  step_pivots : int;
}

type refine = {
  steps : refine_step list;
  objective_start : int;
  objective_end : int;
  accepted : int;
  fixed_point : bool;
  refine_exhausted : bool;
}

type t = {
  job : Job.t;
  status : status;
  pins : (int * int) list;
  pipe_length : int;
  fu_count : int;
  check : check option;
  degraded : string list;
  solver : solver option;
  refine : refine option;
}

let pins_total o = Mcs_util.Listx.sum snd o.pins
let is_feasible o = o.status = Feasible

let status_label = function
  | Feasible -> "feasible"
  | Infeasible _ -> "infeasible"
  | Crashed _ -> "crashed"
  | Timed_out -> "timeout"

let check_label = function
  | Clean -> "clean"
  | Violations n -> Printf.sprintf "violations:%d" n

let check_of_label s =
  match s with
  | "clean" -> Ok Clean
  | _ -> (
      match String.index_opt s ':' with
      | Some i
        when String.sub s 0 i = "violations" -> (
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some n when n > 0 -> Ok (Violations n)
          | _ -> Error (Printf.sprintf "outcome: bad check %S" s))
      | _ -> Error (Printf.sprintf "outcome: bad check %S" s))

let to_json o =
  let error =
    match o.status with
    | Infeasible m | Crashed m -> [ ("error", J.Str m) ]
    | Feasible | Timed_out -> []
  in
  J.Obj
    ([
       ("job", J.Str (Job.to_string o.job));
       ("status", J.Str (status_label o.status));
     ]
    @ error
    @ [
        ( "pins",
          J.Arr
            (List.map
               (fun (p, n) ->
                 J.Obj [ ("partition", J.Int p); ("pins", J.Int n) ])
               o.pins) );
        ("pipe_length", J.Int o.pipe_length);
        ("fu_count", J.Int o.fu_count);
      ]
    @ (match o.check with
      | None -> []
      | Some c -> [ ("check", J.Str (check_label c)) ])
    @ (match o.degraded with
      | [] -> []
      | steps -> [ ("degraded", J.Arr (List.map (fun m -> J.Str m) steps)) ])
    @ (match o.solver with
      | None -> []
      | Some s ->
          [
            ( "solver",
              J.Obj
                [
                  ("arith", J.Str s.arith);
                  ("certify_ok", J.Int s.certify_ok);
                  ("certify_fail", J.Int s.certify_fail);
                  ("fallbacks", J.Int s.arith_fallbacks);
                ] );
          ])
    @
    match o.refine with
    | None -> []
    | Some r ->
        [
          ( "refine",
            J.Obj
              [
                ("objective_start", J.Int r.objective_start);
                ("objective_end", J.Int r.objective_end);
                ("accepted", J.Int r.accepted);
                ("fixed_point", J.Bool r.fixed_point);
                ("exhausted", J.Bool r.refine_exhausted);
                ( "steps",
                  J.Arr
                    (List.map
                       (fun st ->
                         J.Obj
                           ([ ("action", J.Str st.action) ]
                           @ (match st.objective with
                             | None -> []
                             | Some o -> [ ("objective", J.Int o) ])
                           @ [
                               ("accepted", J.Bool st.step_accepted);
                               ("pivots", J.Int st.step_pivots);
                             ]))
                       r.steps) );
              ] );
        ])

let ( let* ) = Result.bind
let field name conv j =
  match Option.bind (J.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "outcome: missing or bad field %S" name)

let of_json j =
  let* job_s = field "job" J.to_str j in
  let* job = Job.of_string job_s in
  let* status_s = field "status" J.to_str j in
  let msg () =
    match Option.bind (J.member "error" j) J.to_str with
    | Some m -> m
    | None -> ""
  in
  let* status =
    match status_s with
    | "feasible" -> Ok Feasible
    | "infeasible" -> Ok (Infeasible (msg ()))
    | "crashed" -> Ok (Crashed (msg ()))
    | "timeout" -> Ok Timed_out
    | s -> Error (Printf.sprintf "outcome: unknown status %S" s)
  in
  let* pins_j = field "pins" J.to_list j in
  let* pins =
    List.fold_left
      (fun acc pj ->
        let* acc = acc in
        let* p = field "partition" J.to_int pj in
        let* n = field "pins" J.to_int pj in
        Ok ((p, n) :: acc))
      (Ok []) pins_j
    |> Result.map List.rev
  in
  let* pipe_length = field "pipe_length" J.to_int j in
  let* fu_count = field "fu_count" J.to_int j in
  let* check =
    (* absent = produced with checking off; tolerated for old entries *)
    match Option.bind (J.member "check" j) J.to_str with
    | None -> Ok None
    | Some s -> Result.map Option.some (check_of_label s)
  in
  let degraded =
    (* absent = full quality (and every pre-resilience entry) *)
    match Option.bind (J.member "degraded" j) J.to_list with
    | None -> []
    | Some l -> List.filter_map J.to_str l
  in
  let* solver =
    (* absent = produced before the hybrid-arithmetic solver (or by a
       synthetic worker); tolerated like [check] *)
    match J.member "solver" j with
    | None -> Ok None
    | Some sj ->
        let* arith = field "arith" J.to_str sj in
        let* certify_ok = field "certify_ok" J.to_int sj in
        let* certify_fail = field "certify_fail" J.to_int sj in
        let* arith_fallbacks = field "fallbacks" J.to_int sj in
        Ok (Some { arith; certify_ok; certify_fail; arith_fallbacks })
  in
  let* refine =
    (* absent = no refinement stage ran (every pre-refinement entry) *)
    match J.member "refine" j with
    | None -> Ok None
    | Some rj ->
        let* objective_start = field "objective_start" J.to_int rj in
        let* objective_end = field "objective_end" J.to_int rj in
        let* accepted = field "accepted" J.to_int rj in
        let fixed_point =
          Option.bind (J.member "fixed_point" rj) J.to_bool = Some true
        in
        let refine_exhausted =
          Option.bind (J.member "exhausted" rj) J.to_bool = Some true
        in
        let* steps_j = field "steps" J.to_list rj in
        let* steps =
          List.fold_left
            (fun acc sj ->
              let* acc = acc in
              let* action = field "action" J.to_str sj in
              let objective = Option.bind (J.member "objective" sj) J.to_int in
              let step_accepted =
                Option.bind (J.member "accepted" sj) J.to_bool = Some true
              in
              let* step_pivots = field "pivots" J.to_int sj in
              Ok ({ action; objective; step_accepted; step_pivots } :: acc))
            (Ok []) steps_j
          |> Result.map List.rev
        in
        Ok
          (Some
             {
               steps;
               objective_start;
               objective_end;
               accepted;
               fixed_point;
               refine_exhausted;
             })
  in
  Ok
    { job; status; pins; pipe_length; fu_count; check; degraded; solver; refine }

let to_string o = J.to_string (to_json o)

let of_string s =
  let* j = J.of_string s in
  of_json j

let equal a b = to_string a = to_string b

(** The result of one {!Job}, in a form every engine layer shares.

    An outcome deliberately carries {e no} wall-clock time or other
    environment-dependent data: the [mcs-dse/1] report must be
    byte-identical whichever worker count (or cache state) produced it,
    so timing lives with the {!Pool} and the caller, never here.  The
    JSON codec below is both the pipe protocol between a forked worker
    and the pool, and the on-disk format of {!Cache} entries. *)

type status =
  | Feasible
  | Infeasible of string
      (** the flow rejected the point (returned [Error] or raised
          [Invalid_argument]/[Failure], the flows' input-rejection
          convention) *)
  | Crashed of string
      (** the worker died (signal, uncaught exception, unparsable
          reply): the point failed, the sweep survives *)
  | Timed_out

(** Verdict of the {!Mcs_check} static analysis on a feasible result. *)
type check = Clean | Violations of int  (** count of error diagnostics *)

(** How the job's ILP solves ran: the arithmetic mode
    ({!Mcs_ilp.Fsimplex.arith_to_string}) and the job's own share of the
    certification counters, so a degraded-to-rational solve is visible in
    the [mcs-dse/1] report it lands in.  Deterministic for a fixed job
    under the process-isolated pool (IEEE arithmetic plus fixed pivot
    tie-breaks pin the pivot sequence); in-process warm-start chaining can shift the
    counts with batch composition, so treat them as observability, never
    as identity. *)
type solver = {
  arith : string;
  certify_ok : int;
  certify_fail : int;
  arith_fallbacks : int;
}

(** One {!Mcs_refine} iteration, as cached: what move ran, the objective
    it reached (absent when the move failed to produce a candidate),
    whether the incumbent took it, and the simplex pivots its budget
    slice spent. *)
type refine_step = {
  action : string;
  objective : int option;
  step_accepted : bool;
  step_pivots : int;
}

(** Telemetry of the job's optional refinement stage ({!Job.refine}
    [> 0]): start/end objective under {!Mcs_refine.objective}, accepted
    iteration count, and how the loop stopped. *)
type refine = {
  steps : refine_step list;
  objective_start : int;
  objective_end : int;
  accepted : int;
  fixed_point : bool;
  refine_exhausted : bool;
}

type t = {
  job : Job.t;
  status : status;
  pins : (int * int) list;  (** per partition; [[]] unless [Feasible] *)
  pipe_length : int;  (** 0 unless [Feasible] *)
  fu_count : int;
      (** total functional units: the constraint tables' allocation for
          the resource-constrained flows, the FDS-implied counts for
          Chapter 5; 0 unless [Feasible] *)
  check : check option;
      (** [None] when the job ran with checking off ([MCS_CHECK] unset);
          cached in [mcs-dse/1] reports like every other field *)
  degraded : string list;
      (** the flow's degradation-ladder steps ({!Mcs_flow.Flow.result}
          [degraded]); empty for a full-quality result.  Serialized only
          when nonempty, and absent parses as empty, so pre-resilience
          cache entries and reports stay valid *)
  solver : solver option;
      (** [None] for synthetic workers and pre-hybrid cache entries
          (absent in the encoding parses as [None]) *)
  refine : refine option;
      (** [None] when the job ran without a refinement stage
          ([Job.refine = 0], and every pre-refinement cache entry) *)
}

val pins_total : t -> int
val is_feasible : t -> bool
val equal : t -> t -> bool

val status_label : status -> string
(** ["feasible"], ["infeasible"], ["crashed"], ["timeout"]. *)

val check_label : check -> string
(** ["clean"] or ["violations:<n>"]. *)

val to_json : t -> Mcs_obs.Report_json.t
val of_json : Mcs_obs.Report_json.t -> (t, string) result

val to_string : t -> string
(** Single-line JSON ({!to_json} compactly printed). *)

val of_string : string -> (t, string) result

module J = Mcs_obs.Report_json

type point = { pins : int; pipe : int; fus : int }

let point_of (o : Outcome.t) =
  if Outcome.is_feasible o then
    Some
      {
        pins = Outcome.pins_total o;
        pipe = o.Outcome.pipe_length;
        fus = o.Outcome.fu_count;
      }
  else None

let dominates a b =
  a.pins <= b.pins && a.pipe <= b.pipe && a.fus <= b.fus
  && (a.pins < b.pins || a.pipe < b.pipe || a.fus < b.fus)

let frontier outcomes =
  let points = List.filter_map point_of outcomes in
  List.filter
    (fun o ->
      match point_of o with
      | None -> false
      | Some p -> not (List.exists (fun q -> dominates q p) points))
    outcomes

let axes axis p =
  match axis with
  | `Pins -> (p.pins, p.pipe, p.fus)
  | `Pipe -> (p.pipe, p.pins, p.fus)
  | `Fus -> (p.fus, p.pins, p.pipe)

let best outcomes axis =
  List.fold_left
    (fun acc o ->
      match (point_of o, acc) with
      | None, _ -> acc
      | Some _, None -> Some o
      | Some p, Some b ->
          let bp = Option.get (point_of b) in
          if axes axis p < axes axis bp then Some o else acc)
    None outcomes

let count pred l = List.length (List.filter pred l)

let report outcomes =
  let on_frontier =
    let f = frontier outcomes in
    fun o -> List.memq o f
  in
  let results =
    List.map
      (fun (o : Outcome.t) ->
        let j = o.Outcome.job in
        match Outcome.to_json o with
        | J.Obj fields ->
            J.Obj
              (fields
              @ [
                  ("design", J.Str (Job.design_to_string j.Job.design));
                  ("flow", J.Str (Job.flow_to_string j.Job.flow));
                  ("rate", J.Int j.Job.rate);
                  ( "pipe_length_req",
                    match j.Job.pipe_length with
                    | Some pl -> J.Int pl
                    | None -> J.Null );
                  ("pins_total", J.Int (Outcome.pins_total o));
                  ("pareto", J.Bool (on_frontier o));
                ])
        | j -> j)
      outcomes
  in
  let status_is label o = Outcome.status_label o.Outcome.status = label in
  let best_j axis =
    match best outcomes axis with
    | None -> J.Null
    | Some o ->
        J.Obj
          [
            ("job", J.Str (Job.to_string o.Outcome.job));
            ("pins_total", J.Int (Outcome.pins_total o));
            ("pipe_length", J.Int o.Outcome.pipe_length);
            ("fu_count", J.Int o.Outcome.fu_count);
          ]
  in
  J.Obj
    [
      ("schema", J.Str "mcs-dse/1");
      ("engine_version", J.Str Cache.code_version);
      ( "summary",
        J.Obj
          [
            ("jobs", J.Int (List.length outcomes));
            ("feasible", J.Int (count (status_is "feasible") outcomes));
            ("infeasible", J.Int (count (status_is "infeasible") outcomes));
            ("crashed", J.Int (count (status_is "crashed") outcomes));
            ("timed_out", J.Int (count (status_is "timeout") outcomes));
          ] );
      ("results", J.Arr results);
      ( "pareto",
        J.Arr
          (List.map
             (fun o -> J.Str (Job.to_string o.Outcome.job))
             (frontier outcomes)) );
      ( "best",
        J.Obj
          [
            ("min_pins", best_j `Pins);
            ("min_pipe", best_j `Pipe);
            ("min_fus", best_j `Fus);
          ] );
    ]

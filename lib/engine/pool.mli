(** Fork-based worker pool: fans a batch of {!Job}s out over child
    processes and collects {!Outcome}s.

    Every job runs in its own [Unix.fork]ed worker (even at [~jobs:1]),
    which buys three things at once: crash isolation (a worker dying on
    one design point — signal, uncaught exception, OOM — yields a
    [Crashed] outcome for that point while the sweep continues),
    enforceable per-job timeouts ([SIGKILL] on the deadline, a
    [Timed_out] outcome), and a clean-slate solver state per point.
    A worker reports by writing its outcome's single-line JSON to a pipe
    and [_exit]ing; the parent never deserializes anything richer.

    Results come back in {e submission order}, regardless of completion
    order or worker count: [run ~jobs:4] and [run ~jobs:1] return
    identical lists for deterministic flows (a qcheck property in
    [test/suite_engine.ml], and the byte-identical-report acceptance
    check of the [dse] CLI).

    With a {!Cache}, hits skip the fork entirely and fresh settled
    results are stored back.  Counters in {!Mcs_obs.Metrics}:
    [engine.pool.jobs], [engine.pool.forks], [engine.pool.crashes],
    [engine.pool.timeouts], and [engine.jobs.executed] in whichever
    process actually runs a flow.

    The sweep bookkeeping — cache prefill, the single degraded retry,
    store-back, submission-order assembly — is shared between {!run}
    (fork mode) and {!run_local} (in-process mode, what the
    [Mcs_server] daemon's worker domains use), so the two modes return
    identical lists for deterministic flows by construction. *)

(** Shared requeue bookkeeping: a mutex-guarded ledger of how many times
    a job (by canonical string key) has taken down its executor.  One
    policy for "how many failures before we stop retrying", shared
    between the fork pool's degraded retry and the [Mcs_server]
    supervisor's poison quarantine. *)
module Strikes : sig
  type t

  val create : ?max_strikes:int -> unit -> t
  (** [max_strikes] defaults to 2: a job that kills its executor twice is
      poison. *)

  val max_strikes : t -> int

  val count : t -> string -> int
  (** Strikes recorded so far against [key]; 0 when never seen. *)

  val poisoned : t -> string -> bool
  (** [count t key >= max_strikes] — the circuit is open for this key. *)

  val record : t -> string -> [ `Retry of int | `Poisoned of int ]
  (** Record one strike and return the new count: [`Retry n] while below
      the limit, [`Poisoned n] at or above it. *)

  val forgive : t -> string -> unit
  (** Clear a key's strikes (e.g. after a clean completion). *)
end

val exec : ?policy:Mcs_flow.Flow.policy -> Job.t -> Outcome.t
(** Run one job in the calling process.  Flow rejections ([Error],
    [Invalid_argument], [Failure] — including an unknown design name)
    become [Infeasible]; any other exception becomes [Crashed].  Never
    raises.  [policy] (e.g. a per-request deadline budget) overrides the
    [MCS_DEADLINE_MS] environment channel; default is derived from the
    environment. *)

val exec_diag :
  ?policy:Mcs_flow.Flow.policy -> Job.t -> Outcome.t * Mcs_flow.Diag.t option
(** Like {!exec} but also returns the typed diagnostic when the flow was
    rejected by the pass pipeline ([Error dg] — e.g. a budget
    [Exhausted]), so servers can forward structured failure causes
    instead of re-parsing the outcome's message string. *)

val run :
  ?jobs:int ->
  ?timeout:float ->
  ?cache:Cache.t ->
  ?worker:(Job.t -> Outcome.t) ->
  ?retry:bool ->
  ?strikes:Strikes.t ->
  Job.t list ->
  Outcome.t list
(** [run ~jobs:n js] keeps at most [n] (default 1, floored at 1) workers
    in flight.  [timeout] is per job, in seconds.  [worker] (default
    {!exec}) is what each child runs — overridable so tests can simulate
    worker death.

    [retry] (default [false], so fork and cache counts stay exactly
    reproducible) re-runs each [Crashed]/[Timed_out] job once in degraded
    mode: the worker's [MCS_DEADLINE_MS] budget — or, absent one, the
    pool [timeout] — is halved for the retry, so the flows' degradation
    ladders get a real chance to land a (degraded) result inside the
    original allowance.  Counter: [engine.pool.retries].

    [strikes] (optional) makes the retry consult a shared {!Strikes}
    ledger: each failure records a strike against the job's canonical
    key, and a job already at the limit keeps its failed outcome instead
    of being retried — the same circuit breaker the server supervisor
    applies to jobs that kill worker domains. *)

val run_local :
  ?policy:Mcs_flow.Flow.policy ->
  ?cache:Cache.t ->
  ?worker:(Job.t -> Outcome.t) ->
  ?retry:bool ->
  ?strikes:Strikes.t ->
  Job.t list ->
  Outcome.t list
(** In-process twin of {!run}: same cache prefill / retry / store-back /
    ordering bookkeeping, but jobs execute sequentially in the calling
    process (or domain) — no fork, no [SIGKILL] timeout, so deadline
    enforcement is the budget inside the flow.  [policy] feeds {!exec}
    per job; on the degraded retry an explicit [policy]'s budget is
    halved (the default env-derived policy picks up the halved
    [MCS_DEADLINE_MS] automatically).  This is what the [Mcs_server]
    daemon's worker domains run, and what in-process benchmarks use so
    solver counters land in the caller's registry. *)

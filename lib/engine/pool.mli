(** Fork-based worker pool: fans a batch of {!Job}s out over child
    processes and collects {!Outcome}s.

    Every job runs in its own [Unix.fork]ed worker (even at [~jobs:1]),
    which buys three things at once: crash isolation (a worker dying on
    one design point — signal, uncaught exception, OOM — yields a
    [Crashed] outcome for that point while the sweep continues),
    enforceable per-job timeouts ([SIGKILL] on the deadline, a
    [Timed_out] outcome), and a clean-slate solver state per point.
    A worker reports by writing its outcome's single-line JSON to a pipe
    and [_exit]ing; the parent never deserializes anything richer.

    Results come back in {e submission order}, regardless of completion
    order or worker count: [run ~jobs:4] and [run ~jobs:1] return
    identical lists for deterministic flows (a qcheck property in
    [test/suite_engine.ml], and the byte-identical-report acceptance
    check of the [dse] CLI).

    With a {!Cache}, hits skip the fork entirely and fresh settled
    results are stored back.  Counters in {!Mcs_obs.Metrics}:
    [engine.pool.jobs], [engine.pool.forks], [engine.pool.crashes],
    [engine.pool.timeouts], and [engine.jobs.executed] in whichever
    process actually runs a flow. *)

val exec : Job.t -> Outcome.t
(** Run one job in the calling process.  Flow rejections ([Error],
    [Invalid_argument], [Failure] — including an unknown design name)
    become [Infeasible]; any other exception becomes [Crashed].  Never
    raises. *)

val run :
  ?jobs:int ->
  ?timeout:float ->
  ?cache:Cache.t ->
  ?worker:(Job.t -> Outcome.t) ->
  ?retry:bool ->
  Job.t list ->
  Outcome.t list
(** [run ~jobs:n js] keeps at most [n] (default 1, floored at 1) workers
    in flight.  [timeout] is per job, in seconds.  [worker] (default
    {!exec}) is what each child runs — overridable so tests can simulate
    worker death.

    [retry] (default [false], so fork and cache counts stay exactly
    reproducible) re-runs each [Crashed]/[Timed_out] job once in degraded
    mode: the worker's [MCS_DEADLINE_MS] budget — or, absent one, the
    pool [timeout] — is halved for the retry, so the flows' degradation
    ladders get a real chance to land a (degraded) result inside the
    original allowance.  Counter: [engine.pool.retries]. *)

(** Content-addressed persistent result cache.

    An entry's address is the [Digest] (MD5) of the cache version tag
    plus the job's canonical encoding, so identical work always maps to
    the same file and a version bump silently invalidates everything
    (old entries are simply never addressed again).  Each entry restates
    the version and the full job encoding in cleartext and is verified
    on every read: an entry whose header disagrees with the key that
    addressed it, or whose body fails to parse, counts as {e stale} and
    is treated as a miss — and is {e quarantined}: renamed to
    [<hash>.mcs.bad] so it is never re-read, with the evidence kept on
    disk.

    Only settled outcomes ([Feasible] / [Infeasible]) are stored —
    crashes and timeouts depend on the machine, not on the job.

    Safe for concurrent domains in one process: lookups and stores are
    serialised per entry through a static table of hash-sharded bucket
    locks, so a store's rename can never race a sibling's
    read-then-quarantine decision on the same key, while distinct keys
    proceed in parallel.  (Cross-process safety still rests on the
    atomic rename plus cleartext verification alone.)

    Counters in {!Mcs_obs.Metrics}: [engine.cache.hits],
    [engine.cache.misses], [engine.cache.stale],
    [engine.cache.quarantined]. *)

type t

val code_version : string
(** The engine's current schema/code version tag.  Bump whenever a flow
    or the outcome encoding changes meaning, so stale results are never
    served. *)

val open_dir : ?version:string -> string -> t
(** [open_dir dir] opens (creating the directory if needed) a cache
    rooted at [dir], keyed under [version] (default {!code_version}).
    @raise Sys_error if the directory cannot be created. *)

val dir : t -> string
val version : t -> string

val entry_path : t -> Job.t -> string
(** Where the job's entry lives (whether or not it exists) — exposed for
    tests and CI corruption checks. *)

val lookup : t -> Job.t -> Outcome.t option
val store : t -> Job.t -> Outcome.t -> unit
(** Atomic (write-to-temp, rename).  Ignores crashed / timed-out
    outcomes.  A write error removes the temp file and is swallowed: a
    full disk degrades the cache, never the sweep.  The [corrupt-cache]
    fault ({!Mcs_resilience.Fault}) writes a garbage body instead, so
    tests can exercise the quarantine path end to end. *)

(** Pareto analysis over a sweep's outcomes, and the [mcs-dse/1] report.

    The design space of the dissertation's tables trades three costs:
    total data pins, pipe length (control steps) and functional units.
    A feasible outcome is {e dominated} when another feasible outcome is
    no worse on all three axes and strictly better on at least one; the
    frontier is every undominated feasible point, in submission order.

    The report deliberately contains nothing environment-dependent (no
    wall times, no worker counts): for a fixed job list it is
    byte-identical whatever [~jobs] or cache state produced the
    outcomes. *)

type point = { pins : int; pipe : int; fus : int }

val point_of : Outcome.t -> point option
(** [None] unless the outcome is feasible. *)

val dominates : point -> point -> bool
(** [dominates a b] — [a] is at least as good everywhere and strictly
    better somewhere (minimization on all three axes). *)

val frontier : Outcome.t list -> Outcome.t list
(** Undominated feasible outcomes, stable in input order (duplicates of
    the same point all survive — neither strictly dominates). *)

val best :
  Outcome.t list ->
  [ `Pins | `Pipe | `Fus ] ->
  Outcome.t option
(** The feasible outcome minimizing the given axis; ties break toward
    the other two axes (lexicographically), then toward submission
    order, so the choice is deterministic. *)

val report : Outcome.t list -> Mcs_obs.Report_json.t
(** The [mcs-dse/1] JSON report: a summary by status, every outcome in
    submission order (with a [pareto] flag), the frontier's canonical
    job encodings, and per-axis best points. *)

open Mcs_cdfg
module F = Mcs_flow.Flow
module Artifact = Mcs_flow.Artifact
module Diag = Mcs_flow.Diag
module Sched = Mcs_sched.Schedule
module LS = Mcs_sched.List_sched
module SP = Mcs_core.Simple_part
module R = Mcs_connect.Reassign
module B = Mcs_check.Bottleneck
module Budget = Mcs_resilience.Budget
module M = Mcs_obs.Metrics

let m_iters = M.counter "refine.iterations"
let m_accepted = M.counter "refine.accepted"
let m_rejected = M.counter "refine.rejected"

type iteration = {
  index : int;
  bottleneck : string;
  action : string;
  objective_before : int;
  objective_after : int option;
  accepted : bool;
  reason : string;
  pivots : int;
  nodes : int;
  wall_ms : float;
}

type outcome = {
  result : F.result;
  iterations : iteration list;
  improved : bool;
  fixed_point : bool;
  exhausted : bool;
}

(* The system-wide quality measure, identical to the Ch. 6 candidate
   ordering: pins dominate (the paper's whole objective), pipe length
   breaks ties. *)
let objective (r : F.result) = (1000 * F.pins_total r) + r.F.pipe_length

(* A move either produces a candidate result, or fails with a reason and
   a transient flag: transient failures (budget exhaustion in the slice)
   leave the move armed for a later, better-funded iteration; permanent
   ones kill it. *)
type move_failure = { why : string; transient : bool }

(* ---- move: re-climb the degradation ladder ---- *)

(* Re-run the whole flow with the ladder disabled ([fallback = false]) and
   the strict checker injected: either the slice affords the full-quality
   solve now (warm-started by the Warm registry from every earlier
   attempt), or the run fails typed and the move reports why. *)
let reclimb ~slice ~policy spec (r : F.result) =
  let policy' =
    { policy with F.budget = slice; F.fallback = false; F.refine = 0 }
  in
  match
    Mcs_check.run ~level:Mcs_flow.Pass.Strict ~policy:policy' r.F.flow spec
  with
  | Ok r' -> Ok r'
  | Error d ->
      Error
        { why = Diag.message d; transient = d.Diag.code = Diag.Exhausted }

(* ---- move: freeze the prefix, re-schedule the tail ---- *)

(* Only the results whose scheduler/connection pair we can replay locally:
   Ch. 3 (pin-hook + Theorem 3.1 bundles) and Ch. 4 (bus reassignment over
   a fixed connection).  Ch. 5 derives its resources from the schedule and
   Ch. 6 owns a global slot-cap sweep — they re-climb instead. *)
let tail_applicable (r : F.result) =
  match (r.F.flow, r.F.connection) with
  | (F.Ch3 | F.Ch4), (Artifact.Bundles _ | Artifact.Buses _) -> true
  | _ -> false

(* Keep only the ladder history on a spliced candidate: phase-check
   diagnostics describe the old artifacts and would be stale. *)
let keep_history (r : F.result) =
  List.filter (fun (d : Diag.t) -> d.Diag.code = Diag.Degraded) r.F.diags

let splice spec (r : F.result) sch' conn' =
  {
    r with
    F.schedule = sch';
    connection = conn';
    pins = F.pins_of ~n_partitions:(Cdfg.n_partitions spec.F.cdfg) conn';
    pipe_length = Sched.pipe_length sch';
    diags = keep_history r;
  }

(* Freeze every operation finishing before the tail window as an exact
   replay ([LS.run ~fixed]), floor the window's operations at the cut (so
   a free placement can never steal a frozen operation's wheel or bus
   slot before it is replayed), and re-schedule the tail with the flow's
   own communication hook.  Several deterministic priority perturbations
   per attempt — the §5.3 postponement trick — and the best objective
   wins. *)
let resched_tail ~slice ~window spec (r : F.result) =
  let cdfg = spec.F.cdfg and mlib = spec.F.mlib and cons = spec.F.cons in
  let rate = spec.F.rate in
  let sch = r.F.schedule in
  let pl = r.F.pipe_length in
  let cut = max 0 (pl - window) in
  let fixed =
    List.filter_map
      (fun op ->
        if Sched.is_scheduled sch op && Sched.cstep sch op < cut then
          Some (op, Sched.cstep sch op)
        else None)
      (Cdfg.ops cdfg)
  in
  let n = Cdfg.n_ops cdfg in
  let floor = Array.make n cut in
  let try_once bias =
    match r.F.connection with
    | Artifact.Bundles _ -> (
        let io_hook = SP.hook ~budget:slice cdfg cons ~rate in
        match
          LS.run ~budget:slice cdfg mlib cons ~rate ~io_hook ?priority_bias:bias
            ~min_cstep:floor ~fixed ()
        with
        | Error f -> Error f
        | Ok sch' -> (
            let links = SP.Theorem31.connect sch' in
            match SP.Theorem31.check sch' links with
            | Error _ -> Error { LS.kind = LS.Horizon 0; reason = "Theorem 3.1 replay failed"; at_cstep = 0; partial = sch' }
            | Ok () -> Ok (sch', Artifact.Bundles links)))
    | Artifact.Buses { conn; initial; assignment; _ } -> (
        (* Replay against the incumbent's final assignment, statically:
           the frozen prefix then commits exactly as it originally did
           (the dynamic planner's conservative repack gate cannot refuse
           a known-feasible allocation), and tail operations keep their
           buses while the scheduler explores timing.  Remapping values
           across buses is the re-climb move's job. *)
        let pinned =
          List.map
            (fun (op, h) ->
              match List.assoc_opt op assignment with
              | Some h' -> (op, h')
              | None -> (op, h))
            initial
        in
        let dyn =
          R.create ~budget:slice cdfg conn ~rate ~initial:pinned
            ~dynamic:false
        in
        match
          LS.run ~budget:slice cdfg mlib cons ~rate ~io_hook:(R.hook dyn)
            ?priority_bias:bias ~min_cstep:floor ~fixed ()
        with
        | Error f -> Error f
        | Ok sch' ->
            Ok
              ( sch',
                Artifact.Buses
                  {
                    conn;
                    initial;
                    assignment = R.final_assignment dyn;
                    allocation = R.allocation_table dyn;
                  } ))
    | Artifact.Subbuses _ ->
        Error
          {
            LS.kind = LS.Horizon 0;
            reason = "tail re-scheduling does not apply to sub-bus results";
            at_cstep = 0;
            partial = sch;
          }
  in
  let biases =
    [
      None;
      Some (Array.init n (fun i -> ((i * 7919) mod 7) - 3));
      Some (Array.init n (fun i -> ((i * 104729) mod 11) - 5));
    ]
  in
  let candidates, failures =
    List.fold_left
      (fun (oks, errs) bias ->
        match try_once bias with
        | exception Invalid_argument m ->
            (oks, { why = m; transient = false } :: errs)
        | exception Budget.Out_of_budget e ->
            (oks, { why = Budget.message e; transient = true } :: errs)
        | Ok (sch', conn') -> (splice spec r sch' conn' :: oks, errs)
        | Error (f : LS.failure) ->
            let transient =
              match f.LS.kind with LS.Exhausted _ -> true | _ -> false
            in
            (oks, { why = f.LS.reason; transient } :: errs))
      ([], []) biases
  in
  match Mcs_util.Listx.min_by objective candidates with
  | Some best -> Ok best
  | None -> (
      match failures with
      | f :: _ -> Error f
      | [] -> Error { why = "no trial ran"; transient = false })

(* ---- the driver ---- *)

let emit_iteration it =
  if Mcs_obs.Events.on () then
    Mcs_obs.Events.emit ~cat:"refine" "iteration"
      ~args:
        [
          ("index", Mcs_obs.Events.Int it.index);
          ("bottleneck", Mcs_obs.Events.Str it.bottleneck);
          ("action", Mcs_obs.Events.Str it.action);
          ("objective", Mcs_obs.Events.Int it.objective_before);
          ("accepted", Mcs_obs.Events.Bool it.accepted);
          ("pivots", Mcs_obs.Events.Int it.pivots);
        ]

let improve ?max_iters ?(policy = F.default_policy) (spec : F.spec)
    (r0 : F.result) =
  let cap = match max_iters with Some n -> n | None -> policy.F.refine in
  let no_op =
    {
      result = r0;
      iterations = [];
      improved = false;
      fixed_point = false;
      exhausted = false;
    }
  in
  if cap <= 0 then no_op
  else
    Mcs_obs.Trace.with_span "refine" @@ fun () ->
    let cdfg = spec.F.cdfg and mlib = spec.F.mlib and cons = spec.F.cons in
    let parent = policy.F.budget in
    let reclimb_dead = ref false in
    let tail_window = ref 0 in
    let tail_dead = ref false in
    let iters = ref [] in
    let r = ref r0 in
    let exhausted = ref false in
    let fixed_point = ref false in
    let i = ref 0 in
    while (not !exhausted) && (not !fixed_point) && !i < cap do
      incr i;
      (* Refine only while the deadline still has slack: a request about
         to expire gets its (degraded) answer instead of a late one. *)
      (match Budget.remaining_ms parent with
      | Some ms when ms < 2.0 -> exhausted := true
      | _ -> ());
      if not !exhausted then begin
        let bots = B.analyze cdfg cons !r in
        let move =
          List.find_map
            (fun (b : B.t) ->
              match b.B.kind with
              | B.Ladder _ when not !reclimb_dead -> Some (b, `Reclimb)
              | B.Critical_tail _ | B.Pin_pressure _ | B.Fu_slack _
                when (not !tail_dead) && tail_applicable !r ->
                  Some (b, `Tail)
              | _ -> None)
            bots
        in
        match move with
        | None -> fixed_point := true
        | Some (b, act) ->
            let t0 = Unix.gettimeofday () in
            let slice = Budget.slice ~frac:0.5 parent in
            let before = objective !r in
            let action, attempt =
              match act with
              | `Reclimb ->
                  ( "reclimb",
                    fun () -> reclimb ~slice ~policy spec !r )
              | `Tail ->
                  let pl = (!r).F.pipe_length in
                  let w =
                    if !tail_window = 0 then max 2 (pl / 4) else !tail_window
                  in
                  tail_window := w;
                  ( Printf.sprintf "resched-tail:w%d" w,
                    fun () -> resched_tail ~slice ~window:w spec !r )
            in
            let outcome =
              try attempt () with
              | Budget.Out_of_budget e ->
                  Error { why = Budget.message e; transient = true }
              | Invalid_argument m | Failure m ->
                  Error { why = m; transient = false }
            in
            Budget.absorb parent slice;
            let pivots = Budget.spent_pivots slice
            and nodes = Budget.spent_nodes slice in
            let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
            let record ~objective_after ~accepted ~reason =
              let it =
                {
                  index = !i;
                  bottleneck = B.describe b;
                  action;
                  objective_before = before;
                  objective_after;
                  accepted;
                  reason;
                  pivots;
                  nodes;
                  wall_ms;
                }
              in
              M.incr m_iters;
              if accepted then M.incr m_accepted else M.incr m_rejected;
              emit_iteration it;
              iters := it :: !iters
            in
            let kill_move ~transient =
              if not transient then
                match act with
                | `Reclimb -> reclimb_dead := true
                | `Tail ->
                    (* Widen the window before giving up: a larger
                       subproblem sees more slack. *)
                    let pl = (!r).F.pipe_length in
                    if !tail_window >= pl then tail_dead := true
                    else tail_window := min pl (!tail_window * 2)
            in
            (match outcome with
            | Error f ->
                record ~objective_after:None ~accepted:false ~reason:f.why;
                kill_move ~transient:f.transient;
                if f.transient then begin
                  (* The slice exhausted; without wall slack left the
                     parent is done too. *)
                  match Budget.remaining_ms parent with
                  | Some ms when ms < 2.0 -> exhausted := true
                  | Some _ -> ()
                  | None ->
                      (* No deadline: a transient failure cannot get more
                         funding, treat the move as dead. *)
                      kill_move ~transient:false
                end
            | Ok cand ->
                let after = objective cand in
                let errs =
                  List.filter Diag.is_error
                    (Mcs_check.check_result cdfg mlib cons cand)
                in
                if errs <> [] then begin
                  record ~objective_after:(Some after) ~accepted:false
                    ~reason:
                      (Printf.sprintf "candidate fails strict check: %s"
                         (Diag.message (List.hd errs)));
                  kill_move ~transient:false
                end
                else if after < before then begin
                  record ~objective_after:(Some after) ~accepted:true
                    ~reason:"objective improved";
                  r := cand;
                  (* A new incumbent changes every bottleneck: re-arm. *)
                  tail_window := 0
                end
                else begin
                  record ~objective_after:(Some after) ~accepted:false
                    ~reason:"no objective improvement";
                  kill_move ~transient:false
                end)
      end
    done;
    {
      result = !r;
      iterations = List.rev !iters;
      improved = objective !r < objective r0;
      fixed_point = !fixed_point;
      exhausted = !exhausted;
    }

(** Feedback-guided iterative refinement: the anytime-improvement loop
    that closes the degradation ladder.

    {!improve} takes a flow result — typically one produced under a tight
    budget, possibly degraded — extracts the bottleneck subgraph from
    {!Mcs_check.Bottleneck} evidence, re-solves just that subproblem under
    a {e sliced} {!Mcs_resilience.Budget} (so a runaway move can never
    drain the caller's pool), and splices the solution back.  It repeats
    until the budget, a fixed point, or the iteration cap is hit.

    The loop is {e anytime}: a candidate is accepted only when it strictly
    improves the objective {e and} passes the strict checker, so the
    incumbent is checker-clean after every iteration and the caller can
    stop the loop whenever it likes — including by deadline.

    Moves, chosen by bottleneck score:

    - {e reclimb} (ladder evidence): re-run the whole flow with the
      ladder disabled, warm-started by the {!Mcs_ilp.Warm} registry from
      every earlier attempt — the degraded run's own pivots pay forward;
    - {e resched-tail} (critical-tail / pin-pressure / FU-slack evidence,
      Ch. 3 and Ch. 4 results): freeze every operation before the tail
      window as an exact {!Mcs_sched.List_sched} replay ([~fixed]),
      re-schedule the window with the flow's own communication hook under
      deterministic priority perturbations, rebuild the connection
      (Theorem 3.1 bundles, or bus reassignment over the fixed
      connection), and keep the best. *)

type iteration = {
  index : int;  (** 1-based *)
  bottleneck : string;  (** {!Mcs_check.Bottleneck.describe} label *)
  action : string;  (** ["reclimb"] or ["resched-tail:w<N>"] *)
  objective_before : int;
  objective_after : int option;  (** [None] when the move failed to run *)
  accepted : bool;
  reason : string;
  pivots : int;  (** simplex pivots the move's slice spent *)
  nodes : int;  (** branch & bound nodes the move's slice spent *)
  wall_ms : float;
}

type outcome = {
  result : Mcs_flow.Flow.result;
      (** the incumbent: [r0] itself when nothing was accepted *)
  iterations : iteration list;  (** in execution order *)
  improved : bool;
  fixed_point : bool;
      (** no applicable move was left — provably stuck at this quality
          under the available moves *)
  exhausted : bool;  (** the deadline ran out first *)
}

val objective : Mcs_flow.Flow.result -> int
(** [1000 * total pins + pipe length] — pins dominate, pipe length breaks
    ties (the Ch. 6 candidate ordering, promoted to the system-wide
    quality measure). *)

val improve :
  ?max_iters:int ->
  ?policy:Mcs_flow.Flow.policy ->
  Mcs_flow.Flow.spec ->
  Mcs_flow.Flow.result ->
  outcome
(** Refine [r0] for up to [max_iters] iterations (default
    [policy.refine]; [0] returns [r0] untouched with no iterations —
    bit-identical passthrough).  [policy.budget] is the parent pool:
    every iteration runs on a half-remaining slice whose spending is
    absorbed back, and the loop stops early when the pool's deadline has
    under ~2 ms of slack.  Never raises; never returns a result worse
    than [r0]. *)

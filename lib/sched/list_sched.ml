open Mcs_cdfg
module M = Mcs_obs.Metrics
module Budget = Mcs_resilience.Budget

let m_runs = M.counter "ls.runs"
let m_csteps = M.counter "ls.csteps"
let m_io_tests = M.counter "ls.io_feasibility_tests"
let g_ready_peak = M.gauge "ls.ready_peak"

let h_ready_size =
  M.histogram "ls.ready_size" ~buckets:[| 0; 1; 2; 4; 8; 16; 32; 64 |]

type io_hook = {
  io_can : Schedule.t -> Types.op_id -> cstep:int -> bool;
  io_commit : Schedule.t -> Types.op_id -> cstep:int -> unit;
}

let unconstrained_io =
  { io_can = (fun _ _ ~cstep:_ -> true); io_commit = (fun _ _ ~cstep:_ -> ()) }

type kind =
  | Horizon of int
  | Deadline_missed of Types.op_id * int
  | Missing_fu of int * string
  | Exhausted of Budget.exhausted

type failure = {
  kind : kind;
  reason : string;
  at_cstep : int;
  partial : Schedule.t;
}

(* A missing functional-unit allocation is detected deep inside the wheel
   lookup; carried to the boundary as an exception so it becomes a typed
   [failure] instead of the [Invalid_argument] it used to escape as. *)
exception No_fu of int * string

let priorities cdfg mlib =
  let n = Cdfg.n_ops cdfg in
  let g = Mcs_graph.Digraph.create n in
  List.iter
    (fun { Types.e_src; e_dst; degree } ->
      if degree = 0 then Mcs_graph.Digraph.add_edge g ~src:e_src ~dst:e_dst)
    (Cdfg.edges cdfg);
  Mcs_graph.Digraph.longest_path_from g ~weight:(Timing.op_cycles cdfg mlib)

let big = max_int / 4

(* Deadlines induced by recursive max-time constraints against already
   scheduled consumers, propagated backwards through degree-0 edges. *)
let deadlines sched cdfg mlib ~rate =
  let n = Cdfg.n_ops cdfg in
  let dl = Array.make n big in
  List.iter
    (fun (src, dst, bound) ->
      if Schedule.is_scheduled sched dst then
        dl.(src) <- min dl.(src) (Schedule.cstep sched dst + bound))
    (Timing.max_time_constraints cdfg mlib ~rate);
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          (* u must have finished before v starts (chaining would only give
             one step of slack back; stay conservative). *)
          dl.(u) <- min dl.(u) (dl.(v) - Timing.op_cycles cdfg mlib u))
        (Cdfg.succs cdfg u))
    (List.rev (Cdfg.topo_order cdfg));
  dl

let run ?(budget = Budget.unlimited) cdfg mlib cons ~rate ?max_csteps
    ?(io_hook = unconstrained_io) ?priority_bias ?min_cstep ?(fixed = []) () =
  M.incr m_runs;
  let sched = Schedule.create cdfg mlib ~rate in
  (* Fixed placements are replayed step by step as the main loop reaches
     their control step, so they charge the allocation wheels and the
     [io_hook] exactly like free operations — the free candidates then
     compete only for what is genuinely left. *)
  let fixed_at = Hashtbl.create 16 in
  let is_fixed = Hashtbl.create 16 in
  List.iter
    (fun (op, c) ->
      if c < 0 then invalid_arg "List_sched.run: fixed op at negative cstep";
      Hashtbl.replace is_fixed op ();
      Hashtbl.replace fixed_at c
        (op :: Option.value (Hashtbl.find_opt fixed_at c) ~default:[]))
    fixed;
  let max_csteps =
    match max_csteps with
    | Some m -> m
    | None -> (4 * Timing.critical_path_csteps cdfg mlib) + (4 * rate) + 16
  in
  let max_csteps = List.fold_left (fun m (_, c) -> max m c) max_csteps fixed in
  (* One allocation wheel set per (partition, optype). *)
  let wheels = Hashtbl.create 16 in
  let wheel partition optype =
    match Hashtbl.find_opt wheels (partition, optype) with
    | Some w -> w
    | None ->
        let fus = Constraints.fu_count cons ~partition ~optype in
        if fus = 0 then raise (No_fu (partition, optype));
        let w = Alloc_wheel.create ~fus ~rate in
        Hashtbl.add wheels (partition, optype) w;
        w
  in
  let prio = priorities cdfg mlib in
  (match priority_bias with
  | Some bias ->
      Array.iteri (fun i b -> prio.(i) <- prio.(i) + b) bias
  | None -> ());
  let floor_of op =
    match min_cstep with Some f -> f.(op) | None -> 0
  in
  let n = Cdfg.n_ops cdfg in
  let remaining = ref n in
  let failure = ref None in
  let fail kind reason at_cstep =
    if !failure = None then
      failure := Some { kind; reason; at_cstep; partial = sched }
  in
  let s = ref 0 in
  (try
  while !remaining > 0 && !failure = None do
    Budget.spend_pass budget;
    if !s > max_csteps then
      fail (Horizon max_csteps)
        (Printf.sprintf "no schedule within %d control steps" max_csteps)
        !s
    else begin
      let dl = deadlines sched cdfg mlib ~rate in
      (* Deadline already missed? *)
      List.iter
        (fun op ->
          if (not (Schedule.is_scheduled sched op)) && dl.(op) < !s then
            fail
              (Deadline_missed (op, dl.(op)))
              (Printf.sprintf
                 "maximum time constraint unsatisfiable: %s needed by cstep \
                  %d"
                 (Cdfg.name cdfg op) dl.(op))
              !s)
        (Cdfg.ops cdfg);
      (* Replay this step's fixed placements first: they own their
         resources before any free candidate is considered.  The inner
         fixpoint resolves same-step chains among fixed operations (a
         chained consumer only places after its producer has). *)
      (match Hashtbl.find_opt fixed_at !s with
      | None -> ()
      | Some ops when !failure = None ->
          let place op =
            let cstep0, offset0 = Schedule.min_start_with_chaining sched op in
            if
              cstep0 > !s
              || not
                   (List.for_all
                      (Schedule.is_scheduled sched)
                      (Cdfg.preds cdfg op))
            then false
            else begin
              let offset_in = if cstep0 = !s then offset0 else 0 in
              let cycles = Timing.op_cycles cdfg mlib op in
              let finish_ns =
                if cycles > 1 then 0
                else offset_in + Timing.op_delay_ns cdfg mlib op
              in
              let group = !s mod rate in
              (match Cdfg.node cdfg op with
              | Types.Func { optype; partition } ->
                  let w = wheel partition optype in
                  if Alloc_wheel.fit w ~group ~cycles = None then
                    invalid_arg
                      (Printf.sprintf
                         "List_sched.run: fixed operation %s does not fit \
                          its allocation wheel at control step %d"
                         (Cdfg.name cdfg op) !s);
                  let (_ : int) = Alloc_wheel.assign w ~group ~cycles in
                  ()
              | Types.Io _ -> io_hook.io_commit sched op ~cstep:!s);
              Schedule.set sched op ~cstep:!s ~finish_ns;
              decr remaining;
              true
            end
          in
          let pending = ref ops and again = ref true in
          while !again do
            again := false;
            pending :=
              List.filter (fun op -> if place op then (again := true; false) else true) !pending
          done;
          (match !pending with
          | [] -> ()
          | op :: _ ->
              invalid_arg
                (Printf.sprintf
                   "List_sched.run: fixed operation %s cannot be replayed at \
                    control step %d (unscheduled or later predecessor)"
                   (Cdfg.name cdfg op) !s))
      | Some _ -> ());
      if !failure = None then begin
        (* Operations scheduled early in this step can enable chained
           successors in the same step, so sweep until a fixpoint. *)
        let progress = ref true in
        while !progress && !failure = None do
          progress := false;
          let ready =
            List.filter
              (fun op ->
                (not (Schedule.is_scheduled sched op))
                && (not (Hashtbl.mem is_fixed op))
                && floor_of op <= !s
                && List.for_all
                     (Schedule.is_scheduled sched)
                     (Cdfg.preds cdfg op)
                && Schedule.earliest_start sched op <= !s)
              (Cdfg.ops cdfg)
          in
          let n_ready = List.length ready in
          M.observe h_ready_size n_ready;
          M.set_max g_ready_peak (float_of_int n_ready);
          let ordered =
            List.sort
              (fun a b ->
                let c = compare dl.(a) dl.(b) in
                if c <> 0 then c
                else
                  let c = compare prio.(b) prio.(a) in
                  if c <> 0 then c else compare a b)
              ready
          in
          List.iter
            (fun op ->
              if !failure = None && not (Schedule.is_scheduled sched op) then begin
                let cstep0, offset0 =
                  Schedule.min_start_with_chaining sched op
                in
                if cstep0 <= !s then begin
                  let offset_in = if cstep0 = !s then offset0 else 0 in
                  let cycles = Timing.op_cycles cdfg mlib op in
                  let finish_ns =
                    if cycles > 1 then 0
                    else offset_in + Timing.op_delay_ns cdfg mlib op
                  in
                  let group = !s mod rate in
                  match Cdfg.node cdfg op with
                  | Types.Func { optype; partition } ->
                      let w = wheel partition optype in
                      if Alloc_wheel.fit w ~group ~cycles <> None then begin
                        let (_ : int) = Alloc_wheel.assign w ~group ~cycles in
                        Schedule.set sched op ~cstep:!s ~finish_ns;
                        decr remaining;
                        progress := true
                      end
                  | Types.Io _ ->
                      M.incr m_io_tests;
                      if io_hook.io_can sched op ~cstep:!s then begin
                        io_hook.io_commit sched op ~cstep:!s;
                        Schedule.set sched op ~cstep:!s ~finish_ns;
                        decr remaining;
                        progress := true
                      end
                end
              end)
            ordered
        done;
        M.incr m_csteps;
        incr s
      end
    end
  done
  with
  | No_fu (partition, optype) ->
      fail
        (Missing_fu (partition, optype))
        (Printf.sprintf "no %s units allocated in partition %d" optype
           partition)
        !s
  | Budget.Out_of_budget e ->
      (* Raised by our own pass budget or from inside an [io_hook] (the
         pin-ILP feasibility query, bus reassignment matching). *)
      fail (Exhausted e) ("list scheduling: " ^ Budget.message e) !s);
  match !failure with
  | Some f -> Error f
  | None -> Ok sched

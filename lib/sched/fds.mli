(** Force-directed scheduling [PK89] adapted to partitioned pipelined
    designs, as used in Chapter 5: all partitions are scheduled
    simultaneously under a global (initiation rate, pipe length) pair, and
    the scheduler balances, per partition, the distribution graphs of every
    functional-unit type plus the input-pin and output-pin usage implied by
    I/O operations (an I/O operation loads both the output distribution of
    its source chip and the input distribution of its destination chip,
    weighted by bit width — §5.1).

    Resource constraints are not enforced; the point is to {e minimize} the
    resources the schedule implies.  Use {!fu_requirements} and the
    Chapter 5 connection synthesis to read them off afterwards. *)

open Mcs_cdfg

type error =
  | Infeasible of string
      (** no schedule exists under the (rate, pipe length) pair *)
  | Chaining_overflow of Types.op_id
      (** schedule materialization found an operation whose chained delay
          exceeds the stage time — a malformed module library or design *)
  | Exhausted of Mcs_resilience.Budget.exhausted
      (** the pass/wall budget ran out (or the [exhaust-fds] fault is
          injected) before the scheduler converged *)

val error_message : Cdfg.t -> error -> string

val run :
  ?budget:Mcs_resilience.Budget.t ->
  Cdfg.t ->
  Module_lib.t ->
  rate:int ->
  pipe_length:int ->
  unit ->
  (Schedule.t, error) result
(** Fails when the pipe length cannot accommodate the critical path or the
    recursive-edge maximum time constraints.  [budget] charges one pass
    per placement round and one per candidate force evaluation. *)

val fu_requirements : Schedule.t -> ((int * string) * int) list
(** Functional units needed to execute the schedule, per (partition,
    operation type): first-fit packing of operations onto allocation wheels,
    so multi-cycle fragmentation is accounted for. *)

val frames :
  Cdfg.t ->
  Module_lib.t ->
  rate:int ->
  pipe_length:int ->
  fixed:int option array ->
  (int array * int array) option
(** Chaining-aware (ASAP, ALAP) start-step windows under the given fixed
    assignments and the recursive-edge constraints; [None] if inconsistent.
    Exposed for the conditional-sharing heuristic of §7.2 and for tests. *)

(** A (possibly partial) pipelined schedule: the control step and intra-step
    combinational offset of every operation, for a design with a fixed
    initiation rate.

    Operations scheduled in the same {e control step group} (steps congruent
    mod the initiation rate) overlap in steady state and cannot share
    hardware (§2.3.1). *)

open Mcs_cdfg

type t

val create : Cdfg.t -> Module_lib.t -> rate:int -> t

val copy : t -> t
(** An independent snapshot: mutations of either side never show through.
    The refinement driver copies before speculatively re-scheduling. *)

val cdfg : t -> Cdfg.t
val mlib : t -> Module_lib.t
val rate : t -> int

val is_scheduled : t -> Types.op_id -> bool
val cstep : t -> Types.op_id -> int
(** @raise Invalid_argument if the operation is not scheduled. *)

val finish_ns : t -> Types.op_id -> int
val group : t -> Types.op_id -> int
(** [cstep mod rate]. *)

val set : t -> Types.op_id -> cstep:int -> finish_ns:int -> unit
val unset : t -> Types.op_id -> unit

val all_scheduled : t -> bool
val pipe_length : t -> int
(** [1 + max (cstep + cycles - 1)] over scheduled operations (0 if none). *)

val ops_at_group : t -> int -> Types.op_id list
(** Scheduled operations whose {e starting} step falls in the group. *)

val value_available : t -> Types.op_id -> reader_cstep:int -> bool
(** True when the result of scheduled operation [op] is latched in a
    register before control step [reader_cstep] begins. *)

val chain_offset : t -> Types.op_id -> at_cstep:int -> int
(** Combinational offset a consumer starting in [at_cstep] must wait for
    before reading [op]'s result: [finish_ns op] when the value is produced
    combinationally in that very step, 0 once registered. *)

val earliest_start : t -> Types.op_id -> int
(** Smallest control step at which the operation could start given its
    currently scheduled degree-0 predecessors (ignores resources; 0 when no
    predecessor is scheduled).  Chaining-aware only in the sense that a
    same-step start is allowed when every predecessor value either is
    registered or can legally chain. *)

val min_start_with_chaining : t -> Types.op_id -> int * int
(** [(cstep, offset_ns)] — as {!earliest_start} plus the incoming
    combinational offset at that step. *)

val verify : t -> (unit, string) result
(** Full invariant check of a complete schedule: precedence (with chaining
    legality and stage-time fit), multi-cycle no-chaining, and recursive-edge
    maximum time constraints.  Used by the test suite and after every
    synthesis flow. *)

val pp : Format.formatter -> t -> unit

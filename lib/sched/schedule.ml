open Mcs_cdfg

type t = {
  cdfg : Cdfg.t;
  mlib : Module_lib.t;
  rate : int;
  csteps : int array; (* -1 = unscheduled *)
  finish : int array;
}

let create cdfg mlib ~rate =
  if rate < 1 then invalid_arg "Schedule.create: rate must be >= 1";
  {
    cdfg;
    mlib;
    rate;
    csteps = Array.make (Cdfg.n_ops cdfg) (-1);
    finish = Array.make (Cdfg.n_ops cdfg) 0;
  }

let copy t =
  { t with csteps = Array.copy t.csteps; finish = Array.copy t.finish }

let cdfg t = t.cdfg
let mlib t = t.mlib
let rate t = t.rate
let is_scheduled t op = t.csteps.(op) >= 0

let cstep t op =
  if not (is_scheduled t op) then invalid_arg "Schedule.cstep: unscheduled";
  t.csteps.(op)

let finish_ns t op =
  if not (is_scheduled t op) then invalid_arg "Schedule.finish_ns: unscheduled";
  t.finish.(op)

let group t op =
  let s = cstep t op in
  ((s mod t.rate) + t.rate) mod t.rate

let set t op ~cstep ~finish_ns =
  t.csteps.(op) <- cstep;
  t.finish.(op) <- finish_ns

let unset t op = t.csteps.(op) <- -1
let all_scheduled t = Array.for_all (fun s -> s >= 0) t.csteps
let cycles t op = Timing.op_cycles t.cdfg t.mlib op
let delay t op = Timing.op_delay_ns t.cdfg t.mlib op

let pipe_length t =
  let worst = ref (-1) in
  Array.iteri
    (fun op s -> if s >= 0 then worst := max !worst (s + cycles t op - 1))
    t.csteps;
  !worst + 1

let ops_at_group t g =
  List.filter
    (fun op -> is_scheduled t op && group t op = g)
    (Cdfg.ops t.cdfg)

let value_available t op ~reader_cstep =
  is_scheduled t op && t.csteps.(op) + cycles t op <= reader_cstep

let chain_offset t op ~at_cstep =
  if value_available t op ~reader_cstep:at_cstep then 0
  else if t.csteps.(op) = at_cstep && cycles t op = 1 then t.finish.(op)
  else
    invalid_arg "Schedule.chain_offset: value not readable at this step"

(* Earliest start of [op] given its scheduled predecessors. *)
let min_start_with_chaining t op =
  let stage = Module_lib.stage_ns t.mlib in
  let dv = delay t op in
  let multi = cycles t op > 1 in
  let ps = List.filter (is_scheduled t) (Cdfg.preds t.cdfg op) in
  let cstep0 =
    List.fold_left
      (fun acc p ->
        let chainable =
          (not multi) && cycles t p = 1 && t.finish.(p) + dv <= stage
        in
        let need =
          if chainable then t.csteps.(p) else t.csteps.(p) + cycles t p
        in
        max acc need)
      0 ps
  in
  if multi then (cstep0, 0)
  else
    let offset =
      List.fold_left
        (fun acc p ->
          if
            t.csteps.(p) = cstep0
            && not (value_available t p ~reader_cstep:cstep0)
          then max acc t.finish.(p)
          else acc)
        0 ps
    in
    if offset + dv <= stage then (cstep0, offset)
    else (cstep0 + 1, 0)

let earliest_start t op = fst (min_start_with_chaining t op)

let verify t =
  let stage = Module_lib.stage_ns t.mlib in
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let check_op op k =
    if not (is_scheduled t op) then
      err "operation %s is unscheduled" (Cdfg.name t.cdfg op)
    else k ()
  in
  let rec check_edges = function
    | [] -> Ok ()
    | { Types.e_src; e_dst; degree } :: rest ->
        check_op e_src @@ fun () ->
        check_op e_dst @@ fun () ->
        let s_src = t.csteps.(e_src) and s_dst = t.csteps.(e_dst) in
        if degree = 0 then begin
          let registered = s_src + cycles t e_src <= s_dst in
          let chained =
            s_src = s_dst
            && cycles t e_src = 1
            && cycles t e_dst = 1
            && t.finish.(e_src) <= t.finish.(e_dst) - delay t e_dst
          in
          if not (registered || chained) then
            err "precedence violated: %s (cstep %d) -> %s (cstep %d)"
              (Cdfg.name t.cdfg e_src) s_src (Cdfg.name t.cdfg e_dst) s_dst
          else check_edges rest
        end
        else begin
          (* Maximum time constraint of §7.1. *)
          let bound = (degree * t.rate) - cycles t e_src in
          if s_src - s_dst > bound then
            err
              "recursive max-time violated: %s (cstep %d) vs %s (cstep %d), \
               bound %d"
              (Cdfg.name t.cdfg e_src) s_src (Cdfg.name t.cdfg e_dst) s_dst
              bound
          else check_edges rest
        end
  in
  let rec check_fit = function
    | [] -> check_edges (Cdfg.edges t.cdfg)
    | op :: rest ->
        check_op op @@ fun () ->
        if cycles t op = 1 && t.finish.(op) > stage then
          err "operation %s overflows its stage" (Cdfg.name t.cdfg op)
        else if cycles t op = 1 && t.finish.(op) < delay t op then
          err "operation %s has an impossible finish offset"
            (Cdfg.name t.cdfg op)
        else check_fit rest
  in
  check_fit (Cdfg.ops t.cdfg)

let pp ppf t =
  let by_step =
    Mcs_util.Listx.group_by
      (fun op -> t.csteps.(op))
      (List.filter (is_scheduled t) (Cdfg.ops t.cdfg))
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) by_step in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (s, l) ->
      Format.fprintf ppf "cstep %2d (group %d): %s@," s
        (((s mod t.rate) + t.rate) mod t.rate)
        (String.concat " " (List.map (Cdfg.name t.cdfg) l)))
    sorted;
  Format.fprintf ppf "@]"

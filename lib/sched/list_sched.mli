(** Resource-constrained pipelined list scheduling (Fig. 3.4), the scheduling
    engine of Chapters 3, 4 and 6.

    All partitions are scheduled simultaneously.  Functional operations
    compete for the per-chip functional units (multi-cycle units through
    {!Alloc_wheel}); I/O operations are additionally gated by a pluggable
    communication-resource hook — the pin-allocation feasibility checker in
    Chapter 3, communication-bus availability (with dynamic reassignment) in
    Chapters 4 and 6.  An I/O operation the hook rejects is postponed to a
    later control step, exactly as in the paper's flow chart.

    Data recursive edges impose maximum time constraints; the scheduler
    tracks the induced deadlines and fails — like the paper's greedy list
    scheduler — when a deadline can no longer be met. *)

open Mcs_cdfg

type io_hook = {
  io_can : Schedule.t -> Types.op_id -> cstep:int -> bool;
      (** May the I/O operation be scheduled here?  Must be side-effect
          free. *)
  io_commit : Schedule.t -> Types.op_id -> cstep:int -> unit;
      (** Called exactly once right before the operation is recorded. *)
}

val unconstrained_io : io_hook
(** Accepts everything (pure functional-unit-constrained scheduling). *)

type kind =
  | Horizon of int  (** no schedule within this many control steps *)
  | Deadline_missed of Types.op_id * int
      (** recursive max-time constraint unsatisfiable: op needed by cstep *)
  | Missing_fu of int * string
      (** a functional operation has no functional unit at all in its
          (partition, optype) — a constraint-set bug rather than a
          scheduling failure, but reported as a typed failure instead of
          the [Invalid_argument] it used to raise *)
  | Exhausted of Mcs_resilience.Budget.exhausted
      (** the pass/wall budget ran out, here or inside an [io_hook] *)

type failure = {
  kind : kind;
  reason : string;  (** human-readable rendering of [kind] *)
  at_cstep : int;
  partial : Schedule.t;  (** state at the point of failure, for diagnosis *)
}

val run :
  ?budget:Mcs_resilience.Budget.t ->
  Cdfg.t ->
  Module_lib.t ->
  Constraints.t ->
  rate:int ->
  ?max_csteps:int ->
  ?io_hook:io_hook ->
  ?priority_bias:int array ->
  ?min_cstep:int array ->
  ?fixed:(Types.op_id * int) list ->
  unit ->
  (Schedule.t, failure) result
(** [priority_bias] perturbs the static priorities (added per operation);
    [min_cstep] forbids scheduling an operation before the given control
    step — the paper's manual trick of "postponing some of the operations
    ... and rerunning" (§5.3), mechanized by [Mcs_core.Improve].
    [fixed] replays the given [(op, cstep)] placements verbatim — charging
    allocation wheels and the [io_hook]'s commit exactly as if the
    scheduler had chosen them — while the remaining operations are
    scheduled freely around them; this is the subproblem-extraction entry
    point of [Mcs_refine] (freeze the non-bottleneck prefix, re-schedule
    the tail).  Fixed placements must come from a valid schedule over the
    same resources: every predecessor of a fixed operation must itself be
    fixed no later, or the run raises [Invalid_argument].
    [budget] charges one pass per control step; a
    {!Mcs_resilience.Budget.Out_of_budget} escaping the [io_hook] is also
    caught here and reported as an [Exhausted] failure. *)

val priorities : Cdfg.t -> Module_lib.t -> int array
(** The static priority function: longest path (in cycles) from each
    operation to any sink, the classic list-scheduling urgency measure. *)

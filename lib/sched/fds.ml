open Mcs_cdfg
module M = Mcs_obs.Metrics
module Budget = Mcs_resilience.Budget
module Fault = Mcs_resilience.Fault

type error =
  | Infeasible of string
  | Chaining_overflow of Types.op_id
  | Exhausted of Budget.exhausted

(* The schedule-materialization chaining overflow used to escape as
   [Failure]; a dedicated exception keeps the op id typed on its way to
   the boundary [Error]. *)
exception Chaining of Types.op_id

let m_runs = M.counter "fds.runs"
let m_frame_passes = M.counter "fds.frame_passes"
let m_dg_builds = M.counter "fds.dg_builds"
let m_force_evals = M.counter "fds.force_evals"
let m_placements = M.counter "fds.placements"
let m_rejected_fixes = M.counter "fds.rejected_fixes"

(* --- Chaining-aware clamped timing passes --- *)

(* Earliest start steps, each at least its [lb], over an arbitrary
   (order, preds) view of the graph. *)
let clamped_earliest cdfg mlib ~order ~preds ~lb =
  let stage = Module_lib.stage_ns mlib in
  let n = Cdfg.n_ops cdfg in
  let cstep = Array.make n 0 in
  let finish = Array.make n 0 in
  let delay = Timing.op_delay_ns cdfg mlib in
  let cycles = Timing.op_cycles cdfg mlib in
  let place v =
    let dv = delay v in
    let multi = cycles v > 1 in
    let ps = preds v in
    let c0 =
      List.fold_left
        (fun acc p ->
          let chainable =
            (not multi) && cycles p = 1 && finish.(p) + dv <= stage
          in
          let need = if chainable then cstep.(p) else cstep.(p) + cycles p in
          max acc need)
        lb.(v) ps
    in
    if multi then begin
      cstep.(v) <- c0;
      finish.(v) <- 0
    end
    else begin
      let offset =
        List.fold_left
          (fun acc p ->
            if cstep.(p) = c0 && cstep.(p) + cycles p > c0 then
              max acc finish.(p)
            else acc)
          0 ps
      in
      if offset + dv <= stage then begin
        cstep.(v) <- c0;
        finish.(v) <- offset + dv
      end
      else begin
        cstep.(v) <- c0 + 1;
        finish.(v) <- dv
      end
    end
  in
  List.iter place order;
  cstep

let frames cdfg mlib ~rate ~pipe_length ~fixed =
  let n = Cdfg.n_ops cdfg in
  let cycles = Timing.op_cycles cdfg mlib in
  let lb = Array.make n 0 in
  let ub = Array.init n (fun v -> pipe_length - cycles v) in
  Array.iteri
    (fun v f ->
      match f with
      | None -> ()
      | Some s ->
          lb.(v) <- max lb.(v) s;
          ub.(v) <- min ub.(v) s)
    fixed;
  let constraints = Timing.max_time_constraints cdfg mlib ~rate in
  let feasible = ref true in
  let changed = ref true in
  let iters = ref 0 in
  while !feasible && !changed && !iters < 4 * n do
    changed := false;
    incr iters;
    M.incr m_frame_passes;
    if Mcs_obs.Events.on () then
      Mcs_obs.Events.emit ~cat:"fds" "frame.pass"
        ~args:[ ("pass", Mcs_obs.Events.Int !iters) ];
    (* Forward pass tightens lower bounds. *)
    let e =
      clamped_earliest cdfg mlib ~order:(Cdfg.topo_order cdfg)
        ~preds:(Cdfg.preds cdfg) ~lb
    in
    Array.iteri
      (fun v s ->
        if s > lb.(v) then begin
          lb.(v) <- s;
          changed := true
        end)
      e;
    (* Backward pass tightens upper bounds: earliest start in reversed time
       with reversed lower bound pl - ub - cycles. *)
    let lb_rev = Array.init n (fun v -> pipe_length - ub.(v) - cycles v) in
    let r =
      clamped_earliest cdfg mlib
        ~order:(List.rev (Cdfg.topo_order cdfg))
        ~preds:(Cdfg.succs cdfg) ~lb:lb_rev
    in
    Array.iteri
      (fun v rs ->
        let latest = pipe_length - rs - cycles v in
        if latest < ub.(v) then begin
          ub.(v) <- latest;
          changed := true
        end)
      r;
    (* Recursive max-time constraints couple the windows. *)
    List.iter
      (fun (src, dst, bound) ->
        if ub.(dst) + bound < ub.(src) then begin
          ub.(src) <- ub.(dst) + bound;
          changed := true
        end;
        if lb.(src) - bound > lb.(dst) then begin
          lb.(dst) <- lb.(src) - bound;
          changed := true
        end)
      constraints;
    for v = 0 to n - 1 do
      if lb.(v) > ub.(v) then feasible := false
    done
  done;
  if (not !feasible) || !changed then None else Some (lb, ub)

(* --- Distribution graphs and forces --- *)

type rkey = Fu of int * string | In_pins of int | Out_pins of int

let contributions cdfg op =
  match Cdfg.node cdfg op with
  | Types.Func { optype; partition } -> [ (Fu (partition, optype), 1.0) ]
  | Types.Io { src; dst; width; _ } ->
      [ (Out_pins src, float_of_int width); (In_pins dst, float_of_int width) ]

(* DG per (resource key, control-step group): each op spreads uniformly over
   its window, occupying [cycles] consecutive groups per candidate step. *)
let build_dgs cdfg mlib ~rate (lb, ub) =
  M.incr m_dg_builds;
  let dgs : (rkey, float array) Hashtbl.t = Hashtbl.create 16 in
  let dg key =
    match Hashtbl.find_opt dgs key with
    | Some a -> a
    | None ->
        let a = Array.make rate 0.0 in
        Hashtbl.add dgs key a;
        a
  in
  List.iter
    (fun op ->
      let w = ub.(op) - lb.(op) + 1 in
      let p = 1.0 /. float_of_int w in
      let cyc = Timing.op_cycles cdfg mlib op in
      List.iter
        (fun (key, weight) ->
          let a = dg key in
          for s = lb.(op) to ub.(op) do
            for k = 0 to cyc - 1 do
              let g = (s + k) mod rate in
              a.(g) <- a.(g) +. (p *. weight)
            done
          done)
        (contributions cdfg op))
    (Cdfg.ops cdfg);
  dgs

(* Self force of moving [op]'s window from [w0] to [w1]. *)
let window_force cdfg mlib ~rate dgs op (lb0, ub0) (lb1, ub1) =
  M.incr m_force_evals;
  let cyc = Timing.op_cycles cdfg mlib op in
  let delta = Array.make rate 0.0 in
  let spread (lo, hi) sign =
    let p = sign /. float_of_int (hi - lo + 1) in
    for s = lo to hi do
      for k = 0 to cyc - 1 do
        let g = (s + k) mod rate in
        delta.(g) <- delta.(g) +. p
      done
    done
  in
  spread (lb1, ub1) 1.0;
  spread (lb0, ub0) (-1.0);
  List.fold_left
    (fun acc (key, weight) ->
      match Hashtbl.find_opt dgs key with
      | None -> acc
      | Some a ->
          let f = ref 0.0 in
          for g = 0 to rate - 1 do
            f := !f +. (a.(g) *. delta.(g))
          done;
          acc +. (weight *. !f))
    0.0
    (contributions cdfg op)

let run ?(budget = Budget.unlimited) cdfg mlib ~rate ~pipe_length () =
  Mcs_obs.Trace.with_span "fds.run" @@ fun () ->
  M.incr m_runs;
  match Fault.exhaust_fds () with
  | Some e -> Error (Exhausted e)
  | None -> (
  let n = Cdfg.n_ops cdfg in
  let fixed = Array.make n None in
  let cycles = Timing.op_cycles cdfg mlib in
  match frames cdfg mlib ~rate ~pipe_length ~fixed with
  | None ->
      Error
        (Infeasible
           (Printf.sprintf
              "FDS: no schedule of pipe length %d at initiation rate %d"
              pipe_length rate))
  | Some first ->
      let current = ref first in
      let result = ref None in
      (try
         while !result = None do
           Budget.spend_pass budget;
           let lb, ub = !current in
           let unplaced =
             List.filter
               (fun op -> fixed.(op) = None && ub.(op) > lb.(op))
               (Cdfg.ops cdfg)
           in
           if unplaced = [] then begin
             (* Everything pinned or single-step; materialize the schedule. *)
             let sched = Schedule.create cdfg mlib ~rate in
             let stage = Module_lib.stage_ns mlib in
             let finish = Array.make n 0 in
             List.iter
               (fun v ->
                 let dv = Timing.op_delay_ns cdfg mlib v in
                 if cycles v > 1 then finish.(v) <- 0
                 else begin
                   let offset =
                     List.fold_left
                       (fun acc p ->
                         if lb.(p) = lb.(v) && lb.(p) + cycles p > lb.(v) then
                           max acc finish.(p)
                         else acc)
                       0 (Cdfg.preds cdfg v)
                   in
                   if offset + dv > stage then raise (Chaining v);
                   finish.(v) <- offset + dv
                 end)
               (Cdfg.topo_order cdfg);
             List.iter
               (fun v -> Schedule.set sched v ~cstep:lb.(v) ~finish_ns:finish.(v))
               (Cdfg.ops cdfg);
             result := Some (Ok sched)
           end
           else begin
             let dgs = build_dgs cdfg mlib ~rate (lb, ub) in
             (* Candidate (op, step) with the lowest total force whose fixing
                keeps the frames consistent. *)
             let candidates = ref [] in
             List.iter
               (fun op ->
                 for s = lb.(op) to ub.(op) do
                   Budget.spend_pass budget;
                   let self =
                     window_force cdfg mlib ~rate dgs op
                       (lb.(op), ub.(op))
                       (s, s)
                   in
                   (* First-order neighbour forces: predecessors squeezed
                      below s, successors above. *)
                   let neigh =
                     List.fold_left
                       (fun acc p ->
                         let ub' = min ub.(p) s in
                         if ub' < lb.(p) then acc +. 1000.0
                         else if ub' < ub.(p) then
                           acc
                           +. window_force cdfg mlib ~rate dgs p
                                (lb.(p), ub.(p))
                                (lb.(p), ub')
                         else acc)
                       0.0 (Cdfg.preds cdfg op)
                     +. List.fold_left
                          (fun acc q ->
                            let lb' = max lb.(q) s in
                            if lb' > ub.(q) then acc +. 1000.0
                            else if lb' > lb.(q) then
                              acc
                              +. window_force cdfg mlib ~rate dgs q
                                   (lb.(q), ub.(q))
                                   (lb', ub.(q))
                            else acc)
                          0.0 (Cdfg.succs cdfg op)
                   in
                   candidates := (self +. neigh, op, s) :: !candidates
                 done)
               unplaced;
             let sorted =
               List.sort
                 (fun (f1, o1, s1) (f2, o2, s2) ->
                   compare (f1, o1, s1) (f2, o2, s2))
                 !candidates
             in
             let rec try_fix = function
               | [] ->
                   result :=
                     Some
                       (Error
                          (Infeasible
                             "FDS: every candidate assignment is infeasible"))
               | (_, op, s) :: rest -> (
                   fixed.(op) <- Some s;
                   match frames cdfg mlib ~rate ~pipe_length ~fixed with
                   | Some fr ->
                       M.incr m_placements;
                       if Mcs_obs.Events.on () then
                         Mcs_obs.Events.emit ~cat:"fds" "placement"
                           ~args:
                             [
                               ("op", Mcs_obs.Events.Int op);
                               ("cstep", Mcs_obs.Events.Int s);
                             ];
                       current := fr
                   | None ->
                       M.incr m_rejected_fixes;
                       fixed.(op) <- None;
                       try_fix rest)
             in
             try_fix sorted
           end
         done;
         match !result with Some r -> r | None -> assert false
       with
      | Chaining v -> Error (Chaining_overflow v)
      | Budget.Out_of_budget e -> Error (Exhausted e)))

let error_message cdfg = function
  | Infeasible msg -> msg
  | Chaining_overflow v ->
      Printf.sprintf "FDS: chaining overflow at %s" (Cdfg.name cdfg v)
  | Exhausted e -> "FDS: " ^ Budget.message e

let fu_requirements sched =
  let cdfg = Schedule.cdfg sched in
  let mlib = Schedule.mlib sched in
  let rate = Schedule.rate sched in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun op ->
      match Cdfg.node cdfg op with
      | Types.Io _ -> ()
      | Types.Func { optype; partition } ->
          let key = (partition, optype) in
          let l = Option.value ~default:[] (Hashtbl.find_opt groups key) in
          Hashtbl.replace groups key (op :: l))
    (Cdfg.ops cdfg);
  Hashtbl.fold
    (fun key ops acc ->
      let ops =
        List.sort
          (fun a b -> compare (Schedule.group sched a) (Schedule.group sched b))
          ops
      in
      (* First-fit onto wheels, growing the pool as needed. *)
      let wheels = ref [] in
      List.iter
        (fun op ->
          let group = Schedule.group sched op in
          let cycles = Timing.op_cycles cdfg mlib op in
          let rec place = function
            | [] ->
                let w = Alloc_wheel.create ~fus:1 ~rate in
                let (_ : int) = Alloc_wheel.assign w ~group ~cycles in
                wheels := !wheels @ [ w ]
            | w :: rest ->
                if Alloc_wheel.fit w ~group ~cycles <> None then
                  ignore (Alloc_wheel.assign w ~group ~cycles)
                else place rest
          in
          place !wheels)
        ops;
      (key, List.length !wheels) :: acc)
    groups []
  |> List.sort compare

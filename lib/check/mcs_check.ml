open Mcs_cdfg
module Bottleneck = Bottleneck
module F = Mcs_flow.Flow
module Diag = Mcs_flow.Diag
module Artifact = Mcs_flow.Artifact
module Pass = Mcs_flow.Pass
module Sched = Mcs_sched.Schedule
module C = Mcs_connect.Connection
module SP = Mcs_core.Simple_part
module SB = Mcs_core.Subbus
module Listx = Mcs_util.Listx

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "" | "off" | "0" | "none" -> Pass.Off
  | "strict" | "2" -> Pass.Strict
  | _ -> Pass.Warn

let level_of_env () =
  match Sys.getenv_opt "MCS_CHECK" with
  | None -> Pass.Off
  | Some s -> level_of_string s

(* ---- schedules ---- *)

(* Control-step groups an operation's functional unit is busy in. *)
let occupied_groups ~rate s cycles =
  List.map (fun i -> (s + i) mod rate) (Listx.range 0 (min cycles rate))

let groups_intersect a b = List.exists (fun g -> List.mem g b) a

(* A sound lower bound on the units one (partition, optype) pair needs: the
   largest greedily-grown clique of operations whose busy groups overlap
   pairwise and that are never mutually exclusive.  Any such clique must
   run on distinct units, and conditional sharing (§7.2) can never make a
   true clique spurious — so every report is a real violation. *)
let fu_clique ~rate sch cdfg mlib ops =
  let busy op =
    occupied_groups ~rate (Sched.cstep sch op) (Timing.op_cycles cdfg mlib op)
  in
  let with_busy = List.map (fun op -> (op, busy op)) ops in
  let conflicts (a, ga) (b, gb) =
    groups_intersect ga gb && not (Cdfg.mutually_exclusive cdfg a b)
  in
  let grow seed =
    List.fold_left
      (fun clique c ->
        if List.for_all (conflicts c) clique then c :: clique else clique)
      [ seed ]
      (List.filter (fun c -> c != seed) with_busy)
  in
  List.fold_left
    (fun best seed ->
      let c = grow seed in
      if List.length c > List.length best then c else best)
    [] with_busy
  |> List.map fst

let schedule_diags ?(check_fus = true) cons ~phase sch =
  let cdfg = Sched.cdfg sch and mlib = Sched.mlib sch in
  let rate = Sched.rate sch in
  let stage = Module_lib.stage_ns mlib in
  let cycles op = Timing.op_cycles cdfg mlib op in
  let delay op = Timing.op_delay_ns cdfg mlib op in
  let name op = Cdfg.name cdfg op in
  let unscheduled =
    List.filter_map
      (fun op ->
        if Sched.is_scheduled sch op then None
        else
          Some
            (Diag.error ~ops:[ op ] ~code:Diag.Unschedulable ~phase
               "operation %s is unscheduled" (name op)))
      (Cdfg.ops cdfg)
  in
  let fit =
    List.filter_map
      (fun op ->
        if not (Sched.is_scheduled sch op) then None
        else
          let f = Sched.finish_ns sch op in
          if cycles op = 1 && f > stage then
            Some
              (Diag.error ~ops:[ op ]
                 ~csteps:[ Sched.cstep sch op ]
                 ~code:Diag.Precedence_violation ~phase
                 "operation %s overflows its stage (finish %dns > %dns)"
                 (name op) f stage)
          else if cycles op = 1 && f < delay op then
            Some
              (Diag.error ~ops:[ op ]
                 ~csteps:[ Sched.cstep sch op ]
                 ~code:Diag.Internal ~phase
                 "operation %s has an impossible finish offset" (name op))
          else None)
      (Cdfg.ops cdfg)
  in
  let edges =
    List.filter_map
      (fun { Types.e_src; e_dst; degree } ->
        if
          (not (Sched.is_scheduled sch e_src))
          || not (Sched.is_scheduled sch e_dst)
        then None
        else
          let s_src = Sched.cstep sch e_src
          and s_dst = Sched.cstep sch e_dst in
          if degree = 0 then
            let registered = s_src + cycles e_src <= s_dst in
            let chained =
              s_src = s_dst
              && cycles e_src = 1
              && cycles e_dst = 1
              && Sched.finish_ns sch e_src
                 <= Sched.finish_ns sch e_dst - delay e_dst
            in
            if registered || chained then None
            else
              Some
                (Diag.error
                   ~ops:[ e_src; e_dst ]
                   ~csteps:[ s_src; s_dst ]
                   ~code:Diag.Precedence_violation ~phase
                   "precedence violated: %s (cstep %d) -> %s (cstep %d)"
                   (name e_src) s_src (name e_dst) s_dst)
          else
            let bound = (degree * rate) - cycles e_src in
            if s_src - s_dst <= bound then None
            else
              Some
                (Diag.error
                   ~ops:[ e_src; e_dst ]
                   ~csteps:[ s_src; s_dst ]
                   ~code:Diag.Rate_violation ~phase
                   "recursive max-time violated: %s (cstep %d) vs %s (cstep \
                    %d), bound %d"
                   (name e_src) s_src (name e_dst) s_dst bound))
      (Cdfg.edges cdfg)
  in
  let fus =
    if not check_fus then []
    else
      List.concat_map
        (fun p ->
          let mine =
            List.filter (Sched.is_scheduled sch)
              (Cdfg.func_ops_of_partition cdfg p)
          in
          List.filter_map
            (fun ty ->
              let limit = Constraints.fu_count cons ~partition:p ~optype:ty in
              let ops =
                List.filter (fun op -> Cdfg.func_optype cdfg op = ty) mine
              in
              let clique = fu_clique ~rate sch cdfg mlib ops in
              if List.length clique > limit then
                Some
                  (Diag.error ~ops:clique ~partitions:[ p ]
                     ~code:Diag.Fu_overuse ~phase
                     "partition %d needs %d %s units simultaneously, %d \
                      allocated"
                     p (List.length clique) ty limit)
              else None)
            (Module_lib.optypes mlib))
        (Listx.range 1 (Cdfg.n_partitions cdfg + 1))
  in
  unscheduled @ fit @ edges @ fus

(* ---- connection structure (schedule-independent) ---- *)

let budget_diags cons ~phase used =
  List.filter_map
    (fun (p, n) ->
      let budget = Constraints.pins cons p in
      if n > budget then
        Some
          (Diag.error ~partitions:[ p ] ~code:Diag.Pin_budget_overflow ~phase
             "partition %d commits %d pins, budget %d" p n budget)
      else None)
    used

let subbus_fit_diags cdfg ~phase buses =
  List.concat_map
    (fun (rb : SB.real_bus) ->
      List.filter_map
        (fun (op, slice) ->
          let w = Cdfg.io_width cdfg op in
          let misfit fmt =
            Format.kasprintf
              (fun m ->
                Some
                  (Diag.error ~ops:[ op ] ~code:Diag.Subbus_misfit ~phase
                     "transfer %s (%d bits) %s" (Cdfg.name cdfg op) w m))
              fmt
          in
          match (rb.split_at, slice) with
          | _, SB.Whole ->
              if w <= rb.width then None
              else misfit "exceeds its %d-bit bus" rb.width
          | Some lo, SB.Lo ->
              if w <= lo then None
              else misfit "exceeds its %d-bit low sub-bus" lo
          | Some lo, SB.Hi ->
              if w <= rb.width - lo then None
              else misfit "exceeds its %d-bit high sub-bus" (rb.width - lo)
          | None, (SB.Lo | SB.Hi) -> misfit "is on a slice of an unsplit bus")
        rb.carried)
    buses

let subbus_port_diags cdfg ~phase buses =
  List.concat_map
    (fun (rb : SB.real_bus) ->
      List.filter_map
        (fun (op, _slice) ->
          let w = Cdfg.io_width cdfg op in
          let covered p =
            List.exists (fun (q, r) -> q = p && r >= w) rb.ports
          in
          let missing =
            List.filter
              (fun p -> not (covered p))
              [ Cdfg.io_src cdfg op; Cdfg.io_dst cdfg op ]
          in
          if missing = [] then None
          else
            Some
              (Diag.error ~ops:[ op ] ~partitions:missing
                 ~code:Diag.Connection_conflict ~phase
                 "transfer %s (%d bits) lacks a wide-enough port on \
                  partition(s) %s"
                 (Cdfg.name cdfg op) w
                 (String.concat ", " (List.map string_of_int missing))))
        rb.carried)
    buses

let connection_diags ?(enforce_budgets = true) cdfg cons ~phase
    (c : Artifact.connection) =
  let n = Cdfg.n_partitions cdfg in
  let budgets used = if enforce_budgets then budget_diags cons ~phase used else [] in
  match c with
  | Artifact.Bundles _ -> budgets (F.pins_of ~n_partitions:n c)
  | Artifact.Buses { conn; assignment; _ } ->
      let capability =
        List.filter_map
          (fun (op, bus) ->
            if C.capable conn cdfg ~bus op then None
            else
              Some
                (Diag.error ~ops:[ op ] ~code:Diag.Connection_conflict ~phase
                   "bus %d cannot carry %s as wired" bus (Cdfg.name cdfg op)))
          assignment
      in
      capability @ budgets (F.pins_of ~n_partitions:n c)
  | Artifact.Subbuses { buses; _ } ->
      subbus_fit_diags cdfg ~phase buses
      @ subbus_port_diags cdfg ~phase buses
      @ budgets (F.pins_of ~n_partitions:n c)

(* ---- conflict freedom (needs the schedule) ---- *)

let slices_overlap a b =
  match (a, b) with
  | SB.Whole, _ | _, SB.Whole -> true
  | SB.Lo, SB.Lo | SB.Hi, SB.Hi -> true
  | SB.Lo, SB.Hi | SB.Hi, SB.Lo -> false

(* Two transfers may share a carrier in one control-step group only when
   they broadcast the same value in the same step, or can never execute in
   the same instance. *)
let sharing_diags ~code cdfg sch ~phase ~carrier pairs =
  let rec check acc = function
    | [] -> List.rev acc
    | (op, slot) :: rest ->
        let clashes =
          List.filter
            (fun (op', slot') ->
              carrier slot slot'
              && Sched.is_scheduled sch op
              && Sched.is_scheduled sch op'
              && Sched.group sch op = Sched.group sch op'
              && not
                   (Cdfg.io_value cdfg op = Cdfg.io_value cdfg op'
                   && Sched.cstep sch op = Sched.cstep sch op')
              && not (Cdfg.mutually_exclusive cdfg op op'))
            rest
        in
        let acc =
          List.fold_left
            (fun acc (op', _) ->
              Diag.error
                ~ops:[ op; op' ]
                ~csteps:[ Sched.cstep sch op; Sched.cstep sch op' ]
                ~code ~phase
                "%s (value %s, cstep %d) and %s (value %s, cstep %d) share a \
                 bus slot in one control-step group"
                (Cdfg.name cdfg op) (Cdfg.io_value cdfg op)
                (Sched.cstep sch op) (Cdfg.name cdfg op')
                (Cdfg.io_value cdfg op')
                (Sched.cstep sch op')
              :: acc)
            acc clashes
        in
        check acc rest
  in
  check [] pairs

let occupancy_diags ?(clique_semantics = false) cdfg sch ~phase
    (c : Artifact.connection) =
  match c with
  | Artifact.Bundles links -> (
      match SP.Theorem31.check sch links with
      | Ok () -> []
      | Error m ->
          [
            Diag.error ~code:Diag.Connection_conflict ~phase
              "Theorem 3.1 replay found a conflict: %s" m;
          ])
  | Artifact.Buses { assignment; _ } ->
      let code = if clique_semantics then Diag.Clique_invalid else Diag.Bus_conflict in
      sharing_diags ~code cdfg sch ~phase
        ~carrier:(fun b b' -> (b : int) = b')
        assignment
  | Artifact.Subbuses { assignment; _ } ->
      sharing_diags ~code:Diag.Bus_conflict cdfg sch ~phase
        ~carrier:(fun (b, s) (b', s') -> b = b' && slices_overlap s s')
        assignment

(* ---- injection points ---- *)

let artifact_checker ~flow cdfg _mlib cons ~phase (a : Artifact.t) =
  let derives_resources = flow = F.Ch5 in
  match a with
  | Artifact.Schedule sch ->
      schedule_diags ~check_fus:(not derives_resources) cons ~phase sch
  | Artifact.Connection c ->
      connection_diags ~enforce_budgets:(not derives_resources) cdfg cons
        ~phase c
  | Artifact.Pins used -> budget_diags cons ~phase used

let check_result cdfg _mlib cons (r : F.result) =
  let phase = F.name_to_string r.F.flow ^ ".result" in
  let derives_resources = r.F.flow = F.Ch5 in
  let sched =
    schedule_diags ~check_fus:(not derives_resources) cons ~phase r.F.schedule
  in
  let structure =
    connection_diags ~enforce_budgets:(not derives_resources) cdfg cons ~phase
      r.F.connection
  in
  let occupancy =
    occupancy_diags ~clique_semantics:derives_resources cdfg r.F.schedule
      ~phase r.F.connection
  in
  let sorted l = List.sort compare l in
  let mismatch what claimed recomputed =
    if sorted claimed = sorted recomputed then []
    else
      [
        Diag.error ~code:Diag.Result_mismatch ~phase
          "claimed %s table disagrees with the one recomputed from the \
           artifacts"
          what;
      ]
  in
  let pins =
    mismatch "pin" r.F.pins
      (F.pins_of ~n_partitions:(Cdfg.n_partitions cdfg) r.F.connection)
  in
  let fus =
    if derives_resources then
      mismatch "functional-unit" r.F.fus
        (Mcs_sched.Fds.fu_requirements r.F.schedule)
    else []
  in
  let rate =
    if Sched.rate r.F.schedule = r.F.rate then []
    else
      [
        Diag.error ~code:Diag.Result_mismatch ~phase
          "schedule rate %d disagrees with result rate %d"
          (Sched.rate r.F.schedule) r.F.rate;
      ]
  in
  (* [degraded] must mirror the [Degraded] warnings, one note per ladder
     step.  Inside {!Mcs_flow.Flow.run} the diagnostics are attached after
     this check runs, so the comparison only fires on completed results
     (diags nonempty) — i.e. when a caller re-audits one. *)
  let degraded =
    if r.F.diags = [] then []
    else
      let noted =
        List.filter
          (fun (d : Diag.t) -> d.Diag.code = Diag.Degraded)
          r.F.diags
      in
      if List.length noted <> List.length r.F.degraded then
        [
          Diag.error ~code:Diag.Result_mismatch ~phase
            "result lists %d degradation steps but carries %d Degraded \
             diagnostics"
            (List.length r.F.degraded) (List.length noted);
        ]
      else
        (* Every ladder step must also ride a [Degraded] diag payload
           ([("step", note)]) — that payload is what {!Bottleneck} and
           JSON consumers read instead of re-parsing prose. *)
        List.filter_map
          (fun step ->
            if
              List.exists
                (fun (d : Diag.t) ->
                  List.assoc_opt "step" d.Diag.data = Some step)
                noted
            then None
            else
              Some
                (Diag.error ~code:Diag.Result_mismatch ~phase
                   "degradation step %S is not carried by any Degraded \
                    diagnostic payload"
                   step))
          r.F.degraded
  in
  sched @ structure @ occupancy @ pins @ fus @ rate @ degraded

let run ?level ?dump ?policy name (spec : F.spec) =
  let level = match level with Some l -> l | None -> level_of_env () in
  F.run ~level
    ~checker:(artifact_checker ~flow:name spec.F.cdfg spec.F.mlib spec.F.cons)
    ~check_result:(check_result spec.F.cdfg spec.F.mlib spec.F.cons)
    ?dump ?policy name spec

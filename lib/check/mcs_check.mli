(** Static analysis over flow artifacts and results.

    Each checker turns a legality rule of the dissertation into executable
    form and reports violations as structured {!Mcs_flow.Diag.t} values
    naming the offending operations, control steps and partitions:

    - schedules: precedence (with chaining and stage-fit legality),
      recursive-edge maximum time constraints, and functional-unit limits
      (a sound clique lower bound on the group wheels, so conditional
      sharing never causes a false positive);
    - connections: per-chip pin budgets, port capability, sub-bus slice
      fit (Ch. 6 rules), and — given the schedule — conflict freedom:
      Theorem 3.1 replay for wire bundles, the one-value-per-bus-per-step
      cap for shared buses (Ch. 4) and compatibility-clique validity
      (Ch. 5), and per-slice occupancy for sub-buses;
    - results: the claimed pin/FU tables agree with what the artifacts
      imply.

    The Ch. 5 flow {e derives} resources instead of respecting the
    constraint tables, so its FU-limit and pin-budget comparisons are
    replaced by implied-versus-claimed consistency checks.

    [Mcs_check] depends on [Mcs_flow], never the reverse: callers inject
    {!artifact_checker}/{!check_result} into {!Mcs_flow.Flow.run}, or use
    {!run} which does so for them. *)

open Mcs_cdfg
module Diag := Mcs_flow.Diag

module Bottleneck = Bottleneck
(** Typed bottleneck evidence for the {!Mcs_refine} driver. *)

val level_of_string : string -> Mcs_flow.Pass.level
(** [""], ["off"], ["0"], ["none"] → [Off]; ["strict"], ["2"] → [Strict];
    anything else (including ["warn"], ["check"], ["on"], ["1"]) → [Warn]. *)

val level_of_env : unit -> Mcs_flow.Pass.level
(** {!level_of_string} on [MCS_CHECK] ([Off] when unset). *)

val schedule_diags :
  ?check_fus:bool ->
  Constraints.t ->
  phase:string ->
  Mcs_sched.Schedule.t ->
  Diag.t list
(** Structured mirror of {!Mcs_sched.Schedule.verify} plus, when
    [check_fus] (default [true]), the functional-unit limit check against
    the constraint tables. *)

val connection_diags :
  ?enforce_budgets:bool ->
  Cdfg.t ->
  Constraints.t ->
  phase:string ->
  Mcs_flow.Artifact.connection ->
  Diag.t list
(** Schedule-independent structure checks: pin budgets (unless
    [enforce_budgets] is [false], as for Ch. 5), bus port capability, and
    the sub-bus fit rules. *)

val occupancy_diags :
  ?clique_semantics:bool ->
  Cdfg.t ->
  Mcs_sched.Schedule.t ->
  phase:string ->
  Mcs_flow.Artifact.connection ->
  Diag.t list
(** Conflict freedom given the schedule: Theorem 3.1 replay for bundles;
    for buses and sub-bus slices, any two transfers sharing a carrier in
    one control-step group must move the same value in the same step (or
    be mutually exclusive).  [clique_semantics] reports bus sharing
    violations as [Clique_invalid] (Ch. 5) instead of [Bus_conflict]. *)

val artifact_checker :
  flow:Mcs_flow.Flow.name ->
  Cdfg.t ->
  Module_lib.t ->
  Constraints.t ->
  Mcs_flow.Artifact.t Mcs_flow.Pass.checker
(** The per-phase checker to inject into {!Mcs_flow.Flow.run}: schedules
    and connection structures are audited as soon as a phase produces
    them. *)

val check_result :
  Cdfg.t ->
  Module_lib.t ->
  Constraints.t ->
  Mcs_flow.Flow.result ->
  Diag.t list
(** Everything, on the assembled result: schedule legality, connection
    structure, conflict freedom, claimed-versus-recomputed pin and FU
    tables ([Result_mismatch]), and — on completed results — agreement
    between the [degraded] step list and the [Degraded] diagnostics. *)

val run :
  ?level:Mcs_flow.Pass.level ->
  ?dump:(phase:string -> Mcs_flow.Artifact.t -> unit) ->
  ?policy:Mcs_flow.Flow.policy ->
  Mcs_flow.Flow.name ->
  Mcs_flow.Flow.spec ->
  (Mcs_flow.Flow.result, Diag.t) result
(** {!Mcs_flow.Flow.run} with {!artifact_checker} and {!check_result}
    injected.  [level] defaults to {!level_of_env}, so
    [MCS_CHECK=warn|strict] turns checking on for any caller that routes
    through here (the CLI, the engine, the benches). *)

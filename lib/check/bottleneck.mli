(** Structured bottleneck evidence extracted from a flow result.

    Where the checkers in {!Mcs_check} answer {e is this result legal},
    this module answers {e what is holding it back}: the typed records
    below name the subgraph — operations, control steps, partitions — that
    the {!Mcs_refine} driver should re-solve, ranked by how much a fix is
    worth.  Evidence kinds, highest score first:

    - {!Ladder}: a degradation-ladder step was taken; re-solving the
      degraded phase exactly recovers the most quality (score 1000);
    - {!Critical_tail}: the operations still running in the last control
      steps pin the pipe length — interchip transfers listed first, since
      a different postponement order can move them (score 100+);
    - {!Pin_pressure}: a partition at (or over) its pin budget, with the
      transfers that commit those pins (score 10+);
    - {!Fu_slack}: allocated units the schedule never needs
      simultaneously — slack a re-schedule could spend (score 1). *)

open Mcs_cdfg

type kind =
  | Ladder of { step : string; rung : string }
      (** [step] is the [Flow.result.degraded] note; [rung] the phase
          that degraded, recovered from the [Degraded] diag payload
          (may be [""] on results stripped of diagnostics) *)
  | Critical_tail of { window : int }  (** tail window length in csteps *)
  | Pin_pressure of { partition : int; used : int; budget : int }
  | Fu_slack of { partition : int; optype : string; implied : int; allocated : int }

type t = {
  kind : kind;
  ops : Types.op_id list;  (** the subgraph to re-solve, when known *)
  csteps : int list;
  partitions : int list;
  score : int;  (** ranking key: higher = more valuable to fix *)
}

val analyze : Cdfg.t -> Constraints.t -> Mcs_flow.Flow.result -> t list
(** All evidence on the result, highest score first.  Pure — never
    mutates the result or its schedule. *)

val describe : t -> string
(** Compact label for telemetry, e.g. ["ladder:<step>"],
    ["critical-tail:w3"], ["pin-pressure:p2:12/12"]. *)

open Mcs_cdfg
module F = Mcs_flow.Flow
module Diag = Mcs_flow.Diag
module Sched = Mcs_sched.Schedule

type kind =
  | Ladder of { step : string; rung : string }
  | Critical_tail of { window : int }
  | Pin_pressure of { partition : int; used : int; budget : int }
  | Fu_slack of { partition : int; optype : string; implied : int; allocated : int }

type t = {
  kind : kind;
  ops : Types.op_id list;
  csteps : int list;
  partitions : int list;
  score : int;
}

let describe b =
  match b.kind with
  | Ladder { step; _ } -> Printf.sprintf "ladder:%s" step
  | Critical_tail { window } -> Printf.sprintf "critical-tail:w%d" window
  | Pin_pressure { partition; used; budget } ->
      Printf.sprintf "pin-pressure:p%d:%d/%d" partition used budget
  | Fu_slack { partition; optype; implied; allocated } ->
      Printf.sprintf "fu-slack:p%d:%s:%d<%d" partition optype implied allocated

(* Degradation-ladder steps are the strongest evidence: the flow already
   knows it settled for less.  The rung comes from the [Degraded] diag's
   payload when the result still carries its diagnostics, else from the
   step note alone. *)
let ladder_bottlenecks (r : F.result) =
  let rung_of step =
    List.find_map
      (fun (d : Diag.t) ->
        if
          d.Diag.code = Diag.Degraded
          && List.assoc_opt "step" d.Diag.data = Some step
        then List.assoc_opt "rung" d.Diag.data
        else None)
      r.F.diags
  in
  List.map
    (fun step ->
      {
        kind = Ladder { step; rung = Option.value (rung_of step) ~default:"" };
        ops = [];
        csteps = [];
        partitions = [];
        score = 1000;
      })
    r.F.degraded

(* The tail window that pins the pipe length: every operation still
   running in the last [window] control steps, interchip transfers first —
   they are the ones a different postponement order can move. *)
let tail_bottleneck cdfg (r : F.result) =
  let pl = r.F.pipe_length in
  if pl <= 1 then []
  else
    let window = max 2 (pl / 4) in
    let cut = max 0 (pl - window) in
    let sch = r.F.schedule in
    let in_tail op =
      Sched.is_scheduled sch op
      && Sched.cstep sch op + Timing.op_cycles cdfg (Sched.mlib sch) op > cut
    in
    let ops = List.filter in_tail (Cdfg.ops cdfg) in
    let transfers = List.filter (fun op -> Cdfg.is_io cdfg op) ops in
    if ops = [] then []
    else
      [
        {
          kind = Critical_tail { window };
          ops = transfers @ List.filter (fun op -> not (Cdfg.is_io cdfg op)) ops;
          csteps = Mcs_util.Listx.range cut pl;
          partitions = [];
          score = 100 + List.length transfers;
        };
      ]

let pin_bottlenecks cdfg cons (r : F.result) =
  List.filter_map
    (fun (p, used) ->
      let budget = Constraints.pins cons p in
      if used < budget then None
      else
        let ops =
          List.filter
            (fun op -> Cdfg.io_src cdfg op = p || Cdfg.io_dst cdfg op = p)
            (Cdfg.io_ops cdfg)
        in
        Some
          {
            kind = Pin_pressure { partition = p; used; budget };
            ops;
            csteps = [];
            partitions = [ p ];
            score = 10 + (used - budget);
          })
    r.F.pins

(* Allocated units the schedule never needs simultaneously: slack that a
   tail re-schedule could spend.  Informational (lowest score). *)
let fu_bottlenecks (r : F.result) =
  let implied = Mcs_sched.Fds.fu_requirements r.F.schedule in
  List.filter_map
    (fun (((p, ty) as key), allocated) ->
      let need = Option.value (List.assoc_opt key implied) ~default:0 in
      if need >= allocated then None
      else
        Some
          {
            kind =
              Fu_slack { partition = p; optype = ty; implied = need; allocated };
            ops = [];
            csteps = [];
            partitions = [ p ];
            score = 1;
          })
    r.F.fus

let analyze cdfg cons (r : F.result) =
  let all =
    ladder_bottlenecks r @ tail_bottleneck cdfg r
    @ pin_bottlenecks cdfg cons r @ fu_bottlenecks r
  in
  List.stable_sort (fun a b -> compare b.score a.score) all

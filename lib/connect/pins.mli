(** Per-partition pin tallies.

    Every flow ultimately reports "pins used per partition" as a complete
    table over partitions [0..n] (0 is the outside world).  The four flows
    derive that table from different connection structures — Theorem 3.1
    wire bundles, shared buses, sub-bus port commitments — so the summing
    lives here, once, and {!Mcs_check} replays the same function as the
    single source of truth when auditing a flow's claim. *)

val tally : n_partitions:int -> (int * int) list -> (int * int) list
(** [tally ~n_partitions contributions] sums the [(partition, wires)]
    contributions into a complete [(partition, pins)] table over partitions
    [0..n_partitions] (missing partitions get 0).  Contributions outside
    that range are ignored. *)

val of_connection : Connection.t -> (int * int) list
(** The complete per-partition table of a shared-bus connection
    ({!Connection.pins_used} over [0..n_partitions]). *)
